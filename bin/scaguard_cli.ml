(* Command-line front-end:

     scaguard list                          # available programs
     scaguard leak fr-iaik                  # run a PoC, show the leakage
     scaguard model fr-iaik                 # print its CST-BBS model
     scaguard similarity fr-iaik pp-iaik    # similarity of two programs
     scaguard detect spectre-fr-classic --repo FR-F,PP-F
     scaguard scadet pp-iaik                # run the rule-based baseline
     scaguard compare                       # every detector on one dataset

   Every subcommand is a thin parser over Scaguard.Service/Scaguard.Config:
   flags are validated through the Config smart constructors, all pipeline
   work goes through Service.build/detect/screen, and every failure is a
   typed Scaguard.Err.t mapped to the documented exit codes (0 ok, 1
   usage/config, 2 runtime). *)

open Cmdliner
module C = Scaguard.Config

let ( let* ) = Result.bind

let version = "1.0.0"

(* Process identity for the metrics expositions: scaguard_build_info is a
   constant-1 gauge carrying the identity in its labels (node_exporter
   convention) and scaguard_uptime_seconds is stamped right before each
   exposition so scrapes see fresh seconds. *)
let process_start_ns = Scaguard.Obs.Clock.now_ns ()

let stamp_build_info () =
  Scaguard.Obs.export_build_info ~version
    ~format_version:(string_of_int Scaguard.Persist.bin_version)
    ~start_ns:process_start_ns ()

(* ---- program registry ------------------------------------------------------ *)

let poc_registry : (string * (unit -> Workloads.Attacks.spec)) list =
  let open Workloads.Attacks in
  [
    ("fr-iaik", fun () -> flush_reload ~style:Iaik ());
    ("fr-mastik", fun () -> flush_reload ~style:Mastik ());
    ("fr-nepoche", fun () -> flush_reload ~style:Nepoche ());
    ("ff", fun () -> flush_flush ());
    ("er", fun () -> evict_reload ());
    ("pp-iaik", fun () -> prime_probe ~style:Iaik ());
    ("pp-jzhang", fun () -> prime_probe ~style:Jzhang ());
    ("spectre-fr-classic", fun () -> spectre_fr ~style:Classic ());
    ("spectre-fr-idea", fun () -> spectre_fr ~style:Idea ());
    ("spectre-fr-good", fun () -> spectre_fr ~style:Good ());
    ("spectre-pp", fun () -> spectre_pp ());
    ("meltdown-fr", fun () -> meltdown_fr ());
  ]

let resolve_sample ~seed name =
  match List.assoc_opt name poc_registry with
  | Some f -> Some (Workloads.Dataset.of_spec (f ()))
  | None ->
    (* benign family names resolve to a benign sample *)
    if List.mem_assoc name Workloads.Benign.families then begin
      let g = Workloads.Benign.build name (Sutil.Rng.create seed) in
      Some
        {
          Workloads.Dataset.name = g.Workloads.Benign.name;
          label = Workloads.Label.Benign;
          program = g.Workloads.Benign.program;
          init = g.Workloads.Benign.init;
          victim = None;
          settings = None;
        }
    end
    else None

let sample_res ~seed name =
  match resolve_sample ~seed name with
  | Some s -> Ok s
  | None ->
    Error
      (Scaguard.Err.Invalid_config
         {
           field = "PROGRAM";
           value = name;
           expected = "a name from `scaguard list`";
         })

let samples_res ~seed names =
  List.fold_left
    (fun acc name ->
      let* acc = acc in
      let* s = sample_res ~seed name in
      Ok (s :: acc))
    (Ok []) names
  |> Result.map List.rev

let job_of_sample (s : Workloads.Dataset.sample) =
  Scaguard.Pipeline.job ?settings:s.Workloads.Dataset.settings
    ~init:s.Workloads.Dataset.init ?victim:s.Workloads.Dataset.victim
    ~name:s.Workloads.Dataset.name s.Workloads.Dataset.program

(* Full analysis (CFG, relevant blocks, …) for the inspection commands;
   detection flows go through Service.build instead. *)
let analyze (s : Workloads.Dataset.sample) =
  let res = Workloads.Dataset.run s in
  ( Scaguard.Pipeline.analyze ~name:s.Workloads.Dataset.name
      ~program:s.Workloads.Dataset.program res,
    res )

(* ---- error handling ---------------------------------------------------------- *)

(* The single catch-and-exit point: every subcommand body returns
   [(unit, Scaguard.Err.t) result] and this maps it to the documented exit
   codes. *)
let handle = function
  | Ok () -> 0
  | Error e ->
    (* the Log mirror prints the exact "scaguard: <msg>" stderr line this
       always printed; with --log-out the typed event lands in the JSONL too *)
    Scaguard.Log.err "cli.error" e;
    Scaguard.Err.exit_code e

(* Filesystem + decode guard for binary/source files. *)
let io ~path f =
  match f () with
  | v -> Ok v
  | exception Sys_error msg -> Error (Scaguard.Err.Io { path; msg })
  | exception Failure msg ->
    Error (Scaguard.Err.Parse { file = Some path; line = None; msg })

(* ---- common options ---------------------------------------------------------- *)

let seed_t =
  Arg.(value & opt int 2026 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let threshold_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "threshold" ] ~docv:"T"
        ~doc:"Similarity threshold in [0,1] (default 0.60).")

let alpha_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "alpha" ] ~docv:"A"
        ~doc:"DTW syntax/semantics weight in [0,1] (default: the paper's \
              equal weighting).")

let jobs_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:"Worker domains for model building (default: the recommended \
              domain count).  Models are byte-identical at any job count.")

let cache_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Content-addressed model cache; a hit skips the program's \
              execution and modeling entirely.  Keys cover the binary, the \
              exec settings, the CST geometry and the seed, so stale \
              entries are never returned.")

let config_file_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "config" ] ~docv:"FILE"
        ~doc:"Load a saved configuration (key=value lines, see build-repo \
              $(b,--save-config)); explicit flags override its values.")

let repo_format_conv = Arg.enum [ ("text", C.Text); ("binary", C.Binary) ]

let format_t =
  Arg.(
    value
    & opt (some repo_format_conv) None
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Repository file format: $(b,text) (line-oriented, diffable) or \
              $(b,binary) (compact SCAGBIN image with inline summaries and \
              an index for instant loads).  Loading always auto-detects the \
              format; this flag only selects what gets written.")

let with_format format (c : C.t) =
  match format with None -> c | Some f -> { c with C.repo_format = f }

let index_mode_conv =
  Arg.enum [ ("off", C.Index_off); ("auto", C.Index_auto); ("vp", C.Index_vp) ]

let index_t =
  Arg.(
    value
    & opt (some index_mode_conv) None
    & info [ "index" ] ~docv:"MODE"
        ~doc:"Repository search index: $(b,off) scores targets with the \
              linear lower-bound cascade, $(b,auto) (the default) builds the \
              vantage-point index once the repository is large enough to \
              repay it, $(b,vp) always builds it.  Verdicts and scores are \
              bit-identical in every mode; only the work counters move.")

let index_leaf_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "index-leaf" ] ~docv:"N"
        ~doc:"Index leaf size: stop splitting index nodes below N models \
              (min 2, default 16).")

let index_pivots_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "index-pivots" ] ~docv:"N"
        ~doc:"Vantage-point candidates scored per index split (min 1, \
              default 5).  More candidates give tighter splits at a higher \
              one-off build cost.")

(* Gather the base config (--config file or defaults), then apply explicit
   flags through the Config checkers so a bad value reports the offending
   flag and its accepted range. *)
let assemble_config ~config_file ~threshold ~alpha ~band ~jobs ~domains
    ~cache_dir ~no_prune ~index ~index_leaf ~index_pivots =
  let* base =
    match config_file with None -> Ok C.default | Some path -> C.load ~path
  in
  let* threshold =
    match threshold with
    | None -> Ok base.C.threshold
    | Some t -> C.check_threshold ~field:"--threshold" t
  in
  let* alpha =
    match alpha with
    | None -> Ok base.C.alpha
    | Some a -> Result.map Option.some (C.check_alpha ~field:"--alpha" a)
  in
  let* band =
    match band with
    | None -> Ok base.C.band
    | Some b -> Result.map Option.some (C.check_band ~field:"--band" b)
  in
  (* --jobs fans out model building and, for compatibility, also sets the
     scoring-engine worker count; --domains overrides both when given. *)
  let* domains =
    match (domains, jobs) with
    | Some d, _ -> Result.map Option.some (C.check_domains ~field:"--domains" d)
    | None, Some j -> Result.map Option.some (C.check_domains ~field:"--jobs" j)
    | None, None -> Ok base.C.domains
  in
  let cache_dir =
    match cache_dir with Some _ -> cache_dir | None -> base.C.cache_dir
  in
  let prune = base.C.prune && not no_prune in
  let index = match index with None -> base.C.index | Some m -> m in
  let* index_leaf =
    match index_leaf with
    | None -> Ok base.C.index_leaf
    | Some l -> C.check_index_leaf ~field:"--index-leaf" l
  in
  let* index_pivots =
    match index_pivots with
    | None -> Ok base.C.index_pivots
    | Some p -> C.check_index_pivots ~field:"--index-pivots" p
  in
  C.validate
    {
      base with
      C.threshold;
      alpha;
      band;
      domains;
      cache_dir;
      prune;
      index;
      index_leaf;
      index_pivots;
    }

(* The repository's harness kernels are drawn from the shared rng stream in
   family-list order, so the same family can get different harness state
   (init closures, which the cache key cannot hash) under different --repo
   lists; folding the list into the salt keeps those entries distinct. *)
let repo_salt ~seed repo_names =
  Printf.sprintf "%d:%s" seed (String.concat "," repo_names)

(* CLI-derived salts never clobber one the user set in a config file. *)
let with_salt salt (c : C.t) = if c.C.salt = "" then { c with C.salt = salt } else c

let name_arg p doc =
  Arg.(required & pos p (some string) None & info [] ~docv:"PROGRAM" ~doc)

let exits =
  Cmd.Exit.info 1
    ~doc:"on usage or configuration errors: a flag value outside its \
          accepted range, an unknown program name, an empty PoC repository."
  :: Cmd.Exit.info 2
       ~doc:"on runtime errors: file I/O failures, corrupt repository, \
             binary or config files."
  :: Cmd.Exit.defaults

let cmd_info name ~doc = Cmd.info name ~doc ~exits

(* ---- shared verdict printing --------------------------------------------------- *)

let print_scores repo model =
  List.iter
    (fun (poc, family, score) ->
      Printf.printf "  vs %-22s (%s): %6.2f%%\n" poc family (100.0 *. score))
    (Scaguard.Detector.score_all repo model)

let print_verdict ~threshold (v : Scaguard.Detector.verdict) =
  match v.Scaguard.Detector.best_family with
  | Some f -> Printf.printf "verdict: ATTACK, family %s\n" f
  | None ->
    Printf.printf "verdict: benign (best %.2f%% < %.0f%%)\n"
      (100.0 *. v.Scaguard.Detector.best_score)
      (100.0 *. threshold)

(* Score breakdown + verdict of one already-built target model. *)
let classify_one config repo model =
  print_scores repo model;
  let* verdicts, _report = Scaguard.Service.detect config repo [| model |] in
  print_verdict ~threshold:config.C.threshold verdicts.(0);
  Ok ()

(* Build the single target model for a one-off detect flow. *)
let build_one config job =
  let* models, _report = Scaguard.Service.build config [| job |] in
  Ok models.(0)

(* ---- list ---------------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Printf.printf "Attack PoCs:\n";
    List.iter (fun (n, _) -> Printf.printf "  %s\n" n) poc_registry;
    Printf.printf "Benign generator families:\n";
    List.iter
      (fun (n, cat) -> Printf.printf "  %-16s (%s)\n" n cat)
      Workloads.Benign.families;
    0
  in
  Cmd.v (cmd_info "list" ~doc:"List available programs.")
    Term.(const run $ const ())

(* ---- leak ---------------------------------------------------------------------- *)

let leak_cmd =
  let run seed name =
    handle
    @@ let* s = sample_res ~seed name in
       let res = Workloads.Dataset.run s in
       Printf.printf "%s: %d instructions, %d cycles, halted=%b\n"
         s.Workloads.Dataset.name res.Cpu.Exec.instructions res.Cpu.Exec.cycles
         res.Cpu.Exec.halted_normally;
       let hist = Workloads.Attacks.result_histogram res in
       if Array.exists (fun v -> v > 0) hist then begin
         Printf.printf "result histogram: ";
         Array.iteri (fun i v -> if v > 0 then Printf.printf "%d:%d " i v) hist;
         Printf.printf "\nbest guess: %d\n" (Workloads.Attacks.secret_guess res)
       end
       else Printf.printf "no attack results recorded (benign program?)\n";
       Ok ()
  in
  Cmd.v (cmd_info "leak" ~doc:"Execute a program and show its attack results.")
    Term.(const run $ seed_t $ name_arg 0 "Program name (see `list`).")

(* ---- model ---------------------------------------------------------------------- *)

let model_cmd =
  let run seed name =
    handle
    @@ let* s = sample_res ~seed name in
       let a, _ = analyze s in
       Printf.printf "CFG: %d blocks; step1 %d; relevant %d; model %d blocks\n\n"
         (Cfg.Graph.n_blocks a.Scaguard.Pipeline.cfg)
         (List.length a.Scaguard.Pipeline.info.Scaguard.Relevant.step1)
         (List.length a.Scaguard.Pipeline.info.Scaguard.Relevant.relevant)
         (Scaguard.Model.length a.Scaguard.Pipeline.model);
       Format.printf "%a@." Scaguard.Model.pp a.Scaguard.Pipeline.model;
       Ok ()
  in
  Cmd.v (cmd_info "model" ~doc:"Build and print a program's CST-BBS model.")
    Term.(const run $ seed_t $ name_arg 0 "Program name (see `list`).")

(* ---- similarity ----------------------------------------------------------------- *)

let similarity_cmd =
  let run seed a b =
    handle
    @@ let* sa = sample_res ~seed a in
       let* sb = sample_res ~seed b in
       let* ma = build_one C.default (job_of_sample sa) in
       let* mb = build_one C.default (job_of_sample sb) in
       Printf.printf "similarity(%s, %s) = %.2f%%\n" a b
         (100.0 *. Scaguard.Dtw.compare_models ma mb);
       Ok ()
  in
  Cmd.v (cmd_info "similarity" ~doc:"Similarity score of two programs' models.")
    Term.(
      const run $ seed_t $ name_arg 0 "First program."
      $ name_arg 1 "Second program.")

(* ---- compare (the detector showdown) --------------------------------------------- *)

let compare_cmd =
  let run seed per_family screen_tau json detector_keys =
    handle
    @@ let* tau =
         match screen_tau with
         | None -> Ok None
         | Some t ->
           Result.map Option.some (C.check_ensemble_tau ~field:"--screen-tau" t)
       in
       let* detectors =
         match detector_keys with
         | [] -> Ok None
         | ks -> (
           match List.filter (fun k -> Option.is_none (Detect.find k)) ks with
           | [] -> Ok (Some ks)
           | unknown ->
             Error
               (Scaguard.Err.Invalid_config
                  {
                    field = "--detectors";
                    value = String.concat "," unknown;
                    expected =
                      "detector keys among "
                      ^ String.concat ", " (Detect.keys ());
                  }))
       in
       let rng = Sutil.Rng.create seed in
       let t =
         Experiments.Showdown.evaluate ?detectors ?tau ~rng ~per_family ()
       in
       if json then print_endline (Experiments.Showdown.to_json t)
       else begin
         Sutil.Table.print (Experiments.Showdown.to_table t);
         Printf.printf
           "dataset preparation (execution + test models): %.3f s\n"
           t.Experiments.Showdown.prep_s
       end;
       Ok ()
  in
  let per_family_t =
    Arg.(
      value & opt int 8
      & info [ "per-family" ] ~docv:"N"
          ~doc:"Mutated samples per attack family (benign gets 2N plus the \
                MinC kernels).")
  in
  let screen_tau_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "screen-tau" ] ~docv:"Z"
          ~doc:"Ensemble screening threshold: runs whose largest \
                benign-profile |z| stays below it skip the DTW slow path.  \
                0 escalates everything (verdicts identical to pure \
                SCAGuard); default 2.")
  in
  let json_t =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the full result as JSON instead of text.")
  in
  let detectors_t =
    Arg.(
      value
      & opt (list string) []
      & info [ "detectors" ] ~docv:"KEYS"
          ~doc:"Comma-separated detector keys to run (default: every \
                registered detector; see docs/DETECTORS.md).")
  in
  Cmd.v
    (cmd_info "compare"
       ~doc:"Run every registered detector (and the two-tier ensemble) over \
             one generated dataset and print the accuracy/F1/latency/\
             throughput table.")
    Term.(
      const run $ seed_t $ per_family_t $ screen_tau_t $ json_t $ detectors_t)

(* ---- detect --------------------------------------------------------------------- *)

let repo_t =
  Arg.(
    value
    & opt (list string) [ "FR-F"; "PP-F"; "S-FR"; "S-PP" ]
    & info [ "repo" ] ~docv:"FAMILIES"
        ~doc:"Attack families in the PoC repository (comma-separated).")

let detect_cmd =
  let run seed repo_names threshold alpha config_file name =
    handle
    @@ let* config =
         assemble_config ~config_file ~threshold ~alpha ~band:None ~jobs:None
           ~domains:None ~cache_dir:None ~no_prune:false ~index:None
           ~index_leaf:None ~index_pivots:None
       in
       let* families = Experiments.Common.families_of_strings repo_names in
       let rng = Sutil.Rng.create seed in
       let* repo, _ =
         Experiments.Common.repository_service
           ~config:(with_salt (repo_salt ~seed repo_names) config)
           ~rng families
       in
       let* s = sample_res ~seed name in
       let* model =
         build_one (with_salt (string_of_int seed) config) (job_of_sample s)
       in
       classify_one config repo model
  in
  Cmd.v (cmd_info "detect" ~doc:"Classify a program against a PoC repository.")
    Term.(
      const run $ seed_t $ repo_t $ threshold_t $ alpha_t $ config_file_t
      $ name_arg 0 "Program name.")

(* ---- detect-batch (the parallel engine) ------------------------------------------- *)

(* Observability flags: validate the sample rate, flip the Obs switches for
   the run.  Tracing/metrics only observe — verdicts are bit-identical with
   them on or off — so this needs no plumbing through Config.t. *)
let setup_observability ~trace_out ~metrics_out ~span_sample_rate =
  if Float.is_nan span_sample_rate || span_sample_rate < 0.0
     || span_sample_rate > 1.0
  then
    Error
      (Scaguard.Err.Invalid_config
         {
           field = "--span-sample-rate";
           value = string_of_float span_sample_rate;
           expected = "a fraction in [0, 1]";
         })
  else begin
    Scaguard.Obs.reset ();
    Scaguard.Obs.set_tracing (trace_out <> None);
    Scaguard.Obs.set_metrics (metrics_out <> None);
    Scaguard.Obs.set_span_sample_rate span_sample_rate;
    (* registered once here so every exposition — the shutdown files and the
       serve protocol's live metrics verb — carries the process identity *)
    stamp_build_info ();
    Ok ()
  end

(* Structured-event and provenance capture for detect-batch: both are pure
   observation (verdicts are bit-identical with them on or off), so like the
   Obs switches they need no plumbing through Config.t beyond the capture
   level. *)
let setup_event_capture ~log_out ~provenance_out ~trace_id
    ~log_level:(lvl : Scaguard.Log.level) =
  Scaguard.Log.set_capture (log_out <> None);
  Scaguard.Log.set_level lvl;
  Scaguard.Log.clear ();
  Scaguard.Provenance.set_capture (provenance_out <> None);
  Scaguard.Provenance.clear ();
  Scaguard.Obs.set_trace_id trace_id

let write_event_capture ~log_out ~provenance_out =
  let* () =
    match log_out with
    | None -> Ok ()
    | Some path ->
      let* () = Scaguard.Log.write ~path in
      Printf.printf "wrote %d log events to %s (JSON lines)\n"
        (List.length (Scaguard.Log.events ()))
        path;
      Ok ()
  in
  match provenance_out with
  | None -> Ok ()
  | Some path ->
    let records = Scaguard.Provenance.records () in
    let* () =
      io ~path (fun () ->
          Scaguard.Persist.write_atomic ~path
            (Scaguard.Provenance.to_jsonl records))
    in
    Printf.printf "wrote %d provenance records to %s (JSON lines)\n"
      (List.length records) path;
    Ok ()

let write_observability ~trace_out ~metrics_out =
  let* () =
    match trace_out with
    | None -> Ok ()
    | Some path ->
      let* () = Scaguard.Obs.Trace_writer.write ~path (Scaguard.Obs.spans ()) in
      Printf.printf "wrote trace to %s (load in ui.perfetto.dev)\n" path;
      Ok ()
  in
  match metrics_out with
  | None -> Ok ()
  | Some path ->
    stamp_build_info ();
    let* () = Scaguard.Obs.write_metrics ~path in
    Printf.printf "wrote metrics to %s (Prometheus text format)\n" path;
    Ok ()

let detect_batch_cmd =
  let run seed repo_names repo_file threshold alpha band jobs cache_dir domains
      no_prune index index_leaf index_pivots config_file stats trace_out
      metrics_out span_sample_rate log_out log_level provenance_out trace_id
      report_format names =
    handle
    @@ let* config =
         assemble_config ~config_file ~threshold ~alpha ~band ~jobs ~domains
           ~cache_dir ~no_prune ~index ~index_leaf ~index_pivots
       in
       let config =
         match log_level with
         | None -> config
         | Some l -> { config with C.log_level = l }
       in
       let* () = setup_observability ~trace_out ~metrics_out ~span_sample_rate in
       setup_event_capture ~log_out ~provenance_out ~trace_id
         ~log_level:config.C.log_level;
       if log_out <> None then
         Scaguard.Log.info "batch.start"
           ~fields:
             [
               ("targets", Scaguard.Json.Num (float_of_int (List.length names)));
               ("seed", Scaguard.Json.Num (float_of_int seed));
             ]
           "scaguard: detect-batch: classifying %d targets"
           (List.length names);
       (* With --repo-file the repository arrives prepared (binary images
          carry their summaries inline), so the engine skips the summarize
          pass; the load timing shows up in --stats as its own report. *)
       let* repo_src, repo_report =
         match repo_file with
         | Some path ->
           let* _repo, prep, load_report =
             Scaguard.Service.load_repository ~config ~path ()
           in
           Ok (`Prepared prep, Some ("repository load", "repository_load", load_report))
         | None ->
           let* families = Experiments.Common.families_of_strings repo_names in
           let rng = Sutil.Rng.create seed in
           let* repo, report =
             Experiments.Common.repository_service
               ~config:(with_salt (repo_salt ~seed repo_names) config)
               ~rng families
           in
           Ok (`Repo repo, Some ("repository build", "repository_build", report))
       in
       let* samples = samples_res ~seed names in
       let target_jobs =
         (* benign samples are re-derived from the seed alone (no shared rng
            stream), so the seed is a sufficient salt here *)
         Array.of_list (List.map job_of_sample samples)
       in
       let config' = with_salt (string_of_int seed) config in
       let* _models, verdicts, report =
         match repo_src with
         | `Prepared prep ->
           Scaguard.Service.screen_prepared config' prep target_jobs
         | `Repo repo -> Scaguard.Service.screen config' repo target_jobs
       in
       List.iteri
         (fun i name ->
           let v = verdicts.(i) in
           match v.Scaguard.Detector.best_family with
           | Some f ->
             Printf.printf "%-24s ATTACK %-6s (%6.2f%%)\n" name f
               (100.0 *. v.Scaguard.Detector.best_score)
           | None ->
             Printf.printf "%-24s benign        (best %6.2f%%)\n" name
               (100.0 *. v.Scaguard.Detector.best_score))
         names;
       (if stats then
          match report_format with
          | `Text ->
            Option.iter
              (fun (title, _, r) ->
                Format.printf "%s:@.%a@." title Scaguard.Service.pp_report r)
              repo_report;
            Format.printf "%a@." Scaguard.Service.pp_report report
          | `Json ->
            let buf = Buffer.create 512 in
            Buffer.add_string buf "{";
            Option.iter
              (fun (_, json_key, r) ->
                Buffer.add_string buf (Printf.sprintf "%S:" json_key);
                Buffer.add_string buf (Scaguard.Service.report_to_json r);
                Buffer.add_string buf ",")
              repo_report;
            Buffer.add_string buf "\"run\":";
            Buffer.add_string buf (Scaguard.Service.report_to_json report);
            Buffer.add_string buf "}";
            print_endline (Buffer.contents buf));
       if log_out <> None then begin
         let attacks =
           Array.fold_left
             (fun n (v : Scaguard.Detector.verdict) ->
               if Option.is_some v.Scaguard.Detector.best_family then n + 1
               else n)
             0 verdicts
         in
         Scaguard.Log.info "batch.done"
           ~fields:
             [
               ( "targets",
                 Scaguard.Json.Num (float_of_int (Array.length verdicts)) );
               ("attacks", Scaguard.Json.Num (float_of_int attacks));
             ]
           "scaguard: detect-batch: %d of %d targets classified as attacks"
           attacks (Array.length verdicts)
       end;
       let* () = write_observability ~trace_out ~metrics_out in
       write_event_capture ~log_out ~provenance_out
  in
  let domains_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains (default: the recommended domain count).")
  in
  let band_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "band" ] ~docv:"B"
          ~doc:"Sakoe-Chiba band for the DTW (off by default; exact).")
  in
  let no_prune_t =
    Arg.(
      value & flag
      & info [ "no-prune" ]
          ~doc:"Disable the exact lower-bound pruning cascade (identical \
                verdicts, more DP work; for benchmarking).")
  in
  let repo_file_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "repo-file" ] ~docv:"FILE"
          ~doc:"Load the PoC repository from a file written by `build-repo` \
                instead of rebuilding it from --repo.")
  in
  let stats_t =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the run report: stage timings, engine counters and \
                cache counters.")
  in
  let trace_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Record spans (pipeline stages, pool tasks, per-pair \
                classification, cache lookups) and write a Chrome \
                trace-event JSON file — load it in ui.perfetto.dev or \
                chrome://tracing.")
  in
  let metrics_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Record counters and latency histograms and write them in \
                Prometheus text exposition format.")
  in
  let span_sample_rate_t =
    Arg.(
      value & opt float 1.0
      & info [ "span-sample-rate" ] ~docv:"R"
          ~doc:"Fraction of per-task spans to record, in [0,1] (default 1): \
                1 records every task, 0.1 every tenth, 0 only the coarse \
                stage spans.  Sampling is deterministic by task index.")
  in
  let log_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-out" ] ~docv:"FILE"
          ~doc:"Capture structured log events (severity, monotonic \
                timestamp, trace id, typed fields) and write them as JSON \
                lines — the machine-readable twin of the stderr lines.")
  in
  let log_level_t =
    Arg.(
      value
      & opt
          (some
             (enum
                [
                  ("debug", Scaguard.Log.Debug);
                  ("info", Scaguard.Log.Info);
                  ("warn", Scaguard.Log.Warn);
                  ("error", Scaguard.Log.Error);
                ]))
          None
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"Minimum severity captured into $(b,--log-out) (default: the \
                config file's $(b,log_level), or $(b,info)).")
  in
  let provenance_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "provenance-out" ] ~docv:"FILE"
          ~doc:"Capture one decision-provenance record per target (ensemble \
                path, index pruning, candidate outcomes, final score bits) \
                and write them as JSON lines.  Pure observation: verdicts \
                are bit-identical with this on or off.")
  in
  let trace_id_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-id" ] ~docv:"ID"
          ~doc:"Opaque correlation token stamped on every span, log event \
                and provenance record this run emits.")
  in
  let report_format_t =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "report-format" ] ~docv:"FMT"
          ~doc:"How $(b,--stats) renders the run report: $(b,text) (aligned \
                tables) or $(b,json) (one machine-readable object).")
  in
  let progs_t =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"PROGRAM" ~doc:"Programs to classify (see `list`).")
  in
  Cmd.v
    (cmd_info "detect-batch"
       ~doc:"Classify many programs against a PoC repository in one parallel \
             batch (identical verdicts to `detect`, one per line).")
    Term.(
      const run $ seed_t $ repo_t $ repo_file_t $ threshold_t $ alpha_t
      $ band_t $ jobs_t $ cache_dir_t $ domains_t $ no_prune_t $ index_t
      $ index_leaf_t $ index_pivots_t $ config_file_t $ stats_t $ trace_out_t
      $ metrics_out_t $ span_sample_rate_t $ log_out_t $ log_level_t
      $ provenance_out_t $ trace_id_t $ report_format_t $ progs_t)

(* ---- explain (verdict provenance) -------------------------------------------------- *)

let render_provenance (r : Scaguard.Provenance.t) =
  let open Scaguard.Provenance in
  let verdict =
    match (r.best_family, r.path) with
    | Some f, _ -> Printf.sprintf "ATTACK %s" f
    | None, Fast_rejected -> "benign (fast-rejected)"
    | None, _ -> "benign"
  in
  let path =
    match r.path with
    | Linear -> "linear scan"
    | Indexed -> "indexed"
    | Fast_rejected -> "fast-reject"
  in
  Printf.printf "%s: %s  (best %.2f%% vs threshold %.0f%%) [%s, %.3f ms%s]\n"
    r.target verdict (100.0 *. r.best_score) (100.0 *. r.threshold) path
    (Int64.to_float r.duration_ns /. 1e6)
    (match r.trace_id with Some t -> ", trace " ^ t | None -> "");
  (match r.ensemble with
  | None -> ()
  | Some e ->
    Printf.printf "  screen: |z| %.2f %s tau %.2f -> %s\n" e.screen_z
      (if e.escalated then ">=" else "<")
      e.tau
      (if e.escalated then "escalated to DTW" else "fast-rejected"));
  (match r.index_events with
  | [] -> ()
  | evs ->
    let visited = ref 0
    and vmembers = ref 0
    and cut = ref 0
    and cmembers = ref 0
    and screened = ref 0 in
    List.iter
      (function
        | Node_visited { members; _ } ->
          incr visited;
          vmembers := !vmembers + members
        | Subtree_pruned { members; _ } ->
          incr cut;
          cmembers := !cmembers + members
        | Member_pruned _ -> incr screened)
      evs;
    Printf.printf
      "  index: visited %d nodes (%d models), cut %d subtrees (%d models), \
       screened out %d members\n"
      !visited !vmembers !cut !cmembers !screened);
  if r.candidates <> [] then begin
    Printf.printf "  candidates (evaluation order):\n";
    List.iter
      (fun c ->
        let lb =
          match c.lb with
          | Some b -> Printf.sprintf "  (lb %.2f%%)" (100.0 *. b)
          | None -> ""
        in
        match c.outcome with
        | Scored s ->
          Printf.printf "    %-22s (%s): %6.2f%%%s\n" c.poc c.family
            (100.0 *. s) lb
        | Pruned_lb ->
          Printf.printf "    %-22s (%s): pruned by lower bound%s\n" c.poc
            c.family lb
        | Abandoned ->
          Printf.printf "    %-22s (%s): abandoned mid-DP (cutoff)%s\n" c.poc
            c.family lb
        | Pruned ->
          Printf.printf "    %-22s (%s): pruned%s\n" c.poc c.family lb)
      r.candidates
  end;
  match r.best_matches with
  | [] -> ()
  | ms ->
    Printf.printf "  best matches:%s\n"
      (String.concat ""
         (List.map
            (fun (poc, family, s) ->
              Printf.sprintf " %s/%s %.2f%%" poc family (100.0 *. s))
            ms))

let explain_cmd =
  let run seed repo_names repo_file threshold alpha config_file trace_id json
      names =
    handle
    @@ let* config =
         assemble_config ~config_file ~threshold ~alpha ~band:None ~jobs:None
           ~domains:None ~cache_dir:None ~no_prune:false ~index:None
           ~index_leaf:None ~index_pivots:None
       in
       Scaguard.Obs.set_trace_id trace_id;
       let* prepared =
         match repo_file with
         | Some path ->
           let* _repo, prep, _ =
             Scaguard.Service.load_repository ~config ~path ()
           in
           Ok prep
         | None ->
           let* families = Experiments.Common.families_of_strings repo_names in
           let rng = Sutil.Rng.create seed in
           let* repo, _ =
             Experiments.Common.repository_service
               ~config:(with_salt (repo_salt ~seed repo_names) config)
               ~rng families
           in
           Ok
             (Scaguard.Detector.prepare
                ?index:(Scaguard.Service.spec_of_config config)
                repo)
       in
       let* samples = samples_res ~seed names in
       let jobs = Array.of_list (List.map job_of_sample samples) in
       let config' = with_salt (string_of_int seed) config in
       let* _models, _verdicts, _report, records =
         Scaguard.Service.explain config' prepared jobs
       in
       if json then print_string (Scaguard.Provenance.to_jsonl records)
       else List.iter render_provenance records;
       Ok ()
  in
  let repo_file_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "repo-file" ] ~docv:"FILE"
          ~doc:"Load the PoC repository from a file written by `build-repo` \
                instead of rebuilding it from $(b,--repo).")
  in
  let trace_id_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-id" ] ~docv:"ID"
          ~doc:"Opaque correlation token stamped on every record.")
  in
  let json_t =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the raw provenance records as JSON lines instead of the \
                human rendering (the same codec the serve protocol's \
                $(b,explain) verb uses).")
  in
  let progs_t =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"PROGRAM" ~doc:"Programs to explain (see `list`).")
  in
  Cmd.v
    (cmd_info "explain"
       ~doc:"Classify programs like `detect-batch` and print each verdict's \
             decision provenance: the path taken (linear, indexed or \
             ensemble fast-reject), the index nodes visited and subtrees \
             pruned with their bounds, every candidate PoC's lower bound \
             and outcome, and the final score.  Verdicts are bit-identical \
             to `detect-batch` — provenance capture is pure observation.")
    Term.(
      const run $ seed_t $ repo_t $ repo_file_t $ threshold_t $ alpha_t
      $ config_file_t $ trace_id_t $ json_t $ progs_t)

(* ---- build-repo / repo-backed detect ---------------------------------------------- *)

let build_repo_cmd =
  let run seed repo_names jobs cache_dir config_file format index index_leaf
      index_pivots save_config path =
    handle
    @@ let* config =
         assemble_config ~config_file ~threshold:None ~alpha:None ~band:None
           ~jobs ~domains:None ~cache_dir ~no_prune:false ~index ~index_leaf
           ~index_pivots
       in
       let config =
         with_format format (with_salt (repo_salt ~seed repo_names) config)
       in
       let* families = Experiments.Common.families_of_strings repo_names in
       let rng = Sutil.Rng.create seed in
       let* repo, report =
         Experiments.Common.repository_service ~config ~rng families
       in
       let* _save_report = Scaguard.Service.save_repository config ~path repo in
       Printf.printf "wrote %d PoC models to %s (%s format)\n"
         (List.length repo) path
         (C.repo_format_to_string config.C.repo_format);
       (match report.Scaguard.Service.cache with
       | Some c ->
         Printf.printf "cache %s: %d hits, %d misses, %d stale\n"
           c.Scaguard.Service.dir c.Scaguard.Service.hits
           c.Scaguard.Service.misses c.Scaguard.Service.stale
       | None -> ());
       match save_config with
       | None -> Ok ()
       | Some cpath ->
         let* () = C.save ~path:cpath config in
         Printf.printf "wrote config to %s\n" cpath;
         Ok ()
  in
  let path_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Output repository file.")
  in
  let save_config_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-config" ] ~docv:"FILE"
          ~doc:"Also persist the effective configuration (threshold, limits, \
                cache, salt) next to the repository, for later $(b,--config) \
                runs.")
  in
  Cmd.v
    (cmd_info "build-repo"
       ~doc:"Build a PoC-model repository and save it to a file.")
    Term.(
      const run $ seed_t $ repo_t $ jobs_t $ cache_dir_t $ config_file_t
      $ format_t $ index_t $ index_leaf_t $ index_pivots_t $ save_config_t
      $ path_t)

(* ---- migrate-repo ------------------------------------------------------------------ *)

let migrate_repo_cmd =
  let run format in_path out_path =
    handle
    @@ let* in_bytes =
         io ~path:in_path (fun () -> Scaguard.Persist.read_file ~path:in_path)
       in
       let in_format =
         if Scaguard.Persist.is_binary in_bytes then C.Binary else C.Text
       in
       let* repo =
         if in_format = C.Binary then
           Scaguard.Persist.repository_of_bytes_result ~file:in_path in_bytes
         else
           Scaguard.Persist.repository_of_string_result ~file:in_path in_bytes
       in
       let format = Option.value format ~default:C.Binary in
       let* () =
         match format with
         | C.Text -> Scaguard.Persist.save_repository_result ~path:out_path repo
         | C.Binary ->
           Scaguard.Persist.save_repository_bin_result ~path:out_path repo
       in
       (* Paranoia that costs one read: reload what we just wrote and check
          it is the same repository, so a migration can never silently
          corrupt the models. *)
       let* check = Scaguard.Persist.load_repository_result ~path:out_path in
       if
         Scaguard.Persist.repository_to_string check
         <> Scaguard.Persist.repository_to_string repo
       then
         Error
           (Scaguard.Err.Parse
              {
                file = Some out_path;
                line = None;
                msg = "migration verification failed: reloaded repository differs";
              })
       else
         let* out_size =
           io ~path:out_path (fun () -> (Unix.stat out_path).Unix.st_size)
         in
         Printf.printf "migrated %d models: %s (%s, %d bytes) -> %s (%s, %d bytes)\n"
           (List.length repo) in_path
           (C.repo_format_to_string in_format)
           (String.length in_bytes) out_path
           (C.repo_format_to_string format)
           out_size;
         Ok ()
  in
  let in_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"IN" ~doc:"Repository file to migrate (either format).")
  in
  let out_t =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUT" ~doc:"Output repository file.")
  in
  Cmd.v
    (cmd_info "migrate-repo"
       ~doc:"Convert a repository file between the text format and the \
             binary image (default: to binary).  The result is verified by \
             reloading it and checking it matches the input model for \
             model.")
    Term.(const run $ format_t $ in_t $ out_t)

let detect_file_cmd =
  let run seed path threshold alpha config_file name =
    handle
    @@ let* config =
         assemble_config ~config_file ~threshold ~alpha ~band:None ~jobs:None
           ~domains:None ~cache_dir:None ~no_prune:false ~index:None
           ~index_leaf:None ~index_pivots:None
       in
       let* repo = Scaguard.Persist.load_repository_result ~path in
       let* s = sample_res ~seed name in
       let* model =
         build_one (with_salt (string_of_int seed) config) (job_of_sample s)
       in
       classify_one config repo model
  in
  let path_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Repository file written by build-repo.")
  in
  Cmd.v
    (cmd_info "detect-with"
       ~doc:"Classify a program against a saved repository file.")
    Term.(
      const run $ seed_t $ path_t $ threshold_t $ alpha_t $ config_file_t
      $ name_arg 1 "Program name.")

(* ---- assemble / disasm / detect-binary ---------------------------------------------- *)

let assemble_cmd =
  let run seed name path =
    handle
    @@ let* s = sample_res ~seed name in
       let* () =
         io ~path (fun () ->
             Isa.Binary.write_file ~path s.Workloads.Dataset.program)
       in
       Printf.printf "wrote %s (%d instructions) to %s\n"
         s.Workloads.Dataset.name
         (Isa.Program.length s.Workloads.Dataset.program)
         path;
       Ok ()
  in
  let path_t =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUT" ~doc:"Output binary file.")
  in
  Cmd.v (cmd_info "assemble" ~doc:"Assemble a program to a binary file.")
    Term.(const run $ seed_t $ name_arg 0 "Program name (see `list`)." $ path_t)

let binfile_t p =
  Arg.(
    required
    & pos p (some file) None
    & info [] ~docv:"BIN" ~doc:"Binary file written by `assemble`.")

let disasm_cmd =
  let run path =
    handle
    @@ let* prog = io ~path (fun () -> Isa.Binary.read_file ~path) in
       Format.printf "%a@." Isa.Program.pp prog;
       Ok ()
  in
  Cmd.v (cmd_info "disasm" ~doc:"Disassemble a binary file.")
    Term.(const run $ binfile_t 0)

let detect_binary_cmd =
  let run seed repo_names threshold alpha config_file with_victim path =
    handle
    @@ let* config =
         assemble_config ~config_file ~threshold ~alpha ~band:None ~jobs:None
           ~domains:None ~cache_dir:None ~no_prune:false ~index:None
           ~index_leaf:None ~index_pivots:None
       in
       let* prog = io ~path (fun () -> Isa.Binary.read_file ~path) in
       let* families = Experiments.Common.families_of_strings repo_names in
       let rng = Sutil.Rng.create seed in
       let* repo, _ =
         Experiments.Common.repository_service
           ~config:(with_salt (repo_salt ~seed repo_names) config)
           ~rng families
       in
       let victim =
         if with_victim then Some (Workloads.Victim.shared_lib ()) else None
       in
       let* model =
         build_one config
           (Scaguard.Pipeline.job ?victim ~name:(Filename.basename path) prog)
       in
       classify_one config repo model
  in
  let victim_t =
    Arg.(
      value & flag
      & info [ "with-victim" ] ~doc:"Co-run the shared-library victim.")
  in
  Cmd.v
    (cmd_info "detect-binary"
       ~doc:"Run the full pipeline on a binary file and classify it.")
    Term.(
      const run $ seed_t $ repo_t $ threshold_t $ alpha_t $ config_file_t
      $ victim_t $ binfile_t 0)

(* ---- compile ----------------------------------------------------------------------- *)

let compile_cmd =
  let run optimize with_victim path =
    handle
    @@ let* src = io ~path (fun () -> Scaguard.Persist.read_file ~path) in
       let* prog =
         match
           Minc.Codegen.compile_source ~optimize
             ~name:(Filename.basename path) src
         with
         | prog -> Ok prog
         | exception (Minc.Parser.Error m | Minc.Codegen.Error m) ->
           Error (Scaguard.Err.Parse { file = Some path; line = None; msg = m })
         | exception Minc.Lexer.Error (m, off) ->
           Error
             (Scaguard.Err.Parse
                {
                  file = Some path;
                  line = None;
                  msg = Printf.sprintf "lex error at byte %d: %s" off m;
                })
       in
       Printf.printf "compiled %s: %d instructions (optimize=%b)\n" path
         (Isa.Program.length prog) optimize;
       let victim =
         if with_victim then Some (Workloads.Victim.shared_lib ()) else None
       in
       let res = Cpu.Exec.run ?victim prog in
       Printf.printf "ran: %d instructions, %d cycles, halted=%b\n"
         res.Cpu.Exec.instructions res.Cpu.Exec.cycles
         res.Cpu.Exec.halted_normally;
       let a = Scaguard.Pipeline.analyze ~name:path ~program:prog res in
       Printf.printf "model: %d blocks (of %d CFG blocks)\n"
         (Scaguard.Model.length a.Scaguard.Pipeline.model)
         (Cfg.Graph.n_blocks a.Scaguard.Pipeline.cfg);
       Ok ()
  in
  let opt_t =
    Arg.(value & flag & info [ "O" ] ~doc:"Enable the optimizing pipeline.")
  in
  let victim_t =
    Arg.(
      value & flag
      & info [ "with-victim" ]
          ~doc:"Co-run the shared-library victim (for compiled attacks).")
  in
  let path_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"MinC source file.")
  in
  Cmd.v (cmd_info "compile" ~doc:"Compile and run a MinC source file.")
    Term.(const run $ opt_t $ victim_t $ path_t)

(* ---- dot ------------------------------------------------------------------------- *)

let dot_cmd =
  let run seed name attack_graph =
    handle
    @@ let* s = sample_res ~seed name in
       let a, _ = analyze s in
       let cfg = a.Scaguard.Pipeline.cfg in
       (if attack_graph then
          let ag = a.Scaguard.Pipeline.attack_graph in
          print_string
            (Cfg.Dot.of_attack_graph cfg
               ~relevant:ag.Scaguard.Attack_graph.relevant
               ~nodes:ag.Scaguard.Attack_graph.nodes
               ~edges:ag.Scaguard.Attack_graph.edges)
        else
          print_string
            (Cfg.Dot.of_graph
               ~highlight:a.Scaguard.Pipeline.info.Scaguard.Relevant.relevant
               cfg));
       Ok ()
  in
  let ag_t =
    Arg.(
      value & flag
      & info [ "attack-graph" ]
          ~doc:"Render the attack-relevant graph instead of the plain CFG.")
  in
  Cmd.v
    (cmd_info "dot"
       ~doc:"Print a Graphviz rendering of a program's CFG (relevant blocks \
             highlighted).")
    Term.(const run $ seed_t $ name_arg 0 "Program name." $ ag_t)

(* ---- export-dataset ----------------------------------------------------------------- *)

let export_dataset_cmd =
  let run seed per_family dir =
    handle
    @@ let* () =
         io ~path:dir (fun () ->
             try Unix.mkdir dir 0o755
             with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
       in
       let rng = Sutil.Rng.create seed in
       let samples =
         List.concat_map snd (Workloads.Dataset.attack_dataset ~rng ~per_family)
         @ Workloads.Dataset.benign_samples ~rng ~count:per_family
       in
       let* () =
         io ~path:dir (fun () ->
             let manifest = open_out (Filename.concat dir "manifest.tsv") in
             Fun.protect
               ~finally:(fun () -> close_out manifest)
               (fun () ->
                 output_string manifest "file\tlabel\tname\n";
                 List.iter
                   (fun (s : Workloads.Dataset.sample) ->
                     let file = s.Workloads.Dataset.name ^ ".bin" in
                     Isa.Binary.write_file ~path:(Filename.concat dir file)
                       s.Workloads.Dataset.program;
                     Printf.fprintf manifest "%s\t%s\t%s\n" file
                       (Workloads.Label.to_string s.Workloads.Dataset.label)
                       s.Workloads.Dataset.name)
                   samples))
       in
       Printf.printf "exported %d binaries + manifest.tsv to %s\n"
         (List.length samples) dir;
       Ok ()
  in
  let per_family_t =
    Arg.(
      value & opt int 16
      & info [ "per-family" ] ~docv:"N"
          ~doc:"Samples per attack type (and benign count).")
  in
  let dir_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (cmd_info "export-dataset"
       ~doc:"Write the Table II/III dataset as binary files with a manifest.")
    Term.(const run $ seed_t $ per_family_t $ dir_t)

(* ---- heatmap --------------------------------------------------------------------- *)

let heatmap_cmd =
  let run seed name =
    handle
    @@ let* s = sample_res ~seed name in
       let res = Workloads.Dataset.run s in
       let sets = Cache.Config.llc.Cache.Config.sets in
       let counts = Array.make sets 0 in
       List.iter
         (fun (a : Hpc.Collector.access) ->
           let set =
             Cache.Config.set_of_addr Cache.Config.llc a.Hpc.Collector.target
           in
           counts.(set) <- counts.(set) + 1)
         (Hpc.Collector.accesses res.Cpu.Exec.collector);
       let bucket = 8 in
       let buckets = sets / bucket in
       let agg =
         Array.init buckets (fun i ->
             let s = ref 0 in
             for j = 0 to bucket - 1 do
               s := !s + counts.((i * bucket) + j)
             done;
             !s)
       in
       let peak = Array.fold_left max 1 agg in
       Printf.printf
         "LLC set access heat map for %s (each column = %d sets, peak %d \
          accesses):\n"
         s.Workloads.Dataset.name bucket peak;
       let glyphs = " .:-=+*#%@" in
       for row = 3 downto 0 do
         Printf.printf "  ";
         Array.iter
           (fun v ->
             let level = v * 40 / peak in
             let g =
               if level > row * 10 then glyphs.[min 9 (max 1 (level - (row * 10)))]
               else ' '
             in
             print_char g)
           agg;
         print_newline ()
       done;
       Printf.printf "  %s\n" (String.make buckets '-');
       Printf.printf "  set 0%ssets %d-%d\n"
         (String.make (buckets - 14) ' ')
         (sets - bucket) (sets - 1);
       Ok ()
  in
  Cmd.v
    (cmd_info "heatmap"
       ~doc:"ASCII heat map of a program's LLC set accesses (attacks show \
             their page-stride stripes).")
    Term.(const run $ seed_t $ name_arg 0 "Program name.")

(* ---- scadet --------------------------------------------------------------------- *)

let scadet_cmd =
  let run seed name =
    handle
    @@ let* s = sample_res ~seed name in
       let res = Workloads.Dataset.run s in
       let r = Baselines.Scadet.detect s.Workloads.Dataset.program res in
       Printf.printf "tight loops: %d\nswept sets: [%s]\nverdict: %s\n"
         r.Baselines.Scadet.tight_loops
         (String.concat "; "
            (List.map string_of_int r.Baselines.Scadet.swept_sets))
         (if r.Baselines.Scadet.detected then "Prime+Probe detected"
          else "nothing");
       Ok ()
  in
  Cmd.v
    (cmd_info "scadet" ~doc:"Run the rule-based SCADET baseline on a program.")
    Term.(const run $ seed_t $ name_arg 0 "Program name.")

(* ---- serve ---------------------------------------------------------------------- *)

(* "HOST:PORT" for --tcp; the last ':' splits, so a numeric host like
   127.0.0.1 parses. *)
let parse_hostport s =
  let bad () =
    Error
      (Scaguard.Err.Invalid_config
         { field = "--tcp"; value = s; expected = "HOST:PORT" })
  in
  match String.rindex_opt s ':' with
  | None -> bad ()
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 && host <> "" -> Ok (host, p)
    | _ -> bad ())

let socket_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Listen on (serve) or connect to (client) a Unix domain socket. \
              Serve reclaims a stale socket file left by a crash; a live \
              server keeps the address.")

let tcp_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:"Listen on (serve) or connect to (client) a TCP address.")

let serve_cmd =
  let run seed repo_names repo_file threshold alpha band jobs cache_dir domains
      no_prune index index_leaf index_pivots config_file queue_capacity max_line
      deadline_ms socket tcp stdio metrics_on trace_out metrics_out
      span_sample_rate =
    handle
    @@ let* endpoint =
         match (socket, tcp, stdio) with
         | Some p, None, false -> Ok (Scaguard.Server.Unix_socket p)
         | None, Some hp, false ->
           let* host, port = parse_hostport hp in
           Ok (Scaguard.Server.Tcp { host; port })
         | None, None, _ -> Ok Scaguard.Server.Stdio
         | _ ->
           Error
             (Scaguard.Err.Invalid_config
                {
                  field = "--socket/--tcp/--stdio";
                  value = "(several)";
                  expected = "at most one endpoint";
                })
       in
       let* config =
         assemble_config ~config_file ~threshold ~alpha ~band ~jobs ~domains
           ~cache_dir ~no_prune ~index ~index_leaf ~index_pivots
       in
       let* () = setup_observability ~trace_out ~metrics_out ~span_sample_rate in
       (* the protocol's `metrics` verb reads the live registry, so --metrics
          turns collection on even without a --metrics-out file *)
       if metrics_on then Scaguard.Obs.set_metrics true;
       let* prepared, repo_path =
         match repo_file with
         | Some path ->
           let* _repo, prep, _ =
             Scaguard.Service.load_repository ~config ~path ()
           in
           Ok (prep, Some path)
         | None ->
           let* families = Experiments.Common.families_of_strings repo_names in
           let rng = Sutil.Rng.create seed in
           let* repo, _ =
             Experiments.Common.repository_service
               ~config:(with_salt (repo_salt ~seed repo_names) config)
               ~rng families
           in
           Ok
             ( Scaguard.Detector.prepare
                 ?index:(Scaguard.Service.spec_of_config config)
                 repo,
               None )
       in
       let resolve ~seed name =
         Result.map job_of_sample (sample_res ~seed name)
       in
       let* server =
         Scaguard.Server.create ~config ~resolve ~prepared ?repo_path
           ~queue_capacity ~max_line ~default_deadline_ms:deadline_ms ()
       in
       (* the banner mirrors to stderr so --stdio keeps stdout protocol-clean *)
       Scaguard.Log.info "serve.start"
         ~fields:
           [
             ( "models",
               Scaguard.Json.Num
                 (float_of_int (Scaguard.Detector.prepared_size prepared)) );
             ( "endpoint",
               Scaguard.Json.Str
                 (Scaguard.Server.endpoint_to_string endpoint) );
           ]
         "scaguard serve: %d models resident, listening on %s"
         (Scaguard.Detector.prepared_size prepared)
         (Scaguard.Server.endpoint_to_string endpoint);
       let* () = Scaguard.Server.serve server endpoint in
       Scaguard.Log.info "serve.drained"
         ~fields:
           [
             ( "requests",
               Scaguard.Json.Num (float_of_int (Scaguard.Server.served server))
             );
             ("uptime_s", Scaguard.Json.Num (Scaguard.Server.uptime_s server));
           ]
         "scaguard serve: drained after %d requests (up %.1f s)"
         (Scaguard.Server.served server)
         (Scaguard.Server.uptime_s server);
       write_observability ~trace_out ~metrics_out
  in
  let domains_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains for unstreamed batches (default: the \
                recommended domain count).")
  in
  let band_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "band" ] ~docv:"B"
          ~doc:"Sakoe-Chiba band for the DTW (off by default; exact).")
  in
  let no_prune_t =
    Arg.(
      value & flag
      & info [ "no-prune" ]
          ~doc:"Disable the exact lower-bound pruning cascade.")
  in
  let repo_file_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "repo-file" ] ~docv:"FILE"
          ~doc:"Load the resident PoC repository from a file written by \
                `build-repo` (the binary image's inline summaries make this \
                the fast path); without it the repository is rebuilt from \
                $(b,--repo).  Also the default path for the protocol's \
                $(b,reload) verb.")
  in
  let queue_capacity_t =
    Arg.(
      value & opt int 64
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Bounded request queue size; a full queue answers new \
                requests with an explicit $(b,busy) error (backpressure) \
                instead of buffering without limit.")
  in
  let max_line_t =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "max-line" ] ~docv:"BYTES"
          ~doc:"Longest accepted request frame; an oversized line is \
                discarded with a $(b,parse) error and the stream resyncs at \
                the next newline.")
  in
  let deadline_ms_t =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Default per-request deadline in milliseconds (0 = none); a \
                request's own $(b,deadline_ms) field overrides it.")
  in
  let stdio_flag_t =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:"Speak the protocol on stdin/stdout (the default endpoint; \
                for tests and pipelines).")
  in
  let metrics_flag_t =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Collect Prometheus metrics for the protocol's $(b,metrics) \
                verb (implied by $(b,--metrics-out)).")
  in
  let trace_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Record spans (one per request, plus the engine's) and write \
                a Chrome trace-event JSON file at shutdown.")
  in
  let metrics_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write the metrics registry in Prometheus text exposition \
                format at shutdown (scrape the $(b,metrics) verb for live \
                values).")
  in
  let span_sample_rate_t =
    Arg.(
      value & opt float 1.0
      & info [ "span-sample-rate" ] ~docv:"R"
          ~doc:"Fraction of per-task spans to record, in [0,1].")
  in
  Cmd.v
    (cmd_info "serve"
       ~doc:"Run the resident detection daemon: load the PoC repository \
             once, keep its prepared DTW summaries warm, and answer \
             newline-framed JSON requests (detect/screen/explain/stats/\
             metrics/reload/ping/shutdown) over stdio, a Unix socket or \
             TCP.  \
             Verdicts are bit-identical to `detect-batch`.  The wire \
             protocol is specified in docs/SERVER.md.")
    Term.(
      const run $ seed_t $ repo_t $ repo_file_t $ threshold_t $ alpha_t
      $ band_t $ jobs_t $ cache_dir_t $ domains_t $ no_prune_t $ index_t
      $ index_leaf_t $ index_pivots_t $ config_file_t $ queue_capacity_t
      $ max_line_t $ deadline_ms_t $ socket_t $ tcp_t $ stdio_flag_t
      $ metrics_flag_t $ trace_out_t $ metrics_out_t $ span_sample_rate_t)

(* ---- client --------------------------------------------------------------------- *)

(* Exit codes for protocol errors: the Err-taxonomy codes keep their CLI
   meaning (1 usage, 2 runtime) and the server-lifecycle codes (busy,
   deadline, unavailable) get 3 — "retry later", distinguishable in scripts. *)
let exit_of_error_code = function
  | "invalid_config" | "empty_repository" | "bad_request" -> 1
  | "busy" | "deadline" | "unavailable" -> 3
  | _ -> 2 (* parse, io, internal *)

let client_cmd =
  let module J = Scaguard.Server.Json in
  let connect ~socket ~tcp =
    let sys_io path f =
      match f () with
      | fd -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
        Error (Scaguard.Err.Io { path; msg = Unix.error_message e })
    in
    match (socket, tcp) with
    | Some path, None ->
      sys_io path (fun () ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          try
            Unix.connect fd (Unix.ADDR_UNIX path);
            fd
          with e ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            raise e)
    | None, Some hp ->
      let* host, port = parse_hostport hp in
      sys_io hp (fun () ->
          let addr =
            try Unix.inet_addr_of_string host
            with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
          in
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          try
            Unix.connect fd (Unix.ADDR_INET (addr, port));
            fd
          with e ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            raise e)
    | _ ->
      Error
        (Scaguard.Err.Invalid_config
           {
             field = "--socket/--tcp";
             value = "(both or neither)";
             expected = "exactly one endpoint";
           })
  in
  let build_request ~op ~targets ~seed ~deadline_ms ~no_stream ~path ~trace_id
      =
    let need_targets body =
      if targets = [] then
        Error
          (Scaguard.Err.Invalid_config
             {
               field = "TARGET";
               value = "(none)";
               expected = "at least one program name (see `scaguard list`)";
             })
      else Ok body
    in
    let* body =
      match op with
      | "detect" ->
        need_targets
          ([
             ("targets", J.List (List.map (fun t -> J.Str t) targets));
             ("seed", J.Num (float_of_int seed));
           ]
          @ if no_stream then [ ("stream", J.Bool false) ] else [])
      | "screen" | "explain" ->
        need_targets
          [
            ("targets", J.List (List.map (fun t -> J.Str t) targets));
            ("seed", J.Num (float_of_int seed));
          ]
      | "stats" | "metrics" | "ping" | "shutdown" -> Ok []
      | "reload" -> (
        match path with
        | Some p -> Ok [ ("path", J.Str p) ]
        | None -> Ok [])
      | other ->
        Error
          (Scaguard.Err.Invalid_config
             {
               field = "VERB";
               value = other;
               expected =
                 "detect, screen, explain, stats, metrics, reload, ping or \
                  shutdown";
             })
    in
    let deadline =
      match deadline_ms with
      | Some d -> [ ("deadline_ms", J.Num (float_of_int d)) ]
      | None -> []
    in
    let trace =
      match trace_id with
      | Some t -> [ ("trace_id", J.Str t) ]
      | None -> []
    in
    Ok
      (J.Obj ((("id", J.Num 1.0) :: ("op", J.Str op) :: body) @ deadline @ trace))
  in
  (* One reply frame -> terminal output.  Verdict events print in
     detect-batch's exact format so CI can diff the two outputs. *)
  let render frame =
    match J.member "event" frame with
    | Some (J.Str "verdict") -> begin
      let str k = match J.member k frame with Some (J.Str s) -> s | _ -> "" in
      let num k = match J.member k frame with Some (J.Num f) -> f | _ -> 0.0 in
      let target = str "target" and score = num "score" in
      (match J.member "attack" frame with
      | Some (J.Bool true) ->
        Printf.printf "%-24s ATTACK %-6s (%6.2f%%)\n" target (str "family")
          (100.0 *. score)
      | _ ->
        Printf.printf "%-24s benign        (best %6.2f%%)\n" target
          (100.0 *. score));
      `Continue
    end
    | Some _ -> `Continue
    | None -> (
      match J.member "ok" frame with
      | Some (J.Bool true) -> begin
        (match J.member "op" frame with
        | Some (J.Str "metrics") -> begin
          match J.member "body" frame with
          | Some (J.Str body) -> print_string body
          | _ -> ()
        end
        | Some (J.Str ("detect" | "ping")) -> ()
        | _ -> print_endline (J.to_string frame));
        `Done 0
      end
      | _ -> begin
        let code, message =
          match J.member "error" frame with
          | Some err ->
            ( (match J.member "code" err with Some (J.Str c) -> c | _ -> "internal"),
              match J.member "message" err with Some (J.Str m) -> m | _ -> "?" )
          | None -> ("internal", "malformed reply frame")
        in
        Scaguard.Log.error "client.reply"
          ~fields:[ ("code", J.Str code) ]
          "scaguard client: %s (%s)" message code;
        `Done (exit_of_error_code code)
      end)
  in
  let run socket tcp seed deadline_ms no_stream reload_path trace_id op targets
      =
    let result =
      let* request =
        build_request ~op ~targets ~seed ~deadline_ms ~no_stream
          ~path:reload_path ~trace_id
      in
      let* fd = connect ~socket ~tcp in
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let line = J.to_string request ^ "\n" in
      match
        output_string oc line;
        flush oc;
        let rec read_replies () =
          match input_line ic with
          | exception End_of_file ->
            Scaguard.Log.error "client.eof"
              "scaguard client: server closed the connection";
            2
          | reply -> (
            match J.parse reply with
            | Error msg ->
              Scaguard.Log.error "client.parse"
                "scaguard client: unparseable reply: %s" msg;
              2
            | Ok frame -> (
              match render frame with
              | `Continue -> read_replies ()
              | `Done code -> code))
        in
        read_replies ()
      with
      | code ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Ok code
      | exception Sys_error msg ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Scaguard.Err.Io { path = "<connection>"; msg })
    in
    match result with
    | Ok code -> code
    | Error e ->
      Scaguard.Log.err "client.error" e;
      Scaguard.Err.exit_code e
  in
  let deadline_ms_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Ask the server to abandon the request after MS milliseconds.")
  in
  let no_stream_t =
    Arg.(
      value & flag
      & info [ "no-stream" ]
          ~doc:"For $(b,detect): run the whole batch on the parallel engine \
                and receive all verdicts at the end (identical frames).")
  in
  let reload_path_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "path" ] ~docv:"FILE"
          ~doc:"For $(b,reload): the repository file to swap in (default: \
                the file the server was started from).")
  in
  let trace_id_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-id" ] ~docv:"ID"
          ~doc:"Opaque correlation token sent in the request envelope; the \
                server echoes it in every reply frame and stamps it on the \
                spans, log events and provenance records the request \
                produces.")
  in
  let verb_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"VERB"
          ~doc:"Protocol request: $(b,detect), $(b,screen), $(b,explain), \
                $(b,stats), $(b,metrics), $(b,reload), $(b,ping) or \
                $(b,shutdown).")
  in
  let targets_t =
    Arg.(
      value & pos_right 0 string []
      & info [] ~docv:"TARGET"
          ~doc:"Programs to classify (for detect/screen; see `list`).")
  in
  Cmd.v
    (cmd_info "client"
       ~doc:"Send one request to a running `scaguard serve` and render the \
             reply: detect prints verdicts in `detect-batch`'s format, \
             metrics prints the Prometheus exposition, other verbs print \
             the reply frame.  Exit 3 means \"retry later\" (busy, \
             deadline, or a draining server).")
    Term.(
      const run $ socket_t $ tcp_t $ seed_t $ deadline_ms_t $ no_stream_t
      $ reload_path_t $ trace_id_t $ verb_t $ targets_t)

(* ---- main ----------------------------------------------------------------------- *)

let () =
  let doc = "SCAGuard: cache side-channel attack detection (DAC'23 reproduction)" in
  let info = Cmd.info "scaguard" ~version ~doc ~exits in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd; leak_cmd; model_cmd; similarity_cmd; compare_cmd;
            detect_cmd; explain_cmd;
            detect_batch_cmd; build_repo_cmd; migrate_repo_cmd; detect_file_cmd;
            dot_cmd; compile_cmd; assemble_cmd; disasm_cmd; detect_binary_cmd;
            heatmap_cmd; export_dataset_cmd; scadet_cmd; serve_cmd; client_cmd;
          ]))
