(* Command-line front-end:

     scaguard list                          # available programs
     scaguard leak fr-iaik                  # run a PoC, show the leakage
     scaguard model fr-iaik                 # print its CST-BBS model
     scaguard compare fr-iaik pp-iaik       # similarity of two programs
     scaguard detect spectre-fr-classic --repo FR-F,PP-F
     scaguard scadet pp-iaik                # run the rule-based baseline
*)

open Cmdliner

(* ---- program registry ------------------------------------------------------ *)

let poc_registry : (string * (unit -> Workloads.Attacks.spec)) list =
  let open Workloads.Attacks in
  [
    ("fr-iaik", fun () -> flush_reload ~style:Iaik ());
    ("fr-mastik", fun () -> flush_reload ~style:Mastik ());
    ("fr-nepoche", fun () -> flush_reload ~style:Nepoche ());
    ("ff", fun () -> flush_flush ());
    ("er", fun () -> evict_reload ());
    ("pp-iaik", fun () -> prime_probe ~style:Iaik ());
    ("pp-jzhang", fun () -> prime_probe ~style:Jzhang ());
    ("spectre-fr-classic", fun () -> spectre_fr ~style:Classic ());
    ("spectre-fr-idea", fun () -> spectre_fr ~style:Idea ());
    ("spectre-fr-good", fun () -> spectre_fr ~style:Good ());
    ("spectre-pp", fun () -> spectre_pp ());
    ("meltdown-fr", fun () -> meltdown_fr ());
  ]

let resolve_sample ~seed name =
  match List.assoc_opt name poc_registry with
  | Some f -> Some (Workloads.Dataset.of_spec (f ()))
  | None ->
    (* benign family names resolve to a benign sample *)
    if List.mem_assoc name Workloads.Benign.families then begin
      let g = Workloads.Benign.build name (Sutil.Rng.create seed) in
      Some
        {
          Workloads.Dataset.name = g.Workloads.Benign.name;
          label = Workloads.Label.Benign;
          program = g.Workloads.Benign.program;
          init = g.Workloads.Benign.init;
          victim = None;
          settings = None;
        }
    end
    else None

let sample_or_die ~seed name =
  match resolve_sample ~seed name with
  | Some s -> s
  | None ->
    Printf.eprintf
      "unknown program %S; run `scaguard list` for available names\n" name;
    exit 1

let analyze (s : Workloads.Dataset.sample) =
  let res = Workloads.Dataset.run s in
  (Scaguard.Pipeline.analyze ~name:s.Workloads.Dataset.name
     ~program:s.Workloads.Dataset.program res, res)

(* ---- common options ---------------------------------------------------------- *)

let seed_t =
  Arg.(value & opt int 2026 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let jobs_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:"Worker domains for model building (default: the recommended \
              domain count).  Models are byte-identical at any job count.")

let cache_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Content-addressed model cache; a hit skips the program's \
              execution and modeling entirely.  Keys cover the binary, the \
              exec settings, the CST geometry and the seed, so stale \
              entries are never returned.")

let cache_of_dir = Option.map (fun dir -> Scaguard.Model_cache.create ~dir)

(* The repository's harness kernels are drawn from the shared rng stream in
   family-list order, so the same family can get different harness state
   (init closures, which the cache key cannot hash) under different --repo
   lists; folding the list into the salt keeps those entries distinct. *)
let repo_salt ~seed repo_names =
  Printf.sprintf "%d:%s" seed (String.concat "," repo_names)

let name_arg p doc = Arg.(required & pos p (some string) None & info [] ~docv:"PROGRAM" ~doc)

(* ---- list ---------------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Printf.printf "Attack PoCs:\n";
    List.iter (fun (n, _) -> Printf.printf "  %s\n" n) poc_registry;
    Printf.printf "Benign generator families:\n";
    List.iter
      (fun (n, cat) -> Printf.printf "  %-16s (%s)\n" n cat)
      Workloads.Benign.families
  in
  Cmd.v (Cmd.info "list" ~doc:"List available programs.")
    Term.(const run $ const ())

(* ---- leak ---------------------------------------------------------------------- *)

let leak_cmd =
  let run seed name =
    let s = sample_or_die ~seed name in
    let res = Workloads.Dataset.run s in
    Printf.printf "%s: %d instructions, %d cycles, halted=%b\n"
      s.Workloads.Dataset.name res.Cpu.Exec.instructions res.Cpu.Exec.cycles
      res.Cpu.Exec.halted_normally;
    let hist = Workloads.Attacks.result_histogram res in
    if Array.exists (fun v -> v > 0) hist then begin
      Printf.printf "result histogram: ";
      Array.iteri (fun i v -> if v > 0 then Printf.printf "%d:%d " i v) hist;
      Printf.printf "\nbest guess: %d\n" (Workloads.Attacks.secret_guess res)
    end
    else Printf.printf "no attack results recorded (benign program?)\n"
  in
  Cmd.v
    (Cmd.info "leak" ~doc:"Execute a program and show its attack results.")
    Term.(const run $ seed_t $ name_arg 0 "Program name (see `list`).")

(* ---- model ---------------------------------------------------------------------- *)

let model_cmd =
  let run seed name =
    let s = sample_or_die ~seed name in
    let a, _ = analyze s in
    Printf.printf "CFG: %d blocks; step1 %d; relevant %d; model %d blocks\n\n"
      (Cfg.Graph.n_blocks a.Scaguard.Pipeline.cfg)
      (List.length a.Scaguard.Pipeline.info.Scaguard.Relevant.step1)
      (List.length a.Scaguard.Pipeline.info.Scaguard.Relevant.relevant)
      (Scaguard.Model.length a.Scaguard.Pipeline.model);
    Format.printf "%a@." Scaguard.Model.pp a.Scaguard.Pipeline.model
  in
  Cmd.v
    (Cmd.info "model" ~doc:"Build and print a program's CST-BBS model.")
    Term.(const run $ seed_t $ name_arg 0 "Program name (see `list`).")

(* ---- compare -------------------------------------------------------------------- *)

let compare_cmd =
  let run seed a b =
    let sa = sample_or_die ~seed a and sb = sample_or_die ~seed b in
    let ma, _ = analyze sa and mb, _ = analyze sb in
    Printf.printf "similarity(%s, %s) = %.2f%%\n" a b
      (100.0
      *. Scaguard.Dtw.compare_models ma.Scaguard.Pipeline.model
           mb.Scaguard.Pipeline.model)
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Similarity score of two programs' models.")
    Term.(const run $ seed_t $ name_arg 0 "First program." $ name_arg 1 "Second program.")

(* ---- detect --------------------------------------------------------------------- *)

let repo_t =
  Arg.(
    value
    & opt (list string) [ "FR-F"; "PP-F"; "S-FR"; "S-PP" ]
    & info [ "repo" ] ~docv:"FAMILIES"
        ~doc:"Attack families in the PoC repository (comma-separated).")

let threshold_t =
  Arg.(
    value
    & opt float Scaguard.Detector.default_threshold
    & info [ "threshold" ] ~docv:"T" ~doc:"Similarity threshold in [0,1].")

let detect_cmd =
  let run seed repo_names threshold name =
    let families =
      List.filter_map Workloads.Label.of_string repo_names
    in
    if families = [] then begin
      Printf.eprintf "no valid repository families in %s\n"
        (String.concat "," repo_names);
      exit 1
    end;
    let rng = Sutil.Rng.create seed in
    let repo = Experiments.Common.repository ~rng families in
    let s = sample_or_die ~seed name in
    let a, _ = analyze s in
    let v =
      Scaguard.Detector.classify ~threshold repo a.Scaguard.Pipeline.model
    in
    List.iter
      (fun (poc, family, score) ->
        Printf.printf "  vs %-22s (%s): %6.2f%%\n" poc family (100.0 *. score))
      (Scaguard.Detector.score_all repo a.Scaguard.Pipeline.model);
    match v.Scaguard.Detector.best_family with
    | Some f -> Printf.printf "verdict: ATTACK, family %s\n" f
    | None -> Printf.printf "verdict: benign (best %.2f%% < %.0f%%)\n"
                (100.0 *. v.Scaguard.Detector.best_score) (100.0 *. threshold)
  in
  Cmd.v
    (Cmd.info "detect" ~doc:"Classify a program against a PoC repository.")
    Term.(const run $ seed_t $ repo_t $ threshold_t $ name_arg 0 "Program name.")

(* ---- detect-batch (the parallel engine) ------------------------------------------- *)

let detect_batch_cmd =
  let run seed repo_names repo_file threshold jobs cache_dir domains band
      no_prune stats names =
    let cache = cache_of_dir cache_dir in
    let repo =
      match repo_file with
      | Some path -> (
        try Scaguard.Persist.load_repository ~path
        with Failure m | Sys_error m ->
          Printf.eprintf "cannot load repository %s: %s\n" path m;
          exit 1)
      | None ->
        let families = List.filter_map Workloads.Label.of_string repo_names in
        if families = [] then begin
          Printf.eprintf "no valid repository families in %s\n"
            (String.concat "," repo_names);
          exit 1
        end;
        let rng = Sutil.Rng.create seed in
        Experiments.Common.repository ?domains:jobs ?cache
          ~salt:(repo_salt ~seed repo_names) ~rng families
    in
    let samples = List.map (sample_or_die ~seed) names in
    let target_jobs =
      (* benign samples are re-derived from the seed alone (no shared rng
         stream), so the seed is a sufficient salt here *)
      Array.of_list
        (List.map
           (fun (s : Workloads.Dataset.sample) ->
             Scaguard.Pipeline.job ?settings:s.Workloads.Dataset.settings
               ~init:s.Workloads.Dataset.init ?victim:s.Workloads.Dataset.victim
               ~salt:(string_of_int seed) ~name:s.Workloads.Dataset.name
               s.Workloads.Dataset.program)
           samples)
    in
    let targets =
      Scaguard.Pipeline.build_models_batch ?domains:jobs ?cache target_jobs
    in
    (* --jobs also sets the scoring-engine worker count unless --domains
       overrides it explicitly *)
    let domains = match domains with Some _ -> domains | None -> jobs in
    let verdicts, st =
      Scaguard.Engine.classify_batch ~threshold ?band ?domains
        ~prune:(not no_prune) repo targets
    in
    List.iteri
      (fun i name ->
        let v = verdicts.(i) in
        match v.Scaguard.Detector.best_family with
        | Some f ->
          Printf.printf "%-24s ATTACK %-6s (%6.2f%%)\n" name f
            (100.0 *. v.Scaguard.Detector.best_score)
        | None ->
          Printf.printf "%-24s benign        (best %6.2f%%)\n" name
            (100.0 *. v.Scaguard.Detector.best_score))
      names;
    if stats then begin
      Format.printf "%a@." Scaguard.Engine.pp_stats st;
      Option.iter
        (fun c -> Format.printf "%a@." Scaguard.Model_cache.pp_stats c)
        cache
    end
  in
  let domains_t =
    Arg.(value & opt (some int) None
         & info [ "domains" ] ~docv:"N"
             ~doc:"Worker domains (default: the recommended domain count).")
  in
  let band_t =
    Arg.(value & opt (some int) None
         & info [ "band" ] ~docv:"B"
             ~doc:"Sakoe-Chiba band for the DTW (off by default; exact).")
  in
  let no_prune_t =
    Arg.(value & flag
         & info [ "no-prune" ]
             ~doc:"Disable the exact lower-bound pruning cascade (identical \
                   verdicts, more DP work; for benchmarking).")
  in
  let repo_file_t =
    Arg.(value & opt (some string) None
         & info [ "repo-file" ] ~docv:"FILE"
             ~doc:"Load the PoC repository from a file written by \
                   `build-repo` instead of rebuilding it from --repo.")
  in
  let stats_t =
    Arg.(value & flag
         & info [ "stats" ] ~doc:"Print per-batch engine counters.")
  in
  let progs_t =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"PROGRAM" ~doc:"Programs to classify (see `list`).")
  in
  Cmd.v
    (Cmd.info "detect-batch"
       ~doc:"Classify many programs against a PoC repository in one parallel \
             batch (identical verdicts to `detect`, one per line).")
    Term.(const run $ seed_t $ repo_t $ repo_file_t $ threshold_t $ jobs_t
          $ cache_dir_t $ domains_t $ band_t $ no_prune_t $ stats_t $ progs_t)

(* ---- build-repo / repo-backed detect ---------------------------------------------- *)

let build_repo_cmd =
  let run seed repo_names jobs cache_dir path =
    let families = List.filter_map Workloads.Label.of_string repo_names in
    let rng = Sutil.Rng.create seed in
    let cache = cache_of_dir cache_dir in
    let repo =
      Experiments.Common.repository ?domains:jobs ?cache
        ~salt:(repo_salt ~seed repo_names) ~rng families
    in
    Scaguard.Persist.save_repository ~path repo;
    Printf.printf "wrote %d PoC models to %s\n" (List.length repo) path;
    Option.iter
      (fun c -> Format.printf "%a@." Scaguard.Model_cache.pp_stats c)
      cache
  in
  let path_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Output repository file.")
  in
  Cmd.v
    (Cmd.info "build-repo"
       ~doc:"Build a PoC-model repository and save it to a file.")
    Term.(const run $ seed_t $ repo_t $ jobs_t $ cache_dir_t $ path_t)

let detect_file_cmd =
  let run seed path threshold name =
    let repo =
      try Scaguard.Persist.load_repository ~path
      with Failure m | Sys_error m ->
        Printf.eprintf "cannot load repository %s: %s\n" path m;
        exit 1
    in
    let s = sample_or_die ~seed name in
    let a, _ = analyze s in
    let v = Scaguard.Detector.classify ~threshold repo a.Scaguard.Pipeline.model in
    List.iter
      (fun (poc, family, score) ->
        Printf.printf "  vs %-22s (%s): %6.2f%%\n" poc family (100.0 *. score))
      (Scaguard.Detector.score_all repo a.Scaguard.Pipeline.model);
    match v.Scaguard.Detector.best_family with
    | Some f -> Printf.printf "verdict: ATTACK, family %s\n" f
    | None -> Printf.printf "verdict: benign\n"
  in
  let path_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Repository file written by build-repo.")
  in
  Cmd.v
    (Cmd.info "detect-with"
       ~doc:"Classify a program against a saved repository file.")
    Term.(const run $ seed_t $ path_t $ threshold_t $ name_arg 1 "Program name.")

(* ---- assemble / disasm / detect-binary ---------------------------------------------- *)

let assemble_cmd =
  let run seed name path =
    let s = sample_or_die ~seed name in
    Isa.Binary.write_file ~path s.Workloads.Dataset.program;
    Printf.printf "wrote %s (%d instructions) to %s\n" s.Workloads.Dataset.name
      (Isa.Program.length s.Workloads.Dataset.program) path
  in
  let path_t =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT"
           ~doc:"Output binary file.")
  in
  Cmd.v
    (Cmd.info "assemble" ~doc:"Assemble a program to a binary file.")
    Term.(const run $ seed_t $ name_arg 0 "Program name (see `list`)." $ path_t)

let binfile_t p =
  Arg.(required & pos p (some file) None & info [] ~docv:"BIN"
         ~doc:"Binary file written by `assemble`.")

let disasm_cmd =
  let run path =
    let prog = Isa.Binary.read_file ~path in
    Format.printf "%a@." Isa.Program.pp prog
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a binary file.")
    Term.(const run $ binfile_t 0)

let detect_binary_cmd =
  let run seed repo_names threshold with_victim path =
    let prog = Isa.Binary.read_file ~path in
    let families = List.filter_map Workloads.Label.of_string repo_names in
    let rng = Sutil.Rng.create seed in
    let repo = Experiments.Common.repository ~rng families in
    let victim =
      if with_victim then Some (Workloads.Victim.shared_lib ()) else None
    in
    let a = Scaguard.Pipeline.run_and_analyze ?victim prog in
    let v = Scaguard.Detector.classify ~threshold repo a.Scaguard.Pipeline.model in
    List.iter
      (fun (poc, family, score) ->
        Printf.printf "  vs %-22s (%s): %6.2f%%\n" poc family (100.0 *. score))
      (Scaguard.Detector.score_all repo a.Scaguard.Pipeline.model);
    match v.Scaguard.Detector.best_family with
    | Some f -> Printf.printf "verdict: ATTACK, family %s\n" f
    | None -> Printf.printf "verdict: benign\n"
  in
  let victim_t =
    Arg.(value & flag
         & info [ "with-victim" ] ~doc:"Co-run the shared-library victim.")
  in
  Cmd.v
    (Cmd.info "detect-binary"
       ~doc:"Run the full pipeline on a binary file and classify it.")
    Term.(const run $ seed_t $ repo_t $ threshold_t $ victim_t $ binfile_t 0)

(* ---- compile ----------------------------------------------------------------------- *)

let compile_cmd =
  let run optimize with_victim path =
    let src =
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let prog =
      try Minc.Codegen.compile_source ~optimize ~name:(Filename.basename path) src
      with
      | Minc.Parser.Error m | Minc.Codegen.Error m ->
        Printf.eprintf "compile error: %s\n" m;
        exit 1
      | Minc.Lexer.Error (m, off) ->
        Printf.eprintf "lex error at byte %d: %s\n" off m;
        exit 1
    in
    Printf.printf "compiled %s: %d instructions (optimize=%b)\n" path
      (Isa.Program.length prog) optimize;
    let victim =
      if with_victim then Some (Workloads.Victim.shared_lib ()) else None
    in
    let res = Cpu.Exec.run ?victim prog in
    Printf.printf "ran: %d instructions, %d cycles, halted=%b\n"
      res.Cpu.Exec.instructions res.Cpu.Exec.cycles res.Cpu.Exec.halted_normally;
    let a = Scaguard.Pipeline.analyze ~name:path ~program:prog res in
    Printf.printf "model: %d blocks (of %d CFG blocks)\n"
      (Scaguard.Model.length a.Scaguard.Pipeline.model)
      (Cfg.Graph.n_blocks a.Scaguard.Pipeline.cfg)
  in
  let opt_t =
    Arg.(value & flag & info [ "O" ] ~doc:"Enable the optimizing pipeline.")
  in
  let victim_t =
    Arg.(value & flag
         & info [ "with-victim" ]
             ~doc:"Co-run the shared-library victim (for compiled attacks).")
  in
  let path_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"MinC source file.")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile and run a MinC source file.")
    Term.(const run $ opt_t $ victim_t $ path_t)

(* ---- dot ------------------------------------------------------------------------- *)

let dot_cmd =
  let run seed name attack_graph =
    let s = sample_or_die ~seed name in
    let a, _ = analyze s in
    let cfg = a.Scaguard.Pipeline.cfg in
    if attack_graph then
      let ag = a.Scaguard.Pipeline.attack_graph in
      print_string
        (Cfg.Dot.of_attack_graph cfg
           ~relevant:ag.Scaguard.Attack_graph.relevant
           ~nodes:ag.Scaguard.Attack_graph.nodes
           ~edges:ag.Scaguard.Attack_graph.edges)
    else
      print_string
        (Cfg.Dot.of_graph
           ~highlight:a.Scaguard.Pipeline.info.Scaguard.Relevant.relevant cfg)
  in
  let ag_t =
    Arg.(value & flag
         & info [ "attack-graph" ]
             ~doc:"Render the attack-relevant graph instead of the plain CFG.")
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Print a Graphviz rendering of a program's CFG (relevant blocks \
             highlighted).")
    Term.(const run $ seed_t $ name_arg 0 "Program name." $ ag_t)

(* ---- export-dataset ----------------------------------------------------------------- *)

let export_dataset_cmd =
  let run seed per_family dir =
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let rng = Sutil.Rng.create seed in
    let samples =
      List.concat_map snd (Workloads.Dataset.attack_dataset ~rng ~per_family)
      @ Workloads.Dataset.benign_samples ~rng ~count:per_family
    in
    let manifest = open_out (Filename.concat dir "manifest.tsv") in
    Fun.protect
      ~finally:(fun () -> close_out manifest)
      (fun () ->
        output_string manifest "file\tlabel\tname\n";
        List.iter
          (fun (s : Workloads.Dataset.sample) ->
            let file = s.Workloads.Dataset.name ^ ".bin" in
            Isa.Binary.write_file ~path:(Filename.concat dir file)
              s.Workloads.Dataset.program;
            Printf.fprintf manifest "%s\t%s\t%s\n" file
              (Workloads.Label.to_string s.Workloads.Dataset.label)
              s.Workloads.Dataset.name)
          samples);
    Printf.printf "exported %d binaries + manifest.tsv to %s\n"
      (List.length samples) dir
  in
  let per_family_t =
    Arg.(value & opt int 16 & info [ "per-family" ] ~docv:"N"
           ~doc:"Samples per attack type (and benign count).")
  in
  let dir_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
           ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "export-dataset"
       ~doc:"Write the Table II/III dataset as binary files with a manifest.")
    Term.(const run $ seed_t $ per_family_t $ dir_t)

(* ---- heatmap --------------------------------------------------------------------- *)

let heatmap_cmd =
  let run seed name =
    let s = sample_or_die ~seed name in
    let res = Workloads.Dataset.run s in
    let sets = Cache.Config.llc.Cache.Config.sets in
    let counts = Array.make sets 0 in
    List.iter
      (fun (a : Hpc.Collector.access) ->
        let set = Cache.Config.set_of_addr Cache.Config.llc a.Hpc.Collector.target in
        counts.(set) <- counts.(set) + 1)
      (Hpc.Collector.accesses res.Cpu.Exec.collector);
    let bucket = 8 in
    let buckets = sets / bucket in
    let agg = Array.init buckets (fun i ->
        let s = ref 0 in
        for j = 0 to bucket - 1 do s := !s + counts.((i * bucket) + j) done;
        !s)
    in
    let peak = Array.fold_left max 1 agg in
    Printf.printf "LLC set access heat map for %s (each column = %d sets, peak %d accesses):\n"
      s.Workloads.Dataset.name bucket peak;
    let glyphs = " .:-=+*#%@" in
    for row = 3 downto 0 do
      Printf.printf "  ";
      Array.iter
        (fun v ->
          let level = v * 40 / peak in
          let g =
            if level > row * 10 then
              glyphs.[min 9 (max 1 (level - (row * 10)))]
            else ' '
          in
          print_char g)
        agg;
      print_newline ()
    done;
    Printf.printf "  %s\n" (String.make buckets '-');
    Printf.printf "  set 0%ssets %d-%d\n" (String.make (buckets - 14) ' ')
      (sets - bucket) (sets - 1)
  in
  Cmd.v
    (Cmd.info "heatmap"
       ~doc:"ASCII heat map of a program's LLC set accesses (attacks show \
             their page-stride stripes).")
    Term.(const run $ seed_t $ name_arg 0 "Program name.")

(* ---- scadet --------------------------------------------------------------------- *)

let scadet_cmd =
  let run seed name =
    let s = sample_or_die ~seed name in
    let res = Workloads.Dataset.run s in
    let r = Baselines.Scadet.detect s.Workloads.Dataset.program res in
    Printf.printf "tight loops: %d\nswept sets: [%s]\nverdict: %s\n"
      r.Baselines.Scadet.tight_loops
      (String.concat "; " (List.map string_of_int r.Baselines.Scadet.swept_sets))
      (if r.Baselines.Scadet.detected then "Prime+Probe detected" else "nothing")
  in
  Cmd.v
    (Cmd.info "scadet" ~doc:"Run the rule-based SCADET baseline on a program.")
    Term.(const run $ seed_t $ name_arg 0 "Program name.")

(* ---- main ----------------------------------------------------------------------- *)

let () =
  let doc = "SCAGuard: cache side-channel attack detection (DAC'23 reproduction)" in
  let info = Cmd.info "scaguard" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; leak_cmd; model_cmd; compare_cmd; detect_cmd;
            detect_batch_cmd; build_repo_cmd; detect_file_cmd; dot_cmd; compile_cmd;
            assemble_cmd; disasm_cmd; detect_binary_cmd; heatmap_cmd;
            export_dataset_cmd; scadet_cmd;
          ]))
