(* Tests for the unified detector layer (lib/detect): the adapters must be
   prediction-identical to the entry points they wrap, the registry-driven
   Table VI / Fig. 5 drivers must render byte-identical tables to the
   pre-refactor evaluation logic, and the two-tier ensemble at screening
   threshold 0 must be verdict-bit-identical to pure SCAGuard. *)

module L = Workloads.Label
module D = Workloads.Dataset
module E = Experiments
module T6 = E.Table6

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---- shared small dataset ----------------------------------------------- *)

let small_pairs ~rng ~per_family =
  let samples =
    List.concat_map
      (fun l -> D.mutated_attacks ~rng ~count:per_family l)
      L.attack_labels
    @ D.benign_samples ~rng ~count:(2 * per_family)
  in
  List.map (fun r -> (r, Detect.Run.label r)) (Detect.Run.execute_all samples)

(* ---- registry ------------------------------------------------------------ *)

let test_registry () =
  let keys = Detect.keys () in
  List.iter
    (fun k ->
      check_bool (k ^ " registered") true (Option.is_some (Detect.find k)))
    [
      "svm-nw"; "lr-nw"; "knn-mlfm"; "scadet"; "scaguard"; "anomaly";
      "phased-guard"; "svm-hpc"; "lr-hpc"; "knn-hpc"; "ensemble";
    ];
  check_int "registry size" 11 (List.length keys);
  check_bool "unknown key rejected" true
    (match Detect.find_exn "no-such-detector" with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- Table VI byte-identity ---------------------------------------------- *)

(* The pre-refactor Table VI evaluation, reproduced inline: SCAGuard via
   Common.scaguard_predict, SCADET via Baselines.Scadet, the learned
   baselines via their own train/predict — exactly the logic the registry
   adapters replaced.  Run both paths from separately-seeded rngs and the
   rendered tables must agree byte for byte. *)

let legacy_scaguard_pairs td =
  List.map
    (fun (run, truth) ->
      ( T6.canonize td (E.Common.scaguard_predict (T6.repository_of td) run),
        truth ))
    (T6.test_runs td)

let legacy_scadet_pairs td =
  let rules_apply =
    List.exists
      (fun (p : Scaguard.Detector.poc) ->
        String.equal p.Scaguard.Detector.family (L.to_string L.Pp_family))
      (T6.repository_of td)
  in
  List.map
    (fun ((run : E.Common.run), truth) ->
      let prediction =
        if not rules_apply then L.Benign
        else
          match
            Baselines.Scadet.classify run.E.Common.sample.D.program
              run.E.Common.result
          with
          | Some f -> Option.value ~default:L.Benign (L.of_string f)
          | None -> L.Benign
      in
      (T6.canonize td prediction, truth))
    (T6.test_runs td)

let legacy_learned_pairs ~rng td approach =
  let train_data =
    List.map
      (fun ((run : E.Common.run), l) ->
        (run.E.Common.result, E.Common.label_to_int l))
      (T6.train_runs td)
  in
  let predict =
    match approach with
    | T6.Svm_nw ->
      let m =
        Baselines.Nights_watch.train ~variant:Baselines.Nights_watch.Svm_nw
          ~rng train_data
      in
      Baselines.Nights_watch.predict m
    | T6.Lr_nw ->
      let m =
        Baselines.Nights_watch.train ~variant:Baselines.Nights_watch.Lr_nw
          ~rng train_data
      in
      Baselines.Nights_watch.predict m
    | T6.Knn_mlfm ->
      let m = Baselines.Mlfm.train train_data in
      Baselines.Mlfm.predict m
    | T6.Scadet | T6.Scaguard -> invalid_arg "legacy_learned_pairs"
  in
  List.map
    (fun ((run : E.Common.run), truth) ->
      ( T6.canonize td (E.Common.label_of_int (predict run.E.Common.result)),
        truth ))
    (T6.test_runs td)

let legacy_evaluate_all ~rng ~per_family =
  List.map
    (fun task ->
      let td = T6.prepare ~rng ~per_family task in
      ( task,
        List.map
          (fun a ->
            let pairs =
              match a with
              | T6.Scaguard -> legacy_scaguard_pairs td
              | T6.Scadet -> legacy_scadet_pairs td
              | T6.Svm_nw | T6.Lr_nw | T6.Knn_mlfm ->
                legacy_learned_pairs ~rng td a
            in
            (a, E.Common.metrics ~classes:(T6.classes_of td) pairs))
          T6.approaches ))
    T6.tasks

let test_table6_byte_identical () =
  let per_family = 3 in
  let refactored = T6.evaluate_all ~rng:(Sutil.Rng.create 411) ~per_family in
  let legacy = legacy_evaluate_all ~rng:(Sutil.Rng.create 411) ~per_family in
  check_string "Table VI byte-identical"
    (Sutil.Table.render (T6.to_table legacy))
    (Sutil.Table.render (T6.to_table refactored))

(* ---- Fig. 5 byte-identity -------------------------------------------------- *)

let legacy_fig5 ~rng ~per_family ~thresholds =
  let td = T6.prepare ~rng ~per_family T6.E1 in
  let repo = T6.repository_of td in
  let scored =
    List.map
      (fun (run, truth) ->
        let v =
          Scaguard.Detector.classify ~threshold:0.0 repo (E.Common.model run)
        in
        let best =
          match v.Scaguard.Detector.best_matches with
          | (_, family, _) :: _ -> Some (family, v.Scaguard.Detector.best_score)
          | [] -> None
        in
        (best, truth))
      (T6.test_runs td)
  in
  List.map
    (fun threshold ->
      let pairs =
        List.map
          (fun (best, truth) ->
            let prediction =
              match best with
              | Some (family, score) when score >= threshold ->
                Option.value ~default:L.Benign (L.of_string family)
              | Some _ | None -> L.Benign
            in
            (prediction, truth))
          scored
      in
      let s = E.Common.metrics ~classes:L.all pairs in
      {
        E.Fig5.threshold;
        precision = s.Ml.Metrics.precision;
        recall = s.Ml.Metrics.recall;
        f1 = s.Ml.Metrics.f1;
      })
    thresholds

let test_fig5_byte_identical () =
  let per_family = 3 in
  let thresholds = [ 0.1; 0.4; 0.6; 0.9 ] in
  let refactored =
    E.Fig5.evaluate ~rng:(Sutil.Rng.create 412) ~per_family ~thresholds ()
  in
  let legacy = legacy_fig5 ~rng:(Sutil.Rng.create 412) ~per_family ~thresholds in
  check_string "Fig. 5 byte-identical"
    (Sutil.Table.render (E.Fig5.to_table legacy))
    (Sutil.Table.render (E.Fig5.to_table refactored))

(* ---- adapter identity (qcheck) -------------------------------------------- *)

(* Every adapter must predict exactly what its wrapped entry point predicts,
   run for run — the adapters are shims, not reimplementations.  Stateful
   trainers (SVM-NW, LR-NW, Phased-Guard) consume the context rng in
   training order, so the direct path replays the same order from an
   identically-seeded rng. *)
let adapter_identity_prop =
  QCheck.Test.make ~name:"adapters identical to direct entry points" ~count:4
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let pairs = small_pairs ~rng:(Sutil.Rng.create seed) ~per_family:2 in
      let repo =
        E.Common.repository ~rng:(Sutil.Rng.create (seed + 1)) L.attack_labels
      in
      let ctx =
        Detect.make_ctx
          ~rng:(Sutil.Rng.create (seed + 2))
          ~repository:repo ~known_families:L.attack_labels ()
      in
      let drng = Sutil.Rng.create (seed + 2) in
      let int_pairs =
        List.map
          (fun (r, l) -> (Detect.Run.result r, E.Common.label_to_int l))
          pairs
      in
      let agree name adapter direct =
        List.iter
          (fun (r, _) ->
            if not (L.equal (adapter r) (direct r)) then
              QCheck.Test.fail_reportf "%s diverges on %s" name
                r.Detect.Run.sample.D.name)
          pairs
      in
      (* same training order on both rngs: svm-nw, lr-nw, phased-guard *)
      let svm = Detect.Svm_nw.train ctx pairs in
      let lr = Detect.Lr_nw.train ctx pairs in
      let pg = Detect.Phased_guard.train ctx pairs in
      let svm_d =
        Baselines.Nights_watch.train ~variant:Baselines.Nights_watch.Svm_nw
          ~rng:drng int_pairs
      in
      let lr_d =
        Baselines.Nights_watch.train ~variant:Baselines.Nights_watch.Lr_nw
          ~rng:drng int_pairs
      in
      let pg_d =
        Baselines.Phased_guard.train ~rng:drng
          ~benign:
            (List.filter_map
               (fun (x, l) ->
                 if l = E.Common.label_to_int L.Benign then Some x else None)
               int_pairs)
          ~attacks:
            (List.filter
               (fun (_, l) -> l <> E.Common.label_to_int L.Benign)
               int_pairs)
          ~benign_label:(E.Common.label_to_int L.Benign)
      in
      agree "svm-nw" (Detect.Svm_nw.predict svm) (fun r ->
          E.Common.label_of_int
            (Baselines.Nights_watch.predict svm_d (Detect.Run.result r)));
      agree "lr-nw" (Detect.Lr_nw.predict lr) (fun r ->
          E.Common.label_of_int
            (Baselines.Nights_watch.predict lr_d (Detect.Run.result r)));
      agree "phased-guard" (Detect.Phased_guard.predict pg) (fun r ->
          E.Common.label_of_int
            (Baselines.Phased_guard.predict pg_d (Detect.Run.result r)));
      let knn = Detect.Knn_mlfm.train ctx pairs in
      let knn_d = Baselines.Mlfm.train int_pairs in
      agree "knn-mlfm" (Detect.Knn_mlfm.predict knn) (fun r ->
          E.Common.label_of_int
            (Baselines.Mlfm.predict knn_d (Detect.Run.result r)));
      let sd = Detect.Scadet.train ctx pairs in
      agree "scadet" (Detect.Scadet.predict sd) (fun r ->
          match
            Baselines.Scadet.classify (Detect.Run.program r)
              (Detect.Run.result r)
          with
          | Some f -> Option.value ~default:L.Benign (L.of_string f)
          | None -> L.Benign);
      let sg = Detect.Scaguard_dtw.train ctx pairs in
      agree "scaguard" (Detect.Scaguard_dtw.predict sg) (fun r ->
          E.Common.scaguard_predict repo r);
      let an = Detect.Anomaly.train ctx pairs in
      let an_d =
        Baselines.Anomaly.train
          (List.filter_map
             (fun (x, l) ->
               if l = E.Common.label_to_int L.Benign then Some x else None)
             int_pairs)
      in
      agree "anomaly" (Detect.Anomaly.predict an) (fun r ->
          if Baselines.Anomaly.is_attack an_d (Detect.Run.result r) then
            L.Fr_family
          else L.Benign);
      true)

(* ---- ensemble: tau = 0 bit-identity (qcheck) -------------------------------- *)

let float_bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let verdicts_bit_identical (a : Scaguard.Detector.verdict)
    (b : Scaguard.Detector.verdict) =
  Option.equal String.equal a.Scaguard.Detector.best_family
    b.Scaguard.Detector.best_family
  && float_bits_equal a.Scaguard.Detector.best_score
       b.Scaguard.Detector.best_score
  && List.length a.Scaguard.Detector.best_matches
     = List.length b.Scaguard.Detector.best_matches
  && List.for_all2
       (fun (n1, f1, s1) (n2, f2, s2) ->
         String.equal n1 n2 && String.equal f1 f2 && float_bits_equal s1 s2)
       a.Scaguard.Detector.best_matches b.Scaguard.Detector.best_matches

(* Anomaly z-scores are >= 0, so a screening threshold of 0 never fast-
   rejects: the ensemble must then be bit-identical to pure SCAGuard on
   every run — same verdict record, same score bits. *)
let ensemble_tau0_prop =
  QCheck.Test.make ~name:"ensemble at tau 0 bit-identical to scaguard" ~count:4
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let pairs = small_pairs ~rng:(Sutil.Rng.create seed) ~per_family:2 in
      let repo =
        E.Common.repository ~rng:(Sutil.Rng.create (seed + 1)) L.attack_labels
      in
      let ctx =
        Detect.make_ctx
          ~rng:(Sutil.Rng.create (seed + 2))
          ~repository:repo ~known_families:L.attack_labels ~ensemble_tau:0.0 ()
      in
      let en = Detect.Ensemble.train ctx pairs in
      let sg = Detect.Scaguard_dtw.train ctx pairs in
      Detect.Ensemble.reset_stats ();
      List.iter
        (fun (r, _) ->
          let ve = Detect.Ensemble.classify en r in
          let vs = Detect.Scaguard_dtw.classify sg r in
          if not (verdicts_bit_identical ve vs) then
            QCheck.Test.fail_reportf "verdict diverges on %s"
              r.Detect.Run.sample.D.name;
          if
            not
              (L.equal (Detect.Ensemble.predict en r)
                 (Detect.Scaguard_dtw.predict sg r))
          then
            QCheck.Test.fail_reportf "prediction diverges on %s"
              r.Detect.Run.sample.D.name;
          if Detect.Ensemble.binary_detect en r
             <> Detect.Scaguard_dtw.binary_detect sg r
          then
            QCheck.Test.fail_reportf "detection bit diverges on %s"
              r.Detect.Run.sample.D.name)
        pairs;
      let s = Detect.Ensemble.stats () in
      (* tau 0: everything escalates, nothing is fast-rejected *)
      s.Detect.Ensemble.fast_rejects = 0)

(* ---- ensemble counter accounting -------------------------------------------- *)

let test_ensemble_counters () =
  let pairs = small_pairs ~rng:(Sutil.Rng.create 413) ~per_family:2 in
  let repo = E.Common.repository ~rng:(Sutil.Rng.create 414) L.attack_labels in
  let ctx =
    Detect.make_ctx
      ~rng:(Sutil.Rng.create 415)
      ~repository:repo ~known_families:L.attack_labels ~ensemble_tau:2.0 ()
  in
  let en = Detect.Ensemble.train ctx pairs in
  Detect.Ensemble.reset_stats ();
  let n = List.length pairs in
  List.iter (fun (r, _) -> ignore (Detect.Ensemble.predict en r)) pairs;
  let s = Detect.Ensemble.stats () in
  check_int "every run screened" n s.Detect.Ensemble.screened;
  check_int "screened = rejects + escalations" s.Detect.Ensemble.screened
    (s.Detect.Ensemble.fast_rejects + s.Detect.Ensemble.slow_path);
  check_bool "confirms only on the slow path" true
    (s.Detect.Ensemble.slow_confirms <= s.Detect.Ensemble.slow_path);
  let rate = Detect.Ensemble.slow_path_rate s in
  check_bool "slow-path rate in [0,1]" true (rate >= 0.0 && rate <= 1.0);
  (* the attack-heavy dataset must keep escalating some runs *)
  check_bool "some runs escalate" true (s.Detect.Ensemble.slow_path > 0)

(* ---- showdown smoke ----------------------------------------------------------- *)

let test_showdown_shape () =
  let t =
    E.Showdown.evaluate ~rng:(Sutil.Rng.create 416) ~per_family:2 ~tau:2.0
      ~detectors:[ "scaguard"; "ensemble" ] ()
  in
  check_int "two rows" 2 (List.length t.E.Showdown.rows);
  let en =
    List.find (fun r -> r.E.Showdown.key = "ensemble") t.E.Showdown.rows
  in
  check_bool "ensemble carries stats" true (Option.is_some en.E.Showdown.ensemble);
  check_bool "table renders" true
    (String.length (Sutil.Table.render (E.Showdown.to_table t)) > 0);
  check_bool "json non-empty" true (String.length (E.Showdown.to_json t) > 0)

let () =
  Alcotest.run "detect"
    [
      ("registry", [ Alcotest.test_case "keys" `Quick test_registry ]);
      ( "byte-identity",
        [
          Alcotest.test_case "table6" `Slow test_table6_byte_identical;
          Alcotest.test_case "fig5" `Slow test_fig5_byte_identical;
        ] );
      ( "adapters",
        [ QCheck_alcotest.to_alcotest ~long:true adapter_identity_prop ] );
      ( "ensemble",
        [
          QCheck_alcotest.to_alcotest ~long:true ensemble_tau0_prop;
          Alcotest.test_case "counters" `Quick test_ensemble_counters;
        ] );
      ("showdown", [ Alcotest.test_case "shape" `Slow test_showdown_shape ]);
    ]
