(* Tests for the baseline detectors: feature extraction, SCADET's rules and
   the learning-based classifiers. *)

module A = Workloads.Attacks
module D = Workloads.Dataset
module L = Workloads.Label

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_spec spec = A.run_spec spec

let run_of_label label =
  let rng = Sutil.Rng.create 71 in
  let s = List.hd (D.mutated_attacks ~rng ~count:1 label) in
  (s, D.run s)

(* ---- Features --------------------------------------------------------------- *)

let test_feature_dims () =
  let res = run_spec (A.flush_reload ~style:A.Iaik ()) in
  check_int "whole run dim" Baselines.Features.dim_whole_run
    (Array.length (Baselines.Features.whole_run res));
  check_int "loop profile dim" Baselines.Features.dim_loop_profile
    (Array.length (Baselines.Features.loop_profile res))

let test_features_distinguish_attack_kinds () =
  let fr = Baselines.Features.whole_run (run_spec (A.flush_reload ~style:A.Iaik ())) in
  let pp = Baselines.Features.whole_run (run_spec (A.prime_probe ~style:A.Iaik ())) in
  check_bool "profiles differ" true (Ml.Vector.euclidean_distance fr pp > 0.01)

let test_features_finite () =
  let res = run_spec (A.spectre_pp ()) in
  Array.iter
    (fun v -> check_bool "finite" true (Float.is_finite v))
    (Baselines.Features.whole_run res);
  Array.iter
    (fun v -> check_bool "finite" true (Float.is_finite v))
    (Baselines.Features.loop_profile res)

(* ---- Scadet ------------------------------------------------------------------ *)

let test_scadet_detects_prime_probe () =
  List.iter
    (fun style ->
      let spec = A.prime_probe ~style () in
      let res = run_spec spec in
      let report = Baselines.Scadet.detect spec.A.program res in
      check_bool "PP detected" true report.Baselines.Scadet.detected;
      check_bool "sets found" true
        (List.length report.Baselines.Scadet.swept_sets >= 4))
    [ A.Iaik; A.Jzhang ]

let test_scadet_misses_flush_reload () =
  let spec = A.flush_reload ~style:A.Iaik () in
  let res = run_spec spec in
  check_bool "FR not matched by PP rules" false
    (Baselines.Scadet.detect spec.A.program res).Baselines.Scadet.detected

let test_scadet_misses_benign () =
  let rng = Sutil.Rng.create 72 in
  List.iter
    (fun (s : D.sample) ->
      let res = D.run s in
      check_bool (s.D.name ^ " benign") false
        (Baselines.Scadet.detect s.D.program res).Baselines.Scadet.detected)
    (D.benign_samples ~rng ~count:6)

let test_scadet_defeated_by_obfuscation () =
  let rng = Sutil.Rng.create 73 in
  let detected =
    List.filter
      (fun (s : D.sample) ->
        let res = D.run s in
        (Baselines.Scadet.detect s.D.program res).Baselines.Scadet.detected)
      (D.obfuscated_attacks ~rng ~count:4 L.Pp_family)
  in
  (* the polymorphic variants break the tight-loop rule *)
  check_int "obfuscated variants evade" 0 (List.length detected)

let test_scadet_rejects_called_gadgets () =
  (* Spectre-PP primes and probes, but its gadget calls abort the trace
     segmentation (the rules assume straight-line phases). *)
  let spec = A.spectre_pp () in
  let res = run_spec spec in
  check_bool "S-PP evades" false
    (Baselines.Scadet.detect spec.A.program res).Baselines.Scadet.detected

let test_scadet_classify_string () =
  let spec = A.prime_probe ~style:A.Iaik () in
  let res = run_spec spec in
  Alcotest.(check (option string)) "labels PP-F" (Some "PP-F")
    (Baselines.Scadet.classify spec.A.program res)

(* ---- Learning-based --------------------------------------------------------------- *)

let training_data () =
  let rng = Sutil.Rng.create 74 in
  let attack l n =
    List.map (fun s -> (D.run s, Experiments.Common.label_to_int l))
      (D.mutated_attacks ~rng ~count:n l)
  in
  let benign n =
    List.map (fun s -> (D.run s, Experiments.Common.label_to_int L.Benign))
      (D.benign_samples ~rng ~count:n)
  in
  attack L.Fr_family 6 @ attack L.Pp_family 6 @ benign 6

let test_nights_watch_learns () =
  let rng = Sutil.Rng.create 75 in
  let data = training_data () in
  List.iter
    (fun variant ->
      let m = Baselines.Nights_watch.train ~variant ~rng data in
      (* predictions on the training data should be mostly right *)
      let correct =
        List.length (List.filter (fun (res, l) -> Baselines.Nights_watch.predict m res = l) data)
      in
      check_bool
        (Baselines.Nights_watch.variant_name variant ^ " fits")
        true
        (correct * 10 >= List.length data * 7))
    [ Baselines.Nights_watch.Svm_nw; Baselines.Nights_watch.Lr_nw ]

let test_mlfm_learns () =
  let data = training_data () in
  let m = Baselines.Mlfm.train data in
  let correct =
    List.length (List.filter (fun (res, l) -> Baselines.Mlfm.predict m res = l) data)
  in
  check_bool "knn fits" true (correct * 10 >= List.length data * 7)

let test_nights_watch_generalizes_within_family () =
  let rng = Sutil.Rng.create 76 in
  let m =
    Baselines.Nights_watch.train ~variant:Baselines.Nights_watch.Svm_nw ~rng
      (training_data ())
  in
  let _, fresh_fr = run_of_label L.Fr_family in
  check_int "fresh FR classified FR"
    (Experiments.Common.label_to_int L.Fr_family)
    (Baselines.Nights_watch.predict m fresh_fr)

(* ---- Anomaly / Phased-Guard ------------------------------------------------------- *)

let test_anomaly_flags_attacks_not_benign () =
  let rng = Sutil.Rng.create 77 in
  let benign_results =
    List.map (fun s -> D.run s) (D.benign_samples ~rng ~count:10)
  in
  let model = Baselines.Anomaly.train benign_results in
  (* fresh benign samples mostly pass *)
  let fresh_benign =
    List.map (fun s -> D.run s) (D.benign_samples ~rng ~count:6)
  in
  let benign_flagged =
    List.length (List.filter (Baselines.Anomaly.is_attack model) fresh_benign)
  in
  (* the tight threshold needed to catch FR costs benign false positives —
     the paper's criticism of single-source anomaly detection *)
  check_bool "benign false positives bounded" true (benign_flagged <= 3);
  (* attacks stick out *)
  let attacks =
    List.map (fun s -> D.run s)
      (D.mutated_attacks ~rng ~count:3 L.Fr_family
      @ D.mutated_attacks ~rng ~count:3 L.Pp_family)
  in
  let caught =
    List.length (List.filter (Baselines.Anomaly.is_attack model) attacks)
  in
  check_bool "most attacks anomalous" true (caught >= 4)

let test_anomaly_requires_training () =
  check_bool "empty rejected" true
    (try ignore (Baselines.Anomaly.train []); false
     with Invalid_argument _ -> true)

let test_phased_guard_routes () =
  let rng = Sutil.Rng.create 78 in
  let benign = List.map (fun s -> D.run s) (D.benign_samples ~rng ~count:8) in
  let attacks =
    List.concat_map
      (fun l ->
        List.map
          (fun s -> (D.run s, Experiments.Common.label_to_int l))
          (D.mutated_attacks ~rng ~count:4 l))
      [ L.Fr_family; L.Pp_family ]
  in
  let pg =
    Baselines.Phased_guard.train ~rng ~benign ~attacks
      ~benign_label:(Experiments.Common.label_to_int L.Benign)
  in
  (* benign routed out at phase one most of the time *)
  let fresh_benign = List.map (fun s -> D.run s) (D.benign_samples ~rng ~count:4) in
  let benign_ok =
    List.length
      (List.filter
         (fun r ->
           Baselines.Phased_guard.predict pg r
           = Experiments.Common.label_to_int L.Benign)
         fresh_benign)
  in
  check_bool "benign mostly passes the gate" true (benign_ok >= 2);
  (* a fresh FR variant reaches phase two and gets an attack family *)
  let fr = D.run (List.hd (D.mutated_attacks ~rng ~count:1 L.Fr_family)) in
  let p = Baselines.Phased_guard.predict pg fr in
  check_bool "attack classified as an attack family" true
    (p <> Experiments.Common.label_to_int L.Benign)

let () =
  Alcotest.run "baselines"
    [
      ( "features",
        [
          Alcotest.test_case "dims" `Quick test_feature_dims;
          Alcotest.test_case "distinguish kinds" `Quick
            test_features_distinguish_attack_kinds;
          Alcotest.test_case "finite" `Quick test_features_finite;
        ] );
      ( "scadet",
        [
          Alcotest.test_case "detects PP" `Quick test_scadet_detects_prime_probe;
          Alcotest.test_case "misses FR" `Quick test_scadet_misses_flush_reload;
          Alcotest.test_case "misses benign" `Quick test_scadet_misses_benign;
          Alcotest.test_case "defeated by obfuscation" `Quick
            test_scadet_defeated_by_obfuscation;
          Alcotest.test_case "gadget calls abort rules" `Quick
            test_scadet_rejects_called_gadgets;
          Alcotest.test_case "classify string" `Quick test_scadet_classify_string;
        ] );
      ( "anomaly",
        [
          Alcotest.test_case "flags attacks not benign" `Slow
            test_anomaly_flags_attacks_not_benign;
          Alcotest.test_case "requires training" `Quick test_anomaly_requires_training;
          Alcotest.test_case "phased-guard routes" `Slow test_phased_guard_routes;
        ] );
      ( "learned",
        [
          Alcotest.test_case "nights-watch fits" `Slow test_nights_watch_learns;
          Alcotest.test_case "mlfm fits" `Slow test_mlfm_learns;
          Alcotest.test_case "generalizes within family" `Slow
            test_nights_watch_generalizes_within_family;
        ] );
    ]
