(* Verdict provenance and the structured event log: builder/record shape,
   the ensemble handoff, the bounded sinks, trace-id stamping, the JSON
   codec's exact round-trip (qcheck), and the core guarantee that turning
   capture on changes no verdict bit and no model byte. *)

module SG = Scaguard
module P = Scaguard.Provenance
module Log = Scaguard.Log

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Every test leaves the global switches off, the sinks empty and the
   stderr mirror restored, whatever happens. *)
let with_capture ?(prov = true) ?(log = false) f =
  let mirror = Log.mirror_level () in
  Log.set_mirror_level None;
  P.clear ();
  Log.clear ();
  P.set_capture prov;
  Log.set_capture log;
  Fun.protect
    ~finally:(fun () ->
      P.set_capture false;
      Log.set_capture false;
      P.set_capacity 16384;
      Log.set_capacity 8192;
      Log.set_level Log.Debug;
      Log.set_mirror_level mirror;
      SG.Obs.set_trace_id None;
      P.clear ();
      Log.clear ())
    f

(* -- builder and record shape ------------------------------------------------ *)

let test_builder_record () =
  with_capture (fun () ->
      SG.Obs.set_trace_id (Some "t-7");
      P.note_ensemble ~screen_z:3.5 ~tau:2.0 ~escalated:true;
      let b = P.start ~target:"fr-iaik" ~threshold:60.0 in
      P.set_path b P.Indexed;
      P.index_event b (P.Node_visited { bound = 12.5; members = 4 });
      P.index_event b (P.Subtree_pruned { bound = 80.0; members = 3 });
      P.candidate b ~poc:"fr" ~family:"FR-F" ~lb:10.0 (P.Scored 84.0);
      P.candidate b ~poc:"pp" ~family:"PP-F" ~lb:75.0 P.Pruned_lb;
      P.finish b
        ~best_matches:[ ("fr", "FR-F", 84.0) ]
        ~best_family:(Some "FR-F") ~best_score:84.0;
      match P.records () with
      | [ r ] ->
        check_string "target" "fr-iaik" r.P.target;
        check_bool "ambient trace id stamped" true (r.P.trace_id = Some "t-7");
        check_bool "path" true (r.P.path = P.Indexed);
        (match r.P.ensemble with
        | Some e ->
          check_bool "ensemble note folded in" true
            (e.P.screen_z = 3.5 && e.P.tau = 2.0 && e.P.escalated)
        | None -> Alcotest.fail "ensemble note lost");
        check_int "index events kept" 2 (List.length r.P.index_events);
        check_bool "index events in traversal order" true
          (match r.P.index_events with
          | P.Node_visited { members = 4; _ } :: P.Subtree_pruned _ :: [] ->
            true
          | _ -> false);
        (match r.P.candidates with
        | [ c1; c2 ] ->
          check_string "first candidate" "fr" c1.P.poc;
          check_bool "first outcome" true (c1.P.outcome = P.Scored 84.0);
          check_bool "second pruned with its bound" true
            (c2.P.lb = Some 75.0 && c2.P.outcome = P.Pruned_lb)
        | cs -> Alcotest.failf "expected 2 candidates, got %d" (List.length cs));
        check_bool "best family" true (r.P.best_family = Some "FR-F");
        check_bool "duration is non-negative" true
          (Int64.compare r.P.duration_ns 0L >= 0)
      | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs))

let test_fast_reject_record () =
  with_capture (fun () ->
      P.note_ensemble ~screen_z:0.4 ~tau:2.0 ~escalated:false;
      P.emit_fast_reject ~target:"benign-1" ~threshold:60.0;
      match P.records () with
      | [ r ] ->
        check_bool "path" true (r.P.path = P.Fast_rejected);
        check_bool "no candidates" true (r.P.candidates = []);
        check_bool "no matches, no family, score 0" true
          (r.P.best_matches = [] && r.P.best_family = None
         && r.P.best_score = 0.0);
        (match r.P.ensemble with
        | Some e -> check_bool "screen evidence kept" true (not e.P.escalated)
        | None -> Alcotest.fail "ensemble note lost")
      | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs))

(* The note is take-once: a second record on the same domain must not
   inherit the first record's screen evidence. *)
let test_ensemble_note_is_consumed () =
  with_capture (fun () ->
      P.note_ensemble ~screen_z:9.0 ~tau:2.0 ~escalated:false;
      P.emit_fast_reject ~target:"a" ~threshold:60.0;
      P.emit_fast_reject ~target:"b" ~threshold:60.0;
      match P.records () with
      | [ ra; rb ] ->
        check_bool "first record carries the note" true (ra.P.ensemble <> None);
        check_bool "second record does not" true (rb.P.ensemble = None);
        check_bool "seq orders emissions" true (ra.P.seq < rb.P.seq)
      | rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs))

let test_sink_bound () =
  with_capture (fun () ->
      P.set_capacity 4;
      for i = 1 to 6 do
        P.emit_fast_reject ~target:(Printf.sprintf "t%d" i) ~threshold:60.0
      done;
      check_int "sink is bounded" 4 (List.length (P.records ()));
      check_int "overflow is counted" 2 (P.dropped ());
      P.clear ();
      check_int "clear empties the sink" 0 (List.length (P.records ()));
      check_int "clear resets the drop count" 0 (P.dropped ()))

let test_with_capture_scoped () =
  with_capture ~prov:false (fun () ->
      (* a record emitted outside the scope stays in the outer sink *)
      P.emit_fast_reject ~target:"outside" ~threshold:60.0;
      let v, recs =
        P.with_capture (fun () ->
            check_bool "switch forced on inside" true (P.enabled ());
            P.emit_fast_reject ~target:"inside" ~threshold:60.0;
            42)
      in
      check_int "result threaded through" 42 v;
      (match recs with
      | [ r ] -> check_string "exactly the inner records" "inside" r.P.target
      | rs -> Alcotest.failf "expected 1 captured record, got %d" (List.length rs));
      check_bool "switch restored" false (P.enabled ());
      (match P.records () with
      | [ r ] -> check_string "outer sink restored" "outside" r.P.target
      | rs -> Alcotest.failf "expected 1 outer record, got %d" (List.length rs));
      (* the exception path restores too, re-raising the original *)
      (try
         ignore (P.with_capture (fun () -> failwith "boom"));
         Alcotest.fail "exception swallowed"
       with Failure m -> check_string "re-raised" "boom" m);
      check_bool "switch restored after raise" false (P.enabled ()))

(* -- JSON codec: qcheck exact round-trip ------------------------------------- *)

(* Strings exercise the writer's escapes; floats cover signed zeros,
   subnormal/huge magnitudes and every non-finite value (best_score
   additionally round-trips through its authoritative bits, so raw bit
   patterns go in there). *)
let gen_str =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'z'; 'Z'; '0'; ' '; '"'; '\\'; '\n'; '\t'; '/' ])
      (0 -- 10))

let gen_float =
  QCheck.Gen.(
    oneof
      [
        oneofl
          [
            0.0; -0.0; 1.0; -1.0; 0.6; 47.95; 1e-300; 1e300; infinity;
            neg_infinity; Float.nan;
          ];
        map (fun (a, b) -> float_of_int a /. (float_of_int b +. 0.5)) (pair int int);
      ])

let gen_bits_float =
  QCheck.Gen.(
    map
      (fun (hi, lo) ->
        Int64.float_of_bits
          (Int64.logor
             (Int64.shift_left (Int64.of_int hi) 32)
             (Int64.logand (Int64.of_int lo) 0xFFFFFFFFL)))
      (pair int int))

let gen_int64 =
  QCheck.Gen.(
    map
      (fun (hi, lo) ->
        Int64.logor
          (Int64.shift_left (Int64.of_int hi) 32)
          (Int64.logand (Int64.of_int lo) 0xFFFFFFFFL))
      (pair int int))

let gen_outcome =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> P.Scored s) gen_float;
        return P.Pruned_lb;
        return P.Abandoned;
        return P.Pruned;
      ])

let gen_candidate =
  QCheck.Gen.(
    map
      (fun ((poc, family), (lb, outcome)) -> { P.poc; family; lb; outcome })
      (pair (pair gen_str gen_str) (pair (opt gen_float) gen_outcome)))

let gen_index_event =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun bound members -> P.Node_visited { bound; members })
          gen_float small_nat;
        map2
          (fun bound members -> P.Subtree_pruned { bound; members })
          gen_float small_nat;
        map (fun bound -> P.Member_pruned { bound }) gen_float;
      ])

let gen_ensemble =
  QCheck.Gen.(
    map
      (fun ((screen_z, tau), escalated) -> { P.screen_z; tau; escalated })
      (pair (pair gen_float gen_float) bool))

let gen_record =
  QCheck.Gen.(
    map
      (fun ( ((seq, target), (trace_id, worker)),
             ((path, ensemble), (index_events, candidates)),
             ((best_matches, best_family), (best_score, (threshold, duration_ns)))
           ) ->
        {
          P.seq;
          target;
          trace_id;
          worker;
          path;
          ensemble;
          index_events;
          candidates;
          best_matches;
          best_family;
          best_score;
          threshold;
          duration_ns;
        })
      (triple
         (pair (pair small_nat gen_str) (pair (opt gen_str) small_nat))
         (pair
            (pair (oneofl [ P.Linear; P.Indexed; P.Fast_rejected ])
               (opt gen_ensemble))
            (pair (list_size (0 -- 5) gen_index_event)
               (list_size (0 -- 5) gen_candidate)))
         (pair
            (pair
               (list_size (0 -- 3) (triple gen_str gen_str gen_float))
               (opt gen_str))
            (pair
               (oneof [ gen_float; gen_bits_float ])
               (pair gen_float gen_int64)))))

let arb_record =
  QCheck.make ~print:(fun r -> SG.Json.to_string (P.to_json r)) gen_record

(* [compare] rather than [=]: a NaN must equal itself for the round-trip
   check (polymorphic compare gives floats a total order). *)
let records_equal a b = compare a b = 0

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"of_json (to_json r) = Ok r, also through JSONL"
    ~count:300 arb_record (fun r ->
      (match P.of_json (P.to_json r) with
      | Ok r' when records_equal r r' -> ()
      | Ok _ -> QCheck.Test.fail_report "decode (encode r) <> r"
      | Error m -> QCheck.Test.fail_reportf "decode failed: %s" m);
      (* through the serialized line, as the artifact on disk rides *)
      let line = String.trim (P.to_jsonl [ r ]) in
      check_bool "one line per record" false (String.contains line '\n');
      match SG.Json.parse line with
      | Error m -> QCheck.Test.fail_reportf "JSONL line does not parse: %s" m
      | Ok j -> (
        match P.of_json j with
        | Ok r' when records_equal r r' -> true
        | Ok _ -> QCheck.Test.fail_report "parse/decode round-trip <> r"
        | Error m -> QCheck.Test.fail_reportf "decode after parse failed: %s" m))

(* -- capture purity ----------------------------------------------------------- *)

let prov_jobs () =
  let job_of (spec : Workloads.Attacks.spec) =
    SG.Pipeline.job ?settings:spec.Workloads.Attacks.settings
      ~init:spec.Workloads.Attacks.init ?victim:spec.Workloads.Attacks.victim
      ~name:(Isa.Program.name spec.Workloads.Attacks.program)
      spec.Workloads.Attacks.program
  in
  [|
    job_of (Workloads.Attacks.flush_reload ~style:Workloads.Attacks.Iaik ());
    job_of (Workloads.Attacks.prime_probe ~style:Workloads.Attacks.Jzhang ());
    job_of (Workloads.Attacks.flush_flush ());
  |]

let prov_repo () =
  let rng = Sutil.Rng.create 77 in
  Experiments.Common.repository ~rng
    [ Workloads.Label.Fr_family; Workloads.Label.Pp_family ]

(* QCheck property: any combination of provenance/log capture and engine
   knobs leaves models byte-identical and verdicts bit-identical to the
   everything-off baseline. *)
let prop_capture_is_pure =
  QCheck.Test.make
    ~name:"provenance/log capture leaves models and verdicts identical"
    ~count:8
    QCheck.(triple bool bool (pair bool (int_range 1 4)))
    (fun (prov, log, (prune, domains)) ->
      let jobs = prov_jobs () in
      let repo = prov_repo () in
      let baseline_models, baseline_verdicts =
        with_capture ~prov:false ~log:false (fun () ->
            let models = SG.Pipeline.build_models_batch ~domains jobs in
            let verdicts, _ =
              SG.Engine.classify_batch ~prune ~domains repo models
            in
            (models, verdicts))
      in
      let models, verdicts =
        with_capture ~prov ~log (fun () ->
            let models = SG.Pipeline.build_models_batch ~domains jobs in
            let verdicts, _ =
              SG.Engine.classify_batch ~prune ~domains repo models
            in
            (models, verdicts))
      in
      let bytes = Array.map SG.Persist.model_to_string in
      if bytes models <> bytes baseline_models then
        QCheck.Test.fail_report "models changed under capture";
      if verdicts <> baseline_verdicts then
        QCheck.Test.fail_report "verdicts changed under capture";
      true)

(* [Service.explain] is [screen_prepared] plus records — same bits. *)
let test_service_explain () =
  let jobs = prov_jobs () in
  let repo = prov_repo () in
  let prepared = SG.Detector.prepare repo in
  let config = SG.Config.default in
  let _, base_verdicts, _ =
    Result.get_ok (SG.Service.screen_prepared config prepared jobs)
  in
  let _, verdicts, _, records =
    Result.get_ok (SG.Service.explain config prepared jobs)
  in
  check_bool "verdicts bit-identical to screen_prepared" true
    (verdicts = base_verdicts);
  check_int "one record per target" (Array.length jobs) (List.length records);
  check_bool "capture switch left off" false (P.enabled ());
  List.iter
    (fun (r : P.t) ->
      check_bool
        (Printf.sprintf "record %S names a job" r.P.target)
        true
        (Array.exists (fun j -> j.SG.Pipeline.job_name = r.P.target) jobs);
      (* the record's score agrees bit-for-bit with the verdict *)
      let v =
        match
          Array.find_index (fun j -> j.SG.Pipeline.job_name = r.P.target) jobs
        with
        | Some i -> base_verdicts.(i)
        | None -> Alcotest.failf "no verdict for %s" r.P.target
      in
      check_bool "score bits agree with the verdict" true
        (Int64.bits_of_float v.SG.Detector.best_score
        = Int64.bits_of_float r.P.best_score))
    records

(* -- the event log ------------------------------------------------------------ *)

let test_log_levels_and_shape () =
  with_capture ~prov:false ~log:true (fun () ->
      Log.set_level Log.Info;
      Log.debug "t.debug" "below the capture level";
      Log.info "t.info" ~fields:[ ("n", SG.Json.Num 3.0) ] "hello %d" 7;
      Log.error "t.error" "boom";
      match Log.events () with
      | [ a; b ] ->
        check_string "debug was filtered, info first" "t.info" a.Log.event;
        check_string "printf message" "hello 7" a.Log.message;
        check_bool "typed fields kept" true
          (a.Log.fields = [ ("n", SG.Json.Num 3.0) ]);
        check_bool "error level" true (b.Log.level = Log.Error);
        check_bool "seq orders emissions" true (a.Log.seq < b.Log.seq);
        check_bool "timestamps are monotone" true
          (Int64.compare a.Log.ts_ns b.Log.ts_ns <= 0)
      | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs))

let test_log_trace_stamping () =
  with_capture ~prov:false ~log:true (fun () ->
      SG.Obs.set_trace_id (Some "amb-1");
      Log.info "t.ambient" "x";
      Log.event ~trace_id:"explicit" Log.Warn "t.explicit" "y";
      SG.Obs.set_trace_id None;
      Log.info "t.bare" "z";
      match Log.events () with
      | [ a; b; c ] ->
        check_bool "ambient trace id stamped by default" true
          (a.Log.trace_id = Some "amb-1");
        check_bool "explicit trace id wins" true
          (b.Log.trace_id = Some "explicit");
        check_bool "no ambient, no stamp" true (c.Log.trace_id = None)
      | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs))

let test_log_jsonl_bounded () =
  with_capture ~prov:false ~log:true (fun () ->
      Log.set_capacity 2;
      for i = 1 to 4 do
        Log.info "t.flood" "event %d" i
      done;
      let evs = Log.events () in
      check_int "buffer is bounded" 2 (List.length evs);
      check_int "overflow counted" 2 (Log.dropped ());
      let lines =
        List.filter
          (fun l -> l <> "")
          (String.split_on_char '\n' (Log.to_jsonl evs))
      in
      check_int "2 events + the dropped marker" 3 (List.length lines);
      List.iter
        (fun l ->
          match SG.Json.parse l with
          | Ok (SG.Json.Obj _) -> ()
          | Ok _ -> Alcotest.failf "line is not an object: %s" l
          | Error m -> Alcotest.failf "line does not parse (%s): %s" m l)
        lines;
      match SG.Json.parse (List.nth lines 2) with
      | Ok marker ->
        check_bool "marker names the loss" true
          (SG.Json.member "event" marker = Some (SG.Json.Str "log.dropped"))
      | Error m -> Alcotest.failf "marker does not parse: %s" m)

let test_log_err_structured () =
  with_capture ~prov:false ~log:true (fun () ->
      let e = SG.Err.Io { path = "/tmp/x"; msg = "permission denied" } in
      Log.err "t.err" e;
      match Log.events () with
      | [ ev ] ->
        check_bool "error level" true (ev.Log.level = Log.Error);
        check_string "mirror-compatible message"
          (Printf.sprintf "scaguard: %s" (SG.Err.to_string e))
          ev.Log.message;
        check_bool "kind field" true
          (List.assoc_opt "kind" ev.Log.fields = Some (SG.Json.Str "io"));
        check_bool "path field" true
          (List.assoc_opt "path" ev.Log.fields = Some (SG.Json.Str "/tmp/x"))
      | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs))

let () =
  Alcotest.run "provenance"
    [
      ( "records",
        [
          Alcotest.test_case "builder record" `Quick test_builder_record;
          Alcotest.test_case "fast reject" `Quick test_fast_reject_record;
          Alcotest.test_case "ensemble note is take-once" `Quick
            test_ensemble_note_is_consumed;
          Alcotest.test_case "bounded sink" `Quick test_sink_bound;
          Alcotest.test_case "with_capture scoping" `Quick
            test_with_capture_scoped;
        ] );
      ( "codec",
        [ QCheck_alcotest.to_alcotest ~long:false prop_codec_roundtrip ] );
      ( "purity",
        [
          QCheck_alcotest.to_alcotest ~long:false prop_capture_is_pure;
          Alcotest.test_case "service explain" `Quick test_service_explain;
        ] );
      ( "log",
        [
          Alcotest.test_case "levels and shape" `Quick
            test_log_levels_and_shape;
          Alcotest.test_case "trace stamping" `Quick test_log_trace_stamping;
          Alcotest.test_case "jsonl + bounded buffer" `Quick
            test_log_jsonl_bounded;
          Alcotest.test_case "structured err" `Quick test_log_err_structured;
        ] );
    ]
