(* Tests for the SCAGuard core: attack-relevant identification, Algorithm 1,
   CST measurement, distances, DTW similarity, and end-to-end detection. *)

module A = Workloads.Attacks
module D = Workloads.Dataset
module L = Workloads.Label
module SG = Scaguard

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let analyze_sample (s : D.sample) =
  let res = D.run s in
  SG.Pipeline.analyze ~name:s.D.name ~program:s.D.program res

let fr_analysis =
  lazy (analyze_sample (D.of_spec (A.flush_reload ~style:A.Iaik ())))

let model_of_spec spec = (analyze_sample (D.of_spec spec)).SG.Pipeline.model

(* ---- Relevant ------------------------------------------------------------- *)

let test_identification_finds_ground_truth () =
  let a = Lazy.force fr_analysis in
  let truth = SG.Relevant.ground_truth_blocks a.SG.Pipeline.cfg in
  check_bool "has ground truth" true (truth <> []);
  List.iter
    (fun b ->
      check_bool
        (Printf.sprintf "truth BB%d identified" b)
        true
        (List.mem b a.SG.Pipeline.info.SG.Relevant.relevant))
    truth

let test_identification_prunes () =
  let a = Lazy.force fr_analysis in
  let info = a.SG.Pipeline.info in
  let n = Cfg.Graph.n_blocks a.SG.Pipeline.cfg in
  check_bool "step1 below total" true (List.length info.SG.Relevant.step1 < n);
  check_bool "step2 below step1" true
    (List.length info.SG.Relevant.relevant <= List.length info.SG.Relevant.step1);
  check_bool "step2 subset of step1" true
    (List.for_all
       (fun b -> List.mem b info.SG.Relevant.step1)
       info.SG.Relevant.relevant)

let test_identification_hpc_values () =
  let a = Lazy.force fr_analysis in
  let info = a.SG.Pipeline.info in
  (* every relevant block has a non-zero HPC value (step 1's criterion) *)
  List.iter
    (fun b ->
      check_bool "nonzero hpc" true (info.SG.Relevant.hpc_of_block.(b) > 0.0))
    info.SG.Relevant.relevant

let test_identification_first_times () =
  let a = Lazy.force fr_analysis in
  let info = a.SG.Pipeline.info in
  List.iter
    (fun b ->
      check_bool "executed blocks have timestamps" true
        (info.SG.Relevant.first_time_of_block.(b) <> None))
    info.SG.Relevant.relevant

let test_accuracy_helper () =
  check_float "full" 1.0 (SG.Relevant.accuracy ~identified:[ 1; 2; 3 ] ~truth:[ 1; 2 ]);
  check_float "half" 0.5 (SG.Relevant.accuracy ~identified:[ 1 ] ~truth:[ 1; 2 ]);
  check_float "empty truth" 1.0 (SG.Relevant.accuracy ~identified:[] ~truth:[])

(* ---- Attack_graph ------------------------------------------------------------ *)

let test_attack_graph_covers_relevant () =
  let a = Lazy.force fr_analysis in
  let ag = a.SG.Pipeline.attack_graph in
  List.iter
    (fun b -> check_bool "relevant in graph" true (List.mem b ag.SG.Attack_graph.nodes))
    a.SG.Pipeline.info.SG.Relevant.relevant

let test_attack_graph_restores_paths () =
  let a = Lazy.force fr_analysis in
  let ag = a.SG.Pipeline.attack_graph in
  (* the flush and reload blocks are connected through restored interiors *)
  check_bool "interior blocks restored" true
    (List.length ag.SG.Attack_graph.nodes
    > List.length a.SG.Pipeline.info.SG.Relevant.relevant);
  check_bool "edges restored" true (ag.SG.Attack_graph.edges <> []);
  (* spanning forest has fewer edges than nodes *)
  check_bool "forest bound" true
    (List.length ag.SG.Attack_graph.tree_edges
    < max 1 (List.length a.SG.Pipeline.info.SG.Relevant.relevant))

let test_attack_graph_empty_for_no_relevant () =
  let cfg =
    Cfg.Graph.of_program
      (Isa.Program.assemble ~name:"nop" [ Isa.Program.Ins Isa.Instr.Halt ])
  in
  let ag = SG.Attack_graph.build cfg ~hpc:[| 0.0 |] ~relevant:[] in
  check_bool "empty" true (ag.SG.Attack_graph.nodes = [])

(* ---- Cst ----------------------------------------------------------------------- *)

let test_cst_starts_full () =
  let cst = SG.Cst.measure [] in
  check_float "IO=1" 1.0 cst.SG.Cst.before.Cache.State.io;
  check_float "AO=0" 0.0 cst.SG.Cst.before.Cache.State.ao;
  check_float "no accesses, no change" 0.0 (SG.Cst.change_magnitude cst)

let test_cst_loads_shift_occupancy () =
  let accesses = List.init 30 (fun i -> (i * 64, Hpc.Collector.Load)) in
  let cst = SG.Cst.measure accesses in
  check_bool "AO grew" true (cst.SG.Cst.after.Cache.State.ao > 0.2);
  check_bool "IO shrank" true (cst.SG.Cst.after.Cache.State.io < 0.8);
  check_bool "magnitude meaningful" true (SG.Cst.change_magnitude cst > 0.1)

let test_cst_flushes_reduce_io () =
  let accesses = List.init 10 (fun i -> (i * 64, Hpc.Collector.Flush)) in
  let cst = SG.Cst.measure accesses in
  check_float "AO untouched" 0.0 cst.SG.Cst.after.Cache.State.ao;
  check_bool "IO reduced" true (cst.SG.Cst.after.Cache.State.io < 1.0)

let test_cst_distance () =
  let heavy = SG.Cst.measure (List.init 100 (fun i -> (i * 64, Hpc.Collector.Load))) in
  let light = SG.Cst.measure [ (0, Hpc.Collector.Load) ] in
  check_float "self distance" 0.0 (SG.Cst.distance heavy heavy);
  check_bool "heavy vs light large" true (SG.Cst.distance heavy light > 0.3)

(* ---- Distance -------------------------------------------------------------------- *)

let entry_of_instrs ?(accesses = []) instrs =
  SG.Model.make_entry ~block:0 ~instrs
    ~normalized:(Isa.Normalize.sequence instrs)
    ~cst:(SG.Cst.measure accesses) ~first_time:0

let test_entry_distance_bounds () =
  let e1 = entry_of_instrs [ Isa.Instr.Nop; Isa.Instr.Rdtsc ] in
  let e2 =
    entry_of_instrs
      [ Isa.Instr.Clflush (Isa.Operand.abs 0); Isa.Instr.Mfence ]
      ~accesses:(List.init 50 (fun i -> (i * 64, Hpc.Collector.Load)))
  in
  let d = SG.Distance.entry_distance e1 e2 in
  check_bool "in [0,1]" true (d >= 0.0 && d <= 1.0);
  check_float "identity" 0.0 (SG.Distance.entry_distance e1 e1)

let test_entry_distance_alpha () =
  let e1 = entry_of_instrs [ Isa.Instr.Nop ] in
  let e2 =
    entry_of_instrs [ Isa.Instr.Rdtsc ]
      ~accesses:(List.init 50 (fun i -> (i * 64, Hpc.Collector.Load)))
  in
  let syntax_only = SG.Distance.entry_distance ~alpha:1.0 e1 e2 in
  let cst_only = SG.Distance.entry_distance ~alpha:0.0 e1 e2 in
  check_float "syntax only = IS" 1.0 syntax_only;
  check_bool "cst only matches csp term" true (cst_only > 0.0 && cst_only < 1.0)

(* ---- Dtw ---------------------------------------------------------------------------- *)

let cost a b = abs_float (a -. b)

let test_dtw_known_values () =
  check_float "identical" 0.0 (SG.Dtw.distance ~cost [| 1.0; 2.0 |] [| 1.0; 2.0 |]);
  check_float "both empty" 0.0 (SG.Dtw.distance ~cost [||] [||]);
  check_bool "one empty" true (SG.Dtw.distance ~cost [| 1.0 |] [||] = infinity);
  (* classic alignment: [1;2;3] vs [1;2;2;3] aligns the repeated 2 at cost 0 *)
  check_float "warp absorbs repeats" 0.0
    (SG.Dtw.distance ~cost [| 1.0; 2.0; 3.0 |] [| 1.0; 2.0; 2.0; 3.0 |]);
  check_float "substitution cost" 1.0
    (SG.Dtw.distance ~cost [| 1.0; 2.0 |] [| 1.0; 3.0 |])

let test_dtw_normalized_bounds () =
  let a = [| 0.0; 1.0; 0.0 |] and b = [| 1.0; 0.0; 1.0; 0.0 |] in
  let cost a b = if a = b then 0.0 else 1.0 in
  let d = SG.Dtw.normalized_distance ~cost a b in
  check_bool "in [0,1]" true (d >= 0.0 && d <= 1.0)

let prop_dtw_symmetric =
  QCheck.Test.make ~name:"dtw symmetric" ~count:100
    QCheck.(pair (list (float_range 0.0 5.0)) (list (float_range 0.0 5.0)))
    (fun (a, b) ->
      let a = Array.of_list a and b = Array.of_list b in
      let d1 = SG.Dtw.distance ~cost a b in
      let d2 = SG.Dtw.distance ~cost b a in
      d1 = d2 || abs_float (d1 -. d2) < 1e-9)

let prop_dtw_identity =
  QCheck.Test.make ~name:"dtw self distance zero" ~count:100
    QCheck.(list (float_range 0.0 5.0))
    (fun a ->
      let a = Array.of_list a in
      SG.Dtw.distance ~cost a a = 0.0)

let test_similarity_conversion () =
  check_float "zero distance" 1.0 (SG.Dtw.similarity_of_distance 0.0);
  check_float "distance one" 0.5 (SG.Dtw.similarity_of_distance 1.0);
  check_float "infinite" 0.0 (SG.Dtw.similarity_of_distance infinity)

(* Exhaustive reference DTW for tiny inputs: enumerate all monotone warping
   paths recursively. *)
let rec brute_dtw cost a b i j =
  let n = Array.length a and m = Array.length b in
  if i = n - 1 && j = m - 1 then cost a.(i) b.(j)
  else begin
    let c = cost a.(i) b.(j) in
    let candidates =
      (if i + 1 < n then [ brute_dtw cost a b (i + 1) j ] else [])
      @ (if j + 1 < m then [ brute_dtw cost a b i (j + 1) ] else [])
      @ (if i + 1 < n && j + 1 < m then [ brute_dtw cost a b (i + 1) (j + 1) ] else [])
    in
    c +. List.fold_left min infinity candidates
  end

let prop_dtw_matches_brute_force =
  QCheck.Test.make ~name:"dtw equals exhaustive search on small inputs" ~count:200
    QCheck.(pair
              (list_of_size (QCheck.Gen.int_range 1 5) (float_range 0.0 3.0))
              (list_of_size (QCheck.Gen.int_range 1 5) (float_range 0.0 3.0)))
    (fun (a, b) ->
      let a = Array.of_list a and b = Array.of_list b in
      let dp = SG.Dtw.distance ~cost a b in
      let brute = brute_dtw cost a b 0 0 in
      abs_float (dp -. brute) < 1e-9)

(* ---- Model ----------------------------------------------------------------------------- *)

let test_model_ordered_by_time () =
  let a = Lazy.force fr_analysis in
  let times =
    List.map (fun e -> e.SG.Model.first_time) a.SG.Pipeline.model.SG.Model.entries
  in
  check_bool "non-decreasing" true (List.sort compare times = times);
  check_bool "non-empty" false (SG.Model.is_empty a.SG.Pipeline.model)

let test_model_self_similarity () =
  let m = (Lazy.force fr_analysis).SG.Pipeline.model in
  check_float "identical model" 1.0 (SG.Dtw.compare_models m m)

(* ---- Detector (end to end) ---------------------------------------------------------------- *)

let repo =
  lazy
    [
      { SG.Detector.family = "FR-F"; model = model_of_spec (A.flush_reload ~style:A.Iaik ()) };
      { SG.Detector.family = "PP-F"; model = model_of_spec (A.prime_probe ~style:A.Iaik ()) };
    ]

let test_detector_classifies_variant () =
  let target = model_of_spec (A.flush_reload ~style:A.Mastik ()) in
  let v = SG.Detector.classify (Lazy.force repo) target in
  Alcotest.(check (option string)) "classified FR" (Some "FR-F")
    v.SG.Detector.best_family;
  check_bool "is attack" true (SG.Detector.is_attack v)

let test_detector_scores_sorted () =
  let target = model_of_spec (A.evict_reload ()) in
  let all = SG.Detector.score_all (Lazy.force repo) target in
  let scores = List.map (fun (_, _, s) -> s) all in
  check_bool "descending" true (List.sort (fun a b -> compare b a) scores = scores);
  check_int "two pocs" 2 (List.length scores);
  (* the verdict's best ties agree with the head of the full matrix *)
  let v = SG.Detector.classify (Lazy.force repo) target in
  check_float "best_score = head of score_all"
    (match scores with s :: _ -> s | [] -> nan)
    v.SG.Detector.best_score;
  check_bool "best_matches is the head of score_all" true
    (match (all, v.SG.Detector.best_matches) with
    | a :: _, b :: _ -> a = b
    | _ -> false);
  List.iter
    (fun (_, _, s) -> check_float "every match at best_score" v.SG.Detector.best_score s)
    v.SG.Detector.best_matches

let test_detector_rejects_benign () =
  let benign =
    List.find
      (fun (s : D.sample) -> true && s.D.name <> "")
      (D.benign_samples ~rng:(Sutil.Rng.create 61) ~count:1)
  in
  let m = (analyze_sample benign).SG.Pipeline.model in
  let v = SG.Detector.classify (Lazy.force repo) m in
  check_bool "below threshold" true
    (v.SG.Detector.best_score < SG.Detector.default_threshold);
  check_bool "not attack" false (SG.Detector.is_attack v)

let test_detector_empty_repository () =
  let v = SG.Detector.classify [] (Lazy.force fr_analysis).SG.Pipeline.model in
  check_bool "benign verdict" false (SG.Detector.is_attack v);
  check_float "zero score" 0.0 v.SG.Detector.best_score

let test_detector_threshold_effect () =
  let target = model_of_spec (A.flush_reload ~style:A.Nepoche ()) in
  let strict = SG.Detector.classify ~threshold:0.999 (Lazy.force repo) target in
  let lax = SG.Detector.classify ~threshold:0.01 (Lazy.force repo) target in
  check_bool "strict rejects" false (SG.Detector.is_attack strict);
  check_bool "lax accepts" true (SG.Detector.is_attack lax)

let test_meltdown_detected_cross_family () =
  (* a transient attack family absent from the repository is still flagged
     via its Flush+Reload recovery behavior (zero-day scenario) *)
  let m = model_of_spec (A.meltdown_fr ()) in
  let v = SG.Detector.classify (Lazy.force repo) m in
  check_bool "flagged" true (SG.Detector.is_attack v)

let test_scenario_ordering () =
  (* the Table V shape: same-implementation family closest, benign far *)
  let fr = model_of_spec (A.flush_reload ~style:A.Iaik ()) in
  let fr' = model_of_spec (A.flush_reload ~style:A.Mastik ()) in
  let pp = model_of_spec (A.prime_probe ~style:A.Iaik ()) in
  let s1 = SG.Dtw.compare_models fr fr' in
  let s3 = SG.Dtw.compare_models fr pp in
  check_bool "S1 > S3" true (s1 > s3);
  check_bool "S1 high" true (s1 > 0.8);
  check_bool "S3 above benign band" true (s3 > 0.5)

let test_empty_model_pipeline () =
  (* a program with no cache-relevant behavior yields an empty model that
     classifies as benign against any repository *)
  let prog =
    Isa.Program.assemble ~name:"alu-only"
      (List.map (fun i -> Isa.Program.Ins i)
         [ Isa.Instr.Mov (Isa.Operand.reg Isa.Reg.RAX, Isa.Operand.imm 1);
           Isa.Instr.Add (Isa.Operand.reg Isa.Reg.RAX, Isa.Operand.imm 2);
           Isa.Instr.Halt ])
  in
  let a = SG.Pipeline.run_and_analyze prog in
  check_bool "empty model" true (SG.Model.is_empty a.SG.Pipeline.model);
  let v = SG.Detector.classify (Lazy.force repo) a.SG.Pipeline.model in
  check_bool "benign verdict" false (SG.Detector.is_attack v)

let test_threshold_monotonicity () =
  (* a stricter threshold never flags more programs *)
  let rng = Sutil.Rng.create 777 in
  let targets =
    List.map (fun s -> (analyze_sample s).SG.Pipeline.model)
      (D.mutated_attacks ~rng ~count:2 L.Fr_family
      @ D.benign_samples ~rng ~count:2)
  in
  let flagged t =
    List.length
      (List.filter
         (fun m -> SG.Detector.is_attack (SG.Detector.classify ~threshold:t (Lazy.force repo) m))
         targets)
  in
  let counts = List.map flagged [ 0.1; 0.3; 0.5; 0.7; 0.9 ] in
  check_bool "monotonically non-increasing" true
    (List.sort (fun a b -> compare b a) counts = counts)

(* ---- Cluster -------------------------------------------------------------------------- *)

let test_clustering_recovers_families () =
  let labelled =
    List.map
      (fun (s : A.spec) -> (model_of_spec s, s.A.label))
      (A.base_pocs ())
  in
  let clusters =
    SG.Cluster.by_similarity ~threshold:0.85 (List.map fst labelled)
  in
  check_int "four families discovered" 4 (List.length clusters);
  (* every cluster is label-pure *)
  List.iter
    (fun cluster ->
      let labels =
        List.sort_uniq compare
          (List.map
             (fun m ->
               L.to_string (List.assq m labelled))
             cluster)
      in
      check_int "label-pure cluster" 1 (List.length labels))
    clusters

let test_pairwise_count () =
  let ms =
    List.filteri (fun i _ -> i < 4)
      (List.map (fun (s : A.spec) -> model_of_spec s) (A.base_pocs ()))
  in
  check_int "n*(n-1)/2 pairs" 6 (List.length (SG.Cluster.pairwise ms))

let test_curated_repository_detects () =
  (* build the repository from mutated samples (no hand-picked PoCs), then
     classify fresh variants with it *)
  let rng = Sutil.Rng.create 321 in
  let model_of_sample (s : D.sample) = (analyze_sample s).SG.Pipeline.model in
  let samples =
    List.concat_map
      (fun l ->
        List.map
          (fun s -> (L.to_string l, model_of_sample s))
          (D.mutated_attacks ~rng ~count:3 l))
      [ L.Fr_family; L.Pp_family ]
  in
  let repo = SG.Cluster.curate_repository ~threshold:0.85 samples in
  check_bool "repository is compact" true
    (List.length repo <= List.length samples);
  check_bool "has both families" true
    (List.exists (fun p -> p.SG.Detector.family = "FR-F") repo
    && List.exists (fun p -> p.SG.Detector.family = "PP-F") repo);
  (* fresh variants classify correctly through the curated repository *)
  let fresh l = model_of_sample (List.hd (D.mutated_attacks ~rng ~count:1 l)) in
  let verdict l = SG.Detector.classify repo (fresh l) in
  Alcotest.(check (option string)) "fresh FR" (Some "FR-F")
    (verdict L.Fr_family).SG.Detector.best_family;
  Alcotest.(check (option string)) "fresh PP" (Some "PP-F")
    (verdict L.Pp_family).SG.Detector.best_family

let test_medoid_is_most_central () =
  let ms =
    List.map (fun (s : A.spec) -> model_of_spec s)
      [ A.flush_reload ~style:A.Iaik (); A.flush_reload ~style:A.Mastik ();
        A.flush_reload ~style:A.Nepoche () ]
  in
  let m = SG.Cluster.medoid ms in
  check_bool "medoid from the cluster" true (List.memq m ms)

(* ---- The Limitation scenario (section V) ---------------------------------------------- *)

let test_guarded_attack_limitation () =
  let base = A.flush_reload ~style:A.Iaik () in
  let guarded = A.with_input_guard base in
  let model_with init =
    let res = Cpu.Exec.run ~init ?victim:guarded.A.victim guarded.A.program in
    (SG.Pipeline.analyze ~name:guarded.A.name ~program:guarded.A.program res)
      .SG.Pipeline.model
  in
  let repository = Lazy.force repo in
  (* untriggered: the attack body never runs; dynamic modeling misses it *)
  let untriggered = model_with guarded.A.init in
  let v1 = SG.Detector.classify repository untriggered in
  check_bool "untriggered run evades detection (the paper's limitation)"
    false (SG.Detector.is_attack v1);
  (* triggered: the same binary is detected *)
  let triggered = model_with (A.triggering_init guarded.A.init) in
  let v2 = SG.Detector.classify repository triggered in
  check_bool "triggered run is detected" true (SG.Detector.is_attack v2);
  (match v2.SG.Detector.best_family with
  | Some f -> Alcotest.(check string) "right family" "FR-F" f
  | None -> Alcotest.fail "expected a family")

(* ---- Dtw banding --------------------------------------------------------------------- *)

let test_band_bailout () =
  (* lengths differing by more than the band: no in-band path, no DP work *)
  check_bool "bail out to infinity" true
    (SG.Dtw.distance ~band:1 ~cost [| 1.0 |] [| 1.0; 1.0; 1.0; 1.0; 1.0 |]
    = infinity);
  check_float "normalized bail-out is 1" 1.0
    (SG.Dtw.normalized_distance ~band:1 ~cost [| 1.0 |]
       [| 1.0; 1.0; 1.0; 1.0; 1.0 |])

let prop_band_full_width_exact =
  QCheck.Test.make ~name:"full-width band equals unbanded dtw" ~count:200
    QCheck.(pair (list (float_range 0.0 5.0)) (list (float_range 0.0 5.0)))
    (fun (a, b) ->
      let a = Array.of_list a and b = Array.of_list b in
      let band = max (Array.length a) (Array.length b) in
      SG.Dtw.distance ~cost a b = SG.Dtw.distance ~band ~cost a b
      && SG.Dtw.normalized_distance ~cost a b
         = SG.Dtw.normalized_distance ~band ~cost a b)

let prop_band_never_below_exact =
  QCheck.Test.make ~name:"banded dtw is an upper bound" ~count:200
    QCheck.(pair (list (float_range 0.0 5.0)) (list (float_range 0.0 5.0)))
    (fun (a, b) ->
      let a = Array.of_list a and b = Array.of_list b in
      SG.Dtw.distance ~band:1 ~cost a b >= SG.Dtw.distance ~cost a b)

let prop_workspace_identical =
  QCheck.Test.make ~name:"workspace reuse never changes dtw results" ~count:100
    QCheck.(pair (list (float_range 0.0 5.0)) (list (float_range 0.0 5.0)))
    (fun (a, b) ->
      let ws = SG.Dtw.workspace () in
      let a = Array.of_list a and b = Array.of_list b in
      (* two ws calls so the second sees dirty buffers *)
      ignore (SG.Dtw.distance ~ws ~cost b a);
      SG.Dtw.distance ~ws ~cost a b = SG.Dtw.distance ~cost a b)

(* ---- Empty-model regression (bug: empty vs empty scored 1.0) -------------------------- *)

let empty_model = SG.Model.make ~name:"empty" []

let test_empty_model_similarity_zero () =
  check_float "empty vs empty" 0.0 (SG.Dtw.compare_models empty_model empty_model);
  let fr = (Lazy.force fr_analysis).SG.Pipeline.model in
  check_float "empty vs nonempty" 0.0 (SG.Dtw.compare_models empty_model fr);
  check_float "nonempty vs empty" 0.0 (SG.Dtw.compare_models fr empty_model);
  check_float "raw mapping too" 0.0 (SG.Dtw.compare_models_raw empty_model empty_model)

let test_empty_target_never_attack () =
  (* regression: a repository containing an empty PoC model must not classify
     an empty target as a perfect-score attack *)
  let repo =
    { SG.Detector.family = "XX"; model = empty_model } :: Lazy.force repo
  in
  let v = SG.Detector.classify repo empty_model in
  check_bool "not an attack" false (SG.Detector.is_attack v);
  check_float "score 0" 0.0 v.SG.Detector.best_score

(* ---- Tie-break regression (bug: ties resolved by repository order) -------------------- *)

let test_classify_tie_break_deterministic () =
  let m = (Lazy.force fr_analysis).SG.Pipeline.model in
  let pz = { SG.Detector.family = "ZZ"; model = m } in
  let pa = { SG.Detector.family = "AA"; model = m } in
  let v1 = SG.Detector.classify [ pz; pa ] m in
  let v2 = SG.Detector.classify [ pa; pz ] m in
  (* both PoCs score 1.0; the verdict must not depend on assembly order *)
  Alcotest.(check (option string)) "first order" (Some "AA") v1.SG.Detector.best_family;
  Alcotest.(check (option string)) "swapped order" (Some "AA") v2.SG.Detector.best_family;
  check_bool "identical match lists" true
    (v1.SG.Detector.best_matches = v2.SG.Detector.best_matches);
  (* both tied PoCs are reported, family-ordered *)
  Alcotest.(check (list string)) "both ties present, deterministic order"
    [ "AA"; "ZZ" ]
    (List.map (fun (_, f, _) -> f) v1.SG.Detector.best_matches)

(* ---- Batch engine --------------------------------------------------------------------- *)

let test_batch_matches_sequential () =
  let repository = Lazy.force repo in
  let targets =
    [|
      model_of_spec (A.flush_reload ~style:A.Mastik ());
      model_of_spec (A.evict_reload ());
      model_of_spec (A.prime_probe ~style:A.Jzhang ());
      empty_model;
    |]
  in
  let seq = Array.map (SG.Detector.classify repository) targets in
  let par = SG.Detector.classify_batch ~domains:4 repository targets in
  check_bool "Detector.classify_batch byte-identical" true (par = seq);
  let par2, stats = SG.Engine.classify_batch ~domains:4 repository targets in
  check_bool "Engine.classify_batch byte-identical" true (par2 = seq);
  check_int "pairs = targets x pocs"
    (Array.length targets * List.length repository)
    stats.SG.Engine.pairs;
  check_int "every target classified once"
    (Array.length targets)
    (Array.fold_left ( + ) 0 stats.SG.Engine.per_worker);
  check_bool "cells counted" true (stats.SG.Engine.cells > 0)

(* random CST-BBS models for the property tests *)
let model_gen =
  let open QCheck.Gen in
  let unit_float = map (fun i -> float_of_int i /. 1000.0) (int_range 0 1000) in
  let token =
    (* includes the writer's worst cases: empty tokens, embedded newlines,
       backslashes, and the literal spelling of the empty-token escape *)
    oneofl
      [
        "load m"; "store m"; "clflush m"; "mov r r"; "rdtsc"; "mfence";
        ""; "new\nline"; "back\\slash"; "\\_";
      ]
  in
  let cst =
    let* ao = unit_float in
    let* io = map (fun f -> f *. (1.0 -. ao)) unit_float in
    let* ao' = unit_float in
    let* io' = map (fun f -> f *. (1.0 -. ao')) unit_float in
    return
      {
        SG.Cst.before = Cache.State.make ~ao ~io;
        after = Cache.State.make ~ao:ao' ~io:io';
      }
  in
  let entry =
    let* block = int_range 0 50 in
    let* first_time = oneof [ int_range 0 10_000; return max_int ] in
    let* cst = cst in
    (* sizes include 1: single-token entries round-trip too *)
    let* normalized = list_size (int_range 1 5) token in
    return
      (SG.Model.make_entry ~block ~instrs:[]
         ~normalized:(Array.of_list normalized) ~cst ~first_time)
  in
  let* name = oneofl [ "m"; "poc-a"; "fr mastik"; "x_1"; "evil\nname"; "" ] in
  let* entries = list_size (int_range 0 5) entry in
  return (SG.Model.make ~name entries)

let model_arb = QCheck.make ~print:(fun m -> SG.Persist.model_to_string m) model_gen

let entry_equal (a : SG.Model.entry) (b : SG.Model.entry) =
  a.SG.Model.block = b.SG.Model.block
  && a.SG.Model.first_time = b.SG.Model.first_time
  && a.SG.Model.normalized = b.SG.Model.normalized
  && a.SG.Model.cst = b.SG.Model.cst

let prop_persist_roundtrip =
  QCheck.Test.make ~name:"persist round-trips arbitrary models" ~count:200
    model_arb
    (fun m ->
      let m' = SG.Persist.model_of_string (SG.Persist.model_to_string m) in
      m.SG.Model.name = m'.SG.Model.name
      && List.length m.SG.Model.entries = List.length m'.SG.Model.entries
      && List.for_all2 entry_equal m.SG.Model.entries m'.SG.Model.entries)

let prop_persist_repository_roundtrip =
  QCheck.Test.make ~name:"persist round-trips arbitrary repositories" ~count:50
    QCheck.(
      list_of_size (Gen.int_range 0 4)
        (pair (oneofl [ "FR-F"; "PP-F"; "fam x"; "fam\nnl" ]) model_arb))
    (fun pocs ->
      let repository =
        List.map (fun (family, model) -> { SG.Detector.family; model }) pocs
      in
      let loaded =
        SG.Persist.repository_of_string
          (SG.Persist.repository_to_string repository)
      in
      List.length repository = List.length loaded
      && List.for_all2
           (fun (a : SG.Detector.poc) (b : SG.Detector.poc) ->
             a.SG.Detector.family = b.SG.Detector.family
             && a.SG.Detector.model.SG.Model.name
                = b.SG.Detector.model.SG.Model.name
             && List.for_all2 entry_equal a.SG.Detector.model.SG.Model.entries
                  b.SG.Detector.model.SG.Model.entries)
           repository loaded)

let prop_batch_equals_sequential =
  QCheck.Test.make ~name:"classify_batch equals sequential classify" ~count:60
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 4)
           (pair (oneofl [ "FR-F"; "PP-F"; "S-FR" ]) model_arb))
        (list_of_size (Gen.int_range 0 6) model_arb))
    (fun (pocs, targets) ->
      let repository =
        List.map (fun (family, model) -> { SG.Detector.family; model }) pocs
      in
      let targets = Array.of_list targets in
      let seq = Array.map (SG.Detector.classify repository) targets in
      let par = SG.Detector.classify_batch ~domains:3 repository targets in
      let eng, _ = SG.Engine.classify_batch ~domains:3 repository targets in
      par = seq && eng = seq)

(* ---- Pruning cascade (exactness invariants) -------------------------------------------- *)

(* alphas on the sound [0,1] grid, including both pure-term endpoints *)
let alpha_gen = QCheck.Gen.map (fun i -> float_of_int i /. 10.0) (QCheck.Gen.int_range 0 10)
let alpha_arb = QCheck.make ~print:string_of_float alpha_gen

let prop_lower_bound_sound =
  QCheck.Test.make ~name:"every lower bound <= true normalized dtw distance"
    ~count:300
    QCheck.(triple model_arb model_arb alpha_arb)
    (fun (m1, m2, alpha) ->
      let lb = SG.Dtw.lower_bound ~alpha (SG.Dtw.summarize m1) (SG.Dtw.summarize m2) in
      if SG.Model.is_empty m1 || SG.Model.is_empty m2 then lb = 0.0
      else
        let dnorm = 1.0 -. SG.Dtw.compare_models ~alpha m1 m2 in
        (* 1e-9 is the pruning margin: a bound may exceed the true distance
           by float rounding at most, which the margin absorbs *)
        lb <= dnorm +. 1e-9)

let prop_cutoff_abandon_sound =
  QCheck.Test.make
    ~name:"?cutoff dp returns infinity only when distance exceeds cutoff"
    ~count:300
    QCheck.(
      triple (list (float_range 0.0 5.0)) (list (float_range 0.0 5.0))
        (float_range 0.0 6.0))
    (fun (a, b, cutoff) ->
      let a = Array.of_list a and b = Array.of_list b in
      let exact = SG.Dtw.distance ~cost a b in
      let capped = SG.Dtw.distance ~cutoff ~cost a b in
      if capped = infinity then exact = infinity || exact > cutoff
      else capped = exact)

let repo_arb =
  QCheck.(
    list_of_size (Gen.int_range 0 5)
      (pair (oneofl [ "FR-F"; "PP-F"; "S-FR"; "EV-F" ]) model_arb))

let band_arb =
  QCheck.(option (int_range 0 6))

let prop_classify_prune_identical =
  QCheck.Test.make
    ~name:"classify with pruning equals pruning disabled, verdict for verdict"
    ~count:120
    QCheck.(pair (pair repo_arb (list_of_size (Gen.int_range 0 5) model_arb))
              (pair alpha_arb band_arb))
    (fun ((pocs, targets), (alpha, band)) ->
      let repository =
        List.map (fun (family, model) -> { SG.Detector.family; model }) pocs
      in
      List.for_all
        (fun target ->
          SG.Detector.classify ~alpha ?band ~prune:true repository target
          = SG.Detector.classify ~alpha ?band ~prune:false repository target)
        targets)

let prop_engine_prune_identical =
  QCheck.Test.make
    ~name:"engine batch with pruning equals pruning disabled" ~count:40
    QCheck.(pair repo_arb (list_of_size (Gen.int_range 0 5) model_arb))
    (fun (pocs, targets) ->
      let repository =
        List.map (fun (family, model) -> { SG.Detector.family; model }) pocs
      in
      let targets = Array.of_list targets in
      let on, son =
        SG.Engine.classify_batch ~domains:3 ~prune:true repository targets
      in
      let off, soff =
        SG.Engine.classify_batch ~domains:3 ~prune:false repository targets
      in
      on = off
      (* pairs counts considered pairs, pruned or not *)
      && son.SG.Engine.pairs = soff.SG.Engine.pairs
      && soff.SG.Engine.pairs_pruned_lb = 0
      && soff.SG.Engine.pairs_abandoned = 0
      && soff.SG.Engine.cells_saved = 0)

let test_classify_prepared_reuse () =
  let repository = Lazy.force repo in
  let prep = SG.Detector.prepare repository in
  check_int "prepared size" (List.length repository)
    (SG.Detector.prepared_size prep);
  List.iter
    (fun spec ->
      let target = model_of_spec spec in
      check_bool "prepared classify = classify" true
        (SG.Detector.classify_prepared prep target
        = SG.Detector.classify repository target))
    [ A.flush_reload ~style:A.Mastik (); A.evict_reload () ]

(* ---- Repository index (Vpindex) -------------------------------------------------------- *)

let index_spec_gen =
  QCheck.Gen.(
    let* leaf = int_range 2 6 in
    let* pivots = int_range 1 4 in
    let* seed = int_range 0 10_000 in
    return { SG.Vpindex.mode = SG.Vpindex.Force; leaf; pivots; seed })

let index_spec_arb =
  QCheck.make
    ~print:(fun (s : SG.Vpindex.spec) ->
      Printf.sprintf "leaf=%d pivots=%d seed=%d" s.SG.Vpindex.leaf
        s.SG.Vpindex.pivots s.SG.Vpindex.seed)
    index_spec_gen

(* small repositories exercise the flat cluster table; the >64-model ones
   exercise the seeded vantage-point tree *)
let indexed_repo_arb ~lo ~hi =
  QCheck.(
    list_of_size
      (Gen.int_range lo hi)
      (pair (oneofl [ "FR-F"; "PP-F"; "S-FR"; "EV-F" ]) model_arb))

let prop_indexed_classify_identical ~name ~count ~lo ~hi =
  QCheck.Test.make ~name ~count
    QCheck.(
      pair
        (pair (indexed_repo_arb ~lo ~hi) (list_of_size (Gen.int_range 1 3) model_arb))
        (pair index_spec_arb (pair alpha_arb band_arb)))
    (fun ((pocs, targets), (spec, (alpha, band))) ->
      let repository =
        List.map (fun (family, model) -> { SG.Detector.family; model }) pocs
      in
      let linear = SG.Detector.prepare repository in
      let indexed = SG.Detector.prepare ~index:spec repository in
      List.for_all
        (fun target ->
          SG.Detector.classify_prepared ~alpha ?band indexed target
          = SG.Detector.classify_prepared ~alpha ?band linear target
          && SG.Detector.score_all_prepared ~alpha ?band indexed target
             = SG.Detector.score_all_prepared ~alpha ?band linear target)
        targets)

let prop_index_flat_identical =
  prop_indexed_classify_identical
    ~name:"indexed classify/score_all equal linear (flat cluster table)"
    ~count:60 ~lo:0 ~hi:5

let prop_index_tree_identical =
  prop_indexed_classify_identical
    ~name:"indexed classify/score_all equal linear (vp tree)" ~count:10 ~lo:66
    ~hi:80

let prop_index_search_sound =
  QCheck.Test.make
    ~name:"index search skips a member only when its distance exceeds dmax"
    ~count:40
    QCheck.(
      pair
        (pair (list_of_size (Gen.int_range 0 70) model_arb) model_arb)
        (pair index_spec_arb (float_range 0.0 1.1)))
    (fun ((models, target), (spec, dmax)) ->
      let summaries =
        Array.of_list (List.map SG.Dtw.summarize models)
      in
      match SG.Vpindex.build spec summaries with
      | None -> QCheck.Test.fail_report "Force build returned no index"
      | Some ix ->
        let st = SG.Dtw.summarize target in
        let visited = Hashtbl.create 64 in
        let ixc = SG.Vpindex.counters () in
        SG.Vpindex.search ~ixc ix st ~dmax:(fun () -> dmax)
          ~visit:(fun i -> Hashtbl.replace visited i ());
        (* accounting: every member is either visited or counted as pruned *)
        Hashtbl.length visited + ixc.SG.Vpindex.pairs_pruned_index
        = Array.length summaries
        && Array.for_all
             (fun i ->
               Hashtbl.mem visited i
               ||
               (* skipped: the exact score proves the skip was sound *)
               match SG.Dtw.compare_summaries st summaries.(i) with
               | None -> false
               | Some score -> 1.0 -. score > dmax -. 1e-6)
             (Array.init (Array.length summaries) Fun.id))

let prop_index_build_deterministic =
  QCheck.Test.make
    ~name:"index construction is deterministic, byte for byte" ~count:15
    QCheck.(pair (list_of_size (Gen.int_range 0 80) model_arb) index_spec_arb)
    (fun (models, spec) ->
      let summaries =
        Array.of_list (List.map SG.Dtw.summarize models)
      in
      match (SG.Vpindex.build spec summaries, SG.Vpindex.build spec summaries)
      with
      | Some a, Some b -> SG.Vpindex.to_bytes a = SG.Vpindex.to_bytes b
      | _ -> false)

let prop_index_bytes_roundtrip =
  QCheck.Test.make ~name:"index serialization round-trips byte-identically"
    ~count:20
    QCheck.(pair (list_of_size (Gen.int_range 0 80) model_arb) index_spec_arb)
    (fun (models, spec) ->
      let summaries =
        Array.of_list (List.map SG.Dtw.summarize models)
      in
      match SG.Vpindex.build spec summaries with
      | None -> false
      | Some ix -> (
        let bytes = SG.Vpindex.to_bytes ix in
        match SG.Vpindex.of_bytes_result bytes with
        | Error e -> QCheck.Test.fail_report (SG.Err.to_string e)
        | Ok ix' -> SG.Vpindex.to_bytes ix' = bytes))

let prop_persist_index_section =
  QCheck.Test.make
    ~name:"scagbin index section round-trips; absent section loads as None"
    ~count:30
    QCheck.(pair repo_arb index_spec_arb)
    (fun (pocs, spec) ->
      let repository =
        List.map (fun (family, model) -> { SG.Detector.family; model }) pocs
      in
      let prep = SG.Detector.prepare ~index:spec repository in
      let ix = SG.Detector.prepared_index prep in
      (match
         SG.Persist.repository_of_bytes_indexed_result
           (SG.Persist.repository_to_bytes repository)
       with
      | Ok (_, None) -> true
      | _ -> QCheck.Test.fail_report "index appeared out of nowhere")
      &&
      match
        SG.Persist.repository_of_bytes_indexed_result
          (SG.Persist.repository_to_bytes ?index:ix repository)
      with
      | Error e -> QCheck.Test.fail_report (SG.Err.to_string e)
      | Ok (pairs, loaded) -> (
        List.length pairs = List.length repository
        &&
        match (ix, loaded) with
        | Some ix, Some loaded ->
          SG.Vpindex.to_bytes loaded = SG.Vpindex.to_bytes ix
        | None, None -> true
        | _ -> false))

let test_index_auto_thresholds () =
  let repository = Lazy.force repo in
  let prep =
    SG.Detector.prepare ~index:SG.Vpindex.default_spec repository
  in
  (* Auto skips small repositories entirely *)
  check_bool "auto skips small repos" true
    (SG.Detector.prepared_index prep = None);
  let spec = { SG.Vpindex.default_spec with SG.Vpindex.mode = SG.Vpindex.Force } in
  match SG.Detector.prepared_index (SG.Detector.prepare ~index:spec repository) with
  | None -> Alcotest.fail "Force built no index"
  | Some ix ->
    check_int "index covers the repository" (List.length repository)
      (SG.Vpindex.size ix)

(* A genuine version-1 image: the v2 encodings with and without an index
   agree byte for byte up to the presence byte (the header, string table and
   model index precede it and do not depend on the index), so the presence
   byte sits exactly at their first divergence.  Dropping it and stamping
   version 1 reconstructs the pre-index wire format, which the reader must
   still accept — old images keep loading. *)
let test_persist_v1_image_loads () =
  let repository = Lazy.force repo in
  let spec =
    { SG.Vpindex.default_spec with SG.Vpindex.mode = SG.Vpindex.Force }
  in
  let ix =
    SG.Detector.prepared_index (SG.Detector.prepare ~index:spec repository)
  in
  check_bool "index built" true (ix <> None);
  let plain = SG.Persist.repository_to_bytes repository in
  let indexed = SG.Persist.repository_to_bytes ?index:ix repository in
  let diverge = ref 0 in
  while
    !diverge < String.length plain
    && !diverge < String.length indexed
    && plain.[!diverge] = indexed.[!diverge]
  do
    incr diverge
  done;
  let off = !diverge in
  Alcotest.(check char) "presence byte off" '\x00' plain.[off];
  Alcotest.(check char) "presence byte on" '\x01' indexed.[off];
  let v1 =
    Bytes.of_string
      (String.sub plain 0 off
      ^ String.sub plain (off + 1) (String.length plain - off - 1))
  in
  Bytes.set v1 7 '\x01';
  match SG.Persist.repository_of_bytes_indexed_result (Bytes.to_string v1) with
  | Error e -> Alcotest.fail ("v1 image rejected: " ^ SG.Err.to_string e)
  | Ok (pairs, loaded) ->
    check_bool "v1 image has no index" true (loaded = None);
    Alcotest.(check string) "v1 image round-trips"
      (SG.Persist.repository_to_string repository)
      (SG.Persist.repository_to_string (List.map fst pairs))

(* ---- Engine stats conventions (bug: nan/infinity on zero-duration batches) ------------- *)

let test_engine_zero_wall_stats () =
  let s =
    {
      SG.Engine.domains = 4;
      targets = 0;
      pairs = 0;
      cells = 0;
      pairs_pruned_lb = 0;
      pairs_abandoned = 0;
      cells_saved = 0;
      lb_evals = 0;
      nodes_visited = 0;
      pairs_pruned_index = 0;
      wall_s = 0.0;
      cpu_s = 0.0;
      per_worker = [| 0; 0; 0; 0 |];
    }
  in
  check_float "utilization is 0, not nan" 0.0 (SG.Engine.utilization s);
  check_float "throughput is 0, not infinity" 0.0 (SG.Engine.throughput s);
  (* and pp_stats renders finite numbers *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let rendered = Format.asprintf "%a" SG.Engine.pp_stats s in
  check_bool "no nan in output" true (not (contains rendered "nan"));
  check_bool "no inf in output" true (not (contains rendered "inf"))

(* ---- Persist strictness / atomicity regressions ---------------------------------------- *)

let test_persist_rejects_malformed_cst () =
  (* regression: `cst 1 2 junk 3 4` used to be silently accepted because
     malformed tokens were filtered out instead of rejected *)
  let model_with cst_line =
    Printf.sprintf "cstbbs 1\nname x\nentry 0 0\n%s\ntokens 0\nend\n" cst_line
  in
  let rejects s =
    try
      ignore (SG.Persist.model_of_string (model_with s));
      false
    with Failure _ -> true
  in
  check_bool "junk token among four floats" true (rejects "cst 1 2 junk 3 4");
  check_bool "too few floats" true (rejects "cst 1 2 3");
  check_bool "trailing junk" true (rejects "cst 0 1 0 1 nonsense");
  check_bool "well-formed still accepted" true (not (rejects "cst 0 1 0 1"))

let test_persist_save_atomic () =
  let repository = Lazy.force repo in
  let dir = Filename.temp_file "scaguard" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "r.repo" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      (* overwriting an existing repository goes through rename, and no temp
         files are left behind *)
      SG.Persist.save_repository ~path repository;
      SG.Persist.save_repository ~path repository;
      let loaded = SG.Persist.load_repository ~path in
      check_int "poc count" (List.length repository) (List.length loaded);
      let leftovers =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun f -> f <> "r.repo")
      in
      Alcotest.(check (list string)) "no temp files left" [] leftovers)

(* ---- Persist ------------------------------------------------------------------------ *)

let test_persist_model_roundtrip () =
  let m = (Lazy.force fr_analysis).SG.Pipeline.model in
  let m' = SG.Persist.model_of_string (SG.Persist.model_to_string m) in
  Alcotest.(check string) "name" m.SG.Model.name m'.SG.Model.name;
  check_int "entries" (SG.Model.length m) (SG.Model.length m');
  check_float "similarity 1 after roundtrip" 1.0 (SG.Dtw.compare_models m m');
  List.iter2
    (fun a b ->
      check_int "block" a.SG.Model.block b.SG.Model.block;
      check_int "time" a.SG.Model.first_time b.SG.Model.first_time;
      Alcotest.(check (array string)) "tokens" a.SG.Model.normalized b.SG.Model.normalized)
    m.SG.Model.entries m'.SG.Model.entries

let test_persist_repository_roundtrip () =
  let repo = Lazy.force repo in
  let path = Filename.temp_file "scaguard" ".repo" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      SG.Persist.save_repository ~path repo;
      let loaded = SG.Persist.load_repository ~path in
      check_int "poc count" (List.length repo) (List.length loaded);
      (* classification through the loaded repository is identical *)
      let target = model_of_spec (A.evict_reload ()) in
      let v1 = SG.Detector.classify repo target in
      let v2 = SG.Detector.classify loaded target in
      Alcotest.(check (option string)) "same family"
        v1.SG.Detector.best_family v2.SG.Detector.best_family;
      check_float "same score" v1.SG.Detector.best_score v2.SG.Detector.best_score)

let test_persist_rejects_garbage () =
  check_bool "bad magic" true
    (try ignore (SG.Persist.model_of_string "nonsense"); false
     with Failure _ -> true);
  check_bool "bad repo magic" true
    (try ignore (SG.Persist.repository_of_string "cstbbs 1"); false
     with Failure _ -> true);
  check_bool "truncated" true
    (try ignore (SG.Persist.model_of_string "cstbbs 1\nname x\nentry 0 0"); false
     with Failure _ -> true)

(* ---- Binary format (SCAGBIN) --------------------------------------------------------- *)

let model_bytes = SG.Persist.model_to_string

(* byte-identity through the canonical text encoding is the round-trip
   criterion everywhere below: it covers names, tokens, blocks, timings and
   the exact CST float bits in one comparison *)
let prop_persist_binary_roundtrip =
  QCheck.Test.make
    ~name:"binary model encoding round-trips byte-identically" ~count:200
    model_arb
    (fun m ->
      match SG.Persist.model_of_bytes_result (SG.Persist.model_to_bytes m) with
      | Error e -> QCheck.Test.fail_report (SG.Err.to_string e)
      | Ok m' ->
        SG.Persist.model_to_string m' = SG.Persist.model_to_string m)

let prop_persist_binary_repository_roundtrip =
  QCheck.Test.make
    ~name:"binary repository image round-trips and classifies identically"
    ~count:50
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 4)
           (pair (oneofl [ "FR-F"; "PP-F"; "fam x"; "fam\nnl" ]) model_arb))
        model_arb)
    (fun (pocs, target) ->
      let repository =
        List.map (fun (family, model) -> { SG.Detector.family; model }) pocs
      in
      let bytes = SG.Persist.repository_to_bytes repository in
      match SG.Persist.repository_of_bytes_result bytes with
      | Error e -> QCheck.Test.fail_report (SG.Err.to_string e)
      | Ok loaded ->
        SG.Persist.repository_to_string loaded
        = SG.Persist.repository_to_string repository
        &&
        (* the inline summaries feed prepare_summarized: verdicts must be
           bit-identical to classifying the original repository *)
        (match SG.Persist.repository_of_bytes_prepared_result bytes with
        | Error e -> QCheck.Test.fail_report (SG.Err.to_string e)
        | Ok pairs ->
          let prep = SG.Detector.prepare_summarized (Array.of_list pairs) in
          SG.Detector.classify_prepared prep target
          = SG.Detector.classify repository target))

let test_persist_newline_tokens () =
  (* regression: tokens/names/families containing newlines, backslashes or
     nothing at all used to hit a [failwith] in the text writers *)
  let entry =
    SG.Model.make_entry ~block:3 ~instrs:[]
      ~normalized:[| "new\nline"; "back\\slash"; ""; "\\_"; "plain" |]
      ~cst:
        {
          SG.Cst.before = Cache.State.make ~ao:0.5 ~io:0.25;
          after = Cache.State.make ~ao:0.125 ~io:0.5;
        }
      ~first_time:7
  in
  let m = SG.Model.make ~name:"evil\nname" [ entry ] in
  let m' = SG.Persist.model_of_string (SG.Persist.model_to_string m) in
  Alcotest.(check string) "name survives" m.SG.Model.name m'.SG.Model.name;
  List.iter2
    (fun a b ->
      Alcotest.(check (array string)) "tokens survive"
        a.SG.Model.normalized b.SG.Model.normalized)
    m.SG.Model.entries m'.SG.Model.entries;
  let repository = [ { SG.Detector.family = "fam\nnl"; model = m } ] in
  let text_rt =
    SG.Persist.repository_of_string
      (SG.Persist.repository_to_string repository)
  in
  Alcotest.(check string) "family survives" "fam\nnl"
    (List.hd text_rt).SG.Detector.family;
  (* binary agrees *)
  (match
     SG.Persist.repository_of_bytes_result
       (SG.Persist.repository_to_bytes repository)
   with
  | Error e -> Alcotest.fail (SG.Err.to_string e)
  | Ok bin_rt ->
    Alcotest.(check string) "binary = text"
      (SG.Persist.repository_to_string text_rt)
      (SG.Persist.repository_to_string bin_rt));
  (* and through a file, in both formats *)
  List.iter
    (fun save ->
      let path = Filename.temp_file "scaguard" ".repo" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          (match save ~path repository with
          | Ok () -> ()
          | Error e -> Alcotest.fail (SG.Err.to_string e));
          let loaded = SG.Persist.load_repository ~path in
          Alcotest.(check string) "file roundtrip"
            (SG.Persist.repository_to_string repository)
            (SG.Persist.repository_to_string loaded)))
    [
      SG.Persist.save_repository_result;
      (fun ~path repo -> SG.Persist.save_repository_bin_result ~path repo);
    ]

let err_msg_contains e sub =
  let s = SG.Err.to_string e in
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_persist_binary_errors () =
  let m = (Lazy.force fr_analysis).SG.Pipeline.model in
  let bytes = SG.Persist.model_to_bytes m in
  (* truncation at every boundary-ish point is a Parse error, never a raise *)
  List.iter
    (fun len ->
      match
        SG.Persist.model_of_bytes_result (String.sub bytes 0 len)
      with
      | Error (SG.Err.Parse { line = None; _ }) -> ()
      | Error e ->
        Alcotest.fail ("unexpected error kind: " ^ SG.Err.to_string e)
      | Ok _ -> Alcotest.fail "truncated bytes accepted")
    [ 0; 3; 8; 9; String.length bytes - 1 ];
  (* version byte (offset 7, right after the 7-byte magic) *)
  let wrong_version = Bytes.of_string bytes in
  Bytes.set wrong_version 7 '\xff';
  (match
     SG.Persist.model_of_bytes_result (Bytes.to_string wrong_version)
   with
  | Error e ->
    check_bool "mentions version" true (err_msg_contains e "version")
  | Ok _ -> Alcotest.fail "wrong version accepted");
  (* a repository image is not a model file: the kind byte is checked *)
  let repo_bytes =
    SG.Persist.repository_to_bytes [ { SG.Detector.family = "F"; model = m } ]
  in
  (match SG.Persist.model_of_bytes_result repo_bytes with
  | Error (SG.Err.Parse _) -> ()
  | Error e -> Alcotest.fail ("unexpected error kind: " ^ SG.Err.to_string e)
  | Ok _ -> Alcotest.fail "repository bytes accepted as a model");
  (* errors from file loads carry the file name *)
  let path = Filename.temp_file "scaguard" ".cstbbs" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc (String.sub bytes 0 9);
      close_out oc;
      match SG.Persist.load_model_result ~path with
      | Error (SG.Err.Parse { file = Some f; _ }) ->
        Alcotest.(check string) "file context" path f
      | Error e ->
        Alcotest.fail ("error lost file context: " ^ SG.Err.to_string e)
      | Ok _ -> Alcotest.fail "truncated file accepted")

let test_persist_image_lazy () =
  let repository = Lazy.force repo in
  let path = Filename.temp_file "scaguard" ".repo" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match SG.Persist.save_repository_bin_result ~path repository with
      | Ok () -> ()
      | Error e -> Alcotest.fail (SG.Err.to_string e));
      match SG.Persist.open_image_result ~path with
      | Error e -> Alcotest.fail (SG.Err.to_string e)
      | Ok image ->
        check_int "index size" (List.length repository)
          (SG.Persist.image_size image);
        let pocs = SG.Persist.image_pocs image in
        List.iteri
          (fun i (poc : SG.Detector.poc) ->
            let name, family = pocs.(i) in
            Alcotest.(check string) "index name order"
              poc.SG.Detector.model.SG.Model.name name;
            Alcotest.(check string) "index family order"
              poc.SG.Detector.family family)
          repository;
        (* each lazily-loaded model is byte-identical to the original *)
        let pairs =
          List.map
            (fun (poc : SG.Detector.poc) ->
              match
                SG.Persist.image_load_prepared_result image
                  ~name:poc.SG.Detector.model.SG.Model.name
              with
              | Error e -> Alcotest.fail (SG.Err.to_string e)
              | Ok ((loaded, _) as pair) ->
                Alcotest.(check string) "lazy load byte-identical"
                  (model_bytes poc.SG.Detector.model)
                  (model_bytes loaded.SG.Detector.model);
                pair)
            repository
        in
        (* verdicts through the lazily-assembled prepared repository are
           bit-identical to the eager path *)
        let prep = SG.Detector.prepare_summarized (Array.of_list pairs) in
        List.iter
          (fun spec ->
            let target = model_of_spec spec in
            check_bool "lazy verdict = eager verdict" true
              (SG.Detector.classify_prepared prep target
              = SG.Detector.classify repository target))
          [ A.flush_reload ~style:A.Mastik (); A.evict_reload () ];
        (match SG.Persist.image_load_result image ~name:"no such model" with
        | Error (SG.Err.Parse _) -> ()
        | Error e ->
          Alcotest.fail ("unexpected error kind: " ^ SG.Err.to_string e)
        | Ok _ -> Alcotest.fail "absent name loaded"));
  (* a text repository has no index: open_image must refuse, not raise *)
  let text_path = Filename.temp_file "scaguard" ".repo" in
  Fun.protect
    ~finally:(fun () -> Sys.remove text_path)
    (fun () ->
      SG.Persist.save_repository ~path:text_path repository;
      match SG.Persist.open_image_result ~path:text_path with
      | Error (SG.Err.Parse _) -> ()
      | Error e -> Alcotest.fail ("unexpected error kind: " ^ SG.Err.to_string e)
      | Ok _ -> Alcotest.fail "text file opened as image")

let test_persist_save_io_error () =
  let repository = Lazy.force repo in
  let path = "/nonexistent-scaguard-dir/r.repo" in
  List.iter
    (fun save ->
      match save ~path repository with
      | Error (SG.Err.Io { path = p; _ }) ->
        Alcotest.(check string) "error names the path" path p
      | Error e -> Alcotest.fail ("unexpected error kind: " ^ SG.Err.to_string e)
      | Ok () -> Alcotest.fail "save into missing directory succeeded")
    [
      SG.Persist.save_repository_result;
      (fun ~path repo -> SG.Persist.save_repository_bin_result ~path repo);
    ]

(* ---- Batch model building + model cache ---------------------------------------------- *)

let batch_samples () =
  List.map D.of_spec
    [
      A.flush_reload ~style:A.Iaik ();
      A.prime_probe ~style:A.Jzhang ();
      A.evict_reload ();
    ]

let job_of_sample (s : D.sample) =
  SG.Pipeline.job ?settings:s.D.settings ~init:s.D.init ?victim:s.D.victim
    ~name:s.D.name s.D.program

let test_cst_measurer_reuse () =
  let m = SG.Cst.measurer () in
  let acc1 = List.init 30 (fun i -> (i * 64, Hpc.Collector.Load)) in
  let acc2 = List.init 10 (fun i -> (i * 128, Hpc.Collector.Flush)) in
  (* a reused (dirty) measurer must reproduce the fresh-simulator result *)
  check_bool "first" true (SG.Cst.measure ~measurer:m acc1 = SG.Cst.measure acc1);
  check_bool "after dirty state" true
    (SG.Cst.measure ~measurer:m acc2 = SG.Cst.measure acc2);
  check_bool "empty short-circuit" true (SG.Cst.measure ~measurer:m [] = SG.Cst.measure [])

let test_entries_array_memoized () =
  let m = (Lazy.force fr_analysis).SG.Pipeline.model in
  check_bool "one array, shared" true
    (SG.Model.entries_array m == SG.Model.entries_array m)

let test_analyze_batch_matches_sequential () =
  let samples = batch_samples () in
  (* over pre-collected executions (analysis on one exec is deterministic) *)
  let inputs =
    Array.of_list
      (List.map (fun (s : D.sample) -> (s.D.name, s.D.program, D.run s)) samples)
  in
  let batch = SG.Pipeline.analyze_batch ~domains:4 inputs in
  Array.iteri
    (fun i (a : SG.Pipeline.analysis) ->
      let name, program, exec = inputs.(i) in
      let seq = SG.Pipeline.analyze ~name ~program exec in
      Alcotest.(check string) "analyze_batch model"
        (model_bytes seq.SG.Pipeline.model)
        (model_bytes a.SG.Pipeline.model))
    batch;
  (* executing inside the batch too *)
  let jobs = Array.of_list (List.map job_of_sample samples) in
  let batch2 = SG.Pipeline.run_and_analyze_batch ~domains:4 jobs in
  List.iteri
    (fun i (s : D.sample) ->
      let seq = analyze_sample s in
      Alcotest.(check string) "run_and_analyze_batch model"
        (model_bytes seq.SG.Pipeline.model)
        (model_bytes batch2.(i).SG.Pipeline.model))
    samples;
  let models = SG.Pipeline.build_models_batch ~domains:2 jobs in
  Array.iteri
    (fun i m ->
      Alcotest.(check string) "build_models_batch model"
        (model_bytes batch2.(i).SG.Pipeline.model)
        (model_bytes m))
    models

let with_temp_cache f =
  let dir = Filename.temp_file "scaguard" ".cache" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun x ->
            try Sys.remove (Filename.concat dir x) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end)
    (fun () -> f (SG.Model_cache.create ~dir))

let test_model_cache_hit_bit_identical () =
  with_temp_cache (fun cache ->
      let fr = D.of_spec (A.flush_reload ~style:A.Iaik ()) in
      let fresh = (Lazy.force fr_analysis).SG.Pipeline.model in
      let key = SG.Model_cache.key ~name:fr.D.name fr.D.program in
      check_bool "initially absent" true (SG.Model_cache.find cache ~key = None);
      check_int "miss counted" 1 (SG.Model_cache.misses cache);
      SG.Model_cache.store cache ~key fresh;
      match SG.Model_cache.find cache ~key with
      | None -> Alcotest.fail "stored model not found"
      | Some cached ->
        check_int "hit counted" 1 (SG.Model_cache.hits cache);
        Alcotest.(check string) "bytes identical" (model_bytes fresh)
          (model_bytes cached);
        (* the property detection relies on: scoring through the cached model
           is bit-identical to scoring through the freshly built one *)
        let probe = (List.nth (Lazy.force repo) 1).SG.Detector.model in
        check_bool "probe score bit-identical" true
          (SG.Dtw.compare_models cached probe
          = SG.Dtw.compare_models fresh probe);
        check_float "self similarity" 1.0 (SG.Dtw.compare_models cached fresh))

let prop_cache_hit_scores_identical =
  QCheck.Test.make ~name:"cache hit scores bit-identical to fresh model"
    ~count:40
    QCheck.(pair model_arb model_arb)
    (fun (m, probe) ->
      with_temp_cache (fun cache ->
          SG.Model_cache.store cache ~key:"k" m;
          match SG.Model_cache.find cache ~key:"k" with
          | None -> false
          | Some m' ->
            SG.Dtw.compare_models m' probe = SG.Dtw.compare_models m probe))

let test_model_cache_stale_fallback () =
  with_temp_cache (fun cache ->
      let key = "deadbeef" in
      let path =
        Filename.concat (SG.Model_cache.dir cache) (key ^ ".cstbbs")
      in
      let oc = open_out path in
      output_string oc "cstbbs 1\nname x\nentry garbage\n";
      close_out oc;
      check_bool "corrupt entry rejected" true
        (SG.Model_cache.find cache ~key = None);
      check_int "stale counted" 1 (SG.Model_cache.stale cache);
      check_bool "corrupt file deleted" false (Sys.file_exists path);
      (* find_or_build falls back to the builder and re-stores *)
      let fresh = (Lazy.force fr_analysis).SG.Pipeline.model in
      let built = SG.Model_cache.find_or_build cache ~key (fun () -> fresh) in
      Alcotest.(check string) "rebuilt" (model_bytes fresh) (model_bytes built);
      match SG.Model_cache.find cache ~key with
      | None -> Alcotest.fail "rebuilt entry not stored"
      | Some again ->
        Alcotest.(check string) "stored after rebuild" (model_bytes fresh)
          (model_bytes again))

let test_model_cache_version_stale () =
  (* a cache entry written by a future (or past) binary format version is
     stale — rebuilt and recounted, never a fatal parse error *)
  with_temp_cache (fun cache ->
      let fresh = (Lazy.force fr_analysis).SG.Pipeline.model in
      let key = "versioned" in
      SG.Model_cache.store cache ~key fresh;
      let path =
        Filename.concat (SG.Model_cache.dir cache) (key ^ ".cstbbs")
      in
      let data = SG.Persist.read_file ~path in
      check_bool "cache entries are binary" true (SG.Persist.is_binary data);
      let tampered = Bytes.of_string data in
      Bytes.set tampered 7 '\xff';
      let oc = open_out_bin path in
      output_bytes oc tampered;
      close_out oc;
      (* a fresh handle (no in-memory memoization) must treat it as stale *)
      let cache2 = SG.Model_cache.create ~dir:(SG.Model_cache.dir cache) in
      check_bool "version mismatch is a miss" true
        (SG.Model_cache.find cache2 ~key = None);
      check_int "stale counted" 1 (SG.Model_cache.stale cache2);
      check_bool "stale entry deleted" false (Sys.file_exists path);
      let built = SG.Model_cache.find_or_build cache2 ~key (fun () -> fresh) in
      Alcotest.(check string) "rebuilt" (model_bytes fresh) (model_bytes built))

let test_model_cache_key_sensitivity () =
  let fr = D.of_spec (A.flush_reload ~style:A.Iaik ()) in
  let pp = D.of_spec (A.prime_probe ~style:A.Iaik ()) in
  let k = SG.Model_cache.key ~name:"x" fr.D.program in
  Alcotest.(check string) "deterministic" k
    (SG.Model_cache.key ~name:"x" fr.D.program);
  Alcotest.(check string) "explicit defaults, same key" k
    (SG.Model_cache.key ~settings:Cpu.Exec.default_settings
       ~cst_config:Cache.Config.cst_probe ~name:"x" fr.D.program);
  let variants =
    [
      SG.Model_cache.key ~name:"y" fr.D.program;
      SG.Model_cache.key ~salt:"other" ~name:"x" fr.D.program;
      SG.Model_cache.key ~max_paths:3 ~name:"x" fr.D.program;
      SG.Model_cache.key ~max_len:9 ~name:"x" fr.D.program;
      SG.Model_cache.key
        ~settings:{ Cpu.Exec.default_settings with Cpu.Exec.fuel = 1 }
        ~name:"x" fr.D.program;
      SG.Model_cache.key ~cst_config:Cache.Config.l1d ~name:"x" fr.D.program;
      SG.Model_cache.key ~victim:pp.D.program ~name:"x" fr.D.program;
      SG.Model_cache.key ~name:"x" pp.D.program;
    ]
  in
  List.iteri
    (fun i k' ->
      check_bool (Printf.sprintf "ingredient %d changes the key" i) false
        (k' = k))
    variants;
  check_int "variants pairwise distinct" (List.length variants)
    (List.length (List.sort_uniq compare variants))

let test_build_models_batch_cached () =
  with_temp_cache (fun cache ->
      let jobs = Array.of_list (List.map job_of_sample (batch_samples ())) in
      let n = Array.length jobs in
      let cold = SG.Pipeline.build_models_batch ~domains:2 ~cache jobs in
      check_int "cold misses" n (SG.Model_cache.misses cache);
      check_int "cold hits" 0 (SG.Model_cache.hits cache);
      (* a fresh handle on the same directory: everything must hit *)
      let warm_cache = SG.Model_cache.create ~dir:(SG.Model_cache.dir cache) in
      let warm =
        SG.Pipeline.build_models_batch ~domains:2 ~cache:warm_cache jobs
      in
      check_int "warm hits" n (SG.Model_cache.hits warm_cache);
      check_int "warm misses" 0 (SG.Model_cache.misses warm_cache);
      Array.iteri
        (fun i m ->
          Alcotest.(check string) "warm = cold" (model_bytes cold.(i))
            (model_bytes m))
        warm)

let prop_interned_scoring_identical =
  QCheck.Test.make ~name:"interned scoring = string-token scoring" ~count:100
    QCheck.(pair model_arb model_arb)
    (fun (m1, m2) ->
      SG.Dtw.compare_models m1 m2
      = SG.Dtw.compare_models ~interned:false m1 m2
      && SG.Dtw.compare_models_raw m1 m2
         = SG.Dtw.compare_models_raw ~interned:false m1 m2)

let () =
  Alcotest.run "scaguard"
    [
      ( "relevant",
        [
          Alcotest.test_case "finds ground truth" `Quick
            test_identification_finds_ground_truth;
          Alcotest.test_case "prunes" `Quick test_identification_prunes;
          Alcotest.test_case "hpc values" `Quick test_identification_hpc_values;
          Alcotest.test_case "first times" `Quick test_identification_first_times;
          Alcotest.test_case "accuracy helper" `Quick test_accuracy_helper;
        ] );
      ( "attack_graph",
        [
          Alcotest.test_case "covers relevant" `Quick test_attack_graph_covers_relevant;
          Alcotest.test_case "restores paths" `Quick test_attack_graph_restores_paths;
          Alcotest.test_case "empty input" `Quick test_attack_graph_empty_for_no_relevant;
        ] );
      ( "cst",
        [
          Alcotest.test_case "starts full" `Quick test_cst_starts_full;
          Alcotest.test_case "loads shift occupancy" `Quick test_cst_loads_shift_occupancy;
          Alcotest.test_case "flushes reduce IO" `Quick test_cst_flushes_reduce_io;
          Alcotest.test_case "distance" `Quick test_cst_distance;
        ] );
      ( "distance",
        [
          Alcotest.test_case "bounds" `Quick test_entry_distance_bounds;
          Alcotest.test_case "alpha blending" `Quick test_entry_distance_alpha;
        ] );
      ( "dtw",
        [
          Alcotest.test_case "known values" `Quick test_dtw_known_values;
          Alcotest.test_case "normalized bounds" `Quick test_dtw_normalized_bounds;
          QCheck_alcotest.to_alcotest prop_dtw_symmetric;
          QCheck_alcotest.to_alcotest prop_dtw_identity;
          QCheck_alcotest.to_alcotest prop_dtw_matches_brute_force;
          Alcotest.test_case "similarity conversion" `Quick test_similarity_conversion;
        ] );
      ( "dtw_band",
        [
          Alcotest.test_case "band bail-out" `Quick test_band_bailout;
          QCheck_alcotest.to_alcotest prop_band_full_width_exact;
          QCheck_alcotest.to_alcotest prop_band_never_below_exact;
          QCheck_alcotest.to_alcotest prop_workspace_identical;
        ] );
      ( "empty_model",
        [
          Alcotest.test_case "similarity is zero" `Quick
            test_empty_model_similarity_zero;
          Alcotest.test_case "empty target never an attack" `Quick
            test_empty_target_never_attack;
        ] );
      ( "tie_break",
        [
          Alcotest.test_case "deterministic under repo order" `Quick
            test_classify_tie_break_deterministic;
        ] );
      ( "engine",
        [
          Alcotest.test_case "batch matches sequential" `Quick
            test_batch_matches_sequential;
          QCheck_alcotest.to_alcotest prop_batch_equals_sequential;
          Alcotest.test_case "zero-duration stats stay finite" `Quick
            test_engine_zero_wall_stats;
        ] );
      ( "pruning",
        [
          QCheck_alcotest.to_alcotest prop_lower_bound_sound;
          QCheck_alcotest.to_alcotest prop_cutoff_abandon_sound;
          QCheck_alcotest.to_alcotest prop_classify_prune_identical;
          QCheck_alcotest.to_alcotest prop_engine_prune_identical;
          Alcotest.test_case "prepared repository reuse" `Quick
            test_classify_prepared_reuse;
        ] );
      ( "index",
        [
          QCheck_alcotest.to_alcotest prop_index_flat_identical;
          QCheck_alcotest.to_alcotest prop_index_tree_identical;
          QCheck_alcotest.to_alcotest prop_index_search_sound;
          QCheck_alcotest.to_alcotest prop_index_build_deterministic;
          QCheck_alcotest.to_alcotest prop_index_bytes_roundtrip;
          QCheck_alcotest.to_alcotest prop_persist_index_section;
          Alcotest.test_case "auto thresholds" `Quick test_index_auto_thresholds;
          Alcotest.test_case "version-1 images still load" `Quick
            test_persist_v1_image_loads;
        ] );
      ( "model",
        [
          Alcotest.test_case "ordered by time" `Quick test_model_ordered_by_time;
          Alcotest.test_case "self similarity" `Quick test_model_self_similarity;
        ] );
      ( "detector",
        [
          Alcotest.test_case "classifies variant" `Quick test_detector_classifies_variant;
          Alcotest.test_case "scores sorted" `Quick test_detector_scores_sorted;
          Alcotest.test_case "rejects benign" `Quick test_detector_rejects_benign;
          Alcotest.test_case "empty repository" `Quick test_detector_empty_repository;
          Alcotest.test_case "threshold effect" `Quick test_detector_threshold_effect;
          Alcotest.test_case "scenario ordering" `Quick test_scenario_ordering;
          Alcotest.test_case "meltdown cross-family detection" `Quick
            test_meltdown_detected_cross_family;
        ] );
      ( "edge",
        [
          Alcotest.test_case "empty model pipeline" `Quick test_empty_model_pipeline;
          Alcotest.test_case "threshold monotonicity" `Quick
            test_threshold_monotonicity;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "recovers families unsupervised" `Slow
            test_clustering_recovers_families;
          Alcotest.test_case "pairwise count" `Slow test_pairwise_count;
          Alcotest.test_case "curated repository detects" `Slow
            test_curated_repository_detects;
          Alcotest.test_case "medoid is central" `Slow test_medoid_is_most_central;
        ] );
      ( "limitation",
        [
          Alcotest.test_case "guarded attack needs triggering" `Quick
            test_guarded_attack_limitation;
        ] );
      ( "persist",
        [
          Alcotest.test_case "model roundtrip" `Quick test_persist_model_roundtrip;
          Alcotest.test_case "repository roundtrip" `Quick
            test_persist_repository_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_persist_rejects_garbage;
          Alcotest.test_case "rejects malformed cst" `Quick
            test_persist_rejects_malformed_cst;
          Alcotest.test_case "atomic save" `Quick test_persist_save_atomic;
          Alcotest.test_case "newline tokens survive" `Quick
            test_persist_newline_tokens;
          Alcotest.test_case "binary corruption is a typed error" `Quick
            test_persist_binary_errors;
          Alcotest.test_case "lazy image loads" `Quick test_persist_image_lazy;
          Alcotest.test_case "save into missing dir is Io" `Quick
            test_persist_save_io_error;
          QCheck_alcotest.to_alcotest prop_persist_roundtrip;
          QCheck_alcotest.to_alcotest prop_persist_repository_roundtrip;
          QCheck_alcotest.to_alcotest prop_persist_binary_roundtrip;
          QCheck_alcotest.to_alcotest prop_persist_binary_repository_roundtrip;
        ] );
      ( "batch modeling & cache",
        [
          Alcotest.test_case "measurer reuse identical" `Quick
            test_cst_measurer_reuse;
          Alcotest.test_case "entries array memoized" `Quick
            test_entries_array_memoized;
          Alcotest.test_case "batch matches sequential" `Quick
            test_analyze_batch_matches_sequential;
          Alcotest.test_case "cache hit bit-identical" `Quick
            test_model_cache_hit_bit_identical;
          Alcotest.test_case "stale entry falls back" `Quick
            test_model_cache_stale_fallback;
          Alcotest.test_case "version mismatch is stale" `Quick
            test_model_cache_version_stale;
          Alcotest.test_case "key sensitivity" `Quick
            test_model_cache_key_sensitivity;
          Alcotest.test_case "cached batch build" `Quick
            test_build_models_batch_cached;
          QCheck_alcotest.to_alcotest prop_cache_hit_scores_identical;
          QCheck_alcotest.to_alcotest prop_interned_scoring_identical;
        ] );
    ]
