(* The serve daemon: strict JSON round-trips (including hostile input), the
   newline framer's chunking/overflow/resync behavior, request parsing,
   and the server core driven in-process — streamed verdicts bit-identical
   to Service.screen_prepared, queue-full backpressure, deadline expiry,
   reload not dropping queued requests, drain semantics, and the stdio
   transport end to end. *)

module SG = Scaguard
module Server = Scaguard.Server
module J = Scaguard.Server.Json
module C = Scaguard.Config

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* -- JSON ------------------------------------------------------------------- *)

let rec json_equal a b =
  match (a, b) with
  | J.Null, J.Null -> true
  | J.Bool x, J.Bool y -> x = y
  | J.Num x, J.Num y -> Int64.bits_of_float x = Int64.bits_of_float y
  | J.Str x, J.Str y -> x = y
  | J.List x, J.List y ->
    List.length x = List.length y && List.for_all2 json_equal x y
  | J.Obj x, J.Obj y ->
    List.length x = List.length y
    && List.for_all2
         (fun (ka, va) (kb, vb) -> ka = kb && json_equal va vb)
         x y
  | _ -> false

let json_gen =
  let open QCheck.Gen in
  (* printable-ish strings plus hostile characters the escaper must handle *)
  let str_g =
    string_size ~gen:(oneof [ printable; return '"'; return '\\'; return '\n'; return '\x01' ]) (0 -- 12)
  in
  let base =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun f -> J.Num f) (float_bound_inclusive 1000.0);
        map (fun i -> J.Num (float_of_int i)) (-1000 -- 1000);
        map (fun s -> J.Str s) str_g;
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then base
      else
        frequency
          [
            (3, base);
            (1, map (fun l -> J.List l) (list_size (0 -- 4) (self (depth - 1))));
            ( 1,
              map
                (fun kvs -> J.Obj kvs)
                (list_size (0 -- 4)
                   (pair str_g (self (depth - 1)))) );
          ])
    3

let test_json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"Json.to_string |> parse round-trips"
    (QCheck.make json_gen) (fun v ->
      match J.parse (J.to_string v) with
      | Ok v' -> json_equal v v'
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e)

let test_json_hostile () =
  let rejects s = check_bool s true (Result.is_error (J.parse s)) in
  rejects "";
  rejects "{";
  rejects "[1,2";
  rejects "{\"a\":1,}";
  rejects "nul";
  rejects "truefalse";
  rejects "1 2";
  (* trailing garbage *)
  rejects "\"ab\nc\"";
  (* raw control character *)
  rejects "\"\\ud800\"";
  (* lone high surrogate *)
  rejects "\"\\udc00 \"";
  (* lone low surrogate *)
  rejects "\"\\ud800\\u0041\"";
  (* high surrogate without low half *)
  rejects "1e999";
  (* overflows to infinity: non-finite rejected *)
  rejects "\"unterminated";
  rejects "{\"a\" 1}";
  (* 65 nested arrays exceed the depth limit *)
  rejects (String.make 65 '[' ^ String.make 65 ']');
  (* 64 levels are fine *)
  check_bool "depth 64 accepted" true
    (Result.is_ok (J.parse (String.make 64 '[' ^ String.make 64 ']')));
  (* surrogate pairs decode to 4-byte UTF-8 *)
  (match J.parse "\"\\ud83d\\ude00\"" with
  | Ok (J.Str s) -> check_int "astral code point is 4 UTF-8 bytes" 4 (String.length s)
  | _ -> Alcotest.fail "surrogate pair should parse");
  (match J.parse "\" \\n\\t\\\\ \\u0041\"" with
  | Ok (J.Str s) -> check_string "escapes decode" " \n\t\\ A" s
  | _ -> Alcotest.fail "escapes should parse")

let test_json_numbers () =
  check_string "integral without point" "42" (J.to_string (J.Num 42.0));
  check_string "negative integral" "-7" (J.to_string (J.Num (-7.0)));
  check_bool "non-finite prints null" true
    (J.to_string (J.Num Float.nan) = "null");
  (* a non-integral float survives the wire bit for bit *)
  let f = 0.5239381520119224 in
  match J.parse (J.to_string (J.Num f)) with
  | Ok (J.Num f') ->
    check_bool "float round-trips exactly" true
      (Int64.bits_of_float f = Int64.bits_of_float f')
  | _ -> Alcotest.fail "number should parse"

(* -- framer ----------------------------------------------------------------- *)

let test_framer_chunks () =
  let fr = Server.Framer.create () in
  check_bool "partial line buffers" true (Server.Framer.feed fr "ab" = []);
  check_int "buffered bytes" 2 (Server.Framer.buffered fr);
  (match Server.Framer.feed fr "c\nde\r\nf" with
  | [ Server.Framer.Line "abc"; Server.Framer.Line "de" ] -> ()
  | _ -> Alcotest.fail "expected two lines, CR stripped");
  (match Server.Framer.eof fr with
  | Some (Server.Framer.Line "f") -> ()
  | _ -> Alcotest.fail "eof flushes the last unterminated line");
  check_bool "eof is then empty" true (Server.Framer.eof fr = None)

let test_framer_overflow_resync () =
  let fr = Server.Framer.create ~max_line:8 () in
  match Server.Framer.feed fr "0123456789abc\nshort\n" with
  | [ Server.Framer.Overflow { dropped }; Server.Framer.Line "short" ] ->
    check_int "dropped counts the discarded bytes" 13 dropped
  | _ -> Alcotest.fail "expected overflow then a clean resync"

(* -- request parsing -------------------------------------------------------- *)

let test_parse_request_ok () =
  match Server.parse_request {|{"id":7,"op":"detect","targets":["a","b"]}|} with
  | Ok { id = J.Num 7.0; body = Server.Detect { targets; seed; stream }; deadline_ms = None; trace_id = None } ->
    check_bool "targets" true (targets = [ "a"; "b" ]);
    check_int "seed defaults" 2026 seed;
    check_bool "stream defaults on" true stream
  | _ -> Alcotest.fail "detect request should parse with defaults"

let test_parse_request_fields () =
  (match
     Server.parse_request
       {|{"id":"x","op":"detect","targets":["a"],"seed":9,"stream":false,"deadline_ms":50,"future":1}|}
   with
  | Ok { id = J.Str "x"; body = Server.Detect { seed = 9; stream = false; _ }; deadline_ms = Some 50; _ } ->
    ()
  | _ -> Alcotest.fail "explicit fields should parse (unknown ones ignored)");
  match Server.parse_request {|{"id":1,"op":"reload"}|} with
  | Ok { body = Server.Reload { path = None }; _ } -> ()
  | _ -> Alcotest.fail "reload without path should parse"

let test_parse_request_rejects () =
  let code line =
    match Server.parse_request line with
    | Error r -> Server.error_code_to_string r.Server.code
    | Ok _ -> "(accepted)"
  in
  check_string "bad JSON" "parse" (code "{nope}");
  check_string "non-object" "bad_request" (code "[1]");
  check_string "missing id" "bad_request" (code {|{"op":"ping"}|});
  check_string "bad id type" "bad_request" (code {|{"id":true,"op":"ping"}|});
  check_string "non-integral id" "bad_request" (code {|{"id":1.5,"op":"ping"}|});
  check_string "missing op" "bad_request" (code {|{"id":1}|});
  check_string "unknown op" "bad_request" (code {|{"id":1,"op":"launch"}|});
  check_string "empty targets" "bad_request"
    (code {|{"id":1,"op":"detect","targets":[]}|});
  check_string "ill-typed targets" "bad_request"
    (code {|{"id":1,"op":"detect","targets":[1]}|});
  check_string "negative deadline" "bad_request"
    (code {|{"id":1,"op":"ping","deadline_ms":-1}|});
  (* the id is still echoed when it parsed *)
  match Server.parse_request {|{"id":3,"op":"launch"}|} with
  | Error { Server.reject_id = J.Num 3.0; _ } -> ()
  | _ -> Alcotest.fail "reject should carry the parsed id"

(* -- server core ------------------------------------------------------------ *)

(* A miniature of the CLI's program registry: two attack PoCs and the
   benign generators, resolved exactly like `scaguard serve` does. *)
let resolve ~seed name =
  let sample =
    match name with
    | "fr-iaik" ->
      Some (Workloads.Dataset.of_spec (Workloads.Attacks.flush_reload ~style:Workloads.Attacks.Iaik ()))
    | "pp-iaik" ->
      Some (Workloads.Dataset.of_spec (Workloads.Attacks.prime_probe ~style:Workloads.Attacks.Iaik ()))
    | _ ->
      if List.mem_assoc name Workloads.Benign.families then begin
        let g = Workloads.Benign.build name (Sutil.Rng.create seed) in
        Some
          {
            Workloads.Dataset.name = g.Workloads.Benign.name;
            label = Workloads.Label.Benign;
            program = g.Workloads.Benign.program;
            init = g.Workloads.Benign.init;
            victim = None;
            settings = None;
          }
      end
      else None
  in
  match sample with
  | None ->
    Error
      (SG.Err.Invalid_config
         { field = "target"; value = name; expected = "a known program" })
  | Some s ->
    Ok
      (SG.Pipeline.job ?settings:s.Workloads.Dataset.settings
         ~init:s.Workloads.Dataset.init ?victim:s.Workloads.Dataset.victim
         ~name:s.Workloads.Dataset.name s.Workloads.Dataset.program)

let prepared_repo =
  lazy
    (let rng = Sutil.Rng.create 42 in
     let repo =
       Experiments.Common.repository ~rng
         [ Workloads.Label.Fr_family; Workloads.Label.Pp_family ]
     in
     (repo, SG.Detector.prepare repo))

let make_server ?queue_capacity ?max_line ?default_deadline_ms () =
  let _, prepared = Lazy.force prepared_repo in
  match
    Server.create ~config:C.default ~resolve ~prepared ?queue_capacity
      ?max_line ?default_deadline_ms ()
  with
  | Ok t -> t
  | Error e -> Alcotest.failf "Server.create: %s" (SG.Err.to_string e)

(* Collect emitted frames (already parsed) in order. *)
let recording_conn t =
  let frames = ref [] in
  let conn =
    Server.connect t ~emit:(fun line ->
        match J.parse line with
        | Ok v -> frames := v :: !frames
        | Error e -> Alcotest.failf "server emitted invalid JSON: %s" e)
  in
  (conn, fun () -> List.rev !frames)

let member_exn k v =
  match J.member k v with
  | Some x -> x
  | None -> Alcotest.failf "frame lacks %S: %s" k (J.to_string v)

let error_code_of_frame v =
  match J.member "code" (member_exn "error" v) with
  | Some (J.Str c) -> c
  | _ -> Alcotest.failf "malformed error frame: %s" (J.to_string v)

let test_ping_and_unknown_target () =
  let t = make_server () in
  let conn, frames = recording_conn t in
  Server.feed t conn "{\"id\":1,\"op\":\"ping\"}\n{\"id\":2,\"op\":\"detect\",\"targets\":[\"no-such\"]}\n";
  check_int "two requests queued" 2 (Server.pending t);
  check_bool "drain runs both" true (Server.drain t = `Idle);
  match frames () with
  | [ ping; err ] ->
    check_bool "ping ok" true (J.member "ok" ping = Some (J.Bool true));
    check_string "unknown target is invalid_config" "invalid_config"
      (error_code_of_frame err)
  | fs -> Alcotest.failf "expected 2 frames, got %d" (List.length fs)

(* The tentpole invariant: streamed per-target verdicts carry exactly the
   scores Service.screen_prepared computes for the same batch — same salt
   policy, compared bit for bit after a wire round-trip. *)
let test_detect_bit_identical () =
  let seed = 7 in
  let targets = [ "fr-iaik"; "quicksort"; "pp-iaik" ] in
  let t = make_server () in
  let conn, frames = recording_conn t in
  let req =
    Printf.sprintf
      "{\"id\":1,\"op\":\"detect\",\"targets\":[%s],\"seed\":%d}\n"
      (String.concat "," (List.map (Printf.sprintf "%S") targets))
      seed
  in
  Server.feed t conn req;
  ignore (Server.drain t);
  let _, prepared = Lazy.force prepared_repo in
  let config = { C.default with C.salt = string_of_int seed } in
  let jobs =
    Array.of_list
      (List.map (fun n -> Result.get_ok (resolve ~seed n)) targets)
  in
  let _, verdicts, _ =
    Result.get_ok (SG.Service.screen_prepared config prepared jobs)
  in
  match frames () with
  | [ v0; v1; v2; done_frame ] ->
    List.iteri
      (fun i frame ->
        let score =
          match member_exn "score" frame with
          | J.Num f -> f
          | _ -> Alcotest.fail "score must be a number"
        in
        check_bool
          (Printf.sprintf "target %d score bit-identical" i)
          true
          (Int64.bits_of_float score
          = Int64.bits_of_float verdicts.(i).SG.Detector.best_score);
        let attack =
          match member_exn "attack" frame with J.Bool b -> b | _ -> false
        in
        check_bool
          (Printf.sprintf "target %d attack flag" i)
          (verdicts.(i).SG.Detector.best_family <> None)
          attack)
      [ v0; v1; v2 ];
    check_bool "done frame ok" true
      (J.member "ok" done_frame = Some (J.Bool true));
    check_bool "done counts targets" true
      (member_exn "targets" done_frame = J.Num 3.0)
  | fs -> Alcotest.failf "expected 4 frames, got %d" (List.length fs)

(* Unstreamed detect must emit the very same verdict frames. *)
let test_detect_stream_parity () =
  let run extra =
    let t = make_server () in
    let conn, frames = recording_conn t in
    Server.feed t conn
      (Printf.sprintf
         "{\"id\":1,\"op\":\"detect\",\"targets\":[\"fr-iaik\",\"binary-search\"],\"seed\":3%s}\n"
         extra);
    ignore (Server.drain t);
    List.filter (fun f -> J.member "event" f <> None) (frames ())
  in
  let streamed = run "" in
  let batched = run ",\"stream\":false" in
  check_int "same verdict count" (List.length streamed) (List.length batched);
  List.iter2
    (fun a b ->
      check_bool "verdict frames identical" true
        (J.to_string a = J.to_string b))
    streamed batched

let test_queue_full_busy () =
  let t = make_server ~queue_capacity:2 () in
  let conn, frames = recording_conn t in
  let reqs =
    String.concat ""
      (List.map (Printf.sprintf "{\"id\":%d,\"op\":\"ping\"}\n") [ 1; 2; 3; 4 ])
  in
  Server.feed t conn reqs;
  (* the two rejections are emitted from feed, before any queued work ran *)
  check_int "queue holds its capacity" 2 (Server.pending t);
  let busy_now =
    List.filter
      (fun f -> J.member "ok" f = Some (J.Bool false))
      (frames ())
  in
  check_int "overflow rejected immediately" 2 (List.length busy_now);
  List.iter
    (fun f -> check_string "busy code" "busy" (error_code_of_frame f))
    busy_now;
  ignore (Server.drain t);
  let ok_frames =
    List.filter (fun f -> J.member "ok" f = Some (J.Bool true)) (frames ())
  in
  check_int "queued requests still served" 2 (List.length ok_frames)

let test_deadline_expiry () =
  let t = make_server () in
  let conn, frames = recording_conn t in
  Server.feed t conn "{\"id\":1,\"op\":\"ping\",\"deadline_ms\":1}\n";
  Unix.sleepf 0.01;
  check_bool "one step" true (Server.step t = `Worked);
  match frames () with
  | [ f ] ->
    check_bool "expired request fails" true
      (J.member "ok" f = Some (J.Bool false));
    check_string "deadline code" "deadline" (error_code_of_frame f)
  | fs -> Alcotest.failf "expected 1 frame, got %d" (List.length fs)

let test_default_deadline () =
  let t = make_server ~default_deadline_ms:1 () in
  let conn, frames = recording_conn t in
  Server.feed t conn "{\"id\":1,\"op\":\"ping\"}\n";
  Unix.sleepf 0.01;
  ignore (Server.step t);
  match frames () with
  | [ f ] -> check_string "server default applies" "deadline" (error_code_of_frame f)
  | _ -> Alcotest.fail "expected one frame"

(* reload swaps the repository between queued requests without dropping
   any: a detect queued before and one after the reload both complete, in
   order. *)
let test_reload_keeps_queue () =
  let dir = Filename.temp_file "scag_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "repo.scag" in
  let repo, _ = Lazy.force prepared_repo in
  let config = { C.default with C.repo_format = C.Binary } in
  (match SG.Service.save_repository config ~path repo with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "save_repository: %s" (SG.Err.to_string e));
  let _, prepared = Lazy.force prepared_repo in
  let t =
    Result.get_ok
      (Server.create ~config:C.default ~resolve ~prepared ~repo_path:path ())
  in
  let conn, frames = recording_conn t in
  Server.feed t conn
    "{\"id\":1,\"op\":\"detect\",\"targets\":[\"fr-iaik\"]}\n{\"id\":2,\"op\":\"reload\"}\n{\"id\":3,\"op\":\"detect\",\"targets\":[\"fr-iaik\"]}\n";
  ignore (Server.drain t);
  Sys.remove path;
  Unix.rmdir dir;
  let finals =
    List.filter (fun f -> J.member "event" f = None) (frames ())
  in
  (match finals with
  | [ d1; rl; d3 ] ->
    List.iter
      (fun f ->
        check_bool
          ("frame ok: " ^ J.to_string f)
          true
          (J.member "ok" f = Some (J.Bool true)))
      [ d1; rl; d3 ];
    check_bool "reload reports models" true (member_exn "models" rl = J.Num 2.0);
    check_bool "order: detect, reload, detect" true
      (member_exn "id" d1 = J.Num 1.0
      && member_exn "id" rl = J.Num 2.0
      && member_exn "id" d3 = J.Num 3.0)
  | fs -> Alcotest.failf "expected 3 final frames, got %d" (List.length fs));
  (* both detects emitted a verdict — nothing was dropped *)
  check_int "verdicts around the reload" 2
    (List.length (List.filter (fun f -> J.member "event" f <> None) (frames ())))

(* after a reload the daemon must classify exactly like a freshly started
   one — same repository file, same config (repository index included):
   every detect frame, verdict events and finals alike, is byte-identical.
   This pins the reload path to Service.load_repository's config-aware
   index handling rather than a bare file load. *)
let test_reload_matches_fresh () =
  let dir = Filename.temp_file "scag_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "repo.scag" in
  let repo, _ = Lazy.force prepared_repo in
  let config =
    { C.default with C.repo_format = C.Binary; index = C.Index_vp }
  in
  (match SG.Service.save_repository config ~path repo with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "save_repository: %s" (SG.Err.to_string e));
  let fresh_server () =
    match SG.Service.load_repository ~config ~path () with
    | Error e -> Alcotest.failf "load_repository: %s" (SG.Err.to_string e)
    | Ok (_, prepared, _) ->
      Result.get_ok
        (Server.create ~config ~resolve ~prepared ~repo_path:path ())
  in
  let detect =
    "{\"id\":7,\"op\":\"detect\",\"targets\":[\"fr-iaik\",\"pp-iaik\",\
     \"quicksort\"],\"seed\":11}\n"
  in
  let a = fresh_server () in
  let conn_a, frames_a = recording_conn a in
  Server.feed a conn_a "{\"id\":1,\"op\":\"reload\"}\n";
  ignore (Server.drain a);
  Server.feed a conn_a detect;
  ignore (Server.drain a);
  let b = fresh_server () in
  let conn_b, frames_b = recording_conn b in
  Server.feed b conn_b detect;
  ignore (Server.drain b);
  Sys.remove path;
  Unix.rmdir dir;
  let detect_frames fs =
    List.filter (fun f -> member_exn "id" f = J.Num 7.0) fs
  in
  let after_reload = detect_frames (frames_a ()) in
  let fresh = detect_frames (frames_b ()) in
  check_int "same frame count" (List.length fresh) (List.length after_reload);
  List.iter2
    (fun want got ->
      match J.member "event" want with
      | Some _ ->
        (* verdict events carry the scores: byte-identical, bits included *)
        check_string "verdict frame byte-identical" (J.to_string want)
          (J.to_string got)
      | None ->
        (* the final summary differs only in wall_ms (a timing) *)
        List.iter
          (fun k ->
            check_bool ("final frame field " ^ k) true
              (member_exn k want = member_exn k got))
          [ "ok"; "op"; "targets"; "completed"; "attacks" ])
    fresh after_reload

let test_reload_without_path () =
  let t = make_server () in
  let conn, frames = recording_conn t in
  Server.feed t conn "{\"id\":1,\"op\":\"reload\"}\n";
  ignore (Server.drain t);
  match frames () with
  | [ f ] -> check_string "no path to reload" "invalid_config" (error_code_of_frame f)
  | _ -> Alcotest.fail "expected one frame"

let test_shutdown_drain () =
  let t = make_server () in
  let conn, frames = recording_conn t in
  (* ping queued before shutdown still runs; the ack comes last *)
  Server.feed t conn "{\"id\":1,\"op\":\"ping\"}\n{\"id\":2,\"op\":\"shutdown\"}\n";
  check_bool "not yet draining" false (Server.draining t);
  check_bool "ping step" true (Server.step t = `Worked);
  check_bool "shutdown step" true (Server.step t = `Worked);
  check_bool "now draining" true (Server.draining t);
  (* a request arriving during the drain is refused *)
  Server.feed t conn "{\"id\":3,\"op\":\"ping\"}\n";
  check_bool "final step stops" true (Server.step t = `Stop);
  match frames () with
  | [ ping; unavailable; ack ] ->
    check_bool "ping ok" true (J.member "ok" ping = Some (J.Bool true));
    check_string "drain refusal" "unavailable" (error_code_of_frame unavailable);
    check_bool "ack is the shutdown reply" true
      (J.member "op" ack = Some (J.Str "shutdown"))
  | fs -> Alcotest.failf "expected 3 frames, got %d" (List.length fs)

let test_oversized_frame () =
  let t = make_server ~max_line:64 () in
  let conn, frames = recording_conn t in
  Server.feed t conn (String.make 100 'x' ^ "\n{\"id\":1,\"op\":\"ping\"}\n");
  ignore (Server.drain t);
  match frames () with
  | [ err; ping ] ->
    check_string "oversized is a parse error" "parse" (error_code_of_frame err);
    check_bool "id is null (nothing recovered)" true
      (J.member "id" err = Some J.Null);
    check_bool "stream resyncs: next request served" true
      (J.member "ok" ping = Some (J.Bool true))
  | fs -> Alcotest.failf "expected 2 frames, got %d" (List.length fs)

let test_stats_and_metrics_verbs () =
  SG.Obs.reset ();
  SG.Obs.set_metrics true;
  Fun.protect
    ~finally:(fun () ->
      SG.Obs.set_metrics false;
      SG.Obs.reset ())
    (fun () ->
      let t = make_server () in
      let conn, frames = recording_conn t in
      Server.feed t conn
        "{\"id\":1,\"op\":\"detect\",\"targets\":[\"fr-iaik\"]}\n{\"id\":2,\"op\":\"stats\"}\n{\"id\":3,\"op\":\"metrics\"}\n";
      ignore (Server.drain t);
      match frames () with
      | [ _verdict; _done; stats; metrics ] ->
        let requests = member_exn "requests" stats in
        check_bool "stats counts the detect" true
          (member_exn "completed" requests = J.Num 1.0);
        check_bool "stats reports engine pairs" true
          (match member_exn "pairs" (member_exn "engine" stats) with
          | J.Num f -> f > 0.0
          | _ -> false);
        check_bool "latency quantiles present" true
          (match member_exn "p99" (member_exn "latency_ms" stats) with
          | J.Num f -> f >= 0.0
          | _ -> false);
        let body =
          match member_exn "body" metrics with
          | J.Str s -> s
          | _ -> Alcotest.fail "metrics body must be a string"
        in
        let contains sub =
          let n = String.length body and m = String.length sub in
          let rec at i = i + m <= n && (String.sub body i m = sub || at (i + 1)) in
          at 0
        in
        check_bool "exposition has the request counter" true
          (contains "scaguard_server_requests_total{op=\"detect\"} 1");
        check_bool "exposition has the queue gauge" true
          (contains "scaguard_server_queue_depth")
      | fs -> Alcotest.failf "expected 4 frames, got %d" (List.length fs))

(* Every frame a request produces echoes its trace_id — success frames,
   error frames, and even the immediate reject of an unknown op (the
   envelope got far enough to carry a well-typed one). *)
let test_trace_id_echo () =
  let t = make_server () in
  let conn, frames = recording_conn t in
  Server.feed t conn
    "{\"id\":1,\"op\":\"ping\",\"trace_id\":\"t-9\"}\n{\"id\":2,\"op\":\"detect\",\"targets\":[\"no-such\"],\"trace_id\":\"t-10\"}\n{\"id\":3,\"op\":\"nonsense\",\"trace_id\":\"t-11\"}\n";
  ignore (Server.drain t);
  (* the unknown-op reject is emitted from feed, before queued work runs *)
  match frames () with
  | [ bad_verb; ping; bad_target ] ->
    check_bool "reject echoes the trace id" true
      (J.member "trace_id" bad_verb = Some (J.Str "t-11"));
    check_string "reject is bad_request" "bad_request"
      (error_code_of_frame bad_verb);
    check_bool "success frame echoes" true
      (J.member "trace_id" ping = Some (J.Str "t-9"));
    check_bool "error frame echoes" true
      (J.member "trace_id" bad_target = Some (J.Str "t-10"));
    (* an untraced request gets no trace_id field at all *)
    let t2 = make_server () in
    let conn2, frames2 = recording_conn t2 in
    Server.feed t2 conn2 "{\"id\":1,\"op\":\"ping\"}\n";
    ignore (Server.drain t2);
    (match frames2 () with
    | [ bare ] ->
      check_bool "no field when untraced" true (J.member "trace_id" bare = None)
    | fs -> Alcotest.failf "expected 1 frame, got %d" (List.length fs))
  | fs -> Alcotest.failf "expected 3 frames, got %d" (List.length fs)

(* The explain verb: screen's verdict summary plus one provenance record
   per target — decodable, trace-stamped, and bit-identical in score to
   Service.screen_prepared on the same batch. *)
let test_explain_verb () =
  let seed = 7 in
  let targets = [ "fr-iaik"; "quicksort" ] in
  let t = make_server () in
  let conn, frames = recording_conn t in
  Server.feed t conn
    (Printf.sprintf
       "{\"id\":1,\"op\":\"explain\",\"targets\":[%s],\"seed\":%d,\"trace_id\":\"tr-ex\"}\n"
       (String.concat "," (List.map (Printf.sprintf "%S") targets))
       seed);
  ignore (Server.drain t);
  let _, prepared = Lazy.force prepared_repo in
  let config = { C.default with C.salt = string_of_int seed } in
  let jobs =
    Array.of_list (List.map (fun n -> Result.get_ok (resolve ~seed n)) targets)
  in
  let _, verdicts, _ =
    Result.get_ok (SG.Service.screen_prepared config prepared jobs)
  in
  match frames () with
  | [ reply ] ->
    check_bool "ok" true (J.member "ok" reply = Some (J.Bool true));
    check_bool "frame echoes the trace id" true
      (J.member "trace_id" reply = Some (J.Str "tr-ex"));
    check_bool "targets counted" true
      (member_exn "targets" reply = J.Num 2.0);
    let records =
      match member_exn "records" reply with
      | J.List rs -> rs
      | _ -> Alcotest.fail "records must be an array"
    in
    check_int "one record per target" (List.length targets)
      (List.length records);
    List.iter
      (fun rj ->
        match SG.Provenance.of_json rj with
        | Error m -> Alcotest.failf "record does not decode: %s" m
        | Ok r ->
          check_bool "record carries the trace id" true
            (r.SG.Provenance.trace_id = Some "tr-ex");
          (* records carry the built model's canonical name, not the
             request spelling — match through the resolved jobs *)
          let i =
            match
              Array.find_index
                (fun j -> j.SG.Pipeline.job_name = r.SG.Provenance.target)
                jobs
            with
            | Some i -> i
            | None -> Alcotest.failf "record for unknown target %s"
                        r.SG.Provenance.target
          in
          check_bool
            (Printf.sprintf "%s score bit-identical to screen_prepared"
               r.SG.Provenance.target)
            true
            (Int64.bits_of_float r.SG.Provenance.best_score
            = Int64.bits_of_float verdicts.(i).SG.Detector.best_score))
      records;
    check_bool "capture switch left off" false (SG.Provenance.enabled ())
  | fs -> Alcotest.failf "expected 1 frame, got %d" (List.length fs)

(* -- stdio transport --------------------------------------------------------- *)

(* Drive serve_channels over OS pipes, exactly like `scaguard serve --stdio`:
   requests written up front, EOF, then the reply stream is read back and
   the detect verdict compared bit for bit with Service.screen_prepared. *)
let test_stdio_end_to_end () =
  let t = make_server () in
  let req_r, req_w = Unix.pipe ~cloexec:false () in
  let resp_r, resp_w = Unix.pipe ~cloexec:false () in
  let requests =
    "{\"id\":1,\"op\":\"detect\",\"targets\":[\"fr-iaik\"],\"seed\":5}\n{\"id\":2,\"op\":\"shutdown\"}\n"
  in
  let oc_req = Unix.out_channel_of_descr req_w in
  output_string oc_req requests;
  close_out oc_req;
  let ic = Unix.in_channel_of_descr req_r in
  let oc = Unix.out_channel_of_descr resp_w in
  (match Server.serve_channels t ~ic ~oc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "serve_channels: %s" (SG.Err.to_string e));
  close_out oc;
  close_in ic;
  let ic_resp = Unix.in_channel_of_descr resp_r in
  let rec read_all acc =
    match input_line ic_resp with
    | line -> read_all (Result.get_ok (J.parse line) :: acc)
    | exception End_of_file -> List.rev acc
  in
  let frames = read_all [] in
  close_in ic_resp;
  match frames with
  | [ verdict; done_frame; ack ] ->
    let _, prepared = Lazy.force prepared_repo in
    let config = { C.default with C.salt = "5" } in
    let _, verdicts, _ =
      Result.get_ok
        (SG.Service.screen_prepared config prepared
           [| Result.get_ok (resolve ~seed:5 "fr-iaik") |])
    in
    let score =
      match member_exn "score" verdict with J.Num f -> f | _ -> 0.0
    in
    check_bool "stdio verdict matches Service.detect bits" true
      (Int64.bits_of_float score
      = Int64.bits_of_float verdicts.(0).SG.Detector.best_score);
    check_bool "done ok" true (J.member "ok" done_frame = Some (J.Bool true));
    check_bool "shutdown acked" true
      (J.member "op" ack = Some (J.Str "shutdown"))
  | fs -> Alcotest.failf "expected 3 frames, got %d" (List.length fs)

(* -- suite ------------------------------------------------------------------- *)

let () =
  Alcotest.run "server"
    [
      ( "json",
        [
          QCheck_alcotest.to_alcotest test_json_roundtrip;
          Alcotest.test_case "hostile input" `Quick test_json_hostile;
          Alcotest.test_case "number printing" `Quick test_json_numbers;
        ] );
      ( "framer",
        [
          Alcotest.test_case "chunk reassembly" `Quick test_framer_chunks;
          Alcotest.test_case "overflow + resync" `Quick
            test_framer_overflow_resync;
        ] );
      ( "parse",
        [
          Alcotest.test_case "defaults" `Quick test_parse_request_ok;
          Alcotest.test_case "explicit fields" `Quick test_parse_request_fields;
          Alcotest.test_case "rejections" `Quick test_parse_request_rejects;
        ] );
      ( "core",
        [
          Alcotest.test_case "ping + unknown target" `Quick
            test_ping_and_unknown_target;
          Alcotest.test_case "detect bit-identical to batch" `Slow
            test_detect_bit_identical;
          Alcotest.test_case "streamed = unstreamed frames" `Slow
            test_detect_stream_parity;
          Alcotest.test_case "queue-full backpressure" `Quick
            test_queue_full_busy;
          Alcotest.test_case "deadline expiry" `Quick test_deadline_expiry;
          Alcotest.test_case "server default deadline" `Quick
            test_default_deadline;
          Alcotest.test_case "reload keeps queued requests" `Slow
            test_reload_keeps_queue;
          Alcotest.test_case "reload matches a fresh daemon" `Slow
            test_reload_matches_fresh;
          Alcotest.test_case "reload without a path" `Quick
            test_reload_without_path;
          Alcotest.test_case "shutdown drains then refuses" `Quick
            test_shutdown_drain;
          Alcotest.test_case "oversized frame" `Quick test_oversized_frame;
          Alcotest.test_case "stats + metrics verbs" `Slow
            test_stats_and_metrics_verbs;
          Alcotest.test_case "trace-id echo" `Quick test_trace_id_echo;
          Alcotest.test_case "explain verb" `Slow test_explain_verb;
        ] );
      ( "stdio",
        [
          Alcotest.test_case "end to end over pipes" `Slow
            test_stdio_end_to_end;
        ] );
    ]
