(* Tests for the CPU simulator: architectural state, branch prediction,
   instruction semantics, timing, speculation and victim interleaving. *)

module I = Isa.Instr
module O = Isa.Operand
module R = Isa.Reg
module P = Isa.Program
module M = Cpu.Machine
module E = Cpu.Exec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let prog instrs = P.assemble ~name:"t" (List.map (fun i -> P.Ins i) instrs)
let prog_l stmts = P.assemble ~name:"t" stmts
let run ?init ?settings ?victim p = E.run ?init ?settings ?victim p
let rax r = M.get_reg r.E.machine R.RAX
let reg r x = M.get_reg r.E.machine x

(* ---- Machine ------------------------------------------------------------- *)

let test_machine_regs_mem () =
  let m = M.create () in
  check_int "zero reg" 0 (M.get_reg m R.RAX);
  M.set_reg m R.RAX 42;
  check_int "set/get" 42 (M.get_reg m R.RAX);
  check_int "uninit mem" 0 (M.load m 0x1234);
  M.store m 0x1234 7;
  check_int "store/load" 7 (M.load m 0x1234);
  M.init_region m ~base:0x100 [| 1; 2; 3 |];
  check_int "region stride 8" 2 (M.load m 0x108)

let test_machine_snapshot_isolated () =
  let m = M.create () in
  M.store m 1 10;
  M.set_reg m R.RBX 5;
  let s = M.snapshot m in
  M.store s 1 99;
  M.set_reg s R.RBX 77;
  check_int "orig mem intact" 10 (M.load m 1);
  check_int "orig reg intact" 5 (M.get_reg m R.RBX)

let test_machine_conditions () =
  let m = M.create () in
  M.set_flags m ~zf:true ~sf:false ~cf:false;
  check_bool "eq" true (M.cond_holds m I.Eq);
  check_bool "ne" false (M.cond_holds m I.Ne);
  check_bool "le" true (M.cond_holds m I.Le);
  M.set_flags m ~zf:false ~sf:true ~cf:true;
  check_bool "lt" true (M.cond_holds m I.Lt);
  check_bool "ge" false (M.cond_holds m I.Ge);
  check_bool "ult" true (M.cond_holds m I.Ult);
  check_bool "uge" false (M.cond_holds m I.Uge)

(* ---- Predictor ------------------------------------------------------------- *)

let test_predictor_training () =
  let p = Cpu.Predictor.create () in
  check_bool "initially not taken" false (Cpu.Predictor.predict_taken p ~pc:0x40);
  Cpu.Predictor.update p ~pc:0x40 ~taken:true;
  Cpu.Predictor.update p ~pc:0x40 ~taken:true;
  check_bool "trained taken" true (Cpu.Predictor.predict_taken p ~pc:0x40);
  Cpu.Predictor.update p ~pc:0x40 ~taken:false;
  check_bool "2-bit hysteresis" true (Cpu.Predictor.predict_taken p ~pc:0x40);
  Cpu.Predictor.update p ~pc:0x40 ~taken:false;
  check_bool "flipped" false (Cpu.Predictor.predict_taken p ~pc:0x40)

let test_predictor_btb () =
  let p = Cpu.Predictor.create () in
  check_bool "cold" false (Cpu.Predictor.btb_seen p ~pc:0x80);
  Cpu.Predictor.btb_insert p ~pc:0x80;
  check_bool "warm" true (Cpu.Predictor.btb_seen p ~pc:0x80)

(* ---- Basic semantics --------------------------------------------------------- *)

let test_exec_mov_alu () =
  let r =
    run
      (prog
         [
           I.Mov (O.reg R.RAX, O.imm 10);
           I.Add (O.reg R.RAX, O.imm 5);
           I.Mov (O.reg R.RBX, O.reg R.RAX);
           I.Sub (O.reg R.RBX, O.imm 3);
           I.Imul (O.reg R.RBX, O.imm 2);
           I.Xor (O.reg R.RCX, O.reg R.RCX);
           I.Or (O.reg R.RCX, O.imm 9);
           I.And (O.reg R.RCX, O.imm 8);
           I.Halt;
         ])
  in
  check_int "rax" 15 (rax r);
  check_int "rbx" 24 (reg r R.RBX);
  check_int "rcx" 8 (reg r R.RCX);
  check_bool "halted" true r.E.halted_normally

let test_exec_shifts_incdec () =
  let r =
    run
      (prog
         [
           I.Mov (O.reg R.RAX, O.imm 3);
           I.Shl (O.reg R.RAX, 4);
           I.Shr (O.reg R.RAX, 1);
           I.Inc (O.reg R.RAX);
           I.Dec (O.reg R.RAX);
           I.Dec (O.reg R.RAX);
           I.Halt;
         ])
  in
  check_int "shifts" 23 (rax r)

let test_exec_memory_ops () =
  let r =
    run
      (prog
         [
           I.Mov (O.reg R.RBX, O.imm 0x1000);
           I.Mov (O.mem ~base:R.RBX (), O.imm 11);
           I.Mov (O.mem ~base:R.RBX ~disp:8 (), O.imm 22);
           I.Mov (O.reg R.RAX, O.mem ~base:R.RBX ());
           I.Add (O.reg R.RAX, O.mem ~base:R.RBX ~disp:8 ());
           I.Add (O.mem ~base:R.RBX (), O.imm 100);
           I.Halt;
         ])
  in
  check_int "loads" 33 (rax r);
  check_int "rmw" 111 (M.load r.E.machine 0x1000)

let test_exec_lea () =
  let r =
    run
      (prog
         [
           I.Mov (O.reg R.RBX, O.imm 0x100);
           I.Mov (O.reg R.RCX, O.imm 4);
           I.Lea (R.RAX, O.mem ~base:R.RBX ~index:R.RCX ~scale:16 ~disp:2 ());
           I.Halt;
         ])
  in
  check_int "effective addr" (0x100 + 64 + 2) (rax r);
  check_int "no data accesses" 0 (Hpc.Collector.access_count r.E.collector)

let test_exec_loop () =
  let r =
    run
      (prog_l
         [
           P.Ins (I.Mov (O.reg R.RAX, O.imm 0));
           P.Ins (I.Mov (O.reg R.RCX, O.imm 10));
           P.Lbl "loop";
           P.Ins (I.Add (O.reg R.RAX, O.reg R.RCX));
           P.Ins (I.Dec (O.reg R.RCX));
           P.Ins (I.Cmp (O.reg R.RCX, O.imm 0));
           P.Ins (I.Jcc (I.Ne, "loop"));
           P.Ins I.Halt;
         ])
  in
  check_int "sum 10..1" 55 (rax r)

let test_exec_call_ret () =
  let r =
    run
      (prog_l
         [
           P.Ins (I.Mov (O.reg R.RAX, O.imm 1));
           P.Ins (I.Call "f");
           P.Ins (I.Add (O.reg R.RAX, O.imm 100));
           P.Ins I.Halt;
           P.Lbl "f";
           P.Ins (I.Add (O.reg R.RAX, O.imm 10));
           P.Ins I.Ret;
         ])
  in
  check_int "call/ret flow" 111 (rax r)

let test_exec_push_pop () =
  let r =
    run
      (prog
         [
           I.Mov (O.reg R.RBX, O.imm 5);
           I.Push (O.reg R.RBX);
           I.Push (O.imm 7);
           I.Pop R.RAX;
           I.Pop R.RCX;
           I.Halt;
         ])
  in
  check_int "lifo 1" 7 (rax r);
  check_int "lifo 2" 5 (reg r R.RCX)

let test_exec_fall_off_end_halts () =
  let r = run (prog [ I.Nop; I.Nop ]) in
  check_bool "halts" true r.E.halted_normally;
  check_int "2 instrs" 2 r.E.instructions

let test_exec_fuel_bound () =
  let r =
    run
      ~settings:{ E.default_settings with E.fuel = 100 }
      (prog_l [ P.Lbl "spin"; P.Ins (I.Jmp "spin") ])
  in
  check_bool "not halted" false r.E.halted_normally;
  check_int "fuel consumed" 100 r.E.instructions

let test_exec_prefetch_and_rmw () =
  let r =
    run
      (prog
         [
           I.Prefetch (O.abs 0x15000);          (* cache fill, no reg write *)
           I.Mov (O.abs 0x16000, O.imm 7);
           I.Sub (O.abs 0x16000, O.imm 2);      (* rmw sub *)
           I.Imul (O.abs 0x16000, O.imm 3);     (* rmw mul *)
           I.Inc (O.abs 0x16000);
           I.Cpuid;
           I.Halt;
         ])
  in
  check_int "rmw chain" 16 (M.load r.E.machine 0x16000);
  (* prefetch filled the line: a demand load hits *)
  let probe = Cache.Hierarchy.load r.E.hierarchy ~owner:Cache.Owner.Attacker 0x15000 in
  check_bool "prefetched line cached" true probe.Cache.Hierarchy.l1_hit

let test_exec_push_mem_operand () =
  let r =
    run
      (prog
         [
           I.Mov (O.abs 0x17000, O.imm 99);
           I.Push (O.abs 0x17000);
           I.Pop R.RAX;
           I.Halt;
         ])
  in
  check_int "pushed memory value" 99 (rax r)

let test_exec_ret_to_garbage_halts () =
  (* ret with a clobbered return slot terminates instead of wandering *)
  let r =
    run
      (prog_l
         [
           P.Ins (I.Call "f");
           P.Ins I.Halt;
           P.Lbl "f";
           P.Ins (I.Mov (O.mem ~base:R.RSP (), O.imm 99999));
           P.Ins I.Ret;
         ])
  in
  check_bool "halted" true r.E.halted_normally

(* ---- Timing ------------------------------------------------------------------ *)

let test_rdtsc_measures_memory_latency () =
  let timed_load addr =
    [
      I.Mov (O.reg R.R10, O.mem ~disp:addr ()); (* warm the line *)
      I.Lfence;
      I.Rdtsc;
      I.Mov (O.reg R.R8, O.reg R.RAX);
      I.Mov (O.reg R.R10, O.mem ~disp:addr ());
      I.Rdtscp;
      I.Sub (O.reg R.RAX, O.reg R.R8);
      I.Halt;
    ]
  in
  let hit = rax (run (prog (timed_load 0x9000))) in
  let miss_prog =
    [
      I.Lfence;
      I.Rdtsc;
      I.Mov (O.reg R.R8, O.reg R.RAX);
      I.Mov (O.reg R.R10, O.mem ~disp:0xA000 ());
      I.Rdtscp;
      I.Sub (O.reg R.RAX, O.reg R.R8);
      I.Halt;
    ]
  in
  let miss = rax (run (prog miss_prog)) in
  check_bool "hit below threshold" true (hit < Workloads.Attacks.reload_threshold);
  check_bool "miss above threshold" true (miss > Workloads.Attacks.reload_threshold);
  check_bool "gap" true (miss - hit > 100)

let test_clflush_timing_difference () =
  let timed_flush ~warm =
    let pre = if warm then [ I.Mov (O.reg R.R10, O.abs 0xB000) ] else [ I.Nop ] in
    pre
    @ [
        I.Lfence;
        I.Rdtsc;
        I.Mov (O.reg R.R8, O.reg R.RAX);
        I.Clflush (O.abs 0xB000);
        I.Rdtscp;
        I.Sub (O.reg R.RAX, O.reg R.R8);
        I.Halt;
      ]
  in
  let cached = rax (run (prog (timed_flush ~warm:true))) in
  let uncached = rax (run (prog (timed_flush ~warm:false))) in
  check_bool "cached flush slower" true (cached > uncached);
  check_bool "threshold splits" true
    (cached >= Workloads.Attacks.flush_timing_threshold
    && uncached < Workloads.Attacks.flush_timing_threshold)

(* ---- Speculation ---------------------------------------------------------------- *)

let spectre_gadget_prog () =
  prog_l
    [
      P.Ins (I.Mov (O.reg R.RCX, O.imm 6));
      P.Lbl "train";
      P.Ins (I.Mov (O.reg R.RDI, O.imm 1));
      P.Ins (I.Call "gadget");
      P.Ins (I.Dec (O.reg R.RCX));
      P.Ins (I.Cmp (O.reg R.RCX, O.imm 0));
      P.Ins (I.Jcc (I.Ne, "train"));
      P.Ins (I.Mov (O.reg R.RDI, O.imm 1000));
      P.Ins (I.Call "gadget");
      P.Ins I.Halt;
      P.Lbl "gadget";
      P.Ins (I.Cmp (O.reg R.RDI, O.imm 4));
      P.Ins (I.Jcc (I.Uge, "skip"));
      P.Ins (I.Mov (O.reg R.R9, O.imm 123));
      (* the transient load targets an address touched nowhere else *)
      P.Ins (I.Mov (O.reg R.R10, O.mem ~index:R.RDI ~scale:4096 ~disp:0xC0000 ()));
      P.Lbl "skip";
      P.Ins I.Ret;
    ]

let test_transient_cache_effect_persists () =
  let r = run (spectre_gadget_prog ()) in
  (* The out-of-bounds transient load fetched 0xC0000 + 1000*4096, an address
     never architecturally accessed. *)
  let addr = 0xC0000 + (1000 * 4096) in
  let probe = Cache.Hierarchy.load r.E.hierarchy ~owner:Cache.Owner.Attacker addr in
  check_bool "line cached by transient path" true
    (probe.Cache.Hierarchy.l1_hit || probe.Cache.Hierarchy.llc_hit)

let test_no_transient_without_speculation () =
  let r =
    run ~settings:{ E.default_settings with E.spec_window = 0 }
      (spectre_gadget_prog ())
  in
  let addr = 0xC0000 + (1000 * 4096) in
  let probe = Cache.Hierarchy.load r.E.hierarchy ~owner:Cache.Owner.Attacker addr in
  check_bool "no transient fetch with window 0" false
    (probe.Cache.Hierarchy.l1_hit || probe.Cache.Hierarchy.llc_hit)

let test_transient_register_squashed () =
  let r = run (spectre_gadget_prog ()) in
  let r_nospec =
    run ~settings:{ E.default_settings with E.spec_window = 0 }
      (spectre_gadget_prog ())
  in
  (* Architectural register state must be identical with and without
     transient execution. *)
  check_int "r9" (reg r_nospec R.R9) (reg r R.R9);
  check_int "r10" (reg r_nospec R.R10) (reg r R.R10);
  check_int "rax" (rax r_nospec) (rax r)

let test_fence_stops_transient () =
  (* Same gadget, but an lfence guards the transient body: the secret-probe
     address must stay uncached. *)
  let p =
    prog_l
      [
        P.Ins (I.Mov (O.reg R.RCX, O.imm 6));
        P.Lbl "train";
        P.Ins (I.Mov (O.reg R.RDI, O.imm 1));
        P.Ins (I.Call "gadget");
        P.Ins (I.Dec (O.reg R.RCX));
        P.Ins (I.Cmp (O.reg R.RCX, O.imm 0));
        P.Ins (I.Jcc (I.Ne, "train"));
        P.Ins (I.Mov (O.reg R.RDI, O.imm 1000));
        P.Ins (I.Call "gadget");
        P.Ins I.Halt;
        P.Lbl "gadget";
        P.Ins (I.Cmp (O.reg R.RDI, O.imm 4));
        P.Ins (I.Jcc (I.Uge, "skip"));
        P.Ins I.Lfence;
        P.Ins (I.Mov (O.reg R.R10, O.mem ~index:R.RDI ~scale:4096 ~disp:0xC0000 ()));
        P.Lbl "skip";
        P.Ins I.Ret;
      ]
  in
  let r = run p in
  let addr = 0xC0000 + (1000 * 4096) in
  let probe = Cache.Hierarchy.load r.E.hierarchy ~owner:Cache.Owner.Attacker addr in
  check_bool "fence blocked the transient load" false
    (probe.Cache.Hierarchy.l1_hit || probe.Cache.Hierarchy.llc_hit)

(* ---- Protected memory / Meltdown window --------------------------------------------- *)

let protected_settings =
  { E.default_settings with E.protected_range = Some (0x70000, 0x71000) }

let test_fault_kills_without_handler () =
  let p =
    prog [ I.Mov (O.reg R.RAX, O.imm 5); I.Mov (O.reg R.RBX, O.abs 0x70080); I.Nop; I.Halt ]
  in
  let r = run ~settings:protected_settings p in
  check_bool "killed" true r.E.halted_normally;
  (* the instruction after the faulting load never ran: rbx keeps 0 and the
     nop's address was never noted *)
  check_int "rbx unwritten" 0 (reg r R.RBX);
  check_int "nop never retired" 0
    (Hpc.Collector.exec_count r.E.collector ~pc:(P.addr_of_index p 2))

let test_fault_handler_receives_control () =
  let p =
    prog_l
      [
        P.Ins (I.Mov (O.reg R.RBX, O.abs 0x70080));
        P.Ins I.Halt;
        P.Lbl E.fault_handler_label;
        P.Ins (I.Mov (O.reg R.RCX, O.imm 99));
        P.Ins I.Halt;
      ]
  in
  let r = run ~settings:protected_settings p in
  check_int "handler ran" 99 (reg r R.RCX);
  check_int "load squashed" 0 (reg r R.RBX)

let test_fault_transient_footprint () =
  (* Meltdown: the dependent of the faulting load runs transiently and
     caches a secret-indexed line. *)
  let init m = M.store m 0x70080 7 in
  let p =
    prog_l
      [
        P.Ins (I.Mov (O.reg R.R11, O.abs 0x70080));
        P.Ins (I.Mov (O.reg R.R12, O.mem ~index:R.R11 ~scale:4096 ~disp:0x200000 ()));
        P.Ins I.Halt;
        P.Lbl E.fault_handler_label;
        P.Ins I.Halt;
      ]
  in
  let r = run ~settings:protected_settings ~init p in
  let probe =
    Cache.Hierarchy.load r.E.hierarchy ~owner:Cache.Owner.Attacker
      (0x200000 + (7 * 4096))
  in
  check_bool "secret-indexed line cached" true
    (probe.Cache.Hierarchy.l1_hit || probe.Cache.Hierarchy.llc_hit);
  check_int "architectural r12 stays 0" 0 (reg r R.R12)

let test_fault_no_window_without_speculation () =
  let init m = M.store m 0x70080 7 in
  let p =
    prog_l
      [
        P.Ins (I.Mov (O.reg R.R11, O.abs 0x70080));
        P.Ins (I.Mov (O.reg R.R12, O.mem ~index:R.R11 ~scale:4096 ~disp:0x200000 ()));
        P.Ins I.Halt;
        P.Lbl E.fault_handler_label;
        P.Ins I.Halt;
      ]
  in
  let r =
    run ~settings:{ protected_settings with E.spec_window = 0 } ~init p
  in
  let probe =
    Cache.Hierarchy.load r.E.hierarchy ~owner:Cache.Owner.Attacker
      (0x200000 + (7 * 4096))
  in
  check_bool "no footprint with window 0" false
    (probe.Cache.Hierarchy.l1_hit || probe.Cache.Hierarchy.llc_hit)

let test_no_protection_by_default () =
  let init m = M.store m 0x70080 123 in
  let r = run ~init (prog [ I.Mov (O.reg R.RBX, O.abs 0x70080); I.Halt ]) in
  check_int "reads fine" 123 (reg r R.RBX)

(* ---- Victim interleaving ----------------------------------------------------------- *)

let test_victim_shares_cache () =
  let victim =
    ( prog_l
        [
          P.Lbl "v";
          P.Ins (I.Mov (O.reg R.RBX, O.abs 0xE0000));
          P.Ins I.Halt;
        ],
      fun _ -> () )
  in
  let attacker =
    prog_l
      [
        P.Ins (I.Mov (O.reg R.RCX, O.imm 200));
        P.Lbl "spin";
        P.Ins (I.Dec (O.reg R.RCX));
        P.Ins (I.Cmp (O.reg R.RCX, O.imm 0));
        P.Ins (I.Jcc (I.Ne, "spin"));
        P.Ins (I.Mov (O.reg R.RAX, O.abs 0xE0000));
        P.Ins I.Halt;
      ]
  in
  let r = run ~victim attacker in
  (* The architectural load of the victim-cached line hits (the run-ahead at
     the first loop iteration may have recorded one speculative miss before
     the victim ran — realistic HPC behavior). *)
  let c = Hpc.Collector.total_counters r.E.collector in
  check_bool "architectural load hits the victim's line" true
    (Hpc.Counters.get c Hpc.Event.L1d_load_hit >= 1)

let test_victim_restarts () =
  let victim =
    ( prog_l [ P.Ins (I.Mov (O.reg R.RBX, O.abs 0xF0000)); P.Ins I.Halt ],
      fun _ -> () )
  in
  let attacker =
    prog_l
      [
        P.Ins (I.Mov (O.reg R.RCX, O.imm 500));
        P.Lbl "spin";
        P.Ins (I.Dec (O.reg R.RCX));
        P.Ins (I.Cmp (O.reg R.RCX, O.imm 0));
        P.Ins (I.Jcc (I.Ne, "spin"));
        P.Ins I.Halt;
      ]
  in
  let r = run ~victim attacker in
  check_bool "completes with restarting victim" true r.E.halted_normally

(* ---- HPC events during execution ----------------------------------------------------- *)

let test_events_recorded_per_pc () =
  let p = prog [ I.Mov (O.reg R.RAX, O.abs 0x11000); I.Rdtsc; I.Halt ] in
  let r = run p in
  let pc_of i = P.addr_of_index p i in
  check_int "load miss at instr 0" 1
    (Hpc.Counters.get
       (Option.get (Hpc.Collector.counters_at r.E.collector ~pc:(pc_of 0)))
       Hpc.Event.L1d_load_miss);
  check_int "timestamp at instr 1" 1
    (Hpc.Counters.get
       (Option.get (Hpc.Collector.counters_at r.E.collector ~pc:(pc_of 1)))
       Hpc.Event.Timestamp)

let test_access_trace_recorded () =
  let p =
    prog
      [
        I.Mov (O.reg R.RAX, O.abs 0x12000);
        I.Mov (O.abs 0x13000, O.reg R.RAX);
        I.Clflush (O.abs 0x12000);
        I.Halt;
      ]
  in
  let r = run p in
  let accs = Hpc.Collector.accesses r.E.collector in
  check_int "three accesses" 3 (List.length accs);
  let kinds = List.map (fun a -> a.Hpc.Collector.kind) accs in
  check_bool "load, store, flush order" true
    (kinds = [ Hpc.Collector.Load; Hpc.Collector.Store; Hpc.Collector.Flush ]);
  let times = List.map (fun a -> a.Hpc.Collector.time) accs in
  check_bool "times increase" true (List.sort compare times = times)

let test_run_addresses () =
  let h =
    E.run_addresses ~owner:Cache.Owner.Attacker
      [ (0x100, Hpc.Collector.Load); (0x200, Hpc.Collector.Store) ]
  in
  let r = Cache.Hierarchy.load h ~owner:Cache.Owner.Attacker 0x100 in
  check_bool "replayed line cached" true r.Cache.Hierarchy.l1_hit

(* ---- determinism ---------------------------------------------------------------------- *)

let prop_execution_deterministic =
  QCheck.Test.make ~name:"execution is deterministic" ~count:20
    QCheck.small_int
    (fun seed ->
      let g = Workloads.Benign.generate (Sutil.Rng.create seed) in
      let run () =
        let r = E.run ~init:g.Workloads.Benign.init g.Workloads.Benign.program in
        ( r.E.instructions,
          r.E.cycles,
          M.fold_mem r.E.machine ~init:0 ~f:(fun a v acc -> acc lxor (a * 31) lxor v) )
      in
      run () = run ())

let prop_attack_runs_deterministic =
  QCheck.Test.make ~name:"attack runs are deterministic" ~count:4
    QCheck.unit
    (fun () ->
      let go () =
        let r = Workloads.Attacks.run_spec
            (Workloads.Attacks.flush_reload ~style:Workloads.Attacks.Iaik ()) in
        (r.E.instructions, r.E.cycles,
         Array.to_list (Workloads.Attacks.result_histogram r))
      in
      go () = go ())

let () =
  Alcotest.run "cpu"
    [
      ( "machine",
        [
          Alcotest.test_case "regs/mem" `Quick test_machine_regs_mem;
          Alcotest.test_case "snapshot isolation" `Quick test_machine_snapshot_isolated;
          Alcotest.test_case "conditions" `Quick test_machine_conditions;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "2-bit training" `Quick test_predictor_training;
          Alcotest.test_case "btb" `Quick test_predictor_btb;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "mov/alu" `Quick test_exec_mov_alu;
          Alcotest.test_case "shifts/inc/dec" `Quick test_exec_shifts_incdec;
          Alcotest.test_case "memory ops" `Quick test_exec_memory_ops;
          Alcotest.test_case "lea" `Quick test_exec_lea;
          Alcotest.test_case "loop" `Quick test_exec_loop;
          Alcotest.test_case "call/ret" `Quick test_exec_call_ret;
          Alcotest.test_case "push/pop" `Quick test_exec_push_pop;
          Alcotest.test_case "fall off end" `Quick test_exec_fall_off_end_halts;
          Alcotest.test_case "fuel bound" `Quick test_exec_fuel_bound;
          Alcotest.test_case "prefetch and rmw" `Quick test_exec_prefetch_and_rmw;
          Alcotest.test_case "push mem operand" `Quick test_exec_push_mem_operand;
          Alcotest.test_case "ret to garbage halts" `Quick
            test_exec_ret_to_garbage_halts;
        ] );
      ( "timing",
        [
          Alcotest.test_case "rdtsc hit/miss gap" `Quick test_rdtsc_measures_memory_latency;
          Alcotest.test_case "clflush timing" `Quick test_clflush_timing_difference;
        ] );
      ( "speculation",
        [
          Alcotest.test_case "transient cache effect persists" `Quick
            test_transient_cache_effect_persists;
          Alcotest.test_case "no transient with window 0" `Quick
            test_no_transient_without_speculation;
          Alcotest.test_case "transient registers squashed" `Quick
            test_transient_register_squashed;
          Alcotest.test_case "fence stops transient" `Quick test_fence_stops_transient;
        ] );
      ( "faults",
        [
          Alcotest.test_case "kills without handler" `Quick
            test_fault_kills_without_handler;
          Alcotest.test_case "handler receives control" `Quick
            test_fault_handler_receives_control;
          Alcotest.test_case "transient footprint (Meltdown)" `Quick
            test_fault_transient_footprint;
          Alcotest.test_case "no window without speculation" `Quick
            test_fault_no_window_without_speculation;
          Alcotest.test_case "no protection by default" `Quick
            test_no_protection_by_default;
        ] );
      ( "victim",
        [
          Alcotest.test_case "shares cache" `Quick test_victim_shares_cache;
          Alcotest.test_case "restarts" `Quick test_victim_restarts;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest prop_execution_deterministic;
          QCheck_alcotest.to_alcotest prop_attack_runs_deterministic;
        ] );
      ( "collection",
        [
          Alcotest.test_case "events per pc" `Quick test_events_recorded_per_pc;
          Alcotest.test_case "access trace" `Quick test_access_trace_recorded;
          Alcotest.test_case "run_addresses" `Quick test_run_addresses;
        ] );
    ]
