(* Tests for the experiment harness: small-N versions of every table and
   figure must reproduce the paper's qualitative shape. *)

module L = Workloads.Label
module E = Experiments

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Common --------------------------------------------------------------- *)

let test_label_int_roundtrip () =
  List.iter
    (fun l ->
      check_bool "roundtrip" true
        (L.equal l (E.Common.label_of_int (E.Common.label_to_int l))))
    L.all

let test_repository_families () =
  let rng = Sutil.Rng.create 81 in
  let repo = E.Common.repository ~rng [ L.Fr_family; L.Spectre_pp ] in
  check_int "two pocs" 2 (List.length repo);
  Alcotest.(check (list string)) "family names" [ "FR-F"; "S-PP" ]
    (List.map (fun p -> p.Scaguard.Detector.family) repo)

let test_binarize () =
  check_bool "attack collapses" true
    (L.equal (E.Common.binarize L.Spectre_pp) L.Fr_family);
  check_bool "benign stays" true (L.equal (E.Common.binarize L.Benign) L.Benign)

(* Regression: unknown family names used to be dropped silently, so a typo
   shrank the repository instead of failing the command. *)
let test_families_of_strings () =
  (match E.Common.families_of_strings [ "FR-F"; "S-PP" ] with
  | Ok fams ->
    Alcotest.(check (list string))
      "valid names map" [ "FR-F"; "S-PP" ] (List.map L.to_string fams)
  | Error e -> Alcotest.failf "valid names rejected: %s" (Scaguard.Err.to_string e));
  (match E.Common.families_of_strings [ "FR-F"; "BOGUS" ] with
  | Error (Scaguard.Err.Invalid_config { field = "families"; value; _ }) ->
    check_bool "unknown name reported" true
      (let len = String.length value in
       len >= 5
       && List.exists
            (fun i -> String.sub value i 5 = "BOGUS")
            (List.init (len - 4) Fun.id))
  | Error e -> Alcotest.failf "wrong error: %s" (Scaguard.Err.to_string e)
  | Ok _ -> Alcotest.fail "typo silently accepted");
  match E.Common.families_of_strings [] with
  | Error Scaguard.Err.Empty_repository -> ()
  | Error e -> Alcotest.failf "wrong error on []: %s" (Scaguard.Err.to_string e)
  | Ok _ -> Alcotest.fail "empty list accepted"

(* ---- Table IV ---------------------------------------------------------------- *)

let test_table4_shape () =
  let rng = Sutil.Rng.create 82 in
  let rows = E.Table4.evaluate ~rng ~per_family:2 in
  check_int "four rows" 4 (List.length rows);
  List.iter
    (fun (r : E.Table4.row) ->
      check_bool "has blocks" true (r.E.Table4.bb > 0);
      check_bool "truth nonempty" true (r.E.Table4.tab > 0);
      check_bool "identified <= all" true (r.E.Table4.iab <= r.E.Table4.bb);
      check_bool "itab <= tab" true (r.E.Table4.itab <= r.E.Table4.tab);
      check_bool
        (L.to_string r.E.Table4.family ^ " accuracy >= 0.9")
        true
        (r.E.Table4.accuracy >= 0.9))
    rows;
  let avg = E.Table4.average rows in
  check_bool "avg accuracy >= 0.9" true (avg.E.Table4.accuracy >= 0.9)

(* ---- Table V ------------------------------------------------------------------ *)

let test_table5_shape () =
  let rng = Sutil.Rng.create 83 in
  let rows = E.Table5.evaluate ~rng in
  check_int "five scenarios" 5 (List.length rows);
  let score id =
    (List.find (fun r -> r.E.Table5.id = id) rows).E.Table5.score
  in
  (* the paper's qualitative ordering: S1 highest, attack scenarios all
     above the benign one; benign low *)
  check_bool "S1 > S2" true (score "S1" > score "S2");
  check_bool "S2 > benign" true (score "S2" > score "S5");
  check_bool "S3 > benign" true (score "S3" > score "S5");
  check_bool "S4 > benign" true (score "S4" > score "S5");
  check_bool "S1 high" true (score "S1" > 0.85);
  check_bool "benign below threshold" true
    (score "S5" < Scaguard.Detector.default_threshold)

(* ---- Table VI ------------------------------------------------------------------- *)

let test_table6_e1_scaguard_wins () =
  let rng = Sutil.Rng.create 84 in
  let td = E.Table6.prepare ~rng ~per_family:6 E.Table6.E1 in
  let scaguard = E.Table6.evaluate_approach ~rng td E.Table6.Scaguard in
  let scadet = E.Table6.evaluate_approach ~rng td E.Table6.Scadet in
  check_bool "scaguard strong" true (scaguard.Ml.Metrics.f1 >= 0.9);
  check_bool "scaguard beats scadet" true
    (scaguard.Ml.Metrics.f1 > scadet.Ml.Metrics.f1)

let test_table6_e3_generalizability () =
  let rng = Sutil.Rng.create 85 in
  let td = E.Table6.prepare ~rng ~per_family:6 E.Table6.E3_pp_from_fr in
  let scaguard = E.Table6.evaluate_approach ~rng td E.Table6.Scaguard in
  (* SCAGuard detects the unseen family via similarity to the known one *)
  check_bool "cross-family recall" true (scaguard.Ml.Metrics.recall >= 0.8)

let test_table6_e4_obfuscation_robustness () =
  let rng = Sutil.Rng.create 86 in
  let td = E.Table6.prepare ~rng ~per_family:8 E.Table6.E4 in
  let scaguard = E.Table6.evaluate_approach ~rng td E.Table6.Scaguard in
  let scadet = E.Table6.evaluate_approach ~rng td E.Table6.Scadet in
  check_bool "robust to obfuscation" true (scaguard.Ml.Metrics.f1 >= 0.8);
  check_bool "rules are not" true (scadet.Ml.Metrics.f1 < 0.5);
  check_bool "scaguard beats the rules" true
    (scaguard.Ml.Metrics.f1 > scadet.Ml.Metrics.f1)

(* ---- Fig 5 ------------------------------------------------------------------------ *)

let test_fig5_plateau () =
  let rng = Sutil.Rng.create 87 in
  let points =
    E.Fig5.evaluate ~rng ~per_family:6
      ~thresholds:[ 0.1; 0.3; 0.5; 0.55; 0.6; 0.65; 0.8; 0.95 ] ()
  in
  check_int "all thresholds evaluated" 8 (List.length points);
  (* extreme thresholds hurt; some middle threshold reaches >= 0.9 F1 *)
  let f1_at t =
    (List.find (fun p -> p.E.Fig5.threshold = t) points).E.Fig5.f1
  in
  check_bool "plateau exists" true
    (List.exists (fun p -> p.E.Fig5.f1 >= 0.9) points);
  check_bool "too-high threshold degrades" true (f1_at 0.95 < f1_at 0.6);
  match E.Fig5.plateau points with
  | Some (lo, hi) ->
    check_bool "plateau covers the default" true
      (lo <= Scaguard.Detector.default_threshold
      && Scaguard.Detector.default_threshold <= hi)
  | None -> Alcotest.fail "no >=0.9 plateau found"

(* ---- Ablation --------------------------------------------------------------------- *)

let test_ablation_full_is_best_or_close () =
  let rng = Sutil.Rng.create 88 in
  let f1_of variant =
    (E.Ablation.detection_scores ~rng:(Sutil.Rng.copy rng) ~per_family:4 variant)
      .Ml.Metrics.f1
  in
  let full = f1_of E.Ablation.Full in
  check_bool "full pipeline strong" true (full >= 0.85);
  (* dropping the relevance filter hurts or at best ties *)
  let no_step2 = f1_of E.Ablation.No_step2 in
  check_bool "set-overlap elimination helps" true (no_step2 <= full +. 1e-9)

let test_ablation_model_variants_build () =
  let rng = Sutil.Rng.create 89 in
  let sample =
    List.hd (Workloads.Dataset.mutated_attacks ~rng ~count:1 L.Fr_family)
  in
  let run = E.Common.execute sample in
  List.iter
    (fun v ->
      let m = E.Ablation.model_of_run v run in
      check_bool
        (E.Ablation.variant_name v ^ " model builds")
        true
        (Scaguard.Model.length m >= 0))
    E.Ablation.variants

(* ---- Datasets ---------------------------------------------------------------------- *)

let test_dataset_tables_render () =
  let rng = Sutil.Rng.create 90 in
  let t2 = E.Datasets.table2 ~rng ~per_family:2 in
  let t3 = E.Datasets.table3 ~rng ~count:8 in
  check_bool "table2 renders" true (String.length (Sutil.Table.render t2) > 0);
  check_bool "table3 renders" true (String.length (Sutil.Table.render t3) > 0)

let () =
  Alcotest.run "experiments"
    [
      ( "common",
        [
          Alcotest.test_case "label roundtrip" `Quick test_label_int_roundtrip;
          Alcotest.test_case "repository" `Quick test_repository_families;
          Alcotest.test_case "binarize" `Quick test_binarize;
          Alcotest.test_case "families of strings" `Quick
            test_families_of_strings;
        ] );
      ("table4", [ Alcotest.test_case "shape" `Slow test_table4_shape ]);
      ("table5", [ Alcotest.test_case "shape" `Slow test_table5_shape ]);
      ( "table6",
        [
          Alcotest.test_case "E1 scaguard wins" `Slow test_table6_e1_scaguard_wins;
          Alcotest.test_case "E3 generalizability" `Slow test_table6_e3_generalizability;
          Alcotest.test_case "E4 obfuscation" `Slow test_table6_e4_obfuscation_robustness;
        ] );
      ("fig5", [ Alcotest.test_case "plateau" `Slow test_fig5_plateau ]);
      ( "ablation",
        [
          Alcotest.test_case "full is best" `Slow test_ablation_full_is_best_or_close;
          Alcotest.test_case "variants build" `Slow test_ablation_model_variants_build;
        ] );
      ("datasets", [ Alcotest.test_case "tables render" `Quick test_dataset_tables_render ]);
    ]
