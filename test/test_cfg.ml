(* Tests for the CFG library: basic-block splitting, edges, back-edge
   elimination, bounded path search and the maximum spanning forest. *)

module I = Isa.Instr
module O = Isa.Operand
module R = Isa.Reg
module P = Isa.Program
module G = Cfg.Graph
module BB = Cfg.Basic_block

let check_int = Alcotest.(check int)
let _check_bool = Alcotest.(check bool)
let check_ints = Alcotest.(check (list int))

(* A diamond with a loop:
   0: entry -> 1 | 2 ; 1 -> 3 ; 2 -> 3 ; 3 -> (loop back to 0) | 4(exit) *)
let diamond_loop () =
  P.assemble ~name:"d"
    [
      P.Lbl "top";
      P.Ins (I.Cmp (O.reg R.RAX, O.imm 0));      (* BB0 *)
      P.Ins (I.Jcc (I.Eq, "right"));
      P.Ins (I.Add (O.reg R.RBX, O.imm 1));      (* BB1 (left) *)
      P.Ins (I.Jmp "join");
      P.Lbl "right";
      P.Ins (I.Add (O.reg R.RBX, O.imm 2));      (* BB2 *)
      P.Lbl "join";
      P.Ins (I.Dec (O.reg R.RCX));               (* BB3 *)
      P.Ins (I.Cmp (O.reg R.RCX, O.imm 0));
      P.Ins (I.Jcc (I.Ne, "top"));
      P.Ins I.Halt;                              (* BB4 *)
    ]

let test_block_splitting () =
  let g = G.of_program (diamond_loop ()) in
  check_int "five blocks" 5 (G.n_blocks g);
  let b0 = G.block g 0 in
  check_int "entry first" 0 b0.BB.first;
  check_int "entry last" 1 b0.BB.last;
  check_int "entry size" 2 (BB.size b0)

let test_edges () =
  let g = G.of_program (diamond_loop ()) in
  check_ints "entry branches" [ 1; 2 ] (G.succs g 0);
  check_ints "left joins" [ 3 ] (G.succs g 1);
  check_ints "right falls through" [ 3 ] (G.succs g 2);
  check_ints "join loops or exits" [ 0; 4 ] (G.succs g 3);
  check_ints "exit terminal" [] (G.succs g 4);
  check_ints "join preds" [ 1; 2 ] (G.preds g 3);
  check_int "edge count" 6 (G.n_edges g)

let test_block_lookup () =
  let p = diamond_loop () in
  let g = G.of_program p in
  check_int "instr 2 in BB1" 1 (G.block_of_index g 2).BB.id;
  let addr = P.addr_of_index p 4 in
  check_int "addr lookup" 2 (Option.get (G.block_of_addr g addr)).BB.id;
  Alcotest.(check bool) "foreign addr" true (G.block_of_addr g 0x9999999 = None)

let test_call_edges () =
  let p =
    P.assemble ~name:"c"
      [
        P.Ins (I.Call "f");     (* BB0 -> f and fallthrough *)
        P.Ins I.Halt;           (* BB1 *)
        P.Lbl "f";
        P.Ins I.Ret;            (* BB2, no successors *)
      ]
  in
  let g = G.of_program p in
  check_ints "call edges" [ 1; 2 ] (G.succs g 0);
  check_ints "ret terminal" [] (G.succs g 2)

let test_back_edges () =
  let g = G.of_program (diamond_loop ()) in
  let back = Cfg.Back_edge.find g in
  Alcotest.(check (list (pair int int))) "loop edge" [ (3, 0) ] back;
  let acyclic = Cfg.Back_edge.acyclic_succs g in
  check_ints "join without back edge" [ 4 ] acyclic.(3);
  check_ints "others untouched" [ 1; 2 ] acyclic.(0)

let test_back_edges_unreachable_cycle () =
  (* A cycle not reachable from the entry must still be broken. *)
  let p =
    P.assemble ~name:"u"
      [
        P.Ins I.Halt;             (* entry, terminal *)
        P.Lbl "island";
        P.Ins (I.Inc (O.reg R.RAX));
        P.Ins (I.Jmp "island");
      ]
  in
  let g = G.of_program p in
  let acyclic = Cfg.Back_edge.acyclic_succs g in
  let total = Array.fold_left (fun n l -> n + List.length l) 0 acyclic in
  (* the island's self-loop edge is gone *)
  check_int "broken" (G.n_edges g - 1) total

(* ---- Paths --------------------------------------------------------------- *)

let test_best_path_prefers_high_hpc () =
  (* 0 -> 1 -> 3 and 0 -> 2 -> 3; node 1 is hot. *)
  let succs = [| [ 1; 2 ]; [ 3 ]; [ 3 ]; [] |] in
  let hpc = function 1 -> 100.0 | 2 -> 1.0 | _ -> 0.0 in
  let relevant b = b = 0 || b = 3 in
  let p =
    Option.get
      (Cfg.Paths.best_between ~succs ~hpc ~relevant ~src:0 ~dst:3 ())
  in
  check_ints "hot path" [ 0; 1; 3 ] p.Cfg.Paths.nodes;
  Alcotest.(check (float 1e-9)) "score is interior mean" 100.0 p.Cfg.Paths.score

let test_direct_edge_is_max () =
  let succs = [| [ 1 ]; [] |] in
  let p =
    Option.get
      (Cfg.Paths.best_between ~succs ~hpc:(fun _ -> 0.0)
         ~relevant:(fun _ -> true) ~src:0 ~dst:1 ())
  in
  Alcotest.(check (float 1e-9)) "MAX" Cfg.Paths.max_score p.Cfg.Paths.score

let test_paths_avoid_relevant_interior () =
  (* 0 -> 1 -> 2 where 1 is also relevant: no valid path 0 -> 2. *)
  let succs = [| [ 1 ]; [ 2 ]; [] |] in
  let relevant b = b <> 99 in
  Alcotest.(check bool) "no path through relevant node" true
    (Cfg.Paths.best_between ~succs ~hpc:(fun _ -> 1.0) ~relevant ~src:0 ~dst:2 ()
    = None)

let test_paths_none_when_disconnected () =
  let succs = [| []; [] |] in
  Alcotest.(check bool) "disconnected" true
    (Cfg.Paths.best_between ~succs ~hpc:(fun _ -> 0.0)
       ~relevant:(fun _ -> false) ~src:0 ~dst:1 ()
    = None)

(* ---- MST ------------------------------------------------------------------ *)

let edge u v weight = { Cfg.Mst.u; v; weight; payload = [ u; v ] }

let test_mst_picks_heaviest () =
  (* triangle: 0-1 (10), 1-2 (20), 0-2 (5): forest keeps the two heaviest *)
  let edges = [ edge 0 1 10.0; edge 1 2 20.0; edge 0 2 5.0 ] in
  let forest = Cfg.Mst.maximum_spanning_forest ~nodes:[ 0; 1; 2 ] ~edges in
  check_int "two edges" 2 (List.length forest);
  let weights = List.sort compare (List.map (fun e -> e.Cfg.Mst.weight) forest) in
  Alcotest.(check (list (float 1e-9))) "weights" [ 10.0; 20.0 ] weights

let test_mst_forest_for_disconnected () =
  let edges = [ edge 0 1 1.0; edge 2 3 1.0 ] in
  let forest = Cfg.Mst.maximum_spanning_forest ~nodes:[ 0; 1; 2; 3 ] ~edges in
  check_int "two components, two edges" 2 (List.length forest)

let test_mst_isolated_nodes_kept_out () =
  let forest = Cfg.Mst.maximum_spanning_forest ~nodes:[ 0; 1 ] ~edges:[] in
  check_int "no edges" 0 (List.length forest)

let prop_mst_edge_count =
  (* On a random connected-ish graph, a spanning forest has <= n-1 edges and
     never more edges than components allow. *)
  QCheck.Test.make ~name:"spanning forest edge count" ~count:100
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 0 20)
           (triple (int_range 0 7) (int_range 0 7) (float_range 0.0 10.0))))
    (fun raw ->
      let edges =
        List.filter_map
          (fun (u, v, w) -> if u <> v then Some (edge u v w) else None)
          raw
      in
      let nodes = [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
      let forest = Cfg.Mst.maximum_spanning_forest ~nodes ~edges in
      List.length forest <= List.length nodes - 1)

(* ---- Dot ------------------------------------------------------------------ *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_dot_renders () =
  let g = G.of_program (diamond_loop ()) in
  let dot = Cfg.Dot.of_graph ~highlight:[ 1 ] g in
  Alcotest.(check bool) "digraph" true (contains dot "digraph cfg");
  Alcotest.(check bool) "edge rendered" true (contains dot "n0 -> n1");
  Alcotest.(check bool) "highlight filled" true (contains dot "fillcolor");
  let ag = Cfg.Dot.of_attack_graph g ~relevant:[ 0 ] ~nodes:[ 0; 1 ] ~edges:[ (0, 1) ] in
  Alcotest.(check bool) "attack graph digraph" true (contains ag "digraph attack_graph");
  Alcotest.(check bool) "solid attack edge" true (contains ag "penwidth=2")

let () =
  Alcotest.run "cfg"
    [
      ( "graph",
        [
          Alcotest.test_case "block splitting" `Quick test_block_splitting;
          Alcotest.test_case "edges" `Quick test_edges;
          Alcotest.test_case "block lookup" `Quick test_block_lookup;
          Alcotest.test_case "call edges" `Quick test_call_edges;
        ] );
      ( "back_edge",
        [
          Alcotest.test_case "loop edge found" `Quick test_back_edges;
          Alcotest.test_case "unreachable cycle broken" `Quick
            test_back_edges_unreachable_cycle;
        ] );
      ( "paths",
        [
          Alcotest.test_case "prefers high HPC" `Quick test_best_path_prefers_high_hpc;
          Alcotest.test_case "direct edge is MAX" `Quick test_direct_edge_is_max;
          Alcotest.test_case "avoids relevant interior" `Quick
            test_paths_avoid_relevant_interior;
          Alcotest.test_case "none when disconnected" `Quick
            test_paths_none_when_disconnected;
        ] );
      ( "dot", [ Alcotest.test_case "renders" `Quick test_dot_renders ] );
      ( "mst",
        [
          Alcotest.test_case "picks heaviest" `Quick test_mst_picks_heaviest;
          Alcotest.test_case "forest for disconnected" `Quick
            test_mst_forest_for_disconnected;
          Alcotest.test_case "isolated nodes" `Quick test_mst_isolated_nodes_kept_out;
          QCheck_alcotest.to_alcotest prop_mst_edge_count;
        ] );
    ]
