(* Tests for the HPC library: Table I events, counter banks and the runtime
   data collector. *)

module Ev = Hpc.Event
module Ct = Hpc.Counters
module Col = Hpc.Collector

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_event_roundtrip () =
  List.iter
    (fun e -> check_bool "roundtrip" true (Ev.equal e (Ev.of_index (Ev.index e))))
    Ev.all;
  check_int "twelve events" 12 Ev.count

let test_event_hpc_value_membership () =
  check_bool "timestamp excluded" false (Ev.counted_in_hpc_value Ev.Timestamp);
  check_int "eleven counted" 11
    (List.length (List.filter Ev.counted_in_hpc_value Ev.all))

let test_counters_basic () =
  let c = Ct.create () in
  check_int "empty total" 0 (Ct.total c);
  Ct.incr c Ev.L1d_load_miss;
  Ct.incr c Ev.L1d_load_miss;
  Ct.add c Ev.Timestamp 5;
  check_int "get" 2 (Ct.get c Ev.L1d_load_miss);
  check_int "total includes timestamp" 7 (Ct.total c);
  check_int "hpc value excludes timestamp" 2 (Ct.hpc_value c);
  check_int "assoc size" 2 (List.length (Ct.to_assoc c))

let test_counters_merge_copy_reset () =
  let a = Ct.create () and b = Ct.create () in
  Ct.incr a Ev.Branch_miss;
  Ct.incr b Ev.Branch_miss;
  Ct.incr b Ev.Cache_miss;
  Ct.merge_into ~dst:a b;
  check_int "merged" 2 (Ct.get a Ev.Branch_miss);
  check_int "merged other" 1 (Ct.get a Ev.Cache_miss);
  let c = Ct.copy a in
  Ct.reset a;
  check_int "reset" 0 (Ct.total a);
  check_int "copy unaffected" 3 (Ct.total c)

let test_counters_vector () =
  let c = Ct.create () in
  Ct.incr c Ev.Llc_load_hit;
  let v = Ct.to_vector c in
  check_int "dense length" Ev.count (Array.length v);
  Alcotest.(check (float 0.0)) "slot" 1.0 v.(Ev.index Ev.Llc_load_hit)

let test_collector_events_and_values () =
  let col = Col.create () in
  Col.record_event col ~pc:0x10 Ev.L1d_load_miss;
  Col.record_event col ~pc:0x10 Ev.Llc_load_miss;
  Col.record_event col ~pc:0x20 Ev.Timestamp;
  check_int "hpc value at 0x10" 2 (Col.hpc_value_at col ~pc:0x10);
  check_int "timestamp-only pc has 0" 0 (Col.hpc_value_at col ~pc:0x20);
  check_int "unknown pc" 0 (Col.hpc_value_at col ~pc:0x30);
  check_int "total" 3 (Ct.total (Col.total_counters col))

let test_collector_accesses () =
  let col = Col.create () in
  Col.record_access col ~pc:1 ~target:100 ~kind:Col.Load ~time:5;
  Col.record_access col ~pc:2 ~target:200 ~kind:Col.Flush ~time:9;
  Col.record_access col ~pc:1 ~target:300 ~kind:Col.Store ~time:12;
  check_int "count" 3 (Col.access_count col);
  let accs = Col.accesses col in
  check_bool "chronological" true
    (List.map (fun a -> a.Col.time) accs = [ 5; 9; 12 ]);
  check_int "per-pc filter" 2 (List.length (Col.accesses_of_pc col ~pc:1))

let test_collector_first_time_and_counts () =
  let col = Col.create () in
  Col.note_executed col ~pc:0x40 ~time:100;
  Col.note_executed col ~pc:0x40 ~time:200;
  Col.note_executed col ~pc:0x44 ~time:150;
  Alcotest.(check (option int)) "first kept" (Some 100) (Col.first_time col ~pc:0x40);
  check_int "exec count" 2 (Col.exec_count col ~pc:0x40);
  check_int "unknown count" 0 (Col.exec_count col ~pc:0x99);
  Alcotest.(check (list int)) "executed pcs sorted" [ 0x40; 0x44 ]
    (Col.executed_pcs col)

let prop_hpc_value_matches_manual_sum =
  QCheck.Test.make ~name:"hpc_value = sum of 11 counted events" ~count:200
    (QCheck.make
       QCheck.Gen.(list_size (int_range 0 50) (int_range 0 (Ev.count - 1))))
    (fun indices ->
      let c = Ct.create () in
      List.iter (fun i -> Ct.incr c (Ev.of_index i)) indices;
      let manual =
        List.length (List.filter (fun i -> Ev.counted_in_hpc_value (Ev.of_index i)) indices)
      in
      Ct.hpc_value c = manual)

let () =
  Alcotest.run "hpc"
    [
      ( "event",
        [
          Alcotest.test_case "index roundtrip" `Quick test_event_roundtrip;
          Alcotest.test_case "hpc-value membership" `Quick
            test_event_hpc_value_membership;
        ] );
      ( "counters",
        [
          Alcotest.test_case "basic" `Quick test_counters_basic;
          Alcotest.test_case "merge/copy/reset" `Quick test_counters_merge_copy_reset;
          Alcotest.test_case "vector" `Quick test_counters_vector;
          QCheck_alcotest.to_alcotest prop_hpc_value_matches_manual_sum;
        ] );
      ( "collector",
        [
          Alcotest.test_case "events and values" `Quick test_collector_events_and_values;
          Alcotest.test_case "accesses" `Quick test_collector_accesses;
          Alcotest.test_case "first time / counts" `Quick
            test_collector_first_time_and_counts;
        ] );
    ]
