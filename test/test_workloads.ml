(* Tests for the workload substrate: every attack PoC leaks its planted
   secret, mutation preserves attack behavior, obfuscation inflates basic
   blocks without breaking attacks, benign programs terminate, and dataset
   assembly works end to end. *)

module A = Workloads.Attacks
module D = Workloads.Dataset
module L = Workloads.Label

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let victim_values = [ 2; 3; 5 ] (* the default victim secret's alphabet *)

let guess_excluding_training res =
  (* Spectre PoCs architecturally touch probe line 0 during training; the
     recovery step skips known-training lines, like real PoCs do. *)
  let h = A.result_histogram res in
  let best = ref 1 in
  Array.iteri (fun i v -> if i >= 1 && v > h.(!best) then best := i) h;
  !best

(* ---- attack leakage -------------------------------------------------------- *)

let leak_case name spec ~check =
  Alcotest.test_case name `Quick (fun () ->
      let res = A.run_spec spec in
      check_bool "halted" true res.Cpu.Exec.halted_normally;
      check res)

let check_victim_alphabet res =
  check_bool "recovers a victim value" true
    (List.mem (A.secret_guess res) victim_values)

let check_spectre_secret expected res =
  check_int "recovers the planted secret" expected (guess_excluding_training res)

let leakage_tests =
  [
    leak_case "FR-IAIK leaks" (A.flush_reload ~style:A.Iaik ())
      ~check:check_victim_alphabet;
    leak_case "FR-Mastik leaks" (A.flush_reload ~style:A.Mastik ())
      ~check:check_victim_alphabet;
    leak_case "FR-Nepoche leaks" (A.flush_reload ~style:A.Nepoche ())
      ~check:check_victim_alphabet;
    leak_case "FF leaks" (A.flush_flush ()) ~check:check_victim_alphabet;
    leak_case "ER leaks" (A.evict_reload ()) ~check:check_victim_alphabet;
    leak_case "PP-IAIK leaks" (A.prime_probe ~style:A.Iaik ())
      ~check:check_victim_alphabet;
    leak_case "PP-Jzhang leaks" (A.prime_probe ~style:A.Jzhang ())
      ~check:check_victim_alphabet;
    leak_case "Spectre-FR-Classic leaks" (A.spectre_fr ~style:A.Classic ())
      ~check:(check_spectre_secret 11);
    leak_case "Spectre-FR-Idea leaks" (A.spectre_fr ~style:A.Idea ())
      ~check:(check_spectre_secret 11);
    leak_case "Spectre-FR-Good leaks" (A.spectre_fr ~style:A.Good ())
      ~check:(check_spectre_secret 11);
    leak_case "Spectre-PP leaks" (A.spectre_pp ())
      ~check:(fun res ->
        check_int "recovers the planted secret" 5 (guess_excluding_training res));
  ]

let test_meltdown_extension_leaks () =
  let res = A.run_spec (A.meltdown_fr ()) in
  check_bool "halted" true res.Cpu.Exec.halted_normally;
  (* the secret lives behind the protected range; only the deferred-fault
     transient window can reveal it *)
  check_int "kernel secret recovered" 11 (A.secret_guess res)

let test_meltdown_needs_transient_window () =
  let spec = A.meltdown_fr () in
  let settings =
    match spec.A.settings with
    | Some s -> { s with Cpu.Exec.spec_window = 0 }
    | None -> Alcotest.fail "meltdown must carry settings"
  in
  let res = A.run_spec ~settings spec in
  let h = A.result_histogram res in
  check_int "no leak without the window" 0 h.(11)

let test_cross_core_leakage () =
  (* the shared-memory and LLC attacks still leak when attacker and victim
     sit on different cores with private L1s *)
  List.iter
    (fun (s : A.spec) ->
      match s.A.label with
      | L.Fr_family | L.Pp_family ->
        let res = A.run_spec_cross_core s in
        let h = A.result_histogram res in
        let signal = h.(2) + h.(3) + h.(5) in
        let noise = h.(1) + h.(4) + h.(6) + h.(7) in
        check_bool (s.A.name ^ " leaks cross-core") true (signal > noise)
      | _ -> ())
    (A.base_pocs ())

let test_all_pocs_have_ground_truth () =
  List.iter
    (fun (s : A.spec) ->
      check_bool
        (s.A.name ^ " has attack tags")
        true
        (Isa.Program.tagged_indices s.A.program Isa.Program.attack_tag <> []))
    (A.base_pocs ())

let test_base_pocs_count () =
  check_int "eleven collected PoCs" 11 (List.length (A.base_pocs ()))

(* ---- mutation ----------------------------------------------------------------- *)

let test_mutation_preserves_leakage () =
  let rng = Sutil.Rng.create 404 in
  List.iter
    (fun (s : A.spec) ->
      let m =
        Workloads.Mutate.mutate ~intensity:Workloads.Mutate.heavy ~rng
          ~name:(s.A.name ^ "-mut") s.A.program
      in
      let res = A.run_spec { s with A.program = m } in
      check_bool (s.A.name ^ " halts") true res.Cpu.Exec.halted_normally;
      match s.A.label with
      | L.Fr_family | L.Pp_family ->
        check_bool
          (s.A.name ^ " mutant still leaks")
          true
          (List.mem (A.secret_guess res) victim_values)
      | L.Spectre_fr ->
        check_int (s.A.name ^ " mutant still leaks") 11
          (guess_excluding_training res)
      | L.Spectre_pp ->
        check_int (s.A.name ^ " mutant still leaks") 5
          (guess_excluding_training res)
      | L.Benign -> ())
    (A.base_pocs ())

let test_mutation_changes_syntax () =
  let rng = Sutil.Rng.create 7 in
  let s = A.flush_reload ~style:A.Iaik () in
  let m = Workloads.Mutate.mutate ~rng ~name:"m" s.A.program in
  check_bool "program differs" true
    (Isa.Program.length m <> Isa.Program.length s.A.program
    || Array.exists2 (fun a b -> not (Isa.Instr.equal a b))
         (Isa.Program.code m) (Isa.Program.code s.A.program))

let test_mutation_preserves_tags () =
  let rng = Sutil.Rng.create 8 in
  let s = A.flush_reload ~style:A.Iaik () in
  let m = Workloads.Mutate.mutate ~rng ~name:"m" s.A.program in
  check_bool "attack tags survive" true
    (Isa.Program.tagged_indices m Isa.Program.attack_tag <> [])

let test_mutation_benign_semantics () =
  (* A mutated benign kernel computes the same result. *)
  let rng = Sutil.Rng.create 9 in
  let g = Workloads.Benign.build "bubble-sort" (Sutil.Rng.create 1) in
  let run p =
    let res = Cpu.Exec.run ~init:g.Workloads.Benign.init p in
    (* read back the sorted prefix *)
    List.init 16 (fun i ->
        Cpu.Machine.load res.Cpu.Exec.machine (Workloads.Layout.benign_data_base + (8 * i)))
  in
  let base = run g.Workloads.Benign.program in
  let mutated =
    run (Workloads.Mutate.mutate ~intensity:Workloads.Mutate.heavy ~rng ~name:"m"
           g.Workloads.Benign.program)
  in
  Alcotest.(check (list int)) "same array contents" base mutated

let stack_and_kernel addr = addr >= 0x7000_0000

let final_memory p init =
  let res = Cpu.Exec.run ~init p in
  Cpu.Machine.fold_mem res.Cpu.Exec.machine ~init:[] ~f:(fun a v acc ->
      if stack_and_kernel a then acc else (a, v) :: acc)
  |> List.sort compare

let prop_mutation_preserves_memory =
  (* Heavy mutation of any benign kernel leaves all non-stack memory
     identical (registers may legally differ after renaming). *)
  QCheck.Test.make ~name:"mutation preserves final memory" ~count:30
    QCheck.small_int
    (fun seed ->
      let g = Workloads.Benign.generate (Sutil.Rng.create seed) in
      let mutated =
        Workloads.Mutate.mutate ~intensity:Workloads.Mutate.heavy
          ~rng:(Sutil.Rng.create (seed + 1000)) ~name:"m"
          g.Workloads.Benign.program
      in
      final_memory g.Workloads.Benign.program g.Workloads.Benign.init
      = final_memory mutated g.Workloads.Benign.init)

let prop_obfuscation_preserves_memory =
  QCheck.Test.make ~name:"obfuscation preserves final memory" ~count:30
    QCheck.small_int
    (fun seed ->
      let g = Workloads.Benign.generate (Sutil.Rng.create seed) in
      let obf =
        Workloads.Obfuscate.obfuscate ~rng:(Sutil.Rng.create (seed + 2000))
          ~name:"o" g.Workloads.Benign.program
      in
      final_memory g.Workloads.Benign.program g.Workloads.Benign.init
      = final_memory obf g.Workloads.Benign.init)

(* ---- obfuscation ---------------------------------------------------------------- *)

let test_obfuscation_inflates_bbs () =
  let rng = Sutil.Rng.create 10 in
  let ratios =
    List.map
      (fun (s : A.spec) ->
        let o = Workloads.Obfuscate.obfuscate ~rng ~name:"o" s.A.program in
        let bb0 = Workloads.Obfuscate.count_basic_blocks s.A.program in
        let bb1 = Workloads.Obfuscate.count_basic_blocks o in
        float_of_int (bb1 - bb0) /. float_of_int bb0)
      (A.base_pocs ())
  in
  let mean = Sutil.Stats.mean ratios in
  (* paper: ~70% more BBs on average *)
  check_bool "mean inflation in [0.4, 1.2]" true (mean >= 0.4 && mean <= 1.2)

let test_obfuscation_preserves_leakage () =
  let rng = Sutil.Rng.create 20 in
  List.iter
    (fun (s : A.spec) ->
      let o =
        Workloads.Obfuscate.obfuscate ~rng ~name:(s.A.name ^ "-obf") s.A.program
      in
      let res = A.run_spec { s with A.program = o } in
      check_bool (s.A.name ^ " obfuscated halts") true res.Cpu.Exec.halted_normally;
      match s.A.label with
      | L.Fr_family | L.Pp_family ->
        check_bool
          (s.A.name ^ " obfuscated still leaks")
          true
          (List.mem (A.secret_guess res) victim_values)
      | _ -> ())
    (A.base_pocs ())

(* ---- benign -------------------------------------------------------------------- *)

let test_benign_families_terminate () =
  List.iter
    (fun (family, _) ->
      let rng = Sutil.Rng.create 31 in
      let g = Workloads.Benign.build family rng in
      let res = Cpu.Exec.run ~init:g.Workloads.Benign.init g.Workloads.Benign.program in
      check_bool (family ^ " halts") true res.Cpu.Exec.halted_normally;
      check_bool (family ^ " does work") true (res.Cpu.Exec.instructions > 20))
    Workloads.Benign.families

let test_benign_bubble_sorts () =
  let g = Workloads.Benign.build "bubble-sort" (Sutil.Rng.create 77) in
  let res = Cpu.Exec.run ~init:g.Workloads.Benign.init g.Workloads.Benign.program in
  (* after enough passes the prefix must be non-decreasing for at least the
     first few elements (full sort needs n passes; generator uses fewer) *)
  let m = res.Cpu.Exec.machine in
  let a = Cpu.Machine.load m Workloads.Layout.benign_data_base in
  let b = Cpu.Machine.load m (Workloads.Layout.benign_data_base + 8) in
  check_bool "first two ordered" true (a <= b)

let test_benign_quicksort_sorts () =
  let g = Workloads.Benign.build "quicksort" (Sutil.Rng.create 5) in
  let res = Cpu.Exec.run ~init:g.Workloads.Benign.init g.Workloads.Benign.program in
  check_bool "halted" true res.Cpu.Exec.halted_normally;
  (* recover n from the sample name "leetcode-quicksort-<n>" *)
  let n =
    int_of_string
      (List.nth (String.split_on_char '-' g.Workloads.Benign.name) 2)
  in
  let a =
    List.init n (fun i ->
        Cpu.Machine.load res.Cpu.Exec.machine
          (Workloads.Layout.benign_data_base + (8 * i)))
  in
  Alcotest.(check (list int)) "fully sorted" (List.sort compare a) a

let test_benign_edit_distance_correct () =
  (* replicate the generator's rng draws to know the planted strings *)
  let rng = Sutil.Rng.create 6 in
  let n = Sutil.Rng.in_range rng 12 24 in
  let m = Sutil.Rng.in_range rng 12 24 in
  let s1 = Array.init n (fun _ -> Sutil.Rng.int rng 4) in
  let s2 = Array.init m (fun _ -> Sutil.Rng.int rng 4) in
  let expected = Sutil.Levenshtein.distance ~equal:Int.equal s1 s2 in
  let g = Workloads.Benign.build "edit-distance" (Sutil.Rng.create 6) in
  let res = Cpu.Exec.run ~init:g.Workloads.Benign.init g.Workloads.Benign.program in
  (* the DP's final row lives at data2 (prev); answer at prev[m] *)
  let got =
    Cpu.Machine.load res.Cpu.Exec.machine
      (Workloads.Layout.benign_data2_base + (8 * m))
  in
  check_int "edit distance matches reference" expected got

let test_benign_diverse_seeds () =
  let r1 = Workloads.Benign.build "stream" (Sutil.Rng.create 1) in
  let r2 = Workloads.Benign.build "stream" (Sutil.Rng.create 2) in
  check_bool "parameterized differently" true
    (r1.Workloads.Benign.name <> r2.Workloads.Benign.name
    || Isa.Program.length r1.Workloads.Benign.program
       <> Isa.Program.length r2.Workloads.Benign.program)

let test_benign_category_lookup () =
  check_bool "unknown family rejected" true
    (try ignore (Workloads.Benign.build "nope" (Sutil.Rng.create 0)); false
     with Invalid_argument _ -> true);
  let g = Workloads.Benign.generate_of_category (Sutil.Rng.create 3) "Encryption" in
  check_bool "crypto category" true (g.Workloads.Benign.category = "Encryption")

(* ---- victim --------------------------------------------------------------------- *)

let test_victim_programs_touch_shared_lines () =
  let prog, init = Workloads.Victim.shared_lib () in
  (* run the victim as the main program to observe its accesses *)
  let res = Cpu.Exec.run ~init prog in
  let touched =
    List.filter
      (fun (a : Hpc.Collector.access) ->
        a.Hpc.Collector.target >= Workloads.Layout.shared_lib_base
        && a.Hpc.Collector.target
           < Workloads.Layout.shared_lib_base
             + (Workloads.Layout.monitored_lines * Workloads.Layout.monitored_stride))
      (Hpc.Collector.accesses res.Cpu.Exec.collector)
  in
  check_bool "touches monitored lines" true (List.length touched > 0)

(* ---- dataset -------------------------------------------------------------------- *)

let test_dataset_counts_and_labels () =
  let rng = Sutil.Rng.create 50 in
  let ds = D.attack_dataset ~rng ~per_family:3 in
  check_int "four families" 4 (List.length ds);
  List.iter
    (fun (label, samples) ->
      check_int "count per family" 3 (List.length samples);
      List.iter
        (fun (s : D.sample) ->
          check_bool "label consistent" true (L.equal s.D.label label))
        samples)
    ds

let test_dataset_samples_run () =
  let rng = Sutil.Rng.create 51 in
  List.iter
    (fun (label : L.t) ->
      List.iter
        (fun (s : D.sample) ->
          let res = D.run s in
          check_bool (s.D.name ^ " halts") true res.Cpu.Exec.halted_normally)
        (D.mutated_attacks ~rng ~count:2 label))
    L.attack_labels

let test_dataset_benign_all_benign () =
  let rng = Sutil.Rng.create 52 in
  List.iter
    (fun (s : D.sample) ->
      check_bool "benign label" true (L.equal s.D.label L.Benign);
      check_bool "no victim" true (s.D.victim = None))
    (D.benign_samples ~rng ~count:8)

let test_dataset_determinism () =
  let names rng = List.map (fun (s : D.sample) -> s.D.name)
      (D.mutated_attacks ~rng ~count:3 L.Fr_family) in
  Alcotest.(check (list string)) "same seed, same dataset"
    (names (Sutil.Rng.create 99)) (names (Sutil.Rng.create 99))

let test_harness_adds_code () =
  let rng = Sutil.Rng.create 53 in
  let base = D.of_spec (A.flush_reload ~style:A.Iaik ()) in
  let h = D.with_harness ~rng base in
  check_bool "longer" true
    (Isa.Program.length h.D.program > Isa.Program.length base.D.program)

let () =
  Alcotest.run "workloads"
    [
      ("leakage", leakage_tests);
      ( "pocs",
        [
          Alcotest.test_case "ground truth tags" `Quick test_all_pocs_have_ground_truth;
          Alcotest.test_case "collected count" `Quick test_base_pocs_count;
          Alcotest.test_case "meltdown extension leaks" `Quick
            test_meltdown_extension_leaks;
          Alcotest.test_case "meltdown needs the window" `Quick
            test_meltdown_needs_transient_window;
          Alcotest.test_case "cross-core leakage" `Slow test_cross_core_leakage;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "preserves leakage" `Slow test_mutation_preserves_leakage;
          Alcotest.test_case "changes syntax" `Quick test_mutation_changes_syntax;
          Alcotest.test_case "preserves tags" `Quick test_mutation_preserves_tags;
          Alcotest.test_case "benign semantics" `Quick test_mutation_benign_semantics;
          QCheck_alcotest.to_alcotest prop_mutation_preserves_memory;
        ] );
      ( "obfuscation",
        [
          Alcotest.test_case "inflates BBs" `Quick test_obfuscation_inflates_bbs;
          Alcotest.test_case "preserves leakage" `Slow test_obfuscation_preserves_leakage;
          QCheck_alcotest.to_alcotest prop_obfuscation_preserves_memory;
        ] );
      ( "benign",
        [
          Alcotest.test_case "families terminate" `Quick test_benign_families_terminate;
          Alcotest.test_case "bubble sorts" `Quick test_benign_bubble_sorts;
          Alcotest.test_case "quicksort sorts" `Quick test_benign_quicksort_sorts;
          Alcotest.test_case "edit distance correct" `Quick
            test_benign_edit_distance_correct;
          Alcotest.test_case "diverse seeds" `Quick test_benign_diverse_seeds;
          Alcotest.test_case "category lookup" `Quick test_benign_category_lookup;
        ] );
      ( "victim",
        [
          Alcotest.test_case "touches shared lines" `Quick
            test_victim_programs_touch_shared_lines;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "counts and labels" `Quick test_dataset_counts_and_labels;
          Alcotest.test_case "samples run" `Quick test_dataset_samples_run;
          Alcotest.test_case "benign labels" `Quick test_dataset_benign_all_benign;
          Alcotest.test_case "determinism" `Quick test_dataset_determinism;
          Alcotest.test_case "harness adds code" `Quick test_harness_adds_code;
        ] );
    ]
