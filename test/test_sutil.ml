(* Tests for the sutil utility library: deterministic RNG, Levenshtein
   distance, summary statistics and table rendering. *)

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ---- Rng ----------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Sutil.Rng.create 42 in
  let b = Sutil.Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Sutil.Rng.int a 1000) (Sutil.Rng.int b 1000)
  done

let test_rng_seeds_differ () =
  let a = Sutil.Rng.create 1 in
  let b = Sutil.Rng.create 2 in
  let xs = List.init 20 (fun _ -> Sutil.Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Sutil.Rng.int b 1_000_000) in
  Alcotest.(check bool) "streams differ" false (xs = ys)

let test_rng_split_independent () =
  let parent = Sutil.Rng.create 7 in
  let child = Sutil.Rng.split parent in
  let c1 = List.init 10 (fun _ -> Sutil.Rng.int child 100) in
  (* A second split from the same parent state gives another stream. *)
  let child2 = Sutil.Rng.split parent in
  let c2 = List.init 10 (fun _ -> Sutil.Rng.int child2 100) in
  Alcotest.(check bool) "children differ" false (c1 = c2)

let test_rng_copy () =
  let a = Sutil.Rng.create 9 in
  ignore (Sutil.Rng.int a 10);
  let b = Sutil.Rng.copy a in
  check_int "copy replays" (Sutil.Rng.int a 1000) (Sutil.Rng.int b 1000)

let test_rng_in_range () =
  let rng = Sutil.Rng.create 3 in
  for _ = 1 to 500 do
    let v = Sutil.Rng.in_range rng 5 9 in
    Alcotest.(check bool) "in [5,9]" true (v >= 5 && v <= 9)
  done

let test_rng_invalid_args () =
  let rng = Sutil.Rng.create 0 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Sutil.Rng.int rng 0));
  Alcotest.check_raises "choose []" (Invalid_argument "Rng.choose: empty list")
    (fun () -> ignore (Sutil.Rng.choose rng ([] : int list)))

let test_rng_sample_distinct () =
  let rng = Sutil.Rng.create 5 in
  let xs = List.init 20 Fun.id in
  let s = Sutil.Rng.sample rng 8 xs in
  check_int "size" 8 (List.length s);
  check_int "distinct" 8 (List.length (List.sort_uniq compare s))

let prop_int_bounds =
  QCheck.Test.make ~name:"rng int within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let rng = Sutil.Rng.create seed in
      let v = Sutil.Rng.int rng bound in
      v >= 0 && v < bound)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let rng = Sutil.Rng.create seed in
      List.sort compare (Sutil.Rng.shuffle rng xs) = List.sort compare xs)

let prop_float_bounds =
  QCheck.Test.make ~name:"rng float within bounds" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Sutil.Rng.create seed in
      let v = Sutil.Rng.float rng 3.5 in
      v >= 0.0 && v < 3.5)

(* ---- Levenshtein ---------------------------------------------------------- *)

let dist a b =
  Sutil.Levenshtein.distance_strings (Array.of_list a) (Array.of_list b)

let test_lev_basic () =
  check_int "identical" 0 (dist [ "a"; "b" ] [ "a"; "b" ]);
  check_int "empty vs xs" 3 (dist [] [ "a"; "b"; "c" ]);
  check_int "single subst" 1 (dist [ "a"; "b"; "c" ] [ "a"; "x"; "c" ]);
  check_int "insert" 1 (dist [ "a"; "c" ] [ "a"; "b"; "c" ]);
  check_int "kitten/sitting" 3
    (Sutil.Levenshtein.distance ~equal:Char.equal
       [| 'k'; 'i'; 't'; 't'; 'e'; 'n' |]
       [| 's'; 'i'; 't'; 't'; 'i'; 'n'; 'g' |])

let test_lev_normalized () =
  check_float "identical" 0.0
    (Sutil.Levenshtein.normalized ~equal:String.equal [| "a" |] [| "a" |]);
  check_float "both empty" 0.0
    (Sutil.Levenshtein.normalized ~equal:String.equal [||] [||]);
  check_float "disjoint" 1.0
    (Sutil.Levenshtein.normalized ~equal:String.equal [| "a"; "b" |]
       [| "x"; "y" |])

let prop_lev_symmetric =
  QCheck.Test.make ~name:"levenshtein symmetric" ~count:200
    QCheck.(pair (list (int_range 0 5)) (list (int_range 0 5)))
    (fun (a, b) ->
      let a = Array.of_list a and b = Array.of_list b in
      Sutil.Levenshtein.distance ~equal:Int.equal a b
      = Sutil.Levenshtein.distance ~equal:Int.equal b a)

let prop_lev_triangle =
  QCheck.Test.make ~name:"levenshtein triangle inequality" ~count:200
    QCheck.(triple (list (int_range 0 3)) (list (int_range 0 3))
              (list (int_range 0 3)))
    (fun (a, b, c) ->
      let a = Array.of_list a and b = Array.of_list b and c = Array.of_list c in
      let d x y = Sutil.Levenshtein.distance ~equal:Int.equal x y in
      d a c <= d a b + d b c)

let prop_lev_bounds =
  QCheck.Test.make ~name:"levenshtein bounded by max length" ~count:200
    QCheck.(pair (list (int_range 0 5)) (list (int_range 0 5)))
    (fun (a, b) ->
      let a = Array.of_list a and b = Array.of_list b in
      let d = Sutil.Levenshtein.distance ~equal:Int.equal a b in
      d >= Sutil.Levenshtein.lower_bound a b
      && d <= max (Array.length a) (Array.length b))

let prop_lev_limit =
  QCheck.Test.make ~name:"levenshtein ?limit caps at min(distance, limit)"
    ~count:300
    QCheck.(
      triple (list (int_range 0 5)) (list (int_range 0 5)) (int_range 0 8))
    (fun (a, b, limit) ->
      let a = Array.of_list a and b = Array.of_list b in
      let exact = Sutil.Levenshtein.distance ~equal:Int.equal a b in
      Sutil.Levenshtein.distance ~limit ~equal:Int.equal a b
      = min exact limit)

(* ---- Intern ---------------------------------------------------------------- *)

let test_intern_equality () =
  let p = Sutil.Intern.create () in
  let a = Sutil.Intern.intern p "load m" in
  let b = Sutil.Intern.intern p "store m" in
  check_int "same string, same id" a (Sutil.Intern.intern p "load m");
  Alcotest.(check bool) "distinct strings, distinct ids" false (a = b);
  Alcotest.(check string) "id maps back" "load m" (Sutil.Intern.to_string p a);
  Alcotest.(check string) "id maps back 2" "store m" (Sutil.Intern.to_string p b);
  check_int "size counts distinct strings" 2 (Sutil.Intern.size p)

let test_intern_all () =
  let p = Sutil.Intern.create () in
  let ss = [| "a"; "b"; "a"; "c"; "b" |] in
  let ids = Sutil.Intern.intern_all p ss in
  Alcotest.(check (array int)) "batch = one-by-one"
    (Array.map (Sutil.Intern.intern p) ss)
    ids;
  Alcotest.(check (array string)) "roundtrip"
    ss
    (Array.map (Sutil.Intern.to_string p) ids)

let test_intern_growth () =
  (* push past the initial capacity so the doubling path is exercised *)
  let p = Sutil.Intern.create () in
  let ids = List.init 500 (fun i -> Sutil.Intern.intern p (string_of_int i)) in
  check_int "all distinct" 500 (List.length (List.sort_uniq compare ids));
  List.iteri
    (fun i id ->
      Alcotest.(check string) "stable" (string_of_int i)
        (Sutil.Intern.to_string p id))
    ids

(* the interning guarantee the scorers rely on: the int-token Levenshtein is
   bit-identical to the string-token one whenever ids come from one pool *)
let prop_interned_levenshtein_identical =
  QCheck.Test.make ~name:"interned levenshtein = string levenshtein" ~count:300
    QCheck.(
      pair
        (list (oneofl [ "load m"; "store m"; "mov r r"; "rdtsc"; "mfence" ]))
        (list (oneofl [ "load m"; "store m"; "mov r r"; "clflush m" ])))
    (fun (a, b) ->
      let a = Array.of_list a and b = Array.of_list b in
      let p = Sutil.Intern.create () in
      let ia = Sutil.Intern.intern_all p a
      and ib = Sutil.Intern.intern_all p b in
      Sutil.Levenshtein.distance_ints ia ib
      = Sutil.Levenshtein.distance_strings a b
      && Sutil.Levenshtein.normalized_ints ia ib
         = Sutil.Levenshtein.normalized ~equal:String.equal a b)

(* ---- Stats ---------------------------------------------------------------- *)

let test_stats_mean_median () =
  check_float "mean" 2.5 (Sutil.Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "median odd" 2.0 (Sutil.Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "median even" 2.5 (Sutil.Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  check_float "empty mean" 0.0 (Sutil.Stats.mean []);
  check_float "min" 1.0 (Sutil.Stats.minimum [ 3.0; 1.0; 2.0 ]);
  check_float "max" 3.0 (Sutil.Stats.maximum [ 3.0; 1.0; 2.0 ])

let test_stats_stddev () =
  check_float "constant" 0.0 (Sutil.Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check_float "known" 2.0 (Sutil.Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p50" 50.0 (Sutil.Stats.percentile 0.5 xs);
  check_float "p99" 99.0 (Sutil.Stats.percentile 0.99 xs)

let test_bucket_percentiles () =
  let bounds = [| 1.0; 2.0; 4.0 |] in
  (* 10 observations in (0,1], 10 in (1,2], none higher *)
  let counts = [| 10; 10; 0; 0 |] in
  check_float "total" 20.0 (float_of_int (Sutil.Stats.bucket_total counts));
  (* rank 10 is the last of the first bucket: interpolates to its top edge *)
  check_float "p50 at bucket edge" 1.0
    (Sutil.Stats.percentile_of_buckets ~bounds ~counts 0.5);
  (* rank 5 sits halfway through the first bucket (0..1) *)
  check_float "p25 interpolates" 0.5
    (Sutil.Stats.percentile_of_buckets ~bounds ~counts 0.25);
  (* rank 18 is 8/10 through the second bucket (1..2) *)
  check_float "p90 interpolates" 1.8
    (Sutil.Stats.percentile_of_buckets ~bounds ~counts 0.9);
  (* empty histogram is total *)
  check_float "empty" 0.0
    (Sutil.Stats.percentile_of_buckets ~bounds ~counts:[| 0; 0; 0; 0 |] 0.5);
  (* overflow ranks clamp to the largest finite bound *)
  check_float "overflow clamps" 4.0
    (Sutil.Stats.percentile_of_buckets ~bounds ~counts:[| 0; 0; 0; 5 |] 0.99);
  (* quantile batches map one-to-one *)
  (match Sutil.Stats.quantiles_of_buckets ~bounds ~counts [ 0.25; 0.5; 0.9 ] with
  | [ a; b; c ] ->
    check_float "q25" 0.5 a;
    check_float "q50" 1.0 b;
    check_float "q90" 1.8 c
  | _ -> Alcotest.fail "expected three quantiles");
  Alcotest.check_raises "length mismatch raises"
    (Invalid_argument
       "Stats.percentile_of_buckets: need one count per bound plus overflow")
    (fun () ->
      ignore (Sutil.Stats.percentile_of_buckets ~bounds ~counts:[| 1 |] 0.5))

(* ---- Pool probe ------------------------------------------------------------ *)

let test_pool_probe () =
  (* every task gets exactly one start and one stop, stop after start, with
     matching worker ids — across a multi-domain run *)
  let tasks = 64 in
  let starts = Array.make tasks 0 and stops = Array.make tasks 0 in
  let start_worker = Array.make tasks (-1) in
  let lock = Mutex.create () in
  let probe =
    {
      Sutil.Pool.task_start =
        (fun ~worker i ->
          Mutex.lock lock;
          starts.(i) <- starts.(i) + 1;
          start_worker.(i) <- worker;
          Mutex.unlock lock);
      task_stop =
        (fun ~worker i ->
          Mutex.lock lock;
          Alcotest.(check int) "stop on the same worker" start_worker.(i) worker;
          Alcotest.(check int) "started before stopping" 1 starts.(i);
          stops.(i) <- stops.(i) + 1;
          Mutex.unlock lock);
    }
  in
  let hit = Array.make tasks false in
  ignore
    (Sutil.Pool.run ~domains:4 ~probe ~tasks (fun ~worker:_ i ->
         hit.(i) <- true));
  Alcotest.(check bool) "every task ran" true (Array.for_all Fun.id hit);
  Array.iteri
    (fun i s ->
      Alcotest.(check int) (Printf.sprintf "task %d started once" i) 1 s;
      Alcotest.(check int) (Printf.sprintf "task %d stopped once" i) 1 stops.(i))
    starts

let test_pool_probe_optional () =
  (* ?probe:None is the plain un-instrumented run *)
  let count = ref 0 in
  ignore
    (Sutil.Pool.run ~domains:1 ~tasks:10 (fun ~worker:_ _ -> incr count));
  Alcotest.(check int) "all tasks, no probe" 10 !count

(* ---- Table ---------------------------------------------------------------- *)

(* tiny substring helper to avoid external deps *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_render () =
  let t = Sutil.Table.create ~title:"T" [ "a"; "bb" ] in
  Sutil.Table.add_row t [ "1"; "2" ];
  Sutil.Table.add_row t [ "longer" ];
  let s = Sutil.Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  (* short row padded, long cell widens column *)
  Alcotest.(check bool) "mentions longer" true (contains s "longer")

let test_table_pct () =
  Alcotest.(check string) "pct" "96.64%" (Sutil.Table.pct 0.9664);
  Alcotest.(check string) "fpct" "12.30%" (Sutil.Table.fpct 12.3)

(* -- bqueue ------------------------------------------------------------------- *)

let test_bqueue_fifo () =
  let q = Sutil.Bqueue.create ~capacity:3 in
  Alcotest.(check bool) "empty" true (Sutil.Bqueue.is_empty q);
  List.iter (fun i -> assert (Sutil.Bqueue.push q i)) [ 1; 2; 3 ];
  Alcotest.(check bool) "full rejects" false (Sutil.Bqueue.push q 4);
  Alcotest.(check (option int)) "peek is the head" (Some 1) (Sutil.Bqueue.peek q);
  Alcotest.(check (option int)) "fifo pop" (Some 1) (Sutil.Bqueue.pop q);
  Alcotest.(check bool) "slot freed" true (Sutil.Bqueue.push q 4);
  Alcotest.(check (list int)) "to_list keeps order" [ 2; 3; 4 ]
    (Sutil.Bqueue.to_list q);
  let drained = ref [] in
  Sutil.Bqueue.drain q (fun v -> drained := v :: !drained);
  Alcotest.(check (list int)) "drain is fifo" [ 2; 3; 4 ] (List.rev !drained);
  Alcotest.(check (option int)) "empty pop" None (Sutil.Bqueue.pop q)

let test_bqueue_wraparound () =
  let q = Sutil.Bqueue.create ~capacity:2 in
  for i = 1 to 100 do
    assert (Sutil.Bqueue.push q i);
    Alcotest.(check (option int)) "ring wraps" (Some i) (Sutil.Bqueue.pop q)
  done

let test_bqueue_invalid () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Bqueue.create: capacity 0 < 1") (fun () ->
      ignore (Sutil.Bqueue.create ~capacity:0))

(* -- deadline ----------------------------------------------------------------- *)

let test_deadline () =
  let now = 1_000_000_000L in
  Alcotest.(check bool) "none never expires" false
    (Sutil.Deadline.expired ~now_ns:Int64.max_int Sutil.Deadline.none);
  Alcotest.(check bool) "zero budget means none" true
    (Sutil.Deadline.is_none (Sutil.Deadline.after ~now_ns:now ~budget_ms:0));
  let d = Sutil.Deadline.after ~now_ns:now ~budget_ms:5 in
  Alcotest.(check bool) "not yet" false (Sutil.Deadline.expired ~now_ns:now d);
  Alcotest.(check bool) "within budget" false
    (Sutil.Deadline.expired ~now_ns:(Int64.add now 4_999_999L) d);
  Alcotest.(check bool) "at the instant" true
    (Sutil.Deadline.expired ~now_ns:(Int64.add now 5_000_000L) d);
  (match Sutil.Deadline.remaining_ns ~now_ns:(Int64.add now 6_000_000L) d with
  | Some r -> Alcotest.(check bool) "remaining clamps at 0" true (r = 0L)
  | None -> Alcotest.fail "deadline has a remaining");
  (* a huge budget saturates instead of wrapping into the past *)
  let far = Sutil.Deadline.after ~now_ns:Int64.max_int ~budget_ms:max_int in
  Alcotest.(check bool) "saturating add" false
    (Sutil.Deadline.expired ~now_ns:1L far)

let () =
  Alcotest.run "sutil"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "copy replays" `Quick test_rng_copy;
          Alcotest.test_case "in_range" `Quick test_rng_in_range;
          Alcotest.test_case "invalid args" `Quick test_rng_invalid_args;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
          QCheck_alcotest.to_alcotest prop_int_bounds;
          QCheck_alcotest.to_alcotest prop_shuffle_permutation;
          QCheck_alcotest.to_alcotest prop_float_bounds;
        ] );
      ( "levenshtein",
        [
          Alcotest.test_case "basic" `Quick test_lev_basic;
          Alcotest.test_case "normalized" `Quick test_lev_normalized;
          QCheck_alcotest.to_alcotest prop_lev_symmetric;
          QCheck_alcotest.to_alcotest prop_lev_triangle;
          QCheck_alcotest.to_alcotest prop_lev_bounds;
          QCheck_alcotest.to_alcotest prop_lev_limit;
        ] );
      ( "intern",
        [
          Alcotest.test_case "equality" `Quick test_intern_equality;
          Alcotest.test_case "intern_all" `Quick test_intern_all;
          Alcotest.test_case "growth" `Quick test_intern_growth;
          QCheck_alcotest.to_alcotest prop_interned_levenshtein_identical;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/median" `Quick test_stats_mean_median;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "bucket percentiles" `Quick test_bucket_percentiles;
        ] );
      ( "pool",
        [
          Alcotest.test_case "probe fires once per task" `Quick test_pool_probe;
          Alcotest.test_case "probe optional" `Quick test_pool_probe_optional;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "pct" `Quick test_table_pct;
        ] );
      ( "bqueue",
        [
          Alcotest.test_case "fifo + bound" `Quick test_bqueue_fifo;
          Alcotest.test_case "ring wraparound" `Quick test_bqueue_wraparound;
          Alcotest.test_case "invalid capacity" `Quick test_bqueue_invalid;
        ] );
      ( "deadline",
        [ Alcotest.test_case "budget arithmetic" `Quick test_deadline ] );
    ]
