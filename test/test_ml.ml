(* Tests for the ML substrate: vectors, scaling, metrics, SVM, logistic
   regression, k-NN and cross-validation. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ---- Vector ----------------------------------------------------------------- *)

let test_vector_ops () =
  check_float "dot" 11.0 (Ml.Vector.dot [| 1.0; 2.0 |] [| 3.0; 4.0 |]);
  check_float "norm" 5.0 (Ml.Vector.norm [| 3.0; 4.0 |]);
  check_float "euclidean" 5.0
    (Ml.Vector.euclidean_distance [| 0.0; 0.0 |] [| 3.0; 4.0 |]);
  let acc = [| 1.0; 1.0 |] in
  Ml.Vector.add_scaled acc 2.0 [| 1.0; 3.0 |];
  check_float "add_scaled" 7.0 acc.(1);
  check_bool "dim mismatch" true
    (try ignore (Ml.Vector.dot [| 1.0 |] [| 1.0; 2.0 |]); false
     with Invalid_argument _ -> true)

(* ---- Scale ------------------------------------------------------------------ *)

let test_scale_standardizes () =
  let xs = [ [| 0.0; 10.0 |]; [| 2.0; 10.0 |]; [| 4.0; 10.0 |] ] in
  let s = Ml.Scale.fit xs in
  let t = Ml.Scale.transform s [| 2.0; 10.0 |] in
  check_float "mean removed" 0.0 t.(0);
  (* constant feature passes through *)
  check_float "constant untouched" 10.0 t.(1);
  let t2 = Ml.Scale.transform s [| 4.0; 10.0 |] in
  check_bool "positive z" true (t2.(0) > 0.0)

(* ---- Metrics ----------------------------------------------------------------- *)

let test_metrics_perfect () =
  let s = Ml.Metrics.evaluate ~classes:[ 0; 1 ] [ (0, 0); (1, 1); (0, 0) ] in
  check_float "precision" 1.0 s.Ml.Metrics.precision;
  check_float "recall" 1.0 s.Ml.Metrics.recall;
  check_float "f1" 1.0 s.Ml.Metrics.f1;
  check_float "accuracy" 1.0 s.Ml.Metrics.accuracy

let test_metrics_known_confusion () =
  (* class 0: tp=1 fp=1 fn=1 -> P=R=0.5, F1=0.5; class 1 same by symmetry *)
  let pairs = [ (0, 0); (0, 1); (1, 0); (1, 1) ] in
  let s = Ml.Metrics.evaluate ~classes:[ 0; 1 ] pairs in
  check_float "macro precision" 0.5 s.Ml.Metrics.precision;
  check_float "macro recall" 0.5 s.Ml.Metrics.recall;
  check_float "accuracy" 0.5 s.Ml.Metrics.accuracy

let test_metrics_absent_class () =
  (* class 2 never predicted nor present: contributes zeros to the macro *)
  let s = Ml.Metrics.evaluate ~classes:[ 0; 2 ] [ (0, 0) ] in
  check_float "macro halved" 0.5 s.Ml.Metrics.precision

let test_confusion_matrix () =
  let m = Ml.Metrics.confusion ~classes:[ 0; 1 ] [ (0, 0); (1, 0); (1, 1) ] in
  check_int "actual 0 pred 0" 1 m.(0).(0);
  check_int "actual 0 pred 1" 1 m.(0).(1);
  check_int "actual 1 pred 1" 1 m.(1).(1);
  check_int "actual 1 pred 0" 0 m.(1).(0)

let test_per_class_breakdown () =
  (* class 0: tp=2 fp=1 fn=1 -> P=2/3, R=2/3; class 1: tp=1 fp=1 fn=1 ->
     P=R=0.5; class 2 absent -> all zeros, support 0 *)
  let pairs = [ (0, 0); (0, 0); (0, 1); (1, 0); (1, 1) ] in
  let rows = Ml.Metrics.per_class ~classes:[ 0; 1; 2 ] pairs in
  check_int "three rows" 3 (List.length rows);
  let row c = List.find (fun r -> r.Ml.Metrics.cls = c) rows in
  let r0 = row 0 in
  check_int "c0 support" 3 r0.Ml.Metrics.support;
  check_int "c0 tp" 2 r0.Ml.Metrics.tp;
  check_int "c0 fp" 1 r0.Ml.Metrics.fp;
  check_int "c0 fn" 1 r0.Ml.Metrics.fn;
  check_float "c0 precision" (2.0 /. 3.0) r0.Ml.Metrics.c_precision;
  check_float "c0 recall" (2.0 /. 3.0) r0.Ml.Metrics.c_recall;
  check_float "c0 f1" (2.0 /. 3.0) r0.Ml.Metrics.c_f1;
  let r1 = row 1 in
  check_int "c1 support" 2 r1.Ml.Metrics.support;
  check_float "c1 precision" 0.5 r1.Ml.Metrics.c_precision;
  check_float "c1 recall" 0.5 r1.Ml.Metrics.c_recall;
  check_float "c1 f1" 0.5 r1.Ml.Metrics.c_f1;
  let r2 = row 2 in
  check_int "c2 support" 0 r2.Ml.Metrics.support;
  check_float "c2 precision" 0.0 r2.Ml.Metrics.c_precision;
  check_float "c2 f1" 0.0 r2.Ml.Metrics.c_f1;
  (* evaluate is the macro average of the breakdown, bit for bit *)
  let s = Ml.Metrics.evaluate ~classes:[ 0; 1; 2 ] pairs in
  let avg f = (f r0 +. f r1 +. f r2) /. 3.0 in
  check_float "macro precision matches breakdown"
    (avg (fun r -> r.Ml.Metrics.c_precision))
    s.Ml.Metrics.precision;
  check_float "macro recall matches breakdown"
    (avg (fun r -> r.Ml.Metrics.c_recall))
    s.Ml.Metrics.recall;
  check_float "macro f1 matches breakdown"
    (avg (fun r -> r.Ml.Metrics.c_f1))
    s.Ml.Metrics.f1

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  n = 0
  || (h >= n
     && List.exists
          (fun i -> String.sub haystack i n = needle)
          (List.init (h - n + 1) Fun.id))

let test_metrics_to_json () =
  let s = Ml.Metrics.evaluate ~classes:[ 0; 1 ] [ (0, 0); (1, 1); (1, 0) ] in
  let json = Ml.Metrics.to_json s in
  List.iter
    (fun k ->
      check_bool ("json carries " ^ k) true (contains json ("\"" ^ k ^ "\":")))
    [ "precision"; "recall"; "f1"; "accuracy" ];
  (* accuracy 2/3 rendered at full precision, readable back exactly *)
  check_bool "full-precision accuracy" true
    (contains json (Printf.sprintf "\"accuracy\":%.17g" (2.0 /. 3.0)));
  let rows = Ml.Metrics.per_class ~classes:[ 0; 1 ] [ (0, 0); (1, 1) ] in
  let arr =
    Ml.Metrics.class_scores_to_json ~name:(Printf.sprintf "c%d") rows
  in
  check_bool "per-class json names classes" true
    (contains arr "\"class\":\"c1\"");
  check_bool "per-class json carries support" true
    (contains arr "\"support\":1")

(* ---- synthetic data ----------------------------------------------------------- *)

(* Two Gaussian-ish blobs separated along the first dimension. *)
let blob rng ~label ~center n =
  List.init n (fun _ ->
      let jitter () = Sutil.Rng.float rng 1.0 -. 0.5 in
      ([| center +. jitter (); jitter () |], label))

let separable rng =
  blob rng ~label:true ~center:3.0 40 @ blob rng ~label:false ~center:(-3.0) 40

(* ---- SVM --------------------------------------------------------------------- *)

let test_svm_separable () =
  let rng = Sutil.Rng.create 11 in
  let data = separable rng in
  let model = Ml.Svm.train ~rng data in
  let correct =
    List.length (List.filter (fun (x, y) -> Ml.Svm.predict model x = y) data)
  in
  check_bool "fits separable data" true (correct >= 78)

let test_svm_multiclass () =
  let rng = Sutil.Rng.create 12 in
  (* corner centers: each class is linearly separable one-vs-rest *)
  let corner cx cy label n =
    List.init n (fun _ ->
        let jitter () = Sutil.Rng.float rng 1.0 -. 0.5 in
        ([| cx +. jitter (); cy +. jitter () |], label))
  in
  let tri =
    List.concat
      [ corner 5.0 0.0 0 30; corner 0.0 5.0 1 30; corner (-5.0) (-5.0) 2 30 ]
  in
  let m = Ml.Svm.train_multi ~rng tri in
  let correct =
    List.length (List.filter (fun (x, y) -> Ml.Svm.predict_multi m x = y) tri)
  in
  check_bool "one-vs-rest works" true (correct >= 80)

(* ---- Logreg ------------------------------------------------------------------- *)

let test_logreg_separable () =
  let rng = Sutil.Rng.create 13 in
  let data = separable rng in
  let model = Ml.Logreg.train data in
  let correct =
    List.length (List.filter (fun (x, y) -> Ml.Logreg.predict model x = y) data)
  in
  check_bool "fits separable data" true (correct >= 78);
  let p_pos = Ml.Logreg.probability model [| 5.0; 0.0 |] in
  let p_neg = Ml.Logreg.probability model [| -5.0; 0.0 |] in
  check_bool "probability ordering" true (p_pos > 0.9 && p_neg < 0.1)

(* ---- Knn ---------------------------------------------------------------------- *)

let test_knn_basic () =
  let train =
    [ ([| 0.0 |], 0); ([| 0.1 |], 0); ([| 0.2 |], 0);
      ([| 5.0 |], 1); ([| 5.1 |], 1); ([| 5.2 |], 1) ]
  in
  let m = Ml.Knn.fit ~k:3 train in
  check_int "near zero" 0 (Ml.Knn.predict m [| 0.05 |]);
  check_int "near five" 1 (Ml.Knn.predict m [| 5.05 |]);
  let pred, votes = Ml.Knn.predict_with_votes m [| 0.0 |] in
  check_int "votes for 0" 3 (List.assoc 0 votes);
  check_int "prediction" 0 pred

let test_knn_tie_break_nearest () =
  let train = [ ([| 0.0 |], 0); ([| 1.0 |], 1) ] in
  let m = Ml.Knn.fit ~k:2 train in
  (* k=2 tie: nearest neighbour's label wins *)
  check_int "tie to nearest" 0 (Ml.Knn.predict m [| 0.2 |])

let test_knn_errors () =
  check_bool "k=0 rejected" true
    (try ignore (Ml.Knn.fit ~k:0 [ ([| 0.0 |], 0) ]); false
     with Invalid_argument _ -> true)

(* ---- Cv ----------------------------------------------------------------------- *)

let test_cv_folds_partition () =
  let rng = Sutil.Rng.create 14 in
  let xs = List.init 20 Fun.id in
  let folds = Ml.Cv.folds ~rng ~k:5 xs in
  check_int "five folds" 5 (List.length folds);
  let all_test = List.concat_map snd folds in
  check_int "tests partition data" 20 (List.length all_test);
  Alcotest.(check (list int)) "every element tested once"
    (List.sort compare xs) (List.sort compare all_test);
  List.iter
    (fun (train, test) ->
      check_int "train+test = all" 20 (List.length train + List.length test);
      check_bool "disjoint" true
        (List.for_all (fun t -> not (List.mem t train)) test))
    folds

let test_cross_validate_perfect_model () =
  let rng = Sutil.Rng.create 15 in
  let xs = List.init 30 (fun i -> (i, i mod 2)) in
  let acc =
    Ml.Cv.cross_validate ~rng ~k:5
      ~train:(fun _ -> ())
      ~test:(fun () (x, y) -> x mod 2 = y)
      xs
  in
  check_float "perfect" 1.0 acc

let prop_knn_self_consistent =
  (* k=1 on the training set returns each point's own label. *)
  QCheck.Test.make ~name:"1-NN memorizes training set" ~count:50
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 20) (pair (float_range (-10.) 10.) (int_range 0 3))))
    (fun raw ->
      (* de-duplicate feature values so no two identical points carry
         different labels *)
      let seen = Hashtbl.create 16 in
      let pts =
        List.filter
          (fun (x, _) ->
            if Hashtbl.mem seen x then false
            else begin Hashtbl.add seen x (); true end)
          raw
      in
      match pts with
      | [] -> true
      | _ ->
        let train = List.map (fun (x, l) -> ([| x |], l)) pts in
        let m = Ml.Knn.fit ~k:1 train in
        List.for_all (fun (x, l) -> Ml.Knn.predict m [| x |] = l) pts)

let () =
  Alcotest.run "ml"
    [
      ("vector", [ Alcotest.test_case "ops" `Quick test_vector_ops ]);
      ("scale", [ Alcotest.test_case "standardizes" `Quick test_scale_standardizes ]);
      ( "metrics",
        [
          Alcotest.test_case "perfect" `Quick test_metrics_perfect;
          Alcotest.test_case "known confusion" `Quick test_metrics_known_confusion;
          Alcotest.test_case "absent class" `Quick test_metrics_absent_class;
          Alcotest.test_case "confusion matrix" `Quick test_confusion_matrix;
          Alcotest.test_case "per-class breakdown" `Quick
            test_per_class_breakdown;
          Alcotest.test_case "json export" `Quick test_metrics_to_json;
        ] );
      ( "svm",
        [
          Alcotest.test_case "separable" `Quick test_svm_separable;
          Alcotest.test_case "multiclass" `Quick test_svm_multiclass;
        ] );
      ("logreg", [ Alcotest.test_case "separable" `Quick test_logreg_separable ]);
      ( "knn",
        [
          Alcotest.test_case "basic" `Quick test_knn_basic;
          Alcotest.test_case "tie break" `Quick test_knn_tie_break_nearest;
          Alcotest.test_case "errors" `Quick test_knn_errors;
          QCheck_alcotest.to_alcotest prop_knn_self_consistent;
        ] );
      ( "cv",
        [
          Alcotest.test_case "folds partition" `Quick test_cv_folds_partition;
          Alcotest.test_case "cross validate" `Quick test_cross_validate_perfect_model;
        ] );
    ]
