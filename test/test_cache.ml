(* Tests for the cache simulator: geometry, set-associative behavior (LRU,
   flush, occupancy), the two-level inclusive hierarchy and cache states. *)

module C = Cache.Config
module SA = Cache.Set_assoc
module H = Cache.Hierarchy
module S = Cache.State
module Ow = Cache.Owner

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ---- Config ----------------------------------------------------------------- *)

let test_config_mapping () =
  let c = C.make ~sets:64 ~ways:8 () in
  check_int "lines" 512 (C.lines c);
  check_int "line size" 64 (C.line_size c);
  check_int "set of 0" 0 (C.set_of_addr c 0);
  check_int "set of 64" 1 (C.set_of_addr c 64);
  check_int "wrap" 0 (C.set_of_addr c (64 * 64));
  check_int "tag" 1 (C.tag_of_addr c (64 * 64));
  check_int "line addr" 128 (C.line_addr c 130)

let test_config_non_pow2 () =
  let c = C.make ~sets:61 ~ways:2 () in
  check_int "mod mapping" (4096 / 64 mod 61) (C.set_of_addr c 4096);
  (* page-stride addresses spread over sets instead of aliasing *)
  let sets =
    List.sort_uniq compare
      (List.init 8 (fun k -> C.set_of_addr c (k * 4096)))
  in
  check_int "8 distinct sets" 8 (List.length sets)

let test_config_errors () =
  check_bool "zero sets" true
    (try ignore (C.make ~sets:0 ~ways:1 ()); false
     with Invalid_argument _ -> true);
  check_bool "zero ways" true
    (try ignore (C.make ~sets:4 ~ways:0 ()); false
     with Invalid_argument _ -> true)

(* ---- Set_assoc ----------------------------------------------------------------- *)

let small () = SA.create (C.make ~sets:4 ~ways:2 ())

let test_sa_hit_miss () =
  let c = small () in
  let r1 = SA.access c ~owner:Ow.Attacker 0 in
  check_bool "first is miss" false r1.SA.hit;
  let r2 = SA.access c ~owner:Ow.Attacker 0 in
  check_bool "second is hit" true r2.SA.hit;
  check_bool "probe sees it" true (SA.probe c 0);
  check_bool "other set absent" false (SA.probe c 64)

let test_sa_lru_eviction () =
  let c = small () in
  (* set 0 holds lines 0 and 256 (4 sets * 64B span); a third congruent line
     evicts the least recently used. *)
  ignore (SA.access c ~owner:Ow.Attacker 0);
  ignore (SA.access c ~owner:Ow.Attacker 256);
  ignore (SA.access c ~owner:Ow.Attacker 0); (* refresh line 0 *)
  let r = SA.access c ~owner:Ow.Attacker 512 in
  check_bool "evicted something" true (Option.is_some r.SA.evicted);
  (match r.SA.evicted with
  | Some (addr, owner) ->
    check_int "evicted LRU line 256" 256 addr;
    check_bool "owner recorded" true (Ow.equal owner Ow.Attacker)
  | None -> ());
  check_bool "line 0 survived" true (SA.probe c 0);
  check_bool "line 256 gone" false (SA.probe c 256)

let test_sa_flush () =
  let c = small () in
  ignore (SA.access c ~owner:Ow.Attacker 0);
  check_bool "flush present" true (SA.flush c 0);
  check_bool "now absent" false (SA.probe c 0);
  check_bool "flush absent" false (SA.flush c 0)

let test_sa_ownership_transfer () =
  let c = small () in
  ignore (SA.access c ~owner:Ow.Victim 0);
  check_float "victim owns" (1.0 /. 8.0) (SA.occupancy c Ow.Victim);
  (* attacker re-touches the line: ownership transfers *)
  ignore (SA.access c ~owner:Ow.Attacker 0);
  check_float "attacker owns" (1.0 /. 8.0) (SA.occupancy c Ow.Attacker);
  check_float "victim no longer" 0.0 (SA.occupancy c Ow.Victim)

let test_sa_fill_all_and_state () =
  let c = small () in
  SA.fill_all c ~owner:Ow.System;
  check_int "all valid" 8 (SA.valid_lines c);
  let s = SA.state c in
  check_float "io 1" 1.0 s.S.io;
  check_float "ao 0" 0.0 s.S.ao;
  ignore (SA.access c ~owner:Ow.Attacker 0);
  let s' = SA.state c in
  check_float "ao grows" (1.0 /. 8.0) s'.S.ao;
  check_float "io shrinks" (7.0 /. 8.0) s'.S.io

let test_sa_owned_sets () =
  let c = small () in
  ignore (SA.access c ~owner:Ow.Attacker 64);   (* set 1 *)
  ignore (SA.access c ~owner:Ow.Attacker 192);  (* set 3 *)
  Alcotest.(check (list int)) "sets" [ 1; 3 ] (SA.owned_sets c Ow.Attacker)

let prop_occupancy_invariant =
  (* AO + IO <= 1 under arbitrary access/flush sequences. *)
  let op_gen =
    QCheck.Gen.(pair (int_range 0 2) (int_range 0 1023))
  in
  QCheck.Test.make ~name:"AO+IO <= 1 invariant" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 200) op_gen))
    (fun ops ->
      let c = SA.create (C.make ~sets:8 ~ways:2 ()) in
      List.iter
        (fun (kind, addr) ->
          match kind with
          | 0 -> ignore (SA.access c ~owner:Ow.Attacker (addr * 64))
          | 1 -> ignore (SA.access c ~owner:Ow.Victim (addr * 64))
          | _ -> ignore (SA.flush c (addr * 64)))
        ops;
      let s = SA.state c in
      s.S.ao >= 0.0 && s.S.io >= 0.0 && s.S.ao +. s.S.io <= 1.0 +. 1e-9)

let prop_valid_lines_bounded =
  QCheck.Test.make ~name:"valid lines bounded by capacity" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 0 300) (int_range 0 4095)))
    (fun addrs ->
      let c = SA.create (C.make ~sets:4 ~ways:2 ()) in
      List.iter (fun a -> ignore (SA.access c ~owner:Ow.System (a * 64))) addrs;
      SA.valid_lines c <= 8)

(* Reference LRU model: an association list per set, most recent first. *)
let prop_lru_matches_reference =
  QCheck.Test.make ~name:"set_assoc LRU matches a reference model" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 150) (pair (int_range 0 1) (int_range 0 63))))
    (fun ops ->
      let cfg = C.make ~sets:4 ~ways:2 () in
      let cache = SA.create cfg in
      (* model: per set, list of line addrs, MRU first *)
      let model = Array.make 4 [] in
      List.for_all
        (fun (kind, line) ->
          let addr = line * 64 in
          let set = C.set_of_addr cfg addr in
          match kind with
          | 0 ->
            let r = SA.access cache ~owner:Ow.Attacker addr in
            let model_hit = List.mem addr model.(set) in
            model.(set) <-
              addr :: List.filter (fun a -> a <> addr) model.(set);
            if List.length model.(set) > 2 then
              model.(set) <- List.filteri (fun i _ -> i < 2) model.(set);
            r.SA.hit = model_hit
          | _ ->
            let was = List.mem addr model.(set) in
            model.(set) <- List.filter (fun a -> a <> addr) model.(set);
            SA.flush cache addr = was)
        ops)

(* ---- Hierarchy -------------------------------------------------------------------- *)

let test_hierarchy_latencies () =
  let h = H.create () in
  let miss = H.load h ~owner:Ow.Attacker 0x1000 in
  check_int "cold miss" H.default_latencies.H.memory miss.H.latency;
  let hit = H.load h ~owner:Ow.Attacker 0x1000 in
  check_bool "l1 hit" true hit.H.l1_hit;
  check_int "l1 latency" H.default_latencies.H.l1_hit hit.H.latency

let test_hierarchy_llc_hit_after_l1_evict () =
  let h = H.create () in
  ignore (H.load h ~owner:Ow.Attacker 0x1000);
  (* Evict from L1 (64 sets x 8 ways): load 8 more lines in the same L1 set
     (stride = 64 sets * 64 B = 4096), but different LLC sets (512 sets). *)
  for i = 1 to 8 do
    ignore (H.load h ~owner:Ow.Attacker (0x1000 + (i * 4096)))
  done;
  let r = H.load h ~owner:Ow.Attacker 0x1000 in
  check_bool "not in l1" false r.H.l1_hit;
  check_bool "still in llc" true r.H.llc_hit;
  check_int "llc latency" H.default_latencies.H.llc_hit r.H.latency

let test_hierarchy_flush_timing () =
  let h = H.create () in
  ignore (H.load h ~owner:Ow.Attacker 0x2000);
  check_int "flush present slower" H.default_latencies.H.flush_present
    (H.flush h 0x2000);
  check_int "flush absent faster" H.default_latencies.H.flush_absent
    (H.flush h 0x2000)

(* A geometry where the L1 has more sets than the LLC, so an LLC-congruent
   eviction set does NOT conflict in the L1 — isolating back-invalidation
   from plain L1 conflict misses (with the default geometry the L1 sets
   divide the LLC sets, so congruence always aliases both levels). *)
let decoupled () =
  H.create ~l1d:(C.make ~sets:512 ~ways:2 ()) ~llc:(C.make ~sets:64 ~ways:4 ())
    ()

let decoupled_non_inclusive () =
  H.create ~inclusive:false ~l1d:(C.make ~sets:512 ~ways:2 ())
    ~llc:(C.make ~sets:64 ~ways:4 ()) ()

let test_hierarchy_inclusive () =
  let h = decoupled () in
  ignore (H.load h ~owner:Ow.Attacker 0x3000);
  (* Fill the LLC set of 0x3000 with 4 fresh congruent lines
     (stride = 64 sets * 64 B) that live in distinct L1 sets. *)
  for i = 1 to 4 do
    ignore (H.load h ~owner:Ow.Attacker (0x3000 + (i * 4096)))
  done;
  (* Back-invalidation must have removed it from L1 too: the reload misses
     everywhere. *)
  let r = H.load h ~owner:Ow.Attacker 0x3000 in
  check_bool "l1 invalidated" false r.H.l1_hit;
  check_bool "llc evicted" false r.H.llc_hit

let test_hierarchy_ifetch_separate () =
  let h = H.create () in
  ignore (H.ifetch h ~owner:Ow.Attacker 0x4000);
  let r = H.ifetch h ~owner:Ow.Attacker 0x4000 in
  check_bool "l1i hit" true r.H.l1_hit;
  (* data side unaffected *)
  let d = H.load h ~owner:Ow.Attacker 0x4000 in
  check_bool "l1d separate" false d.H.l1_hit

let test_hierarchy_fill_with () =
  let h = H.create () in
  H.fill_with h ~owner:Ow.System;
  let s = H.llc_state h in
  check_float "full of system data" 1.0 s.S.io

let test_hierarchy_non_inclusive () =
  let h = decoupled_non_inclusive () in
  ignore (H.load h ~owner:Ow.Attacker 0x3000);
  for i = 1 to 4 do
    ignore (H.load h ~owner:Ow.Attacker (0x3000 + (i * 4096)))
  done;
  (* LLC evicted the line but no back-invalidation: L1 still hits *)
  let r = H.load h ~owner:Ow.Attacker 0x3000 in
  check_bool "l1 keeps the line" true r.H.l1_hit

let test_hierarchy_prefetcher () =
  let h = H.create ~prefetch:true () in
  ignore (H.load h ~owner:Ow.Attacker 0x5000);
  (* the next line was prefetched: its demand load hits *)
  let r = H.load h ~owner:Ow.Attacker 0x5040 in
  check_bool "next line prefetched" true r.H.l1_hit;
  (* no prefetcher by default *)
  let h2 = H.create () in
  ignore (H.load h2 ~owner:Ow.Attacker 0x5000);
  let r2 = H.load h2 ~owner:Ow.Attacker 0x5040 in
  check_bool "default has no prefetcher" false r2.H.l1_hit

let test_policy_fifo_no_refresh () =
  let c = SA.create ~policy:Cache.Policy.Fifo (C.make ~sets:1 ~ways:2 ()) in
  ignore (SA.access c ~owner:Ow.Attacker 0);    (* fill order: 0 *)
  ignore (SA.access c ~owner:Ow.Attacker 64);   (* fill order: 0, 64 *)
  ignore (SA.access c ~owner:Ow.Attacker 0);    (* hit; FIFO does not refresh *)
  ignore (SA.access c ~owner:Ow.Attacker 128);  (* evicts 0 (oldest fill) *)
  check_bool "oldest fill evicted despite the hit" false (SA.probe c 0);
  check_bool "line 64 survives" true (SA.probe c 64)

let test_policy_random_fills_invalid_first () =
  let c = SA.create ~policy:(Cache.Policy.Random 7) (C.make ~sets:1 ~ways:4 ()) in
  for i = 0 to 3 do
    ignore (SA.access c ~owner:Ow.Attacker (i * 64))
  done;
  check_int "all four present" 4 (SA.valid_lines c)

let test_cross_core_flush_propagates () =
  let a, b = H.create_cross_core () in
  (* victim core caches a line privately *)
  ignore (H.load b ~owner:Ow.Victim 0x6000);
  (* attacker's clflush must invalidate the peer's private copy too *)
  ignore (H.flush a 0x6000);
  let r = H.load b ~owner:Ow.Victim 0x6000 in
  check_bool "peer L1 invalidated" false r.H.l1_hit;
  check_bool "LLC invalidated" false r.H.llc_hit

let test_cross_core_private_l1s () =
  let a, b = H.create_cross_core () in
  ignore (H.load b ~owner:Ow.Victim 0x7000);
  (* the attacker's first load of the victim-cached line misses its private
     L1 but hits the shared LLC *)
  let r = H.load a ~owner:Ow.Attacker 0x7000 in
  check_bool "attacker L1 miss" false r.H.l1_hit;
  check_bool "shared LLC hit" true r.H.llc_hit

(* ---- State ------------------------------------------------------------------------- *)

let test_state_constructors () =
  check_bool "invalid sum rejected" true
    (try ignore (S.make ~ao:0.7 ~io:0.7); false
     with Invalid_argument _ -> true);
  check_bool "negative rejected" true
    (try ignore (S.make ~ao:(-0.1) ~io:0.5); false
     with Invalid_argument _ -> true);
  let s = S.full_other in
  check_float "full io" 1.0 s.S.io

let test_state_change_magnitude () =
  let before = S.make ~ao:0.0 ~io:1.0 in
  let after = S.make ~ao:0.25 ~io:0.75 in
  check_float "P" 0.25 (S.change_magnitude ~before ~after);
  check_float "identity" 0.0 (S.change_magnitude ~before ~after:before)

let test_state_distance () =
  let a = (S.make ~ao:0.0 ~io:1.0, S.make ~ao:0.5 ~io:0.5) in
  let b = (S.make ~ao:0.0 ~io:1.0, S.make ~ao:0.0 ~io:1.0) in
  check_float "|P1 - P2|" 0.5 (S.distance a b);
  check_float "self" 0.0 (S.distance a a)

let () =
  Alcotest.run "cache"
    [
      ( "config",
        [
          Alcotest.test_case "mapping" `Quick test_config_mapping;
          Alcotest.test_case "non-pow2 sets" `Quick test_config_non_pow2;
          Alcotest.test_case "errors" `Quick test_config_errors;
        ] );
      ( "set_assoc",
        [
          Alcotest.test_case "hit/miss" `Quick test_sa_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_sa_lru_eviction;
          Alcotest.test_case "flush" `Quick test_sa_flush;
          Alcotest.test_case "ownership transfer" `Quick test_sa_ownership_transfer;
          Alcotest.test_case "fill_all/state" `Quick test_sa_fill_all_and_state;
          Alcotest.test_case "owned sets" `Quick test_sa_owned_sets;
          QCheck_alcotest.to_alcotest prop_occupancy_invariant;
          QCheck_alcotest.to_alcotest prop_valid_lines_bounded;
          QCheck_alcotest.to_alcotest prop_lru_matches_reference;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "latencies" `Quick test_hierarchy_latencies;
          Alcotest.test_case "llc hit after l1 evict" `Quick
            test_hierarchy_llc_hit_after_l1_evict;
          Alcotest.test_case "flush timing" `Quick test_hierarchy_flush_timing;
          Alcotest.test_case "inclusive back-invalidate" `Quick test_hierarchy_inclusive;
          Alcotest.test_case "split ifetch" `Quick test_hierarchy_ifetch_separate;
          Alcotest.test_case "fill_with" `Quick test_hierarchy_fill_with;
          Alcotest.test_case "non-inclusive keeps L1" `Quick test_hierarchy_non_inclusive;
          Alcotest.test_case "prefetcher" `Quick test_hierarchy_prefetcher;
        ] );
      ( "cross_core",
        [
          Alcotest.test_case "flush propagates" `Quick test_cross_core_flush_propagates;
          Alcotest.test_case "private L1s" `Quick test_cross_core_private_l1s;
        ] );
      ( "policy",
        [
          Alcotest.test_case "fifo no refresh" `Quick test_policy_fifo_no_refresh;
          Alcotest.test_case "random fills invalid first" `Quick
            test_policy_random_fills_invalid_first;
        ] );
      ( "state",
        [
          Alcotest.test_case "constructors" `Quick test_state_constructors;
          Alcotest.test_case "change magnitude" `Quick test_state_change_magnitude;
          Alcotest.test_case "distance" `Quick test_state_distance;
        ] );
    ]
