(* Tests for the ISA library: registers, operands, instruction metadata,
   normalization, program assembly and transformation. *)

module I = Isa.Instr
module O = Isa.Operand
module R = Isa.Reg
module P = Isa.Program
module B = Isa.Builder

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* ---- Reg ------------------------------------------------------------------ *)

let test_reg_index_roundtrip () =
  List.iter
    (fun r -> check_bool "roundtrip" true (R.equal r (R.of_index (R.index r))))
    R.all;
  check_int "count" 16 R.count

let test_reg_scratch () =
  check_bool "no rsp" false (List.mem R.RSP R.scratch);
  check_bool "no rbp" false (List.mem R.RBP R.scratch)

(* ---- Operand --------------------------------------------------------------- *)

let test_operand_regs_read () =
  check_int "imm reads none" 0 (List.length (O.regs_read (O.imm 5)));
  check_int "reg reads one" 1 (List.length (O.regs_read (O.reg R.RAX)));
  check_int "mem base+index" 2
    (List.length (O.regs_read (O.mem ~base:R.RBX ~index:R.RCX ())))

let test_operand_strings () =
  check_str "imm" "$7" (O.to_string (O.imm 7));
  check_str "reg" "%rax" (O.to_string (O.reg R.RAX));
  check_str "abs" "[0x10]" (O.to_string (O.abs 16))

(* ---- Instr metadata --------------------------------------------------------- *)

let test_instr_memory_classes () =
  let load = I.Mov (O.reg R.RAX, O.abs 0x100) in
  let store = I.Mov (O.abs 0x100, O.reg R.RAX) in
  check_bool "load reads" true (I.reads_memory load);
  check_bool "load no write" false (I.writes_memory load);
  check_bool "store writes" true (I.writes_memory store);
  check_bool "store no read" false (I.reads_memory store);
  check_bool "clflush neither reads data" false (I.reads_memory (I.Clflush (O.abs 0)));
  check_bool "lea no read" false (I.reads_memory (I.Lea (R.RAX, O.abs 0)));
  check_bool "prefetch reads" true (I.reads_memory (I.Prefetch (O.abs 0)));
  check_bool "rmw add reads" true (I.reads_memory (I.Add (O.abs 0, O.imm 1)));
  check_bool "rmw add writes" true (I.writes_memory (I.Add (O.abs 0, O.imm 1)))

let test_instr_branch_classes () =
  check_bool "jmp" true (I.is_branch (I.Jmp "l"));
  check_bool "jcc" true (I.is_branch (I.Jcc (I.Eq, "l")));
  check_bool "call" true (I.is_branch (I.Call "l"));
  check_bool "ret" true (I.is_branch I.Ret);
  check_bool "halt" true (I.is_branch I.Halt);
  check_bool "mov not" false (I.is_branch (I.Mov (O.reg R.RAX, O.imm 0)));
  check_bool "jcc cond" true (I.is_cond_branch (I.Jcc (I.Ne, "l")));
  check_bool "jmp not cond" false (I.is_cond_branch (I.Jmp "l"));
  Alcotest.(check (option string)) "target" (Some "l") (I.branch_target (I.Jmp "l"))

let test_instr_flags () =
  check_bool "cmp writes" true (I.writes_flags (I.Cmp (O.reg R.RAX, O.imm 0)));
  check_bool "mov no" false (I.writes_flags (I.Mov (O.reg R.RAX, O.imm 0)));
  check_bool "jcc reads" true (I.reads_flags (I.Jcc (I.Lt, "l")));
  check_bool "add no read" false (I.reads_flags (I.Add (O.reg R.RAX, O.imm 1)))

let test_instr_reg_sets () =
  let ins = I.Add (O.reg R.RAX, O.mem ~base:R.RBX ~index:R.RCX ()) in
  let read = I.regs_read ins in
  check_bool "reads rax" true (List.mem R.RAX read);
  check_bool "reads rbx" true (List.mem R.RBX read);
  check_bool "reads rcx" true (List.mem R.RCX read);
  Alcotest.(check (list string)) "writes rax" [ "rax" ]
    (List.map R.to_string (I.regs_written ins));
  check_bool "push writes rsp" true (List.mem R.RSP (I.regs_written (I.Push (O.reg R.RAX))));
  check_bool "rdtsc writes rax" true (List.mem R.RAX (I.regs_written I.Rdtsc))

let test_instr_map_target () =
  let f l = "x_" ^ l in
  Alcotest.(check (option string)) "jmp mapped" (Some "x_l")
    (I.branch_target (I.map_target f (I.Jmp "l")));
  check_bool "mov unchanged" true
    (I.equal (I.Mov (O.reg R.RAX, O.imm 1)) (I.map_target f (I.Mov (O.reg R.RAX, O.imm 1))))

(* ---- Normalize -------------------------------------------------------------- *)

let test_normalize () =
  check_str "mov mem,reg" "mov mem,reg"
    (Isa.Normalize.instr (I.Mov (O.mem ~base:R.RBP ~disp:(-24) (), O.reg R.RAX)));
  check_str "imm" "add reg,imm"
    (Isa.Normalize.instr (I.Add (O.reg R.RBX, O.imm 99)));
  check_str "branch drops target" "jne" (Isa.Normalize.instr (I.Jcc (I.Ne, "foo")));
  check_str "clflush" "clflush mem" (Isa.Normalize.instr (I.Clflush (O.abs 0)));
  check_str "nop" "nop" (Isa.Normalize.instr I.Nop)

let test_normalize_erases_registers () =
  (* Register renaming must not change the normalized form. *)
  let a = I.Mov (O.reg R.R8, O.mem ~base:R.R10 ~index:R.R11 ~scale:8 ()) in
  let b = I.Mov (O.reg R.RCX, O.mem ~base:R.RDX ~index:R.RSI ~scale:4 ()) in
  check_str "same" (Isa.Normalize.instr a) (Isa.Normalize.instr b)

(* ---- Program ---------------------------------------------------------------- *)

let simple_prog () =
  P.assemble ~name:"t"
    [
      P.Ins (I.Mov (O.reg R.RAX, O.imm 0));
      P.Lbl "loop";
      P.Ins (I.Inc (O.reg R.RAX));
      P.Ins (I.Cmp (O.reg R.RAX, O.imm 3));
      P.Ins (I.Jcc (I.Ne, "loop"));
      P.Ins I.Halt;
    ]

let test_program_assemble () =
  let p = simple_prog () in
  check_int "length" 5 (P.length p);
  check_int "label" 1 (P.label_index p "loop");
  check_int "addr" (0x400000 + 8) (P.addr_of_index p 2);
  Alcotest.(check (option int)) "index of addr" (Some 2)
    (P.index_of_addr p (0x400000 + 8));
  Alcotest.(check (option int)) "misaligned" None (P.index_of_addr p (0x400000 + 6));
  Alcotest.(check (option int)) "out of range" None (P.index_of_addr p 0x500000)

let test_program_assemble_errors () =
  check_bool "unbound label" true
    (try ignore (P.assemble ~name:"t" [ P.Ins (I.Jmp "nowhere") ]); false
     with Invalid_argument _ -> true);
  check_bool "duplicate label" true
    (try
       ignore
         (P.assemble ~name:"t"
            [ P.Lbl "a"; P.Ins I.Nop; P.Lbl "a"; P.Ins I.Halt ]);
       false
     with Invalid_argument _ -> true);
  check_bool "empty" true
    (try ignore (P.assemble ~name:"t" []); false
     with Invalid_argument _ -> true)

let test_program_tags () =
  let p =
    P.assemble ~name:"t" ~tags:[ (1, [ "attack" ]); (2, [ "x"; "y" ]) ]
      [ P.Ins I.Nop; P.Ins I.Nop; P.Ins I.Nop ]
  in
  check_bool "tag present" true (P.has_tag p 1 "attack");
  check_bool "tag absent" false (P.has_tag p 0 "attack");
  Alcotest.(check (list int)) "tagged indices" [ 1 ] (P.tagged_indices p "attack")

let test_deconstruct_roundtrip () =
  let p = simple_prog () in
  let items = P.deconstruct p in
  let p' = P.reconstruct ~name:"t2" items in
  check_int "same length" (P.length p) (P.length p');
  for i = 0 to P.length p - 1 do
    check_bool "same instr" true (I.equal (P.instr p i) (P.instr p' i))
  done;
  check_int "same label" (P.label_index p "loop") (P.label_index p' "loop")

let test_rename_labels () =
  let items = P.deconstruct (simple_prog ()) in
  let renamed = P.rename_labels (fun l -> "pfx_" ^ l) items in
  let p = P.reconstruct ~name:"renamed" renamed in
  check_int "new label" 1 (P.label_index p "pfx_loop");
  check_bool "old gone" true
    (try ignore (P.label_index p "loop"); false with Not_found -> true)

let test_splice_chains_halts () =
  let part1 =
    P.assemble ~name:"a" [ P.Ins (I.Mov (O.reg R.RAX, O.imm 1)); P.Ins I.Halt ]
  in
  let part2 =
    P.assemble ~name:"b" [ P.Ins (I.Mov (O.reg R.RBX, O.imm 2)); P.Ins I.Halt ]
  in
  let s = P.splice ~name:"s" [ part1; part2 ] in
  check_int "total" 4 (P.length s);
  (* part1's halt became a jump to part2's entry *)
  check_bool "halt replaced" true
    (match P.instr s 1 with I.Jmp _ -> true | _ -> false);
  check_bool "final halt kept" true (P.instr s 3 = I.Halt)

(* ---- Builder ----------------------------------------------------------------- *)

let test_builder_tags_and_labels () =
  let b = B.create () in
  B.emit b I.Nop;
  B.mark_attack b (fun () ->
      B.emit b (I.Clflush (O.abs 0));
      B.with_tag b "inner" (fun () -> B.emit b I.Nop));
  B.emit b I.Halt;
  let p = B.to_program ~name:"t" b in
  check_bool "instr 1 attack" true (P.has_tag p 1 P.attack_tag);
  check_bool "instr 2 attack+inner" true
    (P.has_tag p 2 P.attack_tag && P.has_tag p 2 "inner");
  check_bool "instr 0 untagged" false (P.has_tag p 0 P.attack_tag)

let test_builder_fresh_labels () =
  let b = B.create () in
  let l1 = B.fresh_label b "x" in
  let l2 = B.fresh_label b "x" in
  check_bool "unique" true (l1 <> l2)

let prop_roundtrip_random_linear_programs =
  (* Linear instruction lists (no branches) always survive a
     deconstruct/reconstruct roundtrip. *)
  let gen_instr =
    QCheck.Gen.oneofl
      [
        I.Nop;
        I.Mov (O.reg R.RAX, O.imm 1);
        I.Add (O.reg R.RBX, O.imm 2);
        I.Clflush (O.abs 64);
        I.Rdtsc;
      ]
  in
  QCheck.Test.make ~name:"deconstruct/reconstruct roundtrip" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 1 20) gen_instr))
    (fun instrs ->
      let p = P.assemble ~name:"r" (List.map (fun i -> P.Ins i) instrs) in
      let p' = P.reconstruct ~name:"r" (P.deconstruct p) in
      List.length instrs = P.length p'
      && List.for_all2 I.equal instrs (Array.to_list (P.code p')))

(* ---- Binary codec ---------------------------------------------------------- *)

let programs_equal a b =
  P.length a = P.length b
  && P.base a = P.base b
  && P.labels a = P.labels b
  && Array.for_all2 I.equal (P.code a) (P.code b)

let test_binary_roundtrip_pocs () =
  List.iter
    (fun (spec : Workloads.Attacks.spec) ->
      let prog = spec.Workloads.Attacks.program in
      check_bool
        (spec.Workloads.Attacks.name ^ " roundtrips")
        true
        (programs_equal prog (Isa.Binary.decode (Isa.Binary.encode prog))))
    (Workloads.Attacks.base_pocs ())

let test_binary_negative_values () =
  let p =
    P.assemble ~name:"neg"
      [
        P.Ins (I.Mov (O.reg R.RAX, O.imm (-123456789)));
        P.Ins (I.Mov (O.reg R.RBX, O.mem ~base:R.RBP ~disp:(-8) ()));
        P.Ins I.Halt;
      ]
  in
  check_bool "negative imm and disp survive" true
    (programs_equal p (Isa.Binary.decode (Isa.Binary.encode p)))

let test_binary_rejects_garbage () =
  let bad s = try ignore (Isa.Binary.decode s); false with Failure _ -> true in
  check_bool "bad magic" true (bad "NOTSCAB");
  check_bool "empty" true (bad "");
  let good = Isa.Binary.encode (simple_prog ()) in
  check_bool "truncated" true
    (bad (String.sub good 0 (String.length good - 3)))

let prop_binary_roundtrip =
  let gen_instr =
    QCheck.Gen.oneofl
      [
        I.Nop;
        I.Mov (O.reg R.RAX, O.imm (-7));
        I.Add (O.reg R.RBX, O.mem ~base:R.RBP ~index:R.RCX ~scale:8 ~disp:(-64) ());
        I.Clflush (O.abs 4096);
        I.Push (O.imm 3);
        I.Pop R.R9;
        I.Shl (O.reg R.RDX, 5);
        I.Rdtscp;
        I.Cmp (O.reg R.RSI, O.imm 100);
      ]
  in
  QCheck.Test.make ~name:"binary roundtrip of random programs" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 1 30) gen_instr))
    (fun instrs ->
      let p = P.assemble ~name:"r" (List.map (fun i -> P.Ins i) instrs) in
      programs_equal p (Isa.Binary.decode (Isa.Binary.encode p)))

let () =
  Alcotest.run "isa"
    [
      ( "reg",
        [
          Alcotest.test_case "index roundtrip" `Quick test_reg_index_roundtrip;
          Alcotest.test_case "scratch excludes stack regs" `Quick test_reg_scratch;
        ] );
      ( "operand",
        [
          Alcotest.test_case "regs_read" `Quick test_operand_regs_read;
          Alcotest.test_case "to_string" `Quick test_operand_strings;
        ] );
      ( "instr",
        [
          Alcotest.test_case "memory classes" `Quick test_instr_memory_classes;
          Alcotest.test_case "branch classes" `Quick test_instr_branch_classes;
          Alcotest.test_case "flags" `Quick test_instr_flags;
          Alcotest.test_case "reg sets" `Quick test_instr_reg_sets;
          Alcotest.test_case "map_target" `Quick test_instr_map_target;
        ] );
      ( "normalize",
        [
          Alcotest.test_case "rules" `Quick test_normalize;
          Alcotest.test_case "erases registers" `Quick test_normalize_erases_registers;
        ] );
      ( "program",
        [
          Alcotest.test_case "assemble" `Quick test_program_assemble;
          Alcotest.test_case "assemble errors" `Quick test_program_assemble_errors;
          Alcotest.test_case "tags" `Quick test_program_tags;
          Alcotest.test_case "deconstruct roundtrip" `Quick test_deconstruct_roundtrip;
          Alcotest.test_case "rename labels" `Quick test_rename_labels;
          Alcotest.test_case "splice chains halts" `Quick test_splice_chains_halts;
          QCheck_alcotest.to_alcotest prop_roundtrip_random_linear_programs;
        ] );
      ( "binary",
        [
          Alcotest.test_case "PoCs roundtrip" `Quick test_binary_roundtrip_pocs;
          Alcotest.test_case "negative values" `Quick test_binary_negative_values;
          Alcotest.test_case "rejects garbage" `Quick test_binary_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_binary_roundtrip;
        ] );
      ( "builder",
        [
          Alcotest.test_case "tags and labels" `Quick test_builder_tags_and_labels;
          Alcotest.test_case "fresh labels" `Quick test_builder_fresh_labels;
        ] );
    ]
