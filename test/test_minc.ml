(* Tests for the MinC compiler: lexing, parsing, code generation semantics
   (differentially against an OCaml evaluator), optimization equivalence,
   and the compiled-attack story. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* run a source program; read back cell 0 of global "out" *)
let run_out ?(optimize = false) src =
  let ast = Minc.Parser.parse src in
  let prog = Minc.Codegen.compile ~optimize ast in
  let res = Cpu.Exec.run prog in
  Alcotest.(check bool) "halted" true res.Cpu.Exec.halted_normally;
  let _, base, stride =
    List.find (fun (n, _, _) -> n = "out") (Minc.Codegen.global_layout ast)
  in
  Cpu.Machine.load res.Cpu.Exec.machine base
  |> fun v -> ignore stride; v

(* ---- Lexer -------------------------------------------------------------- *)

let test_lexer_tokens () =
  let toks = Minc.Lexer.tokenize "fn f(x) { return x + 0x10; } // c" in
  check_int "token count" 13 (List.length toks);
  check_bool "hex literal" true
    (List.exists (function Minc.Lexer.INT 16 -> true | _ -> false) toks);
  check_bool "keyword fn" true
    (List.exists (function Minc.Lexer.KW "fn" -> true | _ -> false) toks)

let test_lexer_two_char_ops () =
  let toks = Minc.Lexer.tokenize "a <= b << 2 == c" in
  let puncts =
    List.filter_map
      (function Minc.Lexer.PUNCT p -> Some p | _ -> None)
      toks
  in
  Alcotest.(check (list string)) "ops" [ "<="; "<<"; "==" ] puncts

let test_lexer_rejects_garbage () =
  check_bool "bad char" true
    (try ignore (Minc.Lexer.tokenize "fn $"); false
     with Minc.Lexer.Error _ -> true)

(* ---- Parser --------------------------------------------------------------- *)

let test_parser_structure () =
  let p =
    Minc.Parser.parse
      "global a[8]; global probe[16 : 4096] @ 0x30000000;\n\
       fn main() { return 0; } fn f(x, y) { return x; }"
  in
  check_int "globals" 2 (List.length p.Minc.Ast.globals);
  check_int "funcs" 2 (List.length p.Minc.Ast.funcs);
  let probe = List.nth p.Minc.Ast.globals 1 in
  check_int "stride" 4096 probe.Minc.Ast.stride;
  Alcotest.(check (option int)) "base" (Some 0x30000000) probe.Minc.Ast.base;
  let a = List.hd p.Minc.Ast.globals in
  check_int "default stride" 8 a.Minc.Ast.stride

let test_parser_errors () =
  let bad src =
    try ignore (Minc.Parser.parse src); false with Minc.Parser.Error _ -> true
  in
  check_bool "missing semicolon" true (bad "fn main() { return 0 }");
  check_bool "bad toplevel" true (bad "return 0;");
  check_bool "unclosed block" true (bad "fn main() { return 0;");
  check_bool "bad statement" true (bad "fn main() { 0 = x; }")

(* ---- Codegen semantics ------------------------------------------------------- *)

let test_precedence () =
  check_int "mul binds tighter" 7 (run_out "global out[1]; fn main() { out[0] = 1 + 2 * 3; return 0; }");
  check_int "parens" 9 (run_out "global out[1]; fn main() { out[0] = (1 + 2) * 3; return 0; }");
  check_int "shift" 24 (run_out "global out[1]; fn main() { out[0] = 3 << 3; return 0; }");
  check_int "comparison chain" 1
    (run_out "global out[1]; fn main() { out[0] = 1 + 2 < 4; return 0; }")

let test_recursion () =
  check_int "factorial" 120
    (run_out
       "global out[1];\n\
        fn fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }\n\
        fn main() { out[0] = fact(5); return 0; }")

let test_mutual_calls_and_args () =
  check_int "four args" 17
    (run_out
       "global out[1];\n\
        fn f(a, b, c, d) { return a + b * c - d; }\n\
        fn main() { out[0] = f(3, 4, 4, 2); return 0; }")

let test_while_and_if_else () =
  check_int "collatz steps of 27" 111
    (run_out
       "global out[1];\n\
        fn main() {\n\
          var n = 27;\n\
          var steps = 0;\n\
          while (n != 1) {\n\
            if ((n & 1) == 1) { n = 3 * n + 1; } else { n = n >> 1; }\n\
            steps = steps + 1;\n\
          }\n\
          out[0] = steps;\n\
          return 0;\n\
        }")

let test_globals_stride () =
  (* stride-64 arrays write to distinct cache lines *)
  let src =
    "global t[4 : 64]; global out[1];\n\
     fn main() { t[0] = 10; t[1] = 20; t[3] = 40; out[0] = t[0] + t[1] + t[3]; return 0; }"
  in
  check_int "strided cells" 70 (run_out src)

let test_codegen_errors () =
  let bad src =
    try ignore (Minc.Codegen.compile_source src); false
    with Minc.Codegen.Error _ -> true
  in
  check_bool "no main" true (bad "fn f() { return 0; }");
  check_bool "unknown var" true (bad "fn main() { return x; }");
  check_bool "unknown global" true (bad "fn main() { return g[0]; }");
  check_bool "unknown function" true (bad "fn main() { return f(); }");
  check_bool "arity mismatch" true
    (bad "fn f(x) { return x; } fn main() { return f(); }");
  check_bool "variable shift" true
    (bad "fn main() { var k = 2; return 1 << k; }")

(* ---- Differential testing against an OCaml evaluator --------------------------- *)

let rec eval_ref env (e : Minc.Ast.expr) =
  match e with
  | Minc.Ast.Int v -> v
  | Minc.Ast.Var x -> List.assoc x env
  | Minc.Ast.Neg a -> -eval_ref env a
  | Minc.Ast.Bin (op, a, b) -> (
    let x = eval_ref env a and y = eval_ref env b in
    match op with
    | Minc.Ast.Add -> x + y
    | Minc.Ast.Sub -> x - y
    | Minc.Ast.Mul -> x * y
    | Minc.Ast.BAnd -> x land y
    | Minc.Ast.BOr -> x lor y
    | Minc.Ast.BXor -> x lxor y
    | Minc.Ast.Shl -> x lsl y
    | Minc.Ast.Shr -> x lsr y
    | Minc.Ast.Eq -> if x = y then 1 else 0
    | Minc.Ast.Ne -> if x <> y then 1 else 0
    | Minc.Ast.Lt -> if x < y then 1 else 0
    | Minc.Ast.Le -> if x <= y then 1 else 0
    | Minc.Ast.Gt -> if x > y then 1 else 0
    | Minc.Ast.Ge -> if x >= y then 1 else 0)
  | Minc.Ast.Global _ | Minc.Ast.Call _ | Minc.Ast.Rdtsc ->
    invalid_arg "eval_ref"

let expr_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun v -> Minc.Ast.Int v) (int_range 0 200);
        oneofl [ Minc.Ast.Var "x"; Minc.Ast.Var "y" ];
      ]
  in
  let arith_op =
    oneofl
      [ Minc.Ast.Add; Minc.Ast.Sub; Minc.Ast.Mul; Minc.Ast.BAnd;
        Minc.Ast.BOr; Minc.Ast.BXor; Minc.Ast.Eq; Minc.Ast.Ne; Minc.Ast.Lt;
        Minc.Ast.Le; Minc.Ast.Gt; Minc.Ast.Ge ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (1, leaf);
            (1, map (fun e -> Minc.Ast.Neg e) (self (depth - 1)));
            ( 2,
              map2
                (fun k e -> Minc.Ast.Bin (Minc.Ast.Shl, e, Minc.Ast.Int k))
                (int_range 0 4) (self (depth - 1)) );
            ( 6,
              map3
                (fun op a b -> Minc.Ast.Bin (op, a, b))
                arith_op (self (depth - 1)) (self (depth - 1)) );
          ])
    3

let prop_compiled_expressions_match_reference optimize =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "compiled expressions match reference (optimize=%b)"
         optimize)
    ~count:150
    (QCheck.make expr_gen)
    (fun expr ->
      let xv = 13 and yv = 7 in
      let ast =
        {
          Minc.Ast.globals =
            [ { Minc.Ast.gname = "out"; count = 1; stride = 8; base = None } ];
          funcs =
            [
              {
                Minc.Ast.name = "main";
                params = [];
                body =
                  [
                    Minc.Ast.Decl ("x", Minc.Ast.Int xv);
                    Minc.Ast.Decl ("y", Minc.Ast.Int yv);
                    Minc.Ast.Store ("out", Minc.Ast.Int 0, expr);
                    Minc.Ast.Return (Minc.Ast.Int 0);
                  ];
              };
            ];
        }
      in
      let prog = Minc.Codegen.compile ~optimize ast in
      let res = Cpu.Exec.run prog in
      let _, base, _ =
        List.find (fun (n, _, _) -> n = "out") (Minc.Codegen.global_layout ast)
      in
      let got = Cpu.Machine.load res.Cpu.Exec.machine base in
      got = eval_ref [ ("x", xv); ("y", yv) ] expr)

(* ---- Optimization equivalence --------------------------------------------------- *)

let test_optimize_equivalent_on_corpus () =
  List.iter
    (fun (name, src) ->
      let v0 = run_out ~optimize:false src in
      let v1 = run_out ~optimize:true src in
      check_int (name ^ " same result") v0 v1)
    Minc.Programs.benign_sources

let test_optimize_changes_code () =
  let src = snd (List.hd Minc.Programs.benign_sources) in
  let p0 = Minc.Codegen.compile_source ~optimize:false src in
  let p1 = Minc.Codegen.compile_source ~optimize:true src in
  check_bool "code differs" true (Isa.Program.length p0 <> Isa.Program.length p1)

(* ---- Pretty-printer round trips -------------------------------------------------- *)

let test_pretty_roundtrip_corpus () =
  List.iter
    (fun (name, src) ->
      let ast = Minc.Parser.parse src in
      let printed = Minc.Pretty.program ast in
      let ast2 = Minc.Parser.parse printed in
      (* printing is a parser fixed point *)
      Alcotest.(check string) (name ^ " idempotent") printed
        (Minc.Pretty.program ast2);
      (* and behavior is preserved (programs with an "out" global) *)
      match
        List.find_opt (fun (n, _, _) -> n = "out") (Minc.Codegen.global_layout ast)
      with
      | None -> ()
      | Some (_, base, _) ->
        let run ast =
          let prog = Minc.Codegen.compile ast in
          let res = Cpu.Exec.run prog in
          Cpu.Machine.load res.Cpu.Exec.machine base
        in
        check_int (name ^ " same behavior") (run ast) (run ast2))
    (("fr-attack", Minc.Programs.flush_reload_source) :: Minc.Programs.benign_sources)

let prop_pretty_expr_roundtrip =
  QCheck.Test.make ~name:"pretty-printed expressions re-parse" ~count:150
    (QCheck.make expr_gen)
    (fun e ->
      let src =
        Printf.sprintf
          "fn main() { var x = 1; var y = 2; return %s; }" (Minc.Pretty.expr e)
      in
      let ast = Minc.Parser.parse src in
      match (List.hd ast.Minc.Ast.funcs).Minc.Ast.body with
      | [ _; _; Minc.Ast.Return e' ] -> e = e'
      | _ -> false)

(* ---- The compiled attack ---------------------------------------------------------- *)

let test_compiled_attack_leaks () =
  let victim = Workloads.Victim.shared_lib () in
  let prog =
    Minc.Codegen.compile_source ~name:"minc-fr" Minc.Programs.flush_reload_source
  in
  let res = Cpu.Exec.run ~victim prog in
  let hist =
    Array.init 8 (fun i ->
        Cpu.Machine.load res.Cpu.Exec.machine
          (Workloads.Layout.attacker_results_base + (8 * i)))
  in
  check_bool "victim lines hot" true
    (hist.(2) >= 12 && hist.(3) >= 12 && hist.(5) >= 12);
  check_bool "other lines cold" true
    (hist.(0) <= 2 && hist.(1) <= 2 && hist.(4) <= 2)

let test_compiled_attack_cross_compile_similarity () =
  let victim = Workloads.Victim.shared_lib () in
  let model optimize =
    let prog =
      Minc.Codegen.compile_source ~optimize ~name:"minc-fr"
        Minc.Programs.flush_reload_source
    in
    (Scaguard.Pipeline.run_and_analyze ~victim prog).Scaguard.Pipeline.model
  in
  let s = Scaguard.Dtw.compare_models (model false) (model true) in
  (* "different compilers" must still look like the same attack *)
  check_bool "cross-compile similarity high" true (s > 0.85)

let test_compiled_attack_recognized () =
  let victim = Workloads.Victim.shared_lib () in
  let prog =
    Minc.Codegen.compile_source ~name:"minc-fr" Minc.Programs.flush_reload_source
  in
  let m = (Scaguard.Pipeline.run_and_analyze ~victim prog).Scaguard.Pipeline.model in
  let rng = Sutil.Rng.create 1 in
  let repo = Experiments.Common.repository ~rng Workloads.Label.attack_labels in
  let v = Scaguard.Detector.classify ~threshold:0.55 repo m in
  (* compiler-shaped code sits farther from the hand-written PoCs but the
     top family is still right *)
  Alcotest.(check (option string)) "classified FR" (Some "FR-F")
    v.Scaguard.Detector.best_family

let test_compiled_population_separates () =
  (* Compiler-shaped code compresses the similarity range (stack-frame
     traffic looks alike everywhere), but within the compiled population the
     same-attack pair still scores above every benign program — the
     threshold just needs the Fig.-5 sweep on that population. *)
  let victim = Workloads.Victim.shared_lib () in
  let model ?victim ?(optimize = false) name src =
    let prog = Minc.Codegen.compile_source ~optimize ~name src in
    (Scaguard.Pipeline.run_and_analyze ?victim prog).Scaguard.Pipeline.model
  in
  let fr0 = model ~victim "fr" Minc.Programs.flush_reload_source in
  let fr1 = model ~victim ~optimize:true "fr" Minc.Programs.flush_reload_source in
  let same_attack = Scaguard.Dtw.compare_models fr0 fr1 in
  let benign_max =
    List.fold_left
      (fun acc (name, src) ->
        let s = Scaguard.Dtw.compare_models fr0 (model name src) in
        max acc s)
      0.0 Minc.Programs.benign_sources
  in
  check_bool "same attack above every compiled benign" true
    (same_attack > benign_max +. 0.05)

let () =
  Alcotest.run "minc"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "two-char ops" `Quick test_lexer_two_char_ops;
          Alcotest.test_case "rejects garbage" `Quick test_lexer_rejects_garbage;
        ] );
      ( "parser",
        [
          Alcotest.test_case "structure" `Quick test_parser_structure;
          Alcotest.test_case "errors" `Quick test_parser_errors;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "recursion" `Quick test_recursion;
          Alcotest.test_case "calls and args" `Quick test_mutual_calls_and_args;
          Alcotest.test_case "while/if-else" `Quick test_while_and_if_else;
          Alcotest.test_case "strided globals" `Quick test_globals_stride;
          Alcotest.test_case "semantic errors" `Quick test_codegen_errors;
          QCheck_alcotest.to_alcotest (prop_compiled_expressions_match_reference false);
          QCheck_alcotest.to_alcotest (prop_compiled_expressions_match_reference true);
        ] );
      ( "optimize",
        [
          Alcotest.test_case "equivalent on corpus" `Quick
            test_optimize_equivalent_on_corpus;
          Alcotest.test_case "changes code" `Quick test_optimize_changes_code;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "corpus roundtrip" `Quick test_pretty_roundtrip_corpus;
          QCheck_alcotest.to_alcotest prop_pretty_expr_roundtrip;
        ] );
      ( "attack",
        [
          Alcotest.test_case "compiled FR leaks" `Slow test_compiled_attack_leaks;
          Alcotest.test_case "cross-compile similarity" `Slow
            test_compiled_attack_cross_compile_similarity;
          Alcotest.test_case "recognized by the detector" `Slow
            test_compiled_attack_recognized;
          Alcotest.test_case "compiled population separates" `Slow
            test_compiled_population_separates;
        ] );
    ]
