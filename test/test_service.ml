(* The service facade: Config round-trips and validation, Err taxonomy, and
   the core guarantee that Service.build / Service.detect add no behaviour —
   byte-identical models, bit-identical verdicts — over the manual
   Pipeline + Engine composition. *)

module SG = Scaguard

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_tmp_dir f =
  let dir = Filename.temp_file "scaguard_service" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then (
        Array.iter
          (fun n -> Sys.remove (Filename.concat dir n))
          (Sys.readdir dir);
        Unix.rmdir dir))
    (fun () -> f dir)

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (SG.Err.to_string e)

(* -- Config generator: arbitrary *valid* configs --------------------------- *)

let config_gen : SG.Config.t QCheck.Gen.t =
  let open QCheck.Gen in
  let line_string =
    string_size ~gen:(char_range ' ' '~') (int_range 0 12)
  in
  let* threshold = float_range 0.0 1.0 in
  let* alpha = opt (float_range 0.0 1.0) in
  let* band = opt (int_range 0 40) in
  let* prune = bool in
  let* max_paths = opt (int_range 1 64) in
  let* max_len = opt (int_range 1 64) in
  let* sets = int_range 1 128 in
  let* ways = int_range 1 8 in
  let* line_bits = int_range 0 8 in
  let* spec_window = int_range 0 300 in
  let* quantum = int_range 1 200 in
  let* victim_quantum = int_range 1 200 in
  let* fuel = int_range 1 1_000_000 in
  let* protected_range =
    opt
      (let* lo = int_range 0 4096 in
       let* len = int_range 0 4096 in
       return (lo, lo + len))
  in
  let* domains = opt (int_range 1 8) in
  let* cache_dir = opt line_string in
  let* salt = line_string in
  let* repo_format = oneofl [ SG.Config.Text; SG.Config.Binary ] in
  let* index =
    oneofl [ SG.Config.Index_off; SG.Config.Index_auto; SG.Config.Index_vp ]
  in
  let* index_leaf = int_range 2 64 in
  let* index_pivots = int_range 1 16 in
  let* ensemble_tau = float_range 0.0 8.0 in
  let* log_level =
    oneofl [ SG.Log.Debug; SG.Log.Info; SG.Log.Warn; SG.Log.Error ]
  in
  return
    {
      SG.Config.threshold;
      alpha;
      band;
      prune;
      max_paths;
      max_len;
      cst_config = { Cache.Config.sets; ways; line_bits };
      exec =
        { Cpu.Exec.spec_window; quantum; victim_quantum; fuel; protected_range };
      domains;
      cache_dir;
      salt;
      repo_format;
      index;
      index_leaf;
      index_pivots;
      ensemble_tau;
      log_level;
    }

let config_arb =
  QCheck.make ~print:(fun c -> SG.Config.to_string c) config_gen

let prop_config_roundtrip =
  QCheck.Test.make ~name:"config to_string/of_string round-trips" ~count:300
    config_arb (fun c ->
      match SG.Config.of_string (SG.Config.to_string c) with
      | Ok c' -> c' = c
      | Error e -> QCheck.Test.fail_reportf "%s" (SG.Err.to_string e))

(* -- Config validation ------------------------------------------------------ *)

let field_of = function
  | Error (SG.Err.Invalid_config { field; _ }) -> field
  | Ok _ -> Alcotest.fail "expected Invalid_config, got Ok"
  | Error e -> Alcotest.failf "expected Invalid_config, got %s" (SG.Err.to_string e)

let test_config_validate_rejects () =
  let d = SG.Config.default in
  check_string "nan threshold" "threshold"
    (field_of (SG.Config.validate { d with SG.Config.threshold = Float.nan }));
  check_string "threshold > 1" "threshold"
    (field_of (SG.Config.validate { d with SG.Config.threshold = 1.5 }));
  check_string "negative alpha" "alpha"
    (field_of (SG.Config.validate { d with SG.Config.alpha = Some (-0.1) }));
  check_string "negative band" "band"
    (field_of (SG.Config.validate { d with SG.Config.band = Some (-1) }));
  check_string "zero max_paths" "max_paths"
    (field_of (SG.Config.validate { d with SG.Config.max_paths = Some 0 }));
  check_string "zero domains" "domains"
    (field_of (SG.Config.validate { d with SG.Config.domains = Some 0 }));
  check_string "zero-way probe cache" "cst_ways"
    (field_of
       (SG.Config.validate
          {
            d with
            SG.Config.cst_config =
              { d.SG.Config.cst_config with Cache.Config.ways = 0 };
          }));
  check_string "zero fuel" "exec_fuel"
    (field_of
       (SG.Config.validate
          {
            d with
            SG.Config.exec = { d.SG.Config.exec with Cpu.Exec.fuel = 0 };
          }));
  check_string "inverted protected range" "exec_protected_range"
    (field_of
       (SG.Config.validate
          {
            d with
            SG.Config.exec =
              {
                d.SG.Config.exec with
                Cpu.Exec.protected_range = Some (10, 5);
              };
          }));
  check_string "newline in salt" "salt"
    (field_of (SG.Config.validate { d with SG.Config.salt = "a\nb" }));
  check_string "negative ensemble tau" "ensemble_tau"
    (field_of (SG.Config.validate { d with SG.Config.ensemble_tau = -0.5 }));
  check_string "nan ensemble tau" "ensemble_tau"
    (field_of
       (SG.Config.validate { d with SG.Config.ensemble_tau = Float.nan }));
  (* the checkers report the caller-chosen field name (CLI flags) *)
  check_string "flag name override" "--threshold"
    (field_of (SG.Config.check_threshold ~field:"--threshold" 2.0));
  (* exit-code taxonomy: config errors are usage errors *)
  check_int "config errors exit 1" 1
    (SG.Err.exit_code
       (SG.Err.Invalid_config { field = "x"; value = "y"; expected = "z" }));
  check_int "parse errors exit 2" 2
    (SG.Err.exit_code (SG.Err.Parse { file = None; line = None; msg = "m" }))

let parse_line = function
  | Error (SG.Err.Parse { line; _ }) -> line
  | Ok _ -> Alcotest.fail "expected Parse error, got Ok"
  | Error e -> Alcotest.failf "expected Parse, got %s" (SG.Err.to_string e)

let test_config_of_string_errors () =
  Alcotest.(check (option int))
    "bad magic points at line 1" (Some 1)
    (parse_line (SG.Config.of_string "bogus\n"));
  Alcotest.(check (option int))
    "unknown key points at its line" (Some 4)
    (parse_line
       (SG.Config.of_string "scaguard-config 1\n# comment\nthreshold=0.5\nwat=1\n"));
  Alcotest.(check (option int))
    "bad number points at its line" (Some 2)
    (parse_line (SG.Config.of_string "scaguard-config 1\nthreshold=abc\n"));
  (match SG.Config.of_string "scaguard-config 1\nthreshold=2\n" with
  | Error (SG.Err.Invalid_config { field = "threshold"; _ }) -> ()
  | r ->
    Alcotest.failf "expected Invalid_config threshold, got %s"
      (match r with Ok _ -> "Ok" | Error e -> SG.Err.to_string e));
  (* comments, blank lines and omitted keys are fine *)
  let c =
    ok_exn
      (SG.Config.of_string
         "scaguard-config 1\n\n# tuned for the cluster\nthreshold=0.5\nband=3\n")
  in
  check_bool "parsed partial config" true
    (c
    = {
        SG.Config.default with
        SG.Config.threshold = 0.5;
        SG.Config.band = Some 3;
      })

let test_config_save_load () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "run.conf" in
      let c =
        {
          SG.Config.default with
          SG.Config.threshold = 0.55;
          SG.Config.domains = Some 2;
          SG.Config.salt = "2026:FR-F";
        }
      in
      ok_exn (SG.Config.save ~path c);
      check_bool "load returns the saved config" true
        (ok_exn (SG.Config.load ~path) = c);
      (match SG.Config.load ~path:(Filename.concat dir "absent.conf") with
      | Error (SG.Err.Io _) -> ()
      | r ->
        Alcotest.failf "expected Io, got %s"
          (match r with Ok _ -> "Ok" | Error e -> SG.Err.to_string e));
      let garbage = Filename.concat dir "garbage.conf" in
      let oc = open_out garbage in
      output_string oc "scaguard-config 1\nthreshold=oops\n";
      close_out oc;
      match SG.Config.load ~path:garbage with
      | Error (SG.Err.Parse { file = Some f; line = Some 2; _ }) ->
        check_string "parse error names the file" garbage f
      | r ->
        Alcotest.failf "expected Parse with file+line, got %s"
          (match r with Ok _ -> "Ok" | Error e -> SG.Err.to_string e))

(* -- Service bit-identity --------------------------------------------------- *)

let job_of (spec : Workloads.Attacks.spec) =
  SG.Pipeline.job ?settings:spec.Workloads.Attacks.settings
    ~init:spec.Workloads.Attacks.init ?victim:spec.Workloads.Attacks.victim
    ~name:(Isa.Program.name spec.Workloads.Attacks.program)
    spec.Workloads.Attacks.program

let test_jobs () =
  [|
    job_of (Workloads.Attacks.flush_reload ~style:Workloads.Attacks.Iaik ());
    job_of (Workloads.Attacks.evict_reload ());
    job_of (Workloads.Attacks.prime_probe ~style:Workloads.Attacks.Mastik ());
  |]

let strings models = Array.map SG.Persist.model_to_string models

let test_build_identical () =
  let jobs = test_jobs () in
  let manual = SG.Pipeline.build_models_batch jobs in
  let models, report = ok_exn (SG.Service.build SG.Config.default jobs) in
  check_bool "models byte-identical to the manual composition" true
    (strings manual = strings models);
  check_int "report counts the builds" (Array.length jobs)
    report.SG.Service.built;
  check_bool "no cache configured, no cache stats" true
    (report.SG.Service.cache = None)

let test_detect_identical () =
  let rng = Sutil.Rng.create 11 in
  let repo =
    Experiments.Common.repository ~rng
      [ Workloads.Label.Fr_family; Workloads.Label.Pp_family ]
  in
  let targets = SG.Pipeline.build_models_batch (test_jobs ()) in
  let manual, _ = SG.Engine.classify_batch repo targets in
  let verdicts, report =
    ok_exn (SG.Service.detect SG.Config.default repo targets)
  in
  check_bool "verdicts bit-identical to the manual composition" true
    (manual = verdicts);
  check_int "report counts the targets" (Array.length targets)
    report.SG.Service.classified;
  match report.SG.Service.engine with
  | Some stats ->
    check_int "engine stats cover the batch" (Array.length targets)
      stats.SG.Engine.targets
  | None -> Alcotest.fail "detect report is missing engine stats"

let test_screen_composes () =
  let rng = Sutil.Rng.create 12 in
  let repo =
    Experiments.Common.repository ~rng [ Workloads.Label.Fr_family ]
  in
  let jobs = test_jobs () in
  let models, verdicts, report =
    ok_exn (SG.Service.screen SG.Config.default repo jobs)
  in
  let models', _ = ok_exn (SG.Service.build SG.Config.default jobs) in
  let verdicts', _ = ok_exn (SG.Service.detect SG.Config.default repo models') in
  check_bool "screen builds the same models" true
    (strings models = strings models');
  check_bool "screen reaches the same verdicts" true (verdicts = verdicts');
  check_int "screen reports both stages" 2
    (List.length report.SG.Service.timings)

let test_config_knobs_flow_through () =
  (* a non-default detection config must agree with the manual composition
     given the same knobs *)
  let config =
    {
      SG.Config.default with
      SG.Config.threshold = 0.4;
      SG.Config.alpha = Some 0.9;
      SG.Config.band = Some 6;
      SG.Config.prune = false;
      SG.Config.domains = Some 2;
    }
  in
  let rng = Sutil.Rng.create 13 in
  let repo =
    Experiments.Common.repository ~rng
      [ Workloads.Label.Fr_family; Workloads.Label.Spectre_fr ]
  in
  let targets = SG.Pipeline.build_models_batch (test_jobs ()) in
  let manual, _ =
    SG.Engine.classify_batch ~threshold:0.4 ~alpha:0.9 ~band:6 ~domains:2
      ~prune:false repo targets
  in
  let verdicts, _ = ok_exn (SG.Service.detect config repo targets) in
  check_bool "knobbed verdicts identical" true (manual = verdicts)

let test_build_with_cache () =
  with_tmp_dir (fun dir ->
      let config =
        { SG.Config.default with SG.Config.cache_dir = Some dir } in
      let jobs = test_jobs () in
      let cold, cold_report = ok_exn (SG.Service.build config jobs) in
      let warm, warm_report = ok_exn (SG.Service.build config jobs) in
      check_bool "warm cache models byte-identical" true
        (strings cold = strings warm);
      match (cold_report.SG.Service.cache, warm_report.SG.Service.cache) with
      | Some c, Some w ->
        check_int "cold run misses every job" (Array.length jobs)
          c.SG.Service.misses;
        check_int "cold run hits nothing" 0 c.SG.Service.hits;
        check_int "warm run hits every job" (Array.length jobs)
          w.SG.Service.hits;
        check_int "warm run misses nothing" 0 w.SG.Service.misses
      | _ -> Alcotest.fail "cache_dir set but report has no cache stats")

let test_save_load_formats () =
  (* Service.save_repository honours config.repo_format; load_repository
     sniffs either format and detect_prepared on the loaded prepared
     repository reaches the same verdicts as detect on the repository *)
  let rng = Sutil.Rng.create 14 in
  let repo =
    Experiments.Common.repository ~rng
      [ Workloads.Label.Fr_family; Workloads.Label.Pp_family ]
  in
  let targets = SG.Pipeline.build_models_batch (test_jobs ()) in
  let reference, _ = ok_exn (SG.Service.detect SG.Config.default repo targets) in
  with_tmp_dir (fun dir ->
      List.iter
        (fun fmt ->
          let config = { SG.Config.default with SG.Config.repo_format = fmt } in
          let path =
            Filename.concat dir
              ("r." ^ SG.Config.repo_format_to_string fmt)
          in
          let save_report = ok_exn (SG.Service.save_repository config ~path repo) in
          check_bool "save report has a save timing" true
            (List.exists
               (fun t -> t.SG.Service.stage = "save")
               save_report.SG.Service.timings);
          check_bool "format on disk matches the knob" true
            (SG.Persist.is_binary (SG.Persist.read_file ~path)
            = (fmt = SG.Config.Binary));
          let loaded, prep, load_report =
            ok_exn (SG.Service.load_repository ~path ())
          in
          check_int "load report counts the models" (List.length repo)
            load_report.SG.Service.built;
          check_string "loaded repository byte-identical"
            (SG.Persist.repository_to_string repo)
            (SG.Persist.repository_to_string loaded);
          let verdicts, _ =
            ok_exn (SG.Service.detect_prepared SG.Config.default prep targets)
          in
          check_bool
            ("detect_prepared = detect ("
            ^ SG.Config.repo_format_to_string fmt ^ ")")
            true
            (verdicts = reference))
        [ SG.Config.Text; SG.Config.Binary ])

(* -- Service error paths ---------------------------------------------------- *)

let test_service_error_paths () =
  let jobs = test_jobs () in
  (match
     SG.Service.build
       { SG.Config.default with SG.Config.threshold = Float.nan }
       jobs
   with
  | Error (SG.Err.Invalid_config { field = "threshold"; _ }) -> ()
  | Ok _ -> Alcotest.fail "NaN threshold accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (SG.Err.to_string e));
  (match SG.Service.detect SG.Config.default [] [| |] with
  | Error SG.Err.Empty_repository -> ()
  | Ok _ -> Alcotest.fail "empty repository accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (SG.Err.to_string e));
  (* a cache_dir that collides with an existing *file* cannot be created *)
  let file = Filename.temp_file "scaguard_service" ".notadir" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      match
        SG.Service.build
          { SG.Config.default with SG.Config.cache_dir = Some file }
          jobs
      with
      | Error (SG.Err.Invalid_config _ | SG.Err.Io _) -> ()
      | Ok _ -> Alcotest.fail "file as cache_dir accepted"
      | Error e -> Alcotest.failf "wrong error: %s" (SG.Err.to_string e))

(* -- Persist result variants ------------------------------------------------ *)

let test_persist_parse_locations () =
  let spec = Workloads.Attacks.flush_reload ~style:Workloads.Attacks.Iaik () in
  let analysis =
    SG.Pipeline.run_and_analyze ~init:spec.Workloads.Attacks.init
      ?victim:spec.Workloads.Attacks.victim spec.Workloads.Attacks.program
  in
  let repo =
    [ { SG.Detector.family = "FR-F"; model = analysis.SG.Pipeline.model } ]
  in
  let s = SG.Persist.repository_to_string repo in
  (* truncate mid-model: drop everything from the last 2 lines *)
  let lines = String.split_on_char '\n' s in
  let keep = List.filteri (fun i _ -> i < List.length lines - 3) lines in
  let truncated = String.concat "\n" keep in
  (match SG.Persist.repository_of_string_result truncated with
  | Error (SG.Err.Parse { line = Some n; _ }) ->
    check_bool "truncation reported near the end" true
      (n >= List.length keep - 1)
  | Ok _ -> Alcotest.fail "truncated repository parsed"
  | Error e -> Alcotest.failf "wrong error: %s" (SG.Err.to_string e));
  (* a corrupted line is reported with its exact 1-based number *)
  let is_cst l = String.length l >= 4 && String.sub l 0 4 = "cst " in
  let cst_line =
    1 + Option.get (List.find_index is_cst lines)
  in
  let corrupted =
    lines
    |> List.mapi (fun i l -> if i + 1 = cst_line then "cst wat" else l)
    |> String.concat "\n"
  in
  (match SG.Persist.repository_of_string_result corrupted with
  | Error (SG.Err.Parse { line = Some n; _ }) when n = cst_line -> ()
  | Error (SG.Err.Parse { line; _ }) ->
    Alcotest.failf "wrong line: %s (expected %d)"
      (match line with Some n -> string_of_int n | None -> "none")
      cst_line
  | Ok _ -> Alcotest.fail "corrupt repository parsed"
  | Error e -> Alcotest.failf "wrong error: %s" (SG.Err.to_string e));
  with_tmp_dir (fun dir ->
      (* on-disk loads label errors with the path *)
      let path = Filename.concat dir "trunc.repo" in
      let oc = open_out path in
      output_string oc truncated;
      close_out oc;
      (match SG.Persist.load_repository_result ~path with
      | Error (SG.Err.Parse { file = Some f; line = Some _; _ }) ->
        check_string "parse error names the file" path f
      | r ->
        Alcotest.failf "expected Parse with file, got %s"
          (match r with Ok _ -> "Ok" | Error e -> SG.Err.to_string e));
      (* and a missing file is Io, not Parse *)
      match
        SG.Persist.load_repository_result
          ~path:(Filename.concat dir "missing.repo")
      with
      | Error (SG.Err.Io _) -> ()
      | r ->
        Alcotest.failf "expected Io, got %s"
          (match r with Ok _ -> "Ok" | Error e -> SG.Err.to_string e))

let () =
  Alcotest.run "service"
    [
      ( "config",
        [
          QCheck_alcotest.to_alcotest prop_config_roundtrip;
          Alcotest.test_case "validate rejects bad fields" `Quick
            test_config_validate_rejects;
          Alcotest.test_case "of_string error locations" `Quick
            test_config_of_string_errors;
          Alcotest.test_case "save/load" `Quick test_config_save_load;
        ] );
      ( "facade identity",
        [
          Alcotest.test_case "build matches manual composition" `Quick
            test_build_identical;
          Alcotest.test_case "detect matches manual composition" `Quick
            test_detect_identical;
          Alcotest.test_case "screen composes build+detect" `Quick
            test_screen_composes;
          Alcotest.test_case "non-default knobs flow through" `Quick
            test_config_knobs_flow_through;
          Alcotest.test_case "cache round-trip via config" `Quick
            test_build_with_cache;
          Alcotest.test_case "save/load both formats, prepared detect" `Quick
            test_save_load_formats;
        ] );
      ( "error paths",
        [
          Alcotest.test_case "service errors" `Quick test_service_error_paths;
          Alcotest.test_case "persist parse locations" `Quick
            test_persist_parse_locations;
        ] );
    ]
