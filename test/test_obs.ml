(* The observability subsystem: registry exactness (including under domain
   concurrency), Prometheus exposition shape, Chrome trace-event JSON
   validity, deterministic sampling, and the core guarantee that turning
   tracing/metrics on changes no verdict bit and no model byte. *)

module SG = Scaguard
module Obs = Scaguard.Obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Every test leaves the global switches off and the global state clean,
   whatever happens. *)
let with_obs ~tracing ~metrics f =
  Obs.reset ();
  Obs.set_tracing tracing;
  Obs.set_metrics metrics;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_tracing false;
      Obs.set_metrics false;
      Obs.set_span_sample_rate 1.0;
      Obs.reset ())
    f

(* -- clock ------------------------------------------------------------------ *)

let test_clock_monotone () =
  let prev = ref (Obs.Clock.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now_ns () in
    check_bool "clock never goes backwards" true (Int64.compare t !prev >= 0);
    prev := t
  done;
  check_bool "elapsed is non-negative" true
    (Obs.Clock.elapsed_s ~since:(Obs.Clock.now_ns ()) >= 0.0)

(* -- registry --------------------------------------------------------------- *)

let find_value name snap =
  match
    List.find_opt (fun e -> e.Obs.Registry.entry_name = name) snap
  with
  | Some e -> e.Obs.Registry.entry_value
  | None -> Alcotest.failf "metric %s not in snapshot" name

let test_counter_exact () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r ~help:"h" "c_total" in
  Obs.Registry.incr c;
  Obs.Registry.add c 41;
  (match find_value "c_total" (Obs.Registry.snapshot r) with
  | Obs.Registry.Counter_value v -> check_int "counter sums" 42 v
  | _ -> Alcotest.fail "expected a counter");
  (* create-or-get: the same (name, labels) pair is the same metric *)
  let c' = Obs.Registry.counter r "c_total" in
  Obs.Registry.incr c';
  (match find_value "c_total" (Obs.Registry.snapshot r) with
  | Obs.Registry.Counter_value v -> check_int "same handle" 43 v
  | _ -> Alcotest.fail "expected a counter");
  (* distinct labels are a distinct series *)
  let cl = Obs.Registry.counter r ~labels:[ ("k", "v") ] "c_total" in
  Obs.Registry.add cl 7;
  let labelled =
    List.filter (fun e -> e.Obs.Registry.entry_name = "c_total")
      (Obs.Registry.snapshot r)
  in
  check_int "two series" 2 (List.length labelled);
  (* kind clash is a programming error *)
  Alcotest.check_raises "kind clash raises"
    (Invalid_argument
       "Obs.Registry: metric \"c_total\" already registered as a non-gauge")
    (fun () -> ignore (Obs.Registry.gauge r "c_total"))

let test_gauge_and_reset () =
  let r = Obs.Registry.create () in
  let g = Obs.Registry.gauge r "g" in
  Obs.Registry.set_gauge g 2.5;
  (match find_value "g" (Obs.Registry.snapshot r) with
  | Obs.Registry.Gauge_value v -> Alcotest.(check (float 0.0)) "gauge" 2.5 v
  | _ -> Alcotest.fail "expected a gauge");
  Obs.Registry.reset r;
  match find_value "g" (Obs.Registry.snapshot r) with
  | Obs.Registry.Gauge_value v -> Alcotest.(check (float 0.0)) "reset" 0.0 v
  | _ -> Alcotest.fail "expected a gauge"

let test_histogram_exact () =
  let r = Obs.Registry.create () in
  let h =
    Obs.Registry.histogram r ~buckets:[| 0.1; 1.0; 10.0 |] "h_seconds"
  in
  (* one per bucket: edge values land in the bucket they bound (le) *)
  List.iter (Obs.Registry.observe h) [ 0.05; 0.1; 0.5; 10.0; 11.0 ];
  (match find_value "h_seconds" (Obs.Registry.snapshot r) with
  | Obs.Registry.Histogram_value hs ->
    Alcotest.(check (array int)) "bucket counts" [| 2; 1; 1; 1 |]
      hs.Obs.Registry.counts;
    check_int "count" 5 hs.Obs.Registry.count;
    check_bool "sum (fixed-point 1e-9) is close" true
      (Float.abs (hs.Obs.Registry.sum -. 21.65) < 1e-6)
  | _ -> Alcotest.fail "expected a histogram");
  Alcotest.check_raises "bad ladder raises"
    (Invalid_argument
       "Obs.Registry.histogram: buckets must be finite and strictly ascending")
    (fun () ->
      ignore (Obs.Registry.histogram r ~buckets:[| 1.0; 1.0 |] "h2"))

(* N domains hammering the same counter and histogram: the sharded cells
   must merge to exact totals — no lost updates. *)
let test_concurrent_exact () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r "hammer_total" in
  let h = Obs.Registry.histogram r ~buckets:[| 0.5 |] "hammer_seconds" in
  let domains = 6 and per_domain = 20_000 in
  let workers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs.Registry.incr c;
              Obs.Registry.observe h (if i mod 2 = 0 then 0.25 else 0.75)
            done))
  in
  List.iter Domain.join workers;
  (match find_value "hammer_total" (Obs.Registry.snapshot r) with
  | Obs.Registry.Counter_value v ->
    check_int "no lost counter updates" (domains * per_domain) v
  | _ -> Alcotest.fail "expected a counter");
  match find_value "hammer_seconds" (Obs.Registry.snapshot r) with
  | Obs.Registry.Histogram_value hs ->
    check_int "no lost observations" (domains * per_domain)
      hs.Obs.Registry.count;
    Alcotest.(check (array int))
      "buckets split exactly"
      [| domains * per_domain / 2; domains * per_domain / 2 |]
      hs.Obs.Registry.counts
  | _ -> Alcotest.fail "expected a histogram"

(* -- Prometheus exposition -------------------------------------------------- *)

let test_prometheus_format () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r ~help:"a counter" "x_total" in
  Obs.Registry.add c 3;
  let h =
    Obs.Registry.histogram r ~labels:[ ("stage", "build") ]
      ~buckets:[| 0.5; 1.0 |] "lat_seconds"
  in
  Obs.Registry.observe h 0.25;
  Obs.Registry.observe h 0.75;
  Obs.Registry.observe h 2.0;
  let text = Obs.Registry.to_prometheus (Obs.Registry.snapshot r) in
  let has line =
    List.mem line (String.split_on_char '\n' text)
  in
  check_bool "HELP line" true (has "# HELP x_total a counter");
  check_bool "TYPE line" true (has "# TYPE x_total counter");
  check_bool "counter sample" true (has "x_total 3");
  check_bool "histogram TYPE" true (has "# TYPE lat_seconds histogram");
  (* buckets are cumulative, +Inf covers everything *)
  check_bool "le=0.5" true (has "lat_seconds_bucket{stage=\"build\",le=\"0.5\"} 1");
  check_bool "le=1" true (has "lat_seconds_bucket{stage=\"build\",le=\"1\"} 2");
  check_bool "le=+Inf" true
    (has "lat_seconds_bucket{stage=\"build\",le=\"+Inf\"} 3");
  check_bool "count" true (has "lat_seconds_count{stage=\"build\"} 3");
  check_bool "sum" true (has "lat_seconds_sum{stage=\"build\"} 3")

(* Conformance details a real scraper depends on: the label-value escape
   set (backslash, double quote, line feed), the smaller HELP escape set
   (no quote), the metric/label name charsets, and HELP/TYPE emitted once
   per family, before its samples. *)

let test_prometheus_escaping () =
  let r = Obs.Registry.create () in
  let c =
    Obs.Registry.counter r
      ~help:"backslash \\ quote \" newline\nhelp"
      ~labels:[ ("v", "a\\b\"c\nd") ]
      "esc_total"
  in
  Obs.Registry.incr c;
  let lines =
    String.split_on_char '\n'
      (Obs.Registry.to_prometheus (Obs.Registry.snapshot r))
  in
  let has line = List.mem line lines in
  check_bool "label value escapes \\ \" and newline" true
    (has "esc_total{v=\"a\\\\b\\\"c\\nd\"} 1");
  check_bool "HELP escapes \\ and newline, keeps the quote literal" true
    (has "# HELP esc_total backslash \\\\ quote \" newline\\nhelp")

let test_prometheus_name_charset () =
  let metric_ok n =
    let first = function 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false in
    let rest = function
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
      | _ -> false
    in
    String.length n > 0 && first n.[0] && String.for_all rest n
  in
  let label_ok n =
    (* label names additionally exclude the colon *)
    metric_ok n && not (String.contains n ':')
  in
  with_obs ~tracing:false ~metrics:true (fun () ->
      (* make sure the full stock metric set (identity gauges included) is
         registered before sweeping it *)
      Obs.export_build_info ~version:"1.2.3" ~format_version:"2"
        ~start_ns:(Obs.Clock.now_ns ()) ();
      let snap = Obs.snapshot () in
      check_bool "snapshot is non-trivial" true (List.length snap > 3);
      List.iter
        (fun e ->
          let n = e.Obs.Registry.entry_name in
          check_bool (Printf.sprintf "metric name %S is legal" n) true
            (metric_ok n);
          List.iter
            (fun (k, _) ->
              check_bool (Printf.sprintf "label name %S is legal" k) true
                (label_ok k))
            e.Obs.Registry.entry_labels)
        snap)

let test_prometheus_header_ordering () =
  let r = Obs.Registry.create () in
  let series stage =
    Obs.Registry.histogram r ~help:"latency" ~labels:[ ("stage", stage) ]
      ~buckets:[| 1.0 |] "multi_seconds"
  in
  Obs.Registry.observe (series "a") 0.5;
  Obs.Registry.observe (series "b") 2.0;
  Obs.Registry.incr (Obs.Registry.counter r ~help:"c" "after_total");
  let lines =
    List.filter
      (fun l -> l <> "")
      (String.split_on_char '\n'
         (Obs.Registry.to_prometheus (Obs.Registry.snapshot r)))
  in
  let indexed = List.mapi (fun i l -> (i, l)) lines in
  let starts p l =
    String.length l >= String.length p && String.sub l 0 (String.length p) = p
  in
  let only p =
    match List.filter (fun (_, l) -> starts p l) indexed with
    | [ (i, _) ] -> i
    | hits -> Alcotest.failf "%S appears %d times, want 1" p (List.length hits)
  in
  (* one header pair per family even with two label series, HELP first *)
  let help_i = only "# HELP multi_seconds " in
  let type_i = only "# TYPE multi_seconds " in
  check_bool "HELP precedes TYPE" true (help_i < type_i);
  let samples =
    List.filter_map
      (fun (i, l) -> if starts "multi_seconds_" l then Some i else None)
      indexed
  in
  check_int "2 series x (2 buckets + sum + count)" 8 (List.length samples);
  List.iter
    (fun i -> check_bool "samples follow their header" true (i > type_i))
    samples

let test_build_info_export () =
  with_obs ~tracing:false ~metrics:true (fun () ->
      Obs.export_build_info ~version:"9.9.9" ~format_version:"7"
        ~start_ns:(Int64.sub (Obs.Clock.now_ns ()) 1_500_000_000L)
        ();
      let lines =
        String.split_on_char '\n'
          (Obs.Registry.to_prometheus (Obs.snapshot ()))
      in
      check_bool "identity gauge is 1" true
        (List.mem
           "scaguard_build_info{version=\"9.9.9\",format_version=\"7\"} 1"
           lines);
      let prefix = "scaguard_uptime_seconds " in
      match
        List.find_opt
          (fun l ->
            String.length l > String.length prefix
            && String.sub l 0 (String.length prefix) = prefix)
          lines
      with
      | None -> Alcotest.fail "scaguard_uptime_seconds not exposed"
      | Some l ->
        let v =
          float_of_string
            (String.sub l (String.length prefix)
               (String.length l - String.length prefix))
        in
        check_bool "uptime counts from start_ns" true (v >= 1.0 && v < 120.0))

(* -- sampling --------------------------------------------------------------- *)

let test_sampling () =
  with_obs ~tracing:true ~metrics:false (fun () ->
      Obs.set_span_sample_rate 1.0;
      check_bool "rate 1 keeps everything" true
        (List.for_all Obs.sampled [ 0; 1; 2; 3 ]);
      Obs.set_span_sample_rate 0.25;
      let kept = List.filter Obs.sampled (List.init 100 Fun.id) in
      check_int "rate 0.25 keeps 1 in 4, deterministically" 25
        (List.length kept);
      check_bool "stride pattern" true (List.mem 0 kept && List.mem 4 kept);
      Obs.set_span_sample_rate 0.0;
      check_bool "rate 0 keeps nothing" true
        (not (List.exists Obs.sampled (List.init 100 Fun.id)));
      Obs.set_span_sample_rate 1.0;
      Obs.set_tracing false;
      check_bool "tracing off keeps nothing" true (not (Obs.sampled 0)));
  Alcotest.check_raises "rate outside [0,1] raises"
    (Invalid_argument "Obs.set_span_sample_rate: rate must be in [0, 1]")
    (fun () -> Obs.set_span_sample_rate 1.5)

(* -- spans ------------------------------------------------------------------ *)

let test_spans () =
  with_obs ~tracing:false ~metrics:false (fun () ->
      Obs.emit_span ~name:"ignored" ~ts_ns:0L ~dur_ns:1L ();
      check_int "tracing off records nothing" 0 (List.length (Obs.spans ())));
  with_obs ~tracing:true ~metrics:false (fun () ->
      let v = Obs.with_span "outer" (fun () -> 42) in
      check_int "with_span is transparent" 42 v;
      Obs.emit_span ~cat:"c" ~tid:7 ~args:[ ("k", "v") ] ~name:"manual"
        ~ts_ns:5L ~dur_ns:2L ();
      let spans = Obs.spans () in
      check_int "both spans recorded" 2 (List.length spans);
      let first = List.hd spans in
      check_string "sorted by start time" "manual" first.Obs.name;
      check_int "tid kept" 7 first.Obs.tid)

(* -- trace JSON validity ---------------------------------------------------- *)

(* A tiny recursive-descent JSON parser — enough to prove the trace file is
   well-formed JSON with the Chrome trace-event shape, without a JSON
   dependency. *)
module Json_check = struct
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of v list
    | Obj of (string * v) list

  exception Bad of string

  let parse (s : string) : v =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail m = raise (Bad (Printf.sprintf "%s at byte %d" m !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () = Some c then advance ()
      else fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      String.iter (fun c -> expect c) word;
      v
    in
    let string_lit () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/') ->
            Buffer.add_char buf (Option.get (peek ()));
            advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 'b' | Some 'f' -> advance ()
          | Some 'u' ->
            advance ();
            for _ = 1 to 4 do
              match peek () with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
              | _ -> fail "bad \\u escape"
            done
          | _ -> fail "bad escape");
          go ()
        | Some c -> Buffer.add_char buf c; advance (); go ()
      in
      go ();
      Buffer.contents buf
    in
    let number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> num_char c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else begin
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
        end
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (number ())
      | None -> fail "unexpected end"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
end

let test_trace_json () =
  with_obs ~tracing:true ~metrics:false (fun () ->
      Obs.with_span ~cat:"stage" "stage:one" (fun () -> ());
      Obs.emit_span ~cat:"engine" ~tid:3
        ~args:[ ("target", "FR \"quoted\"\n") ]
        ~name:"engine:classify"
        ~ts_ns:(Obs.Clock.now_ns ()) ~dur_ns:1234L ();
      let json = Obs.Trace_writer.to_json (Obs.spans ()) in
      let v =
        try Json_check.parse json
        with Json_check.Bad m -> Alcotest.failf "trace is not valid JSON: %s" m
      in
      match v with
      | Json_check.Obj fields ->
        let events =
          match List.assoc_opt "traceEvents" fields with
          | Some (Json_check.Arr evs) -> evs
          | _ -> Alcotest.fail "no traceEvents array"
        in
        check_int "both spans exported" 2 (List.length events);
        List.iter
          (fun ev ->
            match ev with
            | Json_check.Obj f ->
              let num k =
                match List.assoc_opt k f with
                | Some (Json_check.Num x) -> x
                | _ -> Alcotest.failf "event field %s missing" k
              in
              check_bool "ts is non-negative" true (num "ts" >= 0.0);
              check_bool "dur is non-negative" true (num "dur" >= 0.0);
              check_bool "ph is X" true
                (List.assoc_opt "ph" f = Some (Json_check.Str "X"))
            | _ -> Alcotest.fail "event is not an object")
          events
      | _ -> Alcotest.fail "trace is not a JSON object")

(* -- observation never changes results -------------------------------------- *)

let obs_jobs () =
  let job_of (spec : Workloads.Attacks.spec) =
    SG.Pipeline.job ?settings:spec.Workloads.Attacks.settings
      ~init:spec.Workloads.Attacks.init ?victim:spec.Workloads.Attacks.victim
      ~name:(Isa.Program.name spec.Workloads.Attacks.program)
      spec.Workloads.Attacks.program
  in
  [|
    job_of (Workloads.Attacks.flush_reload ~style:Workloads.Attacks.Iaik ());
    job_of (Workloads.Attacks.prime_probe ~style:Workloads.Attacks.Jzhang ());
    job_of (Workloads.Attacks.flush_flush ());
  |]

(* QCheck property: for any switch combination, sample rate and engine
   knobs, observability leaves models byte-identical and verdicts
   bit-identical.  The baseline runs with everything off; the probe run
   with the drawn switches. *)
let prop_observation_is_pure =
  QCheck.Test.make ~name:"tracing/metrics leave models and verdicts identical"
    ~count:12
    QCheck.(
      quad bool bool
        (float_range 0.0 1.0)
        (pair bool (int_range 1 4)))
    (fun (tracing, metrics, rate, (prune, domains)) ->
      let jobs = obs_jobs () in
      let rng = Sutil.Rng.create 77 in
      let repo =
        Experiments.Common.repository ~rng
          [ Workloads.Label.Fr_family; Workloads.Label.Pp_family ]
      in
      let baseline_models =
        with_obs ~tracing:false ~metrics:false (fun () ->
            SG.Pipeline.build_models_batch ~domains jobs)
      in
      let baseline_verdicts, _ =
        with_obs ~tracing:false ~metrics:false (fun () ->
            SG.Engine.classify_batch ~prune ~domains repo baseline_models)
      in
      let models, verdicts =
        with_obs ~tracing ~metrics (fun () ->
            Obs.set_span_sample_rate rate;
            let models = SG.Pipeline.build_models_batch ~domains jobs in
            let verdicts, _ =
              SG.Engine.classify_batch ~prune ~domains repo models
            in
            (models, verdicts))
      in
      let bytes = Array.map SG.Persist.model_to_string in
      if bytes models <> bytes baseline_models then
        QCheck.Test.fail_report "models changed under observation";
      if verdicts <> baseline_verdicts then
        QCheck.Test.fail_report "verdicts changed under observation";
      true)

let test_service_metrics_snapshot () =
  let jobs = obs_jobs () in
  let baseline =
    with_obs ~tracing:false ~metrics:false (fun () ->
        let models, report = Result.get_ok (SG.Service.build SG.Config.default jobs) in
        check_bool "metrics absent when disabled" true
          (report.SG.Service.metrics = None);
        models)
  in
  with_obs ~tracing:true ~metrics:true (fun () ->
      let models, report =
        Result.get_ok (SG.Service.build SG.Config.default jobs)
      in
      check_bool "models identical under full observability" true
        (Array.map SG.Persist.model_to_string models
        = Array.map SG.Persist.model_to_string baseline);
      match report.SG.Service.metrics with
      | None -> Alcotest.fail "metrics enabled but snapshot missing"
      | Some snap ->
        (match find_value "scaguard_models_built_total" snap with
        | Obs.Registry.Counter_value v ->
          check_int "build counter covers the jobs" (Array.length jobs) v
        | _ -> Alcotest.fail "expected a counter");
        check_bool "stage timing recorded" true
          (List.exists
             (fun e ->
               e.Obs.Registry.entry_name = "scaguard_stage_seconds"
               && e.Obs.Registry.entry_labels = [ ("stage", "build") ])
             snap);
        check_bool "spans recorded" true (Obs.spans () <> []))

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [ Alcotest.test_case "monotone" `Quick test_clock_monotone ] );
      ( "registry",
        [
          Alcotest.test_case "counter" `Quick test_counter_exact;
          Alcotest.test_case "gauge+reset" `Quick test_gauge_and_reset;
          Alcotest.test_case "histogram" `Quick test_histogram_exact;
          Alcotest.test_case "concurrent exactness" `Quick
            test_concurrent_exact;
          Alcotest.test_case "prometheus format" `Quick test_prometheus_format;
          Alcotest.test_case "prometheus escaping" `Quick
            test_prometheus_escaping;
          Alcotest.test_case "prometheus name charset" `Quick
            test_prometheus_name_charset;
          Alcotest.test_case "prometheus header ordering" `Quick
            test_prometheus_header_ordering;
          Alcotest.test_case "build info export" `Quick test_build_info_export;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "sampling" `Quick test_sampling;
          Alcotest.test_case "spans" `Quick test_spans;
          Alcotest.test_case "trace JSON" `Quick test_trace_json;
        ] );
      ( "purity",
        [
          QCheck_alcotest.to_alcotest prop_observation_is_pure;
          Alcotest.test_case "service metrics snapshot" `Quick
            test_service_metrics_snapshot;
        ] );
    ]
