(* The deployment scenario of Section V: a server-cluster guard checks
   untrusted programs before installation.  A repository of PoC models is
   built once; each incoming program is executed in the sandbox, modelled,
   and classified by similarity — one Scaguard.Service.screen call.

     dune exec examples/detect_unknown.exe *)

let () =
  let rng = Sutil.Rng.create 2026 in

  (* One PoC model per known attack family. *)
  let repo =
    Experiments.Common.repository ~rng
      [ Workloads.Label.Fr_family; Workloads.Label.Pp_family;
        Workloads.Label.Spectre_fr; Workloads.Label.Spectre_pp ]
  in
  Printf.printf "Repository: %d PoC models (%s)\n\n" (List.length repo)
    (String.concat ", "
       (List.map (fun p -> p.Scaguard.Detector.family) repo));

  (* A mixed bag of unknown programs: mutated attack variants the defender
     has never seen, plus benign applications. *)
  let unknown =
    Workloads.Dataset.mutated_attacks ~rng ~count:2 Workloads.Label.Fr_family
    @ Workloads.Dataset.mutated_attacks ~rng ~count:2 Workloads.Label.Spectre_pp
    @ Workloads.Dataset.obfuscated_attacks ~rng ~count:2 Workloads.Label.Pp_family
    @ Workloads.Dataset.benign_samples ~rng ~count:4
  in
  let shuffled = Sutil.Rng.shuffle rng unknown in

  (* Screen the whole batch: build every model, classify every model, one
     report for the run. *)
  let jobs =
    Array.of_list
      (List.map
         (fun (s : Workloads.Dataset.sample) ->
           Scaguard.Pipeline.job ?settings:s.Workloads.Dataset.settings
             ~init:s.Workloads.Dataset.init ?victim:s.Workloads.Dataset.victim
             ~name:s.Workloads.Dataset.name s.Workloads.Dataset.program)
         shuffled)
  in
  let verdicts, report =
    match Scaguard.Service.screen Scaguard.Config.default repo jobs with
    | Ok (_models, verdicts, report) -> (verdicts, report)
    | Error e ->
      prerr_endline (Scaguard.Err.to_string e);
      exit 1
  in

  Printf.printf "%-34s %-8s %-10s %s\n" "program" "verdict" "score" "truth";
  Printf.printf "%s\n" (String.make 70 '-');
  let correct = ref 0 in
  List.iteri
    (fun i (s : Workloads.Dataset.sample) ->
      let verdict = verdicts.(i) in
      let predicted =
        Option.value ~default:"benign" verdict.Scaguard.Detector.best_family
      in
      let truth = Workloads.Label.to_string s.Workloads.Dataset.label in
      let truth_str = if truth = "Benign" then "benign" else truth in
      if predicted = truth_str then incr correct;
      Printf.printf "%-34s %-8s %8.1f%%  %s %s\n" s.Workloads.Dataset.name
        predicted
        (100.0 *. verdict.Scaguard.Detector.best_score)
        truth_str
        (if predicted = truth_str then "" else "  <-- MISCLASSIFIED"))
    shuffled;
  Printf.printf "%s\n%d/%d correct\n\n" (String.make 70 '-') !correct
    (List.length shuffled);
  Format.printf "%a@." Scaguard.Service.pp_report report
