(* Spectre forensics: demonstrate that (1) the simulated Spectre-v1 PoC
   really exfiltrates its out-of-bounds secret through the cache, and
   (2) SCAGuard detects the never-seen Spectre variant knowing only the
   plain Flush+Reload family — the paper's E2 scenario.

     dune exec examples/spectre_forensics.exe *)

let or_die = function
  | Ok v -> v
  | Error e ->
    prerr_endline (Scaguard.Err.to_string e);
    exit 1

let () =
  (* --- the attack works ---------------------------------------------- *)
  let spec = Workloads.Attacks.spectre_fr ~style:Workloads.Attacks.Classic () in
  let res = Workloads.Attacks.run_spec spec in
  let hist = Workloads.Attacks.result_histogram res in
  Printf.printf "Spectre-FR probe-line hit counts (secret nibble = 11):\n  ";
  Array.iteri (fun i v -> if i < 16 then Printf.printf "%d:%d " i v) hist;
  (* line 0 is polluted by branch training; real PoCs skip known-training
     values during recovery *)
  let recovered = ref 1 in
  Array.iteri (fun i v -> if i >= 1 && i < 16 && v > hist.(!recovered) then recovered := i) hist;
  Printf.printf "\n  recovered secret: %d %s\n\n" !recovered
    (if !recovered = 11 then "(correct - the bounds check was bypassed transiently)"
     else "(unexpected)");

  (* --- SCAGuard catches it knowing only plain Flush+Reload ------------ *)
  let config = Scaguard.Config.default in
  let rng = Sutil.Rng.create 42 in
  let repo, _ =
    or_die
      (Experiments.Common.repository_service ~config ~rng
         [ Workloads.Label.Fr_family ])
  in
  let models, _ =
    or_die
      (Scaguard.Service.build config
         [|
           Scaguard.Pipeline.job ~init:spec.Workloads.Attacks.init
             ~name:(Isa.Program.name spec.Workloads.Attacks.program)
             spec.Workloads.Attacks.program;
         |])
  in
  let verdicts, _ = or_die (Scaguard.Service.detect config repo models) in
  let v = verdicts.(0) in
  Printf.printf
    "Detection with a repository containing ONLY Flush+Reload (E2):\n";
  List.iter
    (fun (name, family, score) ->
      Printf.printf "  vs %s (%s): %.1f%%\n" name family (100.0 *. score))
    (Scaguard.Detector.score_all repo models.(0));
  (match v.Scaguard.Detector.best_family with
  | Some f ->
    Printf.printf
      "  => flagged as a %s variant (threshold %.0f%%): the transient gadget\n\
      \     still flushes, reloads and times cache lines, so the CST-BBS\n\
      \     stays close to its non-Spectre counterpart.\n"
      f (100.0 *. config.Scaguard.Config.threshold)
  | None -> Printf.printf "  => missed (below threshold)\n");

  (* --- and the rule-based baseline does not ---------------------------- *)
  let scadet =
    Baselines.Scadet.detect spec.Workloads.Attacks.program res
  in
  Printf.printf
    "\nSCADET's hand-built Prime+Probe rules on the same program: %s\n"
    (if scadet.Baselines.Scadet.detected then "detected (unexpected)"
     else "nothing detected (no rules for this pattern)")
