(* The compiler story: SCAGuard's instruction normalization exists because
   different compilers lower the same attack differently.  Here a
   Flush+Reload attack written in MinC (the bundled mini-language) is
   compiled at two optimization levels — standing in for two compilers — and
   both binaries leak, look alike to the similarity comparison, and are
   classified into the right family.

     dune exec examples/compile_and_detect.exe *)

let () =
  print_endline "MinC source (excerpt):";
  String.split_on_char '\n' Minc.Programs.flush_reload_source
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter (fun l -> Printf.printf "    %s\n" l);
  print_endline "    ...";

  let victim = Workloads.Victim.shared_lib () in
  let compile optimize =
    Minc.Codegen.compile_source ~optimize ~name:"minc-fr"
      Minc.Programs.flush_reload_source
  in
  let analyze prog =
    Scaguard.Pipeline.run_and_analyze ~victim prog
  in

  (* both compilations leak the victim's access pattern *)
  List.iter
    (fun optimize ->
      let prog = compile optimize in
      let res = Cpu.Exec.run ~victim prog in
      let hist =
        Array.init 8 (fun i ->
            Cpu.Machine.load res.Cpu.Exec.machine
              (Workloads.Layout.attacker_results_base + (8 * i)))
      in
      Printf.printf "\n%-22s (%3d instructions) probe hits: "
        (if optimize then "optimized compile" else "unoptimized compile")
        (Isa.Program.length prog);
      Array.iteri (fun i v -> Printf.printf "%d:%d " i v) hist)
    [ false; true ];

  (* the two binaries are different code but the same behavior *)
  let m0 = (analyze (compile false)).Scaguard.Pipeline.model in
  let m1 = (analyze (compile true)).Scaguard.Pipeline.model in
  Printf.printf "\n\nsimilarity(unoptimized, optimized) = %.1f%%\n"
    (100.0 *. Scaguard.Dtw.compare_models m0 m1);

  (* and both are recognized against the hand-written PoC repository *)
  let rng = Sutil.Rng.create 1 in
  let repo = Experiments.Common.repository ~rng Workloads.Label.attack_labels in
  List.iter
    (fun (name, m) ->
      let v = Scaguard.Detector.classify ~threshold:0.55 repo m in
      Printf.printf "%s: best %.1f%% -> %s\n" name
        (100.0 *. v.Scaguard.Detector.best_score)
        (Option.value ~default:"benign" v.Scaguard.Detector.best_family))
    [ ("unoptimized", m0); ("optimized", m1) ]
