(* The compiler story: SCAGuard's instruction normalization exists because
   different compilers lower the same attack differently.  Here a
   Flush+Reload attack written in MinC (the bundled mini-language) is
   compiled at two optimization levels — standing in for two compilers — and
   both binaries leak, look alike to the similarity comparison, and are
   classified into the right family.

     dune exec examples/compile_and_detect.exe *)

let () =
  print_endline "MinC source (excerpt):";
  String.split_on_char '\n' Minc.Programs.flush_reload_source
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter (fun l -> Printf.printf "    %s\n" l);
  print_endline "    ...";

  let victim = Workloads.Victim.shared_lib () in
  let compile optimize =
    Minc.Codegen.compile_source ~optimize ~name:"minc-fr"
      Minc.Programs.flush_reload_source
  in
  let or_die = function
    | Ok v -> v
    | Error e ->
      prerr_endline (Scaguard.Err.to_string e);
      exit 1
  in

  (* both compilations leak the victim's access pattern *)
  List.iter
    (fun optimize ->
      let prog = compile optimize in
      let res = Cpu.Exec.run ~victim prog in
      let hist =
        Array.init 8 (fun i ->
            Cpu.Machine.load res.Cpu.Exec.machine
              (Workloads.Layout.attacker_results_base + (8 * i)))
      in
      Printf.printf "\n%-22s (%3d instructions) probe hits: "
        (if optimize then "optimized compile" else "unoptimized compile")
        (Isa.Program.length prog);
      Array.iteri (fun i v -> Printf.printf "%d:%d " i v) hist)
    [ false; true ];

  (* the two binaries are different code but the same behavior: build both
     models in one service batch *)
  let job optimize name =
    Scaguard.Pipeline.job ~victim ~name (compile optimize)
  in
  let models, _ =
    or_die
      (Scaguard.Service.build Scaguard.Config.default
         [| job false "minc-fr (unoptimized)"; job true "minc-fr (optimized)" |])
  in
  Printf.printf "\n\nsimilarity(unoptimized, optimized) = %.1f%%\n"
    (100.0 *. Scaguard.Dtw.compare_models models.(0) models.(1));

  (* and both are recognized against the hand-written PoC repository;
     MinC-compiled code scores a touch lower than hand-written asm, so the
     config lowers the threshold to 55% *)
  let config = { Scaguard.Config.default with Scaguard.Config.threshold = 0.55 } in
  let rng = Sutil.Rng.create 1 in
  let repo, _ =
    or_die
      (Experiments.Common.repository_service ~config ~rng
         Workloads.Label.attack_labels)
  in
  let verdicts, _ = or_die (Scaguard.Service.detect config repo models) in
  List.iteri
    (fun i name ->
      let v = verdicts.(i) in
      Printf.printf "%s: best %.1f%% -> %s\n" name
        (100.0 *. v.Scaguard.Detector.best_score)
        (Option.value ~default:"benign" v.Scaguard.Detector.best_family))
    [ "unoptimized"; "optimized" ]
