(* Quickstart: model a Flush+Reload PoC, inspect the CST-BBS, and compare it
   against another attack and a benign program.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. Take a Flush+Reload proof-of-concept (simulated x86-like binary +
        its co-running victim). *)
  let fr = Workloads.Attacks.flush_reload ~style:Workloads.Attacks.Iaik () in
  Printf.printf "PoC: %s (%d instructions)\n\n" fr.Workloads.Attacks.name
    (Isa.Program.length fr.Workloads.Attacks.program);

  (* 2. Execute it to collect runtime data (HPC events + address trace) and
        build its attack behavior model — the CST-BBS.  run_and_analyze keeps
        every intermediate stage for inspection; pure model building below
        goes through the service facade instead. *)
  let analysis =
    Scaguard.Pipeline.run_and_analyze ~init:fr.Workloads.Attacks.init
      ?victim:fr.Workloads.Attacks.victim fr.Workloads.Attacks.program
  in
  Printf.printf "CFG: %d basic blocks, %d survived relevance filtering\n"
    (Cfg.Graph.n_blocks analysis.Scaguard.Pipeline.cfg)
    (List.length analysis.Scaguard.Pipeline.info.Scaguard.Relevant.relevant);
  Format.printf "%a@." Scaguard.Model.pp analysis.Scaguard.Pipeline.model;

  (* 3. Build the comparison models in one service batch. *)
  let job_of (spec : Workloads.Attacks.spec) =
    Scaguard.Pipeline.job ~init:spec.Workloads.Attacks.init
      ?victim:spec.Workloads.Attacks.victim
      ~name:(Isa.Program.name spec.Workloads.Attacks.program)
      spec.Workloads.Attacks.program
  in
  let benign_sample =
    List.hd
      (Workloads.Dataset.benign_samples ~rng:(Sutil.Rng.create 1) ~count:1)
  in
  let benign_job =
    Scaguard.Pipeline.job ~init:benign_sample.Workloads.Dataset.init
      ~name:(Isa.Program.name benign_sample.Workloads.Dataset.program)
      benign_sample.Workloads.Dataset.program
  in
  let models, report =
    match
      Scaguard.Service.build Scaguard.Config.default
        [|
          job_of (Workloads.Attacks.evict_reload ());
          job_of (Workloads.Attacks.prime_probe ~style:Workloads.Attacks.Iaik ());
          benign_job;
        |]
    with
    | Ok (models, report) -> (models, report)
    | Error e ->
      prerr_endline (Scaguard.Err.to_string e);
      exit 1
  in
  let fr_model = analysis.Scaguard.Pipeline.model in
  let show name m =
    Printf.printf "  similarity(FR, %-14s) = %5.1f%%\n" name
      (100.0 *. Scaguard.Dtw.compare_models fr_model m)
  in
  Printf.printf "\nSimilarity comparison (threshold %.0f%%):\n"
    (100.0 *. Scaguard.Detector.default_threshold);
  show "Evict+Reload" models.(0);
  show "Prime+Probe" models.(1);
  show benign_sample.Workloads.Dataset.name models.(2);
  Format.printf "\n(%a)@." Scaguard.Service.pp_report report;
  Printf.printf
    "\nEvict+Reload is a variant of the same family (high similarity);\n\
     Prime+Probe is a different attack (medium); benign falls below the\n\
     threshold.\n"
