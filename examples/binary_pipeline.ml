(* The end-to-end binary workflow §V describes for a server cluster:
   (1) a repository of PoC models is curated once and saved to disk;
   (2) untrusted binaries arrive as files;
   (3) the whole batch is loaded, sandbox-executed, modelled, and
       classified in one Scaguard.Service.screen call.

     dune exec examples/binary_pipeline.exe *)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let or_die = function
  | Ok v -> v
  | Error e ->
    prerr_endline (Scaguard.Err.to_string e);
    exit 1

let () =
  let config = Scaguard.Config.default in
  let rng = Sutil.Rng.create 99 in

  (* --- 1. build and persist the repository ---------------------------- *)
  let repo_path = tmp "scaguard_demo.repo" in
  let repo, _ =
    or_die
      (Experiments.Common.repository_service ~config ~rng
         [ Workloads.Label.Fr_family; Workloads.Label.Pp_family;
           Workloads.Label.Spectre_fr; Workloads.Label.Spectre_pp ])
  in
  or_die (Scaguard.Persist.save_repository_result ~path:repo_path repo);
  Printf.printf "repository: %d PoC models -> %s\n" (List.length repo) repo_path;

  (* --- 2. "someone ships us binaries" --------------------------------- *)
  let incoming =
    List.map
      (fun (s : Workloads.Dataset.sample) ->
        let path = tmp (s.Workloads.Dataset.name ^ ".bin") in
        Isa.Binary.write_file ~path s.Workloads.Dataset.program;
        (path, s))
      (Workloads.Dataset.mutated_attacks ~rng ~count:2 Workloads.Label.Fr_family
      @ Workloads.Dataset.benign_samples ~rng ~count:2
      @ Workloads.Dataset.obfuscated_attacks ~rng ~count:1 Workloads.Label.Pp_family)
  in
  Printf.printf "received %d binaries (%s...)\n\n" (List.length incoming)
    (Filename.basename (fst (List.hd incoming)));

  (* --- 3. screen the whole batch --------------------------------------- *)
  let loaded_repo =
    or_die (Scaguard.Persist.load_repository_result ~path:repo_path)
  in
  let jobs =
    Array.of_list
      (List.map
         (fun (path, (s : Workloads.Dataset.sample)) ->
           let prog = Isa.Binary.read_file ~path in
           (* the sandbox re-runs the binary with its environment; here the
              dataset sample supplies init/victim like the sandbox would *)
           Scaguard.Pipeline.job ?settings:s.Workloads.Dataset.settings
             ~init:s.Workloads.Dataset.init ?victim:s.Workloads.Dataset.victim
             ~name:(Filename.basename path) prog)
         incoming)
  in
  let _, verdicts, _ =
    or_die (Scaguard.Service.screen config loaded_repo jobs)
  in
  List.iteri
    (fun i (path, _) ->
      let v = verdicts.(i) in
      Printf.printf "%-36s %6.1f%%  %s\n" (Filename.basename path)
        (100.0 *. v.Scaguard.Detector.best_score)
        (match v.Scaguard.Detector.best_family with
        | Some f -> "ATTACK (" ^ f ^ ")"
        | None -> "allowed");
      Sys.remove path)
    incoming;
  Sys.remove repo_path
