(* Write a brand-new cache attack with the Builder DSL — a "Flush+Prefetch"
   variant nobody trained on — verify it leaks, and check whether SCAGuard's
   behavior models generalize to it (the paper's central claim: new variants
   still prepare and probe the cache, so their CST-BBS stays recognizably
   attack-like).

     dune exec examples/custom_attack.exe *)

module B = Isa.Builder
module I = Isa.Instr
module O = Isa.Operand
module R = Isa.Reg

let lines = Workloads.Layout.monitored_lines
let stride = Workloads.Layout.monitored_stride
let shared = Workloads.Layout.shared_lib_base
let results = Workloads.Layout.attacker_results_base

(* Flush+Prefetch: flush the shared lines, let the victim run, then time a
   PREFETCH of each line (prefetch of a cached line is fast).  Structurally
   different from every PoC in the repository: no reload loads, prefetch
   instead. *)
let flush_prefetch ~rounds =
  let b = B.create () in
  let round = B.fresh_label b "round" in
  B.emit b (I.Mov (O.reg R.RDI, O.imm rounds));
  B.label b round;
  (* flush phase *)
  let fl = B.fresh_label b "flush" in
  B.emit b (I.Mov (O.reg R.RSI, O.imm 0));
  B.label b fl;
  B.emit b (I.Clflush (O.mem ~index:R.RSI ~scale:stride ~disp:shared ()));
  B.emit b (I.Inc (O.reg R.RSI));
  B.emit b (I.Cmp (O.reg R.RSI, O.imm lines));
  B.emit b (I.Jcc (I.Ne, fl));
  (* wait for the victim *)
  let w = B.fresh_label b "wait" in
  B.emit b (I.Mov (O.reg R.RCX, O.imm 60));
  B.label b w;
  B.emit b (I.Dec (O.reg R.RCX));
  B.emit b (I.Cmp (O.reg R.RCX, O.imm 0));
  B.emit b (I.Jcc (I.Ne, w));
  (* timed prefetch probe *)
  let pr = B.fresh_label b "probe" in
  B.emit b (I.Mov (O.reg R.RSI, O.imm 0));
  B.label b pr;
  B.emit b I.Lfence;
  B.emit b I.Rdtsc;
  B.emit b (I.Mov (O.reg R.R8, O.reg R.RAX));
  B.emit b (I.Prefetch (O.mem ~index:R.RSI ~scale:stride ~disp:shared ()));
  B.emit b I.Rdtscp;
  B.emit b (I.Sub (O.reg R.RAX, O.reg R.R8));
  B.emit b (I.Sub (O.reg R.RAX, O.imm 150));
  B.emit b (I.Shr (O.reg R.RAX, 62));
  B.emit b (I.Add (O.mem ~index:R.RSI ~scale:8 ~disp:results (), O.reg R.RAX));
  B.emit b (I.Inc (O.reg R.RSI));
  B.emit b (I.Cmp (O.reg R.RSI, O.imm lines));
  B.emit b (I.Jcc (I.Ne, pr));
  B.emit b (I.Dec (O.reg R.RDI));
  B.emit b (I.Cmp (O.reg R.RDI, O.imm 0));
  B.emit b (I.Jcc (I.Ne, round));
  B.emit b I.Halt;
  B.to_program ~name:"Flush+Prefetch" b

let () =
  let program = flush_prefetch ~rounds:16 in
  Printf.printf "Custom attack: %s (%d instructions)\n\n"
    (Isa.Program.name program) (Isa.Program.length program);

  (* 1. it leaks: the victim touches lines {2,3,5} *)
  let victim = Workloads.Victim.shared_lib () in
  let res = Cpu.Exec.run ~victim program in
  let hist =
    Array.init lines (fun i -> Cpu.Machine.load res.Cpu.Exec.machine (results + (8 * i)))
  in
  Printf.printf "probe hit counts: ";
  Array.iteri (fun i v -> Printf.printf "%d:%d " i v) hist;
  let guessed =
    List.filter (fun i -> hist.(i) >= 8) (List.init lines Fun.id)
  in
  Printf.printf "\nrecovered victim access pattern: {%s} (planted: {2,3,5})\n\n"
    (String.concat "," (List.map string_of_int guessed));

  (* 2. SCAGuard has never seen Flush+Prefetch, but classifies it *)
  let or_die = function
    | Ok v -> v
    | Error e ->
      prerr_endline (Scaguard.Err.to_string e);
      exit 1
  in
  let config = Scaguard.Config.default in
  let rng = Sutil.Rng.create 7 in
  let repo, _ =
    or_die
      (Experiments.Common.repository_service ~config ~rng
         [ Workloads.Label.Fr_family; Workloads.Label.Pp_family ])
  in
  let models, _ =
    or_die
      (Scaguard.Service.build config
         [| Scaguard.Pipeline.job ~victim ~name:(Isa.Program.name program) program |])
  in
  let verdicts, _ = or_die (Scaguard.Service.detect config repo models) in
  let v = verdicts.(0) in
  List.iter
    (fun (name, family, score) ->
      Printf.printf "similarity vs %s (%s): %.1f%%\n" name family (100.0 *. score))
    (Scaguard.Detector.score_all repo models.(0));
  match v.Scaguard.Detector.best_family with
  | Some f ->
    Printf.printf
      "=> detected as a %s variant, despite never appearing in any repository\n" f
  | None -> Printf.printf "=> missed!\n"
