(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (Tables II-VI, Fig. 5), the ablation table, and Bechamel
   micro-benchmarks of the pipeline stages (the Section V time-cost
   analysis).

   Usage:
     dune exec bench/main.exe                 # everything, default sizes
     dune exec bench/main.exe -- table6       # one artifact
     dune exec bench/main.exe -- --per-family 40 table6
     dune exec bench/main.exe -- --seed 7 all

   Sample counts default to 16 per attack type (the paper uses 400; pass
   --per-family 400 for a full-scale run — the shape is stable from ~16
   onward). *)

let per_family = ref 16
let seed = ref 20260704
let out_dir = ref None
let jobs = ref None
let trace_out = ref None
let metrics_out = ref None
let index_scales = ref [ 1_000; 10_000; 100_000 ]
let artifacts = ref []

let usage = "main.exe [--per-family N] [--seed S] [--jobs N] [--index-scales N,N,..] [--trace-out FILE] [--metrics-out FILE] [table1..table6|fig5|ablation|extended|clusters|robustness|scaling|engine|modeling|persist|serve|index|obs|compare|timecost|all]"

let () =
  let rec parse = function
    | [] -> ()
    | "--per-family" :: n :: rest ->
      per_family := int_of_string n;
      parse rest
    | "--seed" :: s :: rest ->
      seed := int_of_string s;
      parse rest
    | "--out" :: dir :: rest ->
      out_dir := Some dir;
      parse rest
    | "--jobs" :: n :: rest ->
      jobs := Some (int_of_string n);
      parse rest
    | "--trace-out" :: path :: rest ->
      trace_out := Some path;
      parse rest
    | "--metrics-out" :: path :: rest ->
      metrics_out := Some path;
      parse rest
    | "--index-scales" :: ns :: rest ->
      index_scales :=
        List.map int_of_string (String.split_on_char ',' ns);
      parse rest
    | x :: rest ->
      artifacts := x :: !artifacts;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* the bench emits the same observability artifacts as the CLI *)
  Scaguard.Obs.set_tracing (!trace_out <> None);
  Scaguard.Obs.set_metrics (!metrics_out <> None)

(* worker count for the parallel stages: --jobs, else a reasonable floor so
   the speedup numbers mean something even on small CI machines *)
let worker_domains () =
  match !jobs with Some j -> j | None -> max 4 (Sutil.Pool.default_domains ())

let rng () = Sutil.Rng.create !seed

let section name = Printf.printf "\n===== %s =====\n%!" name

(* print a table; also write it as CSV when --out is given *)
let emit_table ~artifact t =
  Sutil.Table.print t;
  match !out_dir with
  | None -> ()
  | Some dir ->
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let path = Filename.concat dir (artifact ^ ".csv") in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Sutil.Table.to_csv t));
    Printf.printf "(csv written to %s)\n" path

(* ---- Table I: the HPC events (static reference) -------------------------- *)

let table1 () =
  section "Table I: HPC events used in this work";
  let t = Sutil.Table.create ~title:"" [ "Scope"; "Event" ] in
  let scope e =
    match e with
    | Hpc.Event.L1d_load_miss | Hpc.Event.L1d_load_hit | Hpc.Event.L1d_store_hit
    | Hpc.Event.L1i_load_miss -> "L1 Cache"
    | Hpc.Event.Llc_load_miss | Hpc.Event.Llc_load_hit | Hpc.Event.Llc_store_miss
    | Hpc.Event.Llc_store_hit -> "LLC"
    | Hpc.Event.Branch_miss | Hpc.Event.Branch_load_miss | Hpc.Event.Cache_miss
    | Hpc.Event.Timestamp -> "Others"
  in
  List.iter
    (fun e -> Sutil.Table.add_row t [ scope e; Hpc.Event.to_string e ])
    Hpc.Event.all;
  Sutil.Table.print t

(* ---- Tables II / III ------------------------------------------------------ *)

let table2 () =
  section "Table II: the attack dataset";
  Sutil.Table.print (Experiments.Datasets.table2 ~rng:(rng ()) ~per_family:!per_family)

let table3 () =
  section "Table III: the benign dataset";
  Sutil.Table.print (Experiments.Datasets.table3 ~rng:(rng ()) ~count:(!per_family * 4))

(* ---- Table IV -------------------------------------------------------------- *)

let table4 () =
  section "Table IV: accuracy of attack-relevant BB identification";
  let rows = Experiments.Table4.evaluate ~rng:(rng ()) ~per_family:!per_family in
  emit_table ~artifact:"table4" (Experiments.Table4.to_table rows)

(* ---- Table V ---------------------------------------------------------------- *)

let table5 () =
  section "Table V: similarity comparison of 5 typical scenarios";
  let rows = Experiments.Table5.evaluate ~rng:(rng ()) in
  emit_table ~artifact:"table5" (Experiments.Table5.to_table rows);
  Printf.printf
    "(paper: S1 94.31%%, S2 84.32%%, S3 74.48%%, S4 66.92%%, S5 15.10%%)\n"

(* ---- Table VI ----------------------------------------------------------------- *)

let table6 () =
  section "Table VI: classification results (E1-E4, 5 approaches)";
  let results = Experiments.Table6.evaluate_all ~rng:(rng ()) ~per_family:!per_family in
  emit_table ~artifact:"table6" (Experiments.Table6.to_table results);
  Printf.printf
    "(paper SCAGUARD F1: E1 96.52%%, E2 95.03%%, E3-1 91.25%%, E3-2 91.18%%, E4 92.25%%;\n\
    \ SCADET collapses to 0 on E2-E4, learning baselines drop on E3)\n"

(* ---- Fig 5 ---------------------------------------------------------------------- *)

let fig5 () =
  section "Fig. 5: classification vs similarity threshold";
  let points = Experiments.Fig5.evaluate ~rng:(rng ()) ~per_family:!per_family () in
  emit_table ~artifact:"fig5" (Experiments.Fig5.to_table points);
  (match Experiments.Fig5.plateau points with
  | Some (lo, hi) ->
    Printf.printf
      ">=90%% plateau: %.0f%%-%.0f%% (paper: 30%%-60%%; our similarity scale \
       sits higher, threshold %.0f%% is its middle)\n"
      (100.0 *. lo) (100.0 *. hi)
      (100.0 *. Scaguard.Detector.default_threshold)
  | None -> Printf.printf "no >=90%% plateau at this sample size\n");
  (* a text rendering of the curves *)
  Printf.printf "\n  F1 curve: ";
  List.iter
    (fun p ->
      Printf.printf "%s"
        (if p.Experiments.Fig5.f1 >= 0.9 then "#"
         else if p.Experiments.Fig5.f1 >= 0.7 then "+"
         else "."))
    points;
  Printf.printf "  (thresholds 5%%..95%%)\n"

(* ---- Ablation ------------------------------------------------------------------- *)

let ablation () =
  section "Ablation: design choices of DESIGN.md section 5";
  let results =
    List.map
      (fun v ->
        (v, Experiments.Ablation.detection_scores ~rng:(rng ()) ~per_family:!per_family v))
      Experiments.Ablation.variants
  in
  emit_table ~artifact:"ablation" (Experiments.Ablation.to_table results)

(* ---- Extended baselines --------------------------------------------------------------- *)

let extended () =
  section "Extended baselines: anomaly detection & Phased-Guard (related work)";
  let results =
    List.map
      (fun task ->
        (task, Experiments.Extended.evaluate ~rng:(rng ()) ~per_family:!per_family task))
      [ Experiments.Table6.E1; Experiments.Table6.E2 ]
  in
  emit_table ~artifact:"extended" (Experiments.Extended.to_table results);
  Printf.printf
    "(the victim-oriented anomaly detector needs no attack samples but cannot\n\
    \ classify families; Phased-Guard gates a classifier behind it)\n"

(* ---- Unsupervised family discovery ---------------------------------------------------- *)

let clusters () =
  section "Unsupervised family discovery: clustering the PoC models";
  let labelled =
    List.map
      (fun (s : Workloads.Attacks.spec) ->
        let res = Workloads.Attacks.run_spec s in
        ( (Scaguard.Pipeline.analyze ~name:s.Workloads.Attacks.name
             ~program:s.Workloads.Attacks.program res)
            .Scaguard.Pipeline.model,
          Workloads.Label.to_string s.Workloads.Attacks.label ))
      (Workloads.Attacks.base_pocs ())
  in
  List.iter
    (fun threshold ->
      Printf.printf "threshold %.0f%%:\n" (100.0 *. threshold);
      List.iteri
        (fun i cluster ->
          Printf.printf "  cluster %d: %s\n" i
            (String.concat ", "
               (List.map
                  (fun m ->
                    Printf.sprintf "%s[%s]" m.Scaguard.Model.name
                      (List.assq m labelled))
                  cluster)))
        (Scaguard.Cluster.by_similarity ~threshold (List.map fst labelled)))
    [ 0.80; 0.85; 0.90 ];
  Printf.printf
    "(at 85%% single-linkage recovers exactly the paper's four families,\n\
    \ with no labels involved)\n"

(* ---- Robustness extensions ---------------------------------------------------------- *)

let robustness () =
  section "Robustness: replacement policies and victim-less detection";
  let rows = Experiments.Robustness.policy_matrix ~rng:(rng ()) in
  emit_table ~artifact:"robustness" (Experiments.Robustness.to_policy_table rows);
  let ok = List.filter (fun r -> r.Experiments.Robustness.detected) rows in
  Printf.printf "detected under every policy: %d/%d\n\n" (List.length ok)
    (List.length rows);
  Printf.printf "Detection with the victim process absent (behavior, not leak):\n";
  List.iter
    (fun (name, detected) ->
      Printf.printf "  %-22s %s\n" name (if detected then "detected" else "MISSED"))
    (Experiments.Robustness.detection_without_victim ~rng:(rng ()));
  Printf.printf "\nDetection with an unrelated benign co-runner instead of the victim:\n";
  List.iter
    (fun (name, detected) ->
      Printf.printf "  %-22s %s\n" name (if detected then "detected" else "MISSED"))
    (Experiments.Robustness.detection_with_noise ~rng:(rng ()))

(* ---- Scaling study ------------------------------------------------------------------- *)

let scaling () =
  section "Scaling: SCAGuard E1 quality vs samples per attack type";
  let t =
    Sutil.Table.create ~title:"Scaling study (E1, SCAGUARD)"
      [ "per-family"; "Precision"; "Recall"; "F1-score" ]
  in
  List.iter
    (fun n ->
      let rng = rng () in
      let td = Experiments.Table6.prepare ~rng ~per_family:n Experiments.Table6.E1 in
      let s = Experiments.Table6.evaluate_approach ~rng td Experiments.Table6.Scaguard in
      Sutil.Table.add_row t
        [
          string_of_int n;
          Sutil.Table.pct s.Ml.Metrics.precision;
          Sutil.Table.pct s.Ml.Metrics.recall;
          Sutil.Table.pct s.Ml.Metrics.f1;
        ])
    [ 4; 8; 16; 32 ];
  emit_table ~artifact:"scaling" t;
  Printf.printf "(the shape is stable from small sample counts on)\n"

(* ---- Engine: sequential vs parallel batch classification --------------------------- *)

let engine () =
  section "Engine: domain-parallel batch classification";
  let module L = Workloads.Label in
  let module D = Workloads.Dataset in
  let rng = rng () in
  let repo = Experiments.Common.repository ~rng L.attack_labels in
  let samples =
    List.concat_map
      (fun l -> D.mutated_attacks ~rng ~count:!per_family l)
      L.attack_labels
    @ D.benign_samples ~rng ~count:!per_family
  in
  Printf.printf "building %d target models (repository: %d PoCs)...\n%!"
    (List.length samples) (List.length repo);
  let build_jobs =
    Array.of_list
      (List.map
         (fun (s : D.sample) ->
           Scaguard.Pipeline.job ?settings:s.D.settings ~init:s.D.init
             ?victim:s.D.victim ~name:s.D.name s.D.program)
         samples)
  in
  let build_config =
    { Scaguard.Config.default with Scaguard.Config.domains = Some (worker_domains ()) }
  in
  let base =
    match Scaguard.Service.build build_config build_jobs with
    | Ok (models, _) -> models
    | Error e ->
      Printf.eprintf "engine: service build failed: %s\n" (Scaguard.Err.to_string e);
      exit 1
  in
  (* replicate the models into a batch big enough to time meaningfully *)
  let batch = max (Array.length base) 512 in
  let targets = Array.init batch (fun i -> base.(i mod Array.length base)) in
  Printf.printf "batch: %d targets x %d PoCs = %d pairs\n%!" batch
    (List.length repo) (batch * List.length repo);
  (* sequential path: the plain allocating Detector.classify loop, pruning
     off — the exact-DP baseline everything else must match.  Timed on the
     stack's monotonic clock (Obs.Clock), like every other stage. *)
  let t0 = Scaguard.Obs.Clock.now_ns () in
  let seq = Array.map (Scaguard.Detector.classify ~prune:false repo) targets in
  let seq_dt = Scaguard.Obs.Clock.elapsed_s ~since:t0 in
  let check_identical what (a : Scaguard.Detector.verdict array) b =
    Array.iteri
      (fun i (v : Scaguard.Detector.verdict) ->
        let p = b.(i) in
        if
          v.Scaguard.Detector.best_matches <> p.Scaguard.Detector.best_matches
          || v.Scaguard.Detector.best_family <> p.Scaguard.Detector.best_family
          || v.Scaguard.Detector.best_score <> p.Scaguard.Detector.best_score
        then begin
          Printf.eprintf "engine: %s verdict mismatch at target %d\n" what i;
          exit 1
        end)
      a
  in
  (* parallel path, pruning off: parallelism never changes results *)
  let domains = worker_domains () in
  let par, stats =
    Scaguard.Engine.classify_batch ~prune:false ~domains repo targets
  in
  check_identical "parallel" seq par;
  (* parallel path, pruning on: the cascade never changes results either *)
  let pruned, pstats =
    Scaguard.Engine.classify_batch ~prune:true ~domains repo targets
  in
  check_identical "pruned" par pruned;
  (* observability is pure observation: forcing tracing + metrics on must not
     change a single verdict bit *)
  let prev_tracing = Scaguard.Obs.tracing ()
  and prev_metrics = Scaguard.Obs.metrics () in
  Scaguard.Obs.set_tracing true;
  Scaguard.Obs.set_metrics true;
  let observed, _ =
    Scaguard.Engine.classify_batch ~prune:true ~domains repo targets
  in
  Scaguard.Obs.set_tracing prev_tracing;
  Scaguard.Obs.set_metrics prev_metrics;
  check_identical "instrumented" pruned observed;
  (* service facade: Service.detect is a typed front door over the same
     engine — verdicts must stay bit-identical to the manual composition *)
  (match
     Scaguard.Service.detect
       { Scaguard.Config.default with Scaguard.Config.domains = Some domains }
       repo targets
   with
  | Ok (svc, _report) -> check_identical "service" seq svc
  | Error e ->
    Printf.eprintf "engine: service detect failed: %s\n"
      (Scaguard.Err.to_string e);
    exit 1);
  let pairs = float_of_int stats.Scaguard.Engine.pairs in
  Printf.printf "sequential: %.4fs  (%.0f pairs/s)\n" seq_dt (pairs /. seq_dt);
  Printf.printf "parallel:   %.4fs  (%.0f pairs/s)  speedup %.2fx\n"
    stats.Scaguard.Engine.wall_s
    (Scaguard.Engine.throughput stats)
    (seq_dt /. stats.Scaguard.Engine.wall_s);
  Printf.printf "pruned:     %.4fs  (%.0f pairs/s)  speedup %.2fx\n"
    pstats.Scaguard.Engine.wall_s
    (Scaguard.Engine.throughput pstats)
    (seq_dt /. pstats.Scaguard.Engine.wall_s);
  Format.printf "%a@." Scaguard.Engine.pp_stats pstats;
  let cells_full = stats.Scaguard.Engine.cells in
  let cells_pruned = pstats.Scaguard.Engine.cells in
  let reduction =
    100.0 *. (1.0 -. (float_of_int cells_pruned /. float_of_int cells_full))
  in
  Printf.printf
    "pruning: %d of %d pairs skipped by lower bound, %d abandoned mid-DP\n"
    pstats.Scaguard.Engine.pairs_pruned_lb pstats.Scaguard.Engine.pairs
    pstats.Scaguard.Engine.pairs_abandoned;
  Printf.printf "DP cells: %d -> %d (%.1f%% saved)\n" cells_full cells_pruned
    reduction;
  (* per-verdict latency quantiles, estimated from the histogram buckets
     the instrumented run above filled *)
  List.iter
    (fun (e : Scaguard.Obs.Registry.snapshot_entry) ->
      match e.Scaguard.Obs.Registry.entry_value with
      | Scaguard.Obs.Registry.Histogram_value h
        when e.Scaguard.Obs.Registry.entry_name = "scaguard_verdict_seconds"
             && h.Scaguard.Obs.Registry.count > 0 ->
        let q p =
          Sutil.Stats.percentile_of_buckets
            ~bounds:h.Scaguard.Obs.Registry.bounds
            ~counts:h.Scaguard.Obs.Registry.counts p
        in
        Printf.printf
          "verdict latency (instrumented run, %d verdicts): p50 %.2es, p90 \
           %.2es, p99 %.2es\n"
          h.Scaguard.Obs.Registry.count (q 0.5) (q 0.9) (q 0.99)
      | _ -> ())
    (Scaguard.Obs.snapshot ());
  Printf.printf
    "verdicts: parallel, pruned, instrumented and Service.detect runs \
     byte-identical to the sequential path (%d targets)\n"
    batch

(* ---- Modeling: parallel + cached model building ------------------------------------ *)

let modeling () =
  section "Modeling: parallel and cached model building";
  let module L = Workloads.Label in
  let module D = Workloads.Dataset in
  let rng = rng () in
  let samples =
    List.concat_map
      (fun l -> D.mutated_attacks ~rng ~count:!per_family l)
      L.attack_labels
    @ D.benign_samples ~rng ~count:!per_family
  in
  let build_jobs =
    Array.of_list
      (List.map
         (fun (s : D.sample) ->
           Scaguard.Pipeline.job ?settings:s.D.settings ~init:s.D.init
             ?victim:s.D.victim ~salt:(string_of_int !seed) ~name:s.D.name
             s.D.program)
         samples)
  in
  let n = Array.length build_jobs in
  (* time at the machine's real parallelism: oversubscribing domains on few
     cores makes this allocation-heavy stage slower, not faster (every minor
     GC synchronizes all domains), so no artificial floor here *)
  let domains =
    match !jobs with Some j -> j | None -> Sutil.Pool.default_domains ()
  in
  Printf.printf "building %d models (execute + identify + graph + measure)...\n%!" n;
  let time f =
    let t0 = Scaguard.Obs.Clock.now_ns () in
    let r = f () in
    (r, Scaguard.Obs.Clock.elapsed_s ~since:t0)
  in
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt in
  let bytes m = Scaguard.Persist.model_to_string m in
  let check_identical what (a : Scaguard.Model.t array) b =
    Array.iteri
      (fun i m ->
        if bytes m <> bytes b.(i) then
          fail "modeling: %s model mismatch at job %d (%s)" what i
            m.Scaguard.Model.name)
      a
  in
  (* sequential baseline: one worker, no cache *)
  let seq, seq_dt =
    time (fun () -> Scaguard.Pipeline.build_models_batch ~domains:1 build_jobs)
  in
  (* parallel: same jobs fanned over the pool — must be byte-identical *)
  let par, par_dt =
    time (fun () -> Scaguard.Pipeline.build_models_batch ~domains build_jobs)
  in
  check_identical "parallel" seq par;
  (* the identity guarantee must hold under real multi-domain interleaving
     even when the timed run above resolved to one domain (few-core CI) *)
  if domains < 4 then
    check_identical "parallel (4 domains)" seq
      (Scaguard.Pipeline.build_models_batch ~domains:4 build_jobs);
  (* observability is pure observation on the build path too: models must
     stay byte-identical with tracing + metrics forced on *)
  let prev_tracing = Scaguard.Obs.tracing ()
  and prev_metrics = Scaguard.Obs.metrics () in
  Scaguard.Obs.set_tracing true;
  Scaguard.Obs.set_metrics true;
  let observed = Scaguard.Pipeline.build_models_batch ~domains build_jobs in
  Scaguard.Obs.set_tracing prev_tracing;
  Scaguard.Obs.set_metrics prev_metrics;
  check_identical "instrumented" seq observed;
  (* cold cache: builds everything, stores everything *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "scaguard-bench-cache-%d" (Unix.getpid ()))
  in
  let cold_cache = Scaguard.Model_cache.create ~dir in
  let cold, cold_dt =
    time (fun () ->
        Scaguard.Pipeline.build_models_batch ~domains ~cache:cold_cache
          build_jobs)
  in
  check_identical "cold-cache" seq cold;
  if Scaguard.Model_cache.misses cold_cache <> n then
    fail "modeling: cold cache expected %d misses, got %d" n
      (Scaguard.Model_cache.misses cold_cache);
  (* warm cache: every job must hit — zero executions, zero simulations *)
  let warm_cache = Scaguard.Model_cache.create ~dir in
  let warm, warm_dt =
    time (fun () ->
        Scaguard.Pipeline.build_models_batch ~domains ~cache:warm_cache
          build_jobs)
  in
  check_identical "warm-cache" seq warm;
  if Scaguard.Model_cache.hits warm_cache <> n then
    fail "modeling: warm cache expected %d hits, got %d" n
      (Scaguard.Model_cache.hits warm_cache);
  (* service facade: Service.build wraps exactly this composition — the
     models it returns must be byte-identical too *)
  (match
     Scaguard.Service.build
       { Scaguard.Config.default with Scaguard.Config.domains = Some domains }
       build_jobs
   with
  | Ok (svc, _report) -> check_identical "service" seq svc
  | Error e -> fail "modeling: service build failed: %s" (Scaguard.Err.to_string e));
  (* interned vs string-token scoring: bit-identical similarity *)
  let probe = seq.(0) in
  Array.iter
    (fun m ->
      let a = Scaguard.Dtw.compare_models ~interned:true probe m in
      let b = Scaguard.Dtw.compare_models ~interned:false probe m in
      if a <> b then
        fail "modeling: interned score %.17g <> string score %.17g vs %s" a b
          m.Scaguard.Model.name)
    seq;
  (* clean up the temp cache *)
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  let t =
    Sutil.Table.create
      ~title:(Printf.sprintf "Model building (%d programs, %d domains)" n domains)
      [ "configuration"; "wall (s)"; "speedup"; "models/s" ]
  in
  let row name dt =
    Sutil.Table.add_row t
      [
        name;
        Printf.sprintf "%.4f" dt;
        Printf.sprintf "%.2fx" (seq_dt /. dt);
        Printf.sprintf "%.0f" (float_of_int n /. dt);
      ]
  in
  row "sequential (1 domain)" seq_dt;
  row (Printf.sprintf "parallel (%d domains)" domains) par_dt;
  row "parallel + cold cache" cold_dt;
  row "parallel + warm cache" warm_dt;
  emit_table ~artifact:"modeling" t;
  Printf.printf
    "models: parallel, cold-cache, warm-cache, instrumented and \
     Service.build runs byte-identical to the sequential build (%d models)\n\
     warm cache: %d/%d hits — no execution or CST simulation at all\n\
     scores: interned-token and string-token similarities bit-identical \
     (%d pairs)\n"
    n
    (Scaguard.Model_cache.hits warm_cache)
    n n

(* ---- Persist: binary repository image vs text ------------------------------------- *)

let persist () =
  section "Persist: binary repository image vs text";
  let module L = Workloads.Label in
  let module D = Workloads.Dataset in
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt in
  let time f =
    let t0 = Scaguard.Obs.Clock.now_ns () in
    let r = f () in
    (r, Scaguard.Obs.Clock.elapsed_s ~since:t0)
  in
  let rng = rng () in
  (* a repository big enough to time: the per-family PoCs plus the mutated
     attack population, every model labelled with its family *)
  let base_repo = Experiments.Common.repository ~rng L.attack_labels in
  let extra_samples =
    List.concat_map
      (fun l ->
        List.map
          (fun s -> (L.to_string l, s))
          (D.mutated_attacks ~rng ~count:!per_family l))
      L.attack_labels
  in
  let extra_jobs =
    Array.of_list
      (List.map
         (fun (_, (s : D.sample)) ->
           Scaguard.Pipeline.job ?settings:s.D.settings ~init:s.D.init
             ?victim:s.D.victim ~name:s.D.name s.D.program)
         extra_samples)
  in
  let build_config =
    { Scaguard.Config.default with
      Scaguard.Config.domains = Some (worker_domains ()) }
  in
  let extra_models =
    match Scaguard.Service.build build_config extra_jobs with
    | Ok (models, _) -> models
    | Error e -> fail "persist: build failed: %s" (Scaguard.Err.to_string e)
  in
  let repo =
    base_repo
    @ List.mapi
        (fun i (family, _) ->
          { Scaguard.Detector.family; model = extra_models.(i) })
        extra_samples
  in
  let n = List.length repo in
  Printf.printf "repository: %d models\n%!" n;
  (* byte identity: text -> binary -> text must be the identity on the
     canonical text encoding *)
  let text = Scaguard.Persist.repository_to_string repo in
  let bin = Scaguard.Persist.repository_to_bytes repo in
  (match Scaguard.Persist.repository_of_bytes_result bin with
  | Error e -> fail "persist: binary decode failed: %s" (Scaguard.Err.to_string e)
  | Ok decoded ->
    if Scaguard.Persist.repository_to_string decoded <> text then
      fail "persist: text -> binary -> text round-trip not byte-identical");
  (* cold-start: save both formats, time the loads from disk *)
  let tmp suffix =
    Filename.temp_file "scaguard-bench-repo" suffix
  in
  let text_path = tmp ".txt" and bin_path = tmp ".bin" in
  let ok what = function
    | Ok v -> v
    | Error e -> fail "persist: %s failed: %s" what (Scaguard.Err.to_string e)
  in
  ok "text save" (Scaguard.Persist.save_repository_result ~path:text_path repo);
  ok "binary save"
    (Scaguard.Persist.save_repository_bin_result ~path:bin_path repo);
  let heap f =
    (* live-words delta with the loaded value held alive: the in-memory
       footprint of one loaded repository *)
    Gc.compact ();
    let before = (Gc.stat ()).Gc.live_words in
    let v = f () in
    Gc.full_major ();
    let after = (Gc.stat ()).Gc.live_words in
    (v, max 0 (after - before))
  in
  (* heap measured on one load (GC barriers would pollute the timing), load
     latency timed on a separate, GC-free load of the same file *)
  let text_loaded, text_heap =
    heap (fun () ->
        ok "text load"
          (Scaguard.Persist.load_repository_prepared_result ~path:text_path))
  in
  let bin_loaded, bin_heap =
    heap (fun () ->
        ok "binary load"
          (Scaguard.Persist.load_repository_prepared_result ~path:bin_path))
  in
  let _, text_load_dt =
    time (fun () ->
        ok "text load"
          (Scaguard.Persist.load_repository_prepared_result ~path:text_path))
  in
  let _, bin_load_dt =
    time (fun () ->
        ok "binary load"
          (Scaguard.Persist.load_repository_prepared_result ~path:bin_path))
  in
  let img, img_open_dt =
    time (fun () -> ok "image open" (Scaguard.Persist.open_image_result ~path:bin_path))
  in
  let first_name = (fst (Scaguard.Persist.image_pocs img).(0)) in
  let _one, img_one_dt =
    time (fun () ->
        ok "image load" (Scaguard.Persist.image_load_prepared_result img ~name:first_name))
  in
  (* verdict bit-identity across every load path: classify the PoC models
     themselves against (a) the in-memory repository, (b) the text load,
     (c) the binary load's inline summaries, (d) a lazily-assembled image *)
  let targets =
    Array.of_list
      (List.filteri (fun i _ -> i < 8) repo
      |> List.map (fun p -> p.Scaguard.Detector.model))
  in
  let verdicts_of prep =
    Array.map (Scaguard.Detector.classify_prepared prep) targets
  in
  let reference = verdicts_of (Scaguard.Detector.prepare repo) in
  let check_identical what b =
    Array.iteri
      (fun i (v : Scaguard.Detector.verdict) ->
        let p : Scaguard.Detector.verdict = b.(i) in
        if
          v.Scaguard.Detector.best_matches <> p.Scaguard.Detector.best_matches
          || v.Scaguard.Detector.best_family <> p.Scaguard.Detector.best_family
          || v.Scaguard.Detector.best_score <> p.Scaguard.Detector.best_score
        then fail "persist: %s verdict mismatch at target %d" what i)
      reference
  in
  check_identical "text-loaded"
    (verdicts_of (Scaguard.Detector.prepare (fst text_loaded)));
  check_identical "binary-loaded (inline summaries)"
    (verdicts_of (snd bin_loaded));
  let lazy_prep =
    Scaguard.Detector.prepare_summarized
      (Array.map
         (fun (name, _) ->
           ok "lazy load" (Scaguard.Persist.image_load_prepared_result img ~name))
         (Scaguard.Persist.image_pocs img))
  in
  check_identical "lazy image" (verdicts_of lazy_prep);
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ text_path; bin_path ];
  let t =
    Sutil.Table.create
      ~title:(Printf.sprintf "Repository persistence (%d models)" n)
      [ "format"; "bytes"; "load (s)"; "heap (words)" ]
  in
  let row name bytes dt words =
    Sutil.Table.add_row t
      [
        name;
        string_of_int bytes;
        Printf.sprintf "%.4f" dt;
        (match words with Some w -> string_of_int w | None -> "-");
      ]
  in
  row "text" (String.length text) text_load_dt (Some text_heap);
  row "binary" (String.length bin) bin_load_dt (Some bin_heap);
  row "binary (open index)" (String.length bin) img_open_dt None;
  row "binary (index + 1 model)" (String.length bin)
    (img_open_dt +. img_one_dt) None;
  emit_table ~artifact:"persist" t;
  Printf.printf
    "size: binary is %.0f%% of text\n\
     cold start: text load+prepare %.4fs, binary load %.4fs (%.2fx), lazy \
     single-model %.4fs\n\
     verdicts: text, binary (inline summaries) and lazy-image loads \
     bit-identical to the in-memory repository (%d targets x %d PoCs)\n"
    (100.0 *. float_of_int (String.length bin) /. float_of_int (String.length text))
    text_load_dt bin_load_dt (text_load_dt /. bin_load_dt) img_one_dt
    (Array.length targets) n

(* ---- Index: sublinear repository search ------------------------------------------- *)

(* The vantage-point index only pays off on repositories far larger than the
   per-family PoC set, so this stage grows a synthetic population in model
   space: a seed set of pipeline-built models (base PoCs plus Mutate
   variants) is expanded by deterministic entry-level edits — dropped or
   duplicated entries, token-sequence splices and CST swaps, all drawn from
   the seed set's own entry pool so every synthetic entry carries a real
   measured cache transition.  That keeps 100k-model repositories cheap to
   build while preserving the family-cluster structure the index exploits. *)
let index_bench () =
  section "Index: vantage-point repository search vs the linear cascade";
  let module L = Workloads.Label in
  let module D = Workloads.Dataset in
  let module M = Scaguard.Model in
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt in
  let time f =
    let t0 = Scaguard.Obs.Clock.now_ns () in
    let r = f () in
    (r, Scaguard.Obs.Clock.elapsed_s ~since:t0)
  in
  let rng0 = rng () in
  let base_repo = Experiments.Common.repository ~rng:rng0 L.attack_labels in
  let mutant_samples =
    List.concat_map
      (fun l ->
        List.map
          (fun s -> (L.to_string l, s))
          (D.mutated_attacks ~rng:rng0 ~count:(max 2 (min !per_family 8)) l))
      L.attack_labels
  in
  let mutant_jobs =
    Array.of_list
      (List.map
         (fun (_, (s : D.sample)) ->
           Scaguard.Pipeline.job ?settings:s.D.settings ~init:s.D.init
             ?victim:s.D.victim ~name:s.D.name s.D.program)
         mutant_samples)
  in
  let build_config =
    { Scaguard.Config.default with
      Scaguard.Config.domains = Some (worker_domains ()) }
  in
  let mutant_models =
    match Scaguard.Service.build build_config mutant_jobs with
    | Ok (models, _) -> models
    | Error e -> fail "index: build failed: %s" (Scaguard.Err.to_string e)
  in
  let base =
    Array.of_list
      (List.map
         (fun (p : Scaguard.Detector.poc) ->
           (p.Scaguard.Detector.family, p.Scaguard.Detector.model))
         base_repo
      @ List.mapi
          (fun i (family, _) -> (family, mutant_models.(i)))
          mutant_samples)
  in
  (* the entry pool every synthetic edit draws from *)
  let pool =
    Array.concat
      (Array.to_list (Array.map (fun (_, m) -> M.entries_array m) base))
  in
  if Array.length pool = 0 then fail "index: empty entry pool";
  let synth ~rng ~count =
    Array.init count (fun i ->
        let family, base_m = base.(i mod Array.length base) in
        let entries = Array.to_list (M.entries_array base_m) in
        let n = List.length entries in
        (* drop the head entry on some models (keeps >= 2 entries) *)
        let entries =
          match entries with
          | _ :: tl when n > 2 && Sutil.Rng.int rng 4 = 0 -> tl
          | es -> es
        in
        (* duplicate the head entry on some others *)
        let entries =
          if Sutil.Rng.int rng 4 = 0 then List.hd entries :: entries
          else entries
        in
        (* splice roughly one entry per model: a token-sequence cut + a
           tail borrowed from a random pool entry, and that entry's CST —
           every edit stays inside observed token/magnitude space *)
        let k = List.length entries in
        let victim = Sutil.Rng.int rng k in
        let entries =
          List.mapi
            (fun j (e : M.entry) ->
              if j <> victim then e
              else begin
                let p = pool.(Sutil.Rng.int rng (Array.length pool)) in
                let en = e.M.normalized and pn = p.M.normalized in
                let cut = Sutil.Rng.int rng (Array.length en + 1) in
                let add =
                  if Array.length pn = 0 then [||]
                  else Array.sub pn 0 (Sutil.Rng.int rng (Array.length pn + 1))
                in
                let normalized = Array.append (Array.sub en 0 cut) add in
                let normalized =
                  if Array.length normalized = 0 then en else normalized
                in
                M.make_entry ~block:e.M.block ~instrs:e.M.instrs ~normalized
                  ~cst:p.M.cst ~first_time:e.M.first_time
              end)
            entries
        in
        (family, M.make ~name:(Printf.sprintf "synth-%07d" i) entries))
  in
  let t =
    Sutil.Table.create
      ~title:"Repository index: visited fraction and speedup"
      [
        "models"; "targets"; "build (s)"; "linear (s)"; "indexed (s)";
        "speedup"; "visited"; "pruned by index"; "nodes";
      ]
  in
  let json_rows = Buffer.create 256 in
  List.iter
    (fun scale ->
      if scale < 1 then fail "index: scale must be >= 1";
      let rng = Sutil.Rng.create (!seed lxor (scale * 2654435761)) in
      let popul = synth ~rng ~count:scale in
      let repo =
        Array.to_list
          (Array.map
             (fun (family, model) -> { Scaguard.Detector.family; model })
             popul)
      in
      let tcount = min scale (if scale >= 100_000 then 16 else 32) in
      (* targets: fresh synthetic variants, not repository members — the
         realistic "close to one family, far from the rest" query *)
      let targets =
        Array.map snd (synth ~rng ~count:tcount)
      in
      Printf.printf "scale %d: %d models, %d targets...\n%!" scale scale
        tcount;
      let prep_lin = Scaguard.Detector.prepare repo in
      let spec =
        { Scaguard.Vpindex.default_spec with
          Scaguard.Vpindex.mode = Scaguard.Vpindex.Force;
          seed = Scaguard.Vpindex.seed_of_salt (string_of_int !seed) }
      in
      let ix, build_dt =
        time (fun () ->
            Scaguard.Vpindex.build spec
              (Scaguard.Detector.prepared_summaries prep_lin))
      in
      if ix = None then fail "index: Force build returned no index";
      let prep_ix = Scaguard.Detector.attach_index prep_lin ix in
      let ws_lin = Scaguard.Dtw.workspace () in
      let v_lin, lin_dt =
        time (fun () ->
            Array.map
              (Scaguard.Detector.classify_prepared ~ws:ws_lin prep_lin)
              targets)
      in
      let ws_ix = Scaguard.Dtw.workspace () in
      let ixc = Scaguard.Vpindex.counters () in
      let v_ix, ix_dt =
        time (fun () ->
            Array.map
              (Scaguard.Detector.classify_prepared ~ws:ws_ix ~ixc prep_ix)
              targets)
      in
      Array.iteri
        (fun i (v : Scaguard.Detector.verdict) ->
          let p : Scaguard.Detector.verdict = v_ix.(i) in
          if
            v.Scaguard.Detector.best_matches <> p.Scaguard.Detector.best_matches
            || v.Scaguard.Detector.best_family <> p.Scaguard.Detector.best_family
            || Int64.bits_of_float v.Scaguard.Detector.best_score
               <> Int64.bits_of_float p.Scaguard.Detector.best_score
          then fail "index: verdict mismatch at target %d (scale %d)" i scale)
        v_lin;
      let lin_evals = Scaguard.Dtw.lb_evals ws_lin in
      let ix_evals = Scaguard.Dtw.lb_evals ws_ix in
      let visited =
        if lin_evals = 0 then 1.0
        else float_of_int ix_evals /. float_of_int lin_evals
      in
      (* the headline acceptance bar: at the 10k scale the index must
         evaluate under 35% of the linear cascade's lower bounds *)
      if scale = 10_000 && visited >= 0.35 then
        fail "index: visited fraction %.1f%% at 10k (must be < 35%%)"
          (100.0 *. visited);
      Sutil.Table.add_row t
        [
          string_of_int scale;
          string_of_int tcount;
          Printf.sprintf "%.4f" build_dt;
          Printf.sprintf "%.4f" lin_dt;
          Printf.sprintf "%.4f" ix_dt;
          Printf.sprintf "%.2fx" (lin_dt /. ix_dt);
          Printf.sprintf "%.1f%%" (100.0 *. visited);
          string_of_int ixc.Scaguard.Vpindex.pairs_pruned_index;
          string_of_int ixc.Scaguard.Vpindex.nodes_visited;
        ];
      if Buffer.length json_rows > 0 then Buffer.add_string json_rows ",";
      Buffer.add_string json_rows
        (Printf.sprintf
           "{\"models\":%d,\"targets\":%d,\"pairs\":%d,\"build_s\":%.6f,\
            \"linear_s\":%.6f,\"indexed_s\":%.6f,\"speedup\":%.4f,\
            \"lb_evals_linear\":%d,\"lb_evals_indexed\":%d,\
            \"visited_fraction\":%.6f,\"pairs_pruned_index\":%d,\
            \"nodes_visited\":%d,\"identical\":true}"
           scale tcount (scale * tcount) build_dt lin_dt ix_dt
           (lin_dt /. ix_dt) lin_evals ix_evals visited
           ixc.Scaguard.Vpindex.pairs_pruned_index
           ixc.Scaguard.Vpindex.nodes_visited))
    !index_scales;
  emit_table ~artifact:"index" t;
  let json =
    Printf.sprintf "{\"seed\":%d,\"scales\":[%s]}\n" !seed
      (Buffer.contents json_rows)
  in
  let json_path =
    match !out_dir with
    | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      Filename.concat dir "BENCH_index.json"
    | None -> "BENCH_index.json"
  in
  let oc = open_out json_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  Printf.printf
    "(json written to %s)\n\
     verdicts: indexed classification bit-identical to the linear cascade \
     at every scale\n"
    json_path

(* ---- Obs: overhead and purity of the observation switches ------------------------- *)

(* One classification batch timed under every observation switch in turn —
   tracing, metrics, structured-log capture, provenance capture — against an
   all-off baseline.  Each mode's verdicts must be bit-identical to the
   baseline's (observation purity), and the per-switch overhead is reported
   and written to BENCH_obs.json.  The headline number is provenance: its
   target is < 5% throughput overhead at per-family 16. *)
let obs_bench () =
  section "Obs: overhead and purity of the observation switches";
  let module L = Workloads.Label in
  let module D = Workloads.Dataset in
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt in
  let rng = rng () in
  let repo = Experiments.Common.repository ~rng L.attack_labels in
  let samples =
    List.concat_map
      (fun l -> D.mutated_attacks ~rng ~count:!per_family l)
      L.attack_labels
    @ D.benign_samples ~rng ~count:!per_family
  in
  let build_jobs =
    Array.of_list
      (List.map
         (fun (s : D.sample) ->
           Scaguard.Pipeline.job ?settings:s.D.settings ~init:s.D.init
             ?victim:s.D.victim ~name:s.D.name s.D.program)
         samples)
  in
  let build_config =
    { Scaguard.Config.default with
      Scaguard.Config.domains = Some (worker_domains ()) }
  in
  let base =
    match Scaguard.Service.build build_config build_jobs with
    | Ok (models, _) -> models
    | Error e -> fail "obs: service build failed: %s" (Scaguard.Err.to_string e)
  in
  let batch = max (Array.length base) 256 in
  let targets = Array.init batch (fun i -> base.(i mod Array.length base)) in
  let prep = Scaguard.Detector.prepare repo in
  let pairs = batch * List.length repo in
  Printf.printf "batch: %d targets x %d PoCs = %d pairs\n%!" batch
    (List.length repo) pairs;
  let ws = Scaguard.Dtw.workspace () in
  let prev_tracing = Scaguard.Obs.tracing ()
  and prev_metrics = Scaguard.Obs.metrics () in
  let all_off () =
    Scaguard.Obs.set_tracing false;
    Scaguard.Obs.set_metrics false;
    Scaguard.Log.set_capture false;
    Scaguard.Provenance.set_capture false
  in
  let classify_all () =
    Array.map (Scaguard.Detector.classify_prepared ~ws prep) targets
  in
  all_off ();
  (* several warm passes: the first touches of the summaries, the workspace
     growth and the allocator all happen outside the timed windows *)
  for _ = 1 to 3 do
    ignore (classify_all ())
  done;
  (* round-robin timing: every round runs one pass of every mode in turn, so
     clock drift, allocator state and frequency scaling hit all modes
     equally instead of penalizing whichever ran last; each mode keeps its
     best pass.  The capture sinks are cleared before every pass so no pass
     ever measures a saturated (dropping) sink. *)
  let mode_list =
    [|
      ("baseline", fun () -> ());
      ("tracing", fun () -> Scaguard.Obs.set_tracing true);
      ("metrics", fun () -> Scaguard.Obs.set_metrics true);
      ("log", fun () -> Scaguard.Log.set_capture true);
      ("provenance", fun () -> Scaguard.Provenance.set_capture true);
    |]
  in
  let n_modes = Array.length mode_list in
  let best = Array.make n_modes infinity in
  let verdicts = Array.make n_modes [||] in
  let rounds = 5 in
  for _round = 1 to rounds do
    Array.iteri
      (fun i (_, apply) ->
        all_off ();
        apply ();
        Scaguard.Provenance.clear ();
        Scaguard.Log.clear ();
        Scaguard.Obs.reset ();
        let t0 = Scaguard.Obs.Clock.now_ns () in
        let v = classify_all () in
        let dt = Scaguard.Obs.Clock.elapsed_s ~since:t0 in
        if dt < best.(i) then best.(i) <- dt;
        verdicts.(i) <- v)
      mode_list
  done;
  let baseline = verdicts.(0) in
  let base_dt = best.(0) in
  let check_identical what b =
    Array.iteri
      (fun i (v : Scaguard.Detector.verdict) ->
        let p : Scaguard.Detector.verdict = b.(i) in
        if
          v.Scaguard.Detector.best_matches <> p.Scaguard.Detector.best_matches
          || v.Scaguard.Detector.best_family <> p.Scaguard.Detector.best_family
          || Int64.bits_of_float v.Scaguard.Detector.best_score
             <> Int64.bits_of_float p.Scaguard.Detector.best_score
        then fail "obs: %s verdict differs from baseline at target %d" what i)
      baseline
  in
  let timed =
    List.filteri (fun i _ -> i > 0)
      (Array.to_list
         (Array.mapi
            (fun i (name, _) ->
              check_identical name verdicts.(i);
              (name, best.(i)))
            mode_list))
  in
  let t =
    Sutil.Table.create ~title:"Observation switch overhead (batch classification)"
      [ "switch"; "wall (s)"; "pairs/s"; "overhead"; "identical" ]
  in
  Sutil.Table.add_row t
    [
      "(all off)";
      Printf.sprintf "%.4f" base_dt;
      Printf.sprintf "%.0f" (float_of_int pairs /. base_dt);
      "-";
      "-";
    ];
  let json_rows = Buffer.create 256 in
  Buffer.add_string json_rows
    (Printf.sprintf "{\"name\":\"baseline\",\"wall_s\":%.6f,\"pairs_per_s\":%.1f}"
       base_dt
       (float_of_int pairs /. base_dt));
  let prov_overhead = ref 0.0 in
  List.iter
    (fun (name, dt) ->
      let overhead = (dt -. base_dt) /. base_dt *. 100.0 in
      if name = "provenance" then prov_overhead := overhead;
      Sutil.Table.add_row t
        [
          name;
          Printf.sprintf "%.4f" dt;
          Printf.sprintf "%.0f" (float_of_int pairs /. dt);
          Printf.sprintf "%+.1f%%" overhead;
          "yes";
        ];
      Buffer.add_string json_rows
        (Printf.sprintf
           ",{\"name\":%S,\"wall_s\":%.6f,\"pairs_per_s\":%.1f,\
            \"overhead_pct\":%.2f,\"identical\":true}"
           name dt
           (float_of_int pairs /. dt)
           overhead))
    timed;
  all_off ();
  Scaguard.Provenance.clear ();
  Scaguard.Log.clear ();
  Scaguard.Obs.reset ();
  Scaguard.Obs.set_tracing prev_tracing;
  Scaguard.Obs.set_metrics prev_metrics;
  emit_table ~artifact:"obs" t;
  let json =
    Printf.sprintf
      "{\"seed\":%d,\"per_family\":%d,\"batch\":%d,\"pairs\":%d,\"modes\":[%s]}\n"
      !seed !per_family batch pairs (Buffer.contents json_rows)
  in
  let json_path =
    match !out_dir with
    | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      Filename.concat dir "BENCH_obs.json"
    | None -> "BENCH_obs.json"
  in
  let oc = open_out json_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  Printf.printf "(json written to %s)\n" json_path;
  Printf.printf "verdicts: bit-identical to the all-off baseline under every switch\n";
  Printf.printf "provenance overhead: %+.1f%% (target < 5%%)\n" !prov_overhead;
  if !prov_overhead >= 5.0 then
    Printf.printf
      "  (above target on this host/run -- timing noise at small batches is \
       common; rerun with a larger --per-family for a stable figure)\n"

(* ---- Serve: the resident daemon vs detect-batch ----------------------------------- *)

(* Drive the serve core in-process (connect/feed/step — the same code path
   the socket transports pump), one detect request per target, and then
   assert the streamed verdicts are bit-identical to one
   Service.screen_prepared batch over the identical jobs and salt.  The
   scores compared on the serve side have been through the wire format
   (%.17g), so this also proves the protocol loses no bits. *)
let serve_bench () =
  section "Serve: resident daemon request latency";
  let module L = Workloads.Label in
  let module D = Workloads.Dataset in
  let module Server = Scaguard.Server in
  let module J = Scaguard.Server.Json in
  let rng = rng () in
  let repo = Experiments.Common.repository ~rng L.attack_labels in
  let prepared = Scaguard.Detector.prepare repo in
  let per = max 2 (!per_family / 4) in
  let samples =
    List.concat_map (fun l -> D.mutated_attacks ~rng ~count:per l) L.attack_labels
    @ D.benign_samples ~rng ~count:per
  in
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun (s : D.sample) -> Hashtbl.replace by_name s.D.name s)
    samples;
  let job_of (s : D.sample) =
    Scaguard.Pipeline.job ?settings:s.D.settings ~init:s.D.init
      ?victim:s.D.victim ~name:s.D.name s.D.program
  in
  let resolve ~seed:_ name =
    match Hashtbl.find_opt by_name name with
    | Some s -> Ok (job_of s)
    | None ->
      Error
        (Scaguard.Err.Invalid_config
           { field = "target"; value = name; expected = "a bench sample" })
  in
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt in
  let server =
    match
      Server.create ~config:Scaguard.Config.default ~resolve ~prepared ()
    with
    | Ok t -> t
    | Error e -> fail "serve: create failed: %s" (Scaguard.Err.to_string e)
  in
  let frames = ref [] in
  let conn =
    Server.connect server ~emit:(fun line ->
        match J.parse line with
        | Ok v -> frames := v :: !frames
        | Error e -> fail "serve: emitted invalid JSON: %s" e)
  in
  let names = List.map (fun (s : D.sample) -> s.D.name) samples in
  let n = List.length names in
  Printf.printf "serving %d single-target detect requests (%d resident PoCs)...\n%!"
    n (List.length repo);
  (* warm the first-touch costs out of the measured loop, like a resident
     daemon that has already answered a request *)
  Server.feed server conn
    (Printf.sprintf "{\"id\":0,\"op\":\"detect\",\"targets\":[%S],\"seed\":%d}\n"
       (List.hd names) !seed);
  ignore (Server.drain server);
  frames := [];
  let t_all0 = Scaguard.Obs.Clock.now_ns () in
  let latencies =
    List.mapi
      (fun i name ->
        let t0 = Scaguard.Obs.Clock.now_ns () in
        Server.feed server conn
          (Printf.sprintf
             "{\"id\":%d,\"op\":\"detect\",\"targets\":[%S],\"seed\":%d}\n"
             (i + 1) name !seed);
        (match Server.drain server with
        | `Idle -> ()
        | `Stop -> fail "serve: unexpected stop");
        Scaguard.Obs.Clock.elapsed_s ~since:t0)
      names
  in
  let wall = Scaguard.Obs.Clock.elapsed_s ~since:t_all0 in
  (* collect the streamed verdicts, in request order *)
  let verdict_frames =
    List.filter (fun f -> J.member "event" f <> None) (List.rev !frames)
  in
  if List.length verdict_frames <> n then
    fail "serve: expected %d verdict frames, got %d" n
      (List.length verdict_frames);
  (* the reference: one batch over the same jobs, with the salt policy the
     server applies (detect-batch's) *)
  let config' =
    { Scaguard.Config.default with Scaguard.Config.salt = string_of_int !seed }
  in
  let jobs =
    Array.of_list
      (List.map (fun name -> Hashtbl.find by_name name |> job_of) names)
  in
  let verdicts =
    match Scaguard.Service.screen_prepared config' prepared jobs with
    | Ok (_, v, _) -> v
    | Error e -> fail "serve: batch reference failed: %s" (Scaguard.Err.to_string e)
  in
  List.iteri
    (fun i frame ->
      let score =
        match J.member "score" frame with
        | Some (J.Num f) -> f
        | _ -> fail "serve: verdict frame %d lacks a score" i
      in
      let family =
        match J.member "family" frame with
        | Some (J.Str f) -> Some f
        | Some J.Null -> None
        | _ -> fail "serve: verdict frame %d lacks a family" i
      in
      let v = verdicts.(i) in
      if
        Int64.bits_of_float score
        <> Int64.bits_of_float v.Scaguard.Detector.best_score
        || family <> v.Scaguard.Detector.best_family
      then fail "serve: verdict mismatch at target %d (%s)" i (List.nth names i))
    verdict_frames;
  let q p = 1e3 *. Sutil.Stats.percentile p latencies in
  let t =
    Sutil.Table.create
      ~title:(Printf.sprintf "Serve request latency (%d detect requests)" n)
      [ "metric"; "value" ]
  in
  let row k v = Sutil.Table.add_row t [ k; v ] in
  row "requests" (string_of_int n);
  row "p50 (ms)" (Printf.sprintf "%.3f" (q 0.50));
  row "p90 (ms)" (Printf.sprintf "%.3f" (q 0.90));
  row "p99 (ms)" (Printf.sprintf "%.3f" (q 0.99));
  row "max (ms)" (Printf.sprintf "%.3f" (1e3 *. Sutil.Stats.maximum latencies));
  row "throughput (req/s)" (Printf.sprintf "%.1f" (float_of_int n /. wall));
  emit_table ~artifact:"serve" t;
  Printf.printf
    "verdicts: all %d streamed serve verdicts bit-identical to one \
     Service.screen_prepared batch (same salt) after the wire round-trip\n"
    n

(* ---- Compare: every registered detector on one dataset ---------------------------- *)

(* The showdown table from `scaguard compare`, as a bench artifact: one
   dataset, every detector, accuracy + latency + throughput side by side.
   The stage also enforces the ensemble's contract — its detection F1 and
   throughput must not fall below pure-DTW SCAGuard's, otherwise the cheap
   screen is mis-tuned and the two-tier split is a net loss. *)
let compare_bench () =
  section "Compare: every detector over one generated dataset";
  let module S = Experiments.Showdown in
  let rng = rng () in
  let t = S.evaluate ~rng ~per_family:(max 4 !per_family) () in
  emit_table ~artifact:"compare" (S.to_table t);
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt in
  let row key =
    match List.find_opt (fun (r : S.row) -> r.S.key = key) t.S.rows with
    | Some r -> r
    | None -> fail "compare: detector %S missing from the showdown" key
  in
  let sg = row "scaguard" in
  let en = row "ensemble" in
  if en.S.detection.Ml.Metrics.f1 < sg.S.detection.Ml.Metrics.f1 then
    fail
      "compare: ensemble detection F1 %.4f fell below pure SCAGuard's %.4f \
       — the screen is fast-rejecting attacks"
      en.S.detection.Ml.Metrics.f1 sg.S.detection.Ml.Metrics.f1;
  if en.S.throughput < sg.S.throughput then
    fail
      "compare: ensemble throughput %.1f runs/s below pure SCAGuard's %.1f \
       — the screen costs more than the DTW it skips"
      en.S.throughput sg.S.throughput;
  let json =
    Printf.sprintf "{\"seed\":%d,\"showdown\":%s}\n" !seed (S.to_json t)
  in
  let json_path =
    match !out_dir with
    | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      Filename.concat dir "BENCH_compare.json"
    | None -> "BENCH_compare.json"
  in
  let oc = open_out json_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  let stats =
    match en.S.ensemble with
    | Some s -> s
    | None -> fail "compare: ensemble row carries no screening stats"
  in
  Printf.printf
    "(json written to %s)\n\
     verdicts: ensemble >= SCAGuard on detection F1 (%.4f vs %.4f) and \
     throughput (%.1f vs %.1f runs/s), slow path %d/%d\n"
    json_path en.S.detection.Ml.Metrics.f1 sg.S.detection.Ml.Metrics.f1
    en.S.throughput sg.S.throughput stats.Detect.Ensemble.slow_path
    stats.Detect.Ensemble.screened

(* ---- Time cost (Section V), via Bechamel ------------------------------------------ *)

let timecost () =
  section "Time cost of pipeline stages (Section V), Bechamel";
  let open Bechamel in
  let sample =
    Workloads.Dataset.with_harness ~rng:(rng ())
      (Workloads.Dataset.of_spec
         (Workloads.Attacks.flush_reload ~style:Workloads.Attacks.Iaik ()))
  in
  let exec_result = Workloads.Dataset.run sample in
  let analysis =
    Scaguard.Pipeline.analyze ~name:"bench" ~program:sample.Workloads.Dataset.program
      exec_result
  in
  let cfg_g = analysis.Scaguard.Pipeline.cfg in
  let info = analysis.Scaguard.Pipeline.info in
  let model = analysis.Scaguard.Pipeline.model in
  let other =
    (Scaguard.Pipeline.run_and_analyze
       ~init:(fun _ -> ())
       (Workloads.Attacks.prime_probe ~style:Workloads.Attacks.Iaik ())
         .Workloads.Attacks.program)
      .Scaguard.Pipeline.model
  in
  let tests =
    [
      Test.make ~name:"collect: execute PoC (runtime data)"
        (Staged.stage (fun () -> ignore (Workloads.Dataset.run sample)));
      Test.make ~name:"cfg: build CFG"
        (Staged.stage (fun () ->
             ignore (Cfg.Graph.of_program sample.Workloads.Dataset.program)));
      Test.make ~name:"identify: attack-relevant BBs"
        (Staged.stage (fun () ->
             ignore (Scaguard.Relevant.identify cfg_g exec_result.Cpu.Exec.collector)));
      Test.make ~name:"algorithm1: attack-relevant graph"
        (Staged.stage (fun () ->
             ignore
               (Scaguard.Attack_graph.build cfg_g
                  ~hpc:info.Scaguard.Relevant.hpc_of_block
                  ~relevant:info.Scaguard.Relevant.relevant)));
      Test.make ~name:"cst: model construction"
        (Staged.stage (fun () ->
             ignore
               (Scaguard.Model.build ~name:"m" info analysis.Scaguard.Pipeline.attack_graph)));
      Test.make ~name:"dtw: model comparison"
        (Staged.stage (fun () -> ignore (Scaguard.Dtw.compare_models model other)));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"" [ test ]) in
    let results = Analyze.all ols instance raw in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] ->
          Printf.printf "  %-42s %12.1f ns/run\n%!" name est
        | _ -> Printf.printf "  %-42s (no estimate)\n%!" name)
      results
  in
  List.iter benchmark tests

let all () =
  table1 (); table2 (); table3 (); table4 (); table5 (); table6 ();
  fig5 (); ablation (); extended (); clusters (); robustness (); scaling ();
  engine (); modeling (); persist (); index_bench (); obs_bench ();
  serve_bench (); compare_bench (); timecost ()

let () =
  Printf.printf
    "SCAGuard reproduction benches (per-family %d, seed %d)\n%!"
    !per_family !seed;
  let run = function
    | "table1" -> table1 ()
    | "table2" -> table2 ()
    | "table3" -> table3 ()
    | "table4" -> table4 ()
    | "table5" -> table5 ()
    | "table6" -> table6 ()
    | "fig5" -> fig5 ()
    | "ablation" -> ablation ()
    | "robustness" -> robustness ()
    | "extended" -> extended ()
    | "clusters" -> clusters ()
    | "scaling" -> scaling ()
    | "engine" -> engine ()
    | "modeling" -> modeling ()
    | "persist" -> persist ()
    | "index" -> index_bench ()
    | "obs" -> obs_bench ()
    | "serve" -> serve_bench ()
    | "compare" -> compare_bench ()
    | "timecost" -> timecost ()
    | "all" -> all ()
    | other ->
      Printf.eprintf "unknown artifact %S\n%s\n" other usage;
      exit 1
  in
  (match !artifacts with
  | [] -> all ()
  | xs -> List.iter run (List.rev xs));
  let write what result =
    match result with
    | Ok path -> Printf.printf "(%s written to %s)\n" what path
    | Error e ->
      Printf.eprintf "bench: writing %s failed: %s\n" what
        (Scaguard.Err.to_string e);
      exit 2
  in
  Option.iter
    (fun path ->
      write "trace"
        (Result.map
           (fun () -> path)
           (Scaguard.Obs.Trace_writer.write ~path (Scaguard.Obs.spans ()))))
    !trace_out;
  Option.iter
    (fun path ->
      write "metrics"
        (Result.map (fun () -> path) (Scaguard.Obs.write_metrics ~path)))
    !metrics_out
