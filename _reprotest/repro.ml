let () =
  (* SCAGBIN v1 'R' + string-table count as 9-byte varint decoding negative *)
  let buf = Buffer.create 32 in
  Buffer.add_string buf "SCAGBIN";
  Buffer.add_char buf '\001';
  Buffer.add_char buf 'R';
  for _ = 1 to 8 do Buffer.add_char buf '\x80' done;
  Buffer.add_char buf '\x40';
  (* padding so "remaining" is positive *)
  Buffer.add_string buf "XXXX";
  let s = Buffer.contents buf in
  (match Scaguard.Persist.repository_of_bytes_result ~file:"crafted" s with
   | Ok _ -> print_endline "Ok (unexpected)"
   | Error e -> Printf.printf "typed error (good): %s\n" (Scaguard.Err.to_string e)
   | exception exn ->
     Printf.printf "UNCAUGHT EXCEPTION (bug): %s\n" (Printexc.to_string exn))
