type t = Attacker | Victim | System

let to_string = function
  | Attacker -> "attacker"
  | Victim -> "victim"
  | System -> "system"

let equal a b =
  match (a, b) with
  | Attacker, Attacker | Victim, Victim | System, System -> true
  | (Attacker | Victim | System), _ -> false

let pp fmt t = Format.pp_print_string fmt (to_string t)
