(** Cache states and cache state transitions (Definitions 2–4 of the paper).

    A cache state is [(AO, IO)]: the occupancy rate of lines owned by the
    attack program and by everyone else, with [AO + IO <= 1]. *)

type t = { ao : float; io : float }

val make : ao:float -> io:float -> t
(** Checked constructor.
    @raise Invalid_argument unless [0 <= ao], [0 <= io], [ao + io <= 1 + eps]. *)

val empty : t
(** [(0, 0)] — an empty cache. *)

val full_other : t
(** [(0, 1)] — the paper's CST-measurement start state: cache full of
    non-attacker data. *)

val change_magnitude : before:t -> after:t -> float
(** [P = (|AO - AO'| + |IO - IO'|) / 2], the cache-change magnitude of a
    transition (§III-B1). *)

val distance : (t * t) -> (t * t) -> float
(** [distance (s1, s1') (s2, s2')] is [|P2 - P1|], the paper's D_CSP. *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
