(** Two-level cache hierarchy (split L1 + shared LLC) with the timing model
    the simulated attacks measure.

    The latencies follow the usual Skylake-class ballpark (L1 ~4 cycles, LLC
    ~42, DRAM ~200); [clflush] is slower when the line is actually cached,
    which is the timing channel Flush+Flush exploits. *)

type latencies = {
  l1_hit : int;
  llc_hit : int;
  memory : int;
  flush_present : int;  (** clflush of a cached line *)
  flush_absent : int;   (** clflush of an uncached line *)
}

val default_latencies : latencies

type t

type outcome = {
  l1_hit : bool;
  llc_hit : bool;       (** meaningful only when [l1_hit] is false *)
  latency : int;        (** cycles *)
}

val create : ?l1d:Config.t -> ?l1i:Config.t -> ?llc:Config.t ->
  ?latencies:latencies -> ?policy:Policy.t -> ?inclusive:bool ->
  ?prefetch:bool -> unit -> t
(** [policy] applies to every level and defaults to {!Policy.Lru}.
    [inclusive] (default true) controls whether LLC evictions back-invalidate
    the L1s — Evict+Reload needs it.  [prefetch] (default false) enables a
    next-line prefetcher on demand-load L1 misses. *)

val create_cross_core :
  ?l1d:Config.t -> ?l1i:Config.t -> ?llc:Config.t -> ?latencies:latencies ->
  ?policy:Policy.t -> ?inclusive:bool -> ?prefetch:bool -> unit -> t * t
(** Two cores with private L1s sharing one LLC (the cross-core LLC-attack
    topology).  [clflush] and inclusive back-invalidation propagate into the
    peer's private L1s, as cache coherence does.  {!create} by contrast
    models SMT co-residency: one core, every level shared. *)

val load : t -> owner:Owner.t -> int -> outcome
(** Data load at a byte address; fills L1D and LLC on miss. *)

val store : t -> owner:Owner.t -> int -> outcome
(** Data store (write-allocate). *)

val ifetch : t -> owner:Owner.t -> int -> outcome
(** Instruction fetch through L1I + LLC. *)

val flush : t -> int -> int
(** [flush t addr] invalidates the address's line in every level; returns the
    operation's latency (present vs absent timing). *)

val prefetch : t -> owner:Owner.t -> int -> outcome
(** Same cache effects as a load. *)

val llc_state : t -> State.t
(** The paper's [(AO, IO)] state, measured on the shared LLC. *)

val l1d_state : t -> State.t

val llc_set_of_addr : t -> int -> int
(** LLC set index of an address — the granularity at which the attack-relevant
    BB identification computes overlaps (§III-A1). *)

val llc_cache : t -> Set_assoc.t
val l1d_cache : t -> Set_assoc.t
val l1i_cache : t -> Set_assoc.t

val reset : t -> unit

val fill_with : t -> owner:Owner.t -> unit
(** Fill all levels entirely with lines of the given owner. *)
