(** Replacement policies for the set-associative caches.

    Real LLCs are not strictly LRU (Ivy Bridge onward use adaptive/PLRU
    schemes), and attack papers routinely ask whether eviction-based attacks
    survive other policies — the policy is a constructor parameter so the
    robustness benches can sweep it. *)

type t =
  | Lru            (** least-recently-used (hits refresh) *)
  | Fifo           (** round-robin by fill order (hits do not refresh) *)
  | Random of int  (** pseudo-random victim way, from the given seed *)

val to_string : t -> string
val all : t list
(** [Lru; Fifo; Random 1] — one representative of each. *)
