type latencies = {
  l1_hit : int;
  llc_hit : int;
  memory : int;
  flush_present : int;
  flush_absent : int;
}

let default_latencies =
  { l1_hit = 4; llc_hit = 42; memory = 200; flush_present = 14; flush_absent = 6 }

type t = {
  l1d : Set_assoc.t;
  l1i : Set_assoc.t;
  llc : Set_assoc.t;
  lat : latencies;
  inclusive : bool;
  prefetch : bool;
  mutable peers : t list;
      (* other cores' views sharing this LLC: coherence propagates flushes
         and back-invalidations into their private L1s *)
}

type outcome = { l1_hit : bool; llc_hit : bool; latency : int }

let create ?(l1d = Config.l1d) ?(l1i = Config.l1i) ?(llc = Config.llc)
    ?(latencies = default_latencies) ?policy ?(inclusive = true)
    ?(prefetch = false) () =
  {
    l1d = Set_assoc.create ?policy l1d;
    l1i = Set_assoc.create ?policy l1i;
    llc = Set_assoc.create ?policy llc;
    lat = latencies;
    inclusive;
    prefetch;
    peers = [];
  }

(* Invalidate a line from every private L1 that might hold it (this core's
   and every peer core's). *)
let invalidate_private t addr =
  ignore (Set_assoc.flush t.l1d addr);
  ignore (Set_assoc.flush t.l1i addr);
  List.iter
    (fun peer ->
      ignore (Set_assoc.flush peer.l1d addr);
      ignore (Set_assoc.flush peer.l1i addr))
    t.peers

let through t l1 ~owner addr =
  let r1 = Set_assoc.access l1 ~owner addr in
  if r1.Set_assoc.hit then
    { l1_hit = true; llc_hit = false; latency = t.lat.l1_hit }
  else begin
    let r2 = Set_assoc.access t.llc ~owner addr in
    (* Inclusive LLC: evicting a line from the LLC back-invalidates it in the
       L1s — the property Evict+Reload depends on (and loses without). *)
    (if t.inclusive then
       match r2.Set_assoc.evicted with
       | Some (eaddr, _) -> invalidate_private t eaddr
       | None -> ());
    if r2.Set_assoc.hit then
      { l1_hit = false; llc_hit = true; latency = t.lat.llc_hit }
    else { l1_hit = false; llc_hit = false; latency = t.lat.memory }
  end

(* A simple next-line prefetcher: a demand load miss also pulls the
   following line in, asynchronously (no latency charged, no events). *)
let run_prefetcher t ~owner addr outcome =
  if t.prefetch && not outcome.l1_hit then begin
    let next = addr + Config.line_size (Set_assoc.config t.l1d) in
    let r1 = Set_assoc.access t.l1d ~owner next in
    if not r1.Set_assoc.hit then begin
      let r2 = Set_assoc.access t.llc ~owner next in
      if t.inclusive then
        match r2.Set_assoc.evicted with
        | Some (eaddr, _) -> invalidate_private t eaddr
        | None -> ()
    end
  end

let load t ~owner addr =
  let outcome = through t t.l1d ~owner addr in
  run_prefetcher t ~owner addr outcome;
  outcome
let store t ~owner addr = through t t.l1d ~owner addr
let ifetch t ~owner addr = through t t.l1i ~owner addr
let prefetch t ~owner addr = through t t.l1d ~owner addr

let flush t addr =
  (* clflush is coherence-wide: peer cores' private copies go too. *)
  let p1 = Set_assoc.flush t.l1d addr in
  let p2 = Set_assoc.flush t.l1i addr in
  let p3 = Set_assoc.flush t.llc addr in
  List.iter
    (fun peer ->
      ignore (Set_assoc.flush peer.l1d addr);
      ignore (Set_assoc.flush peer.l1i addr))
    t.peers;
  if p1 || p2 || p3 then t.lat.flush_present else t.lat.flush_absent

let llc_state t = Set_assoc.state t.llc
let l1d_state t = Set_assoc.state t.l1d

let llc_set_of_addr t addr = Config.set_of_addr (Set_assoc.config t.llc) addr

let llc_cache t = t.llc
let l1d_cache t = t.l1d
let l1i_cache t = t.l1i

let reset t =
  Set_assoc.reset t.l1d;
  Set_assoc.reset t.l1i;
  Set_assoc.reset t.llc

let fill_with t ~owner =
  Set_assoc.fill_all t.l1d ~owner;
  Set_assoc.fill_all t.l1i ~owner;
  Set_assoc.fill_all t.llc ~owner

(* Two cores with private L1s sharing one LLC — the classic cross-core
   LLC-attack topology.  Both views use the same latencies and knobs. *)
let create_cross_core ?(l1d = Config.l1d) ?(l1i = Config.l1i)
    ?(llc = Config.llc) ?(latencies = default_latencies) ?policy
    ?(inclusive = true) ?(prefetch = false) () =
  let shared_llc = Set_assoc.create ?policy llc in
  let mk () =
    {
      l1d = Set_assoc.create ?policy l1d;
      l1i = Set_assoc.create ?policy l1i;
      llc = shared_llc;
      lat = latencies;
      inclusive;
      prefetch;
      peers = [];
    }
  in
  let a = mk () and b = mk () in
  a.peers <- [ b ];
  b.peers <- [ a ];
  (a, b)
