type t = { sets : int; ways : int; line_bits : int }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let make ~sets ~ways ?(line_bits = 6) () =
  if sets <= 0 then invalid_arg "Cache.Config.make: sets must be positive";
  if ways <= 0 then invalid_arg "Cache.Config.make: ways must be positive";
  if line_bits < 0 || line_bits > 16 then
    invalid_arg "Cache.Config.make: unreasonable line_bits";
  { sets; ways; line_bits }

let lines t = t.sets * t.ways
let line_size t = 1 lsl t.line_bits

(* Power-of-two set counts index with a mask (hardware-style); other counts
   (e.g. the prime-sized CST probe) fall back to modulo, which keeps
   page-stride access patterns from aliasing into one set. *)
let set_of_addr t addr =
  let line = addr lsr t.line_bits in
  if is_pow2 t.sets then line land (t.sets - 1) else line mod t.sets

let tag_of_addr t addr = (addr lsr t.line_bits) / t.sets
let line_addr t addr = addr land lnot ((1 lsl t.line_bits) - 1)

let l1d = make ~sets:64 ~ways:8 ()
let l1i = make ~sets:64 ~ways:8 ()
let llc = make ~sets:512 ~ways:16 ()
let cst_probe = make ~sets:61 ~ways:2 ()

let pp fmt t =
  Format.fprintf fmt "%d sets x %d ways x %d B" t.sets t.ways (line_size t)
