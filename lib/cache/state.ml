type t = { ao : float; io : float }

let eps = 1e-9

let make ~ao ~io =
  if ao < -.eps || io < -.eps || ao +. io > 1.0 +. 1e-6 then
    invalid_arg
      (Printf.sprintf "Cache.State.make: invalid occupancy (%f, %f)" ao io);
  { ao; io }

let empty = { ao = 0.0; io = 0.0 }
let full_other = { ao = 0.0; io = 1.0 }

let change_magnitude ~before ~after =
  (abs_float (before.ao -. after.ao) +. abs_float (before.io -. after.io))
  /. 2.0

let distance (s1, s1') (s2, s2') =
  let p1 = change_magnitude ~before:s1 ~after:s1' in
  let p2 = change_magnitude ~before:s2 ~after:s2' in
  abs_float (p2 -. p1)

let equal ?(eps = 1e-9) a b =
  abs_float (a.ao -. b.ao) <= eps && abs_float (a.io -. b.io) <= eps

let pp fmt t = Format.fprintf fmt "(AO=%.4f, IO=%.4f)" t.ao t.io
