type line = {
  mutable valid : bool;
  mutable tag : int;
  mutable owner : Owner.t;
  mutable lru : int; (* larger = more recently used *)
}

type t = {
  cfg : Config.t;
  policy : Policy.t;
  lines : line array array; (* [set].[way] *)
  mutable clock : int;
  mutable rnd : int64; (* state for the Random policy *)
}

type access_result = { hit : bool; evicted : (int * Owner.t) option }

let create ?(policy = Policy.Lru) cfg =
  let mk_line _ = { valid = false; tag = 0; owner = Owner.System; lru = 0 } in
  {
    cfg;
    policy;
    lines = Array.init cfg.Config.sets (fun _ -> Array.init cfg.Config.ways mk_line);
    clock = 0;
    rnd =
      (match policy with
      | Policy.Random seed -> Int64.of_int ((seed * 2) + 1)
      | Policy.Lru | Policy.Fifo -> 1L);
  }

let policy t = t.policy

let config t = t.cfg

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find_way set_lines tag =
  let n = Array.length set_lines in
  let rec go i =
    if i >= n then None
    else if set_lines.(i).valid && set_lines.(i).tag = tag then Some i
    else go (i + 1)
  in
  go 0

(* Oldest by the lru/fill stamp; invalid ways always win. *)
let oldest_way set_lines =
  let best = ref 0 in
  Array.iteri
    (fun i l ->
      if not l.valid then (if set_lines.(!best).valid then best := i)
      else if set_lines.(!best).valid && l.lru < set_lines.(!best).lru then
        best := i)
    set_lines;
  !best

let next_random t bound =
  (* splitmix64 step, reduced *)
  t.rnd <- Int64.add t.rnd 0x9E3779B97F4A7C15L;
  let z = t.rnd in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.shift_right_logical (Int64.logxor z (Int64.shift_right_logical z 31)) 2)
  mod bound

let victim_way t set_lines =
  (* invalid ways fill first under every policy *)
  let invalid = ref (-1) in
  Array.iteri (fun i l -> if (not l.valid) && !invalid < 0 then invalid := i) set_lines;
  if !invalid >= 0 then !invalid
  else
    match t.policy with
    | Policy.Lru | Policy.Fifo -> oldest_way set_lines
    | Policy.Random _ -> next_random t (Array.length set_lines)

(* Reconstruct a line's base address from set index and tag, for eviction
   reporting. *)
let addr_of t set tag =
  ((tag * t.cfg.Config.sets) + set) lsl t.cfg.Config.line_bits

let access t ~owner addr =
  let set = Config.set_of_addr t.cfg addr in
  let tag = Config.tag_of_addr t.cfg addr in
  let set_lines = t.lines.(set) in
  match find_way set_lines tag with
  | Some w ->
    let l = set_lines.(w) in
    (* FIFO keeps the fill stamp on hits; LRU refreshes it. *)
    (match t.policy with
    | Policy.Lru | Policy.Random _ -> l.lru <- tick t
    | Policy.Fifo -> ());
    l.owner <- owner;
    { hit = true; evicted = None }
  | None ->
    let w = victim_way t set_lines in
    let l = set_lines.(w) in
    let evicted =
      if l.valid then Some (addr_of t set l.tag, l.owner) else None
    in
    l.valid <- true;
    l.tag <- tag;
    l.owner <- owner;
    l.lru <- tick t;
    { hit = false; evicted }

let probe t addr =
  let set = Config.set_of_addr t.cfg addr in
  let tag = Config.tag_of_addr t.cfg addr in
  Option.is_some (find_way t.lines.(set) tag)

let flush t addr =
  let set = Config.set_of_addr t.cfg addr in
  let tag = Config.tag_of_addr t.cfg addr in
  match find_way t.lines.(set) tag with
  | Some w ->
    t.lines.(set).(w).valid <- false;
    true
  | None -> false

let fill_all t ~owner =
  Array.iteri
    (fun set set_lines ->
      Array.iteri
        (fun way l ->
          l.valid <- true;
          (* Distinct tags per way so every line is a distinct address. *)
          l.tag <- way + 1;
          ignore set;
          l.owner <- owner;
          l.lru <- tick t)
        set_lines)
    t.lines

let reset t =
  Array.iter (Array.iter (fun l -> l.valid <- false)) t.lines;
  t.clock <- 0

let count_owned t owner =
  let n = ref 0 in
  Array.iter
    (Array.iter (fun l -> if l.valid && Owner.equal l.owner owner then incr n))
    t.lines;
  !n

let occupancy t owner =
  float_of_int (count_owned t owner) /. float_of_int (Config.lines t.cfg)

let state t =
  let total = float_of_int (Config.lines t.cfg) in
  let ao = float_of_int (count_owned t Owner.Attacker) /. total in
  let io =
    float_of_int (count_owned t Owner.Victim + count_owned t Owner.System)
    /. total
  in
  State.make ~ao ~io

let owned_sets t owner =
  let acc = ref [] in
  for set = t.cfg.Config.sets - 1 downto 0 do
    if
      Array.exists
        (fun l -> l.valid && Owner.equal l.owner owner)
        t.lines.(set)
    then acc := set :: !acc
  done;
  !acc

let valid_lines t =
  let n = ref 0 in
  Array.iter (Array.iter (fun l -> if l.valid then incr n)) t.lines;
  !n
