(** One set-associative cache level with LRU replacement, flush support and
    per-owner occupancy accounting. *)

type t

type access_result = {
  hit : bool;
  evicted : (int * Owner.t) option;
    (** line address and owner of the victim line, when a fill evicted one *)
}
(** One lookup's outcome.  Victim selection on a full set follows the
    cache's {!Policy.t}. *)

val create : ?policy:Policy.t -> Config.t -> t
(** [policy] defaults to {!Policy.Lru}. *)

val config : t -> Config.t
val policy : t -> Policy.t

val access : t -> owner:Owner.t -> int -> access_result
(** [access t ~owner addr] looks up the line of [addr]; on a miss the line is
    filled (evicting the LRU way if the set is full) and ownership is
    recorded; on a hit the line is promoted to MRU and ownership is
    {e re-assigned} to [owner] (matching shared-memory attacks where the
    attacker re-loads a victim-fetched line). *)

val probe : t -> int -> bool
(** [probe t addr] reports presence without touching LRU state. *)

val flush : t -> int -> bool
(** [flush t addr] invalidates the line of [addr]; returns whether it was
    present. *)

val fill_all : t -> owner:Owner.t -> unit
(** Fill every line with distinct addresses owned by [owner] (used to start
    CST measurement from [(AO=0, IO=1)]). *)

val reset : t -> unit
(** Invalidate everything. *)

val occupancy : t -> Owner.t -> float
(** Fraction of all lines currently owned by the given owner. *)

val state : t -> State.t
(** The paper's cache state: [AO] = occupancy of [Attacker], [IO] = summed
    occupancy of [Victim] and [System]. *)

val owned_sets : t -> Owner.t -> int list
(** Set indices holding at least one line of the given owner (ascending). *)

val valid_lines : t -> int
(** Number of currently valid lines. *)
