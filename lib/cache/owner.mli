(** Who brought a line into the cache.  The paper's cache state [(AO, IO)]
    partitions occupancy into lines owned by the attack program ([Attacker])
    and everything else. *)

type t =
  | Attacker  (** the program under analysis *)
  | Victim    (** the co-running victim process *)
  | System    (** pre-existing / background data *)

val to_string : t -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
