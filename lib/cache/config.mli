(** Geometry of one cache level. *)

type t = {
  sets : int;       (** number of sets; powers of two index by mask, other
                        counts by modulo *)
  ways : int;       (** associativity *)
  line_bits : int;  (** log2 of the line size in bytes (6 for 64-byte lines) *)
}

val make : sets:int -> ways:int -> ?line_bits:int -> unit -> t
(** Checked constructor; [line_bits] defaults to 6.
    @raise Invalid_argument unless [sets > 0] and [ways > 0]. *)

val lines : t -> int
(** Total line count, [sets * ways]. *)

val line_size : t -> int
(** Line size in bytes. *)

val set_of_addr : t -> int -> int
(** Cache-set index of a byte address. *)

val tag_of_addr : t -> int -> int
(** Tag of a byte address (line address divided by set count). *)

val line_addr : t -> int -> int
(** Address truncated to its line base. *)

val l1d : t
(** Default L1 data cache: 64 sets x 8 ways x 64 B (32 KiB). *)

val l1i : t
(** Default L1 instruction cache: 64 sets x 8 ways x 64 B. *)

val llc : t
(** Default last-level cache: 512 sets x 16 ways x 64 B (512 KiB) — scaled
    down from an i7-6700 LLC so that the small simulated workloads exercise
    measurable occupancy changes. *)

val cst_probe : t
(** Small cache used when measuring cache state transitions of single basic
    blocks (§III-A3): 61 sets (prime, so page- and way-stride access patterns
    do not alias into one set) x 2 ways — a block touching a few dozen lines
    moves the occupancy rates appreciably. *)

val pp : Format.formatter -> t -> unit
