type t = Lru | Fifo | Random of int

let to_string = function
  | Lru -> "LRU"
  | Fifo -> "FIFO"
  | Random seed -> Printf.sprintf "Random(%d)" seed

let all = [ Lru; Fifo; Random 1 ]
