(** A bank of HPC counters, one slot per {!Event.t}. *)

type t

val create : unit -> t
val incr : t -> Event.t -> unit
val add : t -> Event.t -> int -> unit
val get : t -> Event.t -> int
val total : t -> int
(** Sum over all events, including [Timestamp]. *)

val hpc_value : t -> int
(** Sum over the 11 events counted by the paper's per-BB HPC value. *)

val merge_into : dst:t -> t -> unit
(** [merge_into ~dst src] adds [src]'s counts into [dst]. *)

val to_assoc : t -> (Event.t * int) list
(** Non-zero counters only, in Table I order. *)

val to_vector : t -> float array
(** All {!Event.count} counters as a dense feature vector (Table I order) —
    the representation the learning-based baselines train on. *)

val reset : t -> unit
val copy : t -> t
val pp : Format.formatter -> t -> unit
