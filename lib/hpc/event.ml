type t =
  | L1d_load_miss
  | L1d_load_hit
  | L1d_store_hit
  | L1i_load_miss
  | Llc_load_miss
  | Llc_load_hit
  | Llc_store_miss
  | Llc_store_hit
  | Branch_miss
  | Branch_load_miss
  | Cache_miss
  | Timestamp

let all =
  [ L1d_load_miss; L1d_load_hit; L1d_store_hit; L1i_load_miss;
    Llc_load_miss; Llc_load_hit; Llc_store_miss; Llc_store_hit;
    Branch_miss; Branch_load_miss; Cache_miss; Timestamp ]

let count = List.length all

let index = function
  | L1d_load_miss -> 0
  | L1d_load_hit -> 1
  | L1d_store_hit -> 2
  | L1i_load_miss -> 3
  | Llc_load_miss -> 4
  | Llc_load_hit -> 5
  | Llc_store_miss -> 6
  | Llc_store_hit -> 7
  | Branch_miss -> 8
  | Branch_load_miss -> 9
  | Cache_miss -> 10
  | Timestamp -> 11

let of_index i =
  match List.nth_opt all i with
  | Some e -> e
  | None -> invalid_arg "Hpc.Event.of_index"

let counted_in_hpc_value = function Timestamp -> false | _ -> true

let to_string = function
  | L1d_load_miss -> "L1D Load Miss"
  | L1d_load_hit -> "L1D Load Hit"
  | L1d_store_hit -> "L1D Store Hit"
  | L1i_load_miss -> "L1I Load Miss"
  | Llc_load_miss -> "LLC Load Miss"
  | Llc_load_hit -> "LLC Load Hit"
  | Llc_store_miss -> "LLC Store Miss"
  | Llc_store_hit -> "LLC Store Hit"
  | Branch_miss -> "Branch Miss"
  | Branch_load_miss -> "Branch Load Miss"
  | Cache_miss -> "Cache Miss"
  | Timestamp -> "Timestamp"

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal a b = index a = index b
