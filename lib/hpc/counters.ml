type t = int array

let create () = Array.make Event.count 0
let incr t e = t.(Event.index e) <- t.(Event.index e) + 1
let add t e n = t.(Event.index e) <- t.(Event.index e) + n
let get t e = t.(Event.index e)
let total t = Array.fold_left ( + ) 0 t

let hpc_value t =
  let sum = ref 0 in
  List.iter
    (fun e -> if Event.counted_in_hpc_value e then sum := !sum + get t e)
    Event.all;
  !sum

let merge_into ~dst src = Array.iteri (fun i v -> dst.(i) <- dst.(i) + v) src

let to_assoc t =
  List.filter_map
    (fun e -> if get t e > 0 then Some (e, get t e) else None)
    Event.all

let to_vector t = Array.map float_of_int t

let reset t = Array.fill t 0 (Array.length t) 0
let copy t = Array.copy t

let pp fmt t =
  Format.fprintf fmt "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
       (fun f (e, n) -> Format.fprintf f "%s=%d" (Event.to_string e) n))
    (to_assoc t)
