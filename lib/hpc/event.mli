(** The hardware-performance-counter events of Table I.

    Eleven cache/branch events plus the timestamp; the paper's per-BB "HPC
    value" sums the eleven non-timestamp events. *)

type t =
  | L1d_load_miss
  | L1d_load_hit
  | L1d_store_hit
  | L1i_load_miss
  | Llc_load_miss
  | Llc_load_hit
  | Llc_store_miss
  | Llc_store_hit
  | Branch_miss       (** mispredicted branches *)
  | Branch_load_miss  (** branch-target loads missing the LLC *)
  | Cache_miss        (** any last-level miss *)
  | Timestamp         (** rdtsc/rdtscp executed *)

val all : t list
(** Every event, in Table I order. *)

val count : int

val index : t -> int
(** Dense index for counter arrays. *)

val of_index : int -> t
(** @raise Invalid_argument when out of range. *)

val counted_in_hpc_value : t -> bool
(** True for the 11 events summed into a BB's HPC value (all but
    [Timestamp]). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
