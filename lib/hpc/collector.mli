(** Runtime data collection — the stand-in for perf-intel-pt + Intel PT.

    The CPU simulator reports, per executed instruction: HPC events keyed by
    the instruction's address, and every memory access / flush with its target
    address and timestamp.  SCAGuard later maps this data onto basic blocks
    (§III-A1). *)

type access_kind = Load | Store | Flush

type access = {
  pc : int;          (** address of the instruction performing the access *)
  target : int;      (** accessed (or flushed) byte address *)
  kind : access_kind;
  time : int;        (** cycle timestamp *)
}

type t

val create : unit -> t

val record_event : t -> pc:int -> Event.t -> unit
val record_access : t -> pc:int -> target:int -> kind:access_kind -> time:int -> unit

val note_executed : t -> pc:int -> time:int -> unit
(** Record that the instruction at [pc] retired at [time]; keeps the first
    time per pc (the BB-ordering timestamp of §III-A3) and counts
    executions. *)

val exec_count : t -> pc:int -> int
(** How many times the instruction at [pc] retired. *)

val counters_at : t -> pc:int -> Counters.t option
(** Counter bank of one instruction address, if any event fired there. *)

val hpc_value_at : t -> pc:int -> int
(** Summed 11-event HPC value at one address (0 when nothing fired). *)

val total_counters : t -> Counters.t
(** All events summed over the whole run — the whole-process view the
    learning-based baselines sample. *)

val accesses : t -> access list
(** All recorded accesses in chronological order. *)

val accesses_of_pc : t -> pc:int -> access list
(** Accesses performed by one instruction address, chronological. *)

val first_time : t -> pc:int -> int option
(** First retirement time of the instruction at [pc]. *)

val executed_pcs : t -> int list
(** Distinct executed instruction addresses, ascending. *)

val access_count : t -> int
