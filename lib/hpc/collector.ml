type access_kind = Load | Store | Flush

type access = { pc : int; target : int; kind : access_kind; time : int }

type t = {
  per_pc : (int, Counters.t) Hashtbl.t;
  mutable rev_accesses : access list;
  mutable n_accesses : int;
  first_times : (int, int) Hashtbl.t;
  exec_counts : (int, int) Hashtbl.t;
}

let create () =
  {
    per_pc = Hashtbl.create 256;
    rev_accesses = [];
    n_accesses = 0;
    first_times = Hashtbl.create 256;
    exec_counts = Hashtbl.create 256;
  }

let counters_for t pc =
  match Hashtbl.find_opt t.per_pc pc with
  | Some c -> c
  | None ->
    let c = Counters.create () in
    Hashtbl.replace t.per_pc pc c;
    c

let record_event t ~pc event = Counters.incr (counters_for t pc) event

let record_access t ~pc ~target ~kind ~time =
  t.rev_accesses <- { pc; target; kind; time } :: t.rev_accesses;
  t.n_accesses <- t.n_accesses + 1

let note_executed t ~pc ~time =
  if not (Hashtbl.mem t.first_times pc) then Hashtbl.replace t.first_times pc time;
  Hashtbl.replace t.exec_counts pc
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.exec_counts pc))

let exec_count t ~pc =
  Option.value ~default:0 (Hashtbl.find_opt t.exec_counts pc)

let counters_at t ~pc = Hashtbl.find_opt t.per_pc pc

let hpc_value_at t ~pc =
  match counters_at t ~pc with Some c -> Counters.hpc_value c | None -> 0

let total_counters t =
  let acc = Counters.create () in
  Hashtbl.iter (fun _ c -> Counters.merge_into ~dst:acc c) t.per_pc;
  acc

let accesses t = List.rev t.rev_accesses

let accesses_of_pc t ~pc =
  List.filter (fun a -> a.pc = pc) (accesses t)

let first_time t ~pc = Hashtbl.find_opt t.first_times pc

let executed_pcs t =
  Hashtbl.fold (fun pc _ acc -> pc :: acc) t.first_times []
  |> List.sort Int.compare

let access_count t = t.n_accesses
