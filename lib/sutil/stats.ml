let sum xs =
  (* Kahan summation keeps experiment aggregates stable regardless of list
     order. *)
  let total = ref 0.0 and comp = ref 0.0 in
  let add x =
    let y = x -. !comp in
    let t = !total +. y in
    comp := t -. !total -. y;
    total := t
  in
  List.iter add xs;
  !total

let mean = function
  | [] -> 0.0
  | xs -> sum xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let sq = List.map (fun x -> (x -. m) *. (x -. m)) xs in
    sqrt (sum sq /. float_of_int (List.length xs))

let sorted xs = List.sort compare xs

let median = function
  | [] -> 0.0
  | xs ->
    let a = Array.of_list (sorted xs) in
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let percentile p = function
  | [] -> 0.0
  | xs ->
    let a = Array.of_list (sorted xs) in
    let n = Array.length a in
    let rank = int_of_float (ceil (p *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    a.(idx)

let minimum = function [] -> 0.0 | x :: xs -> List.fold_left min x xs
let maximum = function [] -> 0.0 | x :: xs -> List.fold_left max x xs

(* ---- histogram-bucket quantiles ------------------------------------------- *)

let bucket_total counts = Array.fold_left ( + ) 0 counts

let percentile_of_buckets ~bounds ~counts p =
  let nb = Array.length bounds in
  if Array.length counts <> nb + 1 then
    invalid_arg "Stats.percentile_of_buckets: need one count per bound plus overflow";
  let total = bucket_total counts in
  if total = 0 then 0.0
  else begin
    (* Nearest-rank into the cumulative counts, then linear interpolation
       inside the chosen bucket (observations are assumed uniform within a
       bucket, the standard Prometheus histogram_quantile estimate). *)
    let rank = max 1 (int_of_float (ceil (p *. float_of_int total))) in
    let rank = min rank total in
    let rec find b cum =
      if b > nb then nb
      else if cum + counts.(b) >= rank then b
      else find (b + 1) (cum + counts.(b))
    in
    let b = find 0 0 in
    if b >= nb then
      (* overflow bucket: no finite upper edge, report the largest bound *)
      if nb = 0 then 0.0 else bounds.(nb - 1)
    else begin
      let cum_before = ref 0 in
      for i = 0 to b - 1 do
        cum_before := !cum_before + counts.(i)
      done;
      let lo = if b = 0 then 0.0 else bounds.(b - 1) in
      let hi = bounds.(b) in
      let within =
        float_of_int (rank - !cum_before) /. float_of_int counts.(b)
      in
      lo +. (within *. (hi -. lo))
    end
  end

let quantiles_of_buckets ~bounds ~counts ps =
  List.map (percentile_of_buckets ~bounds ~counts) ps
