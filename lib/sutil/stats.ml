let sum xs =
  (* Kahan summation keeps experiment aggregates stable regardless of list
     order. *)
  let total = ref 0.0 and comp = ref 0.0 in
  let add x =
    let y = x -. !comp in
    let t = !total +. y in
    comp := t -. !total -. y;
    total := t
  in
  List.iter add xs;
  !total

let mean = function
  | [] -> 0.0
  | xs -> sum xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let sq = List.map (fun x -> (x -. m) *. (x -. m)) xs in
    sqrt (sum sq /. float_of_int (List.length xs))

let sorted xs = List.sort compare xs

let median = function
  | [] -> 0.0
  | xs ->
    let a = Array.of_list (sorted xs) in
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let percentile p = function
  | [] -> 0.0
  | xs ->
    let a = Array.of_list (sorted xs) in
    let n = Array.length a in
    let rank = int_of_float (ceil (p *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    a.(idx)

let minimum = function [] -> 0.0 | x :: xs -> List.fold_left min x xs
let maximum = function [] -> 0.0 | x :: xs -> List.fold_left max x xs
