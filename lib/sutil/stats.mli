(** Small numeric summaries used by experiment reporting.

    All functions are total: the empty list yields [0.] rather than an
    exception, so table code can fold over possibly-empty measurement sets
    without guards.  {!sum} (and therefore {!mean}) is Kahan-compensated —
    the experiment harness accumulates thousands of small similarity values
    and naive summation visibly drifts in the fourth decimal the tables
    print. *)

val mean : float list -> float
(** Arithmetic mean; [0.] on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; [0.] on lists of length < 2. *)

val median : float list -> float
(** Median (average of middle two for even length); [0.] on []. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], nearest-rank; [0.] on []. *)

val minimum : float list -> float
(** Smallest element; [0.] on []. *)

val maximum : float list -> float
(** Largest element; [0.] on []. *)

val sum : float list -> float
(** Kahan-summed total. *)

(** {1 Histogram-bucket quantiles}

    The observability registry keeps latency distributions as fixed-bucket
    histograms (an array of ascending upper bounds plus one overflow bucket),
    so quantiles can only be estimated from the bucket counts.  These
    helpers implement the standard estimate — nearest-rank into the
    cumulative counts, then linear interpolation inside the chosen bucket —
    the same model as Prometheus' [histogram_quantile]. *)

val bucket_total : int array -> int
(** Total number of observations across all buckets. *)

val percentile_of_buckets :
  bounds:float array -> counts:int array -> float -> float
(** [percentile_of_buckets ~bounds ~counts p] with [p] in [\[0,1\]]:
    [bounds] are the ascending finite upper bucket edges and [counts] the
    per-bucket (non-cumulative) observation counts, with
    [length counts = length bounds + 1] — the extra cell is the overflow
    (+inf) bucket.  The first bucket's lower edge is [0.].  Returns [0.]
    when the histogram is empty; a rank landing in the overflow bucket
    reports the largest finite bound (the estimate cannot exceed the
    instrumented range).
    @raise Invalid_argument on a length mismatch. *)

val quantiles_of_buckets :
  bounds:float array -> counts:int array -> float list -> float list
(** {!percentile_of_buckets} mapped over several ranks (e.g.
    [[0.5; 0.9; 0.99]] for p50/p90/p99). *)
