(** Small numeric summaries used by experiment reporting. *)

val mean : float list -> float
(** Arithmetic mean; [0.] on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; [0.] on lists of length < 2. *)

val median : float list -> float
(** Median (average of middle two for even length); [0.] on []. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], nearest-rank; [0.] on []. *)

val minimum : float list -> float
(** Smallest element; [0.] on []. *)

val maximum : float list -> float
(** Largest element; [0.] on []. *)

val sum : float list -> float
(** Kahan-summed total. *)
