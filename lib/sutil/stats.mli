(** Small numeric summaries used by experiment reporting.

    All functions are total: the empty list yields [0.] rather than an
    exception, so table code can fold over possibly-empty measurement sets
    without guards.  {!sum} (and therefore {!mean}) is Kahan-compensated —
    the experiment harness accumulates thousands of small similarity values
    and naive summation visibly drifts in the fourth decimal the tables
    print. *)

val mean : float list -> float
(** Arithmetic mean; [0.] on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; [0.] on lists of length < 2. *)

val median : float list -> float
(** Median (average of middle two for even length); [0.] on []. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], nearest-rank; [0.] on []. *)

val minimum : float list -> float
(** Smallest element; [0.] on []. *)

val maximum : float list -> float
(** Largest element; [0.] on []. *)

val sum : float list -> float
(** Kahan-summed total. *)
