type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_raw t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 = next_raw

let split t =
  let s = next_raw t in
  { state = s }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits: OCaml's native int is 63-bit, so a 63-bit logical shift
     result could still land negative after Int64.to_int. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_raw t) 2) in
  r mod bound

let in_range t lo hi =
  if lo > hi then invalid_arg "Rng.in_range: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_raw t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_raw t) 1L = 1L

let chance t p = float t 1.0 < p

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let choose_arr t a =
  if Array.length a = 0 then invalid_arg "Rng.choose_arr: empty array";
  a.(int t (Array.length a))

let shuffle_arr t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle t xs =
  let a = Array.of_list xs in
  shuffle_arr t a;
  Array.to_list a

let sample t k xs =
  let a = Array.of_list xs in
  shuffle_arr t a;
  let k = min k (Array.length a) in
  Array.to_list (Array.sub a 0 k)
