type t = int64 option  (* absolute instant in clock ns; None = never *)

let none = None

let after ~now_ns ~budget_ms =
  if budget_ms <= 0 then None
  else
    let budget_ns = Int64.mul (Int64.of_int budget_ms) 1_000_000L in
    (* saturate: a huge budget must mean "far future", not a wrapped past *)
    let t = Int64.add now_ns budget_ns in
    Some (if Int64.compare t now_ns < 0 then Int64.max_int else t)

let is_none t = t = None

let expired ~now_ns = function
  | None -> false
  | Some t -> Int64.compare now_ns t >= 0

let remaining_ns ~now_ns = function
  | None -> None
  | Some t ->
    let r = Int64.sub t now_ns in
    Some (if Int64.compare r 0L < 0 then 0L else r)

let remaining_ms ~now_ns t =
  Option.map (fun ns -> Int64.to_float ns /. 1e6) (remaining_ns ~now_ns t)
