(** A minimal worker pool over OCaml 5 domains.

    Tasks are integer indices drained from a shared atomic counter (a lock-free
    work queue): each worker claims the next unclaimed index until the range is
    exhausted, so uneven task costs balance dynamically.  The calling domain
    acts as worker 0; [domains = 1] degenerates to a plain sequential loop with
    no spawns, which keeps single-core behavior identical to pre-pool code. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val domains_for : ?domains:int -> int -> int
(** [domains_for ?domains tasks] is the worker count {!run} will actually use:
    [domains] (default {!default_domains}) clamped to
    [1 <= d <= max 1 tasks].  Exposed so callers can pre-allocate one
    scratch structure per worker. *)

type probe = {
  task_start : worker:int -> int -> unit;
      (** Called on the worker's own domain immediately before [f ~worker i].
          The gap between a worker's previous [task_stop] and the next
          [task_start] is its queue-wait (claim contention + scheduling). *)
  task_stop : worker:int -> int -> unit;
      (** Called immediately after [f ~worker i] returns (not on raise). *)
}
(** Instrumentation hooks around each task, for observability layers
    ([Scaguard.Obs] builds queue-wait/run spans from these).  Callbacks run
    on the worker's domain and must be domain-safe; they should not raise.
    With no probe the task loop pays one physical-equality test per task and
    nothing else. *)

val run :
  ?domains:int -> ?probe:probe -> tasks:int ->
  (worker:int -> int -> unit) -> int array
(** [run ~tasks f] calls [f ~worker i] exactly once for every
    [i] in [0..tasks-1], distributing indices dynamically over the workers.
    [worker] is in [0..domains_for ?domains tasks - 1] and is stable for the
    duration of the call, so per-worker scratch buffers are safe.  Returns
    how many tasks each worker processed.  The first exception raised by [f]
    is re-raised in the calling domain after all workers have stopped
    (pending tasks are abandoned). *)
