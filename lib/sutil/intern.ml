(* A mutex-protected hashtable plus the reverse id->string array.  All
   operations take the lock: interning is off the scoring hot path (model
   build / persist parse time), and OCaml 5 Hashtbls are not safe under
   concurrent mutation. *)

type pool = {
  table : (string, int) Hashtbl.t;
  mutable names : string array; (* id -> string; grows by doubling *)
  mutable count : int;
  lock : Mutex.t;
}

let create () =
  {
    table = Hashtbl.create 256;
    names = Array.make 64 "";
    count = 0;
    lock = Mutex.create ();
  }

let global = create ()

let locked p f =
  Mutex.lock p.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock p.lock) f

let intern_unlocked p s =
  match Hashtbl.find_opt p.table s with
  | Some id -> id
  | None ->
    let id = p.count in
    if id >= Array.length p.names then begin
      let names = Array.make (2 * Array.length p.names) "" in
      Array.blit p.names 0 names 0 p.count;
      p.names <- names
    end;
    p.names.(id) <- s;
    p.count <- id + 1;
    Hashtbl.add p.table s id;
    id

let intern p s = locked p (fun () -> intern_unlocked p s)

let intern_all p ss = locked p (fun () -> Array.map (intern_unlocked p) ss)

let to_string p id =
  locked p (fun () ->
      if id < 0 || id >= p.count then
        invalid_arg (Printf.sprintf "Intern.to_string: unassigned id %d" id);
      p.names.(id))

let size p = locked p (fun () -> p.count)
