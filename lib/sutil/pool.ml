let default_domains () = max 1 (Domain.recommended_domain_count ())

let domains_for ?domains tasks =
  let d = match domains with Some d -> d | None -> default_domains () in
  max 1 (min d (max 1 tasks))

let run ?domains ~tasks f =
  let d = domains_for ?domains tasks in
  let counts = Array.make d 0 in
  let next = Atomic.make 0 in
  let worker w =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < tasks then begin
        f ~worker:w i;
        counts.(w) <- counts.(w) + 1;
        loop ()
      end
    in
    try loop ()
    with e ->
      (* poison the queue so the other workers stop claiming tasks *)
      Atomic.set next tasks;
      raise e
  in
  if d = 1 then begin
    worker 0;
    counts
  end
  else begin
    let spawned =
      List.init (d - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
    in
    let mine = (try worker 0; None with e -> Some e) in
    let joined =
      List.filter_map
        (fun h -> try Domain.join h; None with e -> Some e)
        spawned
    in
    (match (mine, joined) with
    | Some e, _ | None, e :: _ -> raise e
    | None, [] -> ());
    counts
  end
