let default_domains () = max 1 (Domain.recommended_domain_count ())

let domains_for ?domains tasks =
  let d = match domains with Some d -> d | None -> default_domains () in
  max 1 (min d (max 1 tasks))

type probe = {
  task_start : worker:int -> int -> unit;
  task_stop : worker:int -> int -> unit;
}

let run ?domains ?probe ~tasks f =
  let d = domains_for ?domains tasks in
  let counts = Array.make d 0 in
  let next = Atomic.make 0 in
  (* Resolve the probe to one closure per event outside the claim loop, so
     the probe-less hot path pays a single physical-equality test per task
     and no per-task allocation. *)
  let on_start, on_stop =
    match probe with
    | None -> ((fun ~worker:_ _ -> ()), fun ~worker:_ _ -> ())
    | Some p -> (p.task_start, p.task_stop)
  in
  let worker w =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < tasks then begin
        on_start ~worker:w i;
        f ~worker:w i;
        on_stop ~worker:w i;
        counts.(w) <- counts.(w) + 1;
        loop ()
      end
    in
    try loop ()
    with e ->
      (* poison the queue so the other workers stop claiming tasks *)
      Atomic.set next tasks;
      raise e
  in
  if d = 1 then begin
    worker 0;
    counts
  end
  else begin
    let spawned =
      List.init (d - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
    in
    let mine = (try worker 0; None with e -> Some e) in
    let joined =
      List.filter_map
        (fun h -> try Domain.join h; None with e -> Some e)
        spawned
    in
    (match (mine, joined) with
    | Some e, _ | None, e :: _ -> raise e
    | None, [] -> ());
    counts
  end
