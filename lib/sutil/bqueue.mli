(** A bounded FIFO queue with explicit rejection.

    The request queue of a long-running server: a fixed-capacity ring buffer
    whose {!push} {e refuses} instead of growing, so the caller must decide
    what to do with the overflow (reply "busy", drop, retry) — backpressure
    is an explicit code path, never an unbounded heap.  Single-threaded: the
    serve loop that owns the queue is the only mutator, so there is no
    locking and no atomic traffic. *)

type 'a t

val create : capacity:int -> 'a t
(** A fresh empty queue holding at most [capacity] elements.
    @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Elements currently queued, in [0..capacity]. *)

val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** Append at the tail; [false] (and no change) when the queue is full. *)

val pop : 'a t -> 'a option
(** Remove and return the head; [None] when empty.  The slot is cleared so
    the queue never retains a popped element against the GC. *)

val peek : 'a t -> 'a option
(** The head without removing it. *)

val drain : 'a t -> ('a -> unit) -> unit
(** Pop-and-apply until empty, in FIFO order. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** The queued elements head-first, without consuming them. *)
