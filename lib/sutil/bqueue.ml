type 'a t = {
  slots : 'a option array;
  cap : int;
  mutable head : int;  (* index of the next element to pop *)
  mutable len : int;
}

let create ~capacity =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Bqueue.create: capacity %d < 1" capacity);
  { slots = Array.make capacity None; cap = capacity; head = 0; len = 0 }

let capacity q = q.cap
let length q = q.len
let is_empty q = q.len = 0
let is_full q = q.len = q.cap

let push q v =
  if q.len = q.cap then false
  else begin
    q.slots.((q.head + q.len) mod q.cap) <- Some v;
    q.len <- q.len + 1;
    true
  end

let pop q =
  if q.len = 0 then None
  else begin
    let v = q.slots.(q.head) in
    q.slots.(q.head) <- None;
    q.head <- (q.head + 1) mod q.cap;
    q.len <- q.len - 1;
    v
  end

let peek q = if q.len = 0 then None else q.slots.(q.head)

let rec drain q f = match pop q with None -> () | Some v -> f v; drain q f

let clear q =
  Array.fill q.slots 0 q.cap None;
  q.head <- 0;
  q.len <- 0

let to_list q =
  List.init q.len (fun i -> Option.get q.slots.((q.head + i) mod q.cap))
