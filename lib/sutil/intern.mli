(** String interning: a pool mapping strings to dense integer ids.

    Equal strings intern to equal ids and distinct strings to distinct ids,
    so comparing two interned tokens is one integer compare — the inner loop
    of the Levenshtein DP over normalized instruction sequences compares
    ints instead of hashing strings ({!Levenshtein.distance_ints}).

    A pool is safe to share across domains: {!intern} and {!to_string} are
    serialized by an internal mutex.  Interning happens at model build /
    parse time, never on the scoring hot path, so the lock is uncontended
    where it matters.  Ids are assigned in first-come order and are
    therefore {e not} stable across processes or interleavings — only
    id equality is meaningful, which is all the distance code consumes. *)

type pool

val create : unit -> pool

val global : pool
(** The process-wide pool used by {!Model.make_entry} and the [Persist]
    parser, so every model in the process shares one id space. *)

val intern : pool -> string -> int
(** The id of a string, assigning the next free id on first sight. *)

val intern_all : pool -> string array -> int array
(** Intern a whole token sequence under a single lock acquisition. *)

val to_string : pool -> int -> string
(** The string behind an id.  @raise Invalid_argument for unassigned ids. *)

val size : pool -> int
(** Number of distinct strings interned so far. *)
