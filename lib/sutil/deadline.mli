(** Per-request deadlines over a caller-supplied monotonic clock.

    A deadline is an absolute instant on whatever monotonic nanosecond clock
    the caller reads ([Scaguard.Obs.Clock] in the server); keeping the clock
    out of this module keeps [sutil] dependency-free and the tests able to
    drive time by hand.  All arithmetic saturates rather than wrapping, so a
    caller passing [max_int] budgets cannot manufacture a deadline in the
    past. *)

type t
(** An absolute deadline instant, or "none" (never expires). *)

val none : t
(** The deadline that never expires. *)

val after : now_ns:int64 -> budget_ms:int -> t
(** The instant [budget_ms] milliseconds after [now_ns].  A zero or negative
    budget yields {!none} — "no deadline", matching the wire protocol where
    an absent or zero [deadline_ms] means the request never expires. *)

val is_none : t -> bool

val expired : now_ns:int64 -> t -> bool
(** Has the instant passed?  Always [false] for {!none}. *)

val remaining_ns : now_ns:int64 -> t -> int64 option
(** Nanoseconds left ([None] for {!none}); never negative — an expired
    deadline reports [Some 0L]. *)

val remaining_ms : now_ns:int64 -> t -> float option
(** {!remaining_ns} in milliseconds. *)
