(* Two-row dynamic programming; O(|a|*|b|) time, O(min) space after the
   orientation swap.  A workspace lets hot callers (batch DTW scoring) reuse
   the two rows instead of allocating per call.

   [limit] bounds the work: the result is capped at [limit], and the DP stops
   as soon as every cell of the current row reaches it (cells in later rows
   never fall below the minimum of the current row, so the true distance is
   already known to be >= limit).  The free length bound |n - m| <= distance
   short-circuits the DP entirely when the lengths alone prove the cap. *)

type workspace = { mutable prev : int array; mutable cur : int array }

let workspace () = { prev = [||]; cur = [||] }

let ensure ws len =
  if Array.length ws.prev < len then begin
    let cap = max len (2 * Array.length ws.prev) in
    ws.prev <- Array.make cap 0;
    ws.cur <- Array.make cap 0
  end

let lower_bound a b = abs (Array.length a - Array.length b)

exception Limit_reached

let distance ?ws ?limit ~equal a b =
  let a, b = if Array.length a < Array.length b then (b, a) else (a, b) in
  let n = Array.length a and m = Array.length b in
  let cap d = match limit with Some l -> min d l | None -> d in
  match limit with
  | Some l when n - m >= l -> l (* distance >= |n - m| >= limit *)
  | _ ->
    if m = 0 then cap n
    else begin
      let prev, cur =
        match ws with
        | Some ws ->
          ensure ws (m + 1);
          (ws.prev, ws.cur)
        | None -> (Array.make (m + 1) 0, Array.make (m + 1) 0)
      in
      for j = 0 to m do
        prev.(j) <- j
      done;
      try
        for i = 1 to n do
          cur.(0) <- i;
          let row_min = ref i in
          for j = 1 to m do
            let cost = if equal a.(i - 1) b.(j - 1) then 0 else 1 in
            let v =
              min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
            in
            cur.(j) <- v;
            if v < !row_min then row_min := v
          done;
          Array.blit cur 0 prev 0 (m + 1);
          (* every cell of a later row is >= the minimum of this row *)
          match limit with
          | Some l when !row_min >= l -> raise_notrace Limit_reached
          | _ -> ()
        done;
        cap prev.(m)
      with Limit_reached -> Option.get limit
    end

let distance_strings ?ws ?limit a b = distance ?ws ?limit ~equal:String.equal a b

(* The annotation monomorphizes the compare to a direct int test — this is
   the inner loop of every DTW entry cost once tokens are interned. *)
let int_equal (a : int) b = a = b
let distance_ints ?ws ?limit a b = distance ?ws ?limit ~equal:int_equal a b

let normalized ?ws ~equal a b =
  let n = max (Array.length a) (Array.length b) in
  if n = 0 then 0.0
  else float_of_int (distance ?ws ~equal a b) /. float_of_int n

let normalized_ints ?ws a b = normalized ?ws ~equal:int_equal a b

let normalized_lower_bound a b =
  let n = max (Array.length a) (Array.length b) in
  if n = 0 then 0.0 else float_of_int (lower_bound a b) /. float_of_int n
