(* Two-row dynamic programming; O(|a|*|b|) time, O(min) space after the
   orientation swap. *)

let distance ~equal a b =
  let a, b = if Array.length a < Array.length b then (b, a) else (a, b) in
  let n = Array.length a and m = Array.length b in
  if m = 0 then n
  else begin
    let prev = Array.init (m + 1) (fun j -> j) in
    let cur = Array.make (m + 1) 0 in
    for i = 1 to n do
      cur.(0) <- i;
      for j = 1 to m do
        let cost = if equal a.(i - 1) b.(j - 1) then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (m + 1)
    done;
    prev.(m)
  end

let distance_strings a b = distance ~equal:String.equal a b

let normalized ~equal a b =
  let n = max (Array.length a) (Array.length b) in
  if n = 0 then 0.0
  else float_of_int (distance ~equal a b) /. float_of_int n
