(* Two-row dynamic programming; O(|a|*|b|) time, O(min) space after the
   orientation swap.  A workspace lets hot callers (batch DTW scoring) reuse
   the two rows instead of allocating per call. *)

type workspace = { mutable prev : int array; mutable cur : int array }

let workspace () = { prev = [||]; cur = [||] }

let ensure ws len =
  if Array.length ws.prev < len then begin
    let cap = max len (2 * Array.length ws.prev) in
    ws.prev <- Array.make cap 0;
    ws.cur <- Array.make cap 0
  end

let distance ?ws ~equal a b =
  let a, b = if Array.length a < Array.length b then (b, a) else (a, b) in
  let n = Array.length a and m = Array.length b in
  if m = 0 then n
  else begin
    let prev, cur =
      match ws with
      | Some ws ->
        ensure ws (m + 1);
        (ws.prev, ws.cur)
      | None -> (Array.make (m + 1) 0, Array.make (m + 1) 0)
    in
    for j = 0 to m do
      prev.(j) <- j
    done;
    for i = 1 to n do
      cur.(0) <- i;
      for j = 1 to m do
        let cost = if equal a.(i - 1) b.(j - 1) then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (m + 1)
    done;
    prev.(m)
  end

let distance_strings ?ws a b = distance ?ws ~equal:String.equal a b

let normalized ?ws ~equal a b =
  let n = max (Array.length a) (Array.length b) in
  if n = 0 then 0.0
  else float_of_int (distance ?ws ~equal a b) /. float_of_int n
