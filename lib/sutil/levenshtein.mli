(** Edit distance between sequences, used by the CST distance (§III-B1 of the
    paper) on normalized instruction sequences. *)

type workspace
(** Reusable DP row buffers.  A workspace is owned by one caller at a time
    (one per pool worker); it grows monotonically and never shrinks. *)

val workspace : unit -> workspace

val distance : ?ws:workspace -> equal:('a -> 'a -> bool) -> 'a array -> 'a array -> int
(** [distance ~equal a b] is the Levenshtein (insert/delete/substitute, all
    cost 1) distance between [a] and [b].  [ws] reuses row buffers across
    calls; results are identical with or without it. *)

val distance_strings : ?ws:workspace -> string array -> string array -> int
(** Specialization to string tokens with structural equality. *)

val normalized : ?ws:workspace -> equal:('a -> 'a -> bool) -> 'a array -> 'a array -> float
(** [normalized ~equal a b] is
    [distance a b / max (length a) (length b)], following the paper's
    D_IS definition; [0.] when both are empty. *)
