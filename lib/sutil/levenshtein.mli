(** Edit distance between sequences, used by the CST distance (§III-B1 of the
    paper) on normalized instruction sequences. *)

val distance : equal:('a -> 'a -> bool) -> 'a array -> 'a array -> int
(** [distance ~equal a b] is the Levenshtein (insert/delete/substitute, all
    cost 1) distance between [a] and [b]. *)

val distance_strings : string array -> string array -> int
(** Specialization to string tokens with structural equality. *)

val normalized : equal:('a -> 'a -> bool) -> 'a array -> 'a array -> float
(** [normalized ~equal a b] is
    [distance a b / max (length a) (length b)], following the paper's
    D_IS definition; [0.] when both are empty. *)
