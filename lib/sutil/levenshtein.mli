(** Edit distance between sequences, used by the CST distance (§III-B1 of the
    paper) on normalized instruction sequences.

    Besides the exact distance, this module exposes the two ingredients the
    detection engine's pruning cascade needs: a free {!lower_bound} (the
    length gap — no edit script can be shorter than the number of
    insertions it must at least perform) and a bounded-cost mode
    ([?limit]) that stops the DP as soon as the result is provably capped. *)

type workspace
(** Reusable DP row buffers.  A workspace is owned by one caller at a time
    (one per pool worker); it grows monotonically and never shrinks. *)

val workspace : unit -> workspace

val distance :
  ?ws:workspace -> ?limit:int -> equal:('a -> 'a -> bool) ->
  'a array -> 'a array -> int
(** [distance ~equal a b] is the Levenshtein (insert/delete/substitute, all
    cost 1) distance between [a] and [b].  [ws] reuses row buffers across
    calls; results are identical with or without it.

    [limit] bounds the work: the result is
    [min (distance a b) limit], and the DP abandons early — without
    visiting the remaining rows — once every cell of the current row
    reaches [limit] (later rows can only grow the row minimum, so the true
    distance is already known to be [>= limit]).  A capped result is still
    a valid {e lower bound} on the true distance, which is what the DTW
    pruning cascade consumes. *)

val distance_strings : ?ws:workspace -> ?limit:int -> string array -> string array -> int
(** Specialization to string tokens with structural equality. *)

val distance_ints : ?ws:workspace -> ?limit:int -> int array -> int array -> int
(** Specialization to interned tokens ({!Intern}): the inner-loop compare is
    one integer test.  When the int sequences were interned from string
    sequences out of the same pool, the result equals {!distance_strings} on
    the originals bit for bit — interning is a bijection, so equality (the
    only thing the DP consults) is preserved. *)

val normalized : ?ws:workspace -> equal:('a -> 'a -> bool) -> 'a array -> 'a array -> float
(** [normalized ~equal a b] is
    [distance a b / max (length a) (length b)], following the paper's
    D_IS definition; [0.] when both are empty. *)

val normalized_ints : ?ws:workspace -> int array -> int array -> float
(** {!normalized} over interned tokens; equals {!normalized} with
    [String.equal] on the pre-interning sequences bit for bit. *)

val lower_bound : 'a array -> 'a array -> int
(** [lower_bound a b = abs (length a - length b)]: an O(1) lower bound on
    {!distance} — every edit script must bridge the length gap with
    insertions or deletions. *)

val normalized_lower_bound : 'a array -> 'a array -> float
(** {!lower_bound} divided by [max (length a) (length b)]: an O(1) lower
    bound on {!normalized} ([0.] when both are empty).  This is the
    syntactic half of [Distance.entry_lower_bound]. *)
