type row = Cells of string list | Separator

type t = {
  title : string;
  headers : string list;
  mutable rows : row list; (* reversed *)
}

let create ~title headers = { title; headers; rows = [] }

let arity t = List.length t.headers

let add_row t cells =
  let n = arity t in
  let len = List.length cells in
  let cells =
    if len = n then cells
    else if len < n then cells @ List.init (n - len) (fun _ -> "")
    else List.filteri (fun i _ -> i < n) cells
  in
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let widths t =
  let n = arity t in
  let w = Array.make n 0 in
  let feed cells = List.iteri (fun i c -> w.(i) <- max w.(i) (String.length c)) cells in
  feed t.headers;
  List.iter (function Cells c -> feed c | Separator -> ()) t.rows;
  w

let render t =
  let w = widths t in
  let buf = Buffer.create 1024 in
  let hline ch =
    Buffer.add_char buf '+';
    Array.iter
      (fun wi ->
        Buffer.add_string buf (String.make (wi + 2) ch);
        Buffer.add_char buf '+')
      w;
    Buffer.add_char buf '\n'
  in
  let row cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf c;
        Buffer.add_string buf (String.make (w.(i) - String.length c) ' ');
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  if t.title <> "" then begin
    Buffer.add_string buf t.title;
    Buffer.add_char buf '\n'
  end;
  hline '-';
  row t.headers;
  hline '=';
  List.iter
    (function Cells c -> row c | Separator -> hline '-')
    (List.rev t.rows);
  hline '-';
  Buffer.contents buf

let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv t =
  let buf = Buffer.create 512 in
  let row cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  row t.headers;
  List.iter (function Cells c -> row c | Separator -> ()) (List.rev t.rows);
  Buffer.contents buf

let print t = print_string (render t); print_newline ()

let fpct v = Printf.sprintf "%.2f%%" v
let pct v = fpct (100.0 *. v)
