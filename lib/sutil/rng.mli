(** Deterministic pseudo-random number generation.

    Every source of randomness in the project flows through this module so
    that datasets, mutations and experiments are exactly reproducible from a
    seed.  The generator is SplitMix64, which has a tiny state, passes BigCrush
    and — unlike [Stdlib.Random] — is guaranteed stable across OCaml
    releases. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from [seed]. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Use it to give each sample of a dataset its own stream so that adding
    samples does not perturb earlier ones. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [\[lo, hi\]]. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list.  @raise Invalid_argument on []. *)

val choose_arr : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform permutation (Fisher–Yates). *)

val shuffle_arr : t -> 'a array -> unit
(** In-place uniform permutation. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [min k (length xs)] distinct elements, preserving no
    particular order. *)
