(** ASCII table rendering for experiment output (the bench harness prints the
    paper's tables with this).

    A table is built imperatively — {!create} with headers, {!add_row} per
    data point, {!add_separator} between row groups — and rendered either as
    a box-drawing string ({!render}, {!print}) or as CSV ({!to_csv}) for the
    artifact files the bench emits next to each printed table.  {!pct} and
    {!fpct} are the two percentage formats used throughout the paper's
    tables. *)

type t
(** A table under construction. *)

val create : title:string -> string list -> t
(** [create ~title headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row.  Rows shorter than the header are padded with empty cells;
    longer rows are truncated. *)

val add_separator : t -> unit
(** Append a horizontal rule between row groups. *)

val render : t -> string
(** Render with box-drawing, columns sized to content. *)

val to_csv : t -> string
(** Comma-separated rendering (headers first, separators dropped); cells
    containing commas or quotes are quoted. *)

val print : t -> unit
(** [print t] writes [render t] to stdout followed by a newline. *)

val pct : float -> string
(** Format a ratio in [\[0,1\]] as a percentage with two decimals, e.g.
    [pct 0.9664 = "96.64%"]. *)

val fpct : float -> string
(** Format an already-scaled percentage value, e.g. [fpct 96.64 = "96.64%"]. *)
