(** Multi-class classification metrics, reported the way Table VI does:
    macro-averaged Precision / Recall / F1 over the classes present in the
    ground truth, plus the per-class breakdown and a JSON export the
    detector-showdown table is built from. *)

type class_scores = {
  cls : int;  (** the class this row scores *)
  support : int;  (** ground-truth samples of the class ([tp + fn]) *)
  tp : int;
  fp : int;
  fn : int;
  c_precision : float;
  c_recall : float;
  c_f1 : float;
}

type scores = {
  precision : float;
  recall : float;
  f1 : float;
  accuracy : float;
}

val per_class : classes:int list -> (int * int) list -> class_scores list
(** One {!class_scores} per class, in [classes] order, from [(predicted,
    actual)] pairs.  Absent denominators score 0 (same convention as
    {!evaluate}).  @raise Invalid_argument on []. *)

val evaluate : classes:int list -> (int * int) list -> scores
(** [evaluate ~classes pairs] where each pair is [(predicted, actual)]:
    the macro average of {!per_class} (bit-identical to averaging the
    breakdown by hand) plus overall accuracy.
    @raise Invalid_argument on []. *)

val confusion : classes:int list -> (int * int) list -> int array array
(** [confusion.(i).(j)] counts samples of actual class [classes[i]] predicted
    as [classes[j]]; predictions outside [classes] are dropped. *)

val to_json : scores -> string
(** One JSON object, floats in [%.17g] (read back exactly). *)

val class_scores_to_json : ?name:(int -> string) -> class_scores list -> string
(** JSON array of per-class objects; [name] renders the class int (default
    [string_of_int]) into the ["class"] field. *)

val pp : Format.formatter -> scores -> unit
