(** Multi-class classification metrics, reported the way Table VI does:
    macro-averaged Precision / Recall / F1 over the classes present in the
    ground truth. *)

type scores = {
  precision : float;
  recall : float;
  f1 : float;
  accuracy : float;
}

val evaluate : classes:int list -> (int * int) list -> scores
(** [evaluate ~classes pairs] where each pair is [(predicted, actual)].
    Per-class precision/recall treat absent denominators as 0; macro
    averages run over [classes].  @raise Invalid_argument on []. *)

val confusion : classes:int list -> (int * int) list -> int array array
(** [confusion.(i).(j)] counts samples of actual class [classes[i]] predicted
    as [classes[j]]; predictions outside [classes] are dropped. *)

val pp : Format.formatter -> scores -> unit
