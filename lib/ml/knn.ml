type t = { k : int; train : (Vector.t * int) array }

let fit ~k samples =
  if k <= 0 then invalid_arg "Ml.Knn.fit: k must be positive";
  if samples = [] then invalid_arg "Ml.Knn.fit: no samples";
  { k; train = Array.of_list samples }

let neighbours t x =
  let scored =
    Array.map (fun (v, l) -> (Vector.euclidean_distance x v, l)) t.train
  in
  Array.sort (fun (a, _) (b, _) -> Float.compare a b) scored;
  Array.to_list (Array.sub scored 0 (min t.k (Array.length scored)))

let predict_with_votes t x =
  let ns = neighbours t x in
  let votes = Hashtbl.create 8 in
  List.iter
    (fun (_, l) ->
      Hashtbl.replace votes l
        (1 + Option.value ~default:0 (Hashtbl.find_opt votes l)))
    ns;
  let vote_list = Hashtbl.fold (fun l n acc -> (l, n) :: acc) votes [] in
  (* Majority vote; ties break toward the nearest neighbour's label. *)
  let nearest_label = snd (List.hd ns) in
  let best =
    List.fold_left
      (fun (bl, bn) (l, n) ->
        if n > bn || (n = bn && l = nearest_label) then (l, n) else (bl, bn))
      (nearest_label, 0) vote_list
  in
  (fst best, List.sort compare vote_list)

let predict t x = fst (predict_with_votes t x)
