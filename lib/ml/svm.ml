module Rng = Sutil.Rng

(* Pegasos with the bias folded in as an augmented constant feature (the
   huge early learning rates 1/(lambda*t) make an unregularized bias swing
   wildly; augmentation keeps it shrunk like every other weight). *)
type t = { w : float array (* length d+1; last slot is the bias *) }

let augment x =
  let d = Array.length x in
  Array.init (d + 1) (fun i -> if i < d then x.(i) else 1.0)

let train ?(lambda = 1e-3) ?(epochs = 40) ~rng samples =
  (match samples with [] -> invalid_arg "Ml.Svm.train: no samples" | _ -> ());
  let arr =
    Array.of_list (List.map (fun (x, y) -> (augment x, y)) samples)
  in
  let d = Array.length (fst arr.(0)) in
  let w = Vector.zeros d in
  let t = ref 0 in
  for _epoch = 1 to epochs do
    Rng.shuffle_arr rng arr;
    Array.iter
      (fun (x, positive) ->
        incr t;
        let y = if positive then 1.0 else -1.0 in
        let eta = 1.0 /. (lambda *. float_of_int !t) in
        let margin = y *. Vector.dot w x in
        (* w <- (1 - eta*lambda) w  [+ eta*y*x on margin violation] *)
        Vector.scale_inplace w (1.0 -. (eta *. lambda));
        if margin < 1.0 then Vector.add_scaled w (eta *. y) x)
      arr
  done;
  { w }

let decision t x = Vector.dot t.w (augment x)
let predict t x = decision t x >= 0.0

type multi = (int * t) list

let train_multi ?lambda ?epochs ~rng samples =
  let labels = List.sort_uniq Int.compare (List.map snd samples) in
  List.map
    (fun c ->
      let binary = List.map (fun (x, l) -> (x, l = c)) samples in
      (c, train ?lambda ?epochs ~rng binary))
    labels

let predict_multi multi x =
  match multi with
  | [] -> invalid_arg "Ml.Svm.predict_multi: empty model"
  | (c0, m0) :: rest ->
    let best = ref (c0, decision m0 x) in
    List.iter
      (fun (c, m) ->
        let s = decision m x in
        if s > snd !best then best := (c, s))
      rest;
    fst !best
