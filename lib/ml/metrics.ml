type class_scores = {
  cls : int;
  support : int;
  tp : int;
  fp : int;
  fn : int;
  c_precision : float;
  c_recall : float;
  c_f1 : float;
}

type scores = {
  precision : float;
  recall : float;
  f1 : float;
  accuracy : float;
}

let per_class ~classes pairs =
  if pairs = [] then invalid_arg "Ml.Metrics.per_class: no samples";
  let count pred actual =
    List.length (List.filter (fun (p, a) -> pred p && actual a) pairs)
  in
  List.map
    (fun c ->
      let tp = count (( = ) c) (( = ) c) in
      let fp = count (( = ) c) (( <> ) c) in
      let fn = count (( <> ) c) (( = ) c) in
      let p =
        if tp + fp = 0 then 0.0 else float_of_int tp /. float_of_int (tp + fp)
      in
      let r =
        if tp + fn = 0 then 0.0 else float_of_int tp /. float_of_int (tp + fn)
      in
      let f = if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r) in
      {
        cls = c;
        support = tp + fn;
        tp;
        fp;
        fn;
        c_precision = p;
        c_recall = r;
        c_f1 = f;
      })
    classes

(* Macro averages fold over [per_class] in class order — the same additions
   in the same order as summing the per-class tuples directly, so scores
   are bit-identical to the pre-breakdown implementation. *)
let evaluate ~classes pairs =
  if pairs = [] then invalid_arg "Ml.Metrics.evaluate: no samples";
  let n = float_of_int (List.length classes) in
  let p, r, f =
    List.fold_left
      (fun (p, r, f) c -> (p +. c.c_precision, r +. c.c_recall, f +. c.c_f1))
      (0.0, 0.0, 0.0) (per_class ~classes pairs)
  in
  let correct = List.length (List.filter (fun (p', a) -> p' = a) pairs) in
  {
    precision = p /. n;
    recall = r /. n;
    f1 = f /. n;
    accuracy = float_of_int correct /. float_of_int (List.length pairs);
  }

let confusion ~classes pairs =
  let idx c =
    let rec go i = function
      | [] -> None
      | x :: rest -> if x = c then Some i else go (i + 1) rest
    in
    go 0 classes
  in
  let n = List.length classes in
  let m = Array.make_matrix n n 0 in
  List.iter
    (fun (p, a) ->
      match (idx a, idx p) with
      | Some i, Some j -> m.(i).(j) <- m.(i).(j) + 1
      | _, _ -> ())
    pairs;
  m

(* %.17g round-trips every float exactly (the config files use the same
   format). *)
let to_json s =
  Printf.sprintf
    {|{"precision":%.17g,"recall":%.17g,"f1":%.17g,"accuracy":%.17g}|}
    s.precision s.recall s.f1 s.accuracy

let default_class_name = string_of_int

let class_scores_to_json ?(name = default_class_name) per_class =
  let one c =
    Printf.sprintf
      {|{"class":%s,"support":%d,"tp":%d,"fp":%d,"fn":%d,"precision":%.17g,"recall":%.17g,"f1":%.17g}|}
      (Printf.sprintf "%S" (name c.cls))
      c.support c.tp c.fp c.fn c.c_precision c.c_recall c.c_f1
  in
  "[" ^ String.concat "," (List.map one per_class) ^ "]"

let pp fmt s =
  Format.fprintf fmt "P=%.2f%% R=%.2f%% F1=%.2f%% acc=%.2f%%"
    (100.0 *. s.precision) (100.0 *. s.recall) (100.0 *. s.f1)
    (100.0 *. s.accuracy)
