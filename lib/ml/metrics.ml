type scores = {
  precision : float;
  recall : float;
  f1 : float;
  accuracy : float;
}

let evaluate ~classes pairs =
  if pairs = [] then invalid_arg "Ml.Metrics.evaluate: no samples";
  let count pred actual =
    List.length
      (List.filter (fun (p, a) -> pred p && actual a) pairs)
  in
  let per_class c =
    let tp = count (( = ) c) (( = ) c) in
    let fp = count (( = ) c) (( <> ) c) in
    let fn = count (( <> ) c) (( = ) c) in
    let p = if tp + fp = 0 then 0.0 else float_of_int tp /. float_of_int (tp + fp) in
    let r = if tp + fn = 0 then 0.0 else float_of_int tp /. float_of_int (tp + fn) in
    let f = if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r) in
    (p, r, f)
  in
  let n = float_of_int (List.length classes) in
  let sum3 (a, b, c) (a', b', c') = (a +. a', b +. b', c +. c') in
  let p, r, f =
    List.fold_left (fun acc c -> sum3 acc (per_class c)) (0.0, 0.0, 0.0) classes
  in
  let correct = List.length (List.filter (fun (p', a) -> p' = a) pairs) in
  {
    precision = p /. n;
    recall = r /. n;
    f1 = f /. n;
    accuracy = float_of_int correct /. float_of_int (List.length pairs);
  }

let confusion ~classes pairs =
  let idx c =
    let rec go i = function
      | [] -> None
      | x :: rest -> if x = c then Some i else go (i + 1) rest
    in
    go 0 classes
  in
  let n = List.length classes in
  let m = Array.make_matrix n n 0 in
  List.iter
    (fun (p, a) ->
      match (idx a, idx p) with
      | Some i, Some j -> m.(i).(j) <- m.(i).(j) + 1
      | _, _ -> ())
    pairs;
  m

let pp fmt s =
  Format.fprintf fmt "P=%.2f%% R=%.2f%% F1=%.2f%% acc=%.2f%%"
    (100.0 *. s.precision) (100.0 *. s.recall) (100.0 *. s.f1)
    (100.0 *. s.accuracy)
