(** Dense float vectors for the learning-based baselines. *)

type t = float array

val dot : t -> t -> float
(** @raise Invalid_argument on length mismatch. *)

val add_scaled : t -> float -> t -> unit
(** [add_scaled acc c v] does [acc <- acc + c*v] in place. *)

val scale_inplace : t -> float -> unit
val norm : t -> float
val euclidean_distance : t -> t -> float
val zeros : int -> t
val copy : t -> t
