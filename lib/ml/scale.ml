type t = { mean : float array; std : float array }

let fit = function
  | [] -> invalid_arg "Ml.Scale.fit: empty training set"
  | (x0 :: _ : Vector.t list) as xs ->
    let d = Array.length x0 in
    let n = float_of_int (List.length xs) in
    let mean = Array.make d 0.0 in
    List.iter (fun x -> Array.iteri (fun i v -> mean.(i) <- mean.(i) +. v) x) xs;
    Array.iteri (fun i v -> mean.(i) <- v /. n) mean;
    let var = Array.make d 0.0 in
    List.iter
      (fun x ->
        Array.iteri
          (fun i v ->
            let dl = v -. mean.(i) in
            var.(i) <- var.(i) +. (dl *. dl))
          x)
      xs;
    let std = Array.map (fun v -> sqrt (v /. n)) var in
    { mean; std }

let transform t x =
  Array.mapi
    (fun i v -> if t.std.(i) > 1e-12 then (v -. t.mean.(i)) /. t.std.(i) else v)
    x

let transform_all t = List.map (transform t)
