type t = { w : float array; b : float }

let sigmoid z =
  if z >= 0.0 then 1.0 /. (1.0 +. exp (-.z))
  else
    let e = exp z in
    e /. (1.0 +. e)

let train ?(learning_rate = 0.1) ?(epochs = 200) ?(l2 = 1e-4) samples =
  (match samples with [] -> invalid_arg "Ml.Logreg.train: no samples" | _ -> ());
  let d = Array.length (fst (List.hd samples)) in
  let n = float_of_int (List.length samples) in
  let w = Vector.zeros d in
  let b = ref 0.0 in
  for _epoch = 1 to epochs do
    let gw = Vector.zeros d in
    let gb = ref 0.0 in
    List.iter
      (fun (x, positive) ->
        let y = if positive then 1.0 else 0.0 in
        let err = sigmoid (Vector.dot w x +. !b) -. y in
        Vector.add_scaled gw err x;
        gb := !gb +. err)
      samples;
    Vector.add_scaled gw (l2 *. n) w;
    Vector.add_scaled w (-.learning_rate /. n) gw;
    b := !b -. (learning_rate /. n *. !gb)
  done;
  { w; b = !b }

let probability t x = sigmoid (Vector.dot t.w x +. t.b)
let predict t x = probability t x >= 0.5

type multi = (int * t) list

let train_multi ?learning_rate ?epochs ?l2 samples =
  let labels = List.sort_uniq Int.compare (List.map snd samples) in
  List.map
    (fun c ->
      let binary = List.map (fun (x, l) -> (x, l = c)) samples in
      (c, train ?learning_rate ?epochs ?l2 binary))
    labels

let predict_multi multi x =
  match multi with
  | [] -> invalid_arg "Ml.Logreg.predict_multi: empty model"
  | (c0, m0) :: rest ->
    let best = ref (c0, probability m0 x) in
    List.iter
      (fun (c, m) ->
        let p = probability m x in
        if p > snd !best then best := (c, p))
      rest;
    fst !best
