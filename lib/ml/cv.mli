(** k-fold cross-validation splits (the paper's baselines use 10-fold CV to
    pick their best configuration). *)

val folds : rng:Sutil.Rng.t -> k:int -> 'a list -> ('a list * 'a list) list
(** [folds ~rng ~k xs] shuffles [xs] and returns [k] (train, test) pairs
    whose test parts partition the data.  @raise Invalid_argument when
    [k <= 1] or [k > length xs]. *)

val cross_validate :
  rng:Sutil.Rng.t -> k:int ->
  train:('a list -> 'm) -> test:('m -> 'a -> bool) ->
  'a list -> float
(** Mean accuracy of [test] over the [k] held-out folds. *)
