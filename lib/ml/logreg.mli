(** Logistic / linear-regression classifier (full-batch gradient descent on
    the cross-entropy loss) with a one-vs-rest multiclass wrapper — the
    classifier behind the LR-NW baseline. *)

type t

val train :
  ?learning_rate:float -> ?epochs:int -> ?l2:float ->
  (Vector.t * bool) list -> t
(** Defaults: [learning_rate = 0.1], [epochs = 200], [l2 = 1e-4].
    @raise Invalid_argument on []. *)

val probability : t -> Vector.t -> float
(** Sigmoid of the linear score, in [\[0,1\]]. *)

val predict : t -> Vector.t -> bool

type multi

val train_multi :
  ?learning_rate:float -> ?epochs:int -> ?l2:float ->
  (Vector.t * int) list -> multi

val predict_multi : multi -> Vector.t -> int
