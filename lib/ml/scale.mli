(** Per-feature standardization (zero mean, unit variance), fitted on
    training data and applied to both splits. *)

type t

val fit : Vector.t list -> t
(** @raise Invalid_argument on an empty list. *)

val transform : t -> Vector.t -> Vector.t
(** Standardize one vector (constant features pass through unchanged). *)

val transform_all : t -> Vector.t list -> Vector.t list
