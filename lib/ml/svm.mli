(** Linear support-vector machine trained with Pegasos (stochastic
    subgradient on the hinge loss), plus a one-vs-rest multiclass wrapper —
    the classifier behind the SVM-NW baseline. *)

type t
(** A binary model (weights + bias). *)

val train :
  ?lambda:float -> ?epochs:int -> rng:Sutil.Rng.t ->
  (Vector.t * bool) list -> t
(** [train ~rng samples] fits w, b on [(x, positive?)] samples.
    [lambda] (default 1e-3) is the regularization strength; [epochs]
    (default 40) full passes.  @raise Invalid_argument on []. *)

val decision : t -> Vector.t -> float
(** Signed margin [w.x + b]. *)

val predict : t -> Vector.t -> bool

type multi
(** One-vs-rest multiclass model over int labels. *)

val train_multi :
  ?lambda:float -> ?epochs:int -> rng:Sutil.Rng.t ->
  (Vector.t * int) list -> multi

val predict_multi : multi -> Vector.t -> int
(** Label with the largest decision value. *)
