(** k-nearest-neighbours classifier (Euclidean distance, majority vote with
    nearest-neighbour tie-break) — the classifier behind the KNN-MLFM
    baseline. *)

type t

val fit : k:int -> (Vector.t * int) list -> t
(** Stores the training set.  @raise Invalid_argument on [] or [k <= 0]. *)

val predict : t -> Vector.t -> int

val predict_with_votes : t -> Vector.t -> int * (int * int) list
(** The prediction plus per-label vote counts among the k neighbours. *)
