let folds ~rng ~k xs =
  let n = List.length xs in
  if k <= 1 then invalid_arg "Ml.Cv.folds: k must exceed 1";
  if k > n then invalid_arg "Ml.Cv.folds: more folds than samples";
  let shuffled = Array.of_list (Sutil.Rng.shuffle rng xs) in
  List.init k (fun fold ->
      let test = ref [] and train = ref [] in
      Array.iteri
        (fun i x -> if i mod k = fold then test := x :: !test else train := x :: !train)
        shuffled;
      (List.rev !train, List.rev !test))

let cross_validate ~rng ~k ~train ~test xs =
  let fs = folds ~rng ~k xs in
  let accs =
    List.map
      (fun (tr, te) ->
        let model = train tr in
        let correct = List.length (List.filter (test model) te) in
        float_of_int correct /. float_of_int (List.length te))
      fs
  in
  Sutil.Stats.mean accs
