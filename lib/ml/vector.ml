type t = float array

let check a b =
  if Array.length a <> Array.length b then
    invalid_arg "Ml.Vector: dimension mismatch"

let dot a b =
  check a b;
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let add_scaled acc c v =
  check acc v;
  for i = 0 to Array.length acc - 1 do
    acc.(i) <- acc.(i) +. (c *. v.(i))
  done

let scale_inplace v c =
  for i = 0 to Array.length v - 1 do
    v.(i) <- v.(i) *. c
  done

let norm v = sqrt (dot v v)

let euclidean_distance a b =
  check a b;
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    s := !s +. (d *. d)
  done;
  sqrt !s

let zeros n = Array.make n 0.0
let copy = Array.copy
