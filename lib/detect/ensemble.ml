(* The two-tier ensemble: a cheap HPC-feature fast path (the anomaly
   baseline's largest-|z| score against the benign training profile) screens
   every run, and only runs scoring at least [ctx.ensemble_tau] pay the DTW
   slow path (SCAGuard proper).  Anomaly scores are non-negative, so a
   threshold of 0 sends every run to the slow path and the ensemble is
   verdict-bit-identical to pure SCAGuard — the tuning anchor the tests
   assert. *)

module L = Workloads.Label
open Iface

let name = "ENSEMBLE"

type stats = {
  screened : int;  (** runs that entered the fast path *)
  fast_rejects : int;  (** runs rejected as benign without DTW *)
  slow_path : int;  (** runs escalated to DTW *)
  slow_confirms : int;  (** slow-path runs classified as an attack *)
}

(* Module-level tallies (the registry hides each detector's model type, so
   per-model counters would be unreachable from driver code).  Drivers
   bracket an evaluation with [reset_stats]/[stats]. *)
let screened = ref 0
let fast_rejects = ref 0
let slow_path = ref 0
let slow_confirms = ref 0

let reset_stats () =
  screened := 0;
  fast_rejects := 0;
  slow_path := 0;
  slow_confirms := 0

let stats () =
  {
    screened = !screened;
    fast_rejects = !fast_rejects;
    slow_path = !slow_path;
    slow_confirms = !slow_confirms;
  }

let slow_path_rate s =
  if s.screened = 0 then 0.0
  else float_of_int s.slow_path /. float_of_int s.screened

type model = {
  screen : Baselines.Anomaly.t option;
      (* [None] when the training split had no benign runs: nothing to
         screen against, everything escalates *)
  tau : float;
  scaguard : Adapters.Scaguard_dtw.model;
}

let train ctx labelled =
  let screen =
    match Adapters.benign_results labelled with
    | [] -> None
    | benign ->
      (* totals-only features: the fast path must stay far cheaper than
         the DTW it gates *)
      Some
        (Baselines.Anomaly.train ~features:Baselines.Features.screen_profile
           benign)
  in
  {
    screen;
    tau = ctx.ensemble_tau;
    scaguard = Adapters.Scaguard_dtw.train ctx labelled;
  }

let bump counter n =
  if Scaguard.Obs.metrics () then Scaguard.Obs.Registry.add counter n

let screen_z m run =
  match m.screen with
  | None -> infinity
  | Some a -> Baselines.Anomaly.score a (Run.result run)

(* The screening decision: anomaly scores are >= 0, so [tau = 0] never
   rejects. *)
let suspicious m run =
  incr screened;
  bump Scaguard.Obs.Metrics.ensemble_screened_total 1;
  let z = screen_z m run in
  if z < m.tau then begin
    incr fast_rejects;
    bump Scaguard.Obs.Metrics.ensemble_fast_rejects_total 1;
    false
  end
  else begin
    incr slow_path;
    bump Scaguard.Obs.Metrics.ensemble_slow_path_total 1;
    true
  end

let confirm () =
  incr slow_confirms;
  bump Scaguard.Obs.Metrics.ensemble_slow_confirms_total 1

let predict m run =
  if suspicious m run then begin
    let p = Adapters.Scaguard_dtw.predict m.scaguard run in
    if not (L.equal p L.Benign) then confirm ();
    p
  end
  else L.Benign

let binary_detect m run =
  if suspicious m run then begin
    let d = Adapters.Scaguard_dtw.binary_detect m.scaguard run in
    if d then confirm ();
    d
  end
  else false

let score m run =
  if suspicious m run then Adapters.Scaguard_dtw.score m.scaguard run
  else None

(* Fast-rejected runs never reach DTW, so their verdict is the empty one:
   no matches, no family, score 0. *)
let rejected_verdict =
  {
    Scaguard.Detector.best_matches = [];
    best_family = None;
    best_score = 0.0;
  }

(* Classification is the provenanced path: the screen outcome is noted in
   domain-local state just before the decision, so an escalated run's DTW
   record (finished on this same domain) carries it; a fast-rejected run
   never reaches the detector, so the record is emitted here.  Pure
   observation — the decision itself is computed exactly as [suspicious]
   computes it, and nothing is read back. *)
let classify m run =
  incr screened;
  bump Scaguard.Obs.Metrics.ensemble_screened_total 1;
  let z = screen_z m run in
  let escalated = not (z < m.tau) in
  if Scaguard.Provenance.enabled () then
    Scaguard.Provenance.note_ensemble ~screen_z:z ~tau:m.tau ~escalated;
  if escalated then begin
    incr slow_path;
    bump Scaguard.Obs.Metrics.ensemble_slow_path_total 1;
    let v = Adapters.Scaguard_dtw.classify m.scaguard run in
    if Scaguard.Detector.is_attack v then confirm ();
    v
  end
  else begin
    incr fast_rejects;
    bump Scaguard.Obs.Metrics.ensemble_fast_rejects_total 1;
    if Scaguard.Provenance.enabled () then
      Scaguard.Provenance.emit_fast_reject ~target:(Run.name run)
        ~threshold:
          (Option.value m.scaguard.Adapters.Scaguard_dtw.threshold
             ~default:Scaguard.Detector.default_threshold);
    rejected_verdict
  end
