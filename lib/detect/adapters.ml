(* One adapter per existing detector.  Every adapter is a thin shim: the
   detection logic stays in [lib/scaguard], [lib/baselines] and [lib/ml];
   the adapter only maps [Run.t] / [Workloads.Label.t] onto the underlying
   entry point.  Predictions are identical to calling that entry point
   directly (asserted by the test suite), so the drivers built on the
   registry render byte-identical tables. *)

module L = Workloads.Label
open Iface

let to_label = function
  | Some f -> Option.value ~default:L.Benign (L.of_string f)
  | None -> L.Benign

let int_pairs labelled =
  List.map (fun (r, l) -> (Run.result r, label_to_int l)) labelled

let benign_results labelled =
  List.filter_map
    (fun (r, l) -> if L.equal l L.Benign then Some (Run.result r) else None)
    labelled

(* SCAGuard proper: the PoC repository is the model; "training" just closes
   over the context's repository and threshold knobs. *)
module Scaguard_dtw = struct
  let name = "SCAGUARD"

  type model = {
    repo : Scaguard.Detector.repository;
    threshold : float option;
    alpha : float option;
  }

  let train ctx _ =
    { repo = ctx.repository; threshold = ctx.threshold; alpha = ctx.alpha }

  let classify m run =
    Scaguard.Detector.classify ?threshold:m.threshold ?alpha:m.alpha m.repo
      (Run.model run)

  let predict m run = to_label (classify m run).Scaguard.Detector.best_family
  let binary_detect m run = Scaguard.Detector.is_attack (classify m run)

  (* Graded view for threshold sweeps: the best match regardless of the
     model's threshold, as (family label, similarity). *)
  let score m run =
    let v =
      Scaguard.Detector.classify ~threshold:0.0 ?alpha:m.alpha m.repo
        (Run.model run)
    in
    match v.Scaguard.Detector.best_matches with
    | (_, family, _) :: _ ->
      Some (to_label (Some family), v.Scaguard.Detector.best_score)
    | [] -> None
end

(* SCADET's rules encode Prime+Probe signatures the defender designed from
   known attacks; when the Prime+Probe family is not among the known
   families, the defender has no applicable rules and everything passes as
   benign. *)
module Scadet = struct
  let name = "SCADET"

  type model = { rules_apply : bool }

  let train ctx _ = { rules_apply = List.mem L.Pp_family ctx.known_families }

  let predict m run =
    if not m.rules_apply then L.Benign
    else to_label (Baselines.Scadet.classify (Run.program run) (Run.result run))

  let binary_detect m run = not (L.equal (predict m run) L.Benign)
  let score _ _ = None
end

module Nights_watch_gen (V : sig
  val name : string
  val variant : Baselines.Nights_watch.variant
end) =
struct
  let name = V.name

  type model = Baselines.Nights_watch.t

  let train ctx labelled =
    Baselines.Nights_watch.train ~variant:V.variant ~rng:ctx.rng
      (int_pairs labelled)

  let predict m run =
    label_of_int (Baselines.Nights_watch.predict m (Run.result run))

  let binary_detect m run = not (L.equal (predict m run) L.Benign)
  let score _ _ = None
end

module Svm_nw = Nights_watch_gen (struct
  let name = "SVM-NW"
  let variant = Baselines.Nights_watch.Svm_nw
end)

module Lr_nw = Nights_watch_gen (struct
  let name = "LR-NW"
  let variant = Baselines.Nights_watch.Lr_nw
end)

module Knn_mlfm = struct
  let name = "KNN-MLFM"

  type model = Baselines.Mlfm.t

  let train _ labelled = Baselines.Mlfm.train (int_pairs labelled)
  let predict m run = label_of_int (Baselines.Mlfm.predict m (Run.result run))
  let binary_detect m run = not (L.equal (predict m run) L.Benign)
  let score _ _ = None
end

(* Victim-oriented anomaly detection is attack-vs-benign only: a positive
   verdict maps to the context's first attack class. *)
module Anomaly = struct
  let name = "ANOMALY"

  type model = { anomaly : Baselines.Anomaly.t; attack_class : L.t }

  let attack_class_of ctx =
    match List.filter (fun c -> not (L.equal c L.Benign)) ctx.classes with
    | c :: _ -> c
    | [] -> L.Fr_family

  let train ctx labelled =
    {
      anomaly = Baselines.Anomaly.train (benign_results labelled);
      attack_class = attack_class_of ctx;
    }

  let binary_detect m run =
    Baselines.Anomaly.is_attack m.anomaly (Run.result run)

  let predict m run =
    if binary_detect m run then m.attack_class else L.Benign

  let score m run =
    Some (m.attack_class, Baselines.Anomaly.score m.anomaly (Run.result run))
end

module Phased_guard = struct
  let name = "PHASED-GUARD"

  type model = Baselines.Phased_guard.t

  let train ctx labelled =
    let benign = benign_results labelled in
    let attacks =
      List.filter_map
        (fun (r, l) ->
          if L.equal l L.Benign then None
          else Some (Run.result r, label_to_int l))
        labelled
    in
    Baselines.Phased_guard.train ~rng:ctx.rng ~benign ~attacks
      ~benign_label:(label_to_int L.Benign)

  let predict m run =
    label_of_int (Baselines.Phased_guard.predict m (Run.result run))

  let binary_detect m run = not (L.equal (predict m run) L.Benign)
  let score _ _ = None
end

(* Raw lib/ml classifiers over the whole-run HPC profile, standardized on
   the training split — the "generic ML on HPCs" reference points the
   showdown table reports next to the purpose-built baselines. *)
module type RAW_CLASSIFIER = sig
  val name : string

  type m

  val train : ctx -> (Ml.Vector.t * int) list -> m
  val predict : m -> Ml.Vector.t -> int
end

module Raw_gen (C : RAW_CLASSIFIER) = struct
  let name = C.name

  type model = { scale : Ml.Scale.t; m : C.m }

  let train ctx labelled =
    let features =
      List.map (fun (r, _) -> Baselines.Features.whole_run (Run.result r))
        labelled
    in
    let scale = Ml.Scale.fit features in
    let data =
      List.map2
        (fun x (_, l) -> (Ml.Scale.transform scale x, label_to_int l))
        features labelled
    in
    { scale; m = C.train ctx data }

  let predict model run =
    let x =
      Ml.Scale.transform model.scale
        (Baselines.Features.whole_run (Run.result run))
    in
    label_of_int (C.predict model.m x)

  let binary_detect m run = not (L.equal (predict m run) L.Benign)
  let score _ _ = None
end

module Svm_hpc = Raw_gen (struct
  let name = "SVM-HPC"

  type m = Ml.Svm.multi

  let train ctx data = Ml.Svm.train_multi ~rng:ctx.rng data
  let predict = Ml.Svm.predict_multi
end)

module Lr_hpc = Raw_gen (struct
  let name = "LR-HPC"

  type m = Ml.Logreg.multi

  let train _ data = Ml.Logreg.train_multi data
  let predict = Ml.Logreg.predict_multi
end)

module Knn_hpc = Raw_gen (struct
  let name = "KNN-HPC"

  type m = Ml.Knn.t

  let train _ data = Ml.Knn.fit ~k:5 data
  let predict = Ml.Knn.predict
end)
