module Run = Run
include Iface
module Ensemble = Ensemble
module Scaguard_dtw = Adapters.Scaguard_dtw
module Scadet = Adapters.Scadet
module Svm_nw = Adapters.Svm_nw
module Lr_nw = Adapters.Lr_nw
module Knn_mlfm = Adapters.Knn_mlfm
module Anomaly = Adapters.Anomaly
module Phased_guard = Adapters.Phased_guard
module Svm_hpc = Adapters.Svm_hpc
module Lr_hpc = Adapters.Lr_hpc
module Knn_hpc = Adapters.Knn_hpc

type entry = { key : string; label : string; detector : (module Iface.S) }

(* Order matters twice: drivers evaluate in registry order, and detectors
   that consume the shared rng (the NIGHTs-WATCH variants, Phased-Guard,
   SVM-HPC) must keep their relative training order for results to stay
   reproducible run over run. *)
let registry =
  [
    { key = "svm-nw"; label = "SVM-NW"; detector = (module Adapters.Svm_nw) };
    { key = "lr-nw"; label = "LR-NW"; detector = (module Adapters.Lr_nw) };
    {
      key = "knn-mlfm";
      label = "KNN-MLFM";
      detector = (module Adapters.Knn_mlfm);
    };
    { key = "scadet"; label = "SCADET"; detector = (module Adapters.Scadet) };
    {
      key = "scaguard";
      label = "SCAGUARD";
      detector = (module Adapters.Scaguard_dtw);
    };
    {
      key = "anomaly";
      label = "Anomaly (victim-oriented)";
      detector = (module Adapters.Anomaly);
    };
    {
      key = "phased-guard";
      label = "Phased-Guard";
      detector = (module Adapters.Phased_guard);
    };
    {
      key = "svm-hpc";
      label = "SVM-HPC";
      detector = (module Adapters.Svm_hpc);
    };
    { key = "lr-hpc"; label = "LR-HPC"; detector = (module Adapters.Lr_hpc) };
    {
      key = "knn-hpc";
      label = "KNN-HPC";
      detector = (module Adapters.Knn_hpc);
    };
    { key = "ensemble"; label = "Ensemble"; detector = (module Ensemble) };
  ]

let keys () = List.map (fun e -> e.key) registry
let find key = List.find_opt (fun e -> e.key = key) registry

let find_exn key =
  match find key with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "Detect.find_exn: unknown detector %S (known: %s)" key
         (String.concat ", " (keys ())))

let timed f =
  let t0 = Scaguard.Obs.Clock.now_ns () in
  let v = f () in
  (v, Scaguard.Obs.Clock.elapsed_s ~since:t0)
