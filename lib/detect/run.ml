module D = Workloads.Dataset

type t = {
  sample : D.sample;
  result : Cpu.Exec.result;
  analysis : Scaguard.Pipeline.analysis Lazy.t;
}

let of_result ~(sample : D.sample) result =
  {
    sample;
    result;
    analysis =
      lazy
        (Scaguard.Pipeline.analyze ~name:sample.D.name
           ~program:sample.D.program result);
  }

let execute sample = of_result ~sample (D.run sample)
let execute_all samples = List.map execute samples

let name run = run.sample.D.name
let model run = (Lazy.force run.analysis).Scaguard.Pipeline.model
let label run = run.sample.D.label
let program run = run.sample.D.program
let result run = run.result
