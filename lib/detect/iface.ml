module L = Workloads.Label

type ctx = {
  rng : Sutil.Rng.t;
  repository : Scaguard.Detector.repository;
  known_families : L.t list;
  classes : L.t list;
  threshold : float option;
  alpha : float option;
  ensemble_tau : float;
}

let make_ctx ?threshold ?alpha
    ?(ensemble_tau = Scaguard.Config.default.Scaguard.Config.ensemble_tau)
    ?(repository = []) ?(known_families = []) ?(classes = L.all) ~rng () =
  { rng; repository; known_families; classes; threshold; alpha; ensemble_tau }

(* The int encoding the learning baselines train on; fixed (not positional
   in [ctx.classes]) so a model's labels mean the same thing on every
   task. *)
let label_to_int = function
  | L.Fr_family -> 0
  | L.Pp_family -> 1
  | L.Spectre_fr -> 2
  | L.Spectre_pp -> 3
  | L.Benign -> 4

let label_of_int = function
  | 0 -> L.Fr_family
  | 1 -> L.Pp_family
  | 2 -> L.Spectre_fr
  | 3 -> L.Spectre_pp
  | _ -> L.Benign

module type S = sig
  val name : string

  type model

  val train : ctx -> (Run.t * L.t) list -> model
  val predict : model -> Run.t -> L.t
  val binary_detect : model -> Run.t -> bool
  val score : model -> Run.t -> (L.t * float) option
end
