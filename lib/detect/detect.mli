(** The unified detector abstraction: one {!S} interface over executed
    workload samples, an adapter per detection approach (SCAGuard's DTW
    classifier, the five related-work baselines, raw HPC classifiers), the
    two-tier {!Ensemble}, and a {!registry} of first-class modules the
    experiment drivers and the [scaguard compare] showdown iterate over.

    Adapters add {e no} behaviour: each one maps {!Run.t} and
    {!Workloads.Label.t} onto the underlying entry point in [lib/scaguard],
    [lib/baselines] or [lib/ml], so predictions — and the tables rendered
    from them — are identical to calling those entry points directly
    (asserted by the test suite).  See [docs/DETECTORS.md] for the contract
    and a tuning guide. *)

(** An executed workload sample: the raw runtime data every detector reads,
    plus the lazily-built CST-BBS analysis only the DTW-based detectors
    force. *)
module Run : sig
  type t = {
    sample : Workloads.Dataset.sample;
    result : Cpu.Exec.result;
    analysis : Scaguard.Pipeline.analysis Lazy.t;
        (** modeling is lazy: the HPC baselines only need [result], and an
            ensemble fast-path rejection never pays for it *)
  }

  val of_result : sample:Workloads.Dataset.sample -> Cpu.Exec.result -> t
  (** Wrap an already-executed sample (hierarchy sweeps and other custom
      executions); the analysis is built on first force from the sample's
      name and program. *)

  val execute : Workloads.Dataset.sample -> t
  val execute_all : Workloads.Dataset.sample list -> t list

  val model : t -> Scaguard.Model.t
  (** Force the analysis and return its CST-BBS model. *)

  val label : t -> Workloads.Label.t
  (** The sample's ground-truth label. *)

  val program : t -> Isa.Program.t
  val result : t -> Cpu.Exec.result
end

type ctx = {
  rng : Sutil.Rng.t;  (** consumed by the learning adapters' training *)
  repository : Scaguard.Detector.repository;
      (** the PoC repository — SCAGuard's (and the ensemble's) "model" *)
  known_families : Workloads.Label.t list;
      (** families the defender knows (gates SCADET's rule applicability) *)
  classes : Workloads.Label.t list;
      (** the task's label set; binary-only detectors report their positive
          verdict as the first attack class *)
  threshold : float option;  (** SCAGuard similarity threshold override *)
  alpha : float option;  (** SCAGuard DTW weight override *)
  ensemble_tau : float;  (** {!Ensemble} screening threshold *)
}
(** Everything a detector may need to train.  Adapters read only the fields
    they use; unknown knobs cost nothing. *)

val make_ctx :
  ?threshold:float ->
  ?alpha:float ->
  ?ensemble_tau:float ->
  ?repository:Scaguard.Detector.repository ->
  ?known_families:Workloads.Label.t list ->
  ?classes:Workloads.Label.t list ->
  rng:Sutil.Rng.t ->
  unit ->
  ctx
(** Defaults: empty repository/known-families, [classes = Label.all], no
    threshold/alpha overrides, [ensemble_tau] from
    {!Scaguard.Config.default}. *)

val label_to_int : Workloads.Label.t -> int
(** The fixed int encoding the learning baselines train on
    (FR-F=0 … Benign=4). *)

val label_of_int : int -> Workloads.Label.t

(** The detector contract.  [train] may consume [ctx.rng]; everything else
    is pure.  Detectors that need no training data (SCAGuard, SCADET)
    ignore the labelled runs. *)
module type S = sig
  val name : string

  type model

  val train : ctx -> (Run.t * Workloads.Label.t) list -> model

  val predict : model -> Run.t -> Workloads.Label.t
  (** Multi-class verdict; binary-only detectors answer with the context's
      first attack class or [Benign]. *)

  val binary_detect : model -> Run.t -> bool
  (** Attack-vs-benign verdict. *)

  val score : model -> Run.t -> (Workloads.Label.t * float) option
  (** Graded suspicion for threshold sweeps: the best-matching label with a
      detector-specific score (SCAGuard: DTW similarity in [0,1]; anomaly:
      largest |z|), [None] for detectors with no graded view. *)
end

(** {1 Adapters}

    Each adapter's prediction equals the underlying entry point called
    directly; the registry {!key}s below are the CLI/bench spellings. *)

(** ["scaguard"] — DTW similarity against [ctx.repository]
    ({!Scaguard.Detector.classify}); {!S.score} reports the best match at
    threshold 0. *)
module Scaguard_dtw : sig
  include S

  val classify : model -> Run.t -> Scaguard.Detector.verdict
  (** The full verdict record — what the ensemble's bit-identity contract
      is stated against. *)
end

module Scadet : S
(** ["scadet"] — rule-based Prime+Probe detection
    ({!Baselines.Scadet.classify}); rules apply only when [Pp_family] is
    among [ctx.known_families]. *)

module Svm_nw : S
(** ["svm-nw"] — {!Baselines.Nights_watch} (SVM variant); consumes
    [ctx.rng]. *)

module Lr_nw : S
(** ["lr-nw"] — {!Baselines.Nights_watch} (logistic-regression variant);
    consumes [ctx.rng]. *)

module Knn_mlfm : S
(** ["knn-mlfm"] — {!Baselines.Mlfm}. *)

module Anomaly : S
(** ["anomaly"] — {!Baselines.Anomaly}, trained on the benign subset of the
    training runs; predicts the context's first attack class or benign. *)

module Phased_guard : S
(** ["phased-guard"] — {!Baselines.Phased_guard}; consumes [ctx.rng]. *)

module Svm_hpc : S
(** ["svm-hpc"] — raw {!Ml.Svm} one-vs-rest over the standardized whole-run
    HPC profile; consumes [ctx.rng]. *)

module Lr_hpc : S
(** ["lr-hpc"] — raw {!Ml.Logreg} over the same features. *)

module Knn_hpc : S
(** ["knn-hpc"] — raw {!Ml.Knn} (k=5) over the same features. *)

(** {1 The two-tier ensemble} *)

(** ["ensemble"] — a cheap HPC fast path ({!Baselines.Anomaly} over the
    totals-only {!Baselines.Features.screen_profile}, fitted to the benign
    training runs) screens every run; only runs whose largest |z| reaches
    [ctx.ensemble_tau] pay the DTW slow path ({!Scaguard_dtw}).  Anomaly
    scores are non-negative, so [tau = 0] escalates everything and the
    ensemble is verdict-bit-identical to pure SCAGuard (asserted by the
    tests). *)
module Ensemble : sig
  include S

  type stats = {
    screened : int;  (** runs that entered the fast path *)
    fast_rejects : int;  (** runs rejected as benign without DTW *)
    slow_path : int;  (** runs escalated to DTW *)
    slow_confirms : int;  (** slow-path runs classified as an attack *)
  }

  val reset_stats : unit -> unit
  (** Zero the module-level tallies (the registry hides the model type, so
      counters are kept here); bracket an evaluation with
      [reset_stats]/{!stats}.  The same counts are exported as
      [scaguard_ensemble_*] metrics when {!Scaguard.Obs.metrics} is on. *)

  val stats : unit -> stats

  val slow_path_rate : stats -> float
  (** [slow_path / screened] (0 when nothing was screened). *)

  val classify : model -> Run.t -> Scaguard.Detector.verdict
  (** The slow path's full verdict; fast-path rejections return the empty
      verdict (no matches, family [None], score 0). *)
end

(** {1 Registry} *)

type entry = { key : string; label : string; detector : (module S) }

val registry : entry list
(** Every detector, in evaluation order: the Table VI baselines first
    (SVM-NW, LR-NW, KNN-MLFM, SCADET, SCAGUARD), then the extended
    baselines, the raw HPC classifiers, and the ensemble last. *)

val keys : unit -> string list
val find : string -> entry option

val find_exn : string -> entry
(** @raise Invalid_argument on an unknown key (message lists the known
    ones). *)

val timed : (unit -> 'a) -> 'a * float
(** Run a thunk and return its monotonic wall-clock seconds
    ({!Scaguard.Obs.Clock}) — the cost accounting the showdown table and
    [BENCH_compare.json] report. *)
