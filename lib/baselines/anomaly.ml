type t = {
  features : Cpu.Exec.result -> Ml.Vector.t;
  mean : float array;
  std : float array;
}

let default_threshold = 3.0

let train ?(features = Features.whole_run) = function
  | [] -> invalid_arg "Baselines.Anomaly.train: no benign samples"
  | results ->
    let xs = List.map features results in
    let d = Array.length (List.hd xs) in
    let n = float_of_int (List.length xs) in
    let mean = Array.make d 0.0 in
    List.iter (fun x -> Array.iteri (fun i v -> mean.(i) <- mean.(i) +. v) x) xs;
    Array.iteri (fun i v -> mean.(i) <- v /. n) mean;
    let var = Array.make d 0.0 in
    List.iter
      (fun x ->
        Array.iteri
          (fun i v ->
            let dv = v -. mean.(i) in
            var.(i) <- var.(i) +. (dv *. dv))
          x)
      xs;
    let std = Array.map (fun v -> sqrt (v /. n)) var in
    { features; mean; std }

let score t res =
  let x = t.features res in
  let worst = ref 0.0 in
  Array.iteri
    (fun i v ->
      let sigma = max t.std.(i) 1e-9 in
      let z = abs_float ((v -. t.mean.(i)) /. sigma) in
      (* features that never varied in training only count when they fire at
         all (z would explode on any epsilon otherwise) *)
      let z = if t.std.(i) < 1e-9 && abs_float (v -. t.mean.(i)) < 1e-9 then 0.0 else z in
      if z > !worst then worst := z)
    x;
  !worst

let is_attack ?(threshold = default_threshold) t res = score t res > threshold
