(** KNN-MLFM: k-nearest-neighbours malicious-loop-finding detector (Allaf et
    al., UKCI'17 style) — classifies executions by the HPC profile of their
    hottest loops. *)

type t

val train : ?k:int -> (Cpu.Exec.result * int) list -> t
(** [k] defaults to 5.  @raise Invalid_argument on []. *)

val predict : t -> Cpu.Exec.result -> int
