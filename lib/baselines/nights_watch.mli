(** NIGHTs-WATCH-style learning-based detectors (Mushtaq et al., HASP'18):
    classifiers over whole-process HPC rates.  Two variants, matching
    Table VI's baselines: SVM-NW (linear SVM) and LR-NW (logistic
    regression). *)

type variant = Svm_nw | Lr_nw

type t
(** A trained multiclass model (with its feature scaler). *)

val train :
  variant:variant -> rng:Sutil.Rng.t ->
  (Cpu.Exec.result * int) list -> t
(** Train on labelled executions (labels are small ints; the caller fixes
    the encoding).  @raise Invalid_argument on []. *)

val predict : t -> Cpu.Exec.result -> int

val variant_name : variant -> string
