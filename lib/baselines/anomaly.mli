(** Victim-oriented anomaly detection (Chiappetta et al., Applied Soft
    Computing 2016 — the paper's related work): learn only what {e benign}
    HPC profiles look like and flag outliers.

    Requires no attack samples at all, but — as the paper argues — a single
    benign data source yields false positives and the verdict cannot be
    classified into an attack family. *)

type t

val train :
  ?features:(Cpu.Exec.result -> Ml.Vector.t) -> Cpu.Exec.result list -> t
(** Fit per-feature mean/stddev on benign executions only.  [features]
    (default {!Features.whole_run}) selects the profile; the model applies
    the same featureization when scoring — the ensemble's fast path passes
    the cheaper {!Features.screen_profile}.
    @raise Invalid_argument on []. *)

val score : t -> Cpu.Exec.result -> float
(** Largest absolute per-feature z-score of the execution's profile. *)

val is_attack : ?threshold:float -> t -> Cpu.Exec.result -> bool
(** [threshold] defaults to {!default_threshold}. *)

val default_threshold : float
(** 3.0.  Flush+Reload profiles sit only 3-4 sigma outside the benign
    cloud, so catching them forces a tight threshold — and with it the high
    false-positive ratio the paper attributes to single-source anomaly
    detection. *)
