type t = { scaler : Ml.Scale.t; knn : Ml.Knn.t }

let featurize res = Features.loop_profile res

let train ?(k = 5) samples =
  (match samples with [] -> invalid_arg "Mlfm.train: no samples" | _ -> ());
  let raw = List.map (fun (res, l) -> (featurize res, l)) samples in
  let scaler = Ml.Scale.fit (List.map fst raw) in
  let scaled = List.map (fun (x, l) -> (Ml.Scale.transform scaler x, l)) raw in
  { scaler; knn = Ml.Knn.fit ~k scaled }

let predict t res =
  Ml.Knn.predict t.knn (Ml.Scale.transform t.scaler (featurize res))
