(** Phased-Guard-style two-phase detection (Wang et al., ICCD'20 — the
    paper's related work): phase one is victim-oriented anomaly detection;
    only anomalous executions reach phase two, a multi-class classifier
    trained on attack samples. *)

type t

val train :
  rng:Sutil.Rng.t ->
  benign:Cpu.Exec.result list ->
  attacks:(Cpu.Exec.result * int) list ->
  benign_label:int ->
  t
(** @raise Invalid_argument when either training set is empty. *)

val predict : t -> Cpu.Exec.result -> int
(** [benign_label] when phase one sees nothing anomalous, otherwise phase
    two's attack family. *)
