type variant = Svm_nw | Lr_nw

type model = Svm of Ml.Svm.multi | Lr of Ml.Logreg.multi

type t = { scaler : Ml.Scale.t; model : model }

let featurize res = Features.whole_run res

let train ~variant ~rng samples =
  (match samples with
  | [] -> invalid_arg "Nights_watch.train: no samples"
  | _ -> ());
  let raw = List.map (fun (res, l) -> (featurize res, l)) samples in
  let scaler = Ml.Scale.fit (List.map fst raw) in
  let scaled = List.map (fun (x, l) -> (Ml.Scale.transform scaler x, l)) raw in
  let model =
    match variant with
    | Svm_nw -> Svm (Ml.Svm.train_multi ~rng scaled)
    | Lr_nw -> Lr (Ml.Logreg.train_multi scaled)
  in
  { scaler; model }

let predict t res =
  let x = Ml.Scale.transform t.scaler (featurize res) in
  match t.model with
  | Svm m -> Ml.Svm.predict_multi m x
  | Lr m -> Ml.Logreg.predict_multi m x

let variant_name = function Svm_nw -> "SVM-NW" | Lr_nw -> "LR-NW"
