(** SCADET-style rule-based Prime+Probe detection (Sabbagh et al.,
    ICCAD'18) — the learning-free baseline of Table VI.

    The rules encode the hand-designed Prime+Probe signature:
    a {e tight loop} (short static loop body containing a load) whose
    dynamic accesses repeatedly sweep an LLC cache set with at least
    [min_ways] distinct congruent lines, on several sets, several times
    (prime and probe phases of several rounds).

    Being a fixed syntactic-plus-trace pattern, it shares the brittleness
    the paper demonstrates: code mutation can push loop bodies past the
    tightness bound and obfuscation splits them, so variants evade it —
    and non-Prime+Probe families never match at all. *)

type params = {
  max_body_len : int;   (** instructions; loops longer than this are not
                            "tight" (default 8) *)
  min_ways : int;       (** distinct congruent lines per sweep (default 12) *)
  min_sets : int;       (** swept sets required (default 4) *)
  min_sweeps : int;     (** sweeps per set required (default 3) *)
  sweep_gap : int;      (** cycles separating two sweeps of a set (default 600) *)
}

val default_params : params

type report = {
  detected : bool;
  swept_sets : int list;   (** sets matching the sweep rule *)
  tight_loops : int;       (** tight loops found statically *)
}

val detect : ?params:params -> Isa.Program.t -> Cpu.Exec.result -> report
(** Run the rules on a program and its execution trace. *)

val classify : ?params:params -> Isa.Program.t -> Cpu.Exec.result -> string option
(** [Some "PP-F"] when the Prime+Probe rules fire, [None] (benign)
    otherwise — SCADET has no rules for other families. *)
