(** HPC featureization shared by the learning-based baselines.

    NIGHTs-WATCH-style detectors sample whole-process HPC rates;
    KNN-MLFM-style detectors focus on the hottest loops.  Both views are
    derived from the collected runtime data of one execution. *)

val dim_whole_run : int
val whole_run : Cpu.Exec.result -> Ml.Vector.t
(** Per-instruction rates of the 12 Table I events, plus the data-access
    rate and flush rate — the whole-process profile SVM-NW / LR-NW train
    on. *)

val dim_screen : int
val screen_profile : Cpu.Exec.result -> Ml.Vector.t
(** Whole-run rates of every collector event (Timestamp included) plus the
    access rate and cycles-per-instruction, computed from counter totals
    and O(1) scalars alone — no pass over the access log, so it is cheap
    enough for the ensemble's screening fast path.  The screen is not
    bound by the hardware-countable restriction of {!whole_run}: it gates
    a detector that consumes full traces anyway. *)

val dim_loop_profile : int
val loop_profile : Cpu.Exec.result -> Ml.Vector.t
(** Event rates concentrated on the hottest instruction addresses (the
    malicious-loop view of KNN-MLFM): the top-4 addresses by HPC value
    contribute their execution share and their event breakdown. *)
