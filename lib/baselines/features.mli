(** HPC featureization shared by the learning-based baselines.

    NIGHTs-WATCH-style detectors sample whole-process HPC rates;
    KNN-MLFM-style detectors focus on the hottest loops.  Both views are
    derived from the collected runtime data of one execution. *)

val dim_whole_run : int
val whole_run : Cpu.Exec.result -> Ml.Vector.t
(** Per-instruction rates of the 12 Table I events, plus the data-access
    rate and flush rate — the whole-process profile SVM-NW / LR-NW train
    on. *)

val dim_loop_profile : int
val loop_profile : Cpu.Exec.result -> Ml.Vector.t
(** Event rates concentrated on the hottest instruction addresses (the
    malicious-loop view of KNN-MLFM): the top-4 addresses by HPC value
    contribute their execution share and their event breakdown. *)
