module I = Isa.Instr
module P = Isa.Program

type params = {
  max_body_len : int;
  min_ways : int;
  min_sets : int;
  min_sweeps : int;
  sweep_gap : int;
}

(* sweep_gap sits between the intra-phase revisit interval of a zig-zag
   (ways-outer) prime walk (~700 cycles) and the prime->probe phase gap
   (several thousand cycles). *)
let default_params =
  { max_body_len = 7; min_ways = 12; min_sets = 4; min_sweeps = 3;
    sweep_gap = 1500 }

type report = { detected : bool; swept_sets : int list; tight_loops : int }

(* Static part: tight loops = backward conditional branches whose body is
   short and contains a load. *)
let tight_loops params prog =
  let code = P.code prog in
  let loops = ref [] in
  Array.iteri
    (fun i ins ->
      match I.branch_target ins with
      | Some l when I.is_cond_branch ins ->
        let target = P.label_index prog l in
        if target < i && i - target + 1 <= params.max_body_len then begin
          let body = Array.sub code target (i - target + 1) in
          if Array.exists I.reads_memory body then loops := (target, i) :: !loops
        end
      | Some _ | None -> ())
    code;
  List.rev !loops

(* Dynamic part: for one loop, cluster its per-set access times into sweeps
   and keep sets with enough many-way sweeps. *)
let swept_sets_of_loop params prog collector (first, last) =
  let set_of addr = Cache.Config.set_of_addr Cache.Config.llc addr in
  let in_loop pc =
    match P.index_of_addr prog pc with
    | Some i -> i >= first && i <= last
    | None -> false
  in
  let by_set = Hashtbl.create 16 in
  List.iter
    (fun (a : Hpc.Collector.access) ->
      if a.Hpc.Collector.kind <> Hpc.Collector.Flush && in_loop a.Hpc.Collector.pc
      then begin
        let s = set_of a.Hpc.Collector.target in
        Hashtbl.replace by_set s
          ((a.Hpc.Collector.time, a.Hpc.Collector.target)
          :: Option.value ~default:[] (Hashtbl.find_opt by_set s))
      end)
    (Hpc.Collector.accesses collector);
  Hashtbl.fold
    (fun s accs acc ->
      let accs = List.sort compare accs in
      (* split into sweeps at time gaps *)
      let sweeps = ref [] in
      let current = ref [] in
      let last_t = ref min_int in
      List.iter
        (fun (t, addr) ->
          if !last_t <> min_int && t - !last_t > params.sweep_gap then begin
            sweeps := !current :: !sweeps;
            current := []
          end;
          current := addr :: !current;
          last_t := t)
        accs;
      if !current <> [] then sweeps := !current :: !sweeps;
      let full_sweeps =
        List.filter
          (fun sw ->
            List.length (List.sort_uniq Int.compare sw) >= params.min_ways)
          !sweeps
      in
      if List.length full_sweeps >= params.min_sweeps then s :: acc else acc)
    by_set []

(* The tool's trace segmentation assumes the prime/probe phases run
   straight-line within one routine; executed calls (context changes inside
   the window) abort the pattern match — one of the hand-built assumptions
   that make rule-based detection brittle. *)
let has_executed_calls prog (res : Cpu.Exec.result) =
  let code = P.code prog in
  let rec scan i =
    i < Array.length code
    && ((match code.(i) with
        | I.Call _ ->
          Hpc.Collector.exec_count res.Cpu.Exec.collector
            ~pc:(P.addr_of_index prog i)
          > 0
        | _ -> false)
       || scan (i + 1))
  in
  scan 0

let detect ?(params = default_params) prog (res : Cpu.Exec.result) =
  let loops = tight_loops params prog in
  let swept =
    if has_executed_calls prog res then []
    else begin
      (* Prime+Probe needs both phases: a set counts only when at least two
         distinct tight loops (the prime loop and the probe loop) sweep
         it. *)
      let per_loop =
        List.map
          (fun l ->
            List.sort_uniq Int.compare
              (swept_sets_of_loop params prog res.Cpu.Exec.collector l))
          loops
      in
      let counts = Hashtbl.create 16 in
      List.iter
        (List.iter (fun s ->
             Hashtbl.replace counts s
               (1 + Option.value ~default:0 (Hashtbl.find_opt counts s))))
        per_loop;
      Hashtbl.fold (fun s c acc -> if c >= 2 then s :: acc else acc) counts []
      |> List.sort Int.compare
    end
  in
  {
    detected = List.length swept >= params.min_sets;
    swept_sets = swept;
    tight_loops = List.length loops;
  }

let classify ?params prog res =
  if (detect ?params prog res).detected then Some "PP-F" else None
