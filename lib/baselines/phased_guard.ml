type t = {
  anomaly : Anomaly.t;
  classifier : Nights_watch.t;
  benign_label : int;
}

let train ~rng ~benign ~attacks ~benign_label =
  if attacks = [] then invalid_arg "Phased_guard.train: no attack samples";
  {
    anomaly = Anomaly.train benign;
    classifier = Nights_watch.train ~variant:Nights_watch.Svm_nw ~rng attacks;
    benign_label;
  }

let predict t res =
  if Anomaly.is_attack t.anomaly res then Nights_watch.predict t.classifier res
  else t.benign_label
