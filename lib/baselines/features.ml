let n_windows = 8

(* Only hardware-countable events feed the learned profiles: real HPCs have
   no "clflush executed" or "rdtsc executed" counter, so the Flush and
   Timestamp channels that would trivially separate attack from benign are
   excluded — as in the original NIGHTs-WATCH, which trains on cache
   miss/hit counters. *)
let countable =
  List.filter
    (fun e -> not (Hpc.Event.equal e Hpc.Event.Timestamp))
    Hpc.Event.all

let dim_whole_run = List.length countable + 1 + (n_windows * 2)

(* NIGHTs-WATCH samples HPCs periodically, so besides whole-run rates the
   profile carries the *temporal rhythm*: per time window, the load and
   store activity.  The rhythm is what makes the learned models
   family-specific (and why they transfer poorly across families, as the
   paper's E3 shows). *)
let whole_run (res : Cpu.Exec.result) =
  let c = Hpc.Collector.total_counters res.Cpu.Exec.collector in
  let n = float_of_int (max 1 res.Cpu.Exec.instructions) in
  let rates =
    Array.of_list
      (List.map (fun e -> float_of_int (Hpc.Counters.get c e) /. n) countable)
  in
  let accesses =
    List.filter
      (fun (a : Hpc.Collector.access) ->
        a.Hpc.Collector.kind <> Hpc.Collector.Flush)
      (Hpc.Collector.accesses res.Cpu.Exec.collector)
  in
  let aggregate = [| float_of_int (List.length accesses) /. n |] in
  let windows = Array.make (n_windows * 2) 0.0 in
  let total_accesses = float_of_int (max 1 (List.length accesses)) in
  let span = float_of_int (max 1 res.Cpu.Exec.cycles) in
  List.iter
    (fun (a : Hpc.Collector.access) ->
      let w =
        min (n_windows - 1)
          (int_of_float (float_of_int a.Hpc.Collector.time /. span
                         *. float_of_int n_windows))
      in
      let slot =
        match a.Hpc.Collector.kind with
        | Hpc.Collector.Load -> 0
        | Hpc.Collector.Store | Hpc.Collector.Flush -> 1
      in
      let i = (w * 2) + slot in
      windows.(i) <- windows.(i) +. (1.0 /. total_accesses))
    accesses;
  Array.concat [ rates; aggregate; windows ]

let dim_screen = List.length Hpc.Event.all + 2

(* The screening profile reads only the collector's counter totals (a
   per-PC table merge, no walk over the access log) plus two O(1) scalars,
   so it stays cheap enough for a fast path that runs before every DTW
   classification.  Unlike the learned baselines it keeps the Timestamp
   channel: the screen gates a detector that consumes full traces anyway,
   so it is not bound by the hardware-countable restriction — and the
   rdtsc rate is what separates Flush+Reload from benign traffic when
   mutation has diluted the per-instruction miss rates. *)
let screen_profile (res : Cpu.Exec.result) =
  let col = res.Cpu.Exec.collector in
  let c = Hpc.Collector.total_counters col in
  let n = float_of_int (max 1 res.Cpu.Exec.instructions) in
  let feat = Array.make dim_screen 0.0 in
  List.iteri
    (fun i e -> feat.(i) <- float_of_int (Hpc.Counters.get c e) /. n)
    Hpc.Event.all;
  feat.(dim_screen - 2) <-
    float_of_int (Hpc.Collector.access_count col) /. n;
  feat.(dim_screen - 1) <- float_of_int res.Cpu.Exec.cycles /. n;
  feat

let top_k = 4
let slot_width = List.length countable + 1
let dim_loop_profile = top_k * slot_width

let loop_profile (res : Cpu.Exec.result) =
  let col = res.Cpu.Exec.collector in
  let pcs = Hpc.Collector.executed_pcs col in
  let scored =
    List.map (fun pc -> (Hpc.Collector.hpc_value_at col ~pc, pc)) pcs
    |> List.sort (fun (a, _) (b, _) -> Int.compare b a)
  in
  let n = float_of_int (max 1 res.Cpu.Exec.instructions) in
  let feat = Array.make dim_loop_profile 0.0 in
  List.iteri
    (fun rank (_, pc) ->
      if rank < top_k then begin
        let off = rank * slot_width in
        feat.(off) <- float_of_int (Hpc.Collector.exec_count col ~pc) /. n;
        match Hpc.Collector.counters_at col ~pc with
        | Some c ->
          List.iteri
            (fun i e -> feat.(off + 1 + i) <- float_of_int (Hpc.Counters.get c e) /. n)
            countable
        | None -> ()
      end)
    scored;
  feat
