module B = Isa.Builder
module I = Isa.Instr
module O = Isa.Operand
module R = Isa.Reg

type t = Isa.Program.t * (Cpu.Machine.t -> unit)

let default_secret = [| 2; 5; 2; 5; 3; 2; 5; 3; 2; 5; 2; 3; 5; 2; 5; 3 |]

let write_secret secret mach =
  Cpu.Machine.init_region mach ~base:Layout.victim_secret_base secret

(* Shared loop skeleton: walk the secret sequence forever (the executor
   restarts the program on halt), applying [access] to the secret value held
   in RAX. *)
let secret_walker ~name ~secret ~access =
  let b = B.create () in
  let len = Array.length secret in
  B.emit b (I.Mov (O.reg R.RSI, O.imm 0));
  B.label b "vloop";
  (* rax := secret[rsi] *)
  B.emit b
    (I.Mov
       ( O.reg R.RAX,
         O.mem ~index:R.RSI ~scale:8 ~disp:Layout.victim_secret_base () ));
  access b;
  (* A little private work, so the victim is not a pure attack mirror. *)
  B.emit b (I.Mov (O.reg R.RDX, O.mem ~index:R.RSI ~scale:8
                     ~disp:Layout.victim_data_base ()));
  B.emit b (I.Add (O.reg R.RDX, O.reg R.RAX));
  B.emit b (I.Mov (O.mem ~index:R.RSI ~scale:8 ~disp:Layout.victim_data_base (),
                   O.reg R.RDX));
  B.emit b (I.Inc (O.reg R.RSI));
  B.emit b (I.Cmp (O.reg R.RSI, O.imm len));
  B.emit b (I.Jcc (I.Ne, "vloop"));
  B.emit b I.Halt;
  ( B.to_program ~base:Layout.victim_prog_base ~name b,
    write_secret secret )

let shared_lib ?(secret = default_secret) () =
  secret_walker ~name:"victim-shared-lib" ~secret ~access:(fun b ->
      (* Touch the monitored shared-library line selected by the secret. *)
      B.emit b
        (I.Mov
           ( O.reg R.RBX,
             O.mem ~index:R.RAX ~scale:Layout.monitored_stride
               ~disp:Layout.shared_lib_base () )))

let private_sets ?(secret = default_secret) () =
  secret_walker ~name:"victim-private-sets" ~secret ~access:(fun b ->
      (* Private address congruent (same LLC set) to monitored line rax. *)
      B.emit b
        (I.Mov
           ( O.reg R.RBX,
             O.mem ~index:R.RAX ~scale:Layout.monitored_stride
               ~disp:Layout.victim_congruent_base () )))

let idle () =
  let b = B.create () in
  B.emit b (I.Mov (O.reg R.RCX, O.imm 64));
  B.label b "iloop";
  B.emit b (I.Add (O.reg R.RAX, O.imm 3));
  B.emit b (I.Imul (O.reg R.RAX, O.imm 5));
  B.emit b (I.Mov (O.mem ~disp:Layout.victim_data_base (), O.reg R.RAX));
  B.emit b (I.Dec (O.reg R.RCX));
  B.emit b (I.Cmp (O.reg R.RCX, O.imm 0));
  B.emit b (I.Jcc (I.Ne, "iloop"));
  B.emit b I.Halt;
  (B.to_program ~base:Layout.victim_prog_base ~name:"victim-idle" b, fun _ -> ())
