type t = Fr_family | Pp_family | Spectre_fr | Spectre_pp | Benign

let all = [ Fr_family; Pp_family; Spectre_fr; Spectre_pp; Benign ]
let attack_labels = [ Fr_family; Pp_family; Spectre_fr; Spectre_pp ]

let to_string = function
  | Fr_family -> "FR-F"
  | Pp_family -> "PP-F"
  | Spectre_fr -> "S-FR"
  | Spectre_pp -> "S-PP"
  | Benign -> "Benign"

let of_string = function
  | "FR-F" -> Some Fr_family
  | "PP-F" -> Some Pp_family
  | "S-FR" -> Some Spectre_fr
  | "S-PP" -> Some Spectre_pp
  | "Benign" -> Some Benign
  | _ -> None

let is_attack = function
  | Fr_family | Pp_family | Spectre_fr | Spectre_pp -> true
  | Benign -> false

let index = function
  | Fr_family -> 0 | Pp_family -> 1 | Spectre_fr -> 2 | Spectre_pp -> 3
  | Benign -> 4

let equal a b = index a = index b
let compare a b = Int.compare (index a) (index b)
let pp fmt t = Format.pp_print_string fmt (to_string t)
