(** Classification labels: the four attack families of Table II plus
    benign. *)

type t =
  | Fr_family   (** Flush+Reload family: FR, Flush+Flush, Evict+Reload *)
  | Pp_family   (** Prime+Probe family *)
  | Spectre_fr  (** Spectre-like variants of Flush+Reload *)
  | Spectre_pp  (** Spectre-like variants of Prime+Probe *)
  | Benign

val all : t list
val attack_labels : t list
(** The four attack families, without [Benign]. *)

val to_string : t -> string
(** Table II's abbreviations: ["FR-F"], ["PP-F"], ["S-FR"], ["S-PP"],
    ["Benign"]. *)

val of_string : string -> t option
val is_attack : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
