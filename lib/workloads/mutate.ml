module I = Isa.Instr
module O = Isa.Operand
module R = Isa.Reg
module P = Isa.Program
module Rng = Sutil.Rng

type intensity = {
  rename_regs : bool;
  junk_per_100 : int;
  substitute_prob : float;
  swap_prob : float;
}

let default_intensity =
  { rename_regs = true; junk_per_100 = 8; substitute_prob = 0.3; swap_prob = 0.2 }

let light =
  { rename_regs = false; junk_per_100 = 3; substitute_prob = 0.15; swap_prob = 0.1 }

let heavy =
  { rename_regs = true; junk_per_100 = 18; substitute_prob = 0.5; swap_prob = 0.35 }

let in_timing (it : P.item) = List.mem Attacks.timing_tag it.P.item_tags

(* ---- register renaming -------------------------------------------------- *)

let map_reg perm r = try List.assoc r perm with Not_found -> r

let map_operand perm = function
  | O.Imm i -> O.Imm i
  | O.Reg r -> O.Reg (map_reg perm r)
  | O.Mem m ->
    O.Mem
      {
        m with
        O.base = Option.map (map_reg perm) m.O.base;
        O.index = Option.map (map_reg perm) m.O.index;
      }

let map_instr perm ins =
  let f = map_operand perm in
  let fr = map_reg perm in
  match ins with
  | I.Mov (a, b) -> I.Mov (f a, f b)
  | I.Lea (r, m) -> I.Lea (fr r, f m)
  | I.Add (a, b) -> I.Add (f a, f b)
  | I.Sub (a, b) -> I.Sub (f a, f b)
  | I.Imul (a, b) -> I.Imul (f a, f b)
  | I.Xor (a, b) -> I.Xor (f a, f b)
  | I.And (a, b) -> I.And (f a, f b)
  | I.Or (a, b) -> I.Or (f a, f b)
  | I.Shl (a, n) -> I.Shl (f a, n)
  | I.Shr (a, n) -> I.Shr (f a, n)
  | I.Inc a -> I.Inc (f a)
  | I.Dec a -> I.Dec (f a)
  | I.Cmp (a, b) -> I.Cmp (f a, f b)
  | I.Test (a, b) -> I.Test (f a, f b)
  | I.Push a -> I.Push (f a)
  | I.Pop r -> I.Pop (fr r)
  | I.Clflush m -> I.Clflush (f m)
  | I.Prefetch m -> I.Prefetch (f m)
  | I.Jmp _ | I.Jcc _ | I.Call _ | I.Ret | I.Mfence | I.Lfence | I.Cpuid
  | I.Rdtsc | I.Rdtscp | I.Nop | I.Halt -> ins

let used_regs items =
  List.fold_left
    (fun acc (it : P.item) ->
      I.regs_read it.P.ins @ I.regs_written it.P.ins @ acc)
    [] items
  |> List.sort_uniq R.compare

(* Permute the used scratch registers (never RAX: rdtsc writes it
   physically; never RSP/RBP: stack anchors). *)
let renaming_permutation rng items =
  let renamable r =
    List.mem r R.scratch && not (R.equal r R.RAX)
  in
  let candidates = List.filter renamable (used_regs items) in
  let shuffled = Rng.shuffle rng candidates in
  List.combine candidates shuffled

let apply_rename rng items =
  let perm = renaming_permutation rng items in
  List.map
    (fun (it : P.item) -> { it with P.ins = map_instr perm it.P.ins })
    items

(* ---- flag-safe junk insertion ------------------------------------------- *)

let free_regs items =
  let used = used_regs items in
  List.filter
    (fun r ->
      (not (List.mem r used))
      && (not (R.equal r R.RAX))
      && List.mem r R.scratch)
    R.scratch

let junk_instrs rng free =
  match free with
  | [] -> [ I.Nop ]
  | _ -> (
    let r = Rng.choose rng free in
    match Rng.int rng 5 with
    | 0 -> [ I.Nop ]
    | 1 -> [ I.Mov (O.reg r, O.imm (Rng.int rng 1024)) ]
    | 2 -> [ I.Lea (r, O.mem ~base:r ~disp:(Rng.int rng 64) ()) ]
    | 3 -> [ I.Push (O.reg r); I.Pop r ]
    | _ ->
      let r2 = Rng.choose rng free in
      [ I.Mov (O.reg r, O.reg r2) ])

(* Insertion before item [i] is allowed unless it would land strictly inside
   a timing window (both neighbours tagged). *)
let may_insert_at prev_opt (cur : P.item) =
  match prev_opt with
  | Some prev -> not (in_timing prev && in_timing cur)
  | None -> true

let insert_junk rng intensity items =
  let n = List.length items in
  let budget = max 0 (n * intensity.junk_per_100 / 100) in
  if budget = 0 then items
  else begin
    let free = free_regs items in
    let prob = float_of_int budget /. float_of_int n in
    let rec go prev = function
      | [] -> []
      | it :: rest ->
        let here =
          if may_insert_at prev it && Rng.chance rng prob then
            List.map
              (fun j -> { P.labels = []; ins = j; item_tags = [] })
              (junk_instrs rng free)
          else []
        in
        (* Junk goes before [it]'s instruction but after its labels, so
           branch targets still reach the original code; simpler and equally
           correct: attach the labels to the first inserted junk item. *)
        (match here with
        | [] -> it :: go (Some it) rest
        | first :: more ->
          { first with P.labels = it.P.labels }
          :: more
          @ ({ it with P.labels = [] } :: go (Some it) rest))
    in
    go None items
  end

(* ---- instruction substitution ------------------------------------------- *)

(* Equivalences that preserve the destination value; flag effects differ but
   are dead by the cmp-before-jcc convention, which [eligible] enforces by
   refusing to rewrite an instruction immediately preceding a Jcc. *)
let substitute rng ins =
  match ins with
  | I.Inc a -> Some (I.Add (a, O.imm 1))
  | I.Dec a -> Some (I.Sub (a, O.imm 1))
  | I.Add (a, O.Imm k) when Rng.bool rng -> Some (I.Sub (a, O.imm (-k)))
  | I.Mov (O.Reg r, O.Imm 0) when Rng.bool rng ->
    Some (I.Xor (O.reg r, O.reg r))
  | I.Shl (a, k) when k <= 8 && Rng.bool rng ->
    Some (I.Imul (a, O.imm (1 lsl k)))
  | _ -> None

let apply_substitutions rng intensity items =
  let rec go = function
    | [] -> []
    | [ it ] -> [ it ]
    | it :: (next :: _ as rest) ->
      let it' =
        if
          (not (in_timing it))
          && (not (I.is_cond_branch next.P.ins))
          && Rng.chance rng intensity.substitute_prob
        then
          match substitute rng it.P.ins with
          | Some ins' -> { it with P.ins = ins' }
          | None -> it
        else it
      in
      it' :: go rest
  in
  go items

(* ---- adjacent independent swaps ------------------------------------------ *)

let independent a b =
  let inter xs ys = List.exists (fun x -> List.mem x ys) xs in
  let ra = I.regs_read a and wa = I.regs_written a in
  let rb = I.regs_read b and wb = I.regs_written b in
  (not (inter wa rb)) && (not (inter wb ra)) && not (inter wa wb)

let touches_memory ins = I.reads_memory ins || I.writes_memory ins

let swappable (a : P.item) (b : P.item) after =
  let ia = a.P.ins and ib = b.P.ins in
  (not (I.is_branch ia)) && (not (I.is_branch ib))
  && b.P.labels = []
  && (not (in_timing a)) && (not (in_timing b))
  && (not (touches_memory ia && touches_memory ib))
  && independent ia ib
  (* Keep the flag-producer adjacent to a following Jcc. *)
  && (not
        ((I.writes_flags ia || I.writes_flags ib)
        && match after with Some n -> I.is_cond_branch n.P.ins | None -> false))
  (* Cmp/Test exist only to set flags for the next branch; never move them. *)
  && (match ia with I.Cmp _ | I.Test _ -> false | _ -> true)
  && (match ib with I.Cmp _ | I.Test _ -> false | _ -> true)

let apply_swaps rng intensity items =
  let rec go = function
    | a :: b :: rest when
        swappable a b (match rest with x :: _ -> Some x | [] -> None)
        && Rng.chance rng intensity.swap_prob ->
      (* Swap instruction payloads but keep label anchoring positions. *)
      { a with P.ins = b.P.ins; item_tags = b.P.item_tags }
      :: { b with P.ins = a.P.ins; item_tags = a.P.item_tags }
      :: go rest
    | x :: rest -> x :: go rest
    | [] -> []
  in
  go items

(* ---- driver -------------------------------------------------------------- *)

let mutate ?(intensity = default_intensity) ~rng ~name prog =
  let items = P.deconstruct prog in
  let items = if intensity.rename_regs then apply_rename rng items else items in
  let items = apply_substitutions rng intensity items in
  let items = apply_swaps rng intensity items in
  let items = insert_junk rng intensity items in
  P.reconstruct ~base:(P.base prog) ~name items
