(** Dataset assembly — Tables II and III.

    Attack samples are built by (1) instantiating a base PoC of the family
    with rng-varied round counts, (2) splicing small benign harness kernels
    before and after the attack body (real PoC binaries carry plenty of
    attack-irrelevant code), and (3) applying semantics-preserving mutation —
    mirroring the paper's mutate_cpp expansion to 400 samples per type.
    Obfuscated variants additionally run the polymorphic obfuscator (E4). *)

type sample = {
  name : string;
  label : Label.t;
  program : Isa.Program.t;
  init : Cpu.Machine.t -> unit;
  victim : Victim.t option;
  settings : Cpu.Exec.settings option;
    (** executor settings the sample needs (defaults when [None]) *)
}

val of_spec : Attacks.spec -> sample
(** A base PoC as a bare sample (no harness, no mutation). *)

val base_samples : unit -> sample list
(** All collected PoCs of Table II, bare. *)

val with_harness : rng:Sutil.Rng.t -> sample -> sample
(** Splice benign kernels around the sample's program. *)

val mutated_attacks :
  rng:Sutil.Rng.t -> count:int -> Label.t -> sample list
(** [count] mutated, harnessed variants of the family's base PoCs.
    @raise Invalid_argument on [Label.Benign]. *)

val obfuscated_attacks :
  rng:Sutil.Rng.t -> count:int -> Label.t -> sample list
(** Obfuscated variants (E4): mutated samples run through
    {!Obfuscate.obfuscate}. *)

val benign_samples : rng:Sutil.Rng.t -> count:int -> sample list
(** Benign dataset (Table III), cycling through the four categories with the
    paper's proportions (LeetCode-heavy), lightly mutated for diversity. *)

val attack_dataset :
  rng:Sutil.Rng.t -> per_family:int -> (Label.t * sample list) list
(** The full attack dataset: every attack family with [per_family] mutated
    samples each. *)

val run :
  ?settings:Cpu.Exec.settings -> ?hierarchy:Cache.Hierarchy.t -> sample ->
  Cpu.Exec.result
(** Execute a sample with its init and victim — the runtime data-collection
    step of the pipeline.  [hierarchy] overrides the default cache hierarchy
    (replacement-policy sweeps). *)
