module B = Isa.Builder
module I = Isa.Instr
module O = Isa.Operand
module R = Isa.Reg

type style = Iaik | Mastik | Nepoche | Jzhang | Idea | Good | Classic

let style_name = function
  | Iaik -> "IAIK"
  | Mastik -> "Mastik"
  | Nepoche -> "Nepoche"
  | Jzhang -> "Jzhang"
  | Idea -> "Idea"
  | Good -> "Good"
  | Classic -> "Classic"

type spec = {
  name : string;
  label : Label.t;
  program : Isa.Program.t;
  init : Cpu.Machine.t -> unit;
  victim : Victim.t option;
  settings : Cpu.Exec.settings option;
      (* per-attack executor settings (e.g. Meltdown's protected range) *)
}

let timing_tag = "timing"

(* Thresholds derived from the Timing/Hierarchy model: a timed reload costs
   39 + load-latency cycles (L1 43, LLC 81, DRAM 239); a timed clflush costs
   39 + {14 cached | 6 uncached}. *)
let reload_threshold = 150
let flush_timing_threshold = 49
let probe_set_threshold = 1400

let lines = Layout.monitored_lines
let llc_ways = Cache.Config.llc.Cache.Config.ways
let llc_span = Cache.Config.llc.Cache.Config.sets * 64 (* bytes per LLC way *)

let results = Layout.attacker_results_base

(* -- small emission helpers ---------------------------------------------- *)

(* [marked] tags the loop body and control (the cache-operating basic block)
   with the attack ground-truth tag; the init mov stays untagged, matching
   what the paper's manual marking counts as an attack-relevant BB. *)
let counted_loop ?(marked = false) b ~reg ~count ~stem body =
  let l = B.fresh_label b stem in
  B.emit b (I.Mov (O.reg reg, O.imm 0));
  B.label b l;
  let rest () =
    body ();
    B.emit b (I.Inc (O.reg reg));
    B.emit b (I.Cmp (O.reg reg, O.imm count));
    B.emit b (I.Jcc (I.Ne, l))
  in
  if marked then B.mark_attack b rest else rest ()

let delay b ~reg n =
  let l = B.fresh_label b "wait" in
  B.emit b (I.Mov (O.reg reg, O.imm n));
  B.label b l;
  B.emit b (I.Dec (O.reg reg));
  B.emit b (I.Cmp (O.reg reg, O.imm 0));
  B.emit b (I.Jcc (I.Ne, l))

let round_loop b ~reg ~rounds body =
  let l = B.fresh_label b "round" in
  B.emit b (I.Mov (O.reg reg, O.imm rounds));
  B.label b l;
  body ();
  B.emit b (I.Dec (O.reg reg));
  B.emit b (I.Cmp (O.reg reg, O.imm 0));
  B.emit b (I.Jcc (I.Ne, l))

(* Timed window: rdtsc; t0 := rax; body; rdtscp; rax := rax - t0.  Everything
   inside is tagged [timing] so mutation/obfuscation keep out. *)
let measure b ~t0 body =
  B.with_tag b timing_tag (fun () ->
      (* The fence keeps mispredicted-path run-ahead (e.g. from the previous
         iteration's threshold branch) from touching the timed line early —
         the same reason real PoCs fence before rdtsc. *)
      B.emit b I.Lfence;
      B.emit b I.Rdtsc;
      B.emit b (I.Mov (O.reg t0, O.reg R.RAX));
      body ();
      B.emit b I.Rdtscp;
      B.emit b (I.Sub (O.reg R.RAX, O.reg t0)))

(* After [measure], RAX holds the elapsed cycles; record a hit counter when
   below [threshold] (reload-style) at results[idx_reg].  The recording is
   branchless — (delta - threshold)'s sign bit becomes the 0/1 increment —
   as careful real PoCs do to keep the threshold decision out of the branch
   predictor.  It also keeps each probe iteration a single basic block. *)
let record_if_fast b ~threshold ~idx_reg =
  B.emit b (I.Sub (O.reg R.RAX, O.imm threshold));
  B.emit b (I.Shr (O.reg R.RAX, 62));
  B.emit b (I.Add (O.mem ~index:idx_reg ~scale:8 ~disp:results (), O.reg R.RAX))

(* Record a hit when the elapsed time is at least [threshold]
   (Flush+Flush-style: slow clflush means the line was cached). *)
let record_if_slow b ~threshold ~idx_reg =
  B.emit b (I.Sub (O.reg R.RAX, O.imm threshold));
  B.emit b (I.Shr (O.reg R.RAX, 62));
  B.emit b (I.Xor (O.reg R.RAX, O.imm 1));
  B.emit b (I.Add (O.mem ~index:idx_reg ~scale:8 ~disp:results (), O.reg R.RAX))

(* Indexed reload phase over [entries] lines of stride 4096 at [base]; the
   whole loop body (timed load + branchless record + control) is one tagged
   basic block. *)
let indexed_reload b ~entries ~base =
  counted_loop ~marked:true b ~reg:R.RSI ~count:entries ~stem:"reload"
    (fun () ->
      measure b ~t0:R.R8 (fun () ->
          B.emit b
            (I.Mov
               ( O.reg R.R10,
                 O.mem ~index:R.RSI ~scale:Layout.monitored_stride ~disp:base
                   () )));
      record_if_fast b ~threshold:reload_threshold ~idx_reg:R.RSI)

(* Indexed flush phase over [entries] lines at [base]. *)
let indexed_flush b ~entries ~base =
  counted_loop ~marked:true b ~reg:R.RSI ~count:entries ~stem:"flush"
    (fun () ->
      B.emit b
        (I.Clflush
           (O.mem ~index:R.RSI ~scale:Layout.monitored_stride ~disp:base ())))

(* -- Flush+Reload --------------------------------------------------------- *)

let fr_iaik ~rounds =
  let b = B.create () in
  round_loop b ~reg:R.RDI ~rounds (fun () ->
      indexed_flush b ~entries:lines ~base:Layout.shared_lib_base;
      delay b ~reg:R.RCX 60;
      indexed_reload b ~entries:lines ~base:Layout.shared_lib_base);
  B.emit b I.Halt;
  B.to_program ~name:"FR-IAIK" b

let fr_mastik ~rounds =
  let b = B.create () in
  let limit = Layout.shared_lib_base + (lines * Layout.monitored_stride) in
  round_loop b ~reg:R.RDI ~rounds (fun () ->
      (* Pointer-walking flush. *)
      (let l = B.fresh_label b "flushp" in
       B.emit b (I.Mov (O.reg R.R10, O.imm Layout.shared_lib_base));
       B.label b l;
       B.mark_attack b (fun () ->
           B.emit b (I.Clflush (O.mem ~base:R.R10 ()));
           B.emit b (I.Add (O.reg R.R10, O.imm Layout.monitored_stride));
           B.emit b (I.Cmp (O.reg R.R10, O.imm limit));
           B.emit b (I.Jcc (I.Ne, l))));
      delay b ~reg:R.RCX 72;
      (* Pointer-walking reload with a serializing lfence per probe. *)
      (let l = B.fresh_label b "reloadp" in
       B.emit b (I.Mov (O.reg R.R10, O.imm Layout.shared_lib_base));
       B.emit b (I.Mov (O.reg R.RSI, O.imm 0));
       B.label b l;
       B.mark_attack b (fun () ->
           B.emit b I.Lfence;
           measure b ~t0:R.R8 (fun () ->
               B.emit b (I.Mov (O.reg R.R11, O.mem ~base:R.R10 ())));
           record_if_fast b ~threshold:reload_threshold ~idx_reg:R.RSI;
           B.emit b (I.Add (O.reg R.R10, O.imm Layout.monitored_stride));
           B.emit b (I.Inc (O.reg R.RSI));
           B.emit b (I.Cmp (O.reg R.RSI, O.imm lines));
           B.emit b (I.Jcc (I.Ne, l)))));
  B.emit b I.Halt;
  B.to_program ~name:"FR-Mastik" b

let fr_nepoche ~rounds =
  let b = B.create () in
  let table = Layout.attacker_table_base in
  round_loop b ~reg:R.RDI ~rounds (fun () ->
      (* Table-indirect flush: addresses come from memory, not immediates. *)
      counted_loop ~marked:true b ~reg:R.RSI ~count:lines ~stem:"flusht"
        (fun () ->
          B.emit b
            (I.Mov (O.reg R.R10, O.mem ~index:R.RSI ~scale:8 ~disp:table ()));
          B.emit b (I.Clflush (O.mem ~base:R.R10 ())));
      delay b ~reg:R.RCX 60;
      (* Table-indirect reload, walking entries in descending order. *)
      (let l = B.fresh_label b "reloadt" in
       B.emit b (I.Mov (O.reg R.RSI, O.imm (lines - 1)));
       B.label b l;
       B.mark_attack b (fun () ->
           B.emit b
             (I.Mov (O.reg R.R10, O.mem ~index:R.RSI ~scale:8 ~disp:table ()));
           measure b ~t0:R.R8 (fun () ->
               B.emit b (I.Mov (O.reg R.R11, O.mem ~base:R.R10 ())));
           record_if_fast b ~threshold:reload_threshold ~idx_reg:R.RSI;
           B.emit b (I.Dec (O.reg R.RSI));
           B.emit b (I.Cmp (O.reg R.RSI, O.imm 0));
           B.emit b (I.Jcc (I.Ge, l)))));
  B.emit b I.Halt;
  B.to_program ~name:"FR-Nepoche" b

let fr_init mach =
  (* The Nepoche table of monitored addresses; harmless for other styles. *)
  Cpu.Machine.init_region mach ~base:Layout.attacker_table_base
    (Array.init lines Layout.monitored_addr)

let flush_reload ?(rounds = 16) ~style () =
  let program =
    match style with
    | Mastik -> fr_mastik ~rounds
    | Nepoche -> fr_nepoche ~rounds
    | Iaik | Jzhang | Idea | Good | Classic -> fr_iaik ~rounds
  in
  {
    name = Isa.Program.name program;
    label = Label.Fr_family;
    program;
    init = fr_init;
    victim = Some (Victim.shared_lib ());
    settings = None;
  }

(* -- Flush+Flush ---------------------------------------------------------- *)

let flush_flush ?(rounds = 16) () =
  let b = B.create () in
  round_loop b ~reg:R.RDI ~rounds (fun () ->
      (* Reset: ensure all monitored lines start uncached. *)
      indexed_flush b ~entries:lines ~base:Layout.shared_lib_base;
      delay b ~reg:R.RCX 60;
      (* Probe by timing the clflush itself. *)
      counted_loop ~marked:true b ~reg:R.RSI ~count:lines ~stem:"ffprobe"
        (fun () ->
          measure b ~t0:R.R8 (fun () ->
              B.emit b
                (I.Clflush
                   (O.mem ~index:R.RSI ~scale:Layout.monitored_stride
                      ~disp:Layout.shared_lib_base ())));
          record_if_slow b ~threshold:flush_timing_threshold ~idx_reg:R.RSI));
  B.emit b I.Halt;
  let program = B.to_program ~name:"FF-IAIK" b in
  {
    name = "FF-IAIK";
    label = Label.Fr_family;
    program;
    init = fr_init;
    victim = Some (Victim.shared_lib ());
    settings = None;
  }

(* -- Evict+Reload --------------------------------------------------------- *)

(* Eviction-set walk: for line k, way j, the congruent private address is
   evict_buf_base + k*4096 + j*llc_span. *)
let evict_set_walk b ~set_reg ~way_reg =
  B.emit b
    (I.Lea
       ( R.R10,
         O.mem ~index:set_reg ~scale:Layout.monitored_stride
           ~disp:Layout.evict_buf_base () ));
  counted_loop ~marked:true b ~reg:way_reg ~count:llc_ways ~stem:"way"
    (fun () ->
      (* The way index is masked so that mispredicted run-ahead past the loop
         exit wraps onto an already-present line instead of inserting a 17th
         congruent line that would evict the set just primed (real attacks
         use pointer-chased eviction sets for the same reason). *)
      B.emit b (I.Mov (O.reg R.R12, O.reg way_reg));
      B.emit b (I.And (O.reg R.R12, O.imm (llc_ways - 1)));
      B.emit b
        (I.Mov (O.reg R.R11, O.mem ~base:R.R10 ~index:R.R12 ~scale:llc_span ())))

let evict_reload ?(rounds = 10) () =
  let b = B.create () in
  round_loop b ~reg:R.RDI ~rounds (fun () ->
      (* Evict phase: fill each monitored line's LLC set with private data. *)
      counted_loop b ~reg:R.RSI ~count:lines ~stem:"evict" (fun () ->
          evict_set_walk b ~set_reg:R.RSI ~way_reg:R.RBX);
      delay b ~reg:R.RCX 60;
      indexed_reload b ~entries:lines ~base:Layout.shared_lib_base);
  B.emit b I.Halt;
  let program = B.to_program ~name:"ER-IAIK" b in
  {
    name = "ER-IAIK";
    label = Label.Fr_family;
    program;
    init = fr_init;
    victim = Some (Victim.shared_lib ());
    settings = None;
  }

(* -- Prime+Probe ---------------------------------------------------------- *)

(* Timed probe of one set: walk its ways inside a single rdtsc window and
   accumulate the elapsed time into results[set]. *)
let timed_probe_accumulate b ~set_reg ~way_reg =
  B.emit b
    (I.Lea
       ( R.R10,
         O.mem ~index:set_reg ~scale:Layout.monitored_stride
           ~disp:Layout.evict_buf_base () ));
  measure b ~t0:R.R8 (fun () ->
      counted_loop ~marked:true b ~reg:way_reg ~count:llc_ways
        ~stem:"probe_way" (fun () ->
          B.emit b (I.Mov (O.reg R.R12, O.reg way_reg));
          B.emit b (I.And (O.reg R.R12, O.imm (llc_ways - 1)));
          B.emit b
            (I.Mov (O.reg R.R11, O.mem ~base:R.R10 ~index:R.R12 ~scale:llc_span ()))));
  B.emit b
    (I.Add (O.mem ~index:set_reg ~scale:8 ~disp:results (), O.reg R.RAX))

let pp_iaik ~rounds =
  let b = B.create () in
  round_loop b ~reg:R.RDI ~rounds (fun () ->
      counted_loop b ~reg:R.RSI ~count:lines ~stem:"prime" (fun () ->
          evict_set_walk b ~set_reg:R.RSI ~way_reg:R.RBX);
      delay b ~reg:R.RCX 72;
      counted_loop b ~reg:R.RSI ~count:lines ~stem:"probe" (fun () ->
          timed_probe_accumulate b ~set_reg:R.RSI ~way_reg:R.RBX));
  B.emit b I.Halt;
  B.to_program ~name:"PP-IAIK" b

let pp_jzhang ~rounds =
  let b = B.create () in
  round_loop b ~reg:R.RDI ~rounds (fun () ->
      (* Ways-outer zig-zag prime; both indices masked so run-ahead wraps
         onto already-present lines. *)
      counted_loop b ~reg:R.RBX ~count:llc_ways ~stem:"primew" (fun () ->
          B.emit b (I.Mov (O.reg R.R12, O.reg R.RBX));
          B.emit b (I.And (O.reg R.R12, O.imm (llc_ways - 1)));
          B.emit b
            (I.Lea
               ( R.R10,
                 O.mem ~index:R.R12 ~scale:llc_span
                   ~disp:Layout.evict_buf_base () ));
          counted_loop ~marked:true b ~reg:R.RSI ~count:lines ~stem:"primes"
            (fun () ->
              B.emit b (I.Mov (O.reg R.R14, O.reg R.RSI));
              B.emit b (I.And (O.reg R.R14, O.imm (lines - 1)));
              B.emit b
                (I.Mov
                   ( O.reg R.R11,
                     O.mem ~base:R.R10 ~index:R.R14
                       ~scale:Layout.monitored_stride () ))));
      B.emit b I.Mfence;
      delay b ~reg:R.RCX 72;
      (* Probe sets in descending order. *)
      (let l = B.fresh_label b "probed" in
       B.emit b (I.Mov (O.reg R.RSI, O.imm (lines - 1)));
       B.label b l;
       timed_probe_accumulate b ~set_reg:R.RSI ~way_reg:R.RBX;
       B.emit b (I.Dec (O.reg R.RSI));
       B.emit b (I.Cmp (O.reg R.RSI, O.imm 0));
       B.emit b (I.Jcc (I.Ge, l))));
  B.emit b I.Halt;
  B.to_program ~name:"PP-Jzhang" b

let prime_probe ?(rounds = 10) ~style () =
  let program =
    match style with
    | Jzhang -> pp_jzhang ~rounds
    | Iaik | Mastik | Nepoche | Idea | Good | Classic -> pp_iaik ~rounds
  in
  {
    name = Isa.Program.name program;
    label = Label.Pp_family;
    program;
    init = (fun _ -> ());
    victim = Some (Victim.private_sets ());
    settings = None;
  }

(* -- Spectre variants ------------------------------------------------------ *)

let spectre_mal_idx = Layout.spectre_secret_addr - Layout.spectre_array1_base
let spectre_array1_len = 4

let spectre_init ~secret mach =
  Cpu.Machine.store mach Layout.spectre_array1_size_addr spectre_array1_len;
  (* In-bounds entries all read 0, so training calls architecturally touch
     only probe line 0 — the known-training line the recovery step skips. *)
  for i = 0 to spectre_array1_len - 1 do
    Cpu.Machine.store mach (Layout.spectre_array1_base + i) 0
  done;
  Cpu.Machine.store mach Layout.spectre_secret_addr secret

(* The bounds-check-bypass gadget; the transient body is the attack's
   signature cache operation. *)
let emit_gadget b ~entry_label =
  let skip = B.fresh_label b "oob" in
  B.label b entry_label;
  B.mark_attack b (fun () ->
      B.emit b (I.Mov (O.reg R.R10, O.abs Layout.spectre_array1_size_addr));
      B.emit b (I.Cmp (O.reg R.RDI, O.reg R.R10));
      B.emit b (I.Jcc (I.Uge, skip));
      B.emit b
        (I.Mov
           (O.reg R.R11, O.mem ~index:R.RDI ~scale:1 ~disp:Layout.spectre_array1_base ()));
      B.emit b
        (I.Mov
           ( O.reg R.R12,
             O.mem ~index:R.R11 ~scale:Layout.monitored_stride
               ~disp:Layout.spectre_probe_base () )));
  B.label b skip;
  B.emit b I.Ret

let emit_training b ~gadget ~train_count =
  counted_loop b ~reg:R.R13 ~count:train_count ~stem:"train" (fun () ->
      B.emit b (I.Mov (O.reg R.RDI, O.reg R.R13));
      B.emit b (I.And (O.reg R.RDI, O.imm (spectre_array1_len - 1)));
      B.emit b (I.Call gadget))

let spectre_fr_prog ~rounds ~style =
  let entries = 16 in
  let b = B.create () in
  let gadget = B.fresh_label b "gadget" in
  let train_count = match style with Idea -> 4 | Good -> 8 | _ -> 6 in
  round_loop b ~reg:R.R15 ~rounds (fun () ->
      (match style with
      | Good ->
        (* Pointer-walking probe flush. *)
        let l = B.fresh_label b "sflush" in
        let limit =
          Layout.spectre_probe_base + (entries * Layout.monitored_stride)
        in
        B.emit b (I.Mov (O.reg R.R10, O.imm Layout.spectre_probe_base));
        B.label b l;
        B.mark_attack b (fun () ->
            B.emit b (I.Clflush (O.mem ~base:R.R10 ()));
            B.emit b (I.Add (O.reg R.R10, O.imm Layout.monitored_stride));
            B.emit b (I.Cmp (O.reg R.R10, O.imm limit));
            B.emit b (I.Jcc (I.Ne, l)))
      | _ -> indexed_flush b ~entries ~base:Layout.spectre_probe_base);
      emit_training b ~gadget ~train_count;
      (* The malicious call: out-of-bounds index pointing at the secret. *)
      B.emit b (I.Mov (O.reg R.RDI, O.imm spectre_mal_idx));
      B.emit b (I.Call gadget);
      indexed_reload b ~entries ~base:Layout.spectre_probe_base);
  B.emit b I.Halt;
  emit_gadget b ~entry_label:gadget;
  let name = Printf.sprintf "Spectre-FR-%s" (style_name style) in
  B.to_program ~name b

let spectre_fr ?(rounds = 12) ~style () =
  let program = spectre_fr_prog ~rounds ~style in
  {
    name = Isa.Program.name program;
    label = Label.Spectre_fr;
    program;
    init = spectre_init ~secret:11;
    victim = None;
    settings = None;
  }

let spectre_pp ?(rounds = 10) () =
  let entries = 8 in
  let b = B.create () in
  let gadget = B.fresh_label b "gadget" in
  round_loop b ~reg:R.R15 ~rounds (fun () ->
      (* Prime the probe array's LLC sets. *)
      counted_loop b ~reg:R.RSI ~count:entries ~stem:"sprime" (fun () ->
          evict_set_walk b ~set_reg:R.RSI ~way_reg:R.RBX);
      emit_training b ~gadget ~train_count:6;
      B.emit b (I.Mov (O.reg R.RDI, O.imm spectre_mal_idx));
      B.emit b (I.Call gadget);
      (* Probe each set; the transient touch evicted one primed line. *)
      counted_loop b ~reg:R.RSI ~count:entries ~stem:"sprobe" (fun () ->
          timed_probe_accumulate b ~set_reg:R.RSI ~way_reg:R.RBX));
  B.emit b I.Halt;
  emit_gadget b ~entry_label:gadget;
  let program = B.to_program ~name:"Spectre-PP-Classic" b in
  {
    name = "Spectre-PP-Classic";
    label = Label.Spectre_pp;
    program;
    init = spectre_init ~secret:5;
    victim = None;
    settings = None;
  }

(* -- Input-guarded attacks (the paper's Limitation section) ------------------

   Some attack programs only mount their attack under a specific input; if
   the trigger is absent during data collection, dynamic modeling sees only
   the benign cover behavior.  [with_input_guard] builds such a program; the
   pair of inits lets callers demonstrate both sides. *)

let guard_magic = 0xC0DE

let with_input_guard ?(magic = guard_magic) (spec : spec) =
  let module P = Isa.Program in
  let entry = "__guard_attack_entry" in
  let attack_items =
    match P.rename_labels (fun l -> "g__" ^ l) (P.deconstruct spec.program) with
    | first :: rest -> { first with P.labels = entry :: first.P.labels } :: rest
    | [] -> []
  in
  let item ?(labels = []) ins = { P.labels; ins; item_tags = [] } in
  let cover_loop = "__guard_cover" in
  let guard_items =
    [
      item (I.Mov (O.reg R.RAX, O.abs Layout.input_addr));
      item (I.Cmp (O.reg R.RAX, O.imm magic));
      item (I.Jcc (I.Eq, entry));
      (* benign cover behavior: a small checksum loop *)
      item (I.Mov (O.reg R.R9, O.imm 0));
      item (I.Mov (O.reg R.R8, O.imm 0));
      item ~labels:[ cover_loop ]
        (I.Add (O.reg R.R9, O.mem ~index:R.R8 ~scale:8
                  ~disp:(Layout.benign_data_base + 0x9000) ()));
      item (I.Imul (O.reg R.R9, O.imm 17));
      item (I.Inc (O.reg R.R8));
      item (I.Cmp (O.reg R.R8, O.imm 24));
      item (I.Jcc (I.Ne, cover_loop));
      item (I.Mov (O.abs (Layout.benign_data_base + 0x9800), O.reg R.R9));
      item I.Halt;
    ]
  in
  let program =
    P.reconstruct ~base:(P.base spec.program)
      ~name:(spec.name ^ "-guarded") (guard_items @ attack_items)
  in
  { spec with name = spec.name ^ "-guarded"; program }

let triggering_init ?(magic = guard_magic) base_init mach =
  base_init mach;
  Cpu.Machine.store mach Layout.input_addr magic

(* -- Meltdown extension ----------------------------------------------------

   Not part of the paper's Table II dataset; included as the "new transient
   attack family appears" scenario: an architectural load of protected
   kernel memory whose deferred fault lets dependent loads run transiently
   (no branch mistraining involved), recovered with a Flush+Reload probe. *)

let meltdown_settings =
  {
    Cpu.Exec.default_settings with
    Cpu.Exec.protected_range =
      Some (Layout.kernel_base, Layout.kernel_base + Layout.kernel_size);
  }

let meltdown_fr ?(rounds = 12) () =
  let entries = 16 in
  let b = B.create () in
  let round = B.fresh_label b "mdround" in
  B.emit b (I.Mov (O.reg R.R15, O.imm rounds));
  B.label b round;
  indexed_flush b ~entries ~base:Layout.spectre_probe_base;
  (* The faulting access and its transient dependent. *)
  B.mark_attack b (fun () ->
      B.emit b (I.Mov (O.reg R.R11, O.abs Layout.kernel_secret_addr));
      B.emit b
        (I.Mov
           ( O.reg R.R12,
             O.mem ~index:R.R11 ~scale:Layout.monitored_stride
               ~disp:Layout.spectre_probe_base () )));
  B.emit b I.Halt;
  (* the signal handler: recover via Flush+Reload and continue *)
  B.label b Cpu.Exec.fault_handler_label;
  indexed_reload b ~entries ~base:Layout.spectre_probe_base;
  B.emit b (I.Dec (O.reg R.R15));
  B.emit b (I.Cmp (O.reg R.R15, O.imm 0));
  B.emit b (I.Jcc (I.Ne, round));
  B.emit b I.Halt;
  let program = B.to_program ~name:"Meltdown-FR" b in
  {
    name = "Meltdown-FR";
    label = Label.Spectre_fr;
    program;
    init = (fun mach -> Cpu.Machine.store mach Layout.kernel_secret_addr 11);
    victim = None;
    settings = Some meltdown_settings;
  }

let base_pocs () =
  [
    flush_reload ~style:Iaik ();
    flush_reload ~style:Mastik ();
    flush_reload ~style:Nepoche ();
    flush_flush ();
    evict_reload ();
    prime_probe ~style:Iaik ();
    prime_probe ~style:Jzhang ();
    spectre_fr ~style:Idea ();
    spectre_fr ~style:Good ();
    spectre_fr ~style:Classic ();
    spectre_pp ();
  ]

let run_spec ?settings ?hierarchy ?victim_hierarchy spec =
  let settings = match settings with Some _ -> settings | None -> spec.settings in
  Cpu.Exec.run ?settings ?hierarchy ?victim_hierarchy ~init:spec.init
    ?victim:spec.victim spec.program

let run_spec_cross_core ?settings spec =
  let attacker_view, victim_view = Cache.Hierarchy.create_cross_core () in
  run_spec ?settings ~hierarchy:attacker_view ~victim_hierarchy:victim_view
    spec

let result_histogram (res : Cpu.Exec.result) =
  Array.init 16 (fun i -> Cpu.Machine.load res.Cpu.Exec.machine (results + (8 * i)))

let secret_guess res =
  let h = result_histogram res in
  let best = ref 0 in
  Array.iteri (fun i v -> if v > h.(!best) then best := i) h;
  !best
