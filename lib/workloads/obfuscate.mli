(** Polymorphic obfuscation — the stand-in for the paper's polymorph-lib
    (evaluation E4).

    Inserts junk that inflates the basic-block count without changing
    behaviour: NOP sleds, never-executed dead-code blocks parked behind
    unconditional jumps, and block splits ([jmp L; L:]).  The paper reports
    ~70% more BBs per obfuscated sample; {!obfuscate}'s default
    [bb_inflation] targets the same ratio. *)

val obfuscate :
  ?bb_inflation:float -> rng:Sutil.Rng.t -> name:string ->
  Isa.Program.t -> Isa.Program.t
(** [obfuscate ~rng ~name p] behaves exactly like [p] but with roughly
    [bb_inflation] (default [0.7]) times more basic blocks: every block
    terminator gets a NOP sled, a split, or a dead block in front of it.
    Timing windows (instructions tagged {!Attacks.timing_tag}) are left
    untouched so attack functionality survives, as the paper's obfuscated
    variants require. *)

val count_basic_blocks : Isa.Program.t -> int
(** Leader-based BB count (used by tests to check the inflation ratio). *)
