(** Memory-layout conventions shared by the generated attacker, victim and
    benign programs.

    Addresses are plain byte addresses in the sparse simulated memory; the
    constants only need to be mutually disjoint and LLC-set-diverse. *)

val shared_lib_base : int
(** Base of the "shared library" region that Flush+Reload-family attacks and
    their victims both touch. *)

val monitored_stride : int
(** Byte stride between monitored shared-library lines (page-sized, like the
    classic probes on table-based crypto). *)

val monitored_lines : int
(** Number of monitored shared-library lines (and the victim's secret-value
    alphabet size). *)

val monitored_addr : int -> int
(** [monitored_addr k] is the address of the [k]-th monitored line. *)

val evict_buf_base : int
(** Base of the attacker-private buffer used to build eviction sets
    (Evict+Reload) and prime sets (Prime+Probe). *)

val attacker_table_base : int
(** Attacker-private scratch table (address lists, result counters). *)

val attacker_results_base : int
(** Where attack programs store their per-line hit/miss verdicts. *)

val spectre_array1_base : int
(** Spectre bounds-checked array. *)

val spectre_array1_size_addr : int
(** Address holding array1's length (loaded before the bounds check). *)

val spectre_secret_addr : int
(** The out-of-bounds byte that Spectre PoCs exfiltrate. *)

val spectre_probe_base : int
(** Spectre probe array base; entry [v] lives at
    [spectre_probe_base + v * monitored_stride]. *)

val victim_data_base : int
(** Victim-private working memory. *)

val victim_secret_base : int
(** Victim's secret index sequence (drives its shared-library accesses). *)

val victim_congruent_base : int
(** Victim-private region whose entry [v] (stride {!monitored_stride}) maps
    to the same LLC set as [monitored_addr v] — the congruence Prime+Probe's
    victim relies on. *)

val benign_data_base : int
(** Scratch region for benign workloads. *)

val benign_data2_base : int
(** Second scratch region (matrices, output buffers). *)

val victim_prog_base : int
(** Code base address for victim programs (distinct from the default
    attacker code base). *)

val input_addr : int
(** Where guarded attack programs read their triggering "argv" word (see
    {!Attacks.with_input_guard}). *)

val kernel_base : int
(** Base of the protected "kernel" region used by the Meltdown extension
    (see {!Cpu.Exec.settings.protected_range}). *)

val kernel_size : int

val kernel_secret_addr : int
(** Where the Meltdown PoC's secret byte lives inside the kernel region. *)
