module I = Isa.Instr
module O = Isa.Operand
module R = Isa.Reg
module P = Isa.Program
module Rng = Sutil.Rng

let in_timing (it : P.item) = List.mem Attacks.timing_tag it.P.item_tags

let count_basic_blocks prog =
  let n = P.length prog in
  let leader = Array.make n false in
  leader.(0) <- true;
  Array.iteri
    (fun i ins ->
      (match I.branch_target ins with
      | Some l -> leader.(P.label_index prog l) <- true
      | None -> ());
      if I.is_branch ins && i + 1 < n then leader.(i + 1) <- true)
    (P.code prog);
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 leader

(* Dead code parked behind an unconditional jump: never executed, so its
   contents are unconstrained; stores target a scratch region anyway. *)
let dead_block_body rng =
  let r () = Rng.choose rng [ R.RBX; R.RCX; R.RDX; R.RSI; R.R9; R.R11 ] in
  let one () =
    match Rng.int rng 6 with
    | 0 -> I.Mov (O.reg (r ()), O.imm (Rng.int rng 4096))
    | 1 -> I.Add (O.reg (r ()), O.imm (Rng.int rng 256))
    | 2 -> I.Xor (O.reg (r ()), O.reg (r ()))
    | 3 -> I.Mov (O.abs (Layout.benign_data2_base + (8 * Rng.int rng 64)), O.reg (r ()))
    | 4 -> I.Imul (O.reg (r ()), O.imm (1 + Rng.int rng 7))
    | _ -> I.Nop
  in
  List.init (2 + Rng.int rng 4) (fun _ -> one ())

type insertion = Dead_block | Split | Nop_sled

let item ?(labels = []) ins = { P.labels; ins; item_tags = [] }

let make_insertion rng fresh kind =
  match kind with
  | Nop_sled -> List.init (1 + Rng.int rng 3) (fun _ -> item I.Nop)
  | Split ->
    let l = fresh "split" in
    [ item (I.Jmp l); item ~labels:[ l ] I.Nop ]
  | Dead_block ->
    let l = fresh "live" in
    item (I.Jmp l)
    :: (List.map item (dead_block_body rng) @ [ item ~labels:[ l ] I.Nop ])

(* Insertion before item [i] must not land strictly inside a timing window. *)
let may_insert_at prev_opt (cur : P.item) =
  match prev_opt with
  | Some prev -> not (in_timing prev && in_timing cur)
  | None -> true

(* Polymorphic engines transform {e every} code block, so junk goes in front
   of each block terminator (branch) rather than at random positions: a
   [structural_fraction] of blocks get a dead block or a split (each adds
   roughly two BBs — about +70% like the paper's variants), the rest get a
   NOP sled.  Inserting immediately before the branch is flag-safe because
   every inserted instruction ([jmp]/[nop] and never-executed dead code)
   leaves the flags alone. *)
let obfuscate ?(bb_inflation = 0.7) ~rng ~name prog =
  let items = P.deconstruct prog in
  let fresh_counter = ref 0 in
  let fresh stem =
    incr fresh_counter;
    Printf.sprintf "__obf_%s_%d" stem !fresh_counter
  in
  (* calibrated so the mean BB inflation over the PoC corpus lands near
     [bb_inflation] (insertions before timing-window branches are skipped,
     which discounts the nominal rate) *)
  let structural_fraction = bb_inflation *. 1.1 in
  let rec go prev = function
    | [] -> []
    | it :: rest ->
      let here =
        if I.is_branch it.P.ins && may_insert_at prev it && not (in_timing it)
        then
          let kind =
            if Rng.chance rng structural_fraction then
              if Rng.chance rng 0.55 then Dead_block else Split
            else Nop_sled
          in
          (* At least two junk instructions, so "tight loop" heuristics see
             every loop body grow. *)
          let ins = make_insertion rng fresh kind in
          if List.length ins >= 2 then ins else ins @ [ item I.Nop ]
        else []
      in
      (match here with
      | [] -> it :: go (Some it) rest
      | first :: more ->
        { first with P.labels = it.P.labels @ first.P.labels }
        :: more
        @ ({ it with P.labels = [] } :: go (Some it) rest))
  in
  let items = go None items in
  P.reconstruct ~base:(P.base prog) ~name items
