let shared_lib_base = 0x3000_0000
let monitored_stride = 4096
let monitored_lines = 8
let monitored_addr k = shared_lib_base + (k * monitored_stride)

let evict_buf_base = 0x1000_0000

(* Service regions carry a small set-index offset so they do not alias the
   monitored LLC sets (64*k), which would pollute Prime+Probe timings. *)
let attacker_table_base = 0x1100_0000 + (41 * 64)
let attacker_results_base = 0x1180_0000 + (33 * 64)

let spectre_array1_base = 0x1200_0000
let spectre_array1_size_addr = 0x1201_0000
let spectre_secret_addr = 0x1202_0000
let spectre_probe_base = 0x1300_0000

let victim_data_base = 0x2000_0000 + (19 * 64)
let victim_secret_base = 0x2100_0000 + (9 * 64)

(* Set-0 aligned: entry [v] maps to the same LLC set as monitored line [v]
   (what Prime+Probe's victim needs). *)
let victim_congruent_base = 0x2010_0000

let benign_data_base = 0x4000_0000
let benign_data2_base = 0x4800_0000

let victim_prog_base = 0x50_0000

let input_addr = 0x1100_0000 + (49 * 64)

let kernel_base = 0x7000_0000
let kernel_size = 0x1000
let kernel_secret_addr = kernel_base + 0x80
