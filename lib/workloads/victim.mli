(** Victim programs that co-run with the attacks.

    Each victim loops over a secret index sequence and performs
    secret-dependent memory accesses — the access pattern the attacks
    recover.  Victims are restarted by the executor when they halt, so they
    model continuously active processes. *)

type t = Isa.Program.t * (Cpu.Machine.t -> unit)
(** A victim program together with its memory initializer. *)

val default_secret : int array
(** The secret index sequence planted by the default initializers. *)

val shared_lib : ?secret:int array -> unit -> t
(** Victim for the Flush+Reload family: each iteration reads the next secret
    index [v] and loads the monitored shared-library line
    [Layout.monitored_addr v]. *)

val private_sets : ?secret:int array -> unit -> t
(** Victim for the Prime+Probe family: reads secret index [v] and loads a
    {e private} address that maps to the same LLC set as monitored line [v]
    (no shared memory, as Prime+Probe requires). *)

val idle : unit -> t
(** A victim that only does register arithmetic and touches one private
    line — background noise for benign-scenario runs. *)
