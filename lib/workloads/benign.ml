module B = Isa.Builder
module I = Isa.Instr
module O = Isa.Operand
module R = Isa.Reg
module Rng = Sutil.Rng

type gen = {
  name : string;
  category : string;
  program : Isa.Program.t;
  init : Cpu.Machine.t -> unit;
}

let data = Layout.benign_data_base
let data2 = Layout.benign_data2_base

let a_elem ?(base = data) idx_reg = O.mem ~index:idx_reg ~scale:8 ~disp:base ()

(* for (reg = 0; reg != count; reg++) body *)
let loop b ~reg ~count ~stem body =
  let l = B.fresh_label b stem in
  B.emit b (I.Mov (O.reg reg, O.imm 0));
  B.label b l;
  body ();
  B.emit b (I.Inc (O.reg reg));
  B.emit b (I.Cmp (O.reg reg, O.imm count));
  B.emit b (I.Jcc (I.Ne, l))

let random_array rng n bound = Array.init n (fun _ -> Rng.int rng bound)

let init_arrays regions mach =
  List.iter
    (fun (base, values) -> Cpu.Machine.init_region mach ~base values)
    regions

(* ---- LeetCode-style kernels ---------------------------------------------- *)

let bubble_sort rng =
  let n = Rng.in_range rng 24 48 in
  let passes = Rng.in_range rng 6 12 in
  let values = random_array rng n 10_000 in
  let b = B.create () in
  loop b ~reg:R.R8 ~count:passes ~stem:"pass" (fun () ->
      loop b ~reg:R.R9 ~count:(n - 1) ~stem:"scan" (fun () ->
          let noswap = B.fresh_label b "noswap" in
          B.emit b (I.Mov (O.reg R.RBX, a_elem R.R9));
          B.emit b (I.Mov (O.reg R.RCX, O.mem ~index:R.R9 ~scale:8 ~disp:(data + 8) ()));
          B.emit b (I.Cmp (O.reg R.RBX, O.reg R.RCX));
          B.emit b (I.Jcc (I.Le, noswap));
          B.emit b (I.Mov (a_elem R.R9, O.reg R.RCX));
          B.emit b (I.Mov (O.mem ~index:R.R9 ~scale:8 ~disp:(data + 8) (), O.reg R.RBX));
          B.label b noswap));
  B.emit b I.Halt;
  {
    name = Printf.sprintf "leetcode-bubble-%d" n;
    category = "LeetCode";
    program = B.to_program ~name:"bubble-sort" b;
    init = init_arrays [ (data, values) ];
  }

let binary_search rng =
  let n = Rng.in_range rng 64 256 in
  let queries = Rng.in_range rng 12 28 in
  let sorted = Array.init n (fun i -> i * 3) in
  let qs = random_array rng queries (n * 3) in
  let b = B.create () in
  (* for each query q: lo/hi binary search over sorted[] *)
  loop b ~reg:R.R8 ~count:queries ~stem:"query" (fun () ->
      let again = B.fresh_label b "bs" in
      let stop = B.fresh_label b "bs_done" in
      let hi_side = B.fresh_label b "hi" in
      B.emit b (I.Mov (O.reg R.RDX, a_elem ~base:data2 R.R8)); (* q *)
      B.emit b (I.Mov (O.reg R.RSI, O.imm 0)); (* lo *)
      B.emit b (I.Mov (O.reg R.RDI, O.imm n)); (* hi *)
      B.label b again;
      B.emit b (I.Cmp (O.reg R.RSI, O.reg R.RDI));
      B.emit b (I.Jcc (I.Ge, stop));
      (* mid = (lo + hi) / 2 *)
      B.emit b (I.Mov (O.reg R.RBX, O.reg R.RSI));
      B.emit b (I.Add (O.reg R.RBX, O.reg R.RDI));
      B.emit b (I.Shr (O.reg R.RBX, 1));
      B.emit b (I.Mov (O.reg R.RCX, a_elem R.RBX));
      B.emit b (I.Cmp (O.reg R.RCX, O.reg R.RDX));
      B.emit b (I.Jcc (I.Lt, hi_side));
      B.emit b (I.Mov (O.reg R.RDI, O.reg R.RBX));
      B.emit b (I.Jmp again);
      B.label b hi_side;
      B.emit b (I.Mov (O.reg R.RSI, O.reg R.RBX));
      B.emit b (I.Inc (O.reg R.RSI));
      B.emit b (I.Jmp again);
      B.label b stop);
  B.emit b I.Halt;
  {
    name = Printf.sprintf "leetcode-bsearch-%d" n;
    category = "LeetCode";
    program = B.to_program ~name:"binary-search" b;
    init = init_arrays [ (data, sorted); (data2, qs) ];
  }

let kadane rng =
  let n = Rng.in_range rng 96 256 in
  let values = Array.init n (fun _ -> Rng.in_range rng (-500) 500) in
  let b = B.create () in
  (* best (r10) / current (r11) max-subarray scan *)
  B.emit b (I.Mov (O.reg R.R10, O.imm 0));
  B.emit b (I.Mov (O.reg R.R11, O.imm 0));
  loop b ~reg:R.R8 ~count:n ~stem:"kadane" (fun () ->
      let keep = B.fresh_label b "keep" in
      let no_best = B.fresh_label b "nobest" in
      B.emit b (I.Add (O.reg R.R11, a_elem R.R8));
      B.emit b (I.Cmp (O.reg R.R11, O.imm 0));
      B.emit b (I.Jcc (I.Ge, keep));
      B.emit b (I.Mov (O.reg R.R11, O.imm 0));
      B.label b keep;
      B.emit b (I.Cmp (O.reg R.R11, O.reg R.R10));
      B.emit b (I.Jcc (I.Le, no_best));
      B.emit b (I.Mov (O.reg R.R10, O.reg R.R11));
      B.label b no_best);
  B.emit b (I.Mov (O.abs data2, O.reg R.R10));
  B.emit b I.Halt;
  {
    name = Printf.sprintf "leetcode-kadane-%d" n;
    category = "LeetCode";
    program = B.to_program ~name:"kadane" b;
    init = init_arrays [ (data, values) ];
  }

let two_sum rng =
  let n = Rng.in_range rng 24 48 in
  let values = random_array rng n 1000 in
  let target = Rng.int rng 2000 in
  let b = B.create () in
  B.emit b (I.Mov (O.reg R.R12, O.imm 0)); (* match count *)
  loop b ~reg:R.R8 ~count:n ~stem:"outer" (fun () ->
      B.emit b (I.Mov (O.reg R.RBX, a_elem R.R8));
      loop b ~reg:R.R9 ~count:n ~stem:"inner" (fun () ->
          let nomatch = B.fresh_label b "nomatch" in
          B.emit b (I.Mov (O.reg R.RCX, a_elem R.R9));
          B.emit b (I.Add (O.reg R.RCX, O.reg R.RBX));
          B.emit b (I.Cmp (O.reg R.RCX, O.imm target));
          B.emit b (I.Jcc (I.Ne, nomatch));
          B.emit b (I.Inc (O.reg R.R12));
          B.label b nomatch));
  B.emit b (I.Mov (O.abs data2, O.reg R.R12));
  B.emit b I.Halt;
  {
    name = Printf.sprintf "leetcode-twosum-%d" n;
    category = "LeetCode";
    program = B.to_program ~name:"two-sum" b;
    init = init_arrays [ (data, values) ];
  }

let hash_scatter rng =
  let m = Rng.in_range rng 128 384 in
  let mask = 255 in
  let b = B.create () in
  loop b ~reg:R.R8 ~count:m ~stem:"hash" (fun () ->
      B.emit b (I.Mov (O.reg R.RBX, O.reg R.R8));
      B.emit b (I.Imul (O.reg R.RBX, O.imm 2654435761));
      B.emit b (I.Shr (O.reg R.RBX, 8));
      B.emit b (I.And (O.reg R.RBX, O.imm mask));
      B.emit b (I.Mov (O.mem ~index:R.RBX ~scale:8 ~disp:data2 (), O.reg R.R8));
      (* chase: read back a neighbouring bucket *)
      B.emit b (I.Mov (O.reg R.RCX, O.mem ~index:R.RBX ~scale:8 ~disp:data2 ())));
  B.emit b I.Halt;
  {
    name = Printf.sprintf "leetcode-hash-%d" m;
    category = "LeetCode";
    program = B.to_program ~name:"hash-scatter" b;
    init = (fun _ -> ());
  }

(* ---- SPEC-style kernels --------------------------------------------------- *)

let stream rng =
  let n = Rng.in_range rng 192 512 in
  let av = random_array rng n 1000 in
  let bv = random_array rng n 1000 in
  let b = B.create () in
  loop b ~reg:R.R8 ~count:n ~stem:"stream" (fun () ->
      B.emit b (I.Mov (O.reg R.RBX, a_elem R.R8));
      B.emit b (I.Add (O.reg R.RBX, a_elem ~base:data2 R.R8));
      B.emit b
        (I.Mov (O.mem ~index:R.R8 ~scale:8 ~disp:(data2 + 0x8000) (), O.reg R.RBX)));
  (* reduce *)
  B.emit b (I.Mov (O.reg R.R10, O.imm 0));
  loop b ~reg:R.R8 ~count:n ~stem:"reduce" (fun () ->
      B.emit b (I.Add (O.reg R.R10, O.mem ~index:R.R8 ~scale:8 ~disp:(data2 + 0x8000) ())));
  B.emit b I.Halt;
  {
    name = Printf.sprintf "spec-stream-%d" n;
    category = "SPEC";
    program = B.to_program ~name:"stream" b;
    init = init_arrays [ (data, av); (data2, bv) ];
  }

let matmul rng =
  let n = Rng.in_range rng 6 10 in
  let av = random_array rng (n * n) 100 in
  let bv = random_array rng (n * n) 100 in
  let b = B.create () in
  loop b ~reg:R.R8 ~count:n ~stem:"mi" (fun () ->
      loop b ~reg:R.R9 ~count:n ~stem:"mj" (fun () ->
          B.emit b (I.Mov (O.reg R.R12, O.imm 0));
          loop b ~reg:R.R10 ~count:n ~stem:"mk" (fun () ->
              (* rbx = A[i*n+k]; rcx = B[k*n+j] *)
              B.emit b (I.Mov (O.reg R.RBX, O.reg R.R8));
              B.emit b (I.Imul (O.reg R.RBX, O.imm n));
              B.emit b (I.Add (O.reg R.RBX, O.reg R.R10));
              B.emit b (I.Mov (O.reg R.RBX, a_elem R.RBX));
              B.emit b (I.Mov (O.reg R.RCX, O.reg R.R10));
              B.emit b (I.Imul (O.reg R.RCX, O.imm n));
              B.emit b (I.Add (O.reg R.RCX, O.reg R.R9));
              B.emit b (I.Mov (O.reg R.RCX, a_elem ~base:data2 R.RCX));
              B.emit b (I.Imul (O.reg R.RBX, O.reg R.RCX));
              B.emit b (I.Add (O.reg R.R12, O.reg R.RBX)));
          (* C[i*n+j] = acc *)
          B.emit b (I.Mov (O.reg R.RCX, O.reg R.R8));
          B.emit b (I.Imul (O.reg R.RCX, O.imm n));
          B.emit b (I.Add (O.reg R.RCX, O.reg R.R9));
          B.emit b
            (I.Mov (O.mem ~index:R.RCX ~scale:8 ~disp:(data2 + 0x8000) (), O.reg R.R12))));
  B.emit b I.Halt;
  {
    name = Printf.sprintf "spec-matmul-%d" n;
    category = "SPEC";
    program = B.to_program ~name:"matmul" b;
    init = init_arrays [ (data, av); (data2, bv) ];
  }

let pointer_chase rng =
  let n = Rng.in_range rng 64 128 in
  let steps = Rng.in_range rng 200 600 in
  (* A random ring: next[i] holds the address of the next node. *)
  let perm = Array.init n (fun i -> i) in
  Rng.shuffle_arr rng perm;
  let next = Array.make n 0 in
  for i = 0 to n - 1 do
    next.(perm.(i)) <- data + (8 * perm.((i + 1) mod n))
  done;
  let b = B.create () in
  B.emit b (I.Mov (O.reg R.RBX, O.imm (data + (8 * perm.(0)))));
  loop b ~reg:R.R8 ~count:steps ~stem:"chase" (fun () ->
      B.emit b (I.Mov (O.reg R.RBX, O.mem ~base:R.RBX ())));
  B.emit b I.Halt;
  {
    name = Printf.sprintf "spec-chase-%d" n;
    category = "SPEC";
    program = B.to_program ~name:"pointer-chase" b;
    init = init_arrays [ (data, next) ];
  }

(* ---- Encryption-style kernels --------------------------------------------- *)

let aes_like rng =
  let rounds = Rng.in_range rng 4 8 in
  let table = Array.init 256 (fun i -> (i * 167) land 255) in
  let state = random_array rng 16 256 in
  let b = B.create () in
  (* T-table entries are cache-line spread (stride 64), like real AES
     T-tables: lookups produce data-dependent set accesses. *)
  loop b ~reg:R.R8 ~count:rounds ~stem:"round" (fun () ->
      loop b ~reg:R.R9 ~count:16 ~stem:"byte" (fun () ->
          B.emit b (I.Mov (O.reg R.RBX, a_elem ~base:data2 R.R9)); (* state[b] *)
          B.emit b (I.Add (O.reg R.RBX, O.reg R.R8));
          B.emit b (I.And (O.reg R.RBX, O.imm 255));
          B.emit b (I.Mov (O.reg R.RCX, O.mem ~index:R.RBX ~scale:64 ~disp:data ()));
          (* state[b] ^= T[..] *)
          B.emit b (I.Xor (O.reg R.RCX, a_elem ~base:data2 R.R9));
          B.emit b (I.And (O.reg R.RCX, O.imm 255));
          B.emit b (I.Mov (a_elem ~base:data2 R.R9, O.reg R.RCX))));
  B.emit b I.Halt;
  let init mach =
    (* line-spread table: entry i at data + i*64 *)
    Array.iteri (fun i v -> Cpu.Machine.store mach (data + (i * 64)) v) table;
    Cpu.Machine.init_region mach ~base:data2 state
  in
  {
    name = Printf.sprintf "crypto-aes-%d" rounds;
    category = "Encryption";
    program = B.to_program ~name:"aes-like" b;
    init;
  }

let modexp rng =
  let bits = 16 in
  let exponent = Rng.int rng 65536 in
  let base_v = 3 + Rng.int rng 1000 in
  let mask = 0x7FFF_FFFF in
  let b = B.create () in
  B.emit b (I.Mov (O.reg R.R10, O.imm 1)); (* result *)
  B.emit b (I.Mov (O.reg R.R11, O.imm base_v)); (* base *)
  for k = 0 to bits - 1 do
    let skip = B.fresh_label b "bit" in
    (* square *)
    B.emit b (I.Imul (O.reg R.R10, O.reg R.R10));
    B.emit b (I.And (O.reg R.R10, O.imm mask));
    (* exponent bit k (MSB first) *)
    B.emit b (I.Mov (O.reg R.RBX, O.imm exponent));
    B.emit b (I.Shr (O.reg R.RBX, bits - 1 - k));
    B.emit b (I.And (O.reg R.RBX, O.imm 1));
    B.emit b (I.Cmp (O.reg R.RBX, O.imm 1));
    B.emit b (I.Jcc (I.Ne, skip));
    B.emit b (I.Imul (O.reg R.R10, O.reg R.R11));
    B.emit b (I.And (O.reg R.R10, O.imm mask));
    B.label b skip
  done;
  B.emit b (I.Mov (O.abs data2, O.reg R.R10));
  B.emit b I.Halt;
  {
    name = Printf.sprintf "crypto-modexp-%x" exponent;
    category = "Encryption";
    program = B.to_program ~name:"modexp" b;
    init = (fun _ -> ());
  }

(* ---- Server-style kernels -------------------------------------------------- *)

let server_like rng =
  let reqs = Rng.in_range rng 48 128 in
  let buf = random_array rng reqs 256 in
  let b = B.create () in
  B.emit b (I.Mov (O.reg R.R12, O.imm 0)); (* checksum *)
  loop b ~reg:R.R8 ~count:reqs ~stem:"req" (fun () ->
      let low = B.fresh_label b "low" in
      let mid = B.fresh_label b "mid" in
      let out = B.fresh_label b "dispatched" in
      B.emit b (I.Mov (O.reg R.RBX, a_elem R.R8));
      B.emit b (I.Cmp (O.reg R.RBX, O.imm 85));
      B.emit b (I.Jcc (I.Lt, low));
      B.emit b (I.Cmp (O.reg R.RBX, O.imm 170));
      B.emit b (I.Jcc (I.Lt, mid));
      (* high: table lookup handler *)
      B.emit b (I.And (O.reg R.RBX, O.imm 63));
      B.emit b (I.Mov (O.reg R.RCX, O.mem ~index:R.RBX ~scale:8 ~disp:data2 ()));
      B.emit b (I.Add (O.reg R.R12, O.reg R.RCX));
      B.emit b (I.Jmp out);
      B.label b low;
      B.emit b (I.Add (O.reg R.R12, O.reg R.RBX));
      B.emit b (I.Jmp out);
      B.label b mid;
      B.emit b (I.Imul (O.reg R.RBX, O.imm 3));
      B.emit b (I.Add (O.reg R.R12, O.reg R.RBX));
      B.label b out;
      (* write response *)
      B.emit b
        (I.Mov (O.mem ~index:R.R8 ~scale:8 ~disp:(data2 + 0x8000) (), O.reg R.R12)));
  B.emit b I.Halt;
  {
    name = Printf.sprintf "server-dispatch-%d" reqs;
    category = "Server";
    program = B.to_program ~name:"server-like" b;
    init = init_arrays [ (data, buf); (data2, random_array rng 64 1000) ];
  }

let strops rng =
  let n = Rng.in_range rng 96 256 in
  let src = random_array rng n 256 in
  let b = B.create () in
  (* copy then compare *)
  loop b ~reg:R.R8 ~count:n ~stem:"copy" (fun () ->
      B.emit b (I.Mov (O.reg R.RBX, a_elem R.R8));
      B.emit b (I.Mov (a_elem ~base:data2 R.R8, O.reg R.RBX)));
  B.emit b (I.Mov (O.reg R.R12, O.imm 0));
  loop b ~reg:R.R8 ~count:n ~stem:"cmp" (fun () ->
      let same = B.fresh_label b "same" in
      B.emit b (I.Mov (O.reg R.RBX, a_elem R.R8));
      B.emit b (I.Cmp (O.reg R.RBX, a_elem ~base:data2 R.R8));
      B.emit b (I.Jcc (I.Eq, same));
      B.emit b (I.Inc (O.reg R.R12));
      B.label b same);
  B.emit b I.Halt;
  {
    name = Printf.sprintf "server-strops-%d" n;
    category = "Server";
    program = B.to_program ~name:"strops" b;
    init = init_arrays [ (data, src) ];
  }

let quicksort rng =
  (* Iterative quicksort with an explicit lo/hi work stack (push/pop), the
     classic LeetCode formulation. *)
  let n = Rng.in_range rng 24 48 in
  let values = random_array rng n 10_000 in
  let b = B.create () in
  let loop_top = B.fresh_label b "qs_loop" in
  let done_l = B.fresh_label b "qs_done" in
  let part_loop = B.fresh_label b "qs_part" in
  let no_swap = B.fresh_label b "qs_noswap" in
  let skip_push = B.fresh_label b "qs_nopush" in
  (* push initial range [0, n-1] *)
  B.emit b (I.Push (O.imm (n - 1)));
  B.emit b (I.Push (O.imm 0));
  B.emit b (I.Mov (O.reg R.R13, O.imm 1)); (* ranges on stack *)
  B.label b loop_top;
  B.emit b (I.Cmp (O.reg R.R13, O.imm 0));
  B.emit b (I.Jcc (I.Eq, done_l));
  B.emit b (I.Pop R.RSI); (* lo *)
  B.emit b (I.Pop R.RDI); (* hi *)
  B.emit b (I.Dec (O.reg R.R13));
  (* if lo >= hi continue *)
  B.emit b (I.Cmp (O.reg R.RSI, O.reg R.RDI));
  B.emit b (I.Jcc (I.Ge, loop_top));
  (* Lomuto partition with pivot a[hi]: i = lo-1; for j in lo..hi-1 *)
  B.emit b (I.Mov (O.reg R.RDX, a_elem R.RDI)); (* pivot *)
  B.emit b (I.Mov (O.reg R.R8, O.reg R.RSI));
  B.emit b (I.Dec (O.reg R.R8)); (* i *)
  B.emit b (I.Mov (O.reg R.R9, O.reg R.RSI)); (* j *)
  B.label b part_loop;
  B.emit b (I.Mov (O.reg R.RBX, a_elem R.R9));
  B.emit b (I.Cmp (O.reg R.RBX, O.reg R.RDX));
  B.emit b (I.Jcc (I.Gt, no_swap));
  B.emit b (I.Inc (O.reg R.R8));
  (* swap a[i], a[j] *)
  B.emit b (I.Mov (O.reg R.RCX, a_elem R.R8));
  B.emit b (I.Mov (a_elem R.R8, O.reg R.RBX));
  B.emit b (I.Mov (a_elem R.R9, O.reg R.RCX));
  B.label b no_swap;
  B.emit b (I.Inc (O.reg R.R9));
  B.emit b (I.Cmp (O.reg R.R9, O.reg R.RDI));
  B.emit b (I.Jcc (I.Ne, part_loop));
  (* place pivot at i+1 *)
  B.emit b (I.Inc (O.reg R.R8));
  B.emit b (I.Mov (O.reg R.RCX, a_elem R.R8));
  B.emit b (I.Mov (a_elem R.R8, O.reg R.RDX));
  B.emit b (I.Mov (a_elem R.RDI, O.reg R.RCX));
  (* push [lo, p-1] and [p+1, hi] when non-trivial *)
  B.emit b (I.Mov (O.reg R.RBX, O.reg R.R8));
  B.emit b (I.Dec (O.reg R.RBX));
  B.emit b (I.Cmp (O.reg R.RSI, O.reg R.RBX));
  B.emit b (I.Jcc (I.Ge, skip_push));
  B.emit b (I.Push (O.reg R.RBX));
  B.emit b (I.Push (O.reg R.RSI));
  B.emit b (I.Inc (O.reg R.R13));
  B.label b skip_push;
  let skip2 = B.fresh_label b "qs_nopush2" in
  B.emit b (I.Mov (O.reg R.RBX, O.reg R.R8));
  B.emit b (I.Inc (O.reg R.RBX));
  B.emit b (I.Cmp (O.reg R.RBX, O.reg R.RDI));
  B.emit b (I.Jcc (I.Ge, skip2));
  B.emit b (I.Push (O.reg R.RDI));
  B.emit b (I.Push (O.reg R.RBX));
  B.emit b (I.Inc (O.reg R.R13));
  B.label b skip2;
  B.emit b (I.Jmp loop_top);
  B.label b done_l;
  B.emit b I.Halt;
  {
    name = Printf.sprintf "leetcode-quicksort-%d" n;
    category = "LeetCode";
    program = B.to_program ~name:"quicksort" b;
    init = init_arrays [ (data, values) ];
  }

let edit_distance rng =
  (* Two-row DP over random strings — branchy, table-walking LeetCode
     classic. *)
  let n = Rng.in_range rng 12 24 in
  let m = Rng.in_range rng 12 24 in
  let s1 = random_array rng n 4 in
  let s2 = random_array rng m 4 in
  let prev = data2 and cur = data2 + 0x800 in
  let b = B.create () in
  (* prev[j] = j *)
  loop b ~reg:R.R8 ~count:(m + 1) ~stem:"ed_init" (fun () ->
      B.emit b (I.Mov (O.mem ~index:R.R8 ~scale:8 ~disp:prev (), O.reg R.R8)));
  loop b ~reg:R.R9 ~count:n ~stem:"ed_i" (fun () ->
      (* cur[0] = i+1 *)
      B.emit b (I.Mov (O.reg R.RBX, O.reg R.R9));
      B.emit b (I.Inc (O.reg R.RBX));
      B.emit b (I.Mov (O.abs cur, O.reg R.RBX));
      loop b ~reg:R.R10 ~count:m ~stem:"ed_j" (fun () ->
          let same = B.fresh_label b "ed_same" in
          let stored = B.fresh_label b "ed_stored" in
          B.emit b (I.Mov (O.reg R.RBX, a_elem R.R9)); (* s1[i] *)
          B.emit b (I.Cmp (O.reg R.RBX, O.mem ~index:R.R10 ~scale:8 ~disp:(data + 0x1000) ()));
          B.emit b (I.Jcc (I.Eq, same));
          (* 1 + min(prev[j], prev[j+1], cur[j]) — compute min via cmps *)
          B.emit b (I.Mov (O.reg R.RCX, O.mem ~index:R.R10 ~scale:8 ~disp:prev ()));
          B.emit b (I.Mov (O.reg R.RDX, O.mem ~index:R.R10 ~scale:8 ~disp:(prev + 8) ()));
          let m1 = B.fresh_label b "ed_m1" in
          B.emit b (I.Cmp (O.reg R.RDX, O.reg R.RCX));
          B.emit b (I.Jcc (I.Ge, m1));
          B.emit b (I.Mov (O.reg R.RCX, O.reg R.RDX));
          B.label b m1;
          B.emit b (I.Mov (O.reg R.RDX, O.mem ~index:R.R10 ~scale:8 ~disp:cur ()));
          let m2 = B.fresh_label b "ed_m2" in
          B.emit b (I.Cmp (O.reg R.RDX, O.reg R.RCX));
          B.emit b (I.Jcc (I.Ge, m2));
          B.emit b (I.Mov (O.reg R.RCX, O.reg R.RDX));
          B.label b m2;
          B.emit b (I.Inc (O.reg R.RCX));
          B.emit b (I.Mov (O.mem ~index:R.R10 ~scale:8 ~disp:(cur + 8) (), O.reg R.RCX));
          B.emit b (I.Jmp stored);
          B.label b same;
          B.emit b (I.Mov (O.reg R.RCX, O.mem ~index:R.R10 ~scale:8 ~disp:prev ()));
          B.emit b (I.Mov (O.mem ~index:R.R10 ~scale:8 ~disp:(cur + 8) (), O.reg R.RCX));
          B.label b stored);
      (* prev <- cur *)
      loop b ~reg:R.R10 ~count:(m + 1) ~stem:"ed_copy" (fun () ->
          B.emit b (I.Mov (O.reg R.RCX, O.mem ~index:R.R10 ~scale:8 ~disp:cur ()));
          B.emit b (I.Mov (O.mem ~index:R.R10 ~scale:8 ~disp:prev (), O.reg R.RCX))));
  B.emit b I.Halt;
  let init mach =
    Cpu.Machine.init_region mach ~base:data s1;
    Cpu.Machine.init_region mach ~base:(data + 0x1000) s2
  in
  {
    name = Printf.sprintf "leetcode-editdist-%dx%d" n m;
    category = "LeetCode";
    program = B.to_program ~name:"edit-distance" b;
    init;
  }

let stencil rng =
  (* lbm-style sweeps: a[i] = (a[i-1] + a[i] + a[i+1]) / 3-ish. *)
  let n = Rng.in_range rng 128 256 in
  let iters = Rng.in_range rng 3 6 in
  let values = random_array rng (n + 2) 1000 in
  let b = B.create () in
  loop b ~reg:R.R8 ~count:iters ~stem:"st_iter" (fun () ->
      loop b ~reg:R.R9 ~count:n ~stem:"st_i" (fun () ->
          B.emit b (I.Mov (O.reg R.RBX, a_elem R.R9));
          B.emit b (I.Add (O.reg R.RBX, O.mem ~index:R.R9 ~scale:8 ~disp:(data + 8) ()));
          B.emit b (I.Add (O.reg R.RBX, O.mem ~index:R.R9 ~scale:8 ~disp:(data + 16) ()));
          B.emit b (I.Shr (O.reg R.RBX, 1));
          B.emit b (I.Mov (O.mem ~index:R.R9 ~scale:8 ~disp:(data2 + 8) (), O.reg R.RBX)));
      (* swap roles by copying back *)
      loop b ~reg:R.R9 ~count:n ~stem:"st_copy" (fun () ->
          B.emit b (I.Mov (O.reg R.RBX, O.mem ~index:R.R9 ~scale:8 ~disp:(data2 + 8) ()));
          B.emit b (I.Mov (O.mem ~index:R.R9 ~scale:8 ~disp:(data + 8) (), O.reg R.RBX))));
  B.emit b I.Halt;
  {
    name = Printf.sprintf "spec-stencil-%d" n;
    category = "SPEC";
    program = B.to_program ~name:"stencil" b;
    init = init_arrays [ (data, values) ];
  }

let feistel rng =
  (* 8-round Feistel network with a table-based round function — a DES-like
     block cipher kernel. *)
  let blocks = Rng.in_range rng 8 20 in
  let sbox = Array.init 256 (fun i -> (i * 73 + 11) land 255) in
  let values = random_array rng (blocks * 2) 65536 in
  let b = B.create () in
  loop b ~reg:R.R8 ~count:blocks ~stem:"fe_blk" (fun () ->
      (* load L, R halves: a[2i], a[2i+1] *)
      B.emit b (I.Mov (O.reg R.RBX, O.reg R.R8));
      B.emit b (I.Shl (O.reg R.RBX, 1));
      B.emit b (I.Mov (O.reg R.RCX, a_elem R.RBX)); (* L *)
      B.emit b (I.Mov (O.reg R.RDX, O.mem ~index:R.RBX ~scale:8 ~disp:(data + 8) ())); (* R *)
      loop b ~reg:R.R9 ~count:8 ~stem:"fe_round" (fun () ->
          (* F(R) = sbox[(R + round) & 255] (line-spread table) *)
          B.emit b (I.Mov (O.reg R.R10, O.reg R.RDX));
          B.emit b (I.Add (O.reg R.R10, O.reg R.R9));
          B.emit b (I.And (O.reg R.R10, O.imm 255));
          B.emit b (I.Mov (O.reg R.R10, O.mem ~index:R.R10 ~scale:64 ~disp:(data2 + 0x10000) ()));
          (* L' = R; R' = L xor F(R) *)
          B.emit b (I.Mov (O.reg R.R11, O.reg R.RDX));
          B.emit b (I.Xor (O.reg R.RCX, O.reg R.R10));
          B.emit b (I.Mov (O.reg R.RDX, O.reg R.RCX));
          B.emit b (I.Mov (O.reg R.RCX, O.reg R.R11)));
      (* store back *)
      B.emit b (I.Mov (a_elem R.RBX, O.reg R.RCX));
      B.emit b (I.Mov (O.mem ~index:R.RBX ~scale:8 ~disp:(data + 8) (), O.reg R.RDX)));
  B.emit b I.Halt;
  let init mach =
    Cpu.Machine.init_region mach ~base:data values;
    Array.iteri
      (fun i v -> Cpu.Machine.store mach (data2 + 0x10000 + (i * 64)) v)
      sbox
  in
  {
    name = Printf.sprintf "crypto-feistel-%d" blocks;
    category = "Encryption";
    program = B.to_program ~name:"feistel" b;
    init;
  }

let tokenizer rng =
  (* Request parsing: split a byte buffer on separators, record token
     lengths — the inner loop of every text protocol server. *)
  let n = Rng.in_range rng 96 224 in
  let buf = Array.init n (fun _ -> if Rng.chance rng 0.2 then 32 else 97 + Rng.int rng 26) in
  let b = B.create () in
  B.emit b (I.Mov (O.reg R.R10, O.imm 0)); (* token length *)
  B.emit b (I.Mov (O.reg R.R11, O.imm 0)); (* token count *)
  loop b ~reg:R.R8 ~count:n ~stem:"tok" (fun () ->
      let sep = B.fresh_label b "tok_sep" in
      let next = B.fresh_label b "tok_next" in
      B.emit b (I.Mov (O.reg R.RBX, a_elem R.R8));
      B.emit b (I.Cmp (O.reg R.RBX, O.imm 32));
      B.emit b (I.Jcc (I.Eq, sep));
      B.emit b (I.Inc (O.reg R.R10));
      B.emit b (I.Jmp next);
      B.label b sep;
      (* flush token length to the output table *)
      B.emit b (I.Mov (O.mem ~index:R.R11 ~scale:8 ~disp:(data2 + 0x2000) (), O.reg R.R10));
      B.emit b (I.Inc (O.reg R.R11));
      B.emit b (I.And (O.reg R.R11, O.imm 63));
      B.emit b (I.Mov (O.reg R.R10, O.imm 0));
      B.label b next);
  B.emit b I.Halt;
  {
    name = Printf.sprintf "server-tokenizer-%d" n;
    category = "Server";
    program = B.to_program ~name:"tokenizer" b;
    init = init_arrays [ (data, buf) ];
  }

let base64ish rng =
  (* Table-mapped 3-to-4 expansion over a buffer (base64-style encoder). *)
  let n3 = Rng.in_range rng 24 64 in
  let src = random_array rng (n3 * 3) 256 in
  let table = Array.init 64 (fun i -> 33 + i) in
  let b = B.create () in
  loop b ~reg:R.R8 ~count:n3 ~stem:"b64" (fun () ->
      (* combine three bytes *)
      B.emit b (I.Mov (O.reg R.RBX, O.reg R.R8));
      B.emit b (I.Imul (O.reg R.RBX, O.imm 3));
      B.emit b (I.Mov (O.reg R.RCX, a_elem R.RBX));
      B.emit b (I.Shl (O.reg R.RCX, 8));
      B.emit b (I.Or (O.reg R.RCX, O.mem ~index:R.RBX ~scale:8 ~disp:(data + 8) ()));
      B.emit b (I.Shl (O.reg R.RCX, 8));
      B.emit b (I.Or (O.reg R.RCX, O.mem ~index:R.RBX ~scale:8 ~disp:(data + 16) ()));
      (* emit four 6-bit symbols via the table *)
      B.emit b (I.Mov (O.reg R.RDX, O.reg R.R8));
      B.emit b (I.Shl (O.reg R.RDX, 2));
      loop b ~reg:R.R9 ~count:4 ~stem:"b64_sym" (fun () ->
          B.emit b (I.Mov (O.reg R.R10, O.reg R.RCX));
          B.emit b (I.Shr (O.reg R.R10, 18));
          B.emit b (I.And (O.reg R.R10, O.imm 63));
          B.emit b (I.Mov (O.reg R.R10, O.mem ~index:R.R10 ~scale:8 ~disp:(data2 + 0x3000) ()));
          B.emit b (I.Mov (O.reg R.R11, O.reg R.RDX));
          B.emit b (I.Add (O.reg R.R11, O.reg R.R9));
          B.emit b (I.Mov (O.mem ~index:R.R11 ~scale:8 ~disp:(data2 + 0x4000) (), O.reg R.R10));
          B.emit b (I.Shl (O.reg R.RCX, 6))));
  B.emit b I.Halt;
  let init mach =
    Cpu.Machine.init_region mach ~base:data src;
    Cpu.Machine.init_region mach ~base:(data2 + 0x3000) table
  in
  {
    name = Printf.sprintf "server-base64-%d" n3;
    category = "Server";
    program = B.to_program ~name:"base64ish" b;
    init;
  }

(* ---- registry --------------------------------------------------------------- *)

let builders : (string * string * (Rng.t -> gen)) list =
  [
    ("bubble-sort", "LeetCode", bubble_sort);
    ("binary-search", "LeetCode", binary_search);
    ("kadane", "LeetCode", kadane);
    ("two-sum", "LeetCode", two_sum);
    ("hash-scatter", "LeetCode", hash_scatter);
    ("quicksort", "LeetCode", quicksort);
    ("edit-distance", "LeetCode", edit_distance);
    ("stream", "SPEC", stream);
    ("matmul", "SPEC", matmul);
    ("pointer-chase", "SPEC", pointer_chase);
    ("stencil", "SPEC", stencil);
    ("aes-like", "Encryption", aes_like);
    ("modexp", "Encryption", modexp);
    ("feistel", "Encryption", feistel);
    ("server-like", "Server", server_like);
    ("strops", "Server", strops);
    ("tokenizer", "Server", tokenizer);
    ("base64ish", "Server", base64ish);
  ]

let families = List.map (fun (n, c, _) -> (n, c)) builders

let build family rng =
  match List.find_opt (fun (n, _, _) -> String.equal n family) builders with
  | Some (_, _, f) -> f rng
  | None -> invalid_arg (Printf.sprintf "Benign.build: unknown family %S" family)

let generate rng =
  let _, _, f = Rng.choose rng builders in
  f rng

let generate_of_category rng category =
  let candidates =
    List.filter (fun (_, c, _) -> String.equal c category) builders
  in
  if candidates = [] then
    invalid_arg (Printf.sprintf "Benign.generate_of_category: %S" category);
  let _, _, f = Rng.choose rng candidates in
  f rng

(* Successive calls use distinct data regions with distinct sub-64
   cache-set offsets, so two harness kernels spliced around an attack body
   neither share cache sets with each other nor alias the page-aligned
   monitored sets (multiples of 64) — otherwise step 2 of the identification
   would keep them as false relevant blocks in every sample. *)
let kernel_region = ref 0

(* Offsets avoid 0 mod 64 (monitored sets), 33 (results), 41 (address
   table), and 31 (whose 4-line region would reach 33). *)
let set_offsets = [| 3; 5; 7; 11; 13; 17; 19; 23; 29; 37; 43; 47; 53; 59 |]

let small_kernel rng =
  let k =
    incr kernel_region;
    !kernel_region
  in
  let region =
    data + 0x4000 + (0x2000 * (k mod 16))
    + (64 * set_offsets.(k mod Array.length set_offsets))
  in
  let out = region + 0x1000 in
  let n = Rng.in_range rng 8 24 in
  let values = random_array rng n 500 in
  let b = B.create () in
  B.emit b (I.Mov (O.reg R.R9, O.imm 0));
  loop b ~reg:R.R8 ~count:n ~stem:"cksum" (fun () ->
      B.emit b (I.Add (O.reg R.R9, O.mem ~index:R.R8 ~scale:8 ~disp:region ()));
      B.emit b (I.Imul (O.reg R.R9, O.imm 31));
      B.emit b (I.And (O.reg R.R9, O.imm 0xFFFFFF)));
  B.emit b (I.Mov (O.abs out, O.reg R.R9));
  B.emit b I.Halt;
  ( B.to_program ~name:"harness-cksum" b,
    fun mach -> Cpu.Machine.init_region mach ~base:region values )
