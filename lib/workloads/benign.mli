(** Benign program generators — the stand-ins for Table III's benign dataset
    (SPEC2006 kernels, LeetCode solutions, crypto routines, server
    applications).

    Each family builds a terminating program with rng-driven parameters
    (sizes, data, loop shapes), so repeated draws give diverse samples with
    different degrees of memory access, as the paper's benign set has.  The
    crypto kernels perform table lookups and data-dependent branching — the
    benign behaviours most likely to confuse a cache-attack detector. *)

type gen = {
  name : string;
  category : string;  (** Table III row: "SPEC", "LeetCode", "Encryption", "Server" *)
  program : Isa.Program.t;
  init : Cpu.Machine.t -> unit;
}

val families : (string * string) list
(** (family name, category) for every generator, in a fixed order. *)

val build : string -> Sutil.Rng.t -> gen
(** [build family rng] instantiates one sample of a family.
    @raise Invalid_argument for unknown family names. *)

val generate : Sutil.Rng.t -> gen
(** A sample of a uniformly chosen family. *)

val generate_of_category : Sutil.Rng.t -> string -> gen
(** A sample of a uniformly chosen family within a Table III category. *)

val small_kernel : Sutil.Rng.t -> Isa.Program.t * (Cpu.Machine.t -> unit)
(** A tiny benign snippet (checksum / short copy), used as harness code
    spliced around attack bodies so attack binaries contain realistic
    attack-irrelevant blocks. *)
