module Rng = Sutil.Rng
module P = Isa.Program

type sample = {
  name : string;
  label : Label.t;
  program : Isa.Program.t;
  init : Cpu.Machine.t -> unit;
  victim : Victim.t option;
  settings : Cpu.Exec.settings option;
}

let of_spec (s : Attacks.spec) =
  {
    name = s.Attacks.name;
    label = s.Attacks.label;
    program = s.Attacks.program;
    init = s.Attacks.init;
    victim = s.Attacks.victim;
    settings = s.Attacks.settings;
  }

let base_samples () = List.map of_spec (Attacks.base_pocs ())

let with_harness ~rng sample =
  let pre, pre_init = Benign.small_kernel rng in
  let post, post_init = Benign.small_kernel rng in
  let program =
    P.splice ~base:(P.base sample.program) ~name:sample.name
      [ pre; sample.program; post ]
  in
  let init mach =
    pre_init mach;
    post_init mach;
    sample.init mach
  in
  { sample with program; init }

(* Fresh base PoC of a family with rng-varied rounds. *)
let fresh_base rng label =
  let pick = Rng.int rng in
  let spec =
    match label with
    | Label.Fr_family -> (
      match pick 5 with
      | 0 -> Attacks.flush_reload ~rounds:(Rng.in_range rng 10 22) ~style:Attacks.Iaik ()
      | 1 -> Attacks.flush_reload ~rounds:(Rng.in_range rng 10 22) ~style:Attacks.Mastik ()
      | 2 -> Attacks.flush_reload ~rounds:(Rng.in_range rng 10 22) ~style:Attacks.Nepoche ()
      | 3 -> Attacks.flush_flush ~rounds:(Rng.in_range rng 10 22) ()
      | _ -> Attacks.evict_reload ~rounds:(Rng.in_range rng 7 14) ())
    | Label.Pp_family -> (
      match pick 2 with
      | 0 -> Attacks.prime_probe ~rounds:(Rng.in_range rng 7 14) ~style:Attacks.Iaik ()
      | _ -> Attacks.prime_probe ~rounds:(Rng.in_range rng 7 14) ~style:Attacks.Jzhang ())
    | Label.Spectre_fr -> (
      let rounds = Rng.in_range rng 8 16 in
      match pick 3 with
      | 0 -> Attacks.spectre_fr ~rounds ~style:Attacks.Idea ()
      | 1 -> Attacks.spectre_fr ~rounds ~style:Attacks.Good ()
      | _ -> Attacks.spectre_fr ~rounds ~style:Attacks.Classic ())
    | Label.Spectre_pp -> Attacks.spectre_pp ~rounds:(Rng.in_range rng 7 14) ()
    | Label.Benign -> invalid_arg "Dataset: Benign is not an attack family"
  in
  of_spec spec

let random_intensity rng =
  match Rng.int rng 3 with
  | 0 -> Mutate.light
  | 1 -> Mutate.default_intensity
  | _ -> Mutate.heavy

let mutated_attacks ~rng ~count label =
  List.init count (fun i ->
      let sample_rng = Rng.split rng in
      let base = with_harness ~rng:sample_rng (fresh_base sample_rng label) in
      let name = Printf.sprintf "%s-mut%03d" base.name i in
      let program =
        Mutate.mutate ~intensity:(random_intensity sample_rng) ~rng:sample_rng
          ~name base.program
      in
      { base with name; program })

let obfuscated_attacks ~rng ~count label =
  List.map
    (fun s ->
      let rng' = Rng.split rng in
      let name = s.name ^ "-obf" in
      let program = Obfuscate.obfuscate ~rng:rng' ~name s.program in
      { s with name; program })
    (mutated_attacks ~rng ~count label)

(* Table III proportions out of 400: 12 SPEC + 280 LeetCode + 150... the
   paper's rows add up via 12 SPEC, 280 LeetCode, 150-ish crypto and 8
   server applications scaled to 400; we reproduce the ratio
   SPEC:LeetCode:Encryption:Server = 12:230:150:8. *)
let category_weights =
  [ ("SPEC", 12); ("LeetCode", 230); ("Encryption", 150); ("Server", 8) ]

let pick_category rng =
  let total = List.fold_left (fun a (_, w) -> a + w) 0 category_weights in
  let r = Rng.int rng total in
  let rec go acc = function
    | [] -> "LeetCode"
    | (c, w) :: rest -> if r < acc + w then c else go (acc + w) rest
  in
  go 0 category_weights

let benign_samples ~rng ~count =
  List.init count (fun i ->
      let sample_rng = Rng.split rng in
      let g = Benign.generate_of_category sample_rng (pick_category sample_rng) in
      let name = Printf.sprintf "%s-%03d" g.Benign.name i in
      let program =
        if Rng.chance sample_rng 0.5 then
          Mutate.mutate ~intensity:Mutate.light ~rng:sample_rng ~name
            g.Benign.program
        else g.Benign.program
      in
      {
        name;
        label = Label.Benign;
        program;
        init = g.Benign.init;
        victim = None;
        settings = None;
      })

let attack_dataset ~rng ~per_family =
  List.map
    (fun label -> (label, mutated_attacks ~rng ~count:per_family label))
    Label.attack_labels

let run ?settings ?hierarchy sample =
  let settings =
    match settings with Some _ -> settings | None -> sample.settings
  in
  Cpu.Exec.run ?settings ?hierarchy ~init:sample.init ?victim:sample.victim
    sample.program
