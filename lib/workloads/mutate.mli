(** Semantics-preserving code mutation — the stand-in for the paper's
    mutate_cpp-based variant generation (§IV-A), used to expand each PoC (and
    each benign kernel) into hundreds of syntactically diverse samples.

    Guarantees relied on by the generated code and preserved here:
    - conditional branches are immediately preceded by their [cmp]/[test], so
      other instructions' flag effects are dead and flag-safe substitution /
      insertion is sound;
    - instructions tagged {!Attacks.timing_tag} form rdtsc windows whose
      cycle budget attacks depend on, so no mutation touches the inside of a
      window;
    - [RAX] is the implicit rdtsc destination and is never renamed. *)

type intensity = {
  rename_regs : bool;        (** apply a random scratch-register permutation *)
  junk_per_100 : int;        (** flag-safe junk instructions per 100 original *)
  substitute_prob : float;   (** chance to rewrite an eligible instruction *)
  swap_prob : float;         (** chance to swap an eligible adjacent pair *)
}

val default_intensity : intensity
val light : intensity
val heavy : intensity

val mutate :
  ?intensity:intensity -> rng:Sutil.Rng.t -> name:string ->
  Isa.Program.t -> Isa.Program.t
(** [mutate ~rng ~name p] is a behaviourally equivalent variant of [p].
    Attack tags travel with their instructions, so the Table IV ground truth
    survives mutation. *)
