(** Proof-of-concept generators for the attack families of Table II.

    Each generator assembles a complete attack program in the simulated ISA,
    in one of several "implementation styles" standing in for the distinct
    public PoC code bases the paper collected (IAIK, Mastik, Nepoche, ...).
    Styles differ in loop shapes (indexed vs pointer-walking), address
    indirection, fencing and register roles, while performing the same
    attack — exactly the syntactic diversity the paper's similarity
    comparison must see through.

    Attack-relevant instructions (flush/evict/prime loops, timed
    reload/probe loops, transient gadgets) are tagged with
    {!Isa.Program.attack_tag}, giving the Table IV ground truth; instructions
    inside rdtsc...rdtscp windows additionally carry {!timing_tag}, which the
    mutation and obfuscation engines treat as do-not-touch zones so that
    variants retain attack functionality (as §IV-A requires). *)

type style = Iaik | Mastik | Nepoche | Jzhang | Idea | Good | Classic

val style_name : style -> string

type spec = {
  name : string;
  label : Label.t;
  program : Isa.Program.t;
  init : Cpu.Machine.t -> unit;       (** attacker memory initializer *)
  victim : Victim.t option;           (** co-running victim, if the attack needs one *)
  settings : Cpu.Exec.settings option;
    (** executor settings this attack needs (e.g. Meltdown's protected
        range); [None] means the defaults *)
}

val timing_tag : string
(** Tag marking instructions inside a timing measurement window. *)

val reload_threshold : int
(** Cycle threshold separating cached from uncached reloads. *)

val flush_timing_threshold : int
(** Cycle threshold separating clflush of cached vs uncached lines
    (Flush+Flush). *)

val probe_set_threshold : int
(** Per-set probe-time threshold for Prime+Probe. *)

val flush_reload : ?rounds:int -> style:style -> unit -> spec
(** Flush+Reload against the monitored shared-library lines. *)

val flush_flush : ?rounds:int -> unit -> spec
(** Flush+Flush (times the clflush itself). *)

val evict_reload : ?rounds:int -> unit -> spec
(** Evict+Reload (evicts via LLC-congruent loads instead of clflush). *)

val prime_probe : ?rounds:int -> style:style -> unit -> spec
(** Prime+Probe over the LLC sets the victim's secret selects. *)

val spectre_fr : ?rounds:int -> style:style -> unit -> spec
(** Spectre v1 bounds-check bypass with a Flush+Reload covert channel
    (self-contained: gadget and probe live in one program). *)

val spectre_pp : ?rounds:int -> unit -> spec
(** Spectre v1 with a Prime+Probe covert channel. *)

val meltdown_fr : ?rounds:int -> unit -> spec
(** Extension (not in the paper's dataset): Meltdown-style deferred-fault
    read of protected kernel memory, recovered with a Flush+Reload probe.
    The spec carries the protected-range executor settings it needs. *)

val guard_magic : int
(** The default triggering input word. *)

val with_input_guard : ?magic:int -> spec -> spec
(** The paper's Limitation (§V): wrap a PoC behind an input check.  The
    program reads [Layout.input_addr]; unless it holds [magic] the attack
    body is skipped and only benign cover behavior runs — so dynamic
    modeling of an untriggered run sees nothing attack-like. *)

val triggering_init :
  ?magic:int -> (Cpu.Machine.t -> unit) -> Cpu.Machine.t -> unit
(** [triggering_init base_init] is [base_init] plus planting the trigger. *)

val base_pocs : unit -> spec list
(** The nine collected PoCs of Table II: FR-IAIK, FR-Mastik, FR-Nepoche,
    FF-IAIK, ER-IAIK, PP-IAIK, PP-Jzhang, Spectre-FR-{Idea,Good,Classic}
    minus one (the paper lists 3 S-FR and 1 S-PP), Spectre-PP-Classic. *)

val run_spec :
  ?settings:Cpu.Exec.settings -> ?hierarchy:Cache.Hierarchy.t ->
  ?victim_hierarchy:Cache.Hierarchy.t -> spec -> Cpu.Exec.result
(** Execute a spec with its init and victim wired up.  [hierarchy] overrides
    the default cache hierarchy (e.g. for replacement-policy sweeps);
    [victim_hierarchy] gives the victim its own cache view (cross-core). *)

val run_spec_cross_core :
  ?settings:Cpu.Exec.settings -> spec -> Cpu.Exec.result
(** Execute with attacker and victim on different cores: private L1s, one
    shared LLC ({!Cache.Hierarchy.create_cross_core}). *)

val result_histogram : Cpu.Exec.result -> int array
(** The per-line verdict counters the attack wrote at
    [Layout.attacker_results_base] (length {!Layout.monitored_lines} * 2 to
    cover the 16-entry Spectre probe). *)

val secret_guess : Cpu.Exec.result -> int
(** Index with the largest verdict counter — the attack's recovered secret
    value (used by the leakage tests). *)
