(** Robustness extensions beyond the paper's evaluation:

    - do the attacks (and therefore the attack behavior models) survive
      non-LRU replacement policies?
    - does detection still work when the attack runs {e without} its victim
      (the behavior is present even when the leak fails)? *)

type leak_row = {
  poc : string;
  variant : string; (** hierarchy variant name *)
  leaked : bool;    (** the planted secret was recovered *)
  detected : bool;  (** SCAGuard flags the run against the default repository *)
}

val hierarchy_variants :
  (string * (unit -> Cache.Hierarchy.t * Cache.Hierarchy.t option)) list
(** LRU / FIFO / Random replacement, next-line prefetcher, non-inclusive
    LLC, and the cross-core topology (the optional second hierarchy is the
    victim core's view). *)

val policy_matrix : rng:Sutil.Rng.t -> leak_row list
(** Every collected PoC under every hierarchy variant.  Measured shape:
    Prime+Probe's {e leak} dies under Random replacement and under the
    prefetcher while every PoC's {e detection} survives everywhere
    (Evict+Reload even survives a non-inclusive LLC because its eviction
    set is L1-congruent as well). *)

val to_policy_table : leak_row list -> Sutil.Table.t

val detection_with_noise : rng:Sutil.Rng.t -> (string * bool) list
(** Replace each PoC's true victim with an unrelated benign co-runner
    (streaming kernel): the leak turns to noise, the behavior — and the
    detection — remain. *)

val detection_without_victim : rng:Sutil.Rng.t -> (string * bool) list
(** For each victim-dependent PoC, run it with no victim process at all and
    report whether SCAGuard still classifies it as an attack — the paper's
    observation that the attack {e behavior} (flush/prime + timed probe) is
    what is detected, not a successful leak. *)
