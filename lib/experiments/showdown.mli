(** The detector showdown: every {!Detect.registry} entry — SCAGuard, the
    five related-work baselines, the raw HPC classifiers and the two-tier
    ensemble — trained and scored on one generated dataset, with accuracy,
    macro and per-class P/R/F1, binary detection F1, and train/predict
    latency + throughput per detector.  Drives [scaguard compare] and the
    bench's [BENCH_compare.json].

    The dataset is mutated attacks (every family) plus generated benign and
    the MinC benign kernels — unoptimized compiles in the training split,
    optimized ones in the test split, so detectors face "the same benign
    program through a different compiler".  Test-run CST-BBS models are
    forced during dataset preparation and charged to [prep_s]: each
    detector's [predict_s] is its own inference cost, and the ensemble's
    advantage over pure SCAGuard is exactly the DTW its fast path skips. *)

type row = {
  key : string;  (** {!Detect.registry} key *)
  name : string;  (** display label *)
  scores : Ml.Metrics.scores;  (** macro P/R/F1 + accuracy over all labels *)
  per_class : Ml.Metrics.class_scores list;  (** breakdown, label order *)
  detection : Ml.Metrics.scores;  (** binary attack-vs-benign scoring *)
  train_s : float;
  predict_s : float;
  tested : int;
  throughput : float;  (** test runs classified per second *)
  ensemble : Detect.Ensemble.stats option;  (** the ensemble row only *)
}

type t = {
  rows : row list;
  per_family : int;
  train_size : int;
  test_size : int;
  tau : float;  (** the ensemble screening threshold used *)
  prep_s : float;  (** test-model forcing (shared, charged to no detector) *)
}

val evaluate :
  ?detectors:string list ->
  ?tau:float ->
  rng:Sutil.Rng.t ->
  per_family:int ->
  unit ->
  t
(** [detectors] defaults to every registry key in registry order (which is
    also rng-consumption order, so a fixed seed reproduces the table);
    [tau] defaults to {!Scaguard.Config.default}'s [ensemble_tau].
    @raise Invalid_argument on an unknown detector key. *)

val to_table : t -> Sutil.Table.t
val to_json : t -> string
