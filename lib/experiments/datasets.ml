module D = Workloads.Dataset
module L = Workloads.Label

let base_names label =
  List.filter_map
    (fun (s : Workloads.Attacks.spec) ->
      if L.equal s.Workloads.Attacks.label label then Some s.Workloads.Attacks.name
      else None)
    (Workloads.Attacks.base_pocs ())

(* Did a run recover its planted secret?  (The "mutation retains attack
   functionality" premise of §IV-A, measured instead of assumed.) *)
let sample_leaked (s : D.sample) (res : Cpu.Exec.result) =
  let h = Workloads.Attacks.result_histogram res in
  match s.D.label with
  | L.Fr_family | L.Pp_family ->
    List.mem (Workloads.Attacks.secret_guess res) [ 2; 3; 5 ]
  | L.Spectre_fr | L.Spectre_pp ->
    let best = ref 1 in
    Array.iteri (fun i v -> if i >= 1 && v > h.(!best) then best := i) h;
    !best = (match s.D.label with L.Spectre_fr -> 11 | _ -> 5)
  | L.Benign -> false

let table2 ~rng ~per_family =
  let t =
    Sutil.Table.create ~title:"Table II: the attack dataset"
      [ "Type"; "Base PoCs"; "#C"; "#M"; "mean instrs/run"; "leak rate" ]
  in
  List.iter
    (fun label ->
      let bases = base_names label in
      let samples = D.mutated_attacks ~rng ~count:per_family label in
      let runs = List.map (fun s -> (s, D.run s)) samples in
      let instrs =
        List.map (fun (_, r) -> float_of_int r.Cpu.Exec.instructions) runs
      in
      let leaked =
        List.length (List.filter (fun (s, r) -> sample_leaked s r) runs)
      in
      Sutil.Table.add_row t
        [
          L.to_string label;
          String.concat ", " bases;
          string_of_int (List.length bases);
          string_of_int per_family;
          Printf.sprintf "%.0f" (Sutil.Stats.mean instrs);
          Sutil.Table.pct (float_of_int leaked /. float_of_int per_family);
        ])
    L.attack_labels;
  t

(* Sample names carry their category as a prefix ("spec-stream-…"). *)
let category_prefix = function
  | "SPEC" -> "spec-"
  | "LeetCode" -> "leetcode-"
  | "Encryption" -> "crypto-"
  | "Server" -> "server-"
  | c -> invalid_arg ("Datasets.category_prefix: " ^ c)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let table3 ~rng ~count =
  let t =
    Sutil.Table.create ~title:"Table III: the benign dataset"
      [ "Type"; "Generators"; "Number" ]
  in
  let samples = D.benign_samples ~rng ~count in
  List.iter
    (fun cat ->
      let gens =
        List.filter_map
          (fun (n, c) -> if String.equal c cat then Some n else None)
          Workloads.Benign.families
      in
      let prefix = category_prefix cat in
      let n =
        List.length
          (List.filter (fun (s : D.sample) -> has_prefix ~prefix s.D.name) samples)
      in
      Sutil.Table.add_row t [ cat; String.concat ", " gens; string_of_int n ])
    [ "SPEC"; "LeetCode"; "Encryption"; "Server" ];
  t
