(** Table VI — classification results of SCAGuard and the four baseline
    detection approaches on the tasks E1–E4.

    - E1: classify mutated variants when every family is known;
    - E2: classify Spectre-like variants knowing only their non-Spectre
      counterparts (a Spectre variant classified as its counterpart family
      counts as correct);
    - E3: cross-family generalizability, both directions, scored as
      attack-vs-benign detection;
    - E4: classify polymorphically obfuscated variants knowing only
      non-obfuscated samples. *)

type approach = Svm_nw | Lr_nw | Knn_mlfm | Scadet | Scaguard

val approaches : approach list
val approach_name : approach -> string

type task = E1 | E2 | E3_pp_from_fr | E3_fr_from_pp | E4

val tasks : task list
val task_name : task -> string

type task_data
(** Prepared (executed) train/test runs for one task; build once, evaluate
    every approach on it. *)

val prepare : rng:Sutil.Rng.t -> per_family:int -> task -> task_data

val test_runs : task_data -> (Common.run * Workloads.Label.t) list
(** The task's test runs with ground-truth labels (exposed for Fig. 5's
    threshold sweep). *)

val train_runs : task_data -> (Common.run * Workloads.Label.t) list
(** The task's labelled training runs (what the learning approaches see). *)

val classes_of : task_data -> Workloads.Label.t list
val is_binarized : task_data -> bool
val canonize : task_data -> Workloads.Label.t -> Workloads.Label.t
(** Collapse a prediction for scoring (E3's attack-vs-benign view). *)

val repository_of : task_data -> Scaguard.Detector.repository

val registry_key : approach -> string
(** The approach's key in {!Detect.registry} (["svm-nw"] … ["scaguard"]). *)

val context : rng:Sutil.Rng.t -> task_data -> Detect.ctx
(** The task as a detector-training context: its repository, known
    families and class list. *)

val evaluate_approach :
  rng:Sutil.Rng.t -> task_data -> approach -> Ml.Metrics.scores
(** Train-and-score one approach through its {!Detect} registry entry;
    predictions are canonized ({!canonize}) before scoring. *)

val evaluate_all :
  rng:Sutil.Rng.t -> per_family:int ->
  (task * (approach * Ml.Metrics.scores) list) list
(** Every task × approach — the full Table VI. *)

val to_table : (task * (approach * Ml.Metrics.scores) list) list -> Sutil.Table.t
