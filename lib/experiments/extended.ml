module L = Workloads.Label

type approach = Anomaly_only | Phased_guard | Scaguard_ref

let approach_name = function
  | Anomaly_only -> "Anomaly (victim-oriented)"
  | Phased_guard -> "Phased-Guard"
  | Scaguard_ref -> "SCAGUARD"

let evaluate ~rng ~per_family task =
  let td = Table6.prepare ~rng ~per_family task in
  let train = Table6.train_runs td in
  let benign_train =
    List.filter_map
      (fun (run, l) -> if L.equal l L.Benign then Some run.Common.result else None)
      train
  in
  let attack_train =
    List.filter_map
      (fun (run, l) ->
        if L.equal l L.Benign then None
        else Some (run.Common.result, Common.label_to_int l))
      train
  in
  let attack_class =
    match Table6.classes_of td with c :: _ -> c | [] -> L.Fr_family
  in
  (* Anomaly detection cannot classify: its scoring is attack-vs-benign. *)
  let anomaly = Baselines.Anomaly.train benign_train in
  let anomaly_pairs =
    List.map
      (fun (run, truth) ->
        let p =
          if Baselines.Anomaly.is_attack anomaly run.Common.result then
            attack_class
          else L.Benign
        in
        (p, Common.binarize truth))
      (Table6.test_runs td)
  in
  let anomaly_scores =
    Common.metrics ~classes:[ attack_class; L.Benign ] anomaly_pairs
  in
  (* Phased-Guard: anomaly gate, then a multi-class phase two. *)
  let pg =
    Baselines.Phased_guard.train ~rng ~benign:benign_train
      ~attacks:attack_train ~benign_label:(Common.label_to_int L.Benign)
  in
  let pg_pairs =
    List.map
      (fun (run, truth) ->
        let p = Common.label_of_int (Baselines.Phased_guard.predict pg run.Common.result) in
        (Table6.canonize td p, truth))
      (Table6.test_runs td)
  in
  let pg_scores = Common.metrics ~classes:(Table6.classes_of td) pg_pairs in
  let scaguard = Table6.evaluate_approach ~rng td Table6.Scaguard in
  [
    (Anomaly_only, anomaly_scores);
    (Phased_guard, pg_scores);
    (Scaguard_ref, scaguard);
  ]

let to_table results =
  let t =
    Sutil.Table.create
      ~title:"Extended baselines (related work): anomaly & two-phase detection"
      [ "Task"; "Approach"; "Precision"; "Recall"; "F1-score" ]
  in
  List.iter
    (fun (task, per_approach) ->
      List.iter
        (fun (a, (s : Ml.Metrics.scores)) ->
          Sutil.Table.add_row t
            [
              Table6.task_name task;
              approach_name a;
              Sutil.Table.pct s.Ml.Metrics.precision;
              Sutil.Table.pct s.Ml.Metrics.recall;
              Sutil.Table.pct s.Ml.Metrics.f1;
            ])
        per_approach;
      Sutil.Table.add_separator t)
    results;
  t
