module L = Workloads.Label

type approach = Anomaly_only | Phased_guard | Scaguard_ref

let approach_name = function
  | Anomaly_only -> "Anomaly (victim-oriented)"
  | Phased_guard -> "Phased-Guard"
  | Scaguard_ref -> "SCAGUARD"

let evaluate ~rng ~per_family task =
  let td = Table6.prepare ~rng ~per_family task in
  let ctx = Table6.context ~rng td in
  let train = Table6.train_runs td in
  let attack_class =
    match Table6.classes_of td with c :: _ -> c | [] -> L.Fr_family
  in
  (* Anomaly detection cannot classify: its scoring is attack-vs-benign. *)
  let module An = (val (Detect.find_exn "anomaly").Detect.detector) in
  let anomaly = An.train ctx train in
  let anomaly_pairs =
    List.map
      (fun (run, truth) -> (An.predict anomaly run, Common.binarize truth))
      (Table6.test_runs td)
  in
  let anomaly_scores =
    Common.metrics ~classes:[ attack_class; L.Benign ] anomaly_pairs
  in
  (* Phased-Guard: anomaly gate, then a multi-class phase two. *)
  let module Pg = (val (Detect.find_exn "phased-guard").Detect.detector) in
  let pg = Pg.train ctx train in
  let pg_pairs =
    List.map
      (fun (run, truth) -> (Table6.canonize td (Pg.predict pg run), truth))
      (Table6.test_runs td)
  in
  let pg_scores = Common.metrics ~classes:(Table6.classes_of td) pg_pairs in
  let scaguard = Table6.evaluate_approach ~rng td Table6.Scaguard in
  [
    (Anomaly_only, anomaly_scores);
    (Phased_guard, pg_scores);
    (Scaguard_ref, scaguard);
  ]

let to_table results =
  let t =
    Sutil.Table.create
      ~title:"Extended baselines (related work): anomaly & two-phase detection"
      [ "Task"; "Approach"; "Precision"; "Recall"; "F1-score" ]
  in
  List.iter
    (fun (task, per_approach) ->
      List.iter
        (fun (a, (s : Ml.Metrics.scores)) ->
          Sutil.Table.add_row t
            [
              Table6.task_name task;
              approach_name a;
              Sutil.Table.pct s.Ml.Metrics.precision;
              Sutil.Table.pct s.Ml.Metrics.recall;
              Sutil.Table.pct s.Ml.Metrics.f1;
            ])
        per_approach;
      Sutil.Table.add_separator t)
    results;
  t
