module D = Workloads.Dataset
module L = Workloads.Label

type approach = Svm_nw | Lr_nw | Knn_mlfm | Scadet | Scaguard

let approaches = [ Svm_nw; Lr_nw; Knn_mlfm; Scadet; Scaguard ]

let approach_name = function
  | Svm_nw -> "SVM-NW"
  | Lr_nw -> "LR-NW"
  | Knn_mlfm -> "KNN-MLFM"
  | Scadet -> "SCADET"
  | Scaguard -> "SCAGUARD"

type task = E1 | E2 | E3_pp_from_fr | E3_fr_from_pp | E4

let tasks = [ E1; E2; E3_pp_from_fr; E3_fr_from_pp; E4 ]

let task_name = function
  | E1 -> "E1: Mutated variants"
  | E2 -> "E2: Spectre-like variants"
  | E3_pp_from_fr -> "E3-1: PP-F"
  | E3_fr_from_pp -> "E3-2: FR-F"
  | E4 -> "E4: Obfuscated variants"

type task_data = {
  task : task;
  train : (Common.run * L.t) list;
  test : (Common.run * L.t) list;
  classes : L.t list;
  repo_families : L.t list;
  repo : Scaguard.Detector.repository;
  binarized : bool;
}

let split_half xs =
  let n = List.length xs / 2 in
  let rec go i acc = function
    | [] -> (List.rev acc, [])
    | x :: rest when i < n -> go (i + 1) (x :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  go 0 [] xs

let runs_of samples = List.map Common.execute samples

let with_own_label runs = List.map (fun r -> (r, Common.label r)) runs
let with_label l runs = List.map (fun r -> (r, l)) runs

let prepare ~rng ~per_family task =
  let mutated l n = runs_of (D.mutated_attacks ~rng ~count:n l) in
  let obfuscated l n = runs_of (D.obfuscated_attacks ~rng ~count:n l) in
  let benign n = runs_of (D.benign_samples ~rng ~count:n) in
  let make ~train ~test ~classes ~repo_families ~binarized =
    {
      task;
      train;
      test;
      classes;
      repo_families;
      repo = Common.repository ~rng repo_families;
      binarized;
    }
  in
  match task with
  | E1 ->
    let per_family_splits =
      List.map
        (fun l -> split_half (mutated l per_family))
        L.attack_labels
    in
    let benign_train, benign_test = split_half (benign per_family) in
    make
      ~train:
        (with_own_label (List.concat_map fst per_family_splits)
        @ with_label L.Benign benign_train)
      ~test:
        (with_own_label (List.concat_map snd per_family_splits)
        @ with_label L.Benign benign_test)
      ~classes:L.all ~repo_families:L.attack_labels ~binarized:false
  | E2 ->
    make
      ~train:
        (with_own_label (mutated L.Fr_family per_family)
        @ with_own_label (mutated L.Pp_family per_family)
        @ with_label L.Benign (benign per_family))
      ~test:
        ((* a Spectre variant classified as its non-Spectre counterpart is
            correct *)
         with_label L.Fr_family (mutated L.Spectre_fr per_family)
        @ with_label L.Pp_family (mutated L.Spectre_pp per_family)
        @ with_label L.Benign (benign per_family))
      ~classes:[ L.Fr_family; L.Pp_family; L.Benign ]
      ~repo_families:[ L.Fr_family; L.Pp_family ]
      ~binarized:false
  | E3_pp_from_fr ->
    make
      ~train:
        (with_own_label (mutated L.Fr_family per_family)
        @ with_label L.Benign (benign per_family))
      ~test:
        (with_label L.Fr_family (mutated L.Pp_family per_family)
        @ with_label L.Benign (benign per_family))
      ~classes:[ L.Fr_family; L.Benign ]
      ~repo_families:[ L.Fr_family ] ~binarized:true
  | E3_fr_from_pp ->
    make
      ~train:
        (with_own_label (mutated L.Pp_family per_family)
        @ with_label L.Benign (benign per_family))
      ~test:
        (with_label L.Pp_family (mutated L.Fr_family per_family)
        @ with_label L.Benign (benign per_family))
      ~classes:[ L.Pp_family; L.Benign ]
      ~repo_families:[ L.Pp_family ] ~binarized:true
  | E4 ->
    make
      ~train:
        (with_own_label (mutated L.Fr_family per_family)
        @ with_own_label (mutated L.Pp_family per_family)
        @ with_label L.Benign (benign per_family))
      ~test:
        (with_own_label (obfuscated L.Fr_family per_family)
        @ with_own_label (obfuscated L.Pp_family per_family)
        @ with_label L.Benign (benign per_family))
      ~classes:[ L.Fr_family; L.Pp_family; L.Benign ]
      ~repo_families:[ L.Fr_family; L.Pp_family ]
      ~binarized:false

let test_runs td = td.test
let train_runs td = td.train
let classes_of td = td.classes
let is_binarized td = td.binarized
let repository_of td = td.repo

(* For E3 the scoring is attack-vs-benign: any attack-family prediction
   counts as the (single) attack class of the task. *)
let canon td prediction =
  if td.binarized then
    match prediction with
    | L.Benign -> L.Benign
    | _ -> (match td.classes with c :: _ -> c | [] -> prediction)
  else prediction

let canonize td prediction = canon td prediction

let registry_key = function
  | Svm_nw -> "svm-nw"
  | Lr_nw -> "lr-nw"
  | Knn_mlfm -> "knn-mlfm"
  | Scadet -> "scadet"
  | Scaguard -> "scaguard"

let context ~rng td =
  Detect.make_ctx ~rng ~repository:td.repo ~known_families:td.repo_families
    ~classes:td.classes ()

(* Every approach is one registry entry; the per-approach logic (SCADET's
   rule applicability, SCAGuard's repository-as-model, the learning
   baselines' int labels) lives in the adapters.  Predictions — and the
   rendered table — are byte-identical to the pre-registry per-approach
   code (asserted by the test suite). *)
let evaluate_approach ~rng td approach =
  let entry = Detect.find_exn (registry_key approach) in
  let module Dm = (val entry.Detect.detector) in
  let m = Dm.train (context ~rng td) td.train in
  let pairs =
    List.map (fun (run, truth) -> (canon td (Dm.predict m run), truth)) td.test
  in
  Common.metrics ~classes:td.classes pairs

let evaluate_all ~rng ~per_family =
  List.map
    (fun task ->
      let td = prepare ~rng ~per_family task in
      (task, List.map (fun a -> (a, evaluate_approach ~rng td a)) approaches))
    tasks

let to_table results =
  let t =
    Sutil.Table.create ~title:"Table VI: classification results (E1-E4)"
      [ "Task"; "Approach"; "Precision"; "Recall"; "F1-score" ]
  in
  List.iter
    (fun (task, per_approach) ->
      List.iter
        (fun (a, (s : Ml.Metrics.scores)) ->
          Sutil.Table.add_row t
            [
              task_name task;
              approach_name a;
              Sutil.Table.pct s.Ml.Metrics.precision;
              Sutil.Table.pct s.Ml.Metrics.recall;
              Sutil.Table.pct s.Ml.Metrics.f1;
            ])
        per_approach;
      Sutil.Table.add_separator t)
    results;
  t
