(** Ablation studies for the design choices DESIGN.md calls out:
    the CST term, the relevance filtering, the MST path restoration, and the
    DTW normalization. *)

type variant =
  | Full             (** the complete pipeline *)
  | No_cst           (** similarity from instruction syntax only (alpha=1) *)
  | No_syntax        (** similarity from cache semantics only (alpha=0) *)
  | No_step2         (** skip the cache-set-overlap elimination: models built
                         from all step-1 candidates *)
  | No_restoration   (** connect relevant blocks directly, skipping the
                         MST path restoration *)
  | Raw_dtw          (** the paper's literal 1/(1+raw D) conversion *)

val variants : variant list
val variant_name : variant -> string

val model_of_run : variant -> Common.run -> Scaguard.Model.t
(** Build the (possibly ablated) model of an executed sample. *)

val similarity : variant -> Scaguard.Model.t -> Scaguard.Model.t -> float

val detection_scores :
  rng:Sutil.Rng.t -> per_family:int -> variant -> Ml.Metrics.scores
(** E1-style 5-class classification quality under the ablated pipeline
    (threshold fixed at the detector default; Raw_dtw uses 0.45, matching
    its different scale). *)

val to_table : (variant * Ml.Metrics.scores) list -> Sutil.Table.t
