module D = Workloads.Dataset
module L = Workloads.Label

(* The executed-sample type now lives in [Detect.Run] (the detector
   abstraction is defined over it); the alias keeps the record's fields and
   every existing [Common.run] consumer unchanged. *)
type run = Detect.Run.t = {
  sample : D.sample;
  result : Cpu.Exec.result;
  analysis : Scaguard.Pipeline.analysis Lazy.t;
}

let execute = Detect.Run.execute
let execute_all = Detect.Run.execute_all
let model = Detect.Run.model
let label = Detect.Run.label
let label_to_int = Detect.label_to_int
let label_of_int = Detect.label_of_int

(* One representative PoC per family, harnessed like every dataset sample. *)
let poc_of_family label =
  match label with
  | L.Fr_family -> Workloads.Attacks.flush_reload ~style:Workloads.Attacks.Iaik ()
  | L.Pp_family -> Workloads.Attacks.prime_probe ~style:Workloads.Attacks.Iaik ()
  | L.Spectre_fr -> Workloads.Attacks.spectre_fr ~style:Workloads.Attacks.Classic ()
  | L.Spectre_pp -> Workloads.Attacks.spectre_pp ()
  | L.Benign -> invalid_arg "Experiments.Common: benign has no PoC"

let families_of_strings names =
  match List.filter (fun n -> L.of_string n = None) names with
  | [] -> (
    match List.filter_map L.of_string names with
    | [] -> Error Scaguard.Err.Empty_repository
    | families -> Ok families)
  | unknown ->
    (* A typo'd family must not silently shrink the repository. *)
    Error
      (Scaguard.Err.Invalid_config
         {
           field = "families";
           value = String.concat "," unknown;
           expected =
             "family names among "
             ^ String.concat ", " (List.map L.to_string L.all);
         })

let repository_service ~config ~rng families =
  if families = [] then Error Scaguard.Err.Empty_repository
  else
    (* Harness construction consumes the rng; execution does not.  Building
       every sample first (sequentially, in family order) therefore preserves
       the rng stream exactly, and the executions can then fan out over the
       pool — or be skipped outright on a model-cache hit — with models
       byte-identical to the old sequential loop. *)
    let samples =
      List.map
        (fun family -> D.with_harness ~rng (D.of_spec (poc_of_family family)))
        families
    in
    let jobs =
      (* No per-job salt: jobs pick up [config.salt] inside the service. *)
      Array.of_list
        (List.map
           (fun (s : D.sample) ->
             Scaguard.Pipeline.job ?settings:s.D.settings ~init:s.D.init
               ?victim:s.D.victim ~name:s.D.name s.D.program)
           samples)
    in
    Result.map
      (fun (models, report) ->
        ( List.mapi
            (fun i family ->
              {
                Scaguard.Detector.family = L.to_string family;
                model = models.(i);
              })
            families,
          report ))
      (Scaguard.Service.build config jobs)

let repository ?(config = Scaguard.Config.default) ~rng families =
  match families with
  | [] -> []
  | _ -> (
    match repository_service ~config ~rng families with
    | Ok (repo, _) -> repo
    | Error e ->
      invalid_arg
        ("Experiments.Common.repository: " ^ Scaguard.Err.to_string e))

let scaguard_predict ?threshold ?alpha repo run =
  let verdict = Scaguard.Detector.classify ?threshold ?alpha repo (model run) in
  match verdict.Scaguard.Detector.best_family with
  | Some f -> Option.value ~default:L.Benign (L.of_string f)
  | None -> L.Benign

let binarize = function L.Benign -> L.Benign | _ -> L.Fr_family

let metrics ~classes pairs =
  let to_int = label_to_int in
  Ml.Metrics.evaluate
    ~classes:(List.map to_int classes)
    (List.map (fun (p, a) -> (to_int p, to_int a)) pairs)
