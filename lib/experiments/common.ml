module D = Workloads.Dataset
module L = Workloads.Label

type run = {
  sample : D.sample;
  result : Cpu.Exec.result;
  analysis : Scaguard.Pipeline.analysis Lazy.t;
}

let execute sample =
  let result = D.run sample in
  let analysis =
    lazy
      (Scaguard.Pipeline.analyze ~name:sample.D.name ~program:sample.D.program
         result)
  in
  { sample; result; analysis }

let execute_all samples = List.map execute samples

let model run = (Lazy.force run.analysis).Scaguard.Pipeline.model
let label run = run.sample.D.label

let label_to_int = function
  | L.Fr_family -> 0
  | L.Pp_family -> 1
  | L.Spectre_fr -> 2
  | L.Spectre_pp -> 3
  | L.Benign -> 4

let label_of_int = function
  | 0 -> L.Fr_family
  | 1 -> L.Pp_family
  | 2 -> L.Spectre_fr
  | 3 -> L.Spectre_pp
  | _ -> L.Benign

(* One representative PoC per family, harnessed like every dataset sample. *)
let poc_of_family label =
  match label with
  | L.Fr_family -> Workloads.Attacks.flush_reload ~style:Workloads.Attacks.Iaik ()
  | L.Pp_family -> Workloads.Attacks.prime_probe ~style:Workloads.Attacks.Iaik ()
  | L.Spectre_fr -> Workloads.Attacks.spectre_fr ~style:Workloads.Attacks.Classic ()
  | L.Spectre_pp -> Workloads.Attacks.spectre_pp ()
  | L.Benign -> invalid_arg "Experiments.Common: benign has no PoC"

let repository ~rng families =
  List.map
    (fun family ->
      let sample =
        D.with_harness ~rng (D.of_spec (poc_of_family family))
      in
      let run = execute sample in
      { Scaguard.Detector.family = L.to_string family; model = model run })
    families

let scaguard_predict ?threshold ?alpha repo run =
  let verdict = Scaguard.Detector.classify ?threshold ?alpha repo (model run) in
  match verdict.Scaguard.Detector.best_family with
  | Some f -> Option.value ~default:L.Benign (L.of_string f)
  | None -> L.Benign

let binarize = function L.Benign -> L.Benign | _ -> L.Fr_family

let metrics ~classes pairs =
  let to_int = label_to_int in
  Ml.Metrics.evaluate
    ~classes:(List.map to_int classes)
    (List.map (fun (p, a) -> (to_int p, to_int a)) pairs)
