(** Table IV — accuracy of attack-relevant BB identification.

    For each attack family, mutated samples are executed and analyzed;
    the counts are summed over samples, as the paper's per-family rows do:
    #BB (CFG blocks), #TAB (ground-truth attack-relevant blocks), #IAB
    (blocks of the attack-relevant graph), #ITAB (ground-truth blocks the
    approach identified), and accuracy = ITAB / TAB. *)

type row = {
  family : Workloads.Label.t;
  n_samples : int;
  bb : int;
  tab : int;
  iab : int;
  itab : int;
  accuracy : float;
}

val evaluate : rng:Sutil.Rng.t -> per_family:int -> row list
(** One row per attack family plus no average (compute it with {!average}). *)

val average : row list -> row
(** Sum counts across rows; accuracy recomputed from the sums.  The family
    field of the result is meaningless (kept as the first row's). *)

val to_table : row list -> Sutil.Table.t
