(** Shared experiment machinery: executed samples, model building, the PoC
    repository, and label plumbing between the typed workload labels and the
    detector's string families / the baselines' int labels. *)

type run = Detect.Run.t = {
  sample : Workloads.Dataset.sample;
  result : Cpu.Exec.result;
  analysis : Scaguard.Pipeline.analysis Lazy.t;
    (** modeling is lazy: the baselines only need [result] *)
}
(** Alias of {!Detect.Run.t} — the experiments and the detector abstraction
    share one executed-sample type. *)

val execute : Workloads.Dataset.sample -> run
val execute_all : Workloads.Dataset.sample list -> run list

val model : run -> Scaguard.Model.t
val label : run -> Workloads.Label.t

val label_to_int : Workloads.Label.t -> int
val label_of_int : int -> Workloads.Label.t

val families_of_strings :
  string list -> (Workloads.Label.t list, Scaguard.Err.t) result
(** Map family names ({!Workloads.Label.of_string}) to labels.
    [Error (Invalid_config {field = "families"; _})] naming every unknown
    name (a typo must not silently shrink the repository);
    [Error Empty_repository] on an empty list. *)

val repository_service :
  config:Scaguard.Config.t ->
  rng:Sutil.Rng.t ->
  Workloads.Label.t list ->
  (Scaguard.Detector.repository * Scaguard.Service.report, Scaguard.Err.t)
  result
(** One harnessed PoC model per requested family (the paper's "only one PoC
    per attack type" repository), built through {!Scaguard.Service.build}
    with [config]'s domains/cache/limits.  Sample construction stays
    sequential (it consumes [rng]); the executions fan out over the service
    — models are byte-identical to a sequential build either way.  The
    harness varies with [rng], so cache users must fold the workload seed
    into [config.salt].  [Error Empty_repository] on an empty family
    list. *)

val repository :
  ?config:Scaguard.Config.t ->
  rng:Sutil.Rng.t -> Workloads.Label.t list -> Scaguard.Detector.repository
(** {!repository_service} for callers that need no report: returns the
    repository (empty for an empty family list).
    @raise Invalid_argument if [config] is invalid. *)

val scaguard_predict :
  ?threshold:float -> ?alpha:float ->
  Scaguard.Detector.repository -> run -> Workloads.Label.t
(** Classify a run with SCAGuard; below-threshold verdicts map to
    [Benign]. *)

val binarize : Workloads.Label.t -> Workloads.Label.t
(** Collapse every attack family to [Fr_family] (used as the generic
    "Attack" class for E3's detection-only scoring). *)

val metrics :
  classes:Workloads.Label.t list ->
  (Workloads.Label.t * Workloads.Label.t) list ->
  Ml.Metrics.scores
(** [(predicted, actual)] pairs to macro scores. *)
