(** Shared experiment machinery: executed samples, model building, the PoC
    repository, and label plumbing between the typed workload labels and the
    detector's string families / the baselines' int labels. *)

type run = {
  sample : Workloads.Dataset.sample;
  result : Cpu.Exec.result;
  analysis : Scaguard.Pipeline.analysis Lazy.t;
    (** modeling is lazy: the baselines only need [result] *)
}

val execute : Workloads.Dataset.sample -> run
val execute_all : Workloads.Dataset.sample list -> run list

val model : run -> Scaguard.Model.t
val label : run -> Workloads.Label.t

val label_to_int : Workloads.Label.t -> int
val label_of_int : int -> Workloads.Label.t

val repository :
  ?domains:int -> ?cache:Scaguard.Model_cache.t -> ?salt:string ->
  rng:Sutil.Rng.t -> Workloads.Label.t list -> Scaguard.Detector.repository
(** One harnessed PoC model per requested family (the paper's "only one PoC
    per attack type" repository).  Sample construction stays sequential (it
    consumes [rng]); the executions fan out over [domains] workers through
    {!Scaguard.Pipeline.build_models_batch}, optionally backed by [cache]
    — models are byte-identical to the sequential build either way.  The
    harness varies with [rng], so cache users must fold the workload seed
    into [salt]. *)

val scaguard_predict :
  ?threshold:float -> ?alpha:float ->
  Scaguard.Detector.repository -> run -> Workloads.Label.t
(** Classify a run with SCAGuard; below-threshold verdicts map to
    [Benign]. *)

val binarize : Workloads.Label.t -> Workloads.Label.t
(** Collapse every attack family to [Fr_family] (used as the generic
    "Attack" class for E3's detection-only scoring). *)

val metrics :
  classes:Workloads.Label.t list ->
  (Workloads.Label.t * Workloads.Label.t) list ->
  Ml.Metrics.scores
(** [(predicted, actual)] pairs to macro scores. *)
