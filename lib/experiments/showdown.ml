module D = Workloads.Dataset
module L = Workloads.Label

type row = {
  key : string;
  name : string;
  scores : Ml.Metrics.scores;
  per_class : Ml.Metrics.class_scores list;
  detection : Ml.Metrics.scores;
  train_s : float;
  predict_s : float;
  tested : int;
  throughput : float;
  ensemble : Detect.Ensemble.stats option;
}

type t = {
  rows : row list;
  per_family : int;
  train_size : int;
  test_size : int;
  tau : float;
  prep_s : float;
}

let split_half xs =
  let n = List.length xs / 2 in
  let rec go i acc = function
    | [] -> (List.rev acc, [])
    | x :: rest when i < n -> go (i + 1) (x :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  go 0 [] xs

(* Compiler-shaped benign traffic: every MinC benign kernel, compiled
   unoptimized into the training split and optimized into the test split —
   "the same program through a different compiler", which is exactly the
   variation a deployed screen sees. *)
let minc_samples ~optimize =
  List.map
    (fun (name, src) ->
      {
        D.name = Printf.sprintf "minc-%s-O%d" name (if optimize then 1 else 0);
        label = L.Benign;
        program = Minc.Codegen.compile_source ~optimize ~name src;
        init = (fun _ -> ());
        victim = None;
        settings = None;
      })
    Minc.Programs.benign_sources

let dataset ~rng ~per_family =
  let attack_splits =
    List.map
      (fun l -> split_half (D.mutated_attacks ~rng ~count:per_family l))
      L.attack_labels
  in
  let benign_train, benign_test =
    split_half (D.benign_samples ~rng ~count:(2 * per_family))
  in
  let train =
    List.concat_map fst attack_splits @ benign_train @ minc_samples ~optimize:false
  in
  let test =
    List.concat_map snd attack_splits @ benign_test @ minc_samples ~optimize:true
  in
  (train, test)

let label_runs runs = List.map (fun r -> (r, Common.label r)) runs

let binarize_pairs pairs =
  List.map (fun (p, a) -> (Common.binarize p, Common.binarize a)) pairs

let classes_int = List.map Common.label_to_int L.all

let evaluate ?detectors ?tau ~rng ~per_family () =
  let detectors = match detectors with Some ks -> ks | None -> Detect.keys () in
  let tau =
    Option.value tau
      ~default:Scaguard.Config.default.Scaguard.Config.ensemble_tau
  in
  let train_samples, test_samples = dataset ~rng ~per_family in
  let train = label_runs (Common.execute_all train_samples) in
  let test = label_runs (Common.execute_all test_samples) in
  let repo = Common.repository ~rng L.attack_labels in
  (* Force every test model up front: the shared lazy analyses are charged
     to dataset preparation, so each detector's predict time is its own
     inference cost — and the ensemble's edge over SCAGuard is purely the
     DTW it skips, not modeling it happens to inherit. *)
  let (), prep_s =
    Detect.timed (fun () ->
        List.iter (fun (r, _) -> ignore (Common.model r)) test)
  in
  let ctx =
    Detect.make_ctx ~rng ~repository:repo ~known_families:L.attack_labels
      ~classes:L.all ~ensemble_tau:tau ()
  in
  let rows =
    List.map
      (fun key ->
        let entry = Detect.find_exn key in
        let module Dm = (val entry.Detect.detector) in
        Detect.Ensemble.reset_stats ();
        let m, train_s = Detect.timed (fun () -> Dm.train ctx train) in
        let preds, predict_s =
          Detect.timed (fun () -> List.map (fun (r, _) -> Dm.predict m r) test)
        in
        let pairs = List.map2 (fun p (_, truth) -> (p, truth)) preds test in
        let int_pairs =
          List.map
            (fun (p, a) -> (Common.label_to_int p, Common.label_to_int a))
            pairs
        in
        let tested = List.length pairs in
        {
          key;
          name = entry.Detect.label;
          scores = Common.metrics ~classes:L.all pairs;
          per_class = Ml.Metrics.per_class ~classes:classes_int int_pairs;
          detection =
            Common.metrics
              ~classes:[ L.Fr_family; L.Benign ]
              (binarize_pairs pairs);
          train_s;
          predict_s;
          tested;
          throughput = float_of_int tested /. Float.max predict_s 1e-9;
          ensemble =
            (if key = "ensemble" then Some (Detect.Ensemble.stats ())
             else None);
        })
      detectors
  in
  {
    rows;
    per_family;
    train_size = List.length train;
    test_size = List.length test;
    tau;
    prep_s;
  }

let to_table t =
  let tbl =
    Sutil.Table.create
      ~title:
        (Printf.sprintf
           "Detector showdown: %d train / %d test runs, screening tau %g"
           t.train_size t.test_size t.tau)
      [
        "Detector";
        "Accuracy";
        "Precision";
        "Recall";
        "F1";
        "Detect-F1";
        "Train (s)";
        "Predict (s)";
        "Runs/s";
        "Slow path";
      ]
  in
  List.iter
    (fun r ->
      Sutil.Table.add_row tbl
        [
          r.name;
          Sutil.Table.pct r.scores.Ml.Metrics.accuracy;
          Sutil.Table.pct r.scores.Ml.Metrics.precision;
          Sutil.Table.pct r.scores.Ml.Metrics.recall;
          Sutil.Table.pct r.scores.Ml.Metrics.f1;
          Sutil.Table.pct r.detection.Ml.Metrics.f1;
          Printf.sprintf "%.3f" r.train_s;
          Printf.sprintf "%.3f" r.predict_s;
          Printf.sprintf "%.1f" r.throughput;
          (match r.ensemble with
          | Some s ->
            Printf.sprintf "%d/%d (%s)" s.Detect.Ensemble.slow_path
              s.Detect.Ensemble.screened
              (Sutil.Table.pct (Detect.Ensemble.slow_path_rate s))
          | None -> "-");
        ])
    t.rows;
  tbl

let class_name i = L.to_string (Common.label_of_int i)

let row_to_json r =
  let ensemble =
    match r.ensemble with
    | None -> "null"
    | Some s ->
      Printf.sprintf
        {|{"screened":%d,"fast_rejects":%d,"slow_path":%d,"slow_confirms":%d,"slow_path_rate":%.17g}|}
        s.Detect.Ensemble.screened s.Detect.Ensemble.fast_rejects
        s.Detect.Ensemble.slow_path s.Detect.Ensemble.slow_confirms
        (Detect.Ensemble.slow_path_rate s)
  in
  Printf.sprintf
    {|{"key":%S,"name":%S,"scores":%s,"per_class":%s,"detection":%s,"train_s":%.17g,"predict_s":%.17g,"tested":%d,"throughput":%.17g,"ensemble":%s}|}
    r.key r.name
    (Ml.Metrics.to_json r.scores)
    (Ml.Metrics.class_scores_to_json ~name:class_name r.per_class)
    (Ml.Metrics.to_json r.detection)
    r.train_s r.predict_s r.tested r.throughput ensemble

let to_json t =
  Printf.sprintf
    {|{"per_family":%d,"train":%d,"test":%d,"tau":%.17g,"prep_s":%.17g,"detectors":[%s]}|}
    t.per_family t.train_size t.test_size t.tau t.prep_s
    (String.concat "," (List.map row_to_json t.rows))
