type row = { id : string; scenario : string; description : string; score : float }

let model_of_spec ~rng spec =
  Common.model
    (Common.execute
       (Workloads.Dataset.with_harness ~rng (Workloads.Dataset.of_spec spec)))

(* A benign sample with a non-empty model, so S5 compares real models
   rather than trivially scoring 0 against an empty one. *)
let benign_model ~rng =
  let rec pick tries =
    let candidates = Workloads.Dataset.benign_samples ~rng ~count:4 in
    let models = List.map (fun s -> Common.model (Common.execute s)) candidates in
    match List.find_opt (fun m -> not (Scaguard.Model.is_empty m)) models with
    | Some m -> m
    | None when tries > 0 -> pick (tries - 1)
    | None -> List.hd models
  in
  pick 8

let evaluate ~rng =
  let open Workloads.Attacks in
  let fr = model_of_spec ~rng (flush_reload ~style:Iaik ()) in
  let fr' = model_of_spec ~rng (flush_reload ~style:Mastik ()) in
  let er = model_of_spec ~rng (evict_reload ()) in
  let pp = model_of_spec ~rng (prime_probe ~style:Iaik ()) in
  let sfr = model_of_spec ~rng (spectre_fr ~style:Classic ()) in
  let ben = benign_model ~rng in
  let s m1 m2 = Scaguard.Dtw.compare_models m1 m2 in
  [
    { id = "S1"; scenario = "FR vs another FR implementation";
      description = "different implementations of the same attack";
      score = s fr fr' };
    { id = "S2"; scenario = "FR vs Evict+Reload";
      description = "different variants of the same attack";
      score = s fr er };
    { id = "S3"; scenario = "FR vs Prime+Probe";
      description = "different attacks exploiting the same vulnerability";
      score = s fr pp };
    { id = "S4"; scenario = "FR vs its Spectre variant";
      description = "variants exploiting different vulnerabilities";
      score = s fr sfr };
    { id = "S5"; scenario = "FR vs benign program";
      description = "an attack program and a benign program";
      score = s fr ben };
  ]

let to_table rows =
  let t =
    Sutil.Table.create ~title:"Table V: similarity of 5 typical scenarios"
      [ "No."; "Scenario"; "Description"; "Score" ]
  in
  List.iter
    (fun r ->
      Sutil.Table.add_row t
        [ r.id; r.scenario; r.description; Sutil.Table.pct r.score ])
    rows;
  t
