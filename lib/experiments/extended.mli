(** Extended baseline comparison beyond Table VI: the related-work
    victim-oriented anomaly detector (no attack samples needed) and the
    Phased-Guard two-phase detector, evaluated on the E1 and E2 tasks next
    to SCAGuard. *)

type approach = Anomaly_only | Phased_guard | Scaguard_ref

val approach_name : approach -> string

val evaluate :
  rng:Sutil.Rng.t -> per_family:int -> Table6.task ->
  (approach * Ml.Metrics.scores) list
(** Anomaly-only is scored as binary attack-vs-benign (it cannot classify);
    the others use the task's classes. *)

val to_table :
  (Table6.task * (approach * Ml.Metrics.scores) list) list -> Sutil.Table.t
