module L = Workloads.Label

type point = { threshold : float; precision : float; recall : float; f1 : float }

let default_thresholds = List.init 19 (fun i -> 0.05 *. float_of_int (i + 1))

let evaluate ~rng ~per_family ?(thresholds = default_thresholds) () =
  let td = Table6.prepare ~rng ~per_family Table6.E1 in
  let entry = Detect.find_exn "scaguard" in
  let module Dm = (val entry.Detect.detector) in
  let m = Dm.train (Table6.context ~rng td) [] in
  (* Score each test run once ([Detect.S.score] is the best match at
     threshold 0); re-threshold per sweep point. *)
  let scored =
    List.map
      (fun (run, truth) -> (Dm.score m run, truth))
      (Table6.test_runs td)
  in
  List.map
    (fun threshold ->
      let pairs =
        List.map
          (fun (best, truth) ->
            let prediction =
              match best with
              | Some (family, score) when score >= threshold -> family
              | Some _ | None -> L.Benign
            in
            (prediction, truth))
          scored
      in
      let s = Common.metrics ~classes:L.all pairs in
      {
        threshold;
        precision = s.Ml.Metrics.precision;
        recall = s.Ml.Metrics.recall;
        f1 = s.Ml.Metrics.f1;
      })
    thresholds

let plateau ?(floor = 0.9) points =
  let ok p = p.precision >= floor && p.recall >= floor && p.f1 >= floor in
  let best = ref None in
  let current = ref [] in
  let flush_run () =
    match !current with
    | [] -> ()
    | run ->
      let lo = List.fold_left (fun a p -> min a p.threshold) 1.0 run in
      let hi = List.fold_left (fun a p -> max a p.threshold) 0.0 run in
      (match !best with
      | Some (blo, bhi) when bhi -. blo >= hi -. lo -> ()
      | Some _ | None -> best := Some (lo, hi));
      current := []
  in
  List.iter (fun p -> if ok p then current := p :: !current else flush_run ()) points;
  flush_run ();
  !best

let to_table points =
  let t =
    Sutil.Table.create ~title:"Fig. 5: classification vs similarity threshold"
      [ "Threshold"; "Precision"; "Recall"; "F1-score" ]
  in
  List.iter
    (fun p ->
      Sutil.Table.add_row t
        [
          Sutil.Table.pct p.threshold;
          Sutil.Table.pct p.precision;
          Sutil.Table.pct p.recall;
          Sutil.Table.pct p.f1;
        ])
    points;
  t
