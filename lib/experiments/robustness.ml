module A = Workloads.Attacks
module L = Workloads.Label

type leak_row = {
  poc : string;
  variant : string;
  leaked : bool;
  detected : bool;
}

let smt h () = (h (), None)

let hierarchy_variants =
  [
    ("LRU (SMT)", smt (fun () -> Cache.Hierarchy.create ()));
    ("FIFO", smt (fun () -> Cache.Hierarchy.create ~policy:Cache.Policy.Fifo ()));
    ("Random", smt (fun () -> Cache.Hierarchy.create ~policy:(Cache.Policy.Random 1) ()));
    ("prefetcher", smt (fun () -> Cache.Hierarchy.create ~prefetch:true ()));
    ("non-inclusive LLC", smt (fun () -> Cache.Hierarchy.create ~inclusive:false ()));
    ( "cross-core",
      fun () ->
        let a, b = Cache.Hierarchy.create_cross_core () in
        (a, Some b) );
  ]

let victim_values = [ 2; 3; 5 ]

let leaked_of (spec : A.spec) res =
  match spec.A.label with
  | L.Fr_family | L.Pp_family ->
    List.mem (A.secret_guess res) victim_values
  | L.Spectre_fr | L.Spectre_pp ->
    (* skip the training-polluted line 0 *)
    let h = A.result_histogram res in
    let best = ref 1 in
    Array.iteri (fun i v -> if i >= 1 && v > h.(!best) then best := i) h;
    let expected = match spec.A.label with L.Spectre_fr -> 11 | _ -> 5 in
    !best = expected
  | L.Benign -> false

let policy_matrix ~rng =
  let repo = Common.repository ~rng L.attack_labels in
  List.concat_map
    (fun (variant, make_hierarchy) ->
      List.map
        (fun (spec : A.spec) ->
          let hierarchy, victim_hierarchy = make_hierarchy () in
          let res = A.run_spec ~hierarchy ?victim_hierarchy spec in
          let analysis =
            Scaguard.Pipeline.analyze ~name:spec.A.name
              ~program:spec.A.program res
          in
          let verdict =
            Scaguard.Detector.classify repo analysis.Scaguard.Pipeline.model
          in
          {
            poc = spec.A.name;
            variant;
            leaked = leaked_of spec res;
            detected = Scaguard.Detector.is_attack verdict;
          })
        (A.base_pocs ()))
    hierarchy_variants

let to_policy_table rows =
  let t =
    Sutil.Table.create
      ~title:"Robustness: attacks and detection across hierarchy variants"
      [ "PoC"; "Variant"; "Leaks"; "Detected" ]
  in
  List.iter
    (fun r ->
      Sutil.Table.add_row t
        [
          r.poc;
          r.variant;
          (if r.leaked then "yes" else "no");
          (if r.detected then "yes" else "no");
        ])
    rows;
  t

let detection_with_noise ~rng =
  let repo = Common.repository ~rng L.attack_labels in
  List.filter_map
    (fun (spec : A.spec) ->
      match spec.A.victim with
      | None -> None
      | Some _ ->
        let noise = Workloads.Benign.build "stream" (Sutil.Rng.copy rng) in
        let noisy_victim =
          (noise.Workloads.Benign.program, noise.Workloads.Benign.init)
        in
        let res = A.run_spec { spec with A.victim = Some noisy_victim } in
        let analysis =
          Scaguard.Pipeline.analyze ~name:spec.A.name ~program:spec.A.program
            res
        in
        let verdict =
          Scaguard.Detector.classify repo analysis.Scaguard.Pipeline.model
        in
        Some (spec.A.name, Scaguard.Detector.is_attack verdict))
    (A.base_pocs ())

let detection_without_victim ~rng =
  let repo = Common.repository ~rng L.attack_labels in
  List.filter_map
    (fun (spec : A.spec) ->
      match spec.A.victim with
      | None -> None
      | Some _ ->
        (* strip the victim: the leak fails, the behavior remains *)
        let res = A.run_spec { spec with A.victim = None } in
        let analysis =
          Scaguard.Pipeline.analyze ~name:spec.A.name ~program:spec.A.program
            res
        in
        let verdict =
          Scaguard.Detector.classify repo analysis.Scaguard.Pipeline.model
        in
        Some (spec.A.name, Scaguard.Detector.is_attack verdict))
    (A.base_pocs ())
