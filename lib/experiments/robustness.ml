module A = Workloads.Attacks
module D = Workloads.Dataset
module L = Workloads.Label

(* Every sweep below is a thin driver over the SCAGuard registry entry: a
   trained model (the family repository) plus [binary_detect] per run.
   Custom executions (hierarchy variants, swapped victims) are wrapped with
   {!Detect.Run.of_result}, which rebuilds the same lazy analysis the old
   hand-rolled [Pipeline.analyze] calls produced. *)
let scaguard_detector ~rng =
  let repo = Common.repository ~rng L.attack_labels in
  let entry = Detect.find_exn "scaguard" in
  let module Dm = (val entry.Detect.detector) in
  let m =
    Dm.train
      (Detect.make_ctx ~rng ~repository:repo ~known_families:L.attack_labels ())
      []
  in
  fun (spec : A.spec) res ->
    Dm.binary_detect m (Detect.Run.of_result ~sample:(D.of_spec spec) res)

type leak_row = {
  poc : string;
  variant : string;
  leaked : bool;
  detected : bool;
}

let smt h () = (h (), None)

let hierarchy_variants =
  [
    ("LRU (SMT)", smt (fun () -> Cache.Hierarchy.create ()));
    ("FIFO", smt (fun () -> Cache.Hierarchy.create ~policy:Cache.Policy.Fifo ()));
    ("Random", smt (fun () -> Cache.Hierarchy.create ~policy:(Cache.Policy.Random 1) ()));
    ("prefetcher", smt (fun () -> Cache.Hierarchy.create ~prefetch:true ()));
    ("non-inclusive LLC", smt (fun () -> Cache.Hierarchy.create ~inclusive:false ()));
    ( "cross-core",
      fun () ->
        let a, b = Cache.Hierarchy.create_cross_core () in
        (a, Some b) );
  ]

let victim_values = [ 2; 3; 5 ]

let leaked_of (spec : A.spec) res =
  match spec.A.label with
  | L.Fr_family | L.Pp_family ->
    List.mem (A.secret_guess res) victim_values
  | L.Spectre_fr | L.Spectre_pp ->
    (* skip the training-polluted line 0 *)
    let h = A.result_histogram res in
    let best = ref 1 in
    Array.iteri (fun i v -> if i >= 1 && v > h.(!best) then best := i) h;
    let expected = match spec.A.label with L.Spectre_fr -> 11 | _ -> 5 in
    !best = expected
  | L.Benign -> false

let policy_matrix ~rng =
  let detect = scaguard_detector ~rng in
  List.concat_map
    (fun (variant, make_hierarchy) ->
      List.map
        (fun (spec : A.spec) ->
          let hierarchy, victim_hierarchy = make_hierarchy () in
          let res = A.run_spec ~hierarchy ?victim_hierarchy spec in
          {
            poc = spec.A.name;
            variant;
            leaked = leaked_of spec res;
            detected = detect spec res;
          })
        (A.base_pocs ()))
    hierarchy_variants

let to_policy_table rows =
  let t =
    Sutil.Table.create
      ~title:"Robustness: attacks and detection across hierarchy variants"
      [ "PoC"; "Variant"; "Leaks"; "Detected" ]
  in
  List.iter
    (fun r ->
      Sutil.Table.add_row t
        [
          r.poc;
          r.variant;
          (if r.leaked then "yes" else "no");
          (if r.detected then "yes" else "no");
        ])
    rows;
  t

let detection_with_noise ~rng =
  let detect = scaguard_detector ~rng in
  List.filter_map
    (fun (spec : A.spec) ->
      match spec.A.victim with
      | None -> None
      | Some _ ->
        let noise = Workloads.Benign.build "stream" (Sutil.Rng.copy rng) in
        let noisy_victim =
          (noise.Workloads.Benign.program, noise.Workloads.Benign.init)
        in
        let res = A.run_spec { spec with A.victim = Some noisy_victim } in
        Some (spec.A.name, detect spec res))
    (A.base_pocs ())

let detection_without_victim ~rng =
  let detect = scaguard_detector ~rng in
  List.filter_map
    (fun (spec : A.spec) ->
      match spec.A.victim with
      | None -> None
      | Some _ ->
        (* strip the victim: the leak fails, the behavior remains *)
        let res = A.run_spec { spec with A.victim = None } in
        Some (spec.A.name, detect spec res))
    (A.base_pocs ())
