module L = Workloads.Label

type variant =
  | Full
  | No_cst
  | No_syntax
  | No_step2
  | No_restoration
  | Raw_dtw

let variants = [ Full; No_cst; No_syntax; No_step2; No_restoration; Raw_dtw ]

let variant_name = function
  | Full -> "full pipeline"
  | No_cst -> "no CST term (syntax only)"
  | No_syntax -> "no syntax term (CST only)"
  | No_step2 -> "no set-overlap elimination"
  | No_restoration -> "no MST path restoration"
  | Raw_dtw -> "raw-DTW 1/(1+D) similarity"

let alpha_of = function
  | No_cst -> Some 1.0
  | No_syntax -> Some 0.0
  | Full | No_step2 | No_restoration | Raw_dtw -> None

let model_of_run variant run =
  let a = Lazy.force run.Common.analysis in
  let info = a.Scaguard.Pipeline.info in
  let name = a.Scaguard.Pipeline.name in
  match variant with
  | Full | No_cst | No_syntax | Raw_dtw -> a.Scaguard.Pipeline.model
  | No_step2 ->
    let relevant = info.Scaguard.Relevant.step1 in
    let ag =
      Scaguard.Attack_graph.build a.Scaguard.Pipeline.cfg
        ~hpc:info.Scaguard.Relevant.hpc_of_block ~relevant
    in
    Scaguard.Model.build ~name info ag
  | No_restoration ->
    (* Relevant blocks only, no connecting paths. *)
    let ag =
      {
        Scaguard.Attack_graph.relevant = info.Scaguard.Relevant.relevant;
        tree_edges = [];
        nodes = info.Scaguard.Relevant.relevant;
        edges = [];
      }
    in
    Scaguard.Model.build ~name info ag

let similarity variant m1 m2 =
  match variant with
  | Raw_dtw -> Scaguard.Dtw.compare_models_raw m1 m2
  | v -> Scaguard.Dtw.compare_models ?alpha:(alpha_of v) m1 m2

let threshold_of = function
  | Raw_dtw -> 0.45 (* the paper's threshold, matching the raw scale *)
  | _ -> Scaguard.Detector.default_threshold

let detection_scores ~rng ~per_family variant =
  let td = Table6.prepare ~rng ~per_family Table6.E1 in
  let repo =
    List.map
      (fun (p : Scaguard.Detector.poc) -> (p.Scaguard.Detector.family, p.model))
      (Table6.repository_of td)
  in
  let threshold = threshold_of variant in
  let pairs =
    List.map
      (fun (run, truth) ->
        let m = model_of_run variant run in
        let best =
          List.fold_left
            (fun acc (family, poc_model) ->
              let s = similarity variant poc_model m in
              match acc with
              | Some (_, bs) when bs >= s -> acc
              | _ -> Some (family, s))
            None repo
        in
        let prediction =
          match best with
          | Some (family, s) when s >= threshold ->
            Option.value ~default:L.Benign (L.of_string family)
          | Some _ | None -> L.Benign
        in
        (prediction, truth))
      (Table6.test_runs td)
  in
  Common.metrics ~classes:L.all pairs

let to_table results =
  let t =
    Sutil.Table.create ~title:"Ablation: E1 classification under ablated designs"
      [ "Variant"; "Precision"; "Recall"; "F1-score" ]
  in
  List.iter
    (fun (v, (s : Ml.Metrics.scores)) ->
      Sutil.Table.add_row t
        [
          variant_name v;
          Sutil.Table.pct s.Ml.Metrics.precision;
          Sutil.Table.pct s.Ml.Metrics.recall;
          Sutil.Table.pct s.Ml.Metrics.f1;
        ])
    results;
  t
