module L = Workloads.Label

type row = {
  family : L.t;
  n_samples : int;
  bb : int;
  tab : int;
  iab : int;
  itab : int;
  accuracy : float;
}

let row_of_family ~rng ~per_family family =
  let samples =
    Workloads.Dataset.mutated_attacks ~rng ~count:per_family family
  in
  let counts =
    List.map
      (fun sample ->
        let run = Common.execute sample in
        let a = Lazy.force run.Common.analysis in
        let cfg = a.Scaguard.Pipeline.cfg in
        let truth = Scaguard.Relevant.ground_truth_blocks cfg in
        let identified = a.Scaguard.Pipeline.attack_graph.Scaguard.Attack_graph.nodes in
        let itab = List.filter (fun b -> List.mem b identified) truth in
        ( Cfg.Graph.n_blocks cfg,
          List.length truth,
          List.length identified,
          List.length itab ))
      samples
  in
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 counts in
  let bb = sum (fun (x, _, _, _) -> x) in
  let tab = sum (fun (_, x, _, _) -> x) in
  let iab = sum (fun (_, _, x, _) -> x) in
  let itab = sum (fun (_, _, _, x) -> x) in
  {
    family;
    n_samples = per_family;
    bb;
    tab;
    iab;
    itab;
    accuracy = (if tab = 0 then 1.0 else float_of_int itab /. float_of_int tab);
  }

let evaluate ~rng ~per_family =
  List.map (row_of_family ~rng ~per_family) L.attack_labels

let average rows =
  match rows with
  | [] -> invalid_arg "Table4.average: no rows"
  | first :: _ ->
    let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
    let bb = sum (fun r -> r.bb) in
    let tab = sum (fun r -> r.tab) in
    let iab = sum (fun r -> r.iab) in
    let itab = sum (fun r -> r.itab) in
    {
      family = first.family;
      n_samples = sum (fun r -> r.n_samples);
      bb;
      tab;
      iab;
      itab;
      accuracy =
        (if tab = 0 then 1.0 else float_of_int itab /. float_of_int tab);
    }

let to_table rows =
  let t =
    Sutil.Table.create ~title:"Table IV: attack-relevant BB identification"
      [ "Attack"; "#BB"; "#TAB"; "#IAB"; "#ITAB"; "Accuracy" ]
  in
  let add name r =
    Sutil.Table.add_row t
      [
        name;
        string_of_int r.bb;
        string_of_int r.tab;
        string_of_int r.iab;
        string_of_int r.itab;
        Sutil.Table.pct r.accuracy;
      ]
  in
  List.iter (fun r -> add (L.to_string r.family) r) rows;
  Sutil.Table.add_separator t;
  add "Avg." (average rows);
  t
