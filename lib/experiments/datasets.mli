(** Tables II and III — dataset composition, reported with measured sample
    statistics from this implementation's generators. *)

val table2 : rng:Sutil.Rng.t -> per_family:int -> Sutil.Table.t
(** Attack dataset: families, collected base PoCs, mutated sample counts,
    mean executed instructions per sample, and the measured fraction of
    mutants that still recover their planted secret (the §IV-A "mutation
    retains attack functionality" premise, verified). *)

val table3 : rng:Sutil.Rng.t -> count:int -> Sutil.Table.t
(** Benign dataset: Table III categories with generated counts. *)
