(** Fig. 5 — SCAGuard's classification quality as the similarity threshold
    varies.  Reuses E1-style data; each test run's repository scores are
    computed once and re-thresholded per sweep point. *)

type point = {
  threshold : float;
  precision : float;
  recall : float;
  f1 : float;
}

val default_thresholds : float list
(** 0.05, 0.10, ..., 0.95. *)

val evaluate :
  rng:Sutil.Rng.t -> per_family:int -> ?thresholds:float list -> unit ->
  point list

val plateau : ?floor:float -> point list -> (float * float) option
(** [(lo, hi)] of the widest contiguous threshold range where precision,
    recall and F1 all reach [floor] (default 0.9) — how the paper picks its
    operating threshold. *)

val to_table : point list -> Sutil.Table.t
