(** Table V — similarity comparison of the five typical scenarios:
    Flush+Reload against another FR implementation (S1), Evict+Reload (S2),
    Prime+Probe (S3), its Spectre variant (S4), and a benign program (S5). *)

type row = {
  id : string;           (** "S1".."S5" *)
  scenario : string;
  description : string;
  score : float;         (** similarity in [0,1] *)
}

val evaluate : rng:Sutil.Rng.t -> row list
(** S5's benign program is a (non-empty-model) benign sample, so the
    comparison is between real models. *)

val to_table : row list -> Sutil.Table.t
