(* The batch detection engine: Detector.classify fanned out over a domain
   pool, one reusable Dtw workspace per worker, with per-batch counters.
   The repository is prepared (summarized) once and shared read-only by all
   workers; the scoring code path is exactly Detector.classify_prepared, so
   verdicts are bit-identical to the sequential path by construction. *)

type stats = {
  domains : int;
  targets : int;
  pairs : int;
  cells : int;
  pairs_pruned_lb : int;
  pairs_abandoned : int;
  cells_saved : int;
  wall_s : float;
  cpu_s : float;
  per_worker : int array;
}

let utilization s =
  if s.wall_s <= 0.0 || s.domains = 0 then 0.0
  else min 1.0 (s.cpu_s /. (s.wall_s *. float_of_int s.domains))

let throughput s = if s.wall_s <= 0.0 then 0.0 else float_of_int s.pairs /. s.wall_s

(* Observed variant of one classify task: times the verdict, feeds the
   latency histograms, and (when this task index is sampled) emits an
   engine:classify span.  Lives outside the hot closure so the un-observed
   path below stays allocation-free. *)
let classify_observed ~classify ~ws ~worker ~target i out =
  let p0 = Dtw.pairs_scored ws in
  let t0 = Obs.Clock.now_ns () in
  out.(i) <- classify ();
  let dur_ns = Obs.Clock.elapsed_ns ~since:t0 in
  let dp = Dtw.pairs_scored ws - p0 in
  if Obs.metrics () then begin
    let dt = Obs.Clock.ns_to_s dur_ns in
    Obs.Registry.observe Obs.Metrics.verdict_seconds dt;
    if dp > 0 then
      Obs.Registry.observe Obs.Metrics.dtw_pair_seconds
        (dt /. float_of_int dp)
  end;
  if Obs.sampled i then
    Obs.emit_span ~cat:"engine" ~tid:worker
      ~args:
        [ ("target", target.Model.name); ("pairs", string_of_int dp) ]
      ~name:"engine:classify" ~ts_ns:t0 ~dur_ns ()

let publish_stats s =
  let open Obs.Metrics in
  Obs.Registry.incr batches_total;
  Obs.Registry.add targets_total s.targets;
  Obs.Registry.add pairs_total s.pairs;
  Obs.Registry.add cells_total s.cells;
  Obs.Registry.add pairs_pruned_lb_total s.pairs_pruned_lb;
  Obs.Registry.add pairs_abandoned_total s.pairs_abandoned;
  Obs.Registry.add cells_saved_total s.cells_saved

let classify_batch_prepared ?threshold ?alpha ?band ?domains ?prune prep
    targets =
  let tasks = Array.length targets in
  let d = Sutil.Pool.domains_for ?domains tasks in
  let wss = Array.init d (fun _ -> Dtw.workspace ()) in
  let out = Array.make tasks Detector.empty_verdict in
  let observing = Obs.enabled () in
  let probe = if observing then Obs.pool_probe ~stage:"engine" else None in
  let wall0 = Obs.Clock.now_ns () and cpu0 = Sys.time () in
  let per_worker =
    Sutil.Pool.run ~domains:d ?probe ~tasks (fun ~worker i ->
        let ws = wss.(worker) in
        if observing then
          classify_observed
            ~classify:(fun () ->
              Detector.classify_prepared ?threshold ?alpha ?band ?prune ~ws
                prep targets.(i))
            ~ws ~worker ~target:targets.(i) i out
        else
          out.(i) <-
            Detector.classify_prepared ?threshold ?alpha ?band ?prune ~ws prep
              targets.(i))
  in
  let wall_s = Obs.Clock.elapsed_s ~since:wall0
  and cpu_s = Sys.time () -. cpu0 in
  let sum f = Array.fold_left (fun acc w -> acc + f w) 0 wss in
  let stats =
    {
      domains = d;
      targets = tasks;
      pairs = sum Dtw.pairs_scored;
      cells = sum Dtw.cells_computed;
      pairs_pruned_lb = sum Dtw.pairs_pruned_lb;
      pairs_abandoned = sum Dtw.pairs_abandoned;
      cells_saved = sum Dtw.cells_saved;
      wall_s;
      cpu_s;
      per_worker;
    }
  in
  if Obs.metrics () then publish_stats stats;
  (out, stats)

let classify_batch ?threshold ?alpha ?band ?domains ?prune repository targets =
  classify_batch_prepared ?threshold ?alpha ?band ?domains ?prune
    (Detector.prepare repository) targets

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>engine: %d targets, %d pairs, %d DP cells@,\
     pruning: %d pairs by lower bound, %d abandoned mid-DP, %d cells saved@,\
     domains %d, wall %.4fs, cpu %.4fs, utilization %.0f%%, %.0f pairs/s@,\
     per-worker targets: [%s]@]"
    s.targets s.pairs s.cells s.pairs_pruned_lb s.pairs_abandoned s.cells_saved
    s.domains s.wall_s s.cpu_s
    (100.0 *. utilization s)
    (throughput s)
    (String.concat "; "
       (Array.to_list (Array.map string_of_int s.per_worker)))
