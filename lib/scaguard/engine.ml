(* The batch detection engine: Detector.classify fanned out over a domain
   pool, one reusable Dtw workspace per worker, with per-batch counters.
   The repository is prepared (summarized) once and shared read-only by all
   workers; the scoring code path is exactly Detector.classify_prepared, so
   verdicts are bit-identical to the sequential path by construction. *)

type stats = {
  domains : int;
  targets : int;
  pairs : int;
  cells : int;
  pairs_pruned_lb : int;
  pairs_abandoned : int;
  cells_saved : int;
  wall_s : float;
  cpu_s : float;
  per_worker : int array;
}

let utilization s =
  if s.wall_s <= 0.0 || s.domains = 0 then 0.0
  else min 1.0 (s.cpu_s /. (s.wall_s *. float_of_int s.domains))

let throughput s = if s.wall_s <= 0.0 then 0.0 else float_of_int s.pairs /. s.wall_s

let classify_batch ?threshold ?alpha ?band ?domains ?prune repository targets =
  let tasks = Array.length targets in
  let d = Sutil.Pool.domains_for ?domains tasks in
  let wss = Array.init d (fun _ -> Dtw.workspace ()) in
  let out = Array.make tasks Detector.empty_verdict in
  let prep = Detector.prepare repository in
  let wall0 = Unix.gettimeofday () and cpu0 = Sys.time () in
  let per_worker =
    Sutil.Pool.run ~domains:d ~tasks (fun ~worker i ->
        out.(i) <-
          Detector.classify_prepared ?threshold ?alpha ?band ?prune
            ~ws:wss.(worker) prep targets.(i))
  in
  let wall_s = Unix.gettimeofday () -. wall0
  and cpu_s = Sys.time () -. cpu0 in
  let sum f = Array.fold_left (fun acc w -> acc + f w) 0 wss in
  ( out,
    {
      domains = d;
      targets = tasks;
      pairs = sum Dtw.pairs_scored;
      cells = sum Dtw.cells_computed;
      pairs_pruned_lb = sum Dtw.pairs_pruned_lb;
      pairs_abandoned = sum Dtw.pairs_abandoned;
      cells_saved = sum Dtw.cells_saved;
      wall_s;
      cpu_s;
      per_worker;
    } )

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>engine: %d targets, %d pairs, %d DP cells@,\
     pruning: %d pairs by lower bound, %d abandoned mid-DP, %d cells saved@,\
     domains %d, wall %.4fs, cpu %.4fs, utilization %.0f%%, %.0f pairs/s@,\
     per-worker targets: [%s]@]"
    s.targets s.pairs s.cells s.pairs_pruned_lb s.pairs_abandoned s.cells_saved
    s.domains s.wall_s s.cpu_s
    (100.0 *. utilization s)
    (throughput s)
    (String.concat "; "
       (Array.to_list (Array.map string_of_int s.per_worker)))
