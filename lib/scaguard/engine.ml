(* The batch detection engine: Detector.classify fanned out over a domain
   pool, one reusable Dtw workspace per worker, with per-batch counters.
   The repository is prepared (summarized) once and shared read-only by all
   workers; the scoring code path is exactly Detector.classify_prepared, so
   verdicts are bit-identical to the sequential path by construction. *)

type stats = {
  domains : int;
  targets : int;
  pairs : int;
  cells : int;
  pairs_pruned_lb : int;
  pairs_abandoned : int;
  cells_saved : int;
  lb_evals : int;
  nodes_visited : int;
  pairs_pruned_index : int;
  wall_s : float;
  cpu_s : float;
  per_worker : int array;
}

let utilization s =
  if s.wall_s <= 0.0 || s.domains = 0 then 0.0
  else min 1.0 (s.cpu_s /. (s.wall_s *. float_of_int s.domains))

let throughput s = if s.wall_s <= 0.0 then 0.0 else float_of_int s.pairs /. s.wall_s

(* Observed variant of one classify task: times the verdict, feeds the
   latency histograms, and (when this task index is sampled) emits an
   engine:classify span.  Lives outside the hot closure so the un-observed
   path below stays allocation-free. *)
let classify_observed ~classify ~ws ~worker ~target i out =
  let p0 = Dtw.pairs_scored ws in
  let t0 = Obs.Clock.now_ns () in
  out.(i) <- classify ();
  let dur_ns = Obs.Clock.elapsed_ns ~since:t0 in
  let dp = Dtw.pairs_scored ws - p0 in
  if Obs.metrics () then begin
    let dt = Obs.Clock.ns_to_s dur_ns in
    Obs.Registry.observe Obs.Metrics.verdict_seconds dt;
    if dp > 0 then
      Obs.Registry.observe Obs.Metrics.dtw_pair_seconds
        (dt /. float_of_int dp)
  end;
  if Obs.sampled i then
    Obs.emit_span ~cat:"engine" ~tid:worker
      ~args:
        [ ("target", target.Model.name); ("pairs", string_of_int dp) ]
      ~name:"engine:classify" ~ts_ns:t0 ~dur_ns ()

let publish_stats s =
  let open Obs.Metrics in
  Obs.Registry.incr batches_total;
  Obs.Registry.add targets_total s.targets;
  Obs.Registry.add pairs_total s.pairs;
  Obs.Registry.add cells_total s.cells;
  Obs.Registry.add pairs_pruned_lb_total s.pairs_pruned_lb;
  Obs.Registry.add pairs_abandoned_total s.pairs_abandoned;
  Obs.Registry.add cells_saved_total s.cells_saved;
  Obs.Registry.add lb_evals_total s.lb_evals;
  Obs.Registry.add pairs_pruned_index_total s.pairs_pruned_index;
  Obs.Registry.add index_nodes_visited_total s.nodes_visited

let classify_batch_prepared ?threshold ?alpha ?band ?domains ?prune prep
    targets =
  let tasks = Array.length targets in
  let d = Sutil.Pool.domains_for ?domains tasks in
  let wss = Array.init d (fun _ -> Dtw.workspace ()) in
  let ixcs = Array.init d (fun _ -> Vpindex.counters ()) in
  let out = Array.make tasks Detector.empty_verdict in
  let observing = Obs.enabled () in
  let probe = if observing then Obs.pool_probe ~stage:"engine" else None in
  let wall0 = Obs.Clock.now_ns () and cpu0 = Sys.time () in
  let per_worker =
    Sutil.Pool.run ~domains:d ?probe ~tasks (fun ~worker i ->
        let ws = wss.(worker) and ixc = ixcs.(worker) in
        if observing then
          classify_observed
            ~classify:(fun () ->
              Detector.classify_prepared ?threshold ?alpha ?band ?prune ~ws
                ~ixc prep targets.(i))
            ~ws ~worker ~target:targets.(i) i out
        else
          out.(i) <-
            Detector.classify_prepared ?threshold ?alpha ?band ?prune ~ws ~ixc
              prep targets.(i))
  in
  let wall_s = Obs.Clock.elapsed_s ~since:wall0
  and cpu_s = Sys.time () -. cpu0 in
  let sum f = Array.fold_left (fun acc w -> acc + f w) 0 wss in
  let sumix f = Array.fold_left (fun acc c -> acc + f c) 0 ixcs in
  let pairs_pruned_index =
    sumix (fun c -> c.Vpindex.pairs_pruned_index)
  in
  let stats =
    {
      domains = d;
      targets = tasks;
      (* index-pruned pairs were never handed to the scorer, so they are
         added back here: [pairs] stays targets x repository however the
         candidates were enumerated *)
      pairs = sum Dtw.pairs_scored + pairs_pruned_index;
      cells = sum Dtw.cells_computed;
      pairs_pruned_lb = sum Dtw.pairs_pruned_lb;
      pairs_abandoned = sum Dtw.pairs_abandoned;
      cells_saved = sum Dtw.cells_saved;
      lb_evals = sum Dtw.lb_evals;
      nodes_visited = sumix (fun c -> c.Vpindex.nodes_visited);
      pairs_pruned_index;
      wall_s;
      cpu_s;
      per_worker;
    }
  in
  if Obs.metrics () then publish_stats stats;
  (out, stats)

let classify_batch ?threshold ?alpha ?band ?domains ?prune ?index repository
    targets =
  classify_batch_prepared ?threshold ?alpha ?band ?domains ?prune
    (Detector.prepare ?index repository) targets

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>engine: %d targets, %d pairs, %d DP cells@,\
     pruning: %d pairs by lower bound, %d abandoned mid-DP, %d cells saved@,\
     index: %d pairs pruned, %d nodes visited, %d lower bounds evaluated@,\
     domains %d, wall %.4fs, cpu %.4fs, utilization %.0f%%, %.0f pairs/s@,\
     per-worker targets: [%s]@]"
    s.targets s.pairs s.cells s.pairs_pruned_lb s.pairs_abandoned s.cells_saved
    s.pairs_pruned_index s.nodes_visited s.lb_evals
    s.domains s.wall_s s.cpu_s
    (100.0 *. utilization s)
    (throughput s)
    (String.concat "; "
       (Array.to_list (Array.map string_of_int s.per_worker)))
