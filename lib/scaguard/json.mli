(** A minimal strict JSON reader/writer — the wire format of the serve
    protocol ({!Server}), the structured event log ({!Log}) and the
    provenance records ({!Provenance}); no external JSON dependency.  The
    parser rejects trailing garbage, raw control characters in strings,
    lone surrogates, non-finite numbers and nesting deeper than
    {!max_depth} levels — a hostile frame can fail a request but never
    confuse the framing. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Fail of int * string
(** Raised internally by the parser; {!parse} catches it.  Exposed so
    callers embedding the parser pieces see a typed failure. *)

val max_depth : int
(** Maximum accepted nesting depth (64). *)

val parse : string -> (t, string) result
(** Parse one complete JSON value; the error carries a byte offset. *)

val num_to_string : float -> string
(** Integral [Num]s print without an exponent or decimal point; other
    finite floats print as [%.17g] (shortest exact round-trip for
    similarity scores); non-finite floats print as ["null"]. *)

val to_buf : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact single-line rendering (no raw newlines — safe to frame).
    Number formatting as {!num_to_string}. *)

val member : string -> t -> t option
(** First binding of a key in an [Obj]; [None] otherwise. *)
