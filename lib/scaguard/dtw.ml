(* DP over (accumulated cost, path length); the length of the optimal path
   normalizes the distance so scores are comparable across model sizes. *)
let dp ~cost a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 && m = 0 then (0.0, 1)
  else if n = 0 || m = 0 then (infinity, 1)
  else begin
    let inf = infinity in
    let prev_c = Array.make (m + 1) inf in
    let prev_l = Array.make (m + 1) 0 in
    let cur_c = Array.make (m + 1) inf in
    let cur_l = Array.make (m + 1) 0 in
    prev_c.(0) <- 0.0;
    for i = 1 to n do
      cur_c.(0) <- inf;
      cur_l.(0) <- 0;
      for j = 1 to m do
        let c = cost a.(i - 1) b.(j - 1) in
        (* predecessors: (i-1,j) delete, (i,j-1) insert, (i-1,j-1) match *)
        let pc, pl =
          let c1 = prev_c.(j) and c2 = cur_c.(j - 1) and c3 = prev_c.(j - 1) in
          if c3 <= c1 && c3 <= c2 then (c3, prev_l.(j - 1))
          else if c1 <= c2 then (c1, prev_l.(j))
          else (c2, cur_l.(j - 1))
        in
        cur_c.(j) <- c +. pc;
        cur_l.(j) <- pl + 1
      done;
      Array.blit cur_c 0 prev_c 0 (m + 1);
      Array.blit cur_l 0 prev_l 0 (m + 1)
    done;
    (prev_c.(m), max 1 prev_l.(m))
  end

let distance ~cost a b = fst (dp ~cost a b)

let normalized_distance ~cost a b =
  let d, len = dp ~cost a b in
  if d = infinity then 1.0 else d /. float_of_int len

let similarity_of_distance d = 1.0 /. (1.0 +. d)

let entries m = Array.of_list m.Model.entries

let compare_models ?alpha m1 m2 =
  1.0
  -. normalized_distance
       ~cost:(Distance.entry_distance ?alpha)
       (entries m1) (entries m2)

let compare_models_raw ?alpha m1 m2 =
  similarity_of_distance
    (distance ~cost:(Distance.entry_distance ?alpha) (entries m1) (entries m2))
