(* DP over (accumulated cost, path length); the length of the optimal path
   normalizes the distance so scores are comparable across model sizes.

   Two optional refinements serve the batch engine:
   - a workspace reuses the four DP rows (and the Levenshtein rows of the
     entry cost) across calls, making the hot path allocation-free;
   - a Sakoe-Chiba band restricts the DP to |i - j| <= band, with an early
     bail-out (infinite distance) when the length difference alone exceeds
     the band.  Without [band] the full matrix is computed and results are
     bit-identical to the unbanded code.

   On top sits an *exact* pruning cascade (UCR-suite style) used by the
   detector's best-so-far loop: precomputed per-model summaries yield cheap
   lower bounds on the normalized distance, and the DP itself can abandon
   early against a score cutoff.  Soundness notes are kept next to each
   bound; the margin below absorbs float rounding so a mathematically-sound
   bound can never prune a pair whose computed score would have tied the
   best. *)

type workspace = {
  mutable prev_c : float array;
  mutable prev_l : int array;
  mutable cur_c : float array;
  mutable cur_l : int array;
  lev : Sutil.Levenshtein.workspace;
  mutable pairs : int;
  mutable cells : int;
  mutable lb_pruned : int;
  mutable abandoned : int;
  mutable cells_saved : int;
  mutable lb_evals : int;
}

let workspace () =
  {
    prev_c = [||];
    prev_l = [||];
    cur_c = [||];
    cur_l = [||];
    lev = Sutil.Levenshtein.workspace ();
    pairs = 0;
    cells = 0;
    lb_pruned = 0;
    abandoned = 0;
    cells_saved = 0;
    lb_evals = 0;
  }

let pairs_scored ws = ws.pairs
let cells_computed ws = ws.cells
let pairs_pruned_lb ws = ws.lb_pruned
let pairs_abandoned ws = ws.abandoned
let cells_saved ws = ws.cells_saved
let lb_evals ws = ws.lb_evals

let ensure ws len =
  if Array.length ws.prev_c < len then begin
    let cap = max len (2 * Array.length ws.prev_c) in
    ws.prev_c <- Array.make cap infinity;
    ws.prev_l <- Array.make cap 0;
    ws.cur_c <- Array.make cap infinity;
    ws.cur_l <- Array.make cap 0
  end

(* Number of DP cells the (possibly banded) DP visits for an n x m pair;
   used to account for the work a pruned pair would have cost. *)
let band_cells ?band n m =
  match band with
  | None -> n * m
  | Some w ->
    let total = ref 0 in
    for i = 1 to n do
      let jlo = max 1 (i - w) and jhi = min m (i + w) in
      if jhi >= jlo then total := !total + (jhi - jlo + 1)
    done;
    !total

let dp ?ws ?band ?cutoff ~cost a b =
  (match ws with Some w -> w.pairs <- w.pairs + 1 | None -> ());
  let n = Array.length a and m = Array.length b in
  if n = 0 && m = 0 then (0.0, 1)
  else if n = 0 || m = 0 then (infinity, 1)
  else if (match band with Some w -> abs (n - m) > w | None -> false) then
    (* no monotone path stays within the band: bail out without any DP work *)
    (infinity, 1)
  else begin
    let inf = infinity in
    let width = match band with Some w -> w | None -> max n m in
    let prev_c, prev_l, cur_c, cur_l =
      match ws with
      | Some w ->
        ensure w (m + 1);
        (w.prev_c, w.prev_l, w.cur_c, w.cur_l)
      | None ->
        ( Array.make (m + 1) inf,
          Array.make (m + 1) 0,
          Array.make (m + 1) inf,
          Array.make (m + 1) 0 )
    in
    Array.fill prev_c 0 (m + 1) inf;
    Array.fill prev_l 0 (m + 1) 0;
    prev_c.(0) <- 0.0;
    let cells = ref 0 in
    let abandoned_at = ref 0 in
    let i = ref 1 in
    while !abandoned_at = 0 && !i <= n do
      let row = !i in
      let jlo = max 1 (row - width) and jhi = min m (row + width) in
      cur_c.(jlo - 1) <- inf;
      cur_l.(jlo - 1) <- 0;
      let row_min = ref inf in
      for j = jlo to jhi do
        let c = cost a.(row - 1) b.(j - 1) in
        (* predecessors: (i-1,j) delete, (i,j-1) insert, (i-1,j-1) match *)
        let pc, pl =
          let c1 = prev_c.(j) and c2 = cur_c.(j - 1) and c3 = prev_c.(j - 1) in
          if c3 <= c1 && c3 <= c2 then (c3, prev_l.(j - 1))
          else if c1 <= c2 then (c1, prev_l.(j))
          else (c2, cur_l.(j - 1))
        in
        let v = c +. pc in
        cur_c.(j) <- v;
        cur_l.(j) <- pl + 1;
        if v < !row_min then row_min := v
      done;
      cells := !cells + (jhi - jlo + 1);
      (* seal the band edge so the next row reads infinity outside it *)
      if jhi < m then begin
        cur_c.(jhi + 1) <- inf;
        cur_l.(jhi + 1) <- 0
      end;
      let hi = min m (jhi + 1) in
      Array.blit cur_c (jlo - 1) prev_c (jlo - 1) (hi - jlo + 2);
      Array.blit cur_l (jlo - 1) prev_l (jlo - 1) (hi - jlo + 2);
      (* every warping path crosses every row, so the row minimum is a lower
         bound on the final accumulated cost: once it exceeds the cutoff the
         pair can never come back.  Cell costs are non-negative, so this
         check is float-exact (accumulation is monotone). *)
      (match cutoff with
      | Some cut when !row_min > cut -> abandoned_at := row
      | _ -> ());
      incr i
    done;
    (match ws with Some w -> w.cells <- w.cells + !cells | None -> ());
    if !abandoned_at > 0 then begin
      (match ws with
      | Some w ->
        w.abandoned <- w.abandoned + 1;
        let saved = ref 0 in
        for k = !abandoned_at + 1 to n do
          let jlo = max 1 (k - width) and jhi = min m (k + width) in
          if jhi >= jlo then saved := !saved + (jhi - jlo + 1)
        done;
        w.cells_saved <- w.cells_saved + !saved
      | None -> ());
      (infinity, 1)
    end
    else (prev_c.(m), max 1 prev_l.(m))
  end

let distance ?ws ?band ?cutoff ~cost a b = fst (dp ?ws ?band ?cutoff ~cost a b)

let normalized_distance ?ws ?band ~cost a b =
  let d, len = dp ?ws ?band ~cost a b in
  if d = infinity then 1.0 else d /. float_of_int len

let similarity_of_distance d = 1.0 /. (1.0 +. d)

(* Cost selection: [interned] (the default) compares token ids; [false]
   replays the string-token reference cost.  Scores are bit-identical — the
   flag exists so tests and the bench can assert exactly that. *)
let entry_cost ~interned ?lev ?alpha () =
  if interned then Distance.entry_distance ?lev ?alpha
  else Distance.entry_distance_strings ?lev ?alpha

(* An empty model carries no behavior to compare: any score against it —
   including another empty model — is 0, never a perfect match. *)
let compare_models ?ws ?band ?alpha ?(interned = true) m1 m2 =
  if Model.is_empty m1 || Model.is_empty m2 then begin
    (match ws with Some w -> w.pairs <- w.pairs + 1 | None -> ());
    0.0
  end
  else
    let lev = match ws with Some w -> Some w.lev | None -> None in
    1.0
    -. normalized_distance ?ws ?band
         ~cost:(entry_cost ~interned ?lev ?alpha ())
         (Model.entries_array m1) (Model.entries_array m2)

let compare_models_raw ?ws ?band ?alpha ?(interned = true) m1 m2 =
  if Model.is_empty m1 || Model.is_empty m2 then begin
    (match ws with Some w -> w.pairs <- w.pairs + 1 | None -> ());
    0.0
  end
  else
    let lev = match ws with Some w -> Some w.lev | None -> None in
    similarity_of_distance
      (distance ?ws ?band
         ~cost:(entry_cost ~interned ?lev ?alpha ())
         (Model.entries_array m1) (Model.entries_array m2))

(* ------------------------------------------------------------------ *)
(* Per-model summaries and the exact lower-bound cascade.              *)

type summary = {
  s_model : Model.t;
  s_entries : Model.entry array;
  s_lens : int array;       (* normalized-token count per entry *)
  s_mags : float array;     (* cache-change magnitude per entry *)
  s_sorted_mags : float array;  (* s_mags, ascending *)
}

let of_mags m s_mags =
  let s_entries = Model.entries_array m in
  let s_lens = Array.map (fun e -> Array.length e.Model.tokens) s_entries in
  let s_sorted_mags = Array.copy s_mags in
  Array.sort Float.compare s_sorted_mags;
  { s_model = m; s_entries; s_lens; s_mags; s_sorted_mags }

let summarize m =
  let entries = Model.entries_array m in
  of_mags m (Array.map (fun e -> Cst.change_magnitude e.Model.cst) entries)

(* The binary repository image stores each model's magnitudes inline; they
   are pure functions of the (exactly round-tripped) CST floats, so handing
   them back here rebuilds the summary [summarize] would have computed,
   without touching Cst on the load path. *)
let summarize_with ~mags m =
  let n = Array.length (Model.entries_array m) in
  if Array.length mags <> n then
    invalid_arg
      (Printf.sprintf
         "Dtw.summarize_with: %d magnitudes for a %d-entry model"
         (Array.length mags) n);
  of_mags m (Array.copy mags)

let summary_model s = s.s_model
let summary_size s = Array.length s.s_entries
let summary_lens s = s.s_lens
let summary_mags s = s.s_mags

(* All bounds below bound the *normalized* distance D/L.  Since every step
   cost is in [0,1] (for alpha in [0,1]) the normalized distance is in
   [0,1], and any warping path over an n x m matrix has length
   L <= n + m - 1; dividing an accumulated-cost bound by Lmax = n + m - 1
   therefore under-approximates D/L. *)
let lower_bound ?ws ?(alpha = Distance.default_alpha) sa sb =
  (match ws with Some w -> w.lb_evals <- w.lb_evals + 1 | None -> ());
  let n = Array.length sa.s_entries and m = Array.length sb.s_entries in
  if n = 0 || m = 0 then 0.0
  else begin
    let beta = 1.0 -. alpha in
    let lmax = float_of_int (n + m - 1) in
    (* Stage A, O(1): if the magnitude ranges of the two models are
       disjoint, every single step costs at least beta * gap, and
       D/L >= beta * gap regardless of path length. *)
    let gap =
      let amin = sa.s_sorted_mags.(0) and amax = sa.s_sorted_mags.(n - 1) in
      let bmin = sb.s_sorted_mags.(0) and bmax = sb.s_sorted_mags.(m - 1) in
      Float.max 0.0 (Float.max (amin -. bmax) (bmin -. amax))
    in
    let lb = ref (beta *. gap) in
    (* Stage B, LB_Kim: every path starts at (1,1) and ends at (n,m), so D
       includes those two (distinct, when n+m >= 3) cell costs. *)
    let lev = match ws with Some w -> Some w.lev | None -> None in
    let kim =
      let c_first =
        Distance.entry_distance ?lev ~alpha sa.s_entries.(0) sb.s_entries.(0)
      in
      if n = 1 && m = 1 then c_first (* D = c_first, L = 1 *)
      else
        let c_last =
          Distance.entry_distance ?lev ~alpha
            sa.s_entries.(n - 1)
            sb.s_entries.(m - 1)
        in
        (c_first +. c_last) /. lmax
    in
    if kim > !lb then lb := kim;
    (* Stage C, O(n*m) in cheap scalar ops (no Levenshtein DPs): a warping
       path visits every row and every column at least once, each visit a
       distinct step, so D >= max(sum_i min_j lb(i,j), sum_j min_i lb(j,i))
       with lb the O(1) per-entry bound. *)
    let rows = ref 0.0 in
    for i = 0 to n - 1 do
      let best = ref infinity in
      let ea = (sa.s_lens.(i), sa.s_mags.(i)) in
      for j = 0 to m - 1 do
        let c =
          Distance.entry_lower_bound ~alpha ea (sb.s_lens.(j), sb.s_mags.(j))
        in
        if c < !best then best := c
      done;
      rows := !rows +. !best
    done;
    let cols = ref 0.0 in
    for j = 0 to m - 1 do
      let best = ref infinity in
      let eb = (sb.s_lens.(j), sb.s_mags.(j)) in
      for i = 0 to n - 1 do
        let c =
          Distance.entry_lower_bound ~alpha (sa.s_lens.(i), sa.s_mags.(i)) eb
        in
        if c < !best then best := c
      done;
      cols := !cols +. !best
    done;
    let stage_c = Float.max !rows !cols /. lmax in
    if stage_c > !lb then lb := stage_c;
    !lb
  end

(* Margin, in score space, absorbing float rounding between a bound and the
   score the exact DP would compute: a pair is only pruned when its bound
   proves the score misses the cutoff by more than this. *)
let prune_margin = 1e-9

let compare_summaries ?ws ?band ?alpha ?cutoff ?lb sa sb =
  if Model.is_empty sa.s_model || Model.is_empty sb.s_model then begin
    (match ws with Some w -> w.pairs <- w.pairs + 1 | None -> ());
    Some 0.0
  end
  else begin
    let n = Array.length sa.s_entries and m = Array.length sb.s_entries in
    if (match band with Some w -> abs (n - m) > w | None -> false) then begin
      (* outside the band the DP would bail out to similarity 0; keep the
         exact compare_models convention without paying for the call *)
      (match ws with Some w -> w.pairs <- w.pairs + 1 | None -> ());
      Some 0.0
    end
    else begin
      (* score >= cutoff  <=>  normalized distance <= 1 - cutoff =: dmax *)
      let dmax =
        match cutoff with
        | Some c -> 1.0 -. c +. prune_margin
        | None -> infinity
      in
      let pruned_by_lb =
        dmax < infinity
        &&
        let l = match lb with Some l -> l | None -> lower_bound ?ws ?alpha sa sb in
        l > dmax
      in
      if pruned_by_lb then begin
        (match ws with
        | Some w ->
          w.pairs <- w.pairs + 1;
          w.lb_pruned <- w.lb_pruned + 1;
          w.cells_saved <- w.cells_saved + band_cells ?band n m
        | None -> ());
        None
      end
      else begin
        let lev = match ws with Some w -> Some w.lev | None -> None in
        let raw_cutoff =
          (* D/L > dmax is implied by D > dmax * Lmax since L <= Lmax *)
          if dmax < infinity then Some (dmax *. float_of_int (n + m - 1))
          else None
        in
        let d, len =
          dp ?ws ?band ?cutoff:raw_cutoff
            ~cost:(Distance.entry_distance ?lev ?alpha)
            sa.s_entries sb.s_entries
        in
        if d = infinity then None
        else Some (1.0 -. (d /. float_of_int len))
      end
    end
  end
