(* DP over (accumulated cost, path length); the length of the optimal path
   normalizes the distance so scores are comparable across model sizes.

   Two optional refinements serve the batch engine:
   - a workspace reuses the four DP rows (and the Levenshtein rows of the
     entry cost) across calls, making the hot path allocation-free;
   - a Sakoe-Chiba band restricts the DP to |i - j| <= band, with an early
     bail-out (infinite distance) when the length difference alone exceeds
     the band.  Without [band] the full matrix is computed and results are
     bit-identical to the unbanded code. *)

type workspace = {
  mutable prev_c : float array;
  mutable prev_l : int array;
  mutable cur_c : float array;
  mutable cur_l : int array;
  lev : Sutil.Levenshtein.workspace;
  mutable pairs : int;
  mutable cells : int;
}

let workspace () =
  {
    prev_c = [||];
    prev_l = [||];
    cur_c = [||];
    cur_l = [||];
    lev = Sutil.Levenshtein.workspace ();
    pairs = 0;
    cells = 0;
  }

let pairs_scored ws = ws.pairs
let cells_computed ws = ws.cells

let ensure ws len =
  if Array.length ws.prev_c < len then begin
    let cap = max len (2 * Array.length ws.prev_c) in
    ws.prev_c <- Array.make cap infinity;
    ws.prev_l <- Array.make cap 0;
    ws.cur_c <- Array.make cap infinity;
    ws.cur_l <- Array.make cap 0
  end

let dp ?ws ?band ~cost a b =
  (match ws with Some w -> w.pairs <- w.pairs + 1 | None -> ());
  let n = Array.length a and m = Array.length b in
  if n = 0 && m = 0 then (0.0, 1)
  else if n = 0 || m = 0 then (infinity, 1)
  else if (match band with Some w -> abs (n - m) > w | None -> false) then
    (* no monotone path stays within the band: bail out without any DP work *)
    (infinity, 1)
  else begin
    let inf = infinity in
    let width = match band with Some w -> w | None -> max n m in
    let prev_c, prev_l, cur_c, cur_l =
      match ws with
      | Some w ->
        ensure w (m + 1);
        (w.prev_c, w.prev_l, w.cur_c, w.cur_l)
      | None ->
        ( Array.make (m + 1) inf,
          Array.make (m + 1) 0,
          Array.make (m + 1) inf,
          Array.make (m + 1) 0 )
    in
    Array.fill prev_c 0 (m + 1) inf;
    Array.fill prev_l 0 (m + 1) 0;
    prev_c.(0) <- 0.0;
    let cells = ref 0 in
    for i = 1 to n do
      let jlo = max 1 (i - width) and jhi = min m (i + width) in
      cur_c.(jlo - 1) <- inf;
      cur_l.(jlo - 1) <- 0;
      for j = jlo to jhi do
        let c = cost a.(i - 1) b.(j - 1) in
        (* predecessors: (i-1,j) delete, (i,j-1) insert, (i-1,j-1) match *)
        let pc, pl =
          let c1 = prev_c.(j) and c2 = cur_c.(j - 1) and c3 = prev_c.(j - 1) in
          if c3 <= c1 && c3 <= c2 then (c3, prev_l.(j - 1))
          else if c1 <= c2 then (c1, prev_l.(j))
          else (c2, cur_l.(j - 1))
        in
        cur_c.(j) <- c +. pc;
        cur_l.(j) <- pl + 1
      done;
      cells := !cells + (jhi - jlo + 1);
      (* seal the band edge so the next row reads infinity outside it *)
      if jhi < m then begin
        cur_c.(jhi + 1) <- inf;
        cur_l.(jhi + 1) <- 0
      end;
      let hi = min m (jhi + 1) in
      Array.blit cur_c (jlo - 1) prev_c (jlo - 1) (hi - jlo + 2);
      Array.blit cur_l (jlo - 1) prev_l (jlo - 1) (hi - jlo + 2)
    done;
    (match ws with Some w -> w.cells <- w.cells + !cells | None -> ());
    (prev_c.(m), max 1 prev_l.(m))
  end

let distance ?ws ?band ~cost a b = fst (dp ?ws ?band ~cost a b)

let normalized_distance ?ws ?band ~cost a b =
  let d, len = dp ?ws ?band ~cost a b in
  if d = infinity then 1.0 else d /. float_of_int len

let similarity_of_distance d = 1.0 /. (1.0 +. d)

let entries m = Array.of_list m.Model.entries

(* An empty model carries no behavior to compare: any score against it —
   including another empty model — is 0, never a perfect match. *)
let compare_models ?ws ?band ?alpha m1 m2 =
  if Model.is_empty m1 || Model.is_empty m2 then begin
    (match ws with Some w -> w.pairs <- w.pairs + 1 | None -> ());
    0.0
  end
  else
    let lev = match ws with Some w -> Some w.lev | None -> None in
    1.0
    -. normalized_distance ?ws ?band
         ~cost:(Distance.entry_distance ?lev ?alpha)
         (entries m1) (entries m2)

let compare_models_raw ?ws ?band ?alpha m1 m2 =
  if Model.is_empty m1 || Model.is_empty m2 then begin
    (match ws with Some w -> w.pairs <- w.pairs + 1 | None -> ());
    0.0
  end
  else
    let lev = match ws with Some w -> Some w.lev | None -> None in
    similarity_of_distance
      (distance ?ws ?band
         ~cost:(Distance.entry_distance ?lev ?alpha)
         (entries m1) (entries m2))
