(* The repository index: a vantage-point tree over Dtw.summarize summaries,
   with a flat single-linkage cluster table for tiny repositories.

   DTW's normalized distance is not a metric (no triangle inequality), so the
   tree is only a *clustering heuristic*: construction groups models by
   Dtw.lower_bound distance to seeded pivots, but query-time pruning never
   relies on pivot distances.  Instead every node carries aggregate scoring
   ingredients pooled over its whole subtree — entry-count ranges,
   cache-change magnitude ranges, first/last-entry pools, and small interval
   sketches of the pooled magnitudes and token counts — from which
   [node_bound] computes a provable lower bound on the normalized DTW
   distance between the target and EVERY member of the subtree, by the same
   three arguments as {!Dtw.lower_bound} (range gap, LB_Kim, row bound)
   relaxed over the pools.  A subtree is skipped only when that bound
   exceeds the caller's best-so-far radius, so verdicts stay bit-identical
   to the linear cascade.

   Per-member screens reuse the same formulas with the member's exact
   first/last entries and its own sketches: O(target entries) cheap scalar
   work per member, an order of magnitude cheaper than the full
   Dtw.lower_bound (which runs two Levenshtein DPs and an O(n*m) scan), and
   sound for the same reasons.  The screens are what shrink the number of
   full lower-bound evaluations per query — the metric `bench: index`
   tracks.

   Construction is sequential and seeded (Sutil.Rng on [spec.seed]), so
   building the same repository twice — in any process, under any domain
   count — yields byte-identical indexes ([to_bytes]). *)

type mode = Auto | Force

type spec = { mode : mode; leaf : int; pivots : int; seed : int }

let default_leaf = 16
let default_pivots = 5
let default_spec = { mode = Auto; leaf = default_leaf; pivots = default_pivots; seed = 0 }

(* Auto: repositories below this size classify in microseconds anyway; the
   index only pays for itself past a few hundred models. *)
let auto_min = 256

(* Force mode on a tiny repository: a deep tree over a handful of models is
   all overhead, so fall back to a one-level cluster table. *)
let flat_max = 64

(* Members whose lower-bound distance is below this are considered
   neighbours by the flat fallback's single-linkage pass. *)
let flat_link = 0.4

(* Interval-sketch width: each member (and each node) compresses its pooled
   magnitudes / token counts into at most this many covering intervals. *)
let sketch_k = 4

(* FNV-1a over the salt, folded into OCaml's 63-bit int range: the
   deterministic bridge from Config.salt to the construction seed. *)
let seed_of_salt salt =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    salt;
  Int64.to_int (Int64.logand !h Int64.max_int)

type member = {
  idx : int;  (* position in the prepared repository *)
  m_n : int;  (* entry count; members are always non-empty *)
  m_first_len : int;
  m_first_mag : float;
  m_last_len : int;
  m_last_mag : float;
  m_mag_lo : float;
  m_mag_hi : float;
  m_mag_sk : (float * float) array;  (* ascending disjoint covering intervals *)
  m_len_sk : (int * int) array;
}

type node = {
  g_count : int;  (* members in the subtree *)
  g_n_min : int;
  g_n_max : int;
  g_mag_lo : float;
  g_mag_hi : float;
  (* first/last-entry pools: every member's first (resp. last) entry falls
     inside these ranges *)
  g_f_len_lo : int;
  g_f_len_hi : int;
  g_f_mag_lo : float;
  g_f_mag_hi : float;
  g_l_len_lo : int;
  g_l_len_hi : int;
  g_l_mag_lo : float;
  g_l_mag_hi : float;
  g_mag_sk : (float * float) array;
  g_len_sk : (int * int) array;
  kind : kind;
}

and kind = Leaf of member array | Branch of node array

type t = {
  spec : spec;
  size : int;          (* repository size, empties included *)
  empties : int array; (* indices of empty models: always scored, never pruned *)
  root : node option;
  node_count : int;
}

type counters = {
  mutable nodes_visited : int;
  mutable pairs_pruned_index : int;
}

let counters () = { nodes_visited = 0; pairs_pruned_index = 0 }
let size t = t.size
let spec t = t.spec

let rec count_nodes n =
  match n.kind with
  | Leaf _ -> 1
  | Branch cs -> Array.fold_left (fun acc c -> acc + count_nodes c) 1 cs

let node_count t = t.node_count

let depth t =
  let rec go n =
    match n.kind with
    | Leaf _ -> 1
    | Branch cs -> 1 + Array.fold_left (fun acc c -> max acc (go c)) 0 cs
  in
  match t.root with None -> 0 | Some r -> go r

(* ---- interval sketches ------------------------------------------------------- *)

(* Compress an unsorted value multiset into at most [k] disjoint ascending
   intervals that COVER every value: sort, deduplicate, then keep the k-1
   largest gaps as cuts.  Covering is what makes the sketch sound: the
   distance from a point to the sketch never exceeds its distance to any
   actual value. *)
let sketch_of_floats k values =
  let v = Array.copy values in
  Array.sort Float.compare v;
  let n = Array.length v in
  if n = 0 then [||]
  else begin
    (* distinct values *)
    let dis = ref [ v.(0) ] and last = ref v.(0) in
    for i = 1 to n - 1 do
      if v.(i) <> !last then begin
        dis := v.(i) :: !dis;
        last := v.(i)
      end
    done;
    let d = Array.of_list (List.rev !dis) in
    let p = Array.length d in
    if p <= k then Array.map (fun x -> (x, x)) d
    else begin
      (* cut at the k-1 largest gaps (ties broken towards earlier gaps so
         the construction is deterministic) *)
      let gaps = Array.init (p - 1) (fun i -> (d.(i + 1) -. d.(i), i)) in
      Array.sort
        (fun (ga, ia) (gb, ib) ->
          match Float.compare gb ga with 0 -> Int.compare ia ib | c -> c)
        gaps;
      let cuts = Array.sub gaps 0 (k - 1) in
      let cut_idx = Array.map snd cuts in
      Array.sort Int.compare cut_idx;
      let out = Array.make k (0.0, 0.0) in
      let lo = ref 0 in
      Array.iteri
        (fun j c ->
          out.(j) <- (d.(!lo), d.(c));
          lo := c + 1)
        cut_idx;
      out.(k - 1) <- (d.(!lo), d.(p - 1));
      out
    end
  end

let sketch_of_ints k values =
  sketch_of_floats k (Array.map float_of_int values)
  |> Array.map (fun (lo, hi) -> (int_of_float lo, int_of_float hi))

(* Merge child sketches into one covering sketch of at most [k] intervals:
   union the (already disjoint-per-child) intervals, then re-cut at the
   largest inter-interval gaps. *)
let merge_float_sketches k sketches =
  let all = Array.concat (Array.to_list sketches) in
  if Array.length all = 0 then [||]
  else begin
    Array.sort
      (fun (la, ha) (lb, hb) ->
        match Float.compare la lb with 0 -> Float.compare ha hb | c -> c)
      all;
    (* coalesce overlapping/touching intervals *)
    let merged = ref [] in
    let clo = ref (fst all.(0)) and chi = ref (snd all.(0)) in
    for i = 1 to Array.length all - 1 do
      let lo, hi = all.(i) in
      if lo <= !chi then chi := Float.max !chi hi
      else begin
        merged := (!clo, !chi) :: !merged;
        clo := lo;
        chi := hi
      end
    done;
    merged := (!clo, !chi) :: !merged;
    let iv = Array.of_list (List.rev !merged) in
    let p = Array.length iv in
    if p <= k then iv
    else begin
      let gaps = Array.init (p - 1) (fun i -> (fst iv.(i + 1) -. snd iv.(i), i)) in
      Array.sort
        (fun (ga, ia) (gb, ib) ->
          match Float.compare gb ga with 0 -> Int.compare ia ib | c -> c)
        gaps;
      let cut_idx = Array.map snd (Array.sub gaps 0 (k - 1)) in
      Array.sort Int.compare cut_idx;
      let out = Array.make k (0.0, 0.0) in
      let lo = ref 0 in
      Array.iteri
        (fun j c ->
          out.(j) <- (fst iv.(!lo), snd iv.(c));
          lo := c + 1)
        cut_idx;
      out.(k - 1) <- (fst iv.(!lo), snd iv.(p - 1));
      out
    end
  end

let merge_int_sketches k sketches =
  merge_float_sketches k
    (Array.map
       (Array.map (fun (lo, hi) -> (float_of_int lo, float_of_int hi)))
       sketches)
  |> Array.map (fun (lo, hi) -> (int_of_float lo, int_of_float hi))

(* Distance from a point to the nearest sketch interval — a lower bound on
   its distance to any value the sketch covers. *)
let dist_float_sketch x sk =
  let best = ref infinity in
  Array.iter
    (fun (lo, hi) ->
      let d = if x < lo then lo -. x else if x > hi then x -. hi else 0.0 in
      if d < !best then best := d)
    sk;
  if !best = infinity then 0.0 else !best

(* min over l in [lo, hi] of |l1 - l| / max(l1, l) — the Levenshtein length
   term of Distance.entry_lower_bound relaxed over a length range.  The term
   is monotone on either side of the range, so the minimum sits at the
   nearest endpoint. *)
let len_term_range l1 lo hi =
  if l1 >= lo && l1 <= hi then 0.0
  else if l1 < lo then
    (* lo > l1 >= 0, so lo >= 1 *)
    float_of_int (lo - l1) /. float_of_int lo
  else float_of_int (l1 - hi) /. float_of_int l1

let dist_int_sketch l1 sk =
  let best = ref infinity in
  Array.iter
    (fun (lo, hi) ->
      let d = len_term_range l1 lo hi in
      if d < !best then best := d)
    sk;
  if !best = infinity then 0.0 else !best

(* ---- members ----------------------------------------------------------------- *)

let member_of idx summary =
  let lens = Dtw.summary_lens summary and mags = Dtw.summary_mags summary in
  let n = Array.length lens in
  {
    idx;
    m_n = n;
    m_first_len = lens.(0);
    m_first_mag = mags.(0);
    m_last_len = lens.(n - 1);
    m_last_mag = mags.(n - 1);
    m_mag_lo = Array.fold_left Float.min mags.(0) mags;
    m_mag_hi = Array.fold_left Float.max mags.(0) mags;
    m_mag_sk = sketch_of_floats sketch_k mags;
    m_len_sk = sketch_of_ints sketch_k lens;
  }

(* Node aggregates are computed directly over the subtree's member set (not
   merged from children) except for the sketches, which merge to bound the
   build cost. *)
let aggregate members child_mag_sks child_len_sks kind =
  let m0 = members.(0) in
  let fold f init proj = Array.fold_left (fun acc m -> f acc (proj m)) init members in
  {
    g_count = Array.length members;
    g_n_min = fold min m0.m_n (fun m -> m.m_n);
    g_n_max = fold max m0.m_n (fun m -> m.m_n);
    g_mag_lo = fold Float.min m0.m_mag_lo (fun m -> m.m_mag_lo);
    g_mag_hi = fold Float.max m0.m_mag_hi (fun m -> m.m_mag_hi);
    g_f_len_lo = fold min m0.m_first_len (fun m -> m.m_first_len);
    g_f_len_hi = fold max m0.m_first_len (fun m -> m.m_first_len);
    g_f_mag_lo = fold Float.min m0.m_first_mag (fun m -> m.m_first_mag);
    g_f_mag_hi = fold Float.max m0.m_first_mag (fun m -> m.m_first_mag);
    g_l_len_lo = fold min m0.m_last_len (fun m -> m.m_last_len);
    g_l_len_hi = fold max m0.m_last_len (fun m -> m.m_last_len);
    g_l_mag_lo = fold Float.min m0.m_last_mag (fun m -> m.m_last_mag);
    g_l_mag_hi = fold Float.max m0.m_last_mag (fun m -> m.m_last_mag);
    g_mag_sk = merge_float_sketches sketch_k child_mag_sks;
    g_len_sk = merge_int_sketches sketch_k child_len_sks;
    kind;
  }

let leaf_node members =
  aggregate members
    (Array.map (fun m -> m.m_mag_sk) members)
    (Array.map (fun m -> m.m_len_sk) members)
    (Leaf members)

let rec node_members n =
  match n.kind with
  | Leaf ms -> Array.to_list ms
  | Branch cs -> List.concat_map node_members (Array.to_list cs)

let branch_node children =
  let members = Array.of_list (List.concat_map node_members (Array.to_list children)) in
  aggregate members
    (Array.map (fun c -> c.g_mag_sk) children)
    (Array.map (fun c -> c.g_len_sk) children)
    (Branch children)

(* ---- construction ------------------------------------------------------------ *)

(* Pivot quality: spread of the lower-bound distances from the candidate to
   a sample of members — a high-spread pivot splits the set into genuinely
   near and far halves. *)
let spread dists =
  let n = Array.length dists in
  if n = 0 then 0.0
  else begin
    let mean = Array.fold_left ( +. ) 0.0 dists /. float_of_int n in
    Array.fold_left (fun acc d -> acc +. ((d -. mean) *. (d -. mean))) 0.0 dists
    /. float_of_int n
  end

let build_vp ~rng ~leaf ~pivots pairs =
  (* pairs : (member * Dtw.summary) array, construction-only *)
  let rec go pairs =
    let n = Array.length pairs in
    if n <= leaf then leaf_node (Array.map fst pairs)
    else begin
      (* sample pivot candidates; score each on a bounded member sample *)
      let cand_count = min pivots n in
      let cands = Array.init cand_count (fun _ -> Sutil.Rng.int rng n) in
      let sample_count = min 32 n in
      let sample = Array.init sample_count (fun _ -> Sutil.Rng.int rng n) in
      let best_c = ref cands.(0) and best_s = ref neg_infinity in
      Array.iter
        (fun c ->
          let sc = snd pairs.(c) in
          let ds =
            Array.map (fun s -> Dtw.lower_bound sc (snd pairs.(s))) sample
          in
          let sp = spread ds in
          if sp > !best_s then begin
            best_s := sp;
            best_c := c
          end)
        cands;
      let pivot = snd pairs.(!best_c) in
      let dist =
        Array.map (fun (m, s) -> (Dtw.lower_bound pivot s, m, s)) pairs
      in
      (* position split at the median: deterministic (distance, then
         repository index) and always balanced, even when every distance
         ties *)
      Array.sort
        (fun (da, ma, _) (db, mb, _) ->
          match Float.compare da db with
          | 0 -> Int.compare ma.idx mb.idx
          | c -> c)
        dist;
      let half = (n + 1) / 2 in
      let near = Array.sub dist 0 half
      and far = Array.sub dist half (n - half) in
      let strip = Array.map (fun (_, m, s) -> (m, s)) in
      branch_node [| go (strip near); go (strip far) |]
    end
  in
  go pairs

(* The tiny-repository fallback, in the spirit of Scaguard.Cluster: a
   single-linkage pass over the pairwise lower bounds groups mutual
   neighbours, and each cluster becomes one leaf under a flat root. *)
let build_flat pairs =
  let n = Array.length pairs in
  let parent = Array.init n Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      parent.(i) <- find parent.(i);
      parent.(i)
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then
      (* smaller root wins, so cluster identity is order-independent *)
      if ri < rj then parent.(rj) <- ri else parent.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Dtw.lower_bound (snd pairs.(i)) (snd pairs.(j)) <= flat_link then
        union i j
    done
  done;
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun i (m, _) ->
      let r = find i in
      Hashtbl.replace groups r
        (m :: Option.value ~default:[] (Hashtbl.find_opt groups r)))
    pairs;
  let clusters =
    Hashtbl.fold (fun r ms acc -> (r, Array.of_list (List.rev ms)) :: acc) groups []
    |> List.sort (fun (ra, _) (rb, _) -> Int.compare ra rb)
    |> List.map (fun (_, ms) -> leaf_node ms)
  in
  match clusters with
  | [ single ] -> single
  | cs -> branch_node (Array.of_list cs)

let check_spec spec =
  if spec.leaf < 2 then
    invalid_arg (Printf.sprintf "Vpindex.build: leaf %d < 2" spec.leaf);
  if spec.pivots < 1 then
    invalid_arg (Printf.sprintf "Vpindex.build: pivots %d < 1" spec.pivots)

let build spec summaries =
  check_spec spec;
  let size = Array.length summaries in
  if spec.mode = Auto && size < auto_min then None
  else begin
    let empties = ref [] and filled = ref [] in
    Array.iteri
      (fun i s ->
        if Dtw.summary_size s = 0 then empties := i :: !empties
        else filled := (member_of i s, s) :: !filled)
      summaries;
    let pairs = Array.of_list (List.rev !filled) in
    let root =
      if Array.length pairs = 0 then None
      else if Array.length pairs <= flat_max then Some (build_flat pairs)
      else
        let rng = Sutil.Rng.create spec.seed in
        Some (build_vp ~rng ~leaf:spec.leaf ~pivots:spec.pivots pairs)
    in
    let node_count = match root with None -> 0 | Some r -> count_nodes r in
    Some
      {
        spec;
        size;
        empties = Array.of_list (List.rev !empties);
        root;
        node_count;
      }
  end

(* ---- query-time bounds ------------------------------------------------------- *)

(* Target-side ingredients, computed once per query. *)
type probe = {
  t_n : int;
  t_lens : int array;
  t_mags : float array;
  t_mag_lo : float;
  t_mag_hi : float;
  alpha : float;
  beta : float;
}

let probe ~alpha st =
  let lens = Dtw.summary_lens st and mags = Dtw.summary_mags st in
  let n = Array.length lens in
  {
    t_n = n;
    t_lens = lens;
    t_mags = mags;
    t_mag_lo = (if n = 0 then 0.0 else Array.fold_left Float.min mags.(0) mags);
    t_mag_hi = (if n = 0 then 0.0 else Array.fold_left Float.max mags.(0) mags);
    alpha;
    beta = 1.0 -. alpha;
  }

(* Lower bound on |mag1 - mag2| over mag2 in [lo, hi]. *)
let mag_gap_range x lo hi =
  if x < lo then lo -. x else if x > hi then x -. hi else 0.0

(* The per-entry bound of Distance.entry_lower_bound relaxed over an entry
   pool given by a length range and a magnitude range. *)
let entry_bound_pool p l1 m1 ~len_lo ~len_hi ~mag_lo ~mag_hi =
  (p.alpha *. len_term_range l1 len_lo len_hi)
  +. (p.beta *. mag_gap_range m1 mag_lo mag_hi)

(* Shared shape of the node bound and the member screen.  All three stages
   bound the normalized DTW distance between the target and every member of
   the pool, by the Dtw.lower_bound arguments relaxed over the pooled
   ranges/sketches; the result is capped at 1.0 so a member whose effective
   distance is the out-of-band/empty conventional 1.0 can never be pruned
   while the best score is still 0. *)
let pool_bound p ~n_min ~n_max ~mag_lo ~mag_hi ~f_len_lo ~f_len_hi ~f_mag_lo
    ~f_mag_hi ~l_len_lo ~l_len_hi ~l_mag_lo ~l_mag_hi ~mag_sk ~len_sk =
  let lmax = float_of_int (p.t_n + n_max - 1) in
  (* stage A: disjoint magnitude ranges force a per-step cost *)
  let gap =
    Float.max 0.0
      (Float.max (p.t_mag_lo -. mag_hi) (mag_lo -. p.t_mag_hi))
  in
  let lb = ref (p.beta *. gap) in
  (* LB_Kim over the first/last pools *)
  let flb =
    entry_bound_pool p p.t_lens.(0) p.t_mags.(0) ~len_lo:f_len_lo
      ~len_hi:f_len_hi ~mag_lo:f_mag_lo ~mag_hi:f_mag_hi
  in
  let llb =
    entry_bound_pool p
      p.t_lens.(p.t_n - 1)
      p.t_mags.(p.t_n - 1)
      ~len_lo:l_len_lo ~len_hi:l_len_hi ~mag_lo:l_mag_lo ~mag_hi:l_mag_hi
  in
  let kim =
    let summed = (flb +. llb) /. lmax in
    if p.t_n = 1 && n_min = 1 then
      (* a single-entry member's first and last entries coincide, so only
         one of the two costs is unavoidable (but it is not divided) *)
      Float.min (Float.max flb llb) summed
    else summed
  in
  if kim > !lb then lb := kim;
  (* row bound: every warping path visits every target row; each visit costs
     at least the sketch-relaxed per-entry bound *)
  let rows = ref 0.0 in
  for i = 0 to p.t_n - 1 do
    rows :=
      !rows
      +. (p.alpha *. dist_int_sketch p.t_lens.(i) len_sk)
      +. (p.beta *. dist_float_sketch p.t_mags.(i) mag_sk)
  done;
  let row_bound = !rows /. lmax in
  if row_bound > !lb then lb := row_bound;
  Float.min 1.0 !lb

let node_bound p n =
  pool_bound p ~n_min:n.g_n_min ~n_max:n.g_n_max ~mag_lo:n.g_mag_lo
    ~mag_hi:n.g_mag_hi ~f_len_lo:n.g_f_len_lo ~f_len_hi:n.g_f_len_hi
    ~f_mag_lo:n.g_f_mag_lo ~f_mag_hi:n.g_f_mag_hi ~l_len_lo:n.g_l_len_lo
    ~l_len_hi:n.g_l_len_hi ~l_mag_lo:n.g_l_mag_lo ~l_mag_hi:n.g_l_mag_hi
    ~mag_sk:n.g_mag_sk ~len_sk:n.g_len_sk

let member_screen p m =
  pool_bound p ~n_min:m.m_n ~n_max:m.m_n ~mag_lo:m.m_mag_lo ~mag_hi:m.m_mag_hi
    ~f_len_lo:m.m_first_len ~f_len_hi:m.m_first_len ~f_mag_lo:m.m_first_mag
    ~f_mag_hi:m.m_first_mag ~l_len_lo:m.m_last_len ~l_len_hi:m.m_last_len
    ~l_mag_lo:m.m_last_mag ~l_mag_hi:m.m_last_mag ~mag_sk:m.m_mag_sk
    ~len_sk:m.m_len_sk

(* ---- best-first search ------------------------------------------------------- *)

(* Minimal binary min-heap over (bound, sequence number, node); the sequence
   number makes pop order deterministic under bound ties. *)
module Heap = struct
  type 'a t = {
    mutable a : (float * int * 'a) array;
    mutable n : int;
  }

  let create () = { a = [||]; n = 0 }

  let lt (ba, sa, _) (bb, sb, _) =
    match Float.compare ba bb with 0 -> sa < sb | c -> c < 0

  let push h x =
    if h.n = Array.length h.a then begin
      let cap = max 16 (2 * h.n) in
      let a = Array.make cap x in
      Array.blit h.a 0 a 0 h.n;
      h.a <- a
    end;
    h.a.(h.n) <- x;
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      if lt h.a.(!i) h.a.(parent) then begin
        let tmp = h.a.(parent) in
        h.a.(parent) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := parent;
        true
      end
      else false
    do
      ()
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      if h.n > 0 then begin
        h.a.(0) <- h.a.(h.n);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.n && lt h.a.(l) h.a.(!smallest) then smallest := l;
          if r < h.n && lt h.a.(r) h.a.(!smallest) then smallest := r;
          if !smallest <> !i then begin
            let tmp = h.a.(!smallest) in
            h.a.(!smallest) <- h.a.(!i);
            h.a.(!i) <- tmp;
            i := !smallest
          end
          else continue := false
        done
      end;
      Some top
    end

  let fold f acc h =
    let acc = ref acc in
    for i = 0 to h.n - 1 do
      acc := f !acc h.a.(i)
    done;
    !acc
end

let search ?(alpha = Distance.default_alpha) ?ixc ?trace t st ~dmax ~visit =
  let pruned k =
    match ixc with
    | Some c -> c.pairs_pruned_index <- c.pairs_pruned_index + k
    | None -> ()
  in
  let visited () =
    match ixc with
    | Some c -> c.nodes_visited <- c.nodes_visited + 1
    | None -> ()
  in
  (* provenance taps: pure observation, never read back — [trace] receives
     each traversal decision with the bound that justified it.  The
     untracked empties / empty-target fast paths make no bound decisions,
     so they emit nothing. *)
  let emit ev = match trace with Some f -> f ev | None -> () in
  (* Empty models score 0.0 against everything by convention and their
     conventional distance is 1.0, which no sound bound can exceed — they
     are kept out of the tree and always scored (cheaply). *)
  Array.iter visit t.empties;
  match t.root with
  | None -> ()
  | Some root ->
    if Dtw.summary_size st = 0 then
      (* an empty target scores 0.0 against every member; bounds would all
         be vacuous, so skip straight to scoring *)
      let rec all n =
        match n.kind with
        | Leaf ms -> Array.iter (fun m -> visit m.idx) ms
        | Branch cs -> Array.iter all cs
      in
      all root
    else begin
      let p = probe ~alpha st in
      let heap = Heap.create () in
      let seq = ref 0 in
      let push n =
        Heap.push heap (node_bound p n, !seq, n);
        incr seq
      in
      push root;
      let stopped = ref false in
      while not !stopped do
        match Heap.pop heap with
        | None -> stopped := true
        | Some (b, _, n) ->
          if b > dmax () then begin
            (* the heap is ordered by bound, so everything still queued is
               provably out too: prune it all and stop *)
            let rest =
              Heap.fold (fun acc (_, _, n') -> acc + n'.g_count) n.g_count heap
            in
            pruned rest;
            emit (Provenance.Subtree_pruned { bound = b; members = rest });
            stopped := true
          end
          else begin
            visited ();
            emit (Provenance.Node_visited { bound = b; members = n.g_count });
            match n.kind with
            | Branch cs -> Array.iter push cs
            | Leaf ms ->
              Array.iter
                (fun m ->
                  let ms_bound = member_screen p m in
                  if ms_bound > dmax () then begin
                    pruned 1;
                    emit (Provenance.Member_pruned { bound = ms_bound })
                  end
                  else visit m.idx)
                ms
          end
      done
    end

(* ---- serialization ----------------------------------------------------------- *)

(* Encoded with the Binfmt primitives; embedded verbatim (length-prefixed)
   in the SCAGBIN v2 repository image's optional index section.  The
   encoding starts with its own version byte so the section can evolve
   independently of the container. *)
let index_codec_version = 1

let add_float_sk buf sk =
  Binfmt.add_uint buf (Array.length sk);
  Array.iter
    (fun (lo, hi) ->
      Binfmt.add_float buf lo;
      Binfmt.add_float buf hi)
    sk

let add_int_sk buf sk =
  Binfmt.add_uint buf (Array.length sk);
  Array.iter
    (fun (lo, hi) ->
      Binfmt.add_uint buf lo;
      Binfmt.add_uint buf hi)
    sk

let add_member buf m =
  Binfmt.add_uint buf m.idx;
  Binfmt.add_uint buf m.m_n;
  Binfmt.add_uint buf m.m_first_len;
  Binfmt.add_float buf m.m_first_mag;
  Binfmt.add_uint buf m.m_last_len;
  Binfmt.add_float buf m.m_last_mag;
  Binfmt.add_float buf m.m_mag_lo;
  Binfmt.add_float buf m.m_mag_hi;
  add_float_sk buf m.m_mag_sk;
  add_int_sk buf m.m_len_sk

let rec add_node buf n =
  Binfmt.add_uint buf n.g_count;
  Binfmt.add_uint buf n.g_n_min;
  Binfmt.add_uint buf n.g_n_max;
  Binfmt.add_float buf n.g_mag_lo;
  Binfmt.add_float buf n.g_mag_hi;
  Binfmt.add_uint buf n.g_f_len_lo;
  Binfmt.add_uint buf n.g_f_len_hi;
  Binfmt.add_float buf n.g_f_mag_lo;
  Binfmt.add_float buf n.g_f_mag_hi;
  Binfmt.add_uint buf n.g_l_len_lo;
  Binfmt.add_uint buf n.g_l_len_hi;
  Binfmt.add_float buf n.g_l_mag_lo;
  Binfmt.add_float buf n.g_l_mag_hi;
  add_float_sk buf n.g_mag_sk;
  add_int_sk buf n.g_len_sk;
  match n.kind with
  | Leaf ms ->
    Binfmt.add_u8 buf 0;
    Binfmt.add_uint buf (Array.length ms);
    Array.iter (add_member buf) ms
  | Branch cs ->
    Binfmt.add_u8 buf 1;
    Binfmt.add_uint buf (Array.length cs);
    Array.iter (add_node buf) cs

let to_bytes t =
  let buf = Buffer.create 4096 in
  Binfmt.add_u8 buf index_codec_version;
  Binfmt.add_u8 buf (match t.spec.mode with Auto -> 0 | Force -> 1);
  Binfmt.add_uint buf t.spec.leaf;
  Binfmt.add_uint buf t.spec.pivots;
  Binfmt.add_int buf t.spec.seed;
  Binfmt.add_uint buf t.size;
  Binfmt.add_uint buf (Array.length t.empties);
  Array.iter (Binfmt.add_uint buf) t.empties;
  (match t.root with
  | None -> Binfmt.add_u8 buf 0
  | Some root ->
    Binfmt.add_u8 buf 1;
    add_node buf root);
  Buffer.contents buf

let parse_float_sk r =
  let n = Binfmt.count r ~what:"sketch interval" in
  Array.init n (fun _ ->
      let lo = Binfmt.float r in
      let hi = Binfmt.float r in
      (lo, hi))

let parse_int_sk r =
  let n = Binfmt.count r ~what:"sketch interval" in
  Array.init n (fun _ ->
      let lo = Binfmt.uint r in
      let hi = Binfmt.uint r in
      (lo, hi))

let parse_member r ~size =
  let idx = Binfmt.uint r in
  if idx >= size then
    Binfmt.fail r "index member %d out of range (repository has %d)" idx size;
  let m_n = Binfmt.uint r in
  let m_first_len = Binfmt.uint r in
  let m_first_mag = Binfmt.float r in
  let m_last_len = Binfmt.uint r in
  let m_last_mag = Binfmt.float r in
  let m_mag_lo = Binfmt.float r in
  let m_mag_hi = Binfmt.float r in
  let m_mag_sk = parse_float_sk r in
  let m_len_sk = parse_int_sk r in
  {
    idx;
    m_n;
    m_first_len;
    m_first_mag;
    m_last_len;
    m_last_mag;
    m_mag_lo;
    m_mag_hi;
    m_mag_sk;
    m_len_sk;
  }

let rec parse_node r ~size =
  let g_count = Binfmt.uint r in
  let g_n_min = Binfmt.uint r in
  let g_n_max = Binfmt.uint r in
  let g_mag_lo = Binfmt.float r in
  let g_mag_hi = Binfmt.float r in
  let g_f_len_lo = Binfmt.uint r in
  let g_f_len_hi = Binfmt.uint r in
  let g_f_mag_lo = Binfmt.float r in
  let g_f_mag_hi = Binfmt.float r in
  let g_l_len_lo = Binfmt.uint r in
  let g_l_len_hi = Binfmt.uint r in
  let g_l_mag_lo = Binfmt.float r in
  let g_l_mag_hi = Binfmt.float r in
  let g_mag_sk = parse_float_sk r in
  let g_len_sk = parse_int_sk r in
  let kind =
    match Binfmt.u8 r with
    | 0 ->
      let n = Binfmt.count r ~what:"index leaf member" in
      Leaf (Array.init n (fun _ -> parse_member r ~size))
    | 1 ->
      let n = Binfmt.count r ~what:"index child" in
      Branch (Array.init n (fun _ -> parse_node r ~size))
    | k -> Binfmt.fail r "bad index node kind %d" k
  in
  let node =
    {
      g_count;
      g_n_min;
      g_n_max;
      g_mag_lo;
      g_mag_hi;
      g_f_len_lo;
      g_f_len_hi;
      g_f_mag_lo;
      g_f_mag_hi;
      g_l_len_lo;
      g_l_len_hi;
      g_l_mag_lo;
      g_l_mag_hi;
      g_mag_sk;
      g_len_sk;
      kind;
    }
  in
  let members =
    match kind with
    | Leaf ms -> Array.length ms
    | Branch cs -> Array.fold_left (fun acc c -> acc + c.g_count) 0 cs
  in
  if members <> g_count then
    Binfmt.fail r "index node claims %d members but holds %d" g_count members;
  node

let parse_t r =
  let v = Binfmt.u8 r in
  if v <> index_codec_version then
    Binfmt.fail r "unsupported index encoding version %d (this build reads %d)"
      v index_codec_version;
  let mode =
    match Binfmt.u8 r with
    | 0 -> Auto
    | 1 -> Force
    | m -> Binfmt.fail r "bad index mode %d" m
  in
  let leaf = Binfmt.uint r in
  let pivots = Binfmt.uint r in
  let seed = Binfmt.int r in
  let size = Binfmt.uint r in
  let n_empties = Binfmt.count r ~what:"empty-model index" in
  let empties =
    Array.init n_empties (fun _ ->
        let i = Binfmt.uint r in
        if i >= size then
          Binfmt.fail r "empty-model index %d out of range (repository has %d)"
            i size;
        i)
  in
  let root =
    match Binfmt.u8 r with
    | 0 -> None
    | 1 -> Some (parse_node r ~size)
    | k -> Binfmt.fail r "bad index root marker %d" k
  in
  let covered =
    Array.length empties + match root with None -> 0 | Some n -> n.g_count
  in
  if covered <> size then
    Binfmt.fail r "index covers %d models but the repository has %d" covered
      size;
  if Binfmt.remaining r <> 0 then
    Binfmt.fail r "trailing garbage after index (%d bytes)" (Binfmt.remaining r);
  let node_count = match root with None -> 0 | Some n -> count_nodes n in
  { spec = { mode; leaf; pivots; seed }; size; empties; root; node_count }

let of_bytes_result ?file s = Binfmt.run ?file parse_t s
