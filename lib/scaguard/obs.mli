(** Observability for the build->detect stack: a span-based tracer emitting
    Chrome trace-event JSON (loadable in Perfetto / chrome://tracing) and a
    metrics registry emitting Prometheus text exposition.

    Both facilities sit behind process-global switches ({!set_tracing},
    {!set_metrics}) that default to off.  Instrumentation sites in the hot
    paths are written so that the disabled state costs one load-and-branch
    and zero allocation per event, and observation never feeds back into
    computation — verdicts and models are bit-identical with observability
    on or off (asserted by the test suite and the bench).

    The switches are meant to be flipped by front-ends (CLI, bench, tests)
    {e before} a run starts, never concurrently with one. *)

(** {1 Clock} *)

(** The stack's single monotonic time source ([CLOCK_MONOTONIC], via a
    noalloc C stub).  All span timestamps and stage timings read this clock,
    so durations are immune to NTP steps and never negative. *)
module Clock : sig
  val now_ns : unit -> int64
  (** Nanoseconds from an arbitrary (boot-time) origin; allocation-free. *)

  val elapsed_ns : since:int64 -> int64
  (** [now_ns () - since]. *)

  val ns_to_s : int64 -> float
  val ns_to_us : int64 -> float

  val elapsed_s : since:int64 -> float
  (** Seconds elapsed since a {!now_ns} reading. *)
end

(** {1 Switches} *)

val tracing : unit -> bool
val metrics : unit -> bool

val enabled : unit -> bool
(** [tracing () || metrics ()]. *)

val set_tracing : bool -> unit
val set_metrics : bool -> unit

val set_span_sample_rate : float -> unit
(** Fraction of per-task spans to record, in [\[0,1\]]; [1.] (the default)
    records every task, [0.] records none.  Internally rounded to a keep
    1-in-[round (1/r)] stride so sampling is deterministic — no RNG, and
    re-runs produce the same trace shape.  Coarse stage spans ignore the
    rate.  @raise Invalid_argument outside [\[0,1\]]. *)

val span_sample_rate : unit -> float

val sampled : int -> bool
(** [sampled i] — should the per-task span for task index [i] be recorded?
    False whenever tracing is off. *)

(** {1 Trace-id propagation} *)

val set_trace_id : string option -> unit
(** Set (or clear) the ambient trace id.  While set, every emitted span
    carries a [trace_id] arg, {!Log} stamps it on events by default, and
    {!Provenance} stamps it on records — one opaque string correlating a
    wire request or CLI batch across all three artifact kinds.  The serve
    drainer sets it around each request (from the request envelope's
    [trace_id] field); [detect-batch --trace-id] sets it for the batch. *)

val trace_id : unit -> string option
(** The current ambient trace id.  Safe from any domain (engine workers
    read it; only the driving thread writes). *)

(** {1 Spans} *)

type span = {
  name : string;
  cat : string;  (** coarse grouping: ["stage"], ["engine"], ["pool"], ... *)
  tid : int;  (** trace lane: worker index, or domain id for stage spans *)
  ts_ns : int64;  (** start, {!Clock.now_ns} origin *)
  dur_ns : int64;
  args : (string * string) list;
}

val emit_span :
  ?cat:string ->
  ?tid:int ->
  ?args:(string * string) list ->
  name:string ->
  ts_ns:int64 ->
  dur_ns:int64 ->
  unit ->
  unit
(** Record a completed span (lock-free push; safe from any domain).  No-op
    when tracing is off.  [tid] defaults to the calling domain's id. *)

val with_span :
  ?cat:string ->
  ?tid:int ->
  ?args:(string * string) list ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span name f] times [f ()] and records the span (even if [f]
    raises).  When tracing is off this is exactly [f ()]. *)

val spans : unit -> span list
(** All spans recorded since the last {!clear_spans}, sorted by start time. *)

val clear_spans : unit -> unit

(** {1 Metrics registry} *)

module Registry : sig
  (** Counters, gauges and fixed-bucket histograms.  Counter and histogram
      cells are sharded per domain (lock-free [fetch_and_add] on the shard
      picked from the domain id) and merged only at {!snapshot} time; the
      registration path takes a mutex, the update path never does. *)

  type t

  type counter
  type gauge
  type histogram

  val create : ?shards:int -> unit -> t
  (** [shards] (default 8) is rounded up to a power of two. *)

  val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
  (** Create-or-get by [(name, labels)]; two calls with the same pair return
      the same underlying metric.  @raise Invalid_argument if the pair is
      already registered with a different kind. *)

  val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

  val histogram :
    t ->
    ?help:string ->
    ?labels:(string * string) list ->
    buckets:float array ->
    string ->
    histogram
  (** [buckets] are the ascending finite upper bucket edges; an overflow
      (+inf) bucket is added implicitly.
      @raise Invalid_argument on an empty, non-ascending or non-finite
      ladder, or on a kind clash. *)

  val add : counter -> int -> unit
  val incr : counter -> unit
  val set_gauge : gauge -> float -> unit

  val observe : histogram -> float -> unit
  (** Record one observation: bumps the first bucket whose edge is [>= v]
      (or the overflow bucket) and adds [v] to the sum. *)

  type hist_snapshot = {
    bounds : float array;
    counts : int array;
        (** per-bucket, non-cumulative; one longer than [bounds] — the last
            cell is the overflow bucket.  Matches the layout
            {!Sutil.Stats.percentile_of_buckets} expects. *)
    sum : float;
    count : int;
  }

  type value =
    | Counter_value of int
    | Gauge_value of float
    | Histogram_value of hist_snapshot

  type snapshot_entry = {
    entry_name : string;
    entry_labels : (string * string) list;
    entry_help : string;
    entry_value : value;
  }

  type snapshot = snapshot_entry list

  val snapshot : t -> snapshot
  (** Merge all shards into a consistent-enough view (entries in
      registration order).  Concurrent updates racing the scrape may or may
      not be included — each is never split or double-counted. *)

  val reset : t -> unit
  (** Zero every metric (registrations are kept). *)

  val to_prometheus : snapshot -> string
  (** Prometheus text exposition format: [# HELP]/[# TYPE] headers once per
      metric name, histogram [_bucket{le="..."}] series cumulative with a
      [+Inf] bucket, plus [_sum] and [_count]. *)
end

val default : Registry.t
(** The process-wide registry every scaguard instrumentation site writes to. *)

val snapshot : unit -> Registry.snapshot
(** [Registry.snapshot default]. *)

val reset : unit -> unit
(** Clear spans and zero {!default} — called by front-ends between runs. *)

(** {1 The scaguard metric set}

    Pre-registered on {!default} so instrumentation sites share handles.
    Counters are only bumped when [metrics ()] is true; the record-typed
    statistics the API already exposes ([Engine.stats], cache stats, report
    timings) are computed independently and remain the source-compatible
    derived views. *)
module Metrics : sig
  val batches_total : Registry.counter
  val targets_total : Registry.counter
  val pairs_total : Registry.counter
  val cells_total : Registry.counter
  val pairs_pruned_lb_total : Registry.counter
  val pairs_abandoned_total : Registry.counter
  val cells_saved_total : Registry.counter
  val lb_evals_total : Registry.counter
  val pairs_pruned_index_total : Registry.counter
  val index_nodes_visited_total : Registry.counter
  val models_built_total : Registry.counter
  val cache_hits_total : Registry.counter
  val cache_misses_total : Registry.counter
  val cache_stale_total : Registry.counter

  val ensemble_screened_total : Registry.counter
  (** [scaguard_ensemble_screened_total] — runs screened by the two-tier
      ensemble's HPC fast path ([Detect.Ensemble]). *)

  val ensemble_fast_rejects_total : Registry.counter
  (** [scaguard_ensemble_fast_rejects_total] — runs the fast path rejected
      as benign, skipping DTW entirely. *)

  val ensemble_slow_path_total : Registry.counter
  (** [scaguard_ensemble_slow_path_total] — runs escalated to the DTW slow
      path. *)

  val ensemble_slow_confirms_total : Registry.counter
  (** [scaguard_ensemble_slow_confirms_total] — slow-path classifications
      that confirmed an attack. *)

  val latency_buckets : float array
  (** The shared exponential 1µs..10s ladder used by every latency
      histogram. *)

  val dtw_pair_seconds : Registry.histogram
  val model_build_seconds : Registry.histogram
  val verdict_seconds : Registry.histogram

  val stage_seconds : stage:string -> Registry.histogram
  (** Create-or-get the [scaguard_stage_seconds{stage="..."}] histogram. *)

  (** {2 Serve-daemon metrics}

      Bumped by {!Server} when [metrics ()] is on; exported to clients by
      the protocol's [metrics] verb (see [docs/SERVER.md]). *)

  val server_requests_total : op:string -> Registry.counter
  (** Create-or-get [scaguard_server_requests_total{op="..."}] — requests
      completed (successfully or with an execution error), by verb. *)

  val server_rejected_total : reason:string -> Registry.counter
  (** Create-or-get [scaguard_server_rejected_total{reason="..."}] —
      requests refused without execution: [busy] (queue full), [deadline]
      (expired while queued), [unavailable] (arrived during drain), [parse]
      (unparseable frame). *)

  val server_queue_depth : Registry.gauge
  (** [scaguard_server_queue_depth] — requests waiting in the bounded
      queue right now. *)

  val server_streamed_verdicts_total : Registry.counter
  (** [scaguard_server_streamed_verdicts_total] — verdict frames streamed
      back to clients. *)

  val server_request_seconds : op:string -> Registry.histogram
  (** Create-or-get [scaguard_server_request_seconds{op="..."}] — request
      latency from arrival at the framer to the final reply frame. *)

  val build_info :
    version:string -> format_version:string -> Registry.gauge
  (** Create-or-get [scaguard_build_info{version="...",format_version="..."}]
      — the process-identity gauge (constant 1, identity in the labels, the
      node_exporter convention). *)

  val uptime_seconds : Registry.gauge
  (** [scaguard_uptime_seconds] — process uptime on the monotonic clock,
      stamped by {!export_build_info} before each exposition. *)
end

val export_build_info :
  version:string -> format_version:string -> start_ns:int64 -> unit -> unit
(** Stamp the process-identity gauges: set
    [scaguard_build_info{version,format_version}] to 1 and
    [scaguard_uptime_seconds] to the monotonic seconds since [start_ns].
    Both [serve] and [detect-batch] call this right before rendering an
    exposition, so every scrape carries the same identity. *)

(** {1 Export} *)

(** Chrome trace-event JSON ("X" complete events, microsecond units). *)
module Trace_writer : sig
  val to_json : span list -> string

  val write : path:string -> span list -> (unit, Err.t) result
  (** Atomic write ({!Persist.write_atomic}); [Error (Io _)] on failure. *)
end

val write_metrics : path:string -> (unit, Err.t) result
(** Atomically write [default]'s current state in Prometheus text format. *)

(** {1 Pool instrumentation} *)

val pool_probe : stage:string -> Sutil.Pool.probe option
(** A fresh {!Sutil.Pool.probe} that emits ["<stage>:task"] run spans and
    ["<stage>:wait"] queue-wait spans (the gap between a worker's previous
    task and its next), honoring the sample rate; [None] when tracing is
    off, so un-traced pools pay nothing.  Use one probe per [Pool.run]
    call. *)

(** {1 JSON helpers} *)

module Json : sig
  val escape : string -> string
  (** Escape a string's contents for inclusion inside JSON quotes. *)

  val str : string -> string
  (** Quote + escape. *)

  val float : float -> string
  (** Finite floats as shortest-roundtrip decimals; non-finite as [null]. *)
end
