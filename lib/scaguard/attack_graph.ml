type t = {
  relevant : int list;
  tree_edges : (int * int * float * int list) list;
  nodes : int list;
  edges : (int * int) list;
}

let build ?max_paths ?max_len cfg ~hpc ~relevant =
  let succs = Cfg.Back_edge.acyclic_succs cfg in
  let is_relevant =
    let tbl = Hashtbl.create 16 in
    List.iter (fun b -> Hashtbl.replace tbl b ()) relevant;
    fun b -> Hashtbl.mem tbl b
  in
  (* Candidate edges: best path per ordered pair, deduplicated into the
     undirected view by keeping the heavier direction. *)
  let candidate_edges =
    List.concat_map
      (fun u ->
        List.filter_map
          (fun v ->
            if u = v then None
            else
              Cfg.Paths.best_between ~succs ~hpc:(fun b -> hpc.(b))
                ~relevant:is_relevant ?max_paths ?max_len ~src:u ~dst:v ()
              |> Option.map (fun (p : Cfg.Paths.path) ->
                     {
                       Cfg.Mst.u;
                       v;
                       weight = p.Cfg.Paths.score;
                       payload = p.Cfg.Paths.nodes;
                     }))
          relevant)
      relevant
  in
  let forest =
    Cfg.Mst.maximum_spanning_forest ~nodes:relevant ~edges:candidate_edges
  in
  let tree_edges =
    List.map
      (fun (e : Cfg.Mst.edge) -> (e.Cfg.Mst.u, e.Cfg.Mst.v, e.Cfg.Mst.weight, e.Cfg.Mst.payload))
      forest
  in
  (* Restore the labelled paths: their nodes and consecutive edges form the
     attack-relevant graph. *)
  let node_set = Hashtbl.create 32 in
  let edge_set = Hashtbl.create 32 in
  List.iter (fun b -> Hashtbl.replace node_set b ()) relevant;
  List.iter
    (fun (_, _, _, path) ->
      List.iter (fun b -> Hashtbl.replace node_set b ()) path;
      let rec pairs = function
        | a :: (b :: _ as rest) ->
          Hashtbl.replace edge_set (a, b) ();
          pairs rest
        | [ _ ] | [] -> ()
      in
      pairs path)
    tree_edges;
  let nodes =
    Hashtbl.fold (fun b () acc -> b :: acc) node_set []
    |> List.sort Int.compare
  in
  let edges =
    Hashtbl.fold (fun e () acc -> e :: acc) edge_set [] |> List.sort compare
  in
  { relevant; tree_edges; nodes; edges }
