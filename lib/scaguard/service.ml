type cache_stats = { dir : string; hits : int; misses : int; stale : int }
type timing = { stage : string; wall_s : float; cpu_s : float }

type report = {
  built : int;
  classified : int;
  cache : cache_stats option;
  engine : Engine.stats option;
  timings : timing list;
  metrics : Obs.Registry.snapshot option;
}

(* ---- rendering -------------------------------------------------------------- *)

let fsec s = Printf.sprintf "%.4f" s

(* Sort a snapshot by (name, labels) so the rendered order never depends on
   which instrumentation site happened to register first. *)
let stable_snapshot snap =
  List.sort
    (fun a b ->
      compare
        (a.Obs.Registry.entry_name, a.Obs.Registry.entry_labels)
        (b.Obs.Registry.entry_name, b.Obs.Registry.entry_labels))
    snap

let label_suffix = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
    ^ "}"

let timings_table timings =
  let t = Sutil.Table.create ~title:"stages" [ "stage"; "wall (s)"; "cpu (s)" ] in
  List.iter
    (fun tm -> Sutil.Table.add_row t [ tm.stage; fsec tm.wall_s; fsec tm.cpu_s ])
    timings;
  t

let counters_table r =
  let t = Sutil.Table.create ~title:"counters" [ "counter"; "value" ] in
  let row name v = Sutil.Table.add_row t [ name; v ] in
  let int_row name v = row name (string_of_int v) in
  int_row "models built" r.built;
  int_row "targets classified" r.classified;
  (match r.engine with
  | None -> ()
  | Some (s : Engine.stats) ->
    Sutil.Table.add_separator t;
    int_row "engine domains" s.Engine.domains;
    int_row "engine pairs" s.Engine.pairs;
    int_row "engine DP cells" s.Engine.cells;
    int_row "pairs pruned (lower bound)" s.Engine.pairs_pruned_lb;
    int_row "pairs abandoned (cutoff)" s.Engine.pairs_abandoned;
    int_row "DP cells saved" s.Engine.cells_saved;
    int_row "lower bounds evaluated" s.Engine.lb_evals;
    int_row "pairs pruned (index)" s.Engine.pairs_pruned_index;
    int_row "index nodes visited" s.Engine.nodes_visited;
    row "engine utilization" (Sutil.Table.pct (Engine.utilization s));
    row "engine throughput (pairs/s)"
      (Printf.sprintf "%.0f" (Engine.throughput s)));
  (match r.cache with
  | None -> ()
  | Some c ->
    Sutil.Table.add_separator t;
    int_row "cache hits" c.hits;
    int_row "cache misses" c.misses;
    int_row "cache stale" c.stale);
  t

let latency_table snap =
  let hists =
    List.filter_map
      (fun e ->
        match e.Obs.Registry.entry_value with
        | Obs.Registry.Histogram_value h when h.Obs.Registry.count > 0 ->
          Some (e, h)
        | _ -> None)
      (stable_snapshot snap)
  in
  match hists with
  | [] -> None
  | hists ->
    let t =
      Sutil.Table.create ~title:"latency"
        [ "histogram"; "count"; "p50 (s)"; "p90 (s)"; "p99 (s)" ]
    in
    List.iter
      (fun ((e : Obs.Registry.snapshot_entry), (h : Obs.Registry.hist_snapshot)) ->
        let q p =
          Sutil.Stats.percentile_of_buckets ~bounds:h.Obs.Registry.bounds
            ~counts:h.Obs.Registry.counts p
        in
        Sutil.Table.add_row t
          [
            e.Obs.Registry.entry_name ^ label_suffix e.Obs.Registry.entry_labels;
            string_of_int h.Obs.Registry.count;
            Printf.sprintf "%.2e" (q 0.5);
            Printf.sprintf "%.2e" (q 0.9);
            Printf.sprintf "%.2e" (q 0.99);
          ])
      hists;
    Some t

let pp_report ppf r =
  let open Format in
  let tables =
    [ timings_table r.timings; counters_table r ]
    @ (match r.metrics with
      | None -> []
      | Some snap -> Option.to_list (latency_table snap))
  in
  fprintf ppf "@[<v>";
  List.iteri
    (fun i t ->
      if i > 0 then fprintf ppf "@,";
      (* Table renders with trailing newline-free lines; split so the
         formatter owns line breaks. *)
      let lines = String.split_on_char '\n' (Sutil.Table.render t) in
      List.iteri
        (fun j line ->
          if j > 0 then fprintf ppf "@,";
          pp_print_string ppf line)
        lines)
    tables;
  fprintf ppf "@]"

(* ---- JSON report ------------------------------------------------------------ *)

let report_to_json r =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let field_sep first = if !first then first := false else add "," in
  add "{";
  add "\"built\":%d,\"classified\":%d" r.built r.classified;
  add ",\"timings\":[";
  List.iteri
    (fun i (t : timing) ->
      if i > 0 then add ",";
      add "{\"stage\":%s,\"wall_s\":%s,\"cpu_s\":%s}" (Obs.Json.str t.stage)
        (Obs.Json.float t.wall_s) (Obs.Json.float t.cpu_s))
    r.timings;
  add "]";
  (match r.cache with
  | None -> ()
  | Some c ->
    add ",\"cache\":{\"dir\":%s,\"hits\":%d,\"misses\":%d,\"stale\":%d}"
      (Obs.Json.str c.dir) c.hits c.misses c.stale);
  (match r.engine with
  | None -> ()
  | Some (s : Engine.stats) ->
    add
      ",\"engine\":{\"domains\":%d,\"targets\":%d,\"pairs\":%d,\"cells\":%d,\
       \"pairs_pruned_lb\":%d,\"pairs_abandoned\":%d,\"cells_saved\":%d,\
       \"lb_evals\":%d,\"pairs_pruned_index\":%d,\"nodes_visited\":%d,\
       \"wall_s\":%s,\"cpu_s\":%s,\"per_worker\":[%s]}"
      s.Engine.domains s.Engine.targets s.Engine.pairs s.Engine.cells
      s.Engine.pairs_pruned_lb s.Engine.pairs_abandoned s.Engine.cells_saved
      s.Engine.lb_evals s.Engine.pairs_pruned_index s.Engine.nodes_visited
      (Obs.Json.float s.Engine.wall_s)
      (Obs.Json.float s.Engine.cpu_s)
      (String.concat ","
         (Array.to_list (Array.map string_of_int s.Engine.per_worker))));
  (match r.metrics with
  | None -> ()
  | Some snap ->
    add ",\"metrics\":[";
    let first = ref true in
    List.iter
      (fun (e : Obs.Registry.snapshot_entry) ->
        field_sep first;
        add "{\"name\":%s" (Obs.Json.str e.Obs.Registry.entry_name);
        (match e.Obs.Registry.entry_labels with
        | [] -> ()
        | labels ->
          add ",\"labels\":{%s}"
            (String.concat ","
               (List.map
                  (fun (k, v) -> Obs.Json.str k ^ ":" ^ Obs.Json.str v)
                  labels)));
        (match e.Obs.Registry.entry_value with
        | Obs.Registry.Counter_value v -> add ",\"value\":%d" v
        | Obs.Registry.Gauge_value v -> add ",\"value\":%s" (Obs.Json.float v)
        | Obs.Registry.Histogram_value h ->
          add ",\"count\":%d,\"sum\":%s,\"buckets\":[" h.Obs.Registry.count
            (Obs.Json.float h.Obs.Registry.sum);
          Array.iteri
            (fun i c ->
              if i > 0 then add ",";
              let le =
                if i < Array.length h.Obs.Registry.bounds then
                  Obs.Json.float h.Obs.Registry.bounds.(i)
                else "\"+Inf\""
              in
              add "{\"le\":%s,\"count\":%d}" le c)
            h.Obs.Registry.counts;
          add "]");
        add "}")
      (stable_snapshot snap);
    add "]");
  add "}";
  Buffer.contents buf

(* ---- stages ----------------------------------------------------------------- *)

let ( let* ) = Result.bind

(* Stage timing reads the monotonic clock (Obs.Clock) — the one clock the
   whole stack uses — so a wall-clock step (NTP, suspend) can never produce
   a negative or wildly wrong stage duration.  When observability is on the
   stage also lands in the stage_seconds histogram and (tracing) as a
   coarse stage:<name> span. *)
let timed stage f =
  let w0 = Obs.Clock.now_ns () and c0 = Sys.time () in
  let v = f () in
  let dur_ns = Obs.Clock.elapsed_ns ~since:w0 in
  let wall_s = Obs.Clock.ns_to_s dur_ns in
  if Obs.metrics () then
    Obs.Registry.observe (Obs.Metrics.stage_seconds ~stage) wall_s;
  if Obs.tracing () then
    Obs.emit_span ~cat:"stage" ~name:("stage:" ^ stage) ~ts_ns:w0 ~dur_ns ();
  ({ stage; wall_s; cpu_s = Sys.time () -. c0 }, v)

let cache_of_config (config : Config.t) =
  match config.Config.cache_dir with
  | None -> Ok None
  | Some dir -> Result.map Option.some (Model_cache.create_result ~dir)

let cache_stats_of cache =
  Option.map
    (fun c ->
      {
        dir = Model_cache.dir c;
        hits = Model_cache.hits c;
        misses = Model_cache.misses c;
        stale = Model_cache.stale c;
      })
    cache

let metrics_snapshot () = if Obs.metrics () then Some (Obs.snapshot ()) else None

(* The config's index policy as a Vpindex build spec; [None] means linear.
   The construction seed comes from the salt, so two operators with the same
   config and repository get byte-identical indexes. *)
let spec_of_config (config : Config.t) =
  let spec mode =
    {
      Vpindex.mode;
      leaf = config.Config.index_leaf;
      pivots = config.Config.index_pivots;
      seed = Vpindex.seed_of_salt config.Config.salt;
    }
  in
  match config.Config.index with
  | Config.Index_off -> None
  | Config.Index_auto -> Some (spec Vpindex.Auto)
  | Config.Index_vp -> Some (spec Vpindex.Force)

(* Jobs inherit the config's execution settings and salt unless they carry
   their own.  Filling in the explicit defaults is key-neutral: both
   [Cst.measure] and [Model_cache.key] normalize an omitted settings/config
   to the same defaults, so models and cache keys stay byte-identical to the
   pre-service composition. *)
let resolve_job (config : Config.t) (j : Pipeline.job) =
  {
    j with
    Pipeline.settings =
      Some (Option.value j.Pipeline.settings ~default:config.Config.exec);
    salt = (if j.Pipeline.salt = "" then config.Config.salt else j.Pipeline.salt);
  }

let build_stage (config : Config.t) cache jobs =
  let jobs = Array.map (resolve_job config) jobs in
  timed "build" (fun () ->
      Pipeline.build_models_batch ?domains:config.Config.domains ?cache
        ?max_paths:config.Config.max_paths ?max_len:config.Config.max_len
        ~cst_config:config.Config.cst_config jobs)

let build config jobs =
  let* config = Config.validate config in
  let* cache = cache_of_config config in
  let timing, models = build_stage config cache jobs in
  Ok
    ( models,
      {
        built = Array.length models;
        classified = 0;
        cache = cache_stats_of cache;
        engine = None;
        timings = [ timing ];
        metrics = metrics_snapshot ();
      } )

let detect_stage (config : Config.t) repo targets =
  timed "detect" (fun () ->
      Engine.classify_batch ~threshold:config.Config.threshold
        ?alpha:config.Config.alpha ?band:config.Config.band
        ?domains:config.Config.domains ~prune:config.Config.prune
        ?index:(spec_of_config config) repo targets)

let detect_report ?(timings = []) targets stats =
  {
    built = 0;
    classified = Array.length targets;
    cache = None;
    engine = Some stats;
    timings;
    metrics = metrics_snapshot ();
  }

let detect config repo targets =
  let* config = Config.validate config in
  if repo = [] then Error Err.Empty_repository
  else
    let timing, (verdicts, stats) = detect_stage config repo targets in
    Ok (verdicts, detect_report ~timings:[ timing ] targets stats)

let detect_prepared_stage (config : Config.t) prep targets =
  timed "detect" (fun () ->
      Engine.classify_batch_prepared ~threshold:config.Config.threshold
        ?alpha:config.Config.alpha ?band:config.Config.band
        ?domains:config.Config.domains ~prune:config.Config.prune prep targets)

let detect_prepared config prep targets =
  let* config = Config.validate config in
  if Detector.prepared_size prep = 0 then Error Err.Empty_repository
  else
    let timing, (verdicts, stats) = detect_prepared_stage config prep targets in
    Ok (verdicts, detect_report ~timings:[ timing ] targets stats)

(* ---- repository IO ----------------------------------------------------------- *)

let io_report ?built timing =
  {
    built = Option.value built ~default:0;
    classified = 0;
    cache = None;
    engine = None;
    timings = [ timing ];
    metrics = metrics_snapshot ();
  }

let save_repository config ~path repo =
  let* config = Config.validate config in
  let timing, result =
    timed "save" (fun () ->
        match config.Config.repo_format with
        | Config.Text -> Persist.save_repository_result ~path repo
        | Config.Binary ->
          (* binary images embed the repository index so loads skip the
             rebuild; the text format has no index section *)
          let index =
            match spec_of_config config with
            | None -> None
            | Some spec -> Detector.prepared_index (Detector.prepare ~index:spec repo)
          in
          Persist.save_repository_bin_result ?index ~path repo)
  in
  let* () = result in
  Ok (io_report timing)

(* With [config], the loaded repository honours the config's index policy:
   an index embedded in the image is kept (Auto/Vp) or dropped (Off), and a
   missing one is built here.  Without [config] the file decides — exactly
   the pre-index behaviour for text files and index-free images. *)
let load_repository ?config ~path () =
  let timing, result =
    timed "load" (fun () -> Persist.load_repository_prepared_result ~path)
  in
  let* repo, prep = result in
  let* prep =
    match config with
    | None -> Ok prep
    | Some config ->
      let* config = Config.validate config in
      Ok
        (match spec_of_config config with
        | None -> Detector.attach_index prep None
        | Some spec -> (
          match Detector.prepared_index prep with
          | Some _ -> prep
          | None ->
            Detector.attach_index prep
              (Vpindex.build spec (Detector.prepared_summaries prep))))
  in
  Ok (repo, prep, io_report ~built:(List.length repo) timing)

let screen_report ~cache ~build_timing ~detect_timing models stats =
  {
    built = Array.length models;
    classified = Array.length models;
    cache = cache_stats_of cache;
    engine = Some stats;
    timings = [ build_timing; detect_timing ];
    metrics = metrics_snapshot ();
  }

let screen config repo jobs =
  let* config = Config.validate config in
  if repo = [] then Error Err.Empty_repository
  else
    let* cache = cache_of_config config in
    let build_timing, models = build_stage config cache jobs in
    let detect_timing, (verdicts, stats) = detect_stage config repo models in
    Ok (models, verdicts, screen_report ~cache ~build_timing ~detect_timing models stats)

let screen_prepared config prep jobs =
  let* config = Config.validate config in
  if Detector.prepared_size prep = 0 then Error Err.Empty_repository
  else
    let* cache = cache_of_config config in
    let build_timing, models = build_stage config cache jobs in
    let detect_timing, (verdicts, stats) =
      detect_prepared_stage config prep models
    in
    Ok (models, verdicts, screen_report ~cache ~build_timing ~detect_timing models stats)

let explain config prep jobs =
  (* capture is forced on only for this run, and restored after — the
     verdicts themselves are bit-identical either way (observation purity),
     so explain can safely serve interleaved with ordinary detection *)
  let result, records =
    Provenance.with_capture (fun () -> screen_prepared config prep jobs)
  in
  let* models, verdicts, report = result in
  Ok (models, verdicts, report, records)
