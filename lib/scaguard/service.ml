type cache_stats = { dir : string; hits : int; misses : int; stale : int }
type timing = { stage : string; wall_s : float; cpu_s : float }

type report = {
  built : int;
  classified : int;
  cache : cache_stats option;
  engine : Engine.stats option;
  timings : timing list;
}

let pp_report ppf r =
  let open Format in
  fprintf ppf "@[<v>";
  List.iteri
    (fun i t ->
      if i > 0 then fprintf ppf "@,";
      fprintf ppf "%s: wall %.4fs, cpu %.4fs" t.stage t.wall_s t.cpu_s)
    r.timings;
  (match r.engine with
  | Some stats -> fprintf ppf "@,%a" Engine.pp_stats stats
  | None -> ());
  (match r.cache with
  | Some c ->
    fprintf ppf "@,cache %s: %d hits, %d misses, %d stale" c.dir c.hits
      c.misses c.stale
  | None -> ());
  fprintf ppf "@]"

let ( let* ) = Result.bind

let timed stage f =
  let w0 = Unix.gettimeofday () and c0 = Sys.time () in
  let v = f () in
  ({ stage; wall_s = Unix.gettimeofday () -. w0; cpu_s = Sys.time () -. c0 }, v)

let cache_of_config (config : Config.t) =
  match config.Config.cache_dir with
  | None -> Ok None
  | Some dir -> Result.map Option.some (Model_cache.create_result ~dir)

let cache_stats_of cache =
  Option.map
    (fun c ->
      {
        dir = Model_cache.dir c;
        hits = Model_cache.hits c;
        misses = Model_cache.misses c;
        stale = Model_cache.stale c;
      })
    cache

(* Jobs inherit the config's execution settings and salt unless they carry
   their own.  Filling in the explicit defaults is key-neutral: both
   [Cst.measure] and [Model_cache.key] normalize an omitted settings/config
   to the same defaults, so models and cache keys stay byte-identical to the
   pre-service composition. *)
let resolve_job (config : Config.t) (j : Pipeline.job) =
  {
    j with
    Pipeline.settings =
      Some (Option.value j.Pipeline.settings ~default:config.Config.exec);
    salt = (if j.Pipeline.salt = "" then config.Config.salt else j.Pipeline.salt);
  }

let build_stage (config : Config.t) cache jobs =
  let jobs = Array.map (resolve_job config) jobs in
  timed "build" (fun () ->
      Pipeline.build_models_batch ?domains:config.Config.domains ?cache
        ?max_paths:config.Config.max_paths ?max_len:config.Config.max_len
        ~cst_config:config.Config.cst_config jobs)

let build config jobs =
  let* config = Config.validate config in
  let* cache = cache_of_config config in
  let timing, models = build_stage config cache jobs in
  Ok
    ( models,
      {
        built = Array.length models;
        classified = 0;
        cache = cache_stats_of cache;
        engine = None;
        timings = [ timing ];
      } )

let detect_stage (config : Config.t) repo targets =
  timed "detect" (fun () ->
      Engine.classify_batch ~threshold:config.Config.threshold
        ?alpha:config.Config.alpha ?band:config.Config.band
        ?domains:config.Config.domains ~prune:config.Config.prune repo targets)

let detect config repo targets =
  let* config = Config.validate config in
  if repo = [] then Error Err.Empty_repository
  else
    let timing, (verdicts, stats) = detect_stage config repo targets in
    Ok
      ( verdicts,
        {
          built = 0;
          classified = Array.length targets;
          cache = None;
          engine = Some stats;
          timings = [ timing ];
        } )

let screen config repo jobs =
  let* config = Config.validate config in
  if repo = [] then Error Err.Empty_repository
  else
    let* cache = cache_of_config config in
    let build_timing, models = build_stage config cache jobs in
    let detect_timing, (verdicts, stats) = detect_stage config repo models in
    Ok
      ( models,
        verdicts,
        {
          built = Array.length models;
          classified = Array.length models;
          cache = cache_stats_of cache;
          engine = Some stats;
          timings = [ build_timing; detect_timing ];
        } )
