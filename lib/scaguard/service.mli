(** The service facade: one validated {!Config.t} in, models/verdicts plus a
    unified run {!report} out, every failure a typed {!Err.t}.

    Every front-end (CLI, bench, experiments, examples) goes through these
    three entry points instead of hand-composing
    [Pipeline.build_models_batch] + [Engine.classify_batch] with ten
    optional arguments.  The facade adds {e no} behaviour of its own:
    {!build} results are byte-identical ({!Persist.model_to_string}) and
    {!detect} verdicts bit-identical (score bits and tie order) to the
    manual composition with the same knobs — asserted by the test suite and
    by the bench on every run. *)

type cache_stats = { dir : string; hits : int; misses : int; stale : int }
(** Hit/miss/stale counters of the {!Model_cache} this run opened —
    deltas for this run, since the cache handle is private to it. *)

type timing = { stage : string; wall_s : float; cpu_s : float }
(** Wall/CPU seconds of one pipeline stage (["build"] or ["detect"]).
    [wall_s] is measured on {!Obs.Clock} (monotonic), so it is immune to
    wall-clock steps and never negative. *)

type report = {
  built : int;  (** models built (or served from cache) by this run *)
  classified : int;  (** targets classified by this run *)
  cache : cache_stats option;  (** present iff [config.cache_dir] was set *)
  engine : Engine.stats option;  (** present iff the run classified *)
  timings : timing list;  (** per-stage wall/cpu, in execution order *)
  metrics : Obs.Registry.snapshot option;
      (** the {!Obs.default} registry at the end of the run; present iff
          [Obs.metrics ()] was on *)
}

val pp_report : Format.formatter -> report -> unit
(** Human-readable report as aligned {!Sutil.Table}s with stable row
    ordering: a per-stage timings table, a counters table (build/classify
    totals, engine counters, cache counters, as present), and — when a
    metrics snapshot is present — a latency table with p50/p90/p99 per
    histogram (estimated from the buckets via
    {!Sutil.Stats.percentile_of_buckets}). *)

val report_to_json : report -> string
(** The same report as a single JSON object ([built], [classified],
    [timings], and [cache]/[engine]/[metrics] when present) for
    machine-readable output ([--report-format json]). *)

val build :
  Config.t -> Pipeline.job array -> (Model.t array * report, Err.t) result
(** Build one model per job — execute, identify, restore, measure — fanned
    over [config.domains] workers and consulting the [config.cache_dir]
    cache when set.  Jobs with [settings = None] run under [config.exec];
    jobs with their own settings (e.g. the Meltdown PoCs' protected range)
    keep them.  Likewise [config.salt] applies to jobs whose own [salt] is
    [""].  Errors: [Invalid_config] (bad config field), [Io]
    (cache directory unusable). *)

val detect :
  Config.t ->
  Detector.repository ->
  Model.t array ->
  (Detector.verdict array * report, Err.t) result
(** Score every target model against the repository on the batch engine,
    with [config]'s threshold/alpha/band/prune/domains.  Errors:
    [Invalid_config], [Empty_repository]. *)

val detect_prepared :
  Config.t ->
  Detector.prepared ->
  Model.t array ->
  (Detector.verdict array * report, Err.t) result
(** {!detect} against an already-prepared repository — pairs with
    {!load_repository} so a binary image's inline summaries go straight to
    the engine with no {!Detector.prepare} pass.  Verdicts are bit-identical
    to {!detect} on the repository the [prepared] was built from.  Errors:
    [Invalid_config], [Empty_repository]. *)

val spec_of_config : Config.t -> Vpindex.spec option
(** The config's repository-index policy as a {!Vpindex} build spec —
    [None] for [Index_off], [Auto]/[Force] for [Index_auto]/[Index_vp], leaf
    and pivot counts from the config, and the construction seed derived from
    the salt ({!Vpindex.seed_of_salt}), so identical configs build
    byte-identical indexes. *)

val save_repository :
  Config.t -> path:string -> Detector.repository -> (report, Err.t) result
(** Persist the repository at [path] in [config.repo_format] (atomic,
    durable — see {!Persist.write_atomic}).  Binary images additionally
    embed the repository index that {!spec_of_config} prescribes (when it
    builds one), so later loads skip the index rebuild.  The report carries
    a ["save"] timing.  Errors: [Invalid_config], [Io]. *)

val load_repository :
  ?config:Config.t ->
  path:string ->
  unit ->
  (Detector.repository * Detector.prepared * report, Err.t) result
(** Load a repository (either format, sniffed) together with its
    {!Detector.prepared} — free for binary images, a [prepare] pass for text
    files — and a report carrying a ["load"] timing with [built] set to the
    repository size.  With [config], the prepared repository honours the
    config's index policy: an index embedded in the image is kept
    ([Index_auto]/[Index_vp]) or dropped ([Index_off]), and a missing one is
    built here.  Without [config] the file decides (an embedded index is
    used, none is built).  Errors: [Io], [Parse], [Invalid_config]. *)

val screen :
  Config.t ->
  Detector.repository ->
  Pipeline.job array ->
  (Model.t array * Detector.verdict array * report, Err.t) result
(** {!build} the jobs, then {!detect} the resulting models: the §V
    deployment loop in one call.  The report carries both stages' timings,
    the build's cache counters and the detect's engine counters. *)

val screen_prepared :
  Config.t ->
  Detector.prepared ->
  Pipeline.job array ->
  (Model.t array * Detector.verdict array * report, Err.t) result
(** {!screen} against an already-prepared repository (e.g. from
    {!load_repository}) — identical models, verdicts and counters; no
    re-summarization.  Errors: [Invalid_config], [Empty_repository],
    [Io]. *)

val explain :
  Config.t ->
  Detector.prepared ->
  Pipeline.job array ->
  ( Model.t array
    * Detector.verdict array
    * report
    * Provenance.t list,
    Err.t )
  result
(** {!screen_prepared} with provenance capture forced on for the duration
    of the call (and restored afterwards): the same models, verdicts and
    report — bit-identical, capture is pure observation — plus one
    {!Provenance.t} record per target explaining the verdict.  Backs
    [scaguard explain] and the serve protocol's [explain] verb. *)
