(** Dynamic Time Warping over CST-BBSes (§III-B2).

    DTW aligns the two sequences monotonically, matching similar
    subsequences in order, and accumulates the per-step CST distance.

    On similarity calibration: the paper converts a raw DTW distance with
    [1/(1+D)].  Raw accumulated distance scales with model length, and at our
    basic-block granularity that maps same-family pairs far below the
    paper's reported scores.  We therefore use the standard {e normalized}
    DTW distance (accumulated cost divided by the warping-path length, which
    lies in [\[0,1\]] for unit step costs) and report [1 - D_norm] — a
    monotone-equivalent score that lands in the same numeric ranges as
    Table V.  {!similarity_of_distance} still provides the paper's raw
    mapping for comparison.

    {b Workspaces.}  The batch engine scores millions of pairs; [?ws] reuses
    the DP rows (and the Levenshtein rows inside the entry cost) so the hot
    path allocates nothing per pair.  A workspace also accumulates counters
    (pairs scored, DP cells computed, pairs pruned / abandoned, cells saved)
    for observability.  Results are bit-identical with or without a
    workspace.  A workspace must not be shared between concurrently running
    domains.

    {b Banding.}  [?band] restricts the DP to the Sakoe–Chiba band
    [|i - j| <= band].  When the two lengths differ by more than the band no
    warping path exists and the distance is [infinity] (similarity 0) with
    no DP work — an early bail-out for wildly different-sized models.  With
    [band >= max n m] (or no [band], the default) results equal the exact,
    unbanded computation.

    {b Pruning.}  {!summarize} precomputes per-model summaries;
    {!lower_bound} turns a pair of summaries into a cheap, provable lower
    bound on the normalized distance, and {!compare_summaries} combines the
    bound with early abandonment inside the DP ([?cutoff]) to skip work that
    cannot affect the verdict.  The cascade is {e exact}: a pair is only
    skipped when its score is proven to fall strictly below the cutoff, so
    {!Detector.classify} with pruning on and off returns bit-identical
    verdicts (a tested invariant).  See [docs/PERFORMANCE.md] for the
    operator-level picture. *)

type workspace
(** Reusable DP buffers plus per-workspace counters; one per pool worker. *)

val workspace : unit -> workspace

val pairs_scored : workspace -> int
(** Model/sequence pairs scored through this workspace since creation
    (including pairs resolved by bounds without running the DP). *)

val cells_computed : workspace -> int
(** DP matrix cells evaluated through this workspace since creation. *)

val pairs_pruned_lb : workspace -> int
(** Pairs skipped entirely because a lower bound proved the score could not
    reach the cutoff ({!compare_summaries} returned [None] without DP). *)

val pairs_abandoned : workspace -> int
(** Pairs whose DP was started but abandoned mid-matrix by [?cutoff]. *)

val cells_saved : workspace -> int
(** DP cells {e not} computed thanks to pruning: the full (banded) matrix
    for lower-bound-pruned pairs plus the unvisited rows of abandoned
    pairs. *)

val lb_evals : workspace -> int
(** {!lower_bound} evaluations performed through this workspace.  The linear
    cascade evaluates one bound per (target, PoC) pair; the repository index
    ({!Vpindex}) exists to shrink this count, so the engine reports it next
    to the pruning counters. *)

val distance :
  ?ws:workspace -> ?band:int -> ?cutoff:float ->
  cost:('a -> 'b -> float) -> 'a array -> 'b array -> float
(** Raw accumulated DTW distance, unit steps (match, insert, delete).
    Both sequences empty → [0.]; exactly one empty → [infinity]; banded with
    no in-band path → [infinity].

    [cutoff] enables early abandonment: as soon as every cell of a DP row
    exceeds [cutoff], the result is [infinity].  Since the row minimum
    lower-bounds the final accumulated cost (every warping path crosses
    every row, and costs are non-negative), [infinity] is returned {e only}
    when the true distance exceeds [cutoff]; any finite result equals the
    exact distance bit-for-bit. *)

val normalized_distance :
  ?ws:workspace -> ?band:int ->
  cost:('a -> 'b -> float) -> 'a array -> 'b array -> float
(** Accumulated cost divided by the optimal warping path's length; in
    [\[0,1\]] when [cost] is.  Empty-sequence conventions as {!distance}
    (one empty → [1.]). *)

val similarity_of_distance : float -> float
(** The paper's raw mapping [1 / (1 + d)]. *)

val compare_models :
  ?ws:workspace -> ?band:int -> ?alpha:float -> ?interned:bool ->
  Model.t -> Model.t -> float
(** Similarity score of two CST-BBS models: [1 - normalized_distance], in
    [\[0,1\]].  [0.] whenever either model is empty — an empty model carries
    no attack behavior, so it can never be a (perfect) match, not even
    against another empty model.  [alpha] feeds {!Distance.entry_distance}
    (ablations).  [interned] (default [true]) selects the interned-token
    cost; [false] replays the string-token reference
    ({!Distance.entry_distance_strings}) — scores are bit-identical either
    way, and the flag exists so tests can assert that. *)

val compare_models_raw :
  ?ws:workspace -> ?band:int -> ?alpha:float -> ?interned:bool ->
  Model.t -> Model.t -> float
(** The paper's literal [1/(1+D)] on the raw accumulated distance (exposed
    for the calibration bench).  Empty-model and [interned] conventions as
    {!compare_models}. *)

(** {1 Summaries and the exact lower-bound cascade} *)

type summary
(** A model plus precomputed scoring ingredients: its entries as an array,
    per-entry normalized-token counts and cache-change magnitudes, and the
    magnitudes sorted ascending.  Immutable — safe to share across
    domains; the engine summarizes the PoC repository once per batch. *)

val summarize : Model.t -> summary

val summarize_with : mags:float array -> Model.t -> summary
(** [summarize], but with the per-entry cache-change magnitudes supplied by
    the caller instead of recomputed from the CSTs.  The binary repository
    image ({!Persist}) stores them inline; since they round-trip as exact
    float bits, the reconstructed summary is identical to [summarize model]
    and {!Detector.prepare} becomes a no-op on load.
    @raise Invalid_argument if [mags] has a different length than the
    model's entry list. *)

val summary_model : summary -> Model.t

val summary_size : summary -> int
(** Number of entries of the summarized model. *)

val summary_lens : summary -> int array
(** Per-entry normalized-token counts, in entry order.  The array is the one
    stored in the summary and is {e shared} — callers must not mutate it
    ({!Vpindex} reads it to build its per-model screens). *)

val summary_mags : summary -> float array
(** Per-entry cache-change magnitudes, in entry order; shared like
    {!summary_lens}. *)

val prune_margin : float
(** The score-space safety margin ([1e-9]) added to every pruning cutoff so
    float rounding inside a bound can never skip a pair whose exact score
    would have reached the cutoff.  {!Detector} and {!Vpindex} use the same
    margin when converting a best-so-far score into a pruning radius. *)

val lower_bound : ?ws:workspace -> ?alpha:float -> summary -> summary -> float
(** A provable lower bound on the {e normalized} DTW distance between the
    two summarized models ([0.] when either is empty), the maximum of:

    - {b magnitude-range gap}, O(1): when the models' cache-change
      magnitude ranges are disjoint, every aligned step costs at least
      [(1-alpha) * gap], and so does the per-step average;
    - {b LB_Kim}: every warping path matches the two first and the two
      last entries, so those two entry costs (divided by the maximal path
      length [n+m-1]) are unavoidable;
    - {b row/column bound}, O(n*m) in cheap scalar operations (no
      Levenshtein DPs): a path visits every row and every column at least
      once, so the sum over rows (and over columns) of the cheapest
      {!Distance.entry_lower_bound} is unavoidable.

    [ws] only lends its Levenshtein buffers to the LB_Kim entry costs.
    Sound for [alpha] in [\[0,1\]]; {!Detector.classify} disables pruning
    for [alpha] outside that range. *)

val compare_summaries :
  ?ws:workspace -> ?band:int -> ?alpha:float -> ?cutoff:float ->
  ?lb:float -> summary -> summary -> float option
(** [compare_summaries sa sb] is [Some (compare_models a b)] — bit-identical
    to scoring the underlying models, including the empty-model and
    out-of-band conventions.

    With [cutoff] (a score), the pair may instead be resolved to [None],
    {e only} when the score is proven to fall strictly below [cutoff]:
    first by the cheap {!lower_bound} ([lb] supplies a precomputed value,
    e.g. from the ordering pass, to avoid recomputing it), then by early
    abandonment inside the DP.  Both tests include a [1e-9] score-space
    margin, so float rounding in a bound can never prune a pair whose
    exactly-computed score would have reached [cutoff].  Without [cutoff]
    the result is always [Some _]. *)
