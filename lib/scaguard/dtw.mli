(** Dynamic Time Warping over CST-BBSes (§III-B2).

    DTW aligns the two sequences monotonically, matching similar
    subsequences in order, and accumulates the per-step CST distance.

    On similarity calibration: the paper converts a raw DTW distance with
    [1/(1+D)].  Raw accumulated distance scales with model length, and at our
    basic-block granularity that maps same-family pairs far below the
    paper's reported scores.  We therefore use the standard {e normalized}
    DTW distance (accumulated cost divided by the warping-path length, which
    lies in [\[0,1\]] for unit step costs) and report [1 - D_norm] — a
    monotone-equivalent score that lands in the same numeric ranges as
    Table V.  {!similarity_of_distance} still provides the paper's raw
    mapping for comparison.

    {b Workspaces.}  The batch engine scores millions of pairs; [?ws] reuses
    the DP rows (and the Levenshtein rows inside the entry cost) so the hot
    path allocates nothing per pair.  A workspace also accumulates counters
    (pairs scored, DP cells computed) for observability.  Results are
    bit-identical with or without a workspace.  A workspace must not be
    shared between concurrently running domains.

    {b Banding.}  [?band] restricts the DP to the Sakoe–Chiba band
    [|i - j| <= band].  When the two lengths differ by more than the band no
    warping path exists and the distance is [infinity] (similarity 0) with
    no DP work — an early bail-out for wildly different-sized models.  With
    [band >= max n m] (or no [band], the default) results equal the exact,
    unbanded computation. *)

type workspace
(** Reusable DP buffers plus per-workspace counters; one per pool worker. *)

val workspace : unit -> workspace

val pairs_scored : workspace -> int
(** Model/sequence pairs scored through this workspace since creation. *)

val cells_computed : workspace -> int
(** DP matrix cells evaluated through this workspace since creation. *)

val distance :
  ?ws:workspace -> ?band:int ->
  cost:('a -> 'b -> float) -> 'a array -> 'b array -> float
(** Raw accumulated DTW distance, unit steps (match, insert, delete).
    Both sequences empty → [0.]; exactly one empty → [infinity]; banded with
    no in-band path → [infinity]. *)

val normalized_distance :
  ?ws:workspace -> ?band:int ->
  cost:('a -> 'b -> float) -> 'a array -> 'b array -> float
(** Accumulated cost divided by the optimal warping path's length; in
    [\[0,1\]] when [cost] is.  Empty-sequence conventions as {!distance}
    (one empty → [1.]). *)

val similarity_of_distance : float -> float
(** The paper's raw mapping [1 / (1 + d)]. *)

val compare_models :
  ?ws:workspace -> ?band:int -> ?alpha:float -> Model.t -> Model.t -> float
(** Similarity score of two CST-BBS models: [1 - normalized_distance], in
    [\[0,1\]].  [0.] whenever either model is empty — an empty model carries
    no attack behavior, so it can never be a (perfect) match, not even
    against another empty model.  [alpha] feeds {!Distance.entry_distance}
    (ablations). *)

val compare_models_raw :
  ?ws:workspace -> ?band:int -> ?alpha:float -> Model.t -> Model.t -> float
(** The paper's literal [1/(1+D)] on the raw accumulated distance (exposed
    for the calibration bench).  Empty-model convention as
    {!compare_models}. *)
