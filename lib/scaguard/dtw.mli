(** Dynamic Time Warping over CST-BBSes (§III-B2).

    DTW aligns the two sequences monotonically, matching similar
    subsequences in order, and accumulates the per-step CST distance.

    On similarity calibration: the paper converts a raw DTW distance with
    [1/(1+D)].  Raw accumulated distance scales with model length, and at our
    basic-block granularity that maps same-family pairs far below the
    paper's reported scores.  We therefore use the standard {e normalized}
    DTW distance (accumulated cost divided by the warping-path length, which
    lies in [\[0,1\]] for unit step costs) and report [1 - D_norm] — a
    monotone-equivalent score that lands in the same numeric ranges as
    Table V.  {!similarity_of_distance} still provides the paper's raw
    mapping for comparison. *)

val distance :
  cost:('a -> 'b -> float) -> 'a array -> 'b array -> float
(** Raw accumulated DTW distance, unit steps (match, insert, delete).
    Both sequences empty → [0.]; exactly one empty → [infinity]. *)

val normalized_distance :
  cost:('a -> 'b -> float) -> 'a array -> 'b array -> float
(** Accumulated cost divided by the optimal warping path's length; in
    [\[0,1\]] when [cost] is.  Empty-sequence conventions as {!distance}
    (one empty → [1.]). *)

val similarity_of_distance : float -> float
(** The paper's raw mapping [1 / (1 + d)]. *)

val compare_models : ?alpha:float -> Model.t -> Model.t -> float
(** Similarity score of two CST-BBS models: [1 - normalized_distance], in
    [\[0,1\]] ([0.] when exactly one model is empty, [1.] when both are).
    [alpha] feeds {!Distance.entry_distance} (ablations). *)

val compare_models_raw : ?alpha:float -> Model.t -> Model.t -> float
(** The paper's literal [1/(1+D)] on the raw accumulated distance (exposed
    for the calibration bench). *)
