(** End-to-end attack behavior modeling: execute (collect runtime data),
    build the CFG, identify attack-relevant blocks, run Algorithm 1, and
    assemble the CST-BBS model — Fig. 2's left half. *)

type analysis = {
  name : string;
  cfg : Cfg.Graph.t;
  info : Relevant.info;
  attack_graph : Attack_graph.t;
  model : Model.t;
  exec : Cpu.Exec.result;
}

val analyze :
  ?max_paths:int -> ?max_len:int -> ?cst_config:Cache.Config.t ->
  name:string -> program:Isa.Program.t -> Cpu.Exec.result -> analysis
(** Build the model from an already-collected execution of [program]. *)

val run_and_analyze :
  ?settings:Cpu.Exec.settings ->
  ?init:(Cpu.Machine.t -> unit) ->
  ?victim:Isa.Program.t * (Cpu.Machine.t -> unit) ->
  ?max_paths:int -> ?max_len:int -> ?cst_config:Cache.Config.t ->
  Isa.Program.t -> analysis
(** Execute the program (with optional victim) and analyze it. *)
