(** End-to-end attack behavior modeling: execute (collect runtime data),
    build the CFG, identify attack-relevant blocks, run Algorithm 1, and
    assemble the CST-BBS model — Fig. 2's left half.

    Every stage's intermediate output is kept in the {!analysis} record so
    callers (the CLI, the experiments, the examples) can inspect the
    pipeline as well as its final model.  Downstream, the model feeds
    {!Detector.classify} (one-off) or {!Engine.classify_batch} (batch
    screening — see [docs/PERFORMANCE.md]).

    {b Batch building.}  The [_batch] entry points fan the whole chain over
    a {!Sutil.Pool} of domains.  Each task is independent of every other
    (its own execution, CFG, identification, graph and model; per-worker
    scratch only for the CST probe simulator), so the batch results are
    {e byte-identical} to running the sequential functions in a loop — a
    property the bench's modeling stage asserts on every run.
    {!build_models_batch} can additionally consult a {!Model_cache},
    skipping execution and modeling entirely for cached programs. *)

type analysis = {
  name : string;            (** the analyzed program's name *)
  cfg : Cfg.Graph.t;        (** the reconstructed control-flow graph *)
  info : Relevant.info;     (** attack-relevant block identification (§III-A2) *)
  attack_graph : Attack_graph.t;  (** Algorithm 1's attack-relevant graph *)
  model : Model.t;          (** the CST-BBS — what the detector consumes *)
  exec : Cpu.Exec.result;   (** raw execution: HPC counters + address trace *)
}

val analyze :
  ?max_paths:int -> ?max_len:int -> ?cst_config:Cache.Config.t ->
  ?measurer:Cst.measurer ->
  name:string -> program:Isa.Program.t -> Cpu.Exec.result -> analysis
(** Build the model from an already-collected execution of [program].
    [measurer] lends a reusable CST probe simulator to the per-block
    measurements (results identical with or without it); the batch entry
    points pass one per worker. *)

val run_and_analyze :
  ?settings:Cpu.Exec.settings ->
  ?init:(Cpu.Machine.t -> unit) ->
  ?victim:Isa.Program.t * (Cpu.Machine.t -> unit) ->
  ?max_paths:int -> ?max_len:int -> ?cst_config:Cache.Config.t ->
  Isa.Program.t -> analysis
(** Execute the program (with optional victim) and analyze it. *)

(** {1 Batch building} *)

type job = {
  job_name : string;
  program : Isa.Program.t;
  settings : Cpu.Exec.settings option;
  init : (Cpu.Machine.t -> unit) option;
  victim : (Isa.Program.t * (Cpu.Machine.t -> unit)) option;
  salt : string;
    (** Cache-key salt covering the unhashable inputs ([init], the victim's
        init) — see {!Model_cache.key}.  Irrelevant without a cache. *)
}
(** One program to execute and model: the arguments of {!run_and_analyze},
    reified so a batch can carry many of them. *)

val job :
  ?settings:Cpu.Exec.settings ->
  ?init:(Cpu.Machine.t -> unit) ->
  ?victim:Isa.Program.t * (Cpu.Machine.t -> unit) ->
  ?salt:string -> name:string -> Isa.Program.t -> job

val analyze_batch :
  ?domains:int ->
  ?max_paths:int -> ?max_len:int -> ?cst_config:Cache.Config.t ->
  (string * Isa.Program.t * Cpu.Exec.result) array -> analysis array
(** {!analyze} over already-collected executions, fanned over [domains]
    workers (default {!Sutil.Pool.default_domains}).  [results.(i)] is
    byte-identical to [analyze ~name ~program exec] on [inputs.(i)]. *)

val run_and_analyze_batch :
  ?domains:int ->
  ?max_paths:int -> ?max_len:int -> ?cst_config:Cache.Config.t ->
  job array -> analysis array
(** Execute and analyze every job; [results.(i)] is byte-identical to
    {!run_and_analyze} on [jobs.(i)]. *)

val build_models_batch :
  ?domains:int ->
  ?cache:Model_cache.t ->
  ?max_paths:int -> ?max_len:int -> ?cst_config:Cache.Config.t ->
  job array -> Model.t array
(** Like {!run_and_analyze_batch} but keeping only the models — and, with
    [cache], consulting it first: a hit skips execution and modeling
    entirely, a miss builds then stores.  Cached or not, [models.(i)] is
    byte-identical ({!Persist.model_to_string}) to a fresh sequential
    build of [jobs.(i)]. *)
