(** End-to-end attack behavior modeling: execute (collect runtime data),
    build the CFG, identify attack-relevant blocks, run Algorithm 1, and
    assemble the CST-BBS model — Fig. 2's left half.

    Every stage's intermediate output is kept in the {!analysis} record so
    callers (the CLI, the experiments, the examples) can inspect the
    pipeline as well as its final model.  Downstream, the model feeds
    {!Detector.classify} (one-off) or {!Engine.classify_batch} (batch
    screening — see [docs/PERFORMANCE.md]). *)

type analysis = {
  name : string;            (** the analyzed program's name *)
  cfg : Cfg.Graph.t;        (** the reconstructed control-flow graph *)
  info : Relevant.info;     (** attack-relevant block identification (§III-A2) *)
  attack_graph : Attack_graph.t;  (** Algorithm 1's attack-relevant graph *)
  model : Model.t;          (** the CST-BBS — what the detector consumes *)
  exec : Cpu.Exec.result;   (** raw execution: HPC counters + address trace *)
}

val analyze :
  ?max_paths:int -> ?max_len:int -> ?cst_config:Cache.Config.t ->
  name:string -> program:Isa.Program.t -> Cpu.Exec.result -> analysis
(** Build the model from an already-collected execution of [program]. *)

val run_and_analyze :
  ?settings:Cpu.Exec.settings ->
  ?init:(Cpu.Machine.t -> unit) ->
  ?victim:Isa.Program.t * (Cpu.Machine.t -> unit) ->
  ?max_paths:int -> ?max_len:int -> ?cst_config:Cache.Config.t ->
  Isa.Program.t -> analysis
(** Execute the program (with optional victim) and analyze it. *)
