(** One typed record for every knob of the build→detect stack.

    Three PRs of pipeline work left the knobs smeared across the stack as
    optional arguments ([?threshold ?alpha ?band ?domains ?prune] on
    {!Detector}/{!Engine}, [?max_paths ?max_len ?cst_config ?settings] on
    {!Pipeline}, [--jobs]/[--cache-dir] only at the CLI).  [Config.t] gathers
    them in one validated value that can be passed to {!Service}, printed,
    and persisted next to a model repository ({!to_string}/{!of_string}
    round-trip exactly).

    {!default} reproduces today's behaviour knob for knob: running
    {!Service.build}/{!Service.detect} with it is bit-identical to the bare
    [Pipeline.build_models_batch] / [Engine.classify_batch] composition. *)

type repo_format = Text | Binary
(** On-disk repository format: the line-oriented text format (diffable,
    backward compatible) or the compact ["SCAGBIN"] binary image with inline
    summaries and a lazy-load index (see {!Persist}).  Loads always sniff
    the file, so this knob only selects what {e saves} write. *)

val repo_format_to_string : repo_format -> string
(** ["text"] / ["binary"] — the spelling used by the config file and the
    CLI's [--format] flag. *)

val repo_format_of_string : string -> repo_format option

type index_mode = Index_off | Index_auto | Index_vp
(** Repository index policy for detection ({!Vpindex}): [Index_off] always
    scans linearly; [Index_auto] (the default) builds the index only when
    the repository has at least {!Vpindex.auto_min} models, so small-repo
    behaviour — and its counters — are unchanged; [Index_vp] always builds
    one (with the tiny-repository flat fallback below {!Vpindex.flat_max}).
    Verdicts are bit-identical under every mode; only the work differs. *)

val index_mode_to_string : index_mode -> string
(** ["off"] / ["auto"] / ["vp"] — the spelling used by the config file and
    the CLI's [--index] flag. *)

val index_mode_of_string : string -> index_mode option

type t = {
  (* detection *)
  threshold : float;  (** similarity threshold θ in [0, 1]; default 0.60 *)
  alpha : float option;
      (** DTW syntax/semantics weight in [0, 1]; [None] = paper default *)
  band : int option;  (** Sakoe–Chiba band half-width; [None] = unbanded *)
  prune : bool;  (** exact lower-bound pruning cascade; default [true] *)
  (* modeling *)
  max_paths : int option;  (** CFG path-enumeration bound per block pair *)
  max_len : int option;  (** CFG path length bound *)
  cst_config : Cache.Config.t;
      (** probe-cache geometry for CST measurement; default
          [Cache.Config.cst_probe] *)
  exec : Cpu.Exec.settings;
      (** execution settings for jobs that do not carry their own; a
          {!Pipeline.job} with [settings = Some _] keeps its own (e.g. the
          Meltdown PoCs' protected range) *)
  (* execution *)
  domains : int option;
      (** worker domains for both model building and the scoring engine;
          [None] = library default ([Sutil.Pool.default_domains]) *)
  cache_dir : string option;  (** on-disk model cache; [None] = no cache *)
  salt : string;
      (** cache-key salt, applied to jobs that do not set their own (dataset
          seed provenance); default [""] *)
  repo_format : repo_format;
      (** format {!Service.save_repository} (and [build-repo]) writes;
          default [Text] *)
  index : index_mode;  (** repository index policy; default [Index_auto] *)
  index_leaf : int;
      (** max models per index tree leaf (≥ 2); default
          [Vpindex.default_spec.leaf] (16) *)
  index_pivots : int;
      (** pivot candidates sampled per index split (≥ 1); default
          [Vpindex.default_spec.pivots] (5) *)
  ensemble_tau : float;
      (** screening threshold of the two-tier ensemble detector
          ([Detect.Ensemble]): runs whose largest benign-profile z-score
          stays below it are rejected by the cheap HPC fast path without
          paying the DTW slow path.  [0.0] disables screening (every run
          reaches DTW, verdicts bit-identical to pure SCAGuard); default
          2.0 *)
  log_level : Log.level;
      (** minimum severity captured into the structured event log when a
          front-end turns capture on ([detect-batch --log-out], the serve
          daemon); pure observation — never affects verdicts; default
          [Info] *)
}

val default : t
(** Today's behaviour: threshold 0.60 ({!Detector.default_threshold}), no
    alpha/band overrides, pruning on, paper modeling limits,
    [Cache.Config.cst_probe], [Cpu.Exec.default_settings], default domain
    count, no cache, empty salt. *)

(** {1 Field validation}

    Each checker returns the value unchanged or
    [Error (Invalid_config {field; value; expected})] — the CLI reuses them
    to reject bad flag values with the accepted range in the message. *)

val check_threshold : ?field:string -> float -> (float, Err.t) result
(** Finite and in [0, 1].  [field] overrides the reported field name (e.g.
    ["--threshold"]). *)

val check_alpha : ?field:string -> float -> (float, Err.t) result
(** Finite and in [0, 1]. *)

val check_band : ?field:string -> int -> (int, Err.t) result
(** Non-negative. *)

val check_domains : ?field:string -> int -> (int, Err.t) result
(** At least 1. *)

val check_max_paths : ?field:string -> int -> (int, Err.t) result
(** At least 1. *)

val check_max_len : ?field:string -> int -> (int, Err.t) result
(** At least 1. *)

val check_index_leaf : ?field:string -> int -> (int, Err.t) result
(** At least 2. *)

val check_index_pivots : ?field:string -> int -> (int, Err.t) result
(** At least 1. *)

val check_ensemble_tau : ?field:string -> float -> (float, Err.t) result
(** Finite and non-negative (a z-score bound, so it is not confined to
    [0, 1]). *)

val validate : t -> (t, Err.t) result
(** Re-check every field of a record built by hand (the type is public on
    purpose — [{ default with threshold = 0.8 }] is the intended style).
    {!Service} validates the config it is given, so a NaN threshold or a
    zero-way probe cache is caught before any work starts. *)

(** {1 Persistence}

    Human-readable [key=value] lines under a [scaguard-config 1] header.
    [of_string (to_string c) = Ok c] for every valid [c] (floats are printed
    round-trip exactly); omitted keys keep their {!default}, unknown keys are
    a {!Err.Parse} error with the line number. *)

val to_string : t -> string

val of_string : string -> (t, Err.t) result

val save : path:string -> t -> (unit, Err.t) result
(** Atomic, via the same writer as {!Persist}. *)

val load : path:string -> (t, Err.t) result

val pp : Format.formatter -> t -> unit
