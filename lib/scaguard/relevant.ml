module G = Cfg.Graph
module BB = Cfg.Basic_block

type info = {
  cfg : G.t;
  hpc_of_block : float array;
  accesses_of_block : (int * Hpc.Collector.access_kind) list array;
  first_time_of_block : int option array;
  step1 : int list;
  relevant : int list;
}

let default_llc_set addr = Cache.Config.set_of_addr Cache.Config.llc addr

let identify ?(llc_set_of_addr = default_llc_set) cfg collector =
  let n = G.n_blocks cfg in
  let prog = G.program cfg in
  let hpc_of_block = Array.make n 0.0 in
  let first_time_of_block = Array.make n None in
  (* Step 1: map per-address HPC data onto blocks. *)
  List.iter
    (fun (b : BB.t) ->
      List.iter
        (fun idx ->
          let pc = Isa.Program.addr_of_index prog idx in
          hpc_of_block.(b.BB.id) <-
            hpc_of_block.(b.BB.id)
            +. float_of_int (Hpc.Collector.hpc_value_at collector ~pc);
          match Hpc.Collector.first_time collector ~pc with
          | Some t ->
            first_time_of_block.(b.BB.id) <-
              (match first_time_of_block.(b.BB.id) with
              | Some t0 -> Some (min t0 t)
              | None -> Some t)
          | None -> ())
        (BB.instr_indices b))
    (G.blocks cfg);
  let step1 =
    List.filter_map
      (fun (b : BB.t) ->
        if hpc_of_block.(b.BB.id) > 0.0 then Some b.BB.id else None)
      (G.blocks cfg)
  in
  (* Collect data accesses (the Intel-PT stand-in) per block. *)
  let accesses_of_block = Array.make n [] in
  List.iter
    (fun (a : Hpc.Collector.access) ->
      match G.block_of_addr cfg a.Hpc.Collector.pc with
      | Some b ->
        accesses_of_block.(b.BB.id) <-
          (a.Hpc.Collector.target, a.Hpc.Collector.kind)
          :: accesses_of_block.(b.BB.id)
      | None -> ())
    (Hpc.Collector.accesses collector);
  Array.iteri
    (fun i l -> accesses_of_block.(i) <- List.rev l)
    accesses_of_block;
  (* Step 2: keep candidates touching a cache set that at least one other
     candidate also touches. *)
  let sets_of_block b =
    List.sort_uniq Int.compare
      (List.map (fun (addr, _) -> llc_set_of_addr addr) accesses_of_block.(b))
  in
  let touch_count = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          Hashtbl.replace touch_count s
            (1 + Option.value ~default:0 (Hashtbl.find_opt touch_count s)))
        (sets_of_block b))
    step1;
  let relevant =
    List.filter
      (fun b ->
        List.exists
          (fun s -> Option.value ~default:0 (Hashtbl.find_opt touch_count s) >= 2)
          (sets_of_block b))
      step1
  in
  { cfg; hpc_of_block; accesses_of_block; first_time_of_block; step1; relevant }

let ground_truth_blocks cfg =
  List.filter_map
    (fun (b : BB.t) ->
      if BB.is_attack_ground_truth (G.program cfg) b then Some b.BB.id else None)
    (G.blocks cfg)

let accuracy ~identified ~truth =
  match truth with
  | [] -> 1.0
  | _ ->
    let hit = List.filter (fun b -> List.mem b identified) truth in
    float_of_int (List.length hit) /. float_of_int (List.length truth)
