(** The ambient trace id ({!Obs.set_trace_id} / {!Obs.trace_id} are the
    public accessors; this module only exists below {!Obs}, {!Log} and
    {!Provenance} in the dependency order so all three can stamp it). *)

val set : string option -> unit
val get : unit -> string option
