(** Attack-relevant basic-block identification (§III-A1) — the two-step
    runtime-data-driven pruning of the CFG.

    Step 1 maps the collected HPC events onto basic blocks by instruction
    address and keeps blocks whose summed 11-event HPC value is non-zero
    (they performed cache-related operations).

    Step 2 exploits the observation that a cache side-channel attack must
    touch some cache sets from at least two different blocks (e.g. the Flush
    and Reload steps): it computes each candidate's accessed LLC sets,
    finds sets accessed by two or more candidates, and eliminates candidates
    that touch none of those multiply-accessed sets. *)

type info = {
  cfg : Cfg.Graph.t;
  hpc_of_block : float array;
    (** summed HPC value per block id (step 1's ranking signal, also used by
        Algorithm 1's path scoring) *)
  accesses_of_block : (int * Hpc.Collector.access_kind) list array;
    (** data addresses (loads, stores, flushes) per block, chronological *)
  first_time_of_block : int option array;
    (** first retirement timestamp of each block's leader (or of any of its
        instructions, whichever is earliest) *)
  step1 : int list;    (** candidate block ids after step 1, ascending *)
  relevant : int list; (** attack-relevant block ids after step 2, ascending *)
}

val identify :
  ?llc_set_of_addr:(int -> int) -> Cfg.Graph.t -> Hpc.Collector.t -> info
(** [identify cfg collector] runs both steps.  [llc_set_of_addr] defaults to
    the set mapping of {!Cache.Config.llc}. *)

val ground_truth_blocks : Cfg.Graph.t -> int list
(** Blocks whose instructions carry {!Isa.Program.attack_tag} — the
    Table IV reference answer. *)

val accuracy : identified:int list -> truth:int list -> float
(** |identified ∩ truth| / |truth| — Table IV's accuracy (1.0 when [truth]
    is empty). *)
