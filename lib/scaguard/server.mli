(** [scaguard serve]: the resident streaming detection daemon.

    The batch stack pays repository load, {!Detector.prepare} and process
    start-up on every invocation; this module keeps all of that resident.  A
    server holds one validated {!Config.t}, one {!Detector.prepared}
    repository (the binary image's inline summaries make loading it
    near-free — see {!Service.load_repository}) and a name→job resolver, and
    speaks a newline-framed JSON protocol over stdio, a Unix socket or TCP:
    [detect] / [screen] / [explain] / [stats] / [metrics] / [reload] /
    [ping] / [shutdown] requests with ids, a bounded request queue with
    explicit backpressure replies, per-request deadlines that cancel
    cleanly between targets, and verdicts streamed back as each target
    completes.  Requests may carry an opaque [trace_id], echoed in every
    frame they produce and stamped on the spans, log events and provenance
    records their execution emits ({!Obs.set_trace_id}).

    The wire protocol — every frame shape, error code, and the
    backpressure / deadline / drain semantics — is specified in
    [docs/SERVER.md]; this interface is the embeddable core.  Requests are
    processed strictly in arrival order by the single serve thread, so a
    [reload] never races an in-flight request: everything queued before it
    classifies against the old repository, everything after against the new
    one.  Verdicts are bit-identical to [scaguard detect-batch] on the same
    targets and configuration (asserted by [bench: serve] and by CI).

    The lower layers ({!Framer}, {!Json}, {!parse_request},
    {!connect}/{!feed}/{!step}) are exposed so tests and benches can drive
    the protocol in-process without sockets. *)

(** {1 JSON} *)

module Json = Json
(** The strict JSON reader/writer the protocol frames use, re-exported
    from {!Scaguard.Json} (where {!Log} and {!Provenance} share it). *)

(** {1 Framing} *)

(** Newline framing with a hard line-length ceiling.  Bytes are fed in
    arbitrary chunks; complete lines come out.  A line longer than
    [max_line] is discarded (the framer keeps scanning for the next
    newline, so one oversized frame cannot desynchronize the stream) and
    reported as {!Overflow}.  Trailing [\r] is stripped, so [\r\n] clients
    work; empty lines are reported and ignored by the server (keepalive). *)
module Framer : sig
  type t

  type frame =
    | Line of string  (** one complete line, newline and trailing CR stripped *)
    | Overflow of { dropped : int }
        (** a line exceeded [max_line] and was discarded; [dropped] is how
            many bytes of it were thrown away (terminator excluded) *)

  val create : ?max_line:int -> unit -> t
  (** [max_line] (default 1 MiB) is the longest accepted line, in bytes,
      exclusive of the newline.  @raise Invalid_argument if [< 1]. *)

  val feed : t -> string -> frame list
  (** Consume a chunk, returning the frames it completed, in order. *)

  val eof : t -> frame option
  (** Flush the unterminated final line, if any (a lenient-EOF convenience
      for stdio clients that omit the last newline). *)

  val buffered : t -> int
  (** Bytes of the current incomplete line held in the framer. *)
end

(** {1 Protocol} *)

(** Error codes of the wire protocol's [error] frames.  The first five are
    the {!Err.t} taxonomy verbatim; the rest are server-lifecycle outcomes
    that have no batch equivalent. *)
type error_code =
  | Parse_error  (** unparseable or oversized frame, or invalid JSON — ["parse"] *)
  | Bad_request  (** well-formed JSON that is not a valid request — ["bad_request"] *)
  | Invalid_config  (** a request field failed validation (unknown target, bad seed) — ["invalid_config"] *)
  | Io  (** a filesystem operation failed (reload path unreadable) — ["io"] *)
  | Empty_repository  (** the resident repository has no models — ["empty_repository"] *)
  | Busy  (** the bounded queue is full: explicit backpressure — ["busy"] *)
  | Deadline  (** the request's deadline expired before or during execution — ["deadline"] *)
  | Unavailable  (** the server is draining after [shutdown] — ["unavailable"] *)
  | Internal  (** an unexpected exception; the server survives — ["internal"] *)

val error_code_to_string : error_code -> string
(** The wire name, e.g. [Busy] ↦ ["busy"]. *)

val error_code_of_err : Err.t -> error_code
(** The protocol rendering of a typed library error. *)

type request_body =
  | Detect of { targets : string list; seed : int; stream : bool }
      (** Build a model per named target and classify it; with [stream]
          (default) a verdict frame is emitted as each target completes,
          otherwise the whole batch runs on the parallel engine and the
          frames are emitted together at the end — identical frames and
          bits either way. *)
  | Screen of { targets : string list; seed : int }
      (** Batch triage: classify all targets in one parallel engine run,
          reply with one summary frame (counts + attack names) and no
          per-target verdict frames. *)
  | Explain of { targets : string list; seed : int }
      (** {!Screen} with provenance capture forced on
          ({!Service.explain}): the same engine run and bit-identical
          verdicts, replied as one frame whose [records] array holds one
          {!Provenance.t} JSON object per target — ensemble path, index
          pruning, candidate outcomes and final score bits. *)
  | Stats  (** server self-description: queue, counters, latency quantiles *)
  | Metrics  (** the {!Obs} registry as Prometheus text exposition *)
  | Reload of { path : string option }
      (** swap in a repository from [path] (default: the path the server
          was started from); on failure the old repository stays *)
  | Ping  (** liveness *)
  | Shutdown  (** stop accepting, drain the queue, ack, exit *)

type request = {
  id : Json.t;  (** echoed verbatim in every reply frame; [Num] (integral) or [Str] *)
  body : request_body;
  deadline_ms : int option;
      (** [Some ms]: the request is abandoned (with a ["deadline"] error)
          once [ms] milliseconds from arrival have passed; [None]: the
          server's default applies. *)
  trace_id : string option;
      (** opaque client-chosen correlation token: echoed as a [trace_id]
          field in every frame this request produces (success, error and
          verdict frames alike) and set as the ambient {!Obs.trace_id}
          while the request executes, so spans, log events and provenance
          records all carry it *)
}

val verb : request_body -> string
(** The protocol [op] name, e.g. ["detect"]. *)

type reject = {
  reject_id : Json.t;  (** the request's id when one was recovered, else [Null] *)
  code : error_code;
  message : string;
  reject_trace : string option;
      (** the request's [trace_id] when the envelope got far enough to
          carry a well-typed one — echoed on the error frame so clients
          can correlate failures too *)
}
(** Why a frame could not become a {!request}. *)

val parse_request : string -> (request, reject) result
(** Parse one frame.  Unknown top-level fields are ignored (forward
    compatibility); unknown [op]s, missing required fields and ill-typed
    fields are {!Bad_request}. *)

(** {1 The server} *)

type t

type resolve = seed:int -> string -> (Pipeline.job, Err.t) result
(** Name a target, get the job that builds its model — the daemon's
    equivalent of the CLI's program registry.  Must be deterministic in
    [(seed, name)] so serve verdicts reproduce [detect-batch]'s. *)

val create :
  config:Config.t ->
  resolve:resolve ->
  prepared:Detector.prepared ->
  ?repo_path:string ->
  ?queue_capacity:int ->
  ?max_line:int ->
  ?default_deadline_ms:int ->
  unit ->
  (t, Err.t) result
(** A resident server over an already-prepared repository (pair with
    {!Service.load_repository}).  [queue_capacity] (default 64) bounds the
    request queue; [max_line] (default 1 MiB) bounds a frame;
    [default_deadline_ms] (default 0 = none) applies to requests that carry
    no [deadline_ms].  Fails with [Invalid_config] (bad config or knob) or
    [Empty_repository]. *)

(** {2 Driving the protocol in-process}

    The transports below are thin loops over these four functions, which
    tests and the bench call directly. *)

type conn
(** One client connection: a framer plus an emit callback for reply
    frames. *)

val connect : t -> emit:(string -> unit) -> conn
(** Register a connection.  [emit] receives one complete reply frame (no
    newline) per call and must not raise — transports wrap socket writes so
    a dead peer disconnects instead of raising. *)

val disconnect : t -> conn -> unit
(** Drop a connection: its queued requests still execute (in order), but
    their reply frames go nowhere. *)

val feed : t -> conn -> string -> unit
(** Push raw bytes from the connection through the framer.  Each completed
    frame is parsed and enqueued; rejections (parse errors, queue-full
    backpressure, drain-phase refusals) are emitted immediately from here,
    {e before} queued work runs — backpressure never waits in line. *)

val pending : t -> int
(** Requests waiting in the queue. *)

val draining : t -> bool
(** Has a [shutdown] been processed?  While draining, newly arriving
    requests are refused with ["unavailable"]. *)

val step : t -> [ `Worked | `Idle | `Stop ]
(** Execute at most one queued request.  [`Idle]: queue empty, keep
    pumping I/O.  [`Worked]: one request was executed (or expired).
    [`Stop]: the drain finished — shutdown acks have been emitted and the
    transport should exit. *)

val drain : t -> [ `Idle | `Stop ]
(** {!step} until the queue empties (or the drain finishes). *)

val served : t -> int
(** Requests executed since start (rejections not included). *)

val uptime_s : t -> float

(** {2 Transports} *)

type endpoint =
  | Stdio  (** requests on stdin, frames on stdout — tests and pipelines *)
  | Unix_socket of string  (** path; stale socket files are reclaimed *)
  | Tcp of { host : string; port : int }

val endpoint_to_string : endpoint -> string

val serve_channels : t -> ic:in_channel -> oc:out_channel -> (unit, Err.t) result
(** The stdio loop over explicit channels (what [Stdio] uses with
    [stdin]/[stdout]): read chunks, feed, drain, reply on [oc] (flushed per
    frame).  Returns after a completed shutdown drain or at EOF (EOF drains
    the queue first, then a final unterminated line, if any, is still
    served). *)

val serve : t -> endpoint -> (unit, Err.t) result
(** Run the daemon until shutdown.  Unix/TCP: a single-threaded
    [select] loop multiplexing accept/read/reply around {!step}, so
    queue-full backpressure and deadline expiry keep being noticed between
    requests even under a long drain.  SIGPIPE is ignored for the
    process (dead clients surface as [EPIPE] and disconnect).  Errors are
    [Io] (bind/listen failures — e.g. the TCP port or socket path is
    taken by a live server). *)
