(** Similarity-based detection and classification (§III-B3).

    A repository holds the CST-BBS models of known attack PoCs, each labelled
    with its family.  A target is compared against every PoC; the best score
    decides: above the threshold, the target is classified into the best
    PoC's family, otherwise it is considered benign.

    The verdict only commits to what the decision rule needs — the best
    score and its ties — which is what lets {!classify} skip, via the exact
    lower-bound cascade in {!Dtw}, any PoC provably unable to affect the
    outcome.  The full score matrix remains available through {!score_all}
    (display, debugging, calibration), at full cost. *)

type poc = { family : string; model : Model.t }

type repository = poc list

type verdict = {
  best_matches : (string * string * float) list;
    (** The PoCs tied at exactly [best_score]: (model name, family,
        similarity) — usually a single element.  Ordering is deterministic:
        family, then model name (scores are all equal) — never dependent on
        repository assembly order. *)
  best_family : string option;
    (** [Some family] when the best score reaches the threshold; the family
        of the first element of [best_matches]. *)
  best_score : float;
}

val default_threshold : float
(** 0.60.  The paper picks 45% as the middle of its 30–60% sweep plateau
    (Fig. 5); our normalized-DTW similarity scale sits higher, and the same
    sweep methodology over this implementation yields a plateau around
    55–65%, hence 60%. *)

val score_all :
  ?alpha:float -> ?ws:Dtw.workspace -> ?band:int ->
  repository -> Model.t -> (string * string * float) list
(** The full score matrix against every PoC, sorted score descending (then
    family, then model name).  Always computes every pair exactly — no
    pruning — since every score is reported.  The head of the list agrees
    with the [best_matches] head of {!classify} on the same inputs. *)

val classify :
  ?threshold:float -> ?alpha:float -> ?ws:Dtw.workspace -> ?band:int ->
  ?prune:bool -> repository -> Model.t -> verdict
(** Compare the target model with every PoC.  An empty repository yields
    {!empty_verdict}.  [ws] (buffer reuse) and [band] (Sakoe–Chiba) feed
    {!Dtw.compare_models}; with [band] absent the scores are exact.

    [prune] (default [true]) enables the exact lower-bound cascade: PoCs are
    visited in ascending-lower-bound order with a best-so-far cutoff, and a
    PoC is skipped only when provably below the running best.  Verdicts are
    bit-identical with pruning on or off (a tested invariant); pruning
    auto-disables for [alpha] outside [\[0,1\]], where the bounds are not
    sound. *)

type prepared
(** A repository with precomputed {!Dtw.summary}s, ready to classify many
    targets.  Immutable — one [prepared] value is safely shared by all
    domains of a batch. *)

val prepare : ?index:Vpindex.spec -> repository -> prepared
(** Summarize every PoC once.  Repository order is preserved.  With [index],
    additionally build the repository index over the summaries
    ({!Vpindex.build} — which may still decline under [Auto] on a small
    repository). *)

val prepare_summarized :
  ?index:Vpindex.spec -> (poc * Dtw.summary) array -> prepared
(** Assemble a prepared repository from PoCs whose summaries already exist —
    the instant-start path of the binary repository image, where
    {!Persist.load_repository_prepared_result} reads the summaries inline
    and {!prepare} would only recompute what the file carries.  Each summary
    must be {!Dtw.summarize} (or {!Dtw.summarize_with} with that model's
    stored magnitudes) of its paired PoC's model; array order is the
    repository order.  The array is copied.  [index] as in {!prepare}. *)

val prepared_size : prepared -> int
(** Number of PoCs in the prepared repository. *)

val prepared_index : prepared -> Vpindex.t option
(** The repository index, when one was built or attached. *)

val prepared_summaries : prepared -> Dtw.summary array
(** The PoC summaries in repository order (a fresh array of shared
    summaries) — what {!Vpindex.build} consumes and {!Persist} serializes. *)

val attach_index : prepared -> Vpindex.t option -> prepared
(** Replace the prepared repository's index — the no-rebuild path of the
    binary image, where the index is deserialized rather than rebuilt.  The
    caller vouches that the index was built over this exact repository (the
    image's integrity assumption); only the sizes are checked.
    @raise Invalid_argument on a size mismatch. *)

val classify_prepared :
  ?threshold:float -> ?alpha:float -> ?ws:Dtw.workspace -> ?band:int ->
  ?prune:bool -> ?ixc:Vpindex.counters -> prepared -> Model.t -> verdict
(** {!classify} against a pre-summarized repository — bit-identical results,
    minus the per-call summarization cost.

    When the prepared repository carries an index and pruning is enabled
    (and sound — [alpha] in [\[0,1\]]), candidates come from
    {!Vpindex.search} instead of the linear ascending-lower-bound sweep:
    subtrees provably below the running best are skipped without evaluating
    per-pair lower bounds.  Verdicts remain bit-identical either way (a
    tested invariant).  [ixc] accumulates the index counters reported by
    {!Engine}. *)

val score_all_prepared :
  ?alpha:float -> ?ws:Dtw.workspace -> ?band:int ->
  prepared -> Model.t -> (string * string * float) list
(** {!score_all} against a pre-summarized repository — bit-identical.  Every
    score is reported, so the index is deliberately not consulted: there is
    nothing sound to skip. *)

val classify_batch :
  ?threshold:float -> ?alpha:float -> ?band:int -> ?domains:int ->
  ?prune:bool -> ?index:Vpindex.spec -> repository -> Model.t array ->
  verdict array
(** Classify every target, in parallel across [domains] OCaml domains
    (default {!Sutil.Pool.default_domains}); the repository is prepared once
    and each worker reuses one {!Dtw.workspace}.  Verdicts are identical —
    including score bits and ordering — to mapping {!classify} over the
    targets sequentially.  See {!Engine.classify_batch} for the instrumented
    variant. *)

val is_attack : verdict -> bool

val empty_verdict : verdict
(** The benign verdict of an empty repository: no matches, best score 0. *)
