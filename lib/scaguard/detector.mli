(** Similarity-based detection and classification (§III-B3).

    A repository holds the CST-BBS models of known attack PoCs, each labelled
    with its family.  A target is compared against every PoC; the best score
    decides: above the threshold, the target is classified into the best
    PoC's family, otherwise it is considered benign. *)

type poc = { family : string; model : Model.t }

type repository = poc list

type verdict = {
  scores : (string * string * float) list;
    (** (PoC model name, family, similarity), best first *)
  best_family : string option;
    (** [Some family] when the best score reaches the threshold *)
  best_score : float;
}

val default_threshold : float
(** 0.60.  The paper picks 45% as the middle of its 30–60% sweep plateau
    (Fig. 5); our normalized-DTW similarity scale sits higher, and the same
    sweep methodology over this implementation yields a plateau around
    55–65%, hence 60%. *)

val classify :
  ?threshold:float -> ?alpha:float -> repository -> Model.t -> verdict
(** Compare the target model with every PoC.  An empty repository yields a
    benign verdict with no scores. *)

val is_attack : verdict -> bool
