(** Similarity-based detection and classification (§III-B3).

    A repository holds the CST-BBS models of known attack PoCs, each labelled
    with its family.  A target is compared against every PoC; the best score
    decides: above the threshold, the target is classified into the best
    PoC's family, otherwise it is considered benign. *)

type poc = { family : string; model : Model.t }

type repository = poc list

type verdict = {
  scores : (string * string * float) list;
    (** (PoC model name, family, similarity), best first.  Ordering is
        deterministic: score descending, then family, then model name — a
        tie never depends on repository assembly order. *)
  best_family : string option;
    (** [Some family] when the best score reaches the threshold *)
  best_score : float;
}

val default_threshold : float
(** 0.60.  The paper picks 45% as the middle of its 30–60% sweep plateau
    (Fig. 5); our normalized-DTW similarity scale sits higher, and the same
    sweep methodology over this implementation yields a plateau around
    55–65%, hence 60%. *)

val classify :
  ?threshold:float -> ?alpha:float -> ?ws:Dtw.workspace -> ?band:int ->
  repository -> Model.t -> verdict
(** Compare the target model with every PoC.  An empty repository yields a
    benign verdict with no scores.  [ws] (buffer reuse) and [band]
    (Sakoe–Chiba) feed {!Dtw.compare_models}; with [band] absent the scores
    are exact. *)

val classify_batch :
  ?threshold:float -> ?alpha:float -> ?band:int -> ?domains:int ->
  repository -> Model.t array -> verdict array
(** Classify every target, in parallel across [domains] OCaml domains
    (default {!Sutil.Pool.default_domains}); each worker reuses one
    {!Dtw.workspace}.  Verdicts are identical — including score bits and
    ordering — to mapping {!classify} over the targets sequentially.  See
    {!Engine.classify_batch} for the instrumented variant. *)

val is_attack : verdict -> bool

val empty_verdict : verdict
(** The benign verdict of an empty repository: no scores, best score 0. *)
