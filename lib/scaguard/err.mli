(** Typed errors for the library boundary.

    Every recoverable failure mode of the build→detect stack is one of these
    constructors, so front-ends can render a precise message (and pick an
    exit code) without pattern-matching on exception strings.  The
    exception-raising entry points elsewhere in the library keep raising
    [Failure] for compatibility; the [_result] variants return [t] instead. *)

type t =
  | Parse of { file : string option; line : int option; msg : string }
      (** A persisted artefact (model, repository, config) failed to parse.
          [line] is the 1-based line number in the original text, counting
          blank lines; [None] when the failure has no single location. *)
  | Io of { path : string; msg : string }
      (** A filesystem operation failed. [msg] is the OS-level reason. *)
  | Invalid_config of { field : string; value : string; expected : string }
      (** A configuration field (or CLI flag — [field] then names the flag)
          holds [value], which is outside the accepted range [expected]. *)
  | Empty_repository
      (** A detection run was asked to score against zero PoC models. *)

val to_string : t -> string
(** One-line human-readable rendering, e.g.
    ["parse error at r.repo:12: bad cst line"]. *)

val pp : Format.formatter -> t -> unit

val exit_code : t -> int
(** The documented CLI exit code for this error: [1] for usage/configuration
    errors ([Invalid_config], [Empty_repository]), [2] for runtime errors
    ([Parse], [Io]).  [0] is never returned. *)
