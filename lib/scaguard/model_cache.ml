(* Content-addressed store: one model per file, file name = hex digest of
   every input that determines the model's bytes.  There is no separate
   invalidation protocol — change an ingredient and the key changes, so the
   old entry is simply never looked up again. *)

(* Bump whenever the persisted format or the modeling pipeline changes in a
   way that alters model bytes for identical inputs.  2: entries moved from
   the text format to the SCAGBIN binary encoding. *)
let format_version = 2

type t = {
  dir : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  stale : int Atomic.t;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Model_cache: %s exists and is not a directory" dir)

let create ~dir =
  mkdir_p dir;
  {
    dir;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    stale = Atomic.make 0;
  }

let create_result ~dir =
  match create ~dir with
  | t -> Ok t
  | exception Invalid_argument _ ->
    Error
      (Err.Invalid_config
         {
           field = "cache_dir";
           value = dir;
           expected = "a directory (or a path where one can be created)";
         })
  | exception Unix.Unix_error (e, _, _) ->
    Error (Err.Io { path = dir; msg = Unix.error_message e })
  | exception Sys_error msg -> Error (Err.Io { path = dir; msg })

let dir t = t.dir
let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let stale t = Atomic.get t.stale

let key ?settings ?cst_config ?max_paths ?max_len ?victim ?(salt = "") ~name
    program =
  (* Normalize the optional knobs to what the pipeline actually uses, so
     [None] and an explicitly-passed default produce the same key. *)
  let s = Option.value ~default:Cpu.Exec.default_settings settings in
  let cc = Option.value ~default:Cache.Config.cst_probe cst_config in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun str -> Buffer.add_string buf str) fmt in
  add "scaguard-model-cache %d\n" format_version;
  add "name %s\n" name;
  add "salt %s\n" salt;
  add "settings %d %d %d %d %s\n" s.Cpu.Exec.spec_window s.Cpu.Exec.quantum
    s.Cpu.Exec.victim_quantum s.Cpu.Exec.fuel
    (match s.Cpu.Exec.protected_range with
    | None -> "-"
    | Some (lo, hi) -> Printf.sprintf "%d:%d" lo hi);
  add "cst_config %d %d %d\n" cc.Cache.Config.sets cc.Cache.Config.ways
    cc.Cache.Config.line_bits;
  (* Defaults for these two live in Attack_graph; changing those defaults is
     a pipeline change and is covered by the format_version bump rule. *)
  add "max_paths %s\n"
    (match max_paths with None -> "-" | Some n -> string_of_int n);
  add "max_len %s\n"
    (match max_len with None -> "-" | Some n -> string_of_int n);
  (* Binary.encode captures code, base address and labels — everything that
     determines the program's execution.  The init closures (attacker memory
     preparation, victim state) cannot be hashed; callers cover them through
     [salt] (the CLI uses the workload seed). *)
  (match victim with
  | None -> add "victim -\n"
  | Some vp ->
    let enc = Isa.Binary.encode vp in
    add "victim %d\n" (String.length enc);
    Buffer.add_string buf enc;
    Buffer.add_char buf '\n');
  let enc = Isa.Binary.encode program in
  add "program %d\n" (String.length enc);
  Buffer.add_string buf enc;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let path t ~key = Filename.concat t.dir (key ^ ".cstbbs")

(* Lookup outcomes feed the per-instance Atomics (the existing stats API)
   and, when observability is on, the global registry and a cache:* span —
   observation only, never a change to what is returned. *)
let observed ~outcome ~counter t0 =
  if Obs.metrics () then Obs.Registry.incr counter;
  if Obs.tracing () then
    Obs.emit_span ~cat:"cache" ~name:("cache:" ^ outcome) ~ts_ns:t0
      ~dur_ns:(Obs.Clock.elapsed_ns ~since:t0) ()

let find t ~key =
  let observing = Obs.enabled () in
  let t0 = if observing then Obs.Clock.now_ns () else 0L in
  let file = path t ~key in
  if not (Sys.file_exists file) then begin
    Atomic.incr t.misses;
    if observing then observed ~outcome:"miss" ~counter:Obs.Metrics.cache_misses_total t0;
    None
  end
  else
    match Persist.load_model_result ~path:file with
    | Ok model ->
      Atomic.incr t.hits;
      if observing then observed ~outcome:"hit" ~counter:Obs.Metrics.cache_hits_total t0;
      Some model
    | Error _ ->
      (* Unreadable, corrupt, or written by a different binary-format
         version (the loader reports an unsupported version as a parse
         error): the entry is stale, not fatal — drop it and rebuild. *)
      Atomic.incr t.stale;
      (try Sys.remove file with Sys_error _ -> ());
      if observing then observed ~outcome:"stale" ~counter:Obs.Metrics.cache_stale_total t0;
      None

let store t ~key model =
  Persist.write_atomic ~path:(path t ~key) (Persist.model_to_bytes model)

let find_or_build t ~key build =
  match find t ~key with
  | Some model -> model
  | None ->
    let model = build () in
    store t ~key model;
    model

let pp_stats fmt t =
  Format.fprintf fmt "cache %s: %d hits, %d misses, %d stale" t.dir (hits t)
    (misses t) (stale t)
