module BB = Cfg.Basic_block
module G = Cfg.Graph

type entry = {
  block : int;
  instrs : Isa.Instr.t list;
  normalized : string array;
  cst : Cst.t;
  first_time : int;
}

type t = { name : string; entries : entry list }

let build ?cst_config ~name (info : Relevant.info) (ag : Attack_graph.t) =
  let cfg = info.Relevant.cfg in
  let prog = G.program cfg in
  let entry_of_block b =
    let bb = G.block cfg b in
    let instrs = BB.instrs prog bb in
    {
      block = b;
      instrs;
      normalized = Isa.Normalize.sequence instrs;
      cst = Cst.measure ?config:cst_config info.Relevant.accesses_of_block.(b);
      first_time =
        Option.value ~default:max_int info.Relevant.first_time_of_block.(b);
    }
  in
  let entries =
    List.map entry_of_block ag.Attack_graph.nodes
    |> List.sort (fun a b ->
           match Int.compare a.first_time b.first_time with
           | 0 -> Int.compare a.block b.block
           | c -> c)
  in
  { name; entries }

let length t = List.length t.entries
let is_empty t = t.entries = []
let entries_array t = Array.of_list t.entries

let pp fmt t =
  Format.fprintf fmt "@[<v>CST-BBS %s (%d blocks)@," t.name (length t);
  List.iter
    (fun e ->
      Format.fprintf fmt "  BB%d @@%d: %s | %a@," e.block
        (if e.first_time = max_int then -1 else e.first_time)
        (String.concat ";" (Array.to_list e.normalized))
        Cst.pp e.cst)
    t.entries;
  Format.fprintf fmt "@]"
