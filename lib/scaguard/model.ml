module BB = Cfg.Basic_block
module G = Cfg.Graph

type entry = {
  block : int;
  instrs : Isa.Instr.t list;
  normalized : string array;
  tokens : int array;
  cst : Cst.t;
  first_time : int;
}

type t = { name : string; entries : entry list; entries_arr : entry array }

let make_entry ~block ~instrs ~normalized ~cst ~first_time =
  {
    block;
    instrs;
    normalized;
    tokens = Sutil.Intern.intern_all Sutil.Intern.global normalized;
    cst;
    first_time;
  }

let make ~name entries = { name; entries; entries_arr = Array.of_list entries }

let build ?cst_config ?measurer ~name (info : Relevant.info) (ag : Attack_graph.t)
    =
  let cfg = info.Relevant.cfg in
  let prog = G.program cfg in
  (* Distinct blocks often replay identical access lists (e.g. several empty
     or single-probe blocks); one CST per distinct list suffices.  The memo
     is per-build: Cst.measure is a pure function of (config, accesses), so
     sharing the measured record is observationally identical. *)
  let memo : ((int * Hpc.Collector.access_kind) list, Cst.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let measure accesses =
    match Hashtbl.find_opt memo accesses with
    | Some cst -> cst
    | None ->
      let cst = Cst.measure ?measurer ?config:cst_config accesses in
      Hashtbl.add memo accesses cst;
      cst
  in
  let entry_of_block b =
    let bb = G.block cfg b in
    let instrs = BB.instrs prog bb in
    make_entry ~block:b ~instrs ~normalized:(Isa.Normalize.sequence instrs)
      ~cst:(measure info.Relevant.accesses_of_block.(b))
      ~first_time:
        (Option.value ~default:max_int info.Relevant.first_time_of_block.(b))
  in
  let entries =
    List.map entry_of_block ag.Attack_graph.nodes
    |> List.sort (fun a b ->
           match Int.compare a.first_time b.first_time with
           | 0 -> Int.compare a.block b.block
           | c -> c)
  in
  make ~name entries

let length t = List.length t.entries
let is_empty t = t.entries = []
let entries_array t = t.entries_arr

let pp fmt t =
  Format.fprintf fmt "@[<v>CST-BBS %s (%d blocks)@," t.name (length t);
  List.iter
    (fun e ->
      Format.fprintf fmt "  BB%d @@%d: %s | %a@," e.block
        (if e.first_time = max_int then -1 else e.first_time)
        (String.concat ";" (Array.to_list e.normalized))
        Cst.pp e.cst)
    t.entries;
  Format.fprintf fmt "@]"
