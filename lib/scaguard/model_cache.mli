(** Content-addressed on-disk cache of CST-BBS models.

    Model building is the front-end's dominant cost (simulate, identify,
    walk, measure); for a fixed binary and fixed knobs the resulting model
    is deterministic, so it can be built once and reloaded forever after.
    An entry is one model in the {!Persist} binary encoding
    ({!Persist.model_to_bytes}), named by the hex digest of everything that
    determines the model's bytes:

    - a format version (bumped when the pipeline or the persisted format
      changes behavior),
    - the model name,
    - the execution settings and the CST probe-cache geometry,
    - the attack-graph bounds ([max_paths] / [max_len]),
    - the {e encoded} attacker and victim programs ({!Isa.Binary.encode}:
      code, base address, labels),
    - a caller-supplied [salt] covering inputs that cannot be hashed —
      chiefly the [init] closures that prepare machine state (the CLI
      passes the workload seed).

    There is no invalidation protocol: change any ingredient and the key
    changes, so the old entry is never looked up again.  Corrupt or
    unreadable entries — including entries whose binary-format version this
    build does not read — count as {e stale}, are deleted, and fall back to
    a rebuild; a cache directory can never make a run fail.  Counters use
    [Atomic] and the store writes atomically ({!Persist.write_atomic}), so
    one cache may be shared by all pool workers of a batch build. *)

type t

val create : dir:string -> t
(** Open (creating directories as needed) a cache rooted at [dir].
    @raise Invalid_argument if [dir] exists and is not a directory. *)

val create_result : dir:string -> (t, Err.t) result
(** Like {!create}: [Error (Invalid_config _)] if [dir] exists and is not a
    directory, [Error (Io _)] if the directories cannot be created. *)

val dir : t -> string

val key :
  ?settings:Cpu.Exec.settings ->
  ?cst_config:Cache.Config.t ->
  ?max_paths:int ->
  ?max_len:int ->
  ?victim:Isa.Program.t ->
  ?salt:string ->
  name:string -> Isa.Program.t -> string
(** Digest of the ingredient list above.  [settings] and [cst_config]
    default to the pipeline's defaults, so omitting them and passing the
    default explicitly yield the same key. *)

val find : t -> key:string -> Model.t option
(** Look up a model; counts a hit, a miss (no entry), or a stale entry
    (present but unloadable — corrupt, truncated, or an unsupported format
    version; the file is deleted). *)

val store : t -> key:string -> Model.t -> unit
(** Write-through (atomic temp-file + rename). *)

val find_or_build : t -> key:string -> (unit -> Model.t) -> Model.t
(** [find] and, on miss/stale, build, store and return. *)

val hits : t -> int
val misses : t -> int
val stale : t -> int

val pp_stats : Format.formatter -> t -> unit
(** One-line counter summary, e.g. for the CLI's [--cache-dir] report. *)
