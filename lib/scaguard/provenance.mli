(** Per-verdict decision provenance.

    One record per classified target, explaining {e why} the verdict came
    out the way it did:

    - the {b ensemble path} ([Detect.Ensemble]): the HPC screen's z-score
      against the escalation threshold tau, and whether the run was
      fast-rejected or escalated into the DTW detector;
    - the {b index traversal} ({!Vpindex.search}): nodes visited and
      subtrees cut off, each with the pooled bound that justified it;
    - every {b candidate} PoC model with its lower bound and outcome —
      scored, pruned by the bound, or abandoned mid-DP;
    - the {b final score} down to its float bits, the matches above
      threshold, and the winning family.

    The capture discipline copies {!Obs}: a plain-ref switch
    ({!set_capture}) read once at [Detector.classify_prepared] entry (the
    disabled hot path is one load-and-branch, zero allocation — the builder
    is simply never created), a lock-free bounded sink safe from every
    engine worker domain, and strict observation purity — nothing on the
    detection path reads this state back, so verdicts are bit-identical
    with capture on or off (qcheck-asserted).

    Records serialize to JSON ({!to_json} / {!of_json} round-trip exactly,
    qcheck-asserted) and are rendered by [scaguard explain] and the serve
    protocol's [explain] verb. *)

type ensemble_path = {
  screen_z : float;  (** anomaly z-score ([infinity] when no screen model) *)
  tau : float;  (** the escalation threshold the z-score was compared to *)
  escalated : bool;  (** false = fast-rejected without DTW *)
}

type index_event =
  | Node_visited of { bound : float; members : int }
      (** the search expanded this node: its pooled bound did not beat
          best-so-far, so its [members]-model subtree stayed live *)
  | Subtree_pruned of { bound : float; members : int }
      (** the best-first frontier's minimum bound exceeded the pruning
          radius: [members] models across every remaining subtree were
          proven losers and skipped *)
  | Member_pruned of { bound : float }
      (** a leaf member's per-model screen bound exceeded the radius *)

type outcome =
  | Scored of float  (** full DTW ran (or was resolved exactly) *)
  | Pruned_lb  (** the cheap lower bound proved the pair irrelevant *)
  | Abandoned  (** the DP started but the cutoff ended it mid-matrix *)
  | Pruned
      (** proven irrelevant, bound-vs-abandon indistinguishable (no
          workspace counters were threaded through this call) *)

type candidate = {
  poc : string;
  family : string;
  lb : float option;  (** the precomputed lower bound, when one was used *)
  outcome : outcome;
}

type path =
  | Linear  (** every repository model was considered in order *)
  | Indexed  (** the vantage-point index drove candidate selection *)
  | Fast_rejected  (** the ensemble screen rejected before any DTW *)

type t = {
  seq : int;  (** global emission order — the sort key of {!records} *)
  target : string;
  trace_id : string option;  (** the ambient {!Obs.trace_id} at finish *)
  worker : int;  (** domain id of the classifying worker *)
  path : path;
  ensemble : ensemble_path option;
      (** present when the two-tier ensemble drove the classification *)
  index_events : index_event list;  (** in traversal order *)
  candidates : candidate list;  (** in evaluation order *)
  best_matches : (string * string * float) list;
      (** (poc, family, score): the entries tying the best score, in the
          verdict's canonical (family, name) order — [Detector.verdict]'s
          [best_matches] verbatim *)
  best_family : string option;
  best_score : float;
  threshold : float;
  duration_ns : int64;
}

(** {1 Switch and sink} *)

val enabled : unit -> bool
val set_capture : bool -> unit
(** Toggle capture (default off).  Front-ends flip this before a run, never
    concurrently with one. *)

val set_capacity : int -> unit
(** Sink bound (default 16384 records).  Once full, further records are
    counted in {!dropped} and discarded — emission never blocks.
    @raise Invalid_argument if [< 1]. *)

val records : unit -> t list
(** Captured records since the last {!clear}, in emission order. *)

val dropped : unit -> int
val clear : unit -> unit

val with_capture : (unit -> 'a) -> 'a * t list
(** [with_capture f] — run [f] with capture forced on and a fresh sink,
    returning its result alongside exactly the records it produced; the
    previous sink contents and switch state are restored afterwards (also
    on raise, where the captured records are discarded with the exception
    re-raised).  Concurrent emitters outside [f]'s dynamic extent would
    land in [f]'s capture — fine for the serve drainer (which owns all
    execution) and the CLI. *)

(** {1 Builder}

    Created by [Detector.classify_prepared] when {!enabled}; every
    recording call is a cheap mutation of the builder, and {!finish}
    publishes the completed record to the sink. *)

type builder

val start : target:string -> threshold:float -> builder
(** Begin a record (captures the monotonic start time). *)

val set_path : builder -> path -> unit
val index_event : builder -> index_event -> unit

val candidate :
  builder -> poc:string -> family:string -> ?lb:float -> outcome -> unit

val finish :
  builder ->
  best_matches:(string * string * float) list ->
  best_family:string option ->
  best_score:float ->
  unit
(** Seal and publish: stamps the duration, the ambient trace id, the
    worker's domain id, and the pending ensemble note (see
    {!note_ensemble}), then pushes to the sink. *)

(** {1 The ensemble handoff}

    [Detect.Ensemble] runs on the same domain as the detector it escalates
    into, so the screen outcome rides domain-local state: the ensemble
    {!note_ensemble}s just before classifying, and the detector's
    {!finish} folds the note into its record.  A fast-reject never reaches
    the detector, so the ensemble publishes the (tiny) record itself with
    {!emit_fast_reject}. *)

val note_ensemble : screen_z:float -> tau:float -> escalated:bool -> unit

val emit_fast_reject : target:string -> threshold:float -> unit
(** Publish a [Fast_rejected] record (no candidates, score 0) carrying the
    pending ensemble note. *)

(** {1 JSON codec} *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; [of_json (to_json r) = Ok r] for every record
    (scores decode from their [score_bits] so re-encoding is lossless). *)

val to_jsonl : t list -> string
(** One compact JSON object per line.  (Writing the artifact is the
    caller's job — [Persist.write_atomic] sits {e above} this module in
    the dependency order, so there is no [write] here.) *)
