(** The parallel batch detection engine.

    Deployment (§V of the paper) screens many programs against a fixed PoC
    repository; online detectors live or die on per-sample scoring latency.
    This engine fans {!Detector.classify} out over a pool of OCaml 5 domains
    (a shared atomic work queue, so uneven model sizes balance dynamically),
    gives each worker one reusable {!Dtw.workspace} so the DTW + Levenshtein
    hot path allocates nothing per pair, and reports per-batch counters.

    Parallelism never changes verdicts: each target is scored by exactly the
    sequential {!Detector.classify} code path, so the verdict array —
    including score bits and tie ordering — is identical to a sequential
    map.  The [band] option (Sakoe–Chiba) is the only knob that trades
    exactness for speed, and it is off by default. *)

type stats = {
  domains : int;      (** workers actually used *)
  targets : int;      (** targets classified *)
  pairs : int;        (** model pairs scored (targets × repository) *)
  cells : int;        (** DTW DP cells computed *)
  wall_s : float;     (** wall-clock seconds for the batch *)
  cpu_s : float;      (** process CPU seconds for the batch (all domains) *)
  per_worker : int array;  (** targets classified by each worker *)
}

val classify_batch :
  ?threshold:float -> ?alpha:float -> ?band:int -> ?domains:int ->
  Detector.repository -> Model.t array -> Detector.verdict array * stats
(** Classify every target against the repository.  [domains] defaults to
    {!Sutil.Pool.default_domains} (clamped to the batch size). *)

val utilization : stats -> float
(** [cpu / (wall * domains)], clamped to [\[0,1\]]: 1.0 means every worker
    was busy the whole batch. *)

val throughput : stats -> float
(** Pairs scored per wall-clock second. *)

val pp_stats : Format.formatter -> stats -> unit
