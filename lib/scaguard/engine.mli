(** The parallel batch detection engine.

    Deployment (§V of the paper) screens many programs against a fixed PoC
    repository; online detectors live or die on per-sample scoring latency.
    This engine summarizes the repository once ({!Detector.prepare}), fans
    {!Detector.classify_prepared} out over a pool of OCaml 5 domains
    (a shared atomic work queue, so uneven model sizes balance dynamically),
    gives each worker one reusable {!Dtw.workspace} so the DTW + Levenshtein
    hot path allocates nothing per pair, and reports per-batch counters.

    Neither parallelism nor pruning changes verdicts: each target is scored
    by exactly the sequential {!Detector.classify} code path, and the
    lower-bound cascade only ever skips work it proves irrelevant, so the
    verdict array — including score bits and tie ordering — is identical to
    a sequential, pruning-free map.  The [band] option (Sakoe–Chiba) is the
    only knob that trades exactness for speed, and it is off by default.
    [docs/PERFORMANCE.md] is the operator guide to all of these knobs. *)

type stats = {
  domains : int;      (** workers actually used *)
  targets : int;      (** targets classified *)
  pairs : int;        (** model pairs considered (targets × repository),
                          whether scored exactly or resolved by a bound *)
  cells : int;        (** DTW DP cells computed *)
  pairs_pruned_lb : int;
    (** pairs skipped without any DP: a lower bound proved they could not
        reach the best score *)
  pairs_abandoned : int;
    (** pairs whose DP was started but cut short by the cutoff *)
  cells_saved : int;
    (** DP cells pruning avoided (whole matrices of lower-bound-pruned
        pairs + unvisited rows of abandoned pairs) *)
  lb_evals : int;
    (** {!Dtw.lower_bound} evaluations.  The linear cascade performs one per
        pair; the repository index exists to shrink this — the
        visited-fraction [lb_evals / pairs] is the headline [bench: index]
        metric. *)
  nodes_visited : int;
    (** repository-index tree nodes expanded ({!Vpindex.counters}); 0 when
        no index is in play *)
  pairs_pruned_index : int;
    (** pairs skipped by the index before any per-pair lower bound ran;
        still counted in [pairs] *)
  wall_s : float;     (** wall-clock seconds for the batch *)
  cpu_s : float;      (** process CPU seconds for the batch (all domains) *)
  per_worker : int array;  (** targets classified by each worker *)
}

val classify_batch :
  ?threshold:float -> ?alpha:float -> ?band:int -> ?domains:int ->
  ?prune:bool -> ?index:Vpindex.spec ->
  Detector.repository -> Model.t array -> Detector.verdict array * stats
(** Classify every target against the repository.  [domains] defaults to
    {!Sutil.Pool.default_domains} (clamped to the batch size); [prune]
    (default [true]) toggles the exact lower-bound cascade — verdicts are
    bit-identical either way, only the counters move.  [index] builds the
    repository index during preparation ({!Detector.prepare}); verdicts are
    again bit-identical with or without it. *)

val classify_batch_prepared :
  ?threshold:float -> ?alpha:float -> ?band:int -> ?domains:int ->
  ?prune:bool ->
  Detector.prepared -> Model.t array -> Detector.verdict array * stats
(** {!classify_batch} against an already-prepared repository — the
    instant-start path of the binary repository image, where
    {!Persist.load_repository_prepared_result} hands back the summaries
    without a {!Detector.prepare} pass.  Verdicts and counters are identical
    to {!classify_batch} on the repository the [prepared] was built from. *)

val utilization : stats -> float
(** [cpu / (wall * domains)], clamped to [\[0,1\]]: 1.0 means every worker
    was busy the whole batch.  By convention [0.] when [wall_s = 0.] (a
    batch too small to time) — never [nan]. *)

val throughput : stats -> float
(** Pairs per wall-clock second.  [0.] when [wall_s = 0.], never
    [infinity]. *)

val pp_stats : Format.formatter -> stats -> unit
