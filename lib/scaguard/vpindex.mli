(** Repository index: sublinear candidate search over the lower-bound
    cascade (ROADMAP "UCR-suite trajectory", indexing step).

    The linear cascade of {!Dtw.compare_summaries} still evaluates one
    {!Dtw.lower_bound} per (target, PoC) pair — O(repository) work per
    target.  [Vpindex] organizes the summarized repository once
    ({!Detector.prepare}) into a vantage-point tree whose every node carries
    {e aggregate} scoring ingredients pooled over its subtree (entry-count
    ranges, magnitude ranges, first/last-entry pools, small interval
    sketches of magnitudes and token counts).  At query time, {!search}
    walks the tree best-first and computes from those pools a provable lower
    bound on the normalized DTW distance between the target and {e every}
    member of a subtree; the subtree is skipped only when that bound exceeds
    the caller's current radius.  Verdicts therefore stay bit-identical to
    the linear scan — the same soundness argument as the cascade (bounds
    never exceed the true distance), tested by qcheck properties and
    asserted in [bench: index] and CI.

    {b Not a metric index.}  Normalized DTW violates the triangle
    inequality, so classic VP-tree pruning by pivot distance would be
    unsound.  Pivots only steer {e construction} (grouping models that are
    close in lower-bound distance so subtree pools stay tight); all pruning
    decisions rest on the per-node aggregate bounds.

    {b Determinism.}  Construction is sequential and seeded
    ([spec.seed], derived from [Config.salt] via {!seed_of_salt}), so
    building the same repository twice yields byte-identical indexes
    ({!to_bytes}) regardless of process, domain count, or hash-table
    iteration order.

    See [docs/PERFORMANCE.md] "Repository index" for the operator view and
    [DESIGN.md] for the byte-level layout of the serialized form. *)

type mode =
  | Auto  (** build only when the repository has ≥ {!auto_min} models *)
  | Force  (** always build (flat cluster table below {!flat_max} models) *)

type spec = {
  mode : mode;
  leaf : int;  (** max members per tree leaf; ≥ 2 *)
  pivots : int;  (** pivot candidates sampled per split; ≥ 1 *)
  seed : int;  (** construction seed; see {!seed_of_salt} *)
}

val default_spec : spec
(** [{ mode = Auto; leaf = 16; pivots = 5; seed = 0 }]. *)

val auto_min : int
(** Repository size below which [Auto] skips the index (256): linear scans
    of a few hundred summaries are already microseconds, and skipping keeps
    small-repository counter semantics unchanged. *)

val flat_max : int
(** Repository size at or below which [Force] builds the flat
    single-linkage cluster table instead of a tree (64). *)

type t
(** An immutable index over one prepared repository; safe to share across
    domains.  Indexes are positions in the repository's PoC array. *)

type counters = {
  mutable nodes_visited : int;
      (** tree nodes expanded by {!search} (root included) *)
  mutable pairs_pruned_index : int;
      (** members skipped by a node bound or member screen — pairs the
          linear cascade would have evaluated a {!Dtw.lower_bound} for *)
}
(** Per-worker query counters, summed by {!Engine} next to
    [pairs_pruned_lb].  Not thread-safe: use one per domain. *)

val counters : unit -> counters

val seed_of_salt : string -> int
(** Deterministic non-negative seed from a config salt (FNV-1a over the
    bytes — stable across OCaml versions, unlike [Hashtbl.hash]). *)

val build : spec -> Dtw.summary array -> t option
(** Build an index over the summarized repository, in repository order.
    [None] when [spec.mode = Auto] and the repository is smaller than
    {!auto_min}.  Empty models are kept out of the tree on an always-visited
    side list (their score is 0.0 by convention and their conventional
    distance 1.0 admits no useful bound).
    @raise Invalid_argument if [spec.leaf < 2] or [spec.pivots < 1]. *)

val search :
  ?alpha:float ->
  ?ixc:counters ->
  ?trace:(Provenance.index_event -> unit) ->
  t ->
  Dtw.summary ->
  dmax:(unit -> float) ->
  visit:(int -> unit) ->
  unit
(** [search t target ~dmax ~visit] enumerates repository positions whose
    model could score at least the caller's moving cutoff, best-first by
    node bound.  [visit i] must score PoC [i] (and, if the score beats the
    caller's best, tighten it); [dmax ()] returns the current pruning radius
    in distance space — [infinity] until a first score exists, then
    [1.0 -. best +. Dtw.prune_margin], mirroring {!Dtw.compare_summaries}.
    A node or member is skipped only when its bound {e strictly} exceeds
    [dmax ()], so every PoC the linear cascade would keep is visited.
    Bounds are capped at 1.0, so out-of-band and empty pairs (conventional
    distance 1.0, score 0.0) are never pruned while the best score is ≤ 0.
    [alpha] must equal the scoring alpha (sound for alpha in [\[0,1\]];
    callers disable the index otherwise, as with lower-bound pruning).
    Visit order is deterministic.  An empty target visits every position
    (all scores are 0.0; no bound applies).  [trace], when given, receives
    each traversal decision (node visits, subtree cut-offs and member
    prunes, with the bounds that justified them) for provenance capture —
    pure observation, never read back into the search. *)

val size : t -> int
(** Repository size the index was built over (empty models included). *)

val spec : t -> spec

val node_count : t -> int
(** Total tree nodes (0 for an index over an all-empty repository). *)

val depth : t -> int
(** Longest root-to-leaf path (1 = a single flat node). *)

(** {1 Serialization}

    The encoded form is embedded (length-prefixed) in the SCAGBIN v2
    repository image's optional index section; it carries its own version
    byte so the encoding can evolve independently of the container. *)

val to_bytes : t -> string

val of_bytes_result : ?file:string -> string -> (t, Err.t) result
(** Decode {!to_bytes} output.  Validates structure: member indexes in
    range, node member counts consistent, full coverage of the declared
    repository size, no trailing bytes. *)
